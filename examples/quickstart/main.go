// Quickstart: align two noisy sequences with the memory-restricted X-Drop
// algorithm and compare its footprint and result against the standard
// three-antidiagonal variant.
package main

import (
	"fmt"
	"math/rand"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/synth"
)

func main() {
	// Two ~5 kb reads of the same region, 10% divergence, sharing an
	// exact 17-mer seed at their midpoints.
	rng := rand.New(rand.NewSource(1))
	h := synth.RandDNA(rng, 5000)
	v := synth.UniformDNA(0.10).Apply(rng, h)
	seed := xdropipu.Seed{H: 2500, V: 2450, Len: 17}
	if seed.V+seed.Len > len(v) {
		seed.V = len(v) - seed.Len
	}
	synth.PlantSeed(h, v, seed.H, seed.V, seed.Len)

	restricted := xdropipu.Params{
		Scorer: xdropipu.DNAScorer, Gap: -1, X: 15,
		Algo: xdropipu.AlgoRestricted2, DeltaB: 256, // 2δb = 2 KB of work memory
	}
	standard := restricted
	standard.Algo = xdropipu.AlgoStandard3
	standard.DeltaB = 0

	r1, err := xdropipu.ExtendSeed(h, v, seed, restricted)
	if err != nil {
		panic(err)
	}
	r2, err := xdropipu.ExtendSeed(h, v, seed, standard)
	if err != nil {
		panic(err)
	}

	fmt.Printf("memory-restricted: score=%d span=[%d,%d)x[%d,%d) δw=%d workMem=%dB\n",
		r1.Score, r1.BegH, r1.EndH, r1.BegV, r1.EndV, r1.Stats.MaxLiveBand, r1.Stats.WorkBytes)
	fmt.Printf("standard 3-diag:   score=%d span=[%d,%d)x[%d,%d) workMem=%dB\n",
		r2.Score, r2.BegH, r2.EndH, r2.BegV, r2.EndV, r2.Stats.WorkBytes)
	fmt.Printf("same result, %.0f× less working memory\n",
		float64(r2.Stats.WorkBytes)/float64(r1.Stats.WorkBytes))
	if r1.Score != r2.Score {
		panic("variants disagree — file a bug")
	}
}
