// Server: the alignment system as a real networked service. The process
// boots the multi-tenant HTTP front-end on a loopback listener — a pool
// of engine shards behind POST /v1/jobs — and drives it with wire
// clients exactly the way remote tenants would: concurrent submissions
// from different tenants, one client streaming results batch by batch,
// one cancelling mid-stream, and a pipeline re-emitting a duplicate
// workload that the content-affinity routing lands on the same shard's
// warm result cache. The reports the clients assemble from the NDJSON
// streams are bit-identical to what an in-process Engine.Submit would
// have returned; the wire adds distribution, not drift.
//
// At the end the example scrapes GET /v1/stats and GET /v1/metrics —
// the JSON snapshot an autoscaler would watch and the Prometheus
// exposition a monitoring stack would collect.
package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/synth"
)

func clientData(client int) *xdropipu.Dataset {
	return synth.Reads(synth.ReadsSpec{
		Name: fmt.Sprintf("client-%d", client), GenomeLen: 60_000,
		Coverage: 8, MeanReadLen: 1200, MinReadLen: 400, MaxReadLen: 2400,
		Errors: synth.UniformDNA(0.05), SeedLen: 17, MinOverlap: 300,
		Seed: int64(100 + client),
	})
}

func main() {
	// The service: two engine shards, each a scaled-down four-IPU fleet
	// with a cross-job result cache. Content-affinity routing sends
	// identical workloads to the same shard, so caches stay warm per
	// shard instead of being diluted across the pool.
	svc := xdropipu.NewService(xdropipu.ServiceConfig{
		Shards: 2,
		EngineOptions: []xdropipu.EngineOption{
			xdropipu.WithIPUs(4),
			xdropipu.WithModel(xdropipu.GC200),
			xdropipu.WithTilesPerIPU(8), // scaled-down demo device
			xdropipu.WithPartition(true),
			xdropipu.WithKernel(xdropipu.KernelConfig{
				Params: xdropipu.Params{
					Scorer: xdropipu.DNAScorer, Gap: -1, X: 15, DeltaB: 256,
				},
				LRSplit: true, WorkStealing: true, BusyWaitVariance: true, DualIssue: true,
			}),
			xdropipu.WithQueueDepth(8),
			// Finer batches deepen the stream: consumers see steady
			// chunk-by-chunk progress over the wire.
			xdropipu.WithMaxBatchJobs(600),
			xdropipu.WithResultCache(1 << 16),
		},
	})
	defer svc.Close()

	// A real listener, a real http.Server: this is the same path
	// `xdropipu serve` takes, minus the flags.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen:", err)
		return
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Println("service listening on", base)

	var wg sync.WaitGroup
	for client := 0; client < 4; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			c := xdropipu.NewServiceClient(base,
				xdropipu.WithServiceTenant(fmt.Sprintf("tenant-%d", client)))
			d := clientData(client)

			job, err := c.Submit(context.Background(), d)
			if err != nil {
				fmt.Printf("client %d: submit failed: %v\n", client, err)
				return
			}

			switch client {
			case 2:
				// This client changes its mind mid-stream: DELETE the job
				// after the first chunk. The shard drops its remaining
				// batches; everyone else is unaffected.
				<-job.Results() // first chunk arrived — the job is live
				if err := job.Cancel(context.Background()); err != nil {
					fmt.Printf("client %d: cancel failed: %v\n", client, err)
					return
				}
				if _, err := job.Wait(context.Background()); err != nil {
					fmt.Printf("client %d: cancelled mid-stream: %v\n", client, err)
					return
				}
				fmt.Printf("client %d: finished before the cancel landed\n", client)
			case 3:
				// This client consumes the NDJSON stream chunk by chunk —
				// the same Update values an in-process Results() yields.
				results, batches := 0, 0
				for u := range job.Results() {
					results += len(u.Results)
					if u.Batch < 0 {
						fmt.Printf("client %d: +%d alignments from the result cache\n",
							client, len(u.Results))
						continue
					}
					batches++
					fmt.Printf("client %d: chunk %d/%d (+%d alignments, %d total)\n",
						client, batches, u.Batches, len(u.Results), results)
				}
				rep, err := job.Wait(context.Background())
				if err != nil {
					fmt.Printf("client %d: %v\n", client, err)
					return
				}
				fmt.Printf("client %d: streamed %d alignments, %.0f GCUPS\n",
					client, len(rep.Results), rep.GCUPS(rep.DeviceComputeSeconds))
			default:
				// Plain asynchronous tenants: submit, then block on join.
				rep, err := job.Wait(context.Background())
				if err != nil {
					fmt.Printf("client %d: %v\n", client, err)
					return
				}
				fmt.Printf("client %d: %d alignments in %d batches, end-to-end %.3gms\n",
					client, len(rep.Results), rep.Batches, rep.WallSeconds*1e3)
			}
		}(client)
	}
	wg.Wait()

	// A pipeline re-emits client 0's candidate wave — duplicate-heavy
	// traffic. The dataset is rebuilt from scratch, but content-affinity
	// routing hashes the sequence digests, so the repeat lands on the
	// shard that already paid for these extensions: every result comes
	// from its cache and zero batches execute.
	c := xdropipu.NewServiceClient(base, xdropipu.WithServiceTenant("pipeline"))
	if job, err := c.Submit(context.Background(), clientData(0)); err == nil {
		if rep, err := job.Wait(context.Background()); err == nil {
			fmt.Printf("\nwarm-cache replay of client 0: %d alignments, %d cache hits, %d batches executed\n",
				len(rep.Results), rep.CacheHits, rep.Batches)
		}
	}

	// What an autoscaler sees: per-shard occupancy and cache behaviour,
	// per-tenant admission counters.
	var stats xdropipu.ServiceStats
	if err := c.Stats(context.Background(), &stats); err == nil {
		fmt.Printf("\nservice: %d jobs done across %d shards, max occupancy %.2f\n",
			stats.Totals.JobsDone, len(stats.Shards), stats.Totals.QueueOccupancy)
		for _, sh := range stats.Shards {
			fmt.Printf("shard %d: %d jobs, %d batches, cache %d/%d hit/miss\n",
				sh.Shard, sh.JobsDone, sh.BatchesDone, sh.CacheHits, sh.CacheMisses)
		}
	}

	// And what a monitoring stack scrapes: a few lines of the
	// Prometheus exposition.
	if resp, err := http.Get(base + "/v1/metrics"); err == nil {
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		shown := 0
		for sc.Scan() && shown < 6 {
			line := sc.Text()
			if strings.HasPrefix(line, "xdropipu_engine_jobs_done_total") ||
				strings.HasPrefix(line, "xdropipu_engine_cache_hits_total") ||
				strings.HasPrefix(line, "xdropipu_service_jobs_submitted_total") {
				fmt.Println("metric:", line)
				shown++
			}
		}
	}

	// Clean shutdown: Shutdown drains the HTTP side, Close cancels
	// whatever jobs remain and stops the shard engines.
	shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shctx)
	svc.Close()
	fmt.Println("\nservice drained and closed")
}
