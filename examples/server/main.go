// Server: the engine as a persistent alignment service. One engine owns
// a four-IPU fleet; several concurrent clients submit their own
// workloads, one streams results batch by batch, and one cancels its
// submission mid-flight — the rest are unaffected. This is the ipuma-lib
// usage pattern (create_batches → async_submit → blocking_join) that
// keeps the fleet saturated while hosts keep producing work.
//
// The engine also runs with a cross-job result cache (WithResultCache):
// after the concurrent wave, a pipeline re-emits client 0's candidate
// set — the duplicate-heavy traffic ELBA-style pipelines generate — and
// the repeat job is served entirely from the cache, executing zero
// batches; the lifetime stats at the end show the hits.
package main

import (
	"context"
	"fmt"
	"sync"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/synth"
)

func main() {
	eng := xdropipu.NewEngine(
		xdropipu.WithIPUs(4),
		xdropipu.WithModel(xdropipu.GC200),
		xdropipu.WithTilesPerIPU(8), // scaled-down demo device
		xdropipu.WithPartition(true),
		xdropipu.WithKernel(xdropipu.KernelConfig{
			Params: xdropipu.Params{
				Scorer: xdropipu.DNAScorer, Gap: -1, X: 15, DeltaB: 256,
			},
			LRSplit: true, WorkStealing: true, BusyWaitVariance: true, DualIssue: true,
		}),
		xdropipu.WithQueueDepth(8),
		// Finer batches deepen the shared work queue: jobs interleave on
		// the fleet and streaming consumers see steady progress.
		xdropipu.WithMaxBatchJobs(600),
		// Memoise finished extensions across jobs: byte-identical
		// (pair, seed) work submitted by any client is aligned once.
		xdropipu.WithResultCache(1<<16),
	)
	defer eng.Close()

	var wg sync.WaitGroup
	for client := 0; client < 4; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			d := synth.Reads(synth.ReadsSpec{
				Name: fmt.Sprintf("client-%d", client), GenomeLen: 60_000,
				Coverage: 8, MeanReadLen: 1200, MinReadLen: 400, MaxReadLen: 2400,
				Errors: synth.UniformDNA(0.05), SeedLen: 17, MinOverlap: 300,
				Seed: int64(100 + client),
			})

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			job, err := eng.Submit(ctx, d)
			if err != nil {
				fmt.Printf("client %d: submit failed: %v\n", client, err)
				return
			}

			switch client {
			case 2:
				// This client changes its mind: cancel while queued or
				// running. The engine keeps serving everyone else.
				cancel()
				if _, err := job.Wait(context.Background()); err != nil {
					fmt.Printf("client %d: cancelled: %v\n", client, err)
					return
				}
				fmt.Printf("client %d: finished before the cancel landed\n", client)
			case 3:
				// This client streams: results arrive batch by batch (in
				// completion order) while the fleet works on the rest.
				// Batch == -1 carries results another job already paid
				// for — the result cache's share arrives up front.
				results, batches := 0, 0
				for u := range job.Results() {
					results += len(u.Results)
					if u.Batch < 0 {
						fmt.Printf("client %d: +%d alignments from the result cache\n",
							client, len(u.Results))
						continue
					}
					batches++
					fmt.Printf("client %d: batch %d/%d (+%d alignments, %d total)\n",
						client, batches, u.Batches, len(u.Results), results)
				}
				rep, err := job.Wait(context.Background())
				if err != nil {
					fmt.Printf("client %d: %v\n", client, err)
					return
				}
				fmt.Printf("client %d: streamed %d alignments, %.0f GCUPS\n",
					client, len(rep.Results), rep.GCUPS(rep.DeviceComputeSeconds))
			default:
				// Plain asynchronous clients: submit, then block on join.
				rep, err := job.Wait(context.Background())
				if err != nil {
					fmt.Printf("client %d: %v\n", client, err)
					return
				}
				fmt.Printf("client %d: %d alignments in %d batches, end-to-end %.3gms\n",
					client, len(rep.Results), rep.Batches, rep.WallSeconds*1e3)
			}
		}(client)
	}
	wg.Wait()

	// A pipeline re-emits client 0's candidate wave — the duplicate-heavy
	// traffic pattern. The dataset is a fresh object with its own pool,
	// but the cache keys are content-addressed, so every extension comes
	// out of the result cache and the job executes zero batches.
	repeat := synth.Reads(synth.ReadsSpec{
		Name: "client-0-repeat", GenomeLen: 60_000,
		Coverage: 8, MeanReadLen: 1200, MinReadLen: 400, MaxReadLen: 2400,
		Errors: synth.UniformDNA(0.05), SeedLen: 17, MinOverlap: 300,
		Seed: 100,
	})
	if job, err := eng.Submit(context.Background(), repeat); err == nil {
		if rep, err := job.Wait(context.Background()); err == nil {
			fmt.Printf("\nrepeat of client 0: %d alignments, %d cache hits, %d batches executed\n",
				len(rep.Results), rep.CacheHits, rep.Batches)
		}
	}

	st := eng.Stats()
	fmt.Printf("engine lifetime: %d jobs, %d batches, %.1f Mcells computed\n",
		st.JobsDone, st.BatchesDone, float64(st.CellsDone)/1e6)
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Printf("result cache: %d hits, %d misses, %d evictions (%.0f%% hit rate)\n",
			st.CacheHits, st.CacheMisses, st.CacheEvictions,
			100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses))
	}

	faultTolerance()
}

// faultTolerance: the same service surviving an unreliable fleet. A
// seeded fault plan fails ~8% of batch executions transiently (a flaky
// link) and kills a few batches permanently (a dead device); the engine
// retries the transients with backoff and quarantines the rest to the
// reference host path — and the report comes out bit-identical to a
// fault-free run, with the damage visible only in the lifetime stats.
func faultTolerance() {
	d := synth.Reads(synth.ReadsSpec{
		Name: "chaos", GenomeLen: 60_000,
		Coverage: 8, MeanReadLen: 1200, MinReadLen: 400, MaxReadLen: 2400,
		Errors: synth.UniformDNA(0.05), SeedLen: 17, MinOverlap: 300,
		Seed: 100,
	})
	plan := xdropipu.NewFaultPlan(42, xdropipu.FaultSpec{
		TransientRate: 0.08,
		PermanentRate: 0.03,
	})
	eng := xdropipu.NewEngine(
		xdropipu.WithIPUs(4),
		xdropipu.WithModel(xdropipu.GC200),
		xdropipu.WithTilesPerIPU(8),
		xdropipu.WithPartition(true),
		xdropipu.WithKernel(xdropipu.KernelConfig{
			Params: xdropipu.Params{
				Scorer: xdropipu.DNAScorer, Gap: -1, X: 15, DeltaB: 256,
			},
			LRSplit: true, WorkStealing: true, BusyWaitVariance: true, DualIssue: true,
		}),
		// Fine batches: more executions for the fault plan to shoot at.
		xdropipu.WithMaxBatchJobs(100),
		xdropipu.WithFaultPlan(plan),
		xdropipu.WithRetry(6, 0), // up to 6 retries per batch, no job cap
		xdropipu.WithDegradedMode(xdropipu.DegradeFallback),
	)
	defer eng.Close()

	job, err := eng.Submit(context.Background(), d)
	if err != nil {
		fmt.Printf("chaos: submit failed: %v\n", err)
		return
	}
	rep, err := job.Wait(context.Background())
	if err != nil {
		fmt.Printf("chaos: %v\n", err)
		return
	}
	st := eng.Stats()
	tr, pm, _ := plan.Injected()
	fmt.Printf("\nfault tolerance: %d alignments despite %d injected faults "+
		"(%d transient, %d permanent)\n", len(rep.Results), st.FaultsInjected, tr, pm)
	fmt.Printf("fault tolerance: %d retries, %d batches quarantined to the host path, "+
		"%d partial failures\n", st.Retries, st.Quarantined, rep.PartialFailures)
}
