// Assembly: run the ELBA pipeline end-to-end on a toy genome, with the
// alignment phase executed on the simulated IPU system and full
// traceback enabled — every overlap candidate comes back with its CIGAR
// and identity, not just a score.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/elba"
	"github.com/sram-align/xdropipu/internal/synth"
)

func main() {
	// Sample overlapping HiFi-like reads from a random 60 kb genome.
	rng := rand.New(rand.NewSource(7))
	genome := synth.RandDNA(rng, 60000)
	prof := synth.HiFiDNA()
	var reads [][]byte
	for off := 0; off+3000 <= len(genome); off += 1100 + rng.Intn(200) {
		reads = append(reads, prof.Apply(rng, genome[off:off+3000]))
	}
	fmt.Printf("genome %d bp, %d reads\n", len(genome), len(reads))

	ipu := &xdropipu.IPUBackend{Cfg: xdropipu.IPUConfig{
		IPUs:        1,
		Model:       xdropipu.GC200,
		TilesPerIPU: 32,
		Partition:   true,
		Traceback:   true, // emit CIGARs alongside scores
		Kernel: xdropipu.KernelConfig{
			Params:           xdropipu.Params{Scorer: xdropipu.DNAScorer, Gap: -1, X: 15, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}

	res, err := xdropipu.AssembleELBA(reads, xdropipu.ELBAConfig{K: 17, Backend: ipu})
	if err != nil {
		panic(err)
	}
	fmt.Printf("overlap candidates: %d (reliable k-mers: %d)\n",
		res.OverlapStats.Comparisons, res.OverlapStats.ReliableKmers)
	fmt.Printf("alignments accepted: %d, contained reads: %d\n", res.Accepted, res.Contained)
	fmt.Printf("string graph: %d edges → %d after transitive reduction\n",
		res.Edges, res.ReducedEdges)
	fmt.Printf("alignment phase (modeled on %s): %.3gms\n", res.BackendName, res.AlignSeconds*1e3)
	fmt.Printf("contigs: %d, total %d bp, N50 %d (genome %d bp)\n",
		len(res.Contigs), elba.TotalLength(res.Contigs), elba.N50(res.Contigs), len(genome))

	// Real alignment reporting: the strongest overlaps with their edit
	// scripts. Each CIGAR covers exactly the aligned region and its
	// re-scored value bit-matches the reported score (the traceback
	// subsystem's differential guarantee).
	order := make([]int, len(res.Alignments))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return res.Alignments[order[a]].Score > res.Alignments[order[b]].Score
	})
	fmt.Println("top overlaps (read pair, score, identity, cigar):")
	for _, ci := range order[:min(3, len(order))] {
		aln := res.Alignments[ci]
		c := res.Dataset.Comparisons[ci]
		cigar := string(aln.Cigar)
		if len(cigar) > 60 {
			cigar = cigar[:57] + "..."
		}
		fmt.Printf("  r%d×r%d  score %d  id %.1f%%  [%d,%d)x[%d,%d)  %s\n",
			c.H, c.V, aln.Score, aln.Cigar.Identity()*100,
			aln.BegH, aln.EndH, aln.BegV, aln.EndV, cigar)
	}
}
