// Assembly: run the ELBA pipeline end-to-end on a toy genome, with the
// alignment phase executed on the simulated IPU system.
package main

import (
	"fmt"
	"math/rand"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/elba"
	"github.com/sram-align/xdropipu/internal/synth"
)

func main() {
	// Sample overlapping HiFi-like reads from a random 60 kb genome.
	rng := rand.New(rand.NewSource(7))
	genome := synth.RandDNA(rng, 60000)
	prof := synth.HiFiDNA()
	var reads [][]byte
	for off := 0; off+3000 <= len(genome); off += 1100 + rng.Intn(200) {
		reads = append(reads, prof.Apply(rng, genome[off:off+3000]))
	}
	fmt.Printf("genome %d bp, %d reads\n", len(genome), len(reads))

	ipu := &xdropipu.IPUBackend{Cfg: xdropipu.IPUConfig{
		IPUs:        1,
		Model:       xdropipu.GC200,
		TilesPerIPU: 32,
		Partition:   true,
		Kernel: xdropipu.KernelConfig{
			Params:           xdropipu.Params{Scorer: xdropipu.DNAScorer, Gap: -1, X: 15, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}

	res, err := xdropipu.AssembleELBA(reads, xdropipu.ELBAConfig{K: 17, Backend: ipu})
	if err != nil {
		panic(err)
	}
	fmt.Printf("overlap candidates: %d (reliable k-mers: %d)\n",
		res.OverlapStats.Comparisons, res.OverlapStats.ReliableKmers)
	fmt.Printf("alignments accepted: %d, contained reads: %d\n", res.Accepted, res.Contained)
	fmt.Printf("string graph: %d edges → %d after transitive reduction\n",
		res.Edges, res.ReducedEdges)
	fmt.Printf("alignment phase (modeled on %s): %.3gms\n", res.BackendName, res.AlignSeconds*1e3)
	fmt.Printf("contigs: %d, total %d bp, N50 %d (genome %d bp)\n",
		len(res.Contigs), elba.TotalLength(res.Contigs), elba.N50(res.Contigs), len(genome))
}
