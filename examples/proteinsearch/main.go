// Proteinsearch: run the PASTIS pipeline — quasi-exact BLOSUM62 seeding
// plus X-Drop alignment (X=49, gap −2) — over synthetic protein families
// and recover the family structure.
package main

import (
	"fmt"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/synth"
)

func main() {
	data, labels := synth.ProteinFamilies(synth.ProteinFamiliesSpec{
		Families:         8,
		MembersPerFamily: 4,
		MeanLen:          300,
		MutRate:          0.18,
		Seed:             3,
	})
	fmt.Printf("%d proteins in %d hidden families\n", len(data.Sequences), 8)

	ipu := &xdropipu.IPUBackend{Cfg: xdropipu.IPUConfig{
		IPUs:        1,
		Model:       xdropipu.BOW,
		TilesPerIPU: 16,
		Partition:   true,
		Kernel: xdropipu.KernelConfig{
			Params:           xdropipu.Params{Scorer: xdropipu.Blosum62, Gap: -2, X: 49, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}

	res, err := xdropipu.SearchPASTIS(data.Sequences, xdropipu.PASTISConfig{Backend: ipu})
	if err != nil {
		panic(err)
	}
	fmt.Printf("candidate pairs: %d, accepted homolog pairs: %d\n",
		res.OverlapStats.Comparisons, len(res.Pairs))
	fmt.Printf("alignment phase (modeled): %.3gms\n", res.AlignSeconds*1e3)

	correct, wrong := 0, 0
	for _, p := range res.Pairs {
		if labels[p[0]] == labels[p[1]] {
			correct++
		} else {
			wrong++
		}
	}
	fmt.Printf("pair precision: %d right, %d wrong\n", correct, wrong)
	fams := 0
	for _, f := range res.Families {
		if len(f) > 1 {
			fams++
		}
	}
	fmt.Printf("recovered %d multi-member families\n", fams)
}
