// Proteinsearch: run the PASTIS pipeline — quasi-exact BLOSUM62 seeding
// plus X-Drop alignment (X=49, gap −2) — over synthetic protein families
// and recover the family structure, reporting each accepted homolog pair
// as a real alignment (CIGAR + identity), not just a score.
package main

import (
	"fmt"
	"sort"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/synth"
)

func main() {
	data, labels := synth.ProteinFamilies(synth.ProteinFamiliesSpec{
		Families:         8,
		MembersPerFamily: 4,
		MeanLen:          300,
		MutRate:          0.18,
		Seed:             3,
	})
	fmt.Printf("%d proteins in %d hidden families\n", len(data.Sequences), 8)

	ipu := &xdropipu.IPUBackend{Cfg: xdropipu.IPUConfig{
		IPUs:        1,
		Model:       xdropipu.BOW,
		TilesPerIPU: 16,
		Partition:   true,
		Traceback:   true, // emit CIGARs alongside scores
		Kernel: xdropipu.KernelConfig{
			Params:           xdropipu.Params{Scorer: xdropipu.Blosum62, Gap: -2, X: 49, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}

	res, err := xdropipu.SearchPASTIS(data.Sequences, xdropipu.PASTISConfig{Backend: ipu})
	if err != nil {
		panic(err)
	}
	fmt.Printf("candidate pairs: %d, accepted homolog pairs: %d\n",
		res.OverlapStats.Comparisons, len(res.Pairs))
	fmt.Printf("alignment phase (modeled): %.3gms\n", res.AlignSeconds*1e3)

	correct, wrong := 0, 0
	for _, p := range res.Pairs {
		if labels[p[0]] == labels[p[1]] {
			correct++
		} else {
			wrong++
		}
	}
	fmt.Printf("pair precision: %d right, %d wrong\n", correct, wrong)
	fams := 0
	for _, f := range res.Families {
		if len(f) > 1 {
			fams++
		}
	}
	fmt.Printf("recovered %d multi-member families\n", fams)

	// Real alignment reporting: the strongest candidate alignments with
	// their edit scripts and BLOSUM62 identities.
	order := make([]int, len(res.Alignments))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return res.Alignments[order[a]].Score > res.Alignments[order[b]].Score
	})
	fmt.Println("top hits (pair, score, identity, aligned spans, cigar):")
	for _, ci := range order[:min(3, len(order))] {
		aln := res.Alignments[ci]
		c := res.Dataset.Comparisons[ci]
		cigar := string(aln.Cigar)
		if len(cigar) > 60 {
			cigar = cigar[:57] + "..."
		}
		fmt.Printf("  p%d×p%d  score %d  id %.1f%%  %daa/%daa  %s\n",
			c.H, c.V, aln.Score, aln.Cigar.Identity()*100,
			aln.SpanH(), aln.SpanV(), cigar)
	}
}
