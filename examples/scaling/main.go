// Scaling: plan a many-to-many alignment workload once, then replay it on
// growing IPU fleets — the paper's NUMBER_IPUS experiment in miniature —
// with graph partitioning on and off.
package main

import (
	"fmt"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"

	"github.com/sram-align/xdropipu/internal/core"
)

func main() {
	d := synth.Reads(synth.ReadsSpec{
		Name: "demo", GenomeLen: 120_000, Coverage: 12,
		MeanReadLen: 900, MinReadLen: 300, MaxReadLen: 2200,
		Errors: synth.UniformDNA(0.06), SeedLen: 17, MinOverlap: 250, Seed: 9,
	})
	fmt.Printf("workload: %d reads, %d comparisons\n", len(d.Sequences), len(d.Comparisons))

	for _, part := range []bool{true, false} {
		cfg := driver.Config{
			IPUs:        1,
			Model:       platform.GC200,
			TilesPerIPU: 2,
			SeqBudget:   40 * 1024,
			Partition:   part,
			Kernel: ipukernel.Config{
				Params:           core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256},
				LRSplit:          true,
				WorkStealing:     true,
				BusyWaitVariance: true,
				DualIssue:        true,
			},
		}
		// The trick of §4.4: plan once, schedule at any fleet size.
		plan, err := driver.NewPlan(d, cfg)
		if err != nil {
			panic(err)
		}
		mode := "multi-comparison (graph partitioning)"
		if !part {
			mode = "single-comparison"
		}
		fmt.Printf("\n%s: %d batches\n", mode, plan.Batches())
		base := plan.Schedule(1).WallSeconds
		for _, n := range []int{1, 2, 4, 8, 16} {
			rep := plan.Schedule(n)
			fmt.Printf("  %2d IPUs: %8.3fms  (%.2f× vs 1 IPU, link busy %.0f%%)\n",
				n, rep.WallSeconds*1e3, base/rep.WallSeconds,
				100*rep.TransferSeconds/rep.WallSeconds/2)
		}
	}
}
