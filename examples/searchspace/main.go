// Searchspace: visualise how the X-Drop threshold bounds the computed
// region of the DP matrix (the paper's Fig. 2) as an ASCII density map.
package main

import (
	"fmt"
	"math/rand"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	h := synth.RandDNA(rng, 360)
	v := synth.UniformDNA(0.15).Apply(rng, h)

	for _, x := range []int{10, 20, 1 << 20} {
		label := fmt.Sprintf("X=%d", x)
		if x >= 1<<20 {
			label = "X=∞"
		}
		mx, res := core.ReferenceMatrix(core.NewView(h), core.NewView(v), core.Params{
			Scorer: scoring.DNADefault, Gap: -1, X: x,
		})
		frac := 100 * float64(mx.ComputedCells()) / float64((mx.M+1)*(mx.N+1))
		fmt.Printf("%s: score %d, %d cells computed (%.1f%% of the matrix), δw=%d\n",
			label, res.Score, res.Stats.Cells, frac, res.Stats.MaxLiveBand)
		render(mx)
		fmt.Println()
	}
}

func render(mx *core.Matrix) {
	const grid = 60
	stepI := (mx.M + grid) / grid
	stepJ := (mx.N + grid) / grid
	for i := 0; i <= mx.M; i += stepI {
		row := make([]byte, 0, grid)
		for j := 0; j <= mx.N; j += stepJ {
			c := byte('.')
			for di := 0; di < stepI && i+di <= mx.M && c == '.'; di++ {
				for dj := 0; dj < stepJ && j+dj <= mx.N; dj++ {
					if mx.Computed(i+di, j+dj) {
						c = '#'
						break
					}
				}
			}
			row = append(row, c)
		}
		fmt.Printf("  %s\n", row)
	}
}
