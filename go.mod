module github.com/sram-align/xdropipu

go 1.24
