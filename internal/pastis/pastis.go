// Package pastis reimplements the PASTIS protein-homology pipeline (§2.4)
// as the paper's second real-world host: quasi-exact k-mer seeding under
// BLOSUM62 (the ASAᵀ overlap product), X-Drop alignment of every candidate
// pair (X=49, gap −2, BLOSUM62; §5.3.1), a similarity filter, and
// connected-component clustering into protein families.
package pastis

import (
	"fmt"

	"github.com/sram-align/xdropipu/internal/backend"
	"github.com/sram-align/xdropipu/internal/overlap"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Config parameterises a search. Zero fields take the paper's PASTIS
// settings (§5.3.1).
type Config struct {
	// K is the protein k-mer length (paper: 6).
	K int
	// SubstituteMinScore enables quasi-exact seeding: single-residue
	// substitutions scoring at least this under BLOSUM62 also seed
	// (default 3; 0 disables, <0 treated as disabled).
	SubstituteMinScore int
	// MinSharedSeeds is the per-pair seed evidence (paper: 2).
	MinSharedSeeds int32
	// MaxKmerFreq drops promiscuous k-mers (default 200).
	MaxKmerFreq int32
	// MinScorePerColumn accepts pairs scoring at least this per aligned
	// column (default 1.0 — roughly 25–30% identity under BLOSUM62).
	MinScorePerColumn float64
	// MinAlnLen rejects trivially short alignments (default 30).
	MinAlnLen int
	// Backend executes the alignment phase.
	Backend backend.Backend
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 6
	}
	if c.SubstituteMinScore == 0 {
		c.SubstituteMinScore = 3
	}
	if c.MinSharedSeeds == 0 {
		c.MinSharedSeeds = 2
	}
	if c.MaxKmerFreq == 0 {
		c.MaxKmerFreq = 200
	}
	if c.MinScorePerColumn == 0 {
		c.MinScorePerColumn = 1.0
	}
	if c.MinAlnLen == 0 {
		c.MinAlnLen = 30
	}
	return c
}

// Result is one homology search outcome.
type Result struct {
	// Dataset is the alignment workload from quasi-exact seeding.
	Dataset *workload.Dataset
	// OverlapStats reports the seeding stage.
	OverlapStats overlap.Stats
	// Alignments holds per-candidate X-Drop results.
	Alignments []workload.Alignment
	// AlignSeconds is the modeled alignment-phase time (§6.3.2).
	AlignSeconds float64
	// BackendName names the executor.
	BackendName string
	// Pairs lists accepted homolog pairs (sequence index pairs).
	Pairs [][2]int
	// Families groups sequence indices into connected components over
	// accepted pairs; singletons included.
	Families [][]int
}

// Search runs the pipeline over a protein sequence set.
func Search(seqs [][]byte, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Backend == nil {
		return nil, fmt.Errorf("pastis: Config.Backend is required")
	}

	sub := cfg.SubstituteMinScore
	if sub < 0 {
		sub = 0
	}
	cmps, ost, err := overlap.Detect(seqs, overlap.Options{
		K:                  cfg.K,
		MinKmerFreq:        1,
		MaxKmerFreq:        cfg.MaxKmerFreq,
		MinSharedSeeds:     cfg.MinSharedSeeds,
		Protein:            true,
		SubstituteMinScore: sub,
	})
	if err != nil {
		return nil, err
	}
	// Pack the protein pool into an arena (indices preserved; duplicate
	// homologs share storage) and validate the plan against it once.
	arena := workload.NewArena(0, len(seqs))
	for si, s := range seqs {
		if _, err := arena.TryAppend(s); err != nil {
			return nil, fmt.Errorf("pastis: sequence %d: %w", si, err)
		}
	}
	plan := workload.PlanOf(cmps)
	if err := arena.ValidatePlan(plan); err != nil {
		return nil, err
	}
	d := arena.NewDataset("pastis", plan, true)

	out, err := cfg.Backend.Align(d)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Dataset:      d,
		OverlapStats: ost,
		Alignments:   out.Alignments,
		AlignSeconds: out.Seconds,
		BackendName:  out.Name,
	}

	uf := newUnionFind(len(seqs))
	for ci, aln := range out.Alignments {
		span := aln.SpanH()
		if aln.SpanV() < span {
			span = aln.SpanV()
		}
		if span < cfg.MinAlnLen || float64(aln.Score) < cfg.MinScorePerColumn*float64(span) {
			continue
		}
		c := cmps[ci]
		res.Pairs = append(res.Pairs, [2]int{c.H, c.V})
		uf.union(c.H, c.V)
	}
	res.Families = uf.components()
	return res, nil
}

// unionFind is a plain disjoint-set forest with path halving.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// components returns the index groups, ordered by smallest member.
func (uf *unionFind) components() [][]int {
	byRoot := make(map[int][]int)
	var roots []int
	for i := range uf.parent {
		r := uf.find(i)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
