package pastis

import (
	"testing"

	"github.com/sram-align/xdropipu/internal/backend"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
)

func ipuBackend() backend.Backend {
	return &backend.IPU{Cfg: driver.Config{
		IPUs: 1, Model: platform.BOW, TilesPerIPU: 16, Partition: true,
		Kernel: ipukernel.Config{
			// §5.3.1: X=49, gap −2, BLOSUM62.
			Params:           core.Params{Scorer: scoring.Blosum62, Gap: -2, X: 49, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}
}

func familyData(t *testing.T) (*synthDataset, []int) {
	t.Helper()
	d, labels := synth.ProteinFamilies(synth.ProteinFamiliesSpec{
		Families: 6, MembersPerFamily: 4, MeanLen: 280, MutRate: 0.15, Seed: 1,
	})
	return &synthDataset{d.Sequences}, labels
}

type synthDataset struct{ seqs [][]byte }

func TestSearchRecoversFamilies(t *testing.T) {
	data, labels := familyData(t)
	res, err := Search(data.seqs, Config{Backend: ipuBackend()})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverlapStats.Comparisons == 0 {
		t.Fatal("no candidate pairs seeded")
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no homolog pairs accepted")
	}
	// Precision: every accepted pair must share a family label.
	for _, p := range res.Pairs {
		if labels[p[0]] != labels[p[1]] {
			t.Errorf("false positive pair %v (families %d vs %d)", p, labels[p[0]], labels[p[1]])
		}
	}
	// Recall: most in-family pairs must be recovered. 4 members → 6
	// pairs per family, 36 total.
	want := 0
	for i := range labels {
		for j := i + 1; j < len(labels); j++ {
			if labels[i] == labels[j] {
				want++
			}
		}
	}
	if len(res.Pairs) < want*7/10 {
		t.Errorf("recall too low: %d of %d in-family pairs", len(res.Pairs), want)
	}
	// Families must be consistent groupings: each reported family's
	// members share one ground-truth label.
	for _, fam := range res.Families {
		if len(fam) < 2 {
			continue
		}
		for _, m := range fam[1:] {
			if labels[m] != labels[fam[0]] {
				t.Errorf("family %v mixes labels", fam)
			}
		}
	}
}

func TestSearchCPUAndIPUAgree(t *testing.T) {
	data, _ := familyData(t)
	a, err := Search(data.seqs, Config{Backend: ipuBackend()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(data.seqs, Config{Backend: &backend.CPU{Model: platform.EPYC7763, X: 49}})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("backends disagree: %d vs %d pairs", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("pair lists differ")
		}
	}
	if a.AlignSeconds <= 0 || b.AlignSeconds <= 0 {
		t.Error("alignment times missing")
	}
}

func TestSearchRejectsMissingBackend(t *testing.T) {
	if _, err := Search(nil, Config{}); err == nil {
		t.Error("missing backend accepted")
	}
}

func TestSearchQuasiExactImprovesRecall(t *testing.T) {
	// At higher divergence, exact 6-mer seeds become scarce; the
	// substitution index should find at least as many candidates.
	d, _ := synth.ProteinFamilies(synth.ProteinFamiliesSpec{
		Families: 4, MembersPerFamily: 3, MeanLen: 250, MutRate: 0.25, Seed: 2,
	})
	exact, err := Search(d.Sequences, Config{Backend: ipuBackend(), SubstituteMinScore: -1})
	if err != nil {
		t.Fatal(err)
	}
	quasi, err := Search(d.Sequences, Config{Backend: ipuBackend(), SubstituteMinScore: 3})
	if err != nil {
		t.Fatal(err)
	}
	if quasi.OverlapStats.Comparisons < exact.OverlapStats.Comparisons {
		t.Errorf("quasi-exact seeded fewer candidates (%d) than exact (%d)",
			quasi.OverlapStats.Comparisons, exact.OverlapStats.Comparisons)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(1, 2)
	uf.union(4, 5)
	comps := uf.components()
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("components = %v", comps)
	}
	if uf.find(0) != uf.find(2) || uf.find(0) == uf.find(3) {
		t.Error("find broken")
	}
}
