// Package ipu models the Graphcore IPU as an execution substrate (§2.1):
// a grid of tiles, each with a hard local-SRAM budget and six temporally
// multiplexed hardware threads, running bulk-synchronous supersteps.
//
// The model executes nothing itself — codelets (internal/ipukernel) run
// the real algorithms in Go and charge per-thread instruction counts; the
// device converts them to time exactly the way the paper measures it:
// deterministic cycle counts divided by the clock (§5.1). SRAM limits are
// enforced, which is what makes the memory-restricted X-Drop algorithm
// necessary rather than cosmetic.
package ipu

import (
	"fmt"

	"github.com/sram-align/xdropipu/internal/platform"
)

// Config selects the modeled hardware and how much of it to use.
type Config struct {
	// Model is the IPU generation (platform.GC200 or platform.BOW).
	Model platform.IPUModel
	// TilesEnabled restricts the tile count (ablation rows of Table 1);
	// zero enables all of them.
	TilesEnabled int
	// SyncSeconds is the fixed BSP synchronisation cost per superstep.
	SyncSeconds float64
}

// DefaultSyncSeconds is the modeled per-superstep barrier cost.
const DefaultSyncSeconds = 1.5e-6

// Device is one simulated IPU accumulating BSP supersteps.
type Device struct {
	cfg   Config
	stats Stats
}

// Stats aggregates a device's modeled activity.
type Stats struct {
	// Supersteps counts compute supersteps run.
	Supersteps int
	// ComputeSeconds is Σ max-tile compute time (the on-device time the
	// paper reports for its GCUPS numbers).
	ComputeSeconds float64
	// ExchangeSeconds is Σ modeled on-chip exchange time.
	ExchangeSeconds float64
	// SyncSeconds is Σ barrier cost.
	SyncSeconds float64
	// BusyTileSeconds is Σ over tiles of per-tile compute time; divided
	// by Supersteps·Tiles·max it yields BSP utilisation.
	BusyTileSeconds float64
	// MaxSRAMUsed is the high-water SRAM mark across all tiles.
	MaxSRAMUsed int
}

// TotalSeconds is the device-side wall time excluding host transfers.
func (s Stats) TotalSeconds() float64 {
	return s.ComputeSeconds + s.ExchangeSeconds + s.SyncSeconds
}

// New creates a device. A zero TilesEnabled uses every tile.
func New(cfg Config) *Device {
	if cfg.TilesEnabled <= 0 || cfg.TilesEnabled > cfg.Model.Tiles {
		cfg.TilesEnabled = cfg.Model.Tiles
	}
	if cfg.SyncSeconds == 0 {
		cfg.SyncSeconds = DefaultSyncSeconds
	}
	return &Device{cfg: cfg}
}

// Model returns the hardware description.
func (d *Device) Model() platform.IPUModel { return d.cfg.Model }

// Tiles returns the enabled tile count.
func (d *Device) Tiles() int { return d.cfg.TilesEnabled }

// DataSRAM returns the per-tile byte budget available to codelet data.
func (d *Device) DataSRAM() int { return d.cfg.Model.DataSRAM() }

// Stats returns the accumulated device statistics.
func (d *Device) Stats() Stats { return d.stats }

// Reset clears accumulated statistics.
func (d *Device) Reset() { d.stats = Stats{} }

// Superstep describes one executed BSP compute phase.
type Superstep struct {
	// TileInstr is the per-tile maximum thread instruction count.
	TileInstr []int64
	// ExchangeBytes is the data moved over the on-chip exchange during
	// the following exchange phase (result gather).
	ExchangeBytes int64
	// SRAMUsed is the per-tile SRAM high-water mark, if known.
	SRAMUsed int
}

// RunSuperstep accounts one BSP superstep and returns its modeled
// duration. Per the BSP model the compute phase lasts as long as the
// slowest tile (§2.1.1: "If a single tile takes more time, all other
// tiles must wait").
func (d *Device) RunSuperstep(s Superstep) (float64, error) {
	if len(s.TileInstr) > d.cfg.TilesEnabled {
		return 0, fmt.Errorf("ipu: superstep uses %d tiles, device has %d enabled",
			len(s.TileInstr), d.cfg.TilesEnabled)
	}
	if s.SRAMUsed > d.cfg.Model.DataSRAM() {
		return 0, fmt.Errorf("ipu: superstep needs %d B of tile SRAM, budget is %d B",
			s.SRAMUsed, d.cfg.Model.DataSRAM())
	}
	var maxInstr int64
	for _, ti := range s.TileInstr {
		if ti > maxInstr {
			maxInstr = ti
		}
		d.stats.BusyTileSeconds += d.cfg.Model.ThreadSeconds(ti)
	}
	compute := d.cfg.Model.ThreadSeconds(maxInstr)
	exchange := float64(s.ExchangeBytes) / d.cfg.Model.ExchangeBytesPerSec
	d.stats.Supersteps++
	d.stats.ComputeSeconds += compute
	d.stats.ExchangeSeconds += exchange
	d.stats.SyncSeconds += d.cfg.SyncSeconds
	if s.SRAMUsed > d.stats.MaxSRAMUsed {
		d.stats.MaxSRAMUsed = s.SRAMUsed
	}
	return compute + exchange + d.cfg.SyncSeconds, nil
}

// HostTransferSeconds models moving n bytes over the host link if this
// device had the link to itself; the multi-IPU driver arbitrates sharing.
func (d *Device) HostTransferSeconds(n int64) float64 {
	return float64(n) / d.cfg.Model.HostLinkBytesPerSec
}
