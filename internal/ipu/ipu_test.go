package ipu

import (
	"math"
	"testing"

	"github.com/sram-align/xdropipu/internal/platform"
)

func TestNewDefaults(t *testing.T) {
	d := New(Config{Model: platform.GC200})
	if d.Tiles() != 1472 {
		t.Errorf("Tiles = %d, want 1472", d.Tiles())
	}
	if d.DataSRAM() != 624*1024-72*1024 {
		t.Errorf("DataSRAM = %d", d.DataSRAM())
	}
	d = New(Config{Model: platform.GC200, TilesEnabled: 4})
	if d.Tiles() != 4 {
		t.Errorf("restricted Tiles = %d, want 4", d.Tiles())
	}
	d = New(Config{Model: platform.GC200, TilesEnabled: 99999})
	if d.Tiles() != 1472 {
		t.Errorf("over-restricted Tiles = %d, want clamp to 1472", d.Tiles())
	}
}

func TestThreadSeconds(t *testing.T) {
	// One instruction per 6 cycles at 1.33 GHz.
	got := platform.GC200.ThreadSeconds(1_000_000)
	want := 6e6 / 1.33e9
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("ThreadSeconds = %g, want %g", got, want)
	}
}

func TestRunSuperstepBSPSemantics(t *testing.T) {
	d := New(Config{Model: platform.GC200, TilesEnabled: 8, SyncSeconds: 1e-6})
	// The superstep lasts as long as the slowest tile.
	secs, err := d.RunSuperstep(Superstep{TileInstr: []int64{100, 5000, 300}})
	if err != nil {
		t.Fatal(err)
	}
	wantCompute := platform.GC200.ThreadSeconds(5000)
	if math.Abs(secs-(wantCompute+1e-6)) > 1e-12 {
		t.Errorf("superstep = %g, want %g", secs, wantCompute+1e-6)
	}
	st := d.Stats()
	if st.Supersteps != 1 {
		t.Errorf("Supersteps = %d", st.Supersteps)
	}
	if st.ComputeSeconds != wantCompute {
		t.Errorf("ComputeSeconds = %g, want %g", st.ComputeSeconds, wantCompute)
	}
	wantBusy := platform.GC200.ThreadSeconds(100) + platform.GC200.ThreadSeconds(5000) + platform.GC200.ThreadSeconds(300)
	if math.Abs(st.BusyTileSeconds-wantBusy) > 1e-15 {
		t.Errorf("BusyTileSeconds = %g, want %g", st.BusyTileSeconds, wantBusy)
	}
}

func TestRunSuperstepRejectsTooManyTiles(t *testing.T) {
	d := New(Config{Model: platform.GC200, TilesEnabled: 2})
	if _, err := d.RunSuperstep(Superstep{TileInstr: make([]int64, 3)}); err == nil {
		t.Error("superstep with too many tiles accepted")
	}
}

func TestRunSuperstepRejectsSRAMOverflow(t *testing.T) {
	d := New(Config{Model: platform.GC200})
	_, err := d.RunSuperstep(Superstep{TileInstr: []int64{1}, SRAMUsed: 700 * 1024})
	if err == nil {
		t.Error("SRAM overflow accepted")
	}
}

func TestExchangeAccounting(t *testing.T) {
	d := New(Config{Model: platform.BOW, SyncSeconds: 0})
	// SyncSeconds 0 is replaced by the default.
	_, err := d.RunSuperstep(Superstep{TileInstr: []int64{10}, ExchangeBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	want := float64(1<<30) / 10.9e12
	if math.Abs(st.ExchangeSeconds-want)/want > 1e-12 {
		t.Errorf("ExchangeSeconds = %g, want %g", st.ExchangeSeconds, want)
	}
	if st.SyncSeconds != DefaultSyncSeconds {
		t.Errorf("SyncSeconds = %g, want default", st.SyncSeconds)
	}
	if st.TotalSeconds() <= st.ComputeSeconds {
		t.Error("TotalSeconds must include exchange and sync")
	}
	d.Reset()
	if d.Stats() != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
}

func TestHostTransferSeconds(t *testing.T) {
	d := New(Config{Model: platform.GC200})
	want := 12.5e9 // bytes/s on a 100 Gb/s link
	if got := d.HostTransferSeconds(int64(want)); math.Abs(got-1) > 1e-12 {
		t.Errorf("HostTransferSeconds(link rate) = %g, want 1", got)
	}
}

func TestMaxSRAMHighWater(t *testing.T) {
	d := New(Config{Model: platform.GC200})
	d.RunSuperstep(Superstep{TileInstr: []int64{1}, SRAMUsed: 1000})
	d.RunSuperstep(Superstep{TileInstr: []int64{1}, SRAMUsed: 400_000})
	d.RunSuperstep(Superstep{TileInstr: []int64{1}, SRAMUsed: 2000})
	if d.Stats().MaxSRAMUsed != 400_000 {
		t.Errorf("MaxSRAMUsed = %d", d.Stats().MaxSRAMUsed)
	}
}
