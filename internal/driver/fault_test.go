package driver

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/sram-align/xdropipu/internal/ipukernel"
)

// TestFaultPlanDeterministic: a plan's decisions are a pure function of
// (seed, batch, attempt) — two plans with the same seed and spec agree
// on every draw, and Kind itself never counts anything.
func TestFaultPlanDeterministic(t *testing.T) {
	spec := FaultSpec{TransientRate: 0.2, PermanentRate: 0.05, StragglerRate: 0.1}
	a := NewFaultPlan(42, spec)
	b := NewFaultPlan(42, spec)
	for batch := 0; batch < 200; batch++ {
		for attempt := 0; attempt < 5; attempt++ {
			if a.Kind(batch, attempt) != b.Kind(batch, attempt) {
				t.Fatalf("plans with the same seed diverge at (%d, %d)", batch, attempt)
			}
		}
	}
	if got := a.InjectedTotal(); got != 0 {
		t.Fatalf("Kind counted injections: InjectedTotal = %d, want 0", got)
	}
	// Different seeds must disagree somewhere.
	c := NewFaultPlan(43, spec)
	same := true
	for batch := 0; batch < 200 && same; batch++ {
		for attempt := 0; attempt < 5; attempt++ {
			if a.Kind(batch, attempt) != c.Kind(batch, attempt) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("plans with different seeds produced identical schedules")
	}
}

// TestFaultPlanPermanentStable: a batch that draws a permanent fault
// draws it on every attempt — retrying a dead batch keeps failing.
func TestFaultPlanPermanentStable(t *testing.T) {
	p := NewFaultPlan(7, FaultSpec{PermanentRate: 0.3, TransientRate: 0.3})
	perms := 0
	for batch := 0; batch < 500; batch++ {
		if p.Kind(batch, 0) != FaultPermanent {
			continue
		}
		perms++
		for attempt := 1; attempt < 8; attempt++ {
			if k := p.Kind(batch, attempt); k != FaultPermanent {
				t.Fatalf("batch %d permanent at attempt 0 but %s at attempt %d", batch, k, attempt)
			}
		}
	}
	if perms == 0 {
		t.Fatal("no permanent faults drawn at rate 0.3 over 500 batches")
	}
}

// TestFaultPlanRates: empirical injection frequencies track the spec.
func TestFaultPlanRates(t *testing.T) {
	spec := FaultSpec{TransientRate: 0.2, StragglerRate: 0.1}
	p := NewFaultPlan(99, spec)
	const n = 20000
	var tr, st int
	for i := 0; i < n; i++ {
		switch p.Kind(i, 0) {
		case FaultTransient:
			tr++
		case FaultStraggler:
			st++
		case FaultPermanent:
			t.Fatalf("permanent fault at rate 0")
		}
	}
	if f := float64(tr) / n; math.Abs(f-spec.TransientRate) > 0.02 {
		t.Fatalf("transient frequency %.3f, want ~%.2f", f, spec.TransientRate)
	}
	if f := float64(st) / n; math.Abs(f-spec.StragglerRate) > 0.02 {
		t.Fatalf("straggler frequency %.3f, want ~%.2f", f, spec.StragglerRate)
	}
}

// TestExecBatchAttemptInjects: an installed plan fails executions at the
// ExecBatch boundary with a classifiable FaultError, counts what it
// injected, and a clean attempt of the same batch returns results
// bit-identical to a fault-free plan's.
func TestExecBatchAttemptInjects(t *testing.T) {
	d := readsData(t, 21, 16)
	cfg := testCfg(1, true)
	cfg.MaxBatchJobs = 4

	clean, err := BuildBatches(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Transient on attempt 0 everywhere, never after: rate 1 would fail
	// every attempt, so pick the schedule by hand via a full-rate plan
	// and assert attempt-dependence with Kind instead.
	plan := NewFaultPlan(5, FaultSpec{TransientRate: 1})
	cfg.Faults = plan
	faulty, err := BuildBatches(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := faulty.NewDevice()
	kcfg := faulty.KernelConfig(1)
	for i := 0; i < faulty.Batches(); i++ {
		_, err := faulty.ExecBatchAttempt(dev, i, 0, kcfg)
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("batch %d: err = %v, want *FaultError", i, err)
		}
		if !fe.Transient() || fe.Kind != FaultTransient || fe.Batch != i || fe.Attempt != 0 {
			t.Fatalf("batch %d: unexpected fault %+v", i, fe)
		}
	}
	tr, pm, st := plan.Injected()
	if int(tr) != faulty.Batches() || pm != 0 || st != 0 {
		t.Fatalf("Injected() = (%d, %d, %d), want (%d, 0, 0)", tr, pm, st, faulty.Batches())
	}

	// The host path ignores the plan entirely and matches the fault-free
	// fleet execution bit for bit.
	cdev := clean.NewDevice()
	for i := 0; i < clean.Batches(); i++ {
		want, err := clean.ExecBatch(cdev, i, kcfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := faulty.ExecBatchHost(i, kcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: host-path result differs from fault-free execution", i)
		}
	}
	if plan.InjectedTotal() != tr {
		t.Fatal("ExecBatchHost consulted the fault plan")
	}
}

// TestFailedBatchResult: placeholders carry one Failed entry per batch
// job with the job's GlobalID and nothing else.
func TestFailedBatchResult(t *testing.T) {
	d := readsData(t, 22, 12)
	cfg := testCfg(1, true)
	cfg.MaxBatchJobs = 3
	bp, err := BuildBatches(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := bp.NewDevice()
	kcfg := bp.KernelConfig(1)
	for i := 0; i < bp.Batches(); i++ {
		real, err := bp.ExecBatch(dev, i, kcfg)
		if err != nil {
			t.Fatal(err)
		}
		failed := bp.FailedBatchResult(i)
		if len(failed.Out) != len(real.Out) {
			t.Fatalf("batch %d: %d placeholders, want %d", i, len(failed.Out), len(real.Out))
		}
		for k, out := range failed.Out {
			if !out.Failed {
				t.Fatalf("batch %d entry %d: Failed not set", i, k)
			}
			if out.GlobalID != real.Out[k].GlobalID {
				t.Fatalf("batch %d entry %d: GlobalID %d, want %d", i, k, out.GlobalID, real.Out[k].GlobalID)
			}
			if out.Score != 0 || out.Cells != 0 || out.Cigar != "" {
				t.Fatalf("batch %d entry %d: placeholder carries data: %+v", i, k, out)
			}
		}
	}
}

// TestAssemblePlanPartialFailures: a Failed placeholder batch flows
// through assembly into per-comparison Failed results and
// Report.PartialFailures, also under dedup fan-out, and Failed results
// never enter the result cache.
func TestAssemblePlanPartialFailures(t *testing.T) {
	d := readsData(t, 23, 24)
	for _, dedup := range []bool{false, true} {
		cfg := testCfg(1, true)
		cfg.MaxBatchJobs = 4
		cfg.DedupExtensions = dedup
		cache := newCountingCache()
		if dedup {
			cfg.Cache = cache
		}
		bp, err := BuildBatches(context.Background(), d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bp.Batches() < 2 {
			t.Fatalf("want several batches, got %d", bp.Batches())
		}
		dev := bp.NewDevice()
		kcfg := bp.KernelConfig(1)
		outs := make([]*ipukernel.BatchResult, bp.Batches())
		for i := range outs {
			if outs[i], err = bp.ExecBatch(dev, i, kcfg); err != nil {
				t.Fatal(err)
			}
		}
		wantFailed := len(bp.FailedBatchResult(0).Out)
		outs[0] = bp.FailedBatchResult(0)
		plan, err := AssemblePlan(bp, outs)
		if err != nil {
			t.Fatal(err)
		}
		rep := plan.Schedule(cfg.IPUs)
		if rep.PartialFailures == 0 {
			t.Fatalf("dedup=%v: PartialFailures = 0, want > 0", dedup)
		}
		if !dedup && rep.PartialFailures != wantFailed {
			t.Fatalf("PartialFailures = %d, want %d", rep.PartialFailures, wantFailed)
		}
		failed := 0
		for _, r := range rep.Results {
			if r.Failed {
				failed++
				if r.Score != 0 || r.Cigar != "" {
					t.Fatalf("failed result carries data: %+v", r)
				}
			}
		}
		if failed != rep.PartialFailures {
			t.Fatalf("dedup=%v: %d Failed results, PartialFailures = %d", dedup, failed, rep.PartialFailures)
		}
		if dedup && rep.PartialFailures < wantFailed {
			t.Fatalf("dedup fan-out lost failures: %d < %d", rep.PartialFailures, wantFailed)
		}
		for _, e := range cache.put {
			if e.Failed {
				t.Fatal("Failed placeholder entered the result cache")
			}
		}
	}
}

// countingCache records every Put so tests can assert what the
// assembly stage caches.
type countingCache struct {
	put []ipukernel.AlignOut
}

func newCountingCache() *countingCache { return &countingCache{} }

func (c *countingCache) Get(CacheKey) (ipukernel.AlignOut, bool) {
	return ipukernel.AlignOut{}, false
}
func (c *countingCache) Put(_ CacheKey, out ipukernel.AlignOut) { c.put = append(c.put, out) }
