// Multi-slab spine acceptance: the slab layout of the arena is a host
// memory-management detail — repacking the same pool into many small
// slabs (and even spilling them to disk between batches) must leave
// every report bit-identical to the single-slab run.

package driver

import (
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/seqio"
	"github.com/sram-align/xdropipu/internal/workload"
)

// repackSpine rebuilds d's pool into a fresh spine capped at maxSlab
// bytes per slab — same sequences, same indices, same plan — so runs on
// the repacked dataset are byte-comparable to runs on d. The dataset is
// spine-only (no materialised Sequences view), so slabs stay spillable.
func repackSpine(t testing.TB, d *workload.Dataset, maxSlab int) (*workload.Dataset, *workload.Arena) {
	t.Helper()
	a := workload.NewArena(0, d.NumSeqs())
	a.SetMaxSlabBytes(maxSlab)
	for _, s := range d.Sequences {
		a.Append(s)
	}
	rd := a.NewStreamingDataset(d.Name, workload.PlanOf(d.Comparisons), d.Protein)
	if err := rd.Validate(); err != nil {
		t.Fatal(err)
	}
	return rd, a
}

// TestArenaSpineMultiSlabBitIdentical: every golden workload/config pair,
// repacked across several slab caps, must reproduce the single-slab
// report fingerprint exactly — results, transfer bytes, modeled seconds.
func TestArenaSpineMultiSlabBitIdentical(t *testing.T) {
	ds := goldenDatasets(t)
	for name, tc := range goldenConfigs() {
		want, err := Run(ds[tc.dataset], tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantFP := reportFingerprint(want)
		// Two layouts per dataset: slabs barely big enough for the longest
		// sequence (maximum fragmentation), and a ~3-slab cut of the pool.
		// Both are sized from the data so every fixture genuinely rolls.
		longest := 0
		for _, s := range ds[tc.dataset].Sequences {
			longest = max(longest, len(s))
		}
		caps := []int{longest, max(longest, int(ds[tc.dataset].TotalSeqBytes()/3)+1)}
		for _, maxSlab := range caps {
			rd, arena := repackSpine(t, ds[tc.dataset], maxSlab)
			if arena.NumSlabs() < 2 {
				t.Fatalf("%s: %d-byte cap produced %d slabs — fixture not multi-slab", name, maxSlab, arena.NumSlabs())
			}
			rep, err := Run(rd, tc.cfg)
			if err != nil {
				t.Fatalf("%s cap %d: %v", name, maxSlab, err)
			}
			if got := reportFingerprint(rep); got != wantFP {
				t.Errorf("%s: %d-slab report %s differs from single-slab %s",
					name, arena.NumSlabs(), got, wantFP)
			}
		}
	}
}

// TestArenaSpineDedupCacheTraceback: the full feature stack — dedup,
// result cache, traceback — over a duplicate-heavy multi-slab spine must
// match the single-slab run alignment for alignment, CIGARs included,
// and dedup/cache accounting must not depend on the slab layout.
func TestArenaSpineDedupCacheTraceback(t *testing.T) {
	ds := goldenDatasets(t)
	base := duplicated(ds["reads"], 3)
	cfg := goldenConfigs()["reads-partition"].cfg
	cfg.DedupExtensions = true
	cfg.Traceback = true

	want, err := Run(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd, arena := repackSpine(t, base, 1<<13)
	if arena.NumSlabs() < 2 {
		t.Fatalf("fixture not multi-slab: %d slabs", arena.NumSlabs())
	}
	got, err := Run(rd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "multi-slab dedup+traceback", got.Results, want.Results)
	if got.UniqueExtensions != want.UniqueExtensions || got.DedupedComparisons != want.DedupedComparisons {
		t.Errorf("dedup accounting depends on slab layout: %d/%d vs %d/%d",
			got.UniqueExtensions, got.DedupedComparisons, want.UniqueExtensions, want.DedupedComparisons)
	}

	// Result cache: a second run over the same content — packed into yet
	// another slab layout — must be served entirely from cache, because
	// ExtensionKeys are content digests and never see slab indices.
	cache := newMapCache()
	cfg.Cache = cache
	if _, err := Run(rd, cfg); err != nil {
		t.Fatal(err)
	}
	rd2, _ := repackSpine(t, base, 1<<14)
	rep2, err := Run(rd2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheMisses != 0 || rep2.CacheHits != rep2.UniqueExtensions {
		t.Errorf("cross-layout cache run: %d hits / %d misses for %d unique extensions",
			rep2.CacheHits, rep2.CacheMisses, rep2.UniqueExtensions)
	}
	sameResults(t, "cache-served across layouts", rep2.Results, want.Results)
}

// TestArenaSpineSpillExecution: with every slab spilled to disk before
// execution, the driver pins each batch's slab set in, runs it, and
// releases — and the report stays bit-identical to the resident run.
func TestArenaSpineSpillExecution(t *testing.T) {
	ds := goldenDatasets(t)
	tc := goldenConfigs()["reads-partition"]
	want, err := Run(ds[tc.dataset], tc.cfg)
	if err != nil {
		t.Fatal(err)
	}

	rd, arena := repackSpine(t, ds[tc.dataset], 1<<13)
	arena.EnableSpill(t.TempDir())
	arena.Seal()
	if _, err := arena.Spill(); err != nil {
		t.Fatal(err)
	}
	if st := arena.Residency(); st.Resident != 0 {
		t.Fatalf("fixture not fully spilled: %+v", st)
	}

	rep, err := Run(rd, tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportFingerprint(rep); got != reportFingerprint(want) {
		t.Errorf("spilled-spine report %s differs from resident %s", got, reportFingerprint(want))
	}
	st := arena.Residency()
	if st.Faults == 0 {
		t.Error("execution over a spilled spine recorded no faults")
	}
	// Every pin was released: the whole spine spills again.
	if _, err := arena.Spill(); err != nil {
		t.Fatal(err)
	}
	if st := arena.Residency(); st.Resident != 0 {
		t.Errorf("slabs still pinned after the run: %+v", st)
	}
	if err := arena.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestArenaSpineSmoke is the fast multi-slab end-to-end check CI's short
// mode runs: stream FASTA into a tiny-capped spine, partition, execute
// with dedup and traceback, and compare against the identical content in
// one slab. Kept small enough for -short; the heavier sweeps above are
// the full-mode versions.
func TestArenaSpineSmoke(t *testing.T) {
	fasta := ">a\nACGTACGTACGTACGTACGTACGTACGTACGT\n" +
		">b\nACGAACGTACGTTCGTACGTACGAACGTACGT\n" +
		">c\nTTGCATGCATGCATGCATGCAAGCATGCATGC\n" +
		">d\nTTGCATGCATGCATTCATGCAAGCATGCATGC\n" +
		">a2\nACGTACGTACGTACGTACGTACGTACGTACGT\n"
	build := func(maxSlab int) (*workload.Dataset, *workload.Arena) {
		a := workload.NewArena(0, 5)
		a.SetMaxSlabBytes(maxSlab)
		if _, err := a.AppendFasta(strings.NewReader(fasta), seqio.DNAAlphabet); err != nil {
			t.Fatal(err)
		}
		plan := workload.PlanOf([]workload.Comparison{
			{H: 0, V: 1, SeedH: 8, SeedV: 8, SeedLen: 8},
			{H: 2, V: 3, SeedH: 8, SeedV: 8, SeedLen: 8},
			{H: 4, V: 1, SeedH: 8, SeedV: 8, SeedLen: 8}, // a2 interns onto a
		})
		d := a.NewStreamingDataset("smoke", plan, false)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		return d, a
	}
	cfg := goldenConfigs()["reads-partition"].cfg
	cfg.DedupExtensions = true
	cfg.Traceback = true

	single, arena1 := build(0x7fffffff)
	if arena1.NumSlabs() != 1 {
		t.Fatalf("control spine has %d slabs", arena1.NumSlabs())
	}
	multi, arenaN := build(48)
	if arenaN.NumSlabs() < 3 {
		t.Fatalf("smoke spine has %d slabs, want ≥3", arenaN.NumSlabs())
	}
	arenaN.EnableSpill(t.TempDir())
	arenaN.Seal()
	if _, err := arenaN.Spill(); err != nil {
		t.Fatal(err)
	}

	want, err := Run(single, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(multi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := reportFingerprint(want), reportFingerprint(got); a != b {
		t.Fatalf("smoke: multi-slab spilled report %s differs from single-slab %s", b, a)
	}
	if got.DedupedComparisons != 1 {
		t.Errorf("smoke: DedupedComparisons = %d, want 1 (a2 interns onto a)", got.DedupedComparisons)
	}
	if err := arenaN.Close(); err != nil {
		t.Fatal(err)
	}
}
