package driver

import (
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/workload"
)

// TestKernelTierComposition is the tier half of the PR contract: with
// dedup, a shared result cache and traceback all live, every kernel tier
// must return bit-identical per-comparison alignments (scores,
// coordinates, traces and CIGARs — AlignOut is ==-comparable), the tier
// counters must partition the executed extensions, and the shared cache
// must never serve one tier's entries to another because the tier is
// folded into KernelFingerprint.
func TestKernelTierComposition(t *testing.T) {
	d := duplicated(goldenDatasets(t)["uniform"], 2)
	cache := newMapCache() // one cache shared across every tier
	base := goldenConfigs()["uniform-nopart"].cfg
	base.Traceback = true

	run := func(tier core.Tier) *Report {
		cfg := base
		cfg.Cache = cache // implies dedup
		cfg.KernelTier = tier
		rep, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		return rep
	}

	wide := run(core.TierWide)
	for _, tier := range []core.Tier{core.TierNarrow, core.TierAuto} {
		rep := run(tier)
		sameResults(t, tier.String(), rep.Results, wide.Results)
		if rep.CacheHits != 0 {
			t.Errorf("tier %v: %d cache hits from a differently-tiered warm cache",
				tier, rep.CacheHits)
		}
		if rep.NarrowExtensions == 0 {
			t.Errorf("tier %v: DNA unit scores are narrow-eligible, yet no narrow extensions ran", tier)
		}
		if rep.PromotedExtensions != 0 {
			t.Errorf("tier %v: %d promotions on a workload that cannot saturate int16",
				tier, rep.PromotedExtensions)
		}
		// Two extensions (left, right) per executed unique comparison;
		// cache-served and deduped rows contribute nothing.
		sum := rep.NarrowExtensions + rep.WideExtensions + rep.PromotedExtensions
		if want := 2 * rep.UniqueExtensions; sum != want {
			t.Errorf("tier %v: counters sum to %d, want 2·unique = %d", tier, sum, want)
		}
	}
	// A same-tier rerun over the warm cache must be all hits — the tier
	// byte separates entries without breaking same-configuration reuse.
	rewarm := run(core.TierAuto)
	sameResults(t, "auto-warm", rewarm.Results, wide.Results)
	if rewarm.CacheMisses != 0 || rewarm.CacheHits != rewarm.UniqueExtensions {
		t.Errorf("warm auto rerun: hits %d misses %d (unique %d)",
			rewarm.CacheHits, rewarm.CacheMisses, rewarm.UniqueExtensions)
	}
	if wide.WideExtensions == 0 || wide.NarrowExtensions != 0 {
		t.Errorf("wide tier ran narrow kernels: %+v", wide)
	}
}

// TestKernelFingerprintSeparatesTiers: the resolved tier is part of the
// kernel fingerprint — distinct tiers never alias — while the two ways
// of spelling a tier (driver knob vs core params) resolve to the same
// fingerprint.
func TestKernelFingerprintSeparatesTiers(t *testing.T) {
	base := goldenConfigs()["uniform-nopart"].cfg.Normalized()
	seen := map[uint64]core.Tier{}
	for _, tier := range []core.Tier{core.TierWide, core.TierNarrow, core.TierAuto} {
		cfg := base
		cfg.KernelTier = tier
		cfg = cfg.Normalized()
		fp := KernelFingerprint(cfg.Kernel, cfg.Model)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("tiers %v and %v share fingerprint %x", prev, tier, fp)
		}
		seen[fp] = tier

		via := base
		via.Kernel.Params.Tier = tier
		via = via.Normalized()
		if got := KernelFingerprint(via.Kernel, via.Model); got != fp {
			t.Errorf("tier %v: Params.Tier fingerprint %x != KernelTier fingerprint %x",
				tier, got, fp)
		}
	}
}

// TestKernelTierPromotionDriverPath forces int16 saturation through the
// full driver stack: a +9 match over ~4.4k identical flanks accumulates
// past the saturation guard, so TierNarrow must promote every extension
// and still report alignments bit-identical to the wide tier, while
// TierAuto's headroom proof rejects the narrow kernel outright and runs
// wide with zero promotions.
func TestKernelTierPromotionDriverPath(t *testing.T) {
	seq := make([]byte, 9000)
	for i := range seq {
		seq[i] = "ACGT"[i%4]
	}
	d := &workload.Dataset{
		Name:      "sat",
		Sequences: [][]byte{seq, append([]byte(nil), seq...)},
		Comparisons: []workload.Comparison{
			{H: 0, V: 1, SeedH: 4480, SeedV: 4480, SeedLen: 17},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		IPUs: 1, Model: platform.GC200, TilesPerIPU: 4,
		Kernel: ipukernel.Config{
			Params: core.Params{Scorer: scoring.NewSimple(9, -9), Gap: -3, X: 50, DeltaB: 256},
		},
	}
	wide, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.KernelTier = core.TierNarrow
	prom, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "promoted", prom.Results, wide.Results)
	if prom.PromotedExtensions != 2 || prom.NarrowExtensions != 0 {
		t.Errorf("narrow tier: promoted %d narrow %d, want both extensions promoted",
			prom.PromotedExtensions, prom.NarrowExtensions)
	}

	cfg.KernelTier = core.TierAuto
	auto, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "auto", auto.Results, wide.Results)
	if auto.PromotedExtensions != 0 || auto.NarrowExtensions != 0 || auto.WideExtensions != 2 {
		t.Errorf("auto tier on saturating scores: narrow %d wide %d promoted %d, want wide-only",
			auto.NarrowExtensions, auto.WideExtensions, auto.PromotedExtensions)
	}
}
