// Package driver is the host-side wrapping layer of §4.4: it owns the
// batches, schedules them over multiple standalone IPU devices through a
// shared work queue, and models the shared 100 Gb/s host link including
// prefetch overlap (transfers for the next batch proceed while a device
// computes, as the M2000 DRAM buffering permits).
//
// The devices stay hidden from the caller — scaling up is a matter of
// setting Config.IPUs, exactly like the paper's NUMBER_IPUS parameter
// (§5.3). Planning (batch construction and kernel execution) is separate
// from scheduling, so strong-scaling sweeps re-schedule the same plan at
// many device counts without recomputing alignments.
package driver

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/ipu"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/partition"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Config selects the device fleet and execution strategy.
type Config struct {
	// IPUs is the device count (NUMBER_IPUS).
	IPUs int
	// Model is the IPU generation.
	Model platform.IPUModel
	// TilesPerIPU restricts tiles per device (0 = all; Table 1 ablation
	// and scaled-down experiments).
	TilesPerIPU int
	// Kernel configures the on-tile X-Drop codelet.
	Kernel ipukernel.Config
	// Partition enables graph-based sequence reuse (§4.3) — the
	// "Multicomparison" mode of Fig. 7. Disabled, every comparison
	// travels with its own copy of both sequences.
	Partition bool
	// SeqBudget caps a partition's sequence payload in bytes (0 derives
	// a budget from tile SRAM and the dataset's longest extension).
	SeqBudget int
	// SpreadFactor targets this many items per tile so small workloads
	// still use the whole device (0 → 3).
	SpreadFactor int
	// BatchOverheadSeconds is the fixed host-side cost per submitted
	// batch (graph engagement, stream setup). Defaults to 0.5 ms.
	BatchOverheadSeconds float64
	// MaxBatchJobs caps comparisons per batch (0 = SRAM-bound batches).
	// Finer batches deepen the multi-device work queue.
	MaxBatchJobs int
	// DedupExtensions maps every comparison to its unique-extension
	// representative (content-addressed: interned bytes plus seed
	// geometry) and executes only the representatives; AssemblePlan fans
	// each result back out, so reports stay per-comparison while modeled
	// work drops. Off by default — reports are bit-identical to the
	// non-dedup stack when disabled, and per-comparison alignments are
	// identical either way.
	DedupExtensions bool
	// Cache, when non-nil, is consulted per unique extension during plan
	// building and filled when plans are assembled, so byte-identical
	// extensions across jobs are aligned once (engine.WithResultCache
	// provides a bounded sharded LRU). A non-nil Cache implies
	// DedupExtensions.
	Cache ResultCache
	// Traceback enables the two-pass traceback subsystem: every result
	// carries its CIGAR (ipukernel.AlignOut.Cigar) and the report exposes
	// peak traceback memory. Normalized folds it into Kernel.Traceback,
	// and it is part of the kernel fingerprint, so a shared result cache
	// never serves CIGAR-less entries to a traceback-enabled run (or vice
	// versa). Off, reports are bit-identical to the score-only stack.
	Traceback bool
	// TraceMinScore gates the traceback cost behind a score cutoff:
	// comparisons whose total score (left + seed + right) falls below it
	// deliver score-only results, and only the keepers pay the recording
	// replay — mirroring seed-and-extend pipelines that report only
	// above-threshold alignments. Zero or negative traces everything.
	// Ignored without Traceback. Normalized folds it into
	// Kernel.TraceMinScore, and it is part of KernelFingerprint while
	// tracing, so a cache hit from a differently-gated run can never fan
	// out a stale (or missing) CIGAR.
	TraceMinScore int
	// TraceMode selects how directions are recorded when a comparison is
	// traced: core.TraceModeAuto fuses recording into the scoring pass
	// when the extension's direction arena fits the per-thread budget
	// (replaying otherwise), core.TraceModeReplay always replays (the
	// PR 5 two-pass scheme), core.TraceModeFused forces fusing wherever
	// the kernel is eligible. Fused and replayed recordings are
	// bit-identical; the modes differ in SRAM charging and modeled time,
	// and fold into KernelFingerprint while tracing. Normalized mirrors
	// it with Kernel.TraceMode (non-auto wins).
	TraceMode core.TraceMode
	// KernelTier selects the kernel score width (core.TierWide, the
	// int32 default; core.TierNarrow, int16 with transparent saturation
	// promotion; core.TierAuto, int16 only under the headroom proof).
	// Normalized folds it with Kernel.KernelTier — whichever knob is
	// non-wide wins — and the choice is part of KernelFingerprint, so a
	// shared result cache never mixes tiers even though completed narrow
	// results are bit-identical to wide ones: the tiers differ in trace
	// accounting (Stats.WorkBytes), not alignments.
	KernelTier core.Tier
	// Faults, when non-nil, installs deterministic fault injection at the
	// ExecBatch boundary: transient and permanent execution failures plus
	// straggler latency, decided per (batch, attempt) from the plan's
	// seed. Injection can fail or delay an execution but never alter a
	// delivered result, so it is excluded from KernelFingerprint and a
	// shared result cache stays sound across faulty and clean runs
	// (degraded Failed placeholders are additionally never cached). Nil
	// injects nothing — the default path is byte-for-byte the seed
	// behaviour.
	Faults *FaultPlan
}

// CacheKey is the full identity a cached extension result depends on:
// the content-addressed extension (bytes + seed geometry) and a
// fingerprint of every kernel parameter that can change an alignment
// (KernelFingerprint). The driver composes both halves on every lookup,
// so a single ResultCache shared across differently-configured runs can
// never serve one configuration's scores to another.
type CacheKey struct {
	// Kernel is KernelFingerprint of the run's kernel configuration.
	Kernel uint64
	// Ext is the extension's content-addressed identity.
	Ext workload.ExtensionKey
}

// ResultCache memoises finished extensions across jobs. Get returns the
// cached alignment for a key (GlobalID in the returned value is
// meaningless; the assembler rewrites it per comparison); Put records an
// executed extension. Implementations must be safe for concurrent use —
// the engine's executors and builders share one cache.
type ResultCache interface {
	Get(key CacheKey) (ipukernel.AlignOut, bool)
	Put(key CacheKey, out ipukernel.AlignOut)
}

// KernelFingerprint hashes every kernel-configuration input that can
// change anything in an AlignOut: the algorithm, X, δb, gap penalties
// and the full scoring table, plus the scheduling knobs that alter the
// per-result execution trace — the effective thread count (resolved
// against the model, so Threads=0 on two different IPU generations
// never aliases and an explicit default never spuriously misses), LR
// splitting and the work-stealing mode, because a racy steal re-executes
// a unit and inflates that result's Cells/Antidiagonals. Knobs that only
// change modeled time (dual issue, the cost model, host-side
// parallelism) are deliberately excluded, so runs differing only in
// those share cache entries. Trace statistics of a cache-served result
// always describe the run that computed it.
func KernelFingerprint(cfg ipukernel.Config, model platform.IPUModel) uint64 {
	h := fnv.New64a()
	put := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	p := cfg.Params
	put(int64(p.Algo))
	put(int64(p.X))
	put(int64(p.DeltaB))
	put(int64(p.Gap))
	put(int64(p.GapOpen))
	put(int64(cfg.EffectiveThreads(model)))
	flags := int64(0)
	if cfg.LRSplit {
		flags |= 1
	}
	if cfg.WorkStealing {
		flags |= 2
		// BusyWaitVariance only shapes the schedule under work stealing
		// (ipukernel documents it as ignored otherwise); hashing it
		// unconditionally would split behaviorally identical configs.
		if cfg.BusyWaitVariance {
			flags |= 4
		}
	}
	if cfg.Traceback {
		// Traceback-on results carry CIGARs and trace-byte accounting;
		// they must never be served to (or taken from) a score-only run.
		flags |= 8
	}
	put(flags)
	// The resolved kernel tier: completed narrow alignments are
	// bit-identical to wide ones, but the tiers' trace accounting
	// (Stats.WorkBytes, promotion counters) differs, so cached entries
	// must not cross tiers. Resolved (not raw) so the two equivalent
	// knobs — Config.KernelTier and Params.Tier — never alias apart.
	put(int64(cfg.Tier()))
	if cfg.Traceback {
		// The gate cutoff decides which results carry CIGARs and the
		// mode decides what the trace accounting describes — entries
		// from gated/ungated or fused/replay runs must never mix, or a
		// warm hit below the cutoff would fan out a stale CIGAR. Hashed
		// only while tracing so score-only runs keep sharing entries.
		put(int64(cfg.TraceMinScore))
		put(int64(cfg.TraceMode))
	}
	if p.Scorer != nil {
		tab := p.Scorer.Table()
		row := make([]byte, len(tab[0]))
		for _, r := range tab {
			for i, v := range r {
				row[i] = byte(v)
			}
			h.Write(row)
		}
	}
	return h.Sum64()
}

// DefaultBatchOverheadSeconds is the modeled per-batch host cost.
const DefaultBatchOverheadSeconds = 0.5e-3

// Plan is an executed batch schedule: alignments are done, per-batch
// durations and transfer sizes are known, and the plan can be replayed
// against any device count.
type Plan struct {
	cfg     Config
	tiles   int
	results []ipukernel.AlignOut
	batches []batchTiming
	// aggregates
	deviceCompute    float64
	hostBytesIn      int64
	uniqueSeqIn      int64
	hostBytesOut     int64
	theoretical      int64
	cells            int64
	sumBand          int64
	antidiags        int64
	races, stealOps  int
	clamped, maxSRAM int
	reuseFactor      float64
	// dedup / cache accounting
	uniqueExtensions     int
	dedupedComparisons   int
	cacheHits, cacheMiss int
	skippedCells         int64
	// traceback accounting
	peakTraceBytes        int
	traceBytes            int64
	tracedExt, skippedExt int
	// kernel-tier accounting
	narrowExt, wideExt, promotedExt int
	// degraded completion accounting
	partialFailures int
}

type batchTiming struct {
	seconds  float64
	inBytes  int64
	outBytes int64
}

// Report is the outcome of one scheduled run.
type Report struct {
	// Results holds one entry per comparison, indexed like the dataset's
	// comparison list.
	Results []ipukernel.AlignOut
	// Batches is the number of BSP supersteps submitted.
	Batches int
	// IPUs is the scheduled device count.
	IPUs int
	// WallSeconds is the modeled end-to-end time: transfers on the
	// shared link, compute, result return, with prefetch overlap. This
	// is the Fig. 7 measure.
	WallSeconds float64
	// DeviceComputeSeconds sums on-device compute across batches — the
	// paper's GCUPS time base for Fig. 5 (§5.1: cycles/f, no transfers).
	DeviceComputeSeconds float64
	// TransferSeconds is the total busy time of the shared host link.
	TransferSeconds float64
	// HostBytesIn/HostBytesOut count link traffic.
	HostBytesIn, HostBytesOut int64
	// UniqueSeqBytesIn is the exact arena payload per §4.1: distinct slab
	// bytes covered by the tiles' spans. The gap to HostBytesIn is what
	// descriptor-level sequence duplication still costs on the link.
	UniqueSeqBytesIn int64
	// TheoreticalCells and Cells aggregate alignment traces.
	TheoreticalCells, Cells int64
	// SumBand and Antidiags support mean-live-band reporting.
	SumBand, Antidiags int64
	// Races and StealOps aggregate work-stealing behaviour.
	Races, StealOps int
	// Clamped counts alignments whose δb window clamped.
	Clamped int
	// ReuseFactor is the partitioner's transfer saving (1 = none).
	ReuseFactor float64
	// MaxSRAM is the largest tile footprint seen.
	MaxSRAM int
	// UniqueExtensions is the number of distinct (pair, seed) extensions
	// behind Results — equal to len(Results) unless DedupExtensions
	// collapsed duplicates.
	UniqueExtensions int
	// DedupedComparisons counts comparisons served by another row's
	// extension (0 with dedup off).
	DedupedComparisons int
	// CacheHits and CacheMisses count result-cache lookups during plan
	// building (0 without a cache).
	CacheHits, CacheMisses int
	// SkippedTheoreticalCells is the |H|·|V| volume dedup and the cache
	// kept off the device: TheoreticalCells covers executed work only,
	// and TheoreticalCells + SkippedTheoreticalCells is the per-comparison
	// total a dedup-off run would model.
	SkippedTheoreticalCells int64
	// PeakTracebackBytes is the largest single-extension direction-trace
	// footprint any tile thread held — the paper's space story measured
	// for traceback: bounded by the live-window band (2 bits per banded
	// cell, 4 for affine), never by the O(m·n) matrix. Zero with
	// Config.Traceback off. TracebackBytes sums recorded trace storage
	// over every executed extension.
	PeakTracebackBytes int
	TracebackBytes     int64
	// TracedExtensions counts executed extensions that delivered a
	// recorded trace; TraceSkippedExtensions counts ones the score gate
	// skipped (score-only results). Disjoint; both zero with traceback
	// off, and trace-overflow-degraded comparisons count in neither.
	TracedExtensions       int
	TraceSkippedExtensions int
	// PartialFailures counts comparisons that completed with a Failed
	// placeholder instead of an alignment — quarantined work the engine's
	// degraded partial-failure mode chose to report rather than retry
	// forever. Zero on any non-degraded run; Results entries with Failed
	// set carry no scores or coordinates.
	PartialFailures int
	// Kernel-tier accounting over executed extensions (cache-served and
	// deduped comparisons contribute nothing — no kernel ran for them).
	// NarrowExtensions completed on the int16 tier, PromotedExtensions
	// saturated int16 and transparently re-ran wide, WideExtensions ran
	// int32 outright; the three are disjoint.
	NarrowExtensions, WideExtensions, PromotedExtensions int
}

// GCUPS returns the paper's metric over the chosen time base.
func (r *Report) GCUPS(seconds float64) float64 {
	return metrics.GCUPS(r.TheoreticalCells, seconds)
}

// MeanBand returns the mean computed antidiagonal width.
func (r *Report) MeanBand() float64 {
	if r.Antidiags == 0 {
		return 0
	}
	return float64(r.SumBand) / float64(r.Antidiags)
}

// Normalized fills Config defaults the way every entry point (Run,
// NewPlan, the engine) must agree on, so a plan built anywhere schedules
// identically everywhere.
func (c Config) Normalized() Config {
	if c.IPUs <= 0 {
		c.IPUs = 1
	}
	if c.Model.Tiles == 0 {
		c.Model = platform.GC200
	}
	if c.SpreadFactor <= 0 {
		c.SpreadFactor = 3
	}
	// Fold the driver-level traceback switch into the kernel config (and
	// back), so fingerprints, batch execution and TileMemoryBytes all see
	// one flag no matter which level enabled it. Idempotent.
	c.Kernel.Traceback = c.Kernel.Traceback || c.Traceback
	c.Traceback = c.Kernel.Traceback
	// The trace gate and mode fold the same way (non-zero / non-auto
	// wins), so the fingerprint, the SRAM model and the tile kernel see
	// one choice regardless of which level set it. Idempotent.
	if c.Kernel.TraceMinScore == 0 {
		c.Kernel.TraceMinScore = c.TraceMinScore
	}
	c.TraceMinScore = c.Kernel.TraceMinScore
	if c.Kernel.TraceMode == core.TraceModeAuto {
		c.Kernel.TraceMode = c.TraceMode
	}
	c.TraceMode = c.Kernel.TraceMode
	// Same for the kernel tier: non-wide wins, mirrored on both knobs.
	if c.KernelTier == core.TierWide {
		c.KernelTier = c.Kernel.Tier()
	}
	c.Kernel.KernelTier = c.KernelTier
	c.Kernel.Params.Tier = c.KernelTier
	return c
}

// EffectiveTiles returns the per-device tile count after clamping
// TilesPerIPU to the model.
func (c Config) EffectiveTiles() int {
	c = c.Normalized()
	tiles := c.TilesPerIPU
	if tiles <= 0 || tiles > c.Model.Tiles {
		tiles = c.Model.Tiles
	}
	return tiles
}

// BatchPlan is the build stage's output: the dataset partitioned and
// batched for the modeled device, but not yet executed. It separates the
// cheap, cancellable planning work from kernel execution so callers (the
// engine above all) can interleave batches from many plans onto a shared
// device fleet.
type BatchPlan struct {
	cfg         Config
	tiles       int
	batches     []*ipukernel.Batch
	comparisons int
	reuseFactor float64

	// arena is the spine the batches' spans address; batchSlabs[i] is the
	// sorted set of slab indices batch i references. Execution pins
	// exactly that set around each attempt (ExecBatchAttempt binds the
	// pinned views into a per-attempt batch copy), so slabs outside the
	// working set can stay spilled and hedged attempts never share
	// mutable tile state.
	arena      *workload.Arena
	batchSlabs [][]int32

	// Dedup state (nil dedup = off, every comparison executed as itself).
	dedup *workload.DedupMap
	// execUID maps a kernel GlobalID (row in the executed sub-plan) to
	// its unique-extension ordinal.
	execUID []int32
	// cachedOuts holds cache-hit results per unique-extension ordinal;
	// those extensions were never planned for execution.
	cachedOuts map[int32]ipukernel.AlignOut
	// keys / hasKey remember the cache keys of extensions that missed, so
	// AssemblePlan can fill the cache after execution.
	keys   []CacheKey
	hasKey []bool
	// cacheHits/cacheMisses count lookups at build time; cacheSkipCells
	// is the per-comparison theoretical volume cache hits kept off the
	// device (fan-out included).
	cacheHits, cacheMisses int
	cacheSkipCells         int64

	// fanOnce/fanOffsets/fanRows lazily build the uid → comparison-rows
	// index (CSR layout) behind ResultExpander and CachedResults.
	fanOnce    sync.Once
	fanOffsets []int32
	fanRows    []int32
}

// fanIndex returns the unique-extension → comparison-rows index: rows
// for ordinal uid are fanRows[fanOffsets[uid]:fanOffsets[uid+1]]. Built
// once, safe for concurrent use.
func (bp *BatchPlan) fanIndex() (offsets, rows []int32) {
	bp.fanOnce.Do(func() {
		dm := bp.dedup
		bp.fanOffsets = make([]int32, dm.Unique()+1)
		for uid, f := range dm.Fanout {
			bp.fanOffsets[uid+1] = bp.fanOffsets[uid] + f
		}
		bp.fanRows = make([]int32, len(dm.RowUID))
		next := append([]int32(nil), bp.fanOffsets[:dm.Unique()]...)
		for row, uid := range dm.RowUID {
			bp.fanRows[next[uid]] = int32(row)
			next[uid]++
		}
	})
	return bp.fanOffsets, bp.fanRows
}

// ResultExpander returns a function that maps one executed batch's raw
// results into per-comparison space: each unique extension's result is
// fanned out to every comparison row that shares it, with GlobalID
// rewritten per row — the same view AssemblePlan produces, available
// per batch so streaming consumers keep the documented "GlobalID indexes
// the submitted dataset" contract. Returns nil when the plan was built
// without dedup (results are already per-comparison). The expander holds
// only the small fan-out index, so callers may retain it after releasing
// the plan; it is safe for concurrent use.
//
// The expansion is best-effort on malformed input: a result whose
// GlobalID falls outside the executed sub-plan (impossible absent a
// kernel bug) is dropped from the stream, and the same condition fails
// the job loudly when AssemblePlan merges the full result set.
func (bp *BatchPlan) ResultExpander() func([]ipukernel.AlignOut) []ipukernel.AlignOut {
	if bp.dedup == nil {
		return nil
	}
	offsets, rows := bp.fanIndex()
	execUID := bp.execUID
	return func(out []ipukernel.AlignOut) []ipukernel.AlignOut {
		exp := make([]ipukernel.AlignOut, 0, len(out))
		for _, o := range out {
			if o.GlobalID < 0 || o.GlobalID >= len(execUID) {
				continue
			}
			uid := execUID[o.GlobalID]
			for _, row := range rows[offsets[uid]:offsets[uid+1]] {
				o.GlobalID = int(row)
				exp = append(exp, o)
			}
		}
		return exp
	}
}

// CachedResults returns the per-comparison results the build resolved
// from the result cache (fanned out, GlobalID per row, rows in ascending
// unique-extension order), or nil when nothing was cache-served. These
// extensions never execute, so they appear in no batch; streaming
// consumers receive them as an up-front update.
func (bp *BatchPlan) CachedResults() []ipukernel.AlignOut {
	if len(bp.cachedOuts) == 0 {
		return nil
	}
	offsets, rows := bp.fanIndex()
	var res []ipukernel.AlignOut
	for uid := 0; uid < bp.dedup.Unique(); uid++ {
		o, ok := bp.cachedOuts[int32(uid)]
		if !ok {
			continue
		}
		for _, row := range rows[offsets[uid]:offsets[uid+1]] {
			o.GlobalID = int(row)
			res = append(res, o)
		}
	}
	return res
}

// BuildBatches partitions and batches the dataset's comparisons without
// executing anything. The context is checked between the pipeline's
// stages (validate → dedup/cache → budget → partition → batch), so a
// cancelled submission aborts before burning kernel time.
//
// With Config.DedupExtensions (or a Cache), the build first maps every
// comparison to its unique-extension representative and — when a cache is
// attached — resolves representatives already memoised from earlier jobs;
// only the remainder is partitioned and batched. AssemblePlan fans every
// representative's result back out, so Report.Results stays one entry per
// submitted comparison.
func BuildBatches(ctx context.Context, d *workload.Dataset, cfg Config) (*BatchPlan, error) {
	cfg = cfg.Normalized()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The one dataset-validation gate for every execution path (Run,
	// NewPlan, engine Submit): layers below index Ω without re-checking.
	if err := d.Validate(); err != nil {
		return nil, err
	}
	bp := &BatchPlan{cfg: cfg, comparisons: len(d.Comparisons)}

	// The dataset the partitioner sees: the submission itself, or the
	// unique-extension sub-plan over the same arena when dedup is on.
	execD := d
	var fanout []int32
	if cfg.DedupExtensions || cfg.Cache != nil {
		arena, plan := d.Spine()
		dm := arena.DedupPlan(plan)
		// Duplicate-free traffic with no cache to consult: the executed
		// sub-plan would be the whole plan, so skip the plan copy, the
		// derived dataset and the per-row fan-out entirely — the plain
		// path is byte-for-byte identical.
		dedupUseful := cfg.Cache != nil || dm.Duplicates() > 0
		if dedupUseful {
			bp.dedup = dm
		}
		var kernelFP uint64
		if cfg.Cache != nil {
			bp.cachedOuts = make(map[int32]ipukernel.AlignOut)
			bp.keys = make([]CacheKey, dm.Unique())
			bp.hasKey = make([]bool, dm.Unique())
			kernelFP = KernelFingerprint(cfg.Kernel, cfg.Model)
		}
		if dedupUseful {
			execRows := make([]int32, 0, dm.Unique())
			for uid, row := range dm.UniqueRows {
				c := plan.At(int(row))
				if cfg.Cache != nil {
					key := CacheKey{Kernel: kernelFP, Ext: arena.ExtensionKeyOf(c)}
					if out, ok := cfg.Cache.Get(key); ok {
						out.GlobalID = -1
						bp.cachedOuts[int32(uid)] = out
						bp.cacheHits++
						bp.cacheSkipCells += int64(dm.Fanout[uid]) *
							int64(arena.Ref(c.H).Len) * int64(arena.Ref(c.V).Len)
						continue
					}
					bp.cacheMisses++
					bp.keys[uid], bp.hasKey[uid] = key, true
				}
				bp.execUID = append(bp.execUID, int32(uid))
				execRows = append(execRows, row)
				fanout = append(fanout, dm.Fanout[uid])
			}
			if len(execRows) == 0 {
				// Every extension came from the cache: nothing to execute.
				bp.tiles = cfg.EffectiveTiles()
				bp.reuseFactor = 1
				return bp, nil
			}
			if len(execRows) == plan.Len() {
				// Identity mapping — nothing collapsed, nothing cached
				// (execRows ≤ unique ≤ rows, so equality implies both).
				// Partition the submission itself and skip the plan copy;
				// the keys/execUID bookkeeping still feeds the Put pass.
				fanout = nil
			} else {
				execD = arena.NewDataset(d.Name, plan.Select(execRows), d.Protein)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	seqBudget := cfg.SeqBudget
	if seqBudget <= 0 {
		var err error
		seqBudget, err = partition.DeriveSeqBudget(execD, cfg.Kernel, cfg.Model)
		if err != nil {
			return nil, err
		}
	}
	tiles := cfg.EffectiveTiles()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Cap partition size so the workload spreads over every tile.
	maxCmps := 0
	if target := tiles * cfg.SpreadFactor; target > 0 && len(execD.Comparisons) > 0 {
		maxCmps = (len(execD.Comparisons) + target - 1) / target
		if maxCmps < 1 {
			maxCmps = 1
		}
	}
	items := partition.BuildItems(execD, partition.Options{
		SeqBudget: seqBudget,
		Reuse:     cfg.Partition,
		MaxCmps:   maxCmps,
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	batches, err := partition.MakeBatchesFanout(execD, items, tiles, cfg.Kernel, cfg.Model, cfg.MaxBatchJobs, fanout)
	if err != nil {
		return nil, err
	}
	bp.tiles = tiles
	bp.batches = batches
	bp.reuseFactor = partition.ReuseFactor(execD, items)
	bp.arena, _ = execD.Spine()
	bp.batchSlabs = batchSlabSets(batches)
	return bp, nil
}

// batchSlabSets computes, per batch, the sorted set of spine slabs its
// tiles' spans reference — the exact residency the batch needs pinned
// while it executes.
func batchSlabSets(batches []*ipukernel.Batch) [][]int32 {
	sets := make([][]int32, len(batches))
	for bi, b := range batches {
		seen := make(map[int32]struct{})
		for ti := range b.Tiles {
			for _, r := range b.Tiles[ti].Seqs {
				seen[r.Slab] = struct{}{}
			}
		}
		set := make([]int32, 0, len(seen))
		for si := range seen {
			set = append(set, si)
		}
		slices.Sort(set)
		sets[bi] = set
	}
	return sets
}

// boundBatch pins batch i's slab set in the arena and returns the batch
// bound to the pinned views, plus the release hook. Pinning an already
// resident slab is a counter bump, so the plain in-memory path pays one
// mutex round-trip per batch execution.
func (bp *BatchPlan) boundBatch(i int) (*ipukernel.Batch, func(), error) {
	b := bp.batches[i]
	if bp.arena == nil {
		return b, func() {}, nil
	}
	pin, err := bp.arena.Pin(bp.batchSlabs[i])
	if err != nil {
		return nil, nil, fmt.Errorf("driver: batch %d slab pin: %w", i, err)
	}
	return b.Bound(pin.Slabs()), pin.Release, nil
}

// Batches returns the number of supersteps in the build.
func (bp *BatchPlan) Batches() int { return len(bp.batches) }

// Comparisons returns the dataset's comparison count.
func (bp *BatchPlan) Comparisons() int { return bp.comparisons }

// NewDevice creates a modeled device matching the plan's configuration.
// Executors create one per goroutine and reuse it across batches (and,
// in the engine, across plans with the same configuration).
func (bp *BatchPlan) NewDevice() *ipu.Device {
	return ipu.New(ipu.Config{Model: bp.cfg.Model, TilesEnabled: bp.tiles})
}

// KernelConfig resolves the kernel configuration for an executor pool of
// the given width: an unset Parallelism splits the CPU budget between the
// pool and each Run's tile pool so nested pools do not multiply into P²
// goroutines.
func (bp *BatchPlan) KernelConfig(poolWorkers int) ipukernel.Config {
	kcfg := bp.cfg.Kernel
	if kcfg.Parallelism <= 0 && poolWorkers > 0 {
		kcfg.Parallelism = max(1, runtime.GOMAXPROCS(0)/poolWorkers)
	}
	return kcfg
}

// ExecBatch runs batch i on dev. Batches are independent (disjoint
// comparisons, no shared device state that affects results), so any
// executor may run any subset in any order; per-batch results are
// deterministic. It is attempt 0 of ExecBatchAttempt — the path every
// pre-fault-tolerance caller keeps.
func (bp *BatchPlan) ExecBatch(dev *ipu.Device, i int, kcfg ipukernel.Config) (*ipukernel.BatchResult, error) {
	return bp.ExecBatchAttempt(dev, i, 0, kcfg)
}

// ExecBatchAttempt runs one attempt of batch i on dev, consulting the
// configured fault plan first: an injected transient or permanent fault
// returns a *FaultError without touching the device, and a straggler
// decision delays the (otherwise normal) execution. attempt numbers
// re-executions of the same batch — retries and hedges — so a seeded
// plan's schedule is reproducible per execution, not just per batch.
// Whenever an attempt returns a result, it is bit-identical to every
// other attempt's: injection can only fail or delay, never corrupt.
func (bp *BatchPlan) ExecBatchAttempt(dev *ipu.Device, i, attempt int, kcfg ipukernel.Config) (*ipukernel.BatchResult, error) {
	if f := bp.cfg.Faults; f != nil {
		if err := f.inject(i, attempt); err != nil {
			return nil, err
		}
	}
	b, release, err := bp.boundBatch(i)
	if err != nil {
		return nil, err
	}
	defer release()
	return ipukernel.Run(dev, b, kcfg)
}

// ExecBatchHost runs batch i through the reference host path: the same
// deterministic extension implementation (internal/core) the tile
// codelet wraps, executed on a private device outside the shared fleet
// and outside any installed fault plan. It is the graceful-degradation
// escape hatch for quarantined batches — per-comparison results are
// bit-identical to fleet execution by the determinism invariant, and the
// modeled accounting describes the same deterministic superstep, so a
// report assembled from any mix of fleet and host executions is
// bit-identical to the fault-free run.
func (bp *BatchPlan) ExecBatchHost(i int, kcfg ipukernel.Config) (*ipukernel.BatchResult, error) {
	b, release, err := bp.boundBatch(i)
	if err != nil {
		return nil, err
	}
	defer release()
	return ipukernel.Run(bp.NewDevice(), b, kcfg)
}

// FailedBatchResult synthesizes batch i's degraded outcome: one Failed
// placeholder per comparison (GlobalID preserved, everything else zero)
// and no modeled work. It is what the engine delivers for a quarantined
// batch completing in partial-failure mode; AssemblePlan fans the
// placeholders out like any result and counts them in
// Report.PartialFailures.
func (bp *BatchPlan) FailedBatchResult(i int) *ipukernel.BatchResult {
	b := bp.batches[i]
	res := &ipukernel.BatchResult{Out: make([]ipukernel.AlignOut, 0, len(b.Tiles))}
	for ti := range b.Tiles {
		for _, job := range b.Tiles[ti].Jobs {
			res.Out = append(res.Out, ipukernel.AlignOut{GlobalID: job.GlobalID, Failed: true})
		}
	}
	return res
}

// AssemblePlan merges executed batch results into a replayable Plan. The
// merge runs in batch order — results are keyed by GlobalID and the
// aggregates are order-independent sums — so the plan (and every Report
// scheduled from it) is identical for any execution interleaving.
//
// When the plan was built with dedup, executed (and cache-hit) results
// are gathered per unique extension first, then fanned out to every
// comparison that shares the extension, with GlobalID rewritten per row;
// freshly executed extensions are pushed into the configured cache so
// later jobs can skip them.
func AssemblePlan(bp *BatchPlan, outs []*ipukernel.BatchResult) (*Plan, error) {
	if len(outs) != len(bp.batches) {
		return nil, fmt.Errorf("driver: %d batch results for %d batches", len(outs), len(bp.batches))
	}
	p := &Plan{
		cfg:              bp.cfg,
		tiles:            bp.tiles,
		results:          make([]ipukernel.AlignOut, bp.comparisons),
		reuseFactor:      bp.reuseFactor,
		uniqueExtensions: bp.comparisons,
		cacheHits:        bp.cacheHits,
		cacheMiss:        bp.cacheMisses,
		skippedCells:     bp.cacheSkipCells,
	}
	var uniqueOut []ipukernel.AlignOut
	var have []bool
	if bp.dedup != nil {
		p.uniqueExtensions = bp.dedup.Unique()
		p.dedupedComparisons = bp.dedup.Duplicates()
		uniqueOut = make([]ipukernel.AlignOut, bp.dedup.Unique())
		have = make([]bool, bp.dedup.Unique())
		for uid, out := range bp.cachedOuts {
			uniqueOut[uid] = out
			have[uid] = true
		}
	}
	for bi, res := range outs {
		if res == nil {
			return nil, fmt.Errorf("driver: batch %d has no result", bi)
		}
		for _, o := range res.Out {
			if bp.dedup != nil {
				if o.GlobalID < 0 || o.GlobalID >= len(bp.execUID) {
					return nil, fmt.Errorf("driver: result for unknown comparison %d", o.GlobalID)
				}
				uid := bp.execUID[o.GlobalID]
				uniqueOut[uid] = o
				have[uid] = true
				continue
			}
			if o.GlobalID < 0 || o.GlobalID >= len(p.results) {
				return nil, fmt.Errorf("driver: result for unknown comparison %d", o.GlobalID)
			}
			p.results[o.GlobalID] = o
			if o.Clamped {
				p.clamped++
			}
		}
		p.batches = append(p.batches, batchTiming{
			seconds:  res.Seconds,
			inBytes:  res.HostBytesIn,
			outBytes: res.HostBytesOut,
		})
		p.deviceCompute += res.Seconds
		p.hostBytesIn += res.HostBytesIn
		p.uniqueSeqIn += res.UniqueSeqBytesIn
		p.hostBytesOut += res.HostBytesOut
		p.theoretical += res.TheoreticalCells
		p.cells += res.Cells
		p.sumBand += res.SumBand
		p.antidiags += res.Antidiags
		p.races += res.Races
		p.stealOps += res.StealOps
		p.skippedCells += res.DedupSkippedCells
		p.traceBytes += res.TraceBytes
		p.tracedExt += res.TracedExtensions
		p.skippedExt += res.TraceSkippedExtensions
		p.narrowExt += res.NarrowExtensions
		p.wideExt += res.WideExtensions
		p.promotedExt += res.PromotedExtensions
		if res.PeakTraceBytes > p.peakTraceBytes {
			p.peakTraceBytes = res.PeakTraceBytes
		}
		if res.MaxSRAM > p.maxSRAM {
			p.maxSRAM = res.MaxSRAM
		}
	}
	if bp.dedup != nil {
		// Fan each unique extension's result back out to every comparison
		// that shares it. Coordinates and scores are content-derived, so
		// duplicates receive bit-identical alignments; only GlobalID is
		// per-row.
		for i := range p.results {
			uid := bp.dedup.RowUID[i]
			if !have[uid] {
				return nil, fmt.Errorf("driver: no result for unique extension %d (comparison %d)", uid, i)
			}
			o := uniqueOut[uid]
			o.GlobalID = i
			if o.Clamped {
				p.clamped++
			}
			p.results[i] = o
		}
		if bp.cfg.Cache != nil {
			for uid, ok := range bp.hasKey {
				// Failed placeholders are degraded bookkeeping, not
				// alignments: caching one would serve a fault's shadow to
				// a later (possibly fault-free) job.
				if ok && have[uid] && !uniqueOut[uid].Failed {
					o := uniqueOut[uid]
					o.GlobalID = -1
					bp.cfg.Cache.Put(bp.keys[uid], o)
				}
			}
		}
	}
	for i := range p.results {
		if p.results[i].Failed {
			p.partialFailures++
		}
	}
	return p, nil
}

// NewPlan partitions, batches and executes the dataset's comparisons on
// the modeled device, producing a replayable schedule.
func NewPlan(d *workload.Dataset, cfg Config) (*Plan, error) {
	return NewPlanContext(context.Background(), d, cfg)
}

// NewPlanContext is NewPlan with cancellation: the context propagates
// into plan building and is checked before each batch execution, so a
// cancelled caller stops burning CPU at the next batch boundary.
func NewPlanContext(ctx context.Context, d *workload.Dataset, cfg Config) (*Plan, error) {
	bp, err := BuildBatches(ctx, d, cfg)
	if err != nil {
		return nil, err
	}

	// A GOMAXPROCS-bounded worker pool pulls batch indexes from an atomic
	// cursor, each worker driving its own modeled device.
	outs := make([]*ipukernel.BatchResult, len(bp.batches))
	errs := make([]error, len(bp.batches))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(bp.batches) {
		workers = len(bp.batches)
	}
	kcfg := bp.KernelConfig(workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := bp.NewDevice()
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= len(bp.batches) || ctx.Err() != nil {
					return
				}
				outs[bi], errs[bi] = bp.ExecBatch(dev, bi, kcfg)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return AssemblePlan(bp, outs)
}

// Batches returns the number of supersteps in the plan.
func (p *Plan) Batches() int { return len(p.batches) }

// Schedule replays the plan on ipus devices sharing one host link and
// returns the resulting report. Batches are pulled from a shared queue by
// the earliest-free device; inputs prefetch over the link while devices
// compute (the M2000 DRAM buffers them, §2.1.1); results return on the
// link's reverse direction.
func (p *Plan) Schedule(ipus int) *Report {
	if ipus <= 0 {
		ipus = 1
	}
	rep := &Report{
		Results:                 p.results,
		Batches:                 len(p.batches),
		IPUs:                    ipus,
		DeviceComputeSeconds:    p.deviceCompute,
		HostBytesIn:             p.hostBytesIn,
		UniqueSeqBytesIn:        p.uniqueSeqIn,
		HostBytesOut:            p.hostBytesOut,
		TheoreticalCells:        p.theoretical,
		Cells:                   p.cells,
		SumBand:                 p.sumBand,
		Antidiags:               p.antidiags,
		Races:                   p.races,
		StealOps:                p.stealOps,
		Clamped:                 p.clamped,
		ReuseFactor:             p.reuseFactor,
		MaxSRAM:                 p.maxSRAM,
		UniqueExtensions:        p.uniqueExtensions,
		DedupedComparisons:      p.dedupedComparisons,
		CacheHits:               p.cacheHits,
		CacheMisses:             p.cacheMiss,
		SkippedTheoreticalCells: p.skippedCells,
		PeakTracebackBytes:      p.peakTraceBytes,
		TracebackBytes:          p.traceBytes,
		TracedExtensions:        p.tracedExt,
		TraceSkippedExtensions:  p.skippedExt,
		PartialFailures:         p.partialFailures,
		NarrowExtensions:        p.narrowExt,
		WideExtensions:          p.wideExt,
		PromotedExtensions:      p.promotedExt,
	}
	overhead := p.cfg.BatchOverheadSeconds
	if overhead <= 0 {
		overhead = DefaultBatchOverheadSeconds
	}
	ipuFree := make([]float64, ipus)
	linkInFree, linkOutFree, wall, linkBusy := 0.0, 0.0, 0.0, 0.0
	linkRate := p.cfg.Model.HostLinkBytesPerSec

	for _, b := range p.batches {
		dev := 0
		for i := 1; i < ipus; i++ {
			if ipuFree[i] < ipuFree[dev] {
				dev = i
			}
		}
		inTime := overhead + float64(b.inBytes)/linkRate
		outTime := float64(b.outBytes) / linkRate
		// Host→device transfers queue FIFO on the link's forward
		// direction and may run ahead of the device (prefetch).
		transferEnd := linkInFree + inTime
		linkInFree = transferEnd
		computeStart := transferEnd
		if ipuFree[dev] > computeStart {
			computeStart = ipuFree[dev]
		}
		computeEnd := computeStart + b.seconds
		ipuFree[dev] = computeEnd
		// Results return on the reverse direction.
		outStart := computeEnd
		if linkOutFree > outStart {
			outStart = linkOutFree
		}
		outEnd := outStart + outTime
		linkOutFree = outEnd
		if outEnd > wall {
			wall = outEnd
		}
		linkBusy += inTime + outTime
	}
	rep.WallSeconds = wall
	rep.TransferSeconds = linkBusy
	return rep
}

// Run plans and schedules in one step.
func Run(d *workload.Dataset, cfg Config) (*Report, error) {
	p, err := NewPlan(d, cfg)
	if err != nil {
		return nil, err
	}
	return p.Schedule(cfg.IPUs), nil
}
