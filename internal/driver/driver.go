// Package driver is the host-side wrapping layer of §4.4: it owns the
// batches, schedules them over multiple standalone IPU devices through a
// shared work queue, and models the shared 100 Gb/s host link including
// prefetch overlap (transfers for the next batch proceed while a device
// computes, as the M2000 DRAM buffering permits).
//
// The devices stay hidden from the caller — scaling up is a matter of
// setting Config.IPUs, exactly like the paper's NUMBER_IPUS parameter
// (§5.3). Planning (batch construction and kernel execution) is separate
// from scheduling, so strong-scaling sweeps re-schedule the same plan at
// many device counts without recomputing alignments.
package driver

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/sram-align/xdropipu/internal/ipu"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/partition"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Config selects the device fleet and execution strategy.
type Config struct {
	// IPUs is the device count (NUMBER_IPUS).
	IPUs int
	// Model is the IPU generation.
	Model platform.IPUModel
	// TilesPerIPU restricts tiles per device (0 = all; Table 1 ablation
	// and scaled-down experiments).
	TilesPerIPU int
	// Kernel configures the on-tile X-Drop codelet.
	Kernel ipukernel.Config
	// Partition enables graph-based sequence reuse (§4.3) — the
	// "Multicomparison" mode of Fig. 7. Disabled, every comparison
	// travels with its own copy of both sequences.
	Partition bool
	// SeqBudget caps a partition's sequence payload in bytes (0 derives
	// a budget from tile SRAM and the dataset's longest extension).
	SeqBudget int
	// SpreadFactor targets this many items per tile so small workloads
	// still use the whole device (0 → 3).
	SpreadFactor int
	// BatchOverheadSeconds is the fixed host-side cost per submitted
	// batch (graph engagement, stream setup). Defaults to 0.5 ms.
	BatchOverheadSeconds float64
	// MaxBatchJobs caps comparisons per batch (0 = SRAM-bound batches).
	// Finer batches deepen the multi-device work queue.
	MaxBatchJobs int
}

// DefaultBatchOverheadSeconds is the modeled per-batch host cost.
const DefaultBatchOverheadSeconds = 0.5e-3

// Plan is an executed batch schedule: alignments are done, per-batch
// durations and transfer sizes are known, and the plan can be replayed
// against any device count.
type Plan struct {
	cfg     Config
	tiles   int
	results []ipukernel.AlignOut
	batches []batchTiming
	// aggregates
	deviceCompute    float64
	hostBytesIn      int64
	uniqueSeqIn      int64
	hostBytesOut     int64
	theoretical      int64
	cells            int64
	sumBand          int64
	antidiags        int64
	races, stealOps  int
	clamped, maxSRAM int
	reuseFactor      float64
}

type batchTiming struct {
	seconds  float64
	inBytes  int64
	outBytes int64
}

// Report is the outcome of one scheduled run.
type Report struct {
	// Results holds one entry per comparison, indexed like the dataset's
	// comparison list.
	Results []ipukernel.AlignOut
	// Batches is the number of BSP supersteps submitted.
	Batches int
	// IPUs is the scheduled device count.
	IPUs int
	// WallSeconds is the modeled end-to-end time: transfers on the
	// shared link, compute, result return, with prefetch overlap. This
	// is the Fig. 7 measure.
	WallSeconds float64
	// DeviceComputeSeconds sums on-device compute across batches — the
	// paper's GCUPS time base for Fig. 5 (§5.1: cycles/f, no transfers).
	DeviceComputeSeconds float64
	// TransferSeconds is the total busy time of the shared host link.
	TransferSeconds float64
	// HostBytesIn/HostBytesOut count link traffic.
	HostBytesIn, HostBytesOut int64
	// UniqueSeqBytesIn is the exact arena payload per §4.1: distinct slab
	// bytes covered by the tiles' spans. The gap to HostBytesIn is what
	// descriptor-level sequence duplication still costs on the link.
	UniqueSeqBytesIn int64
	// TheoreticalCells and Cells aggregate alignment traces.
	TheoreticalCells, Cells int64
	// SumBand and Antidiags support mean-live-band reporting.
	SumBand, Antidiags int64
	// Races and StealOps aggregate work-stealing behaviour.
	Races, StealOps int
	// Clamped counts alignments whose δb window clamped.
	Clamped int
	// ReuseFactor is the partitioner's transfer saving (1 = none).
	ReuseFactor float64
	// MaxSRAM is the largest tile footprint seen.
	MaxSRAM int
}

// GCUPS returns the paper's metric over the chosen time base.
func (r *Report) GCUPS(seconds float64) float64 {
	return metrics.GCUPS(r.TheoreticalCells, seconds)
}

// MeanBand returns the mean computed antidiagonal width.
func (r *Report) MeanBand() float64 {
	if r.Antidiags == 0 {
		return 0
	}
	return float64(r.SumBand) / float64(r.Antidiags)
}

// Normalized fills Config defaults the way every entry point (Run,
// NewPlan, the engine) must agree on, so a plan built anywhere schedules
// identically everywhere.
func (c Config) Normalized() Config {
	if c.IPUs <= 0 {
		c.IPUs = 1
	}
	if c.Model.Tiles == 0 {
		c.Model = platform.GC200
	}
	if c.SpreadFactor <= 0 {
		c.SpreadFactor = 3
	}
	return c
}

// EffectiveTiles returns the per-device tile count after clamping
// TilesPerIPU to the model.
func (c Config) EffectiveTiles() int {
	c = c.Normalized()
	tiles := c.TilesPerIPU
	if tiles <= 0 || tiles > c.Model.Tiles {
		tiles = c.Model.Tiles
	}
	return tiles
}

// BatchPlan is the build stage's output: the dataset partitioned and
// batched for the modeled device, but not yet executed. It separates the
// cheap, cancellable planning work from kernel execution so callers (the
// engine above all) can interleave batches from many plans onto a shared
// device fleet.
type BatchPlan struct {
	cfg         Config
	tiles       int
	batches     []*ipukernel.Batch
	comparisons int
	reuseFactor float64
}

// BuildBatches partitions and batches the dataset's comparisons without
// executing anything. The context is checked between the pipeline's
// stages (validate → budget → partition → batch), so a cancelled
// submission aborts before burning kernel time.
func BuildBatches(ctx context.Context, d *workload.Dataset, cfg Config) (*BatchPlan, error) {
	cfg = cfg.Normalized()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The one dataset-validation gate for every execution path (Run,
	// NewPlan, engine Submit): layers below index Ω without re-checking.
	if err := d.Validate(); err != nil {
		return nil, err
	}
	seqBudget := cfg.SeqBudget
	if seqBudget <= 0 {
		var err error
		seqBudget, err = partition.DeriveSeqBudget(d, cfg.Kernel, cfg.Model)
		if err != nil {
			return nil, err
		}
	}
	tiles := cfg.EffectiveTiles()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Cap partition size so the workload spreads over every tile.
	maxCmps := 0
	if target := tiles * cfg.SpreadFactor; target > 0 && len(d.Comparisons) > 0 {
		maxCmps = (len(d.Comparisons) + target - 1) / target
		if maxCmps < 1 {
			maxCmps = 1
		}
	}
	items := partition.BuildItems(d, partition.Options{
		SeqBudget: seqBudget,
		Reuse:     cfg.Partition,
		MaxCmps:   maxCmps,
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	batches, err := partition.MakeBatchesLimit(d, items, tiles, cfg.Kernel, cfg.Model, cfg.MaxBatchJobs)
	if err != nil {
		return nil, err
	}
	return &BatchPlan{
		cfg:         cfg,
		tiles:       tiles,
		batches:     batches,
		comparisons: len(d.Comparisons),
		reuseFactor: partition.ReuseFactor(d, items),
	}, nil
}

// Batches returns the number of supersteps in the build.
func (bp *BatchPlan) Batches() int { return len(bp.batches) }

// Comparisons returns the dataset's comparison count.
func (bp *BatchPlan) Comparisons() int { return bp.comparisons }

// NewDevice creates a modeled device matching the plan's configuration.
// Executors create one per goroutine and reuse it across batches (and,
// in the engine, across plans with the same configuration).
func (bp *BatchPlan) NewDevice() *ipu.Device {
	return ipu.New(ipu.Config{Model: bp.cfg.Model, TilesEnabled: bp.tiles})
}

// KernelConfig resolves the kernel configuration for an executor pool of
// the given width: an unset Parallelism splits the CPU budget between the
// pool and each Run's tile pool so nested pools do not multiply into P²
// goroutines.
func (bp *BatchPlan) KernelConfig(poolWorkers int) ipukernel.Config {
	kcfg := bp.cfg.Kernel
	if kcfg.Parallelism <= 0 && poolWorkers > 0 {
		kcfg.Parallelism = max(1, runtime.GOMAXPROCS(0)/poolWorkers)
	}
	return kcfg
}

// ExecBatch runs batch i on dev. Batches are independent (disjoint
// comparisons, no shared device state that affects results), so any
// executor may run any subset in any order; per-batch results are
// deterministic.
func (bp *BatchPlan) ExecBatch(dev *ipu.Device, i int, kcfg ipukernel.Config) (*ipukernel.BatchResult, error) {
	return ipukernel.Run(dev, bp.batches[i], kcfg)
}

// AssemblePlan merges executed batch results into a replayable Plan. The
// merge runs in batch order — results are keyed by GlobalID and the
// aggregates are order-independent sums — so the plan (and every Report
// scheduled from it) is identical for any execution interleaving.
func AssemblePlan(bp *BatchPlan, outs []*ipukernel.BatchResult) (*Plan, error) {
	if len(outs) != len(bp.batches) {
		return nil, fmt.Errorf("driver: %d batch results for %d batches", len(outs), len(bp.batches))
	}
	p := &Plan{
		cfg:         bp.cfg,
		tiles:       bp.tiles,
		results:     make([]ipukernel.AlignOut, bp.comparisons),
		reuseFactor: bp.reuseFactor,
	}
	for bi, res := range outs {
		if res == nil {
			return nil, fmt.Errorf("driver: batch %d has no result", bi)
		}
		for _, o := range res.Out {
			if o.GlobalID < 0 || o.GlobalID >= len(p.results) {
				return nil, fmt.Errorf("driver: result for unknown comparison %d", o.GlobalID)
			}
			p.results[o.GlobalID] = o
			if o.Clamped {
				p.clamped++
			}
		}
		p.batches = append(p.batches, batchTiming{
			seconds:  res.Seconds,
			inBytes:  res.HostBytesIn,
			outBytes: res.HostBytesOut,
		})
		p.deviceCompute += res.Seconds
		p.hostBytesIn += res.HostBytesIn
		p.uniqueSeqIn += res.UniqueSeqBytesIn
		p.hostBytesOut += res.HostBytesOut
		p.theoretical += res.TheoreticalCells
		p.cells += res.Cells
		p.sumBand += res.SumBand
		p.antidiags += res.Antidiags
		p.races += res.Races
		p.stealOps += res.StealOps
		if res.MaxSRAM > p.maxSRAM {
			p.maxSRAM = res.MaxSRAM
		}
	}
	return p, nil
}

// NewPlan partitions, batches and executes the dataset's comparisons on
// the modeled device, producing a replayable schedule.
func NewPlan(d *workload.Dataset, cfg Config) (*Plan, error) {
	return NewPlanContext(context.Background(), d, cfg)
}

// NewPlanContext is NewPlan with cancellation: the context propagates
// into plan building and is checked before each batch execution, so a
// cancelled caller stops burning CPU at the next batch boundary.
func NewPlanContext(ctx context.Context, d *workload.Dataset, cfg Config) (*Plan, error) {
	bp, err := BuildBatches(ctx, d, cfg)
	if err != nil {
		return nil, err
	}

	// A GOMAXPROCS-bounded worker pool pulls batch indexes from an atomic
	// cursor, each worker driving its own modeled device.
	outs := make([]*ipukernel.BatchResult, len(bp.batches))
	errs := make([]error, len(bp.batches))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(bp.batches) {
		workers = len(bp.batches)
	}
	kcfg := bp.KernelConfig(workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := bp.NewDevice()
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= len(bp.batches) || ctx.Err() != nil {
					return
				}
				outs[bi], errs[bi] = bp.ExecBatch(dev, bi, kcfg)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return AssemblePlan(bp, outs)
}

// Batches returns the number of supersteps in the plan.
func (p *Plan) Batches() int { return len(p.batches) }

// Schedule replays the plan on ipus devices sharing one host link and
// returns the resulting report. Batches are pulled from a shared queue by
// the earliest-free device; inputs prefetch over the link while devices
// compute (the M2000 DRAM buffers them, §2.1.1); results return on the
// link's reverse direction.
func (p *Plan) Schedule(ipus int) *Report {
	if ipus <= 0 {
		ipus = 1
	}
	rep := &Report{
		Results:              p.results,
		Batches:              len(p.batches),
		IPUs:                 ipus,
		DeviceComputeSeconds: p.deviceCompute,
		HostBytesIn:          p.hostBytesIn,
		UniqueSeqBytesIn:     p.uniqueSeqIn,
		HostBytesOut:         p.hostBytesOut,
		TheoreticalCells:     p.theoretical,
		Cells:                p.cells,
		SumBand:              p.sumBand,
		Antidiags:            p.antidiags,
		Races:                p.races,
		StealOps:             p.stealOps,
		Clamped:              p.clamped,
		ReuseFactor:          p.reuseFactor,
		MaxSRAM:              p.maxSRAM,
	}
	overhead := p.cfg.BatchOverheadSeconds
	if overhead <= 0 {
		overhead = DefaultBatchOverheadSeconds
	}
	ipuFree := make([]float64, ipus)
	linkInFree, linkOutFree, wall, linkBusy := 0.0, 0.0, 0.0, 0.0
	linkRate := p.cfg.Model.HostLinkBytesPerSec

	for _, b := range p.batches {
		dev := 0
		for i := 1; i < ipus; i++ {
			if ipuFree[i] < ipuFree[dev] {
				dev = i
			}
		}
		inTime := overhead + float64(b.inBytes)/linkRate
		outTime := float64(b.outBytes) / linkRate
		// Host→device transfers queue FIFO on the link's forward
		// direction and may run ahead of the device (prefetch).
		transferEnd := linkInFree + inTime
		linkInFree = transferEnd
		computeStart := transferEnd
		if ipuFree[dev] > computeStart {
			computeStart = ipuFree[dev]
		}
		computeEnd := computeStart + b.seconds
		ipuFree[dev] = computeEnd
		// Results return on the reverse direction.
		outStart := computeEnd
		if linkOutFree > outStart {
			outStart = linkOutFree
		}
		outEnd := outStart + outTime
		linkOutFree = outEnd
		if outEnd > wall {
			wall = outEnd
		}
		linkBusy += inTime + outTime
	}
	rep.WallSeconds = wall
	rep.TransferSeconds = linkBusy
	return rep
}

// Run plans and schedules in one step.
func Run(d *workload.Dataset, cfg Config) (*Report, error) {
	p, err := NewPlan(d, cfg)
	if err != nil {
		return nil, err
	}
	return p.Schedule(cfg.IPUs), nil
}
