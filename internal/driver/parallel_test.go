package driver

import (
	"runtime"
	"testing"
)

// TestPlanDeterministicAcrossWorkerCounts: NewPlan executes independent
// batches concurrently, but the merged plan — Results and every
// aggregate — must be identical for any worker-pool size, so a Report is
// reproducible on any host.
func TestPlanDeterministicAcrossWorkerCounts(t *testing.T) {
	d := readsData(t, 5, 60)
	cfg := testCfg(2, true)
	cfg.MaxBatchJobs = 6 // force several batches so the pool has real work

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	var ref *Report
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		p, err := NewPlan(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := p.Schedule(cfg.IPUs)
		if ref == nil {
			ref = rep
			if rep.Batches < 2 {
				t.Fatalf("want multiple batches to exercise the pool, got %d", rep.Batches)
			}
			continue
		}
		if rep.WallSeconds != ref.WallSeconds ||
			rep.DeviceComputeSeconds != ref.DeviceComputeSeconds ||
			rep.TransferSeconds != ref.TransferSeconds ||
			rep.HostBytesIn != ref.HostBytesIn ||
			rep.HostBytesOut != ref.HostBytesOut ||
			rep.Cells != ref.Cells ||
			rep.TheoreticalCells != ref.TheoreticalCells ||
			rep.SumBand != ref.SumBand ||
			rep.Antidiags != ref.Antidiags ||
			rep.Races != ref.Races ||
			rep.StealOps != ref.StealOps ||
			rep.Clamped != ref.Clamped ||
			rep.MaxSRAM != ref.MaxSRAM ||
			rep.Batches != ref.Batches {
			t.Fatalf("GOMAXPROCS=%d changed report aggregates:\n got %+v\nwant %+v", procs, rep, ref)
		}
		if len(rep.Results) != len(ref.Results) {
			t.Fatalf("GOMAXPROCS=%d changed result count", procs)
		}
		for i := range rep.Results {
			if rep.Results[i] != ref.Results[i] {
				t.Fatalf("GOMAXPROCS=%d changed result %d", procs, i)
			}
		}
	}
}
