package driver

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/ipukernel"
)

// TestStagedExecutionMatchesNewPlan: running the stages by hand —
// BuildBatches, ExecBatch per batch in an arbitrary order, AssemblePlan —
// must reproduce NewPlan exactly. This is the contract the engine's
// interleaved scheduling rests on.
func TestStagedExecutionMatchesNewPlan(t *testing.T) {
	d := readsData(t, 11, 30)
	cfg := testCfg(2, true)
	cfg.MaxBatchJobs = 4 // force several batches

	want, err := NewPlan(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	bp, err := BuildBatches(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Batches() < 2 {
		t.Fatalf("want several batches, got %d", bp.Batches())
	}
	if bp.Comparisons() != len(d.Comparisons) {
		t.Fatalf("Comparisons() = %d, want %d", bp.Comparisons(), len(d.Comparisons))
	}
	// Execute in reverse order on a single device to prove order and
	// executor layout are irrelevant.
	dev := bp.NewDevice()
	kcfg := bp.KernelConfig(1)
	outs := make([]*ipukernel.BatchResult, bp.Batches())
	for i := bp.Batches() - 1; i >= 0; i-- {
		outs[i], err = bp.ExecBatch(dev, i, kcfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := AssemblePlan(bp, outs)
	if err != nil {
		t.Fatal(err)
	}
	for _, ipus := range []int{1, 3, 8} {
		if !reflect.DeepEqual(got.Schedule(ipus), want.Schedule(ipus)) {
			t.Fatalf("staged plan diverges from NewPlan at %d IPUs", ipus)
		}
	}
}

// TestAssemblePlanUnknownComparison: a batch result referencing a
// comparison outside the dataset must be rejected, not written out of
// bounds.
func TestAssemblePlanUnknownComparison(t *testing.T) {
	d := readsData(t, 12, 8)
	bp, err := BuildBatches(context.Background(), d, testCfg(1, true))
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]*ipukernel.BatchResult, bp.Batches())
	for i := range outs {
		outs[i] = &ipukernel.BatchResult{}
	}
	outs[0] = &ipukernel.BatchResult{
		Out: []ipukernel.AlignOut{{GlobalID: len(d.Comparisons) + 5}},
	}
	_, err = AssemblePlan(bp, outs)
	if err == nil || !strings.Contains(err.Error(), "unknown comparison") {
		t.Fatalf("AssemblePlan = %v, want unknown-comparison error", err)
	}

	outs[0] = &ipukernel.BatchResult{Out: []ipukernel.AlignOut{{GlobalID: -1}}}
	if _, err := AssemblePlan(bp, outs); err == nil {
		t.Fatal("negative GlobalID accepted")
	}
}

// TestAssemblePlanShapeErrors: wrong result counts and missing batches
// are caught.
func TestAssemblePlanShapeErrors(t *testing.T) {
	d := readsData(t, 12, 8)
	bp, err := BuildBatches(context.Background(), d, testCfg(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssemblePlan(bp, nil); err == nil {
		t.Fatal("mismatched result count accepted")
	}
	outs := make([]*ipukernel.BatchResult, bp.Batches())
	if _, err := AssemblePlan(bp, outs); err == nil {
		t.Fatal("nil batch result accepted")
	}
}

// TestBuildBatchesCancelled: a dead context aborts planning.
func TestBuildBatchesCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := readsData(t, 13, 8)
	if _, err := BuildBatches(ctx, d, testCfg(1, true)); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildBatches = %v, want context.Canceled", err)
	}
	if _, err := NewPlanContext(ctx, d, testCfg(1, true)); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewPlanContext = %v, want context.Canceled", err)
	}
}

// TestConfigNormalization: every entry point agrees on defaults.
func TestConfigNormalization(t *testing.T) {
	c := Config{}.Normalized()
	if c.IPUs != 1 || c.Model.Tiles == 0 || c.SpreadFactor != 3 {
		t.Errorf("Normalized() = %+v", c)
	}
	if got := (Config{TilesPerIPU: 1 << 20}).EffectiveTiles(); got != c.Model.Tiles {
		t.Errorf("EffectiveTiles over-model = %d", got)
	}
	if got := (Config{TilesPerIPU: 8}).EffectiveTiles(); got != 8 {
		t.Errorf("EffectiveTiles(8) = %d", got)
	}
}
