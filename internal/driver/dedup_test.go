package driver

import (
	"context"
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/workload"
)

// duplicated returns d with every comparison repeated factor times (the
// duplicate-heavy shape overlap pipelines resubmit), sharing d's pool.
func duplicated(d *workload.Dataset, factor int) *workload.Dataset {
	cmps := make([]workload.Comparison, 0, len(d.Comparisons)*factor)
	for f := 0; f < factor; f++ {
		cmps = append(cmps, d.Comparisons...)
	}
	return &workload.Dataset{
		Name: d.Name, Sequences: d.Sequences, Comparisons: cmps, Protein: d.Protein,
	}
}

// sameResults asserts two reports carry bit-identical per-comparison
// alignments (every AlignOut field, including traces).
func sameResults(t *testing.T, name string, got, want []ipukernel.AlignOut) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: result %d differs with dedup on:\n  on:  %+v\n  off: %+v", name, i, got[i], want[i])
		}
	}
}

// TestDedupEquivalenceOnGoldenConfigs: per-comparison alignments must be
// bit-identical with DedupExtensions on vs off, on duplicate-heavy
// versions of every golden workload/config pair.
func TestDedupEquivalenceOnGoldenConfigs(t *testing.T) {
	ds := goldenDatasets(t)
	for name, tc := range goldenConfigs() {
		d := duplicated(ds[tc.dataset], 3)
		off, err := Run(d, tc.cfg)
		if err != nil {
			t.Fatalf("%s off: %v", name, err)
		}
		cfgOn := tc.cfg
		cfgOn.DedupExtensions = true
		on, err := Run(d, cfgOn)
		if err != nil {
			t.Fatalf("%s on: %v", name, err)
		}
		sameResults(t, name, on.Results, off.Results)
		if on.UniqueExtensions >= len(d.Comparisons) {
			t.Errorf("%s: UniqueExtensions = %d for %d comparisons — nothing deduped",
				name, on.UniqueExtensions, len(d.Comparisons))
		}
		if on.DedupedComparisons != len(d.Comparisons)-on.UniqueExtensions {
			t.Errorf("%s: DedupedComparisons = %d, want %d", name,
				on.DedupedComparisons, len(d.Comparisons)-on.UniqueExtensions)
		}
	}
}

// TestDedupWithoutDuplicatesBitIdentical: on a plan with no duplicate
// extensions, the dedup path must reproduce the dedup-off report
// bit-for-bit — same results, same modeled times, same transfer bytes —
// because the executed sub-plan is the whole plan.
func TestDedupWithoutDuplicatesBitIdentical(t *testing.T) {
	ds := goldenDatasets(t)
	for name, tc := range goldenConfigs() {
		d := ds[tc.dataset]
		off, err := Run(d, tc.cfg)
		if err != nil {
			t.Fatalf("%s off: %v", name, err)
		}
		cfgOn := tc.cfg
		cfgOn.DedupExtensions = true
		on, err := Run(d, cfgOn)
		if err != nil {
			t.Fatalf("%s on: %v", name, err)
		}
		if a, b := reportFingerprint(off), reportFingerprint(on); a != b {
			t.Errorf("%s: dedup-on report %s differs from dedup-off %s on a duplicate-free plan", name, b, a)
		}
	}
}

// TestDedupModeledWorkDrops: on a 4×-duplicated workload, dedup must
// execute only the unique quarter — and the skipped accounting must tie
// out exactly against the dedup-off totals.
func TestDedupModeledWorkDrops(t *testing.T) {
	ds := goldenDatasets(t)
	d := duplicated(ds["reads"], 4)
	cfg := goldenConfigs()["reads-partition"].cfg

	off, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgOn := cfg
	cfgOn.DedupExtensions = true
	on, err := Run(d, cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	if on.TheoreticalCells*4 != off.TheoreticalCells {
		t.Errorf("executed theoretical cells %d, want a quarter of %d", on.TheoreticalCells, off.TheoreticalCells)
	}
	if on.TheoreticalCells+on.SkippedTheoreticalCells != off.TheoreticalCells {
		t.Errorf("executed %d + skipped %d should equal dedup-off total %d",
			on.TheoreticalCells, on.SkippedTheoreticalCells, off.TheoreticalCells)
	}
	if on.DeviceComputeSeconds >= off.DeviceComputeSeconds {
		t.Errorf("dedup did not reduce modeled compute: %g >= %g", on.DeviceComputeSeconds, off.DeviceComputeSeconds)
	}
	if on.HostBytesIn >= off.HostBytesIn {
		t.Errorf("dedup did not reduce modeled transfers: %d >= %d", on.HostBytesIn, off.HostBytesIn)
	}
	if len(on.Results) != len(d.Comparisons) {
		t.Errorf("report must stay per-comparison: %d results for %d comparisons", len(on.Results), len(d.Comparisons))
	}
}

// TestDedupFuzzEquivalence drives random plans — interned duplicate
// sequences, repeated rows, self-comparisons, mirrored pairs — through
// both paths; per-comparison alignments must always match.
func TestDedupFuzzEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := []byte("ACGT")
	p := core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 12, DeltaB: 64}
	for trial := 0; trial < 40; trial++ {
		nDistinct := 2 + rng.Intn(6)
		distinct := make([][]byte, nDistinct)
		for i := range distinct {
			s := make([]byte, 60+rng.Intn(200))
			for j := range s {
				s[j] = alpha[rng.Intn(4)]
			}
			distinct[i] = s
		}
		// Pool with duplicated content under fresh indices.
		nSeqs := nDistinct + rng.Intn(6)
		d := &workload.Dataset{}
		for i := 0; i < nSeqs; i++ {
			d.Sequences = append(d.Sequences, distinct[rng.Intn(nDistinct)])
		}
		nCmps := 1 + rng.Intn(40)
		for i := 0; i < nCmps; i++ {
			h, v := rng.Intn(nSeqs), rng.Intn(nSeqs) // self-comparisons allowed
			k := 4 + rng.Intn(8)
			maxH, maxV := len(d.Sequences[h])-k, len(d.Sequences[v])-k
			d.Comparisons = append(d.Comparisons, workload.Comparison{
				H: h, V: v, SeedH: rng.Intn(maxH + 1), SeedV: rng.Intn(maxV + 1), SeedLen: k,
			})
			if rng.Intn(3) == 0 { // literal duplicate row
				d.Comparisons = append(d.Comparisons, d.Comparisons[len(d.Comparisons)-1])
			}
		}
		cfg := Config{IPUs: 1, Partition: rng.Intn(2) == 0, TilesPerIPU: 1 + rng.Intn(8),
			Kernel: ipukernel.Config{Params: p}}
		off, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("trial %d off: %v", trial, err)
		}
		cfg.DedupExtensions = true
		on, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("trial %d on: %v", trial, err)
		}
		sameResults(t, "fuzz", on.Results, off.Results)
	}
}

// TestKernelSkippedWorkAccounting pins the ipukernel side of dedup
// accounting: across a dedup'd build, the batches' DedupSkippedJobs must
// sum to exactly the duplicates the dedup map collapsed, and
// DedupSkippedCells to the duplicate rows' |H|·|V| volume.
func TestKernelSkippedWorkAccounting(t *testing.T) {
	ds := goldenDatasets(t)
	d := duplicated(ds["uniform"], 3)
	cfg := goldenConfigs()["uniform-nopart"].cfg
	cfg.DedupExtensions = true

	bp, err := BuildBatches(context.Background(), d, cfg.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	dev := bp.NewDevice()
	var skippedJobs int
	var skippedCells int64
	for bi := 0; bi < bp.Batches(); bi++ {
		res, err := bp.ExecBatch(dev, bi, bp.KernelConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		skippedJobs += res.DedupSkippedJobs
		skippedCells += res.DedupSkippedCells
	}
	wantJobs := len(d.Comparisons) - len(ds["uniform"].Comparisons)
	if skippedJobs != wantJobs {
		t.Errorf("batches account %d skipped jobs, want %d", skippedJobs, wantJobs)
	}
	wantCells := 2 * ds["uniform"].TheoreticalCells() // 2 duplicate rows per unique
	if skippedCells != wantCells {
		t.Errorf("batches account %d skipped cells, want %d", skippedCells, wantCells)
	}
}

// mapCache is a trivial unbounded ResultCache for driver-level tests.
type mapCache struct {
	m          map[CacheKey]ipukernel.AlignOut
	hits, puts int
}

func newMapCache() *mapCache {
	return &mapCache{m: make(map[CacheKey]ipukernel.AlignOut)}
}

func (c *mapCache) Get(k CacheKey) (ipukernel.AlignOut, bool) {
	out, ok := c.m[k]
	if ok {
		c.hits++
	}
	return out, ok
}

func (c *mapCache) Put(k CacheKey, out ipukernel.AlignOut) {
	c.puts++
	c.m[k] = out
}

// TestResultCacheDriverPath: a second run over a warm cache must execute
// zero batches, report full cache hits, and return bit-identical
// per-comparison alignments.
func TestResultCacheDriverPath(t *testing.T) {
	ds := goldenDatasets(t)
	d := duplicated(ds["uniform"], 2)
	base := goldenConfigs()["uniform-nopart"].cfg

	plain, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}

	cache := newMapCache()
	cfg := base
	cfg.Cache = cache // implies dedup
	cold, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "cold", cold.Results, plain.Results)
	if cold.CacheHits != 0 || cold.CacheMisses != cold.UniqueExtensions {
		t.Errorf("cold run: hits %d misses %d (unique %d)", cold.CacheHits, cold.CacheMisses, cold.UniqueExtensions)
	}
	if cache.puts != cold.UniqueExtensions {
		t.Errorf("cold run put %d entries, want %d", cache.puts, cold.UniqueExtensions)
	}

	warm, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "warm", warm.Results, plain.Results)
	if warm.Batches != 0 {
		t.Errorf("warm run executed %d batches, want 0", warm.Batches)
	}
	if warm.CacheHits != warm.UniqueExtensions || warm.CacheMisses != 0 {
		t.Errorf("warm run: hits %d misses %d (unique %d)", warm.CacheHits, warm.CacheMisses, warm.UniqueExtensions)
	}
	if warm.DeviceComputeSeconds != 0 || warm.HostBytesIn != 0 {
		t.Errorf("warm run modeled work: %g s, %d B in", warm.DeviceComputeSeconds, warm.HostBytesIn)
	}
	if warm.SkippedTheoreticalCells != plain.TheoreticalCells {
		t.Errorf("warm run skipped %d theoretical cells, want the full %d",
			warm.SkippedTheoreticalCells, plain.TheoreticalCells)
	}

	// One cache shared across two kernel configurations must never alias:
	// keys carry the kernel fingerprint, so a different X misses the
	// warmed entries and produces that configuration's own results.
	cfgX := cfg
	cfgX.Kernel.Params.X = cfg.Kernel.Params.X + 20
	plainX, err := Run(d, goldenConfigsWithX(base, cfgX.Kernel.Params.X))
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := cache.hits
	crossed, err := Run(d, cfgX)
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits != hitsBefore {
		t.Errorf("cache served entries across kernel configurations (%d extra hits)", cache.hits-hitsBefore)
	}
	sameResults(t, "cross-config", crossed.Results, plainX.Results)
}

// goldenConfigsWithX returns cfg with a replaced drop threshold and no
// cache — the uncached reference for the cross-config aliasing check.
func goldenConfigsWithX(cfg Config, x int) Config {
	cfg.Kernel.Params.X = x
	cfg.Cache = nil
	cfg.DedupExtensions = false
	return cfg
}
