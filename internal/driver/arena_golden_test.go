package driver

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

// reportFingerprint hashes every result field and report aggregate, so two
// fingerprints match only when the reports are bit-identical (floats
// compared by their exact bit patterns).
func reportFingerprint(rep *Report) string {
	h := sha256.New()
	put := func(v int64) { binary.Write(h, binary.LittleEndian, v) }
	putF := func(v float64) { binary.Write(h, binary.LittleEndian, math.Float64bits(v)) }
	for _, o := range rep.Results {
		put(int64(o.GlobalID))
		put(int64(o.Score))
		put(int64(o.LeftScore))
		put(int64(o.RightScore))
		put(int64(o.BegH))
		put(int64(o.BegV))
		put(int64(o.EndH))
		put(int64(o.EndV))
		put(o.Cells)
		put(int64(o.Antidiagonals))
		put(int64(o.MaxLiveBand))
		if o.Clamped {
			put(1)
		} else {
			put(0)
		}
	}
	put(int64(rep.Batches))
	put(rep.HostBytesIn)
	put(rep.HostBytesOut)
	put(rep.TheoreticalCells)
	put(rep.Cells)
	put(rep.SumBand)
	put(rep.Antidiags)
	put(int64(rep.Races))
	put(int64(rep.StealOps))
	put(int64(rep.Clamped))
	put(int64(rep.MaxSRAM))
	putF(rep.ReuseFactor)
	putF(rep.DeviceComputeSeconds)
	putF(rep.WallSeconds)
	putF(rep.TransferSeconds)
	return fmt.Sprintf("%x", h.Sum(nil))[:32]
}

func goldenDatasets(t testing.TB) map[string]*workload.Dataset {
	t.Helper()
	uni := synth.UniformPairs(synth.UniformPairsSpec{
		Count: 24, Length: 900, ErrorRate: 0.15, SeedLen: 17, Seed: 101})
	reads := synth.Reads(synth.ReadsSpec{
		Name: "golden-reads", GenomeLen: 60_000, Coverage: 8, MeanReadLen: 1800,
		MinReadLen: 400, Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 500,
		Seed: 202, MaxComparisons: 160})
	prot, _ := synth.ProteinFamilies(synth.ProteinFamiliesSpec{
		Families: 6, MembersPerFamily: 4, MeanLen: 300, MutRate: 0.15, Seed: 303})
	var pc []workload.Comparison
	for f := 0; f < 6; f++ {
		base := f * 4
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				pc = append(pc, workload.Comparison{H: base + a, V: base + b, SeedH: 0, SeedV: 0, SeedLen: 3})
			}
		}
	}
	prot.Comparisons = pc
	return map[string]*workload.Dataset{"uniform": uni, "reads": reads, "protein": prot}
}

func goldenConfigs() map[string]struct {
	dataset string
	cfg     Config
} {
	dna := core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256}
	blosum := core.Params{Scorer: scoring.Blosum62, Gap: -2, X: 49, DeltaB: 256}
	return map[string]struct {
		dataset string
		cfg     Config
	}{
		"uniform-nopart": {"uniform", Config{IPUs: 1, Kernel: ipukernel.Config{Params: dna}}},
		"reads-partition": {"reads", Config{IPUs: 2, Partition: true,
			Kernel: ipukernel.Config{Params: dna, LRSplit: true, WorkStealing: true, BusyWaitVariance: true}}},
		"reads-dualissue": {"reads", Config{IPUs: 1, Partition: true, MaxBatchJobs: 24,
			Kernel: ipukernel.Config{Params: dna, DualIssue: true}}},
		"protein": {"protein", Config{IPUs: 1, Partition: true, Kernel: ipukernel.Config{Params: blosum}}},
	}
}

// TestGoldenReportsPreArena pins the reports to SHA-256 fingerprints
// captured on the pre-arena stack (PR 2, commit 5feb241): the arena
// refactor must keep every score, end point, cell count, live band,
// transfer byte and modeled second bit-identical.
func TestGoldenReportsPreArena(t *testing.T) {
	want := map[string]string{
		"uniform-nopart":  "1af62ecbe0f954418deba2d14ba53f0a",
		"reads-partition": "d0d11eb49dfe8d774a48554fc4a514d2",
		"reads-dualissue": "e72cd1e3929274c8b4ab2f9602f2b5e7",
		"protein":         "7a5f81b1744f296d373ea2ad05c196a3",
	}
	ds := goldenDatasets(t)
	for name, tc := range goldenConfigs() {
		rep, err := Run(ds[tc.dataset], tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := reportFingerprint(rep); got != want[name] {
			t.Errorf("%s: fingerprint %s, want %s (report not bit-identical to pre-arena stack)", name, got, want[name])
		}
	}
}

// TestArenaViewMatchesSliceDataset: a dataset assembled from plain slices
// (legacy producers) and the arena-backed view over the same pool must
// produce bit-identical reports — the compatibility contract of the spine.
func TestArenaViewMatchesSliceDataset(t *testing.T) {
	for name, tc := range goldenConfigs() {
		ds := goldenDatasets(t)
		d := ds[tc.dataset]

		// Legacy assembly: deep-copied [][]byte pool, comparisons by
		// value, no spine until the stack builds one.
		legacy := d.Clone()

		// Arena assembly from the same bytes.
		arena := workload.NewArena(0, len(d.Sequences))
		for _, s := range d.Sequences {
			arena.Append(s)
		}
		plan := workload.PlanOf(d.Comparisons)
		packed := arena.NewDataset(d.Name, plan, d.Protein)

		repLegacy, err := Run(legacy, tc.cfg)
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		repArena, err := Run(packed, tc.cfg)
		if err != nil {
			t.Fatalf("%s arena: %v", name, err)
		}
		if a, b := reportFingerprint(repLegacy), reportFingerprint(repArena); a != b {
			t.Errorf("%s: arena-backed report %s differs from slice-backed %s", name, b, a)
		}
	}
}

// TestArenaPathMatchesReferenceOracle: alignments executed through the
// full arena spine (arena → plan → partition → tiles → kernel) must equal
// the full-matrix AlgoReference oracle run directly on the raw sequences.
func TestArenaPathMatchesReferenceOracle(t *testing.T) {
	d := synth.UniformPairs(synth.UniformPairsSpec{
		Count: 8, Length: 220, ErrorRate: 0.12, SeedLen: 13, Seed: 404})
	p := core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 12, Algo: core.AlgoReference}
	rep, err := Run(d, Config{IPUs: 1, Partition: true, Kernel: ipukernel.Config{Params: p}})
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range d.Comparisons {
		want, err := core.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V],
			core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}, p)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Results[ci]
		if got.Score != want.Score || got.BegH != want.BegH || got.EndH != want.EndH ||
			got.BegV != want.BegV || got.EndV != want.EndV {
			t.Errorf("cmp %d: arena path %+v != reference oracle %+v", ci, got, want)
		}
	}
}
