package driver

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/sram-align/xdropipu/internal/alignment"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

// shortReadsData generates a short-read overlap set whose extensions
// are small enough that forcing TraceModeFused keeps the per-thread
// direction arenas within tile SRAM (the partitioner rejects forced
// fusion on long-read extensions — by design).
func shortReadsData(t *testing.T, seed int64, maxCmp int) *workload.Dataset {
	t.Helper()
	d := synth.Reads(synth.ReadsSpec{
		Name: "drv-short", GenomeLen: 20000, Coverage: 8, MeanReadLen: 350,
		MinReadLen: 150, MaxReadLen: 450,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 120, Seed: seed, MaxComparisons: maxCmp,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// traceScores runs the score-only configuration and returns the sorted
// comparison scores, for deriving percentile gate cutoffs.
func traceScores(t *testing.T, d *workload.Dataset, cfg Config) []int {
	t.Helper()
	rep, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]int, len(rep.Results))
	for i, r := range rep.Results {
		scores[i] = r.Score
	}
	sort.Ints(scores)
	return scores
}

// TestTraceModeThreeWayOracle is the mode half of the differential
// oracle: replay, fused and auto traceback runs must be bit-identical in
// every result field — scores, coordinates, trace statistics, clamp
// flags and CIGARs — across kernel tiers, and all must account every
// extension as traced with nothing skipped.
func TestTraceModeThreeWayOracle(t *testing.T) {
	d := shortReadsData(t, 21, 40)
	for _, tier := range []core.Tier{core.TierWide, core.TierAuto} {
		base := testCfg(2, true)
		base.Traceback = true
		base.KernelTier = tier

		reps := make(map[core.TraceMode]*Report, 3)
		for _, mode := range []core.TraceMode{core.TraceModeReplay, core.TraceModeFused, core.TraceModeAuto} {
			cfg := base
			cfg.TraceMode = mode
			rep, err := Run(d, cfg)
			if err != nil {
				t.Fatalf("tier %v mode %v: %v", tier, mode, err)
			}
			if rep.TracedExtensions != 2*len(d.Comparisons) || rep.TraceSkippedExtensions != 0 {
				t.Fatalf("tier %v mode %v: counters traced=%d skipped=%d, want %d/0",
					tier, mode, rep.TracedExtensions, rep.TraceSkippedExtensions, 2*len(d.Comparisons))
			}
			reps[mode] = rep
		}
		replay := reps[core.TraceModeReplay]
		for _, mode := range []core.TraceMode{core.TraceModeFused, core.TraceModeAuto} {
			got := reps[mode]
			for i := range replay.Results {
				if got.Results[i] != replay.Results[i] {
					t.Fatalf("tier %v: comparison %d differs between replay and %v:\nreplay: %+v\n  %v: %+v",
						tier, i, mode, replay.Results[i], mode, got.Results[i])
				}
			}
		}
	}
}

// TestTraceMinScoreGate pins the score-gate contract: comparisons at or
// above the cutoff are bit-identical to an ungated traceback run,
// comparisons below it are bit-identical to a score-only run (no CIGAR,
// no trace bytes), the traced/skipped counters are disjoint and sum to
// every extension, and the gate behaves identically under fused mode
// (the gate takes precedence over fusion).
func TestTraceMinScoreGate(t *testing.T) {
	d := readsData(t, 22, 40)
	scoreOnly := testCfg(2, true)
	off, err := Run(d, scoreOnly)
	if err != nil {
		t.Fatal(err)
	}
	if off.TracedExtensions != 0 || off.TraceSkippedExtensions != 0 {
		t.Fatalf("score-only run reported trace counters: %d/%d",
			off.TracedExtensions, off.TraceSkippedExtensions)
	}

	on := scoreOnly
	on.Traceback = true
	full, err := Run(d, on)
	if err != nil {
		t.Fatal(err)
	}

	scores := traceScores(t, d, scoreOnly)
	cut := scores[len(scores)/2]
	if cut <= 0 {
		t.Fatalf("p50 score %d not positive; dataset unusable for gate test", cut)
	}

	for _, mode := range []core.TraceMode{core.TraceModeReplay, core.TraceModeFused} {
		gated := on
		gated.TraceMinScore = cut
		gated.TraceMode = mode
		gr, err := Run(d, gated)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		traced, skipped := 0, 0
		for i, r := range gr.Results {
			if full.Results[i].Score >= cut {
				traced++
				if r != full.Results[i] {
					t.Fatalf("mode %v: comparison %d above cutoff differs from ungated run:\ngated:   %+v\nungated: %+v",
						mode, i, r, full.Results[i])
				}
			} else {
				skipped++
				if r != off.Results[i] {
					t.Fatalf("mode %v: comparison %d below cutoff differs from score-only run:\ngated:      %+v\nscore-only: %+v",
						mode, i, r, off.Results[i])
				}
				if r.Cigar != "" || r.TraceBytes != 0 {
					t.Fatalf("mode %v: skipped comparison %d carries trace payload: %+v", mode, i, r)
				}
			}
		}
		if skipped == 0 || traced == 0 {
			t.Fatalf("p50 cutoff did not split the dataset: %d traced, %d skipped comparisons", traced, skipped)
		}
		if gr.TracedExtensions != 2*traced || gr.TraceSkippedExtensions != 2*skipped {
			t.Fatalf("mode %v: counters traced=%d skipped=%d, want %d/%d",
				mode, gr.TracedExtensions, gr.TraceSkippedExtensions, 2*traced, 2*skipped)
		}
		if gr.TracedExtensions+gr.TraceSkippedExtensions != 2*len(d.Comparisons) {
			t.Fatalf("mode %v: counters not a partition of all extensions", mode)
		}
	}
}

// TestTraceGateCacheComposition: gated and ungated runs must never share
// cache entries (their kernel fingerprints differ), replay and fused
// fingerprints likewise, and a rerun under the same configuration must
// hit its own warm entries and reproduce its results exactly.
func TestTraceGateCacheComposition(t *testing.T) {
	d := shortReadsData(t, 23, 30)
	scores := traceScores(t, d, testCfg(1, true))
	cut := scores[len(scores)/2]

	cache := newMapCache()
	base := testCfg(1, true)
	base.Traceback = true
	base.Cache = cache

	u1, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	if u1.CacheHits != 0 {
		t.Fatalf("cold ungated run hit the cache %d times", u1.CacheHits)
	}
	u2, err := Run(d, base)
	if err != nil {
		t.Fatal(err)
	}
	if u2.CacheHits == 0 {
		t.Fatal("warm ungated rerun had no cache hits")
	}

	gated := base
	gated.TraceMinScore = cut
	g1, err := Run(d, gated)
	if err != nil {
		t.Fatal(err)
	}
	if g1.CacheHits != 0 {
		t.Fatalf("gated run shared %d entries with the ungated fill", g1.CacheHits)
	}
	g2, err := Run(d, gated)
	if err != nil {
		t.Fatal(err)
	}
	if g2.CacheHits == 0 {
		t.Fatal("warm gated rerun had no cache hits")
	}
	for i := range g1.Results {
		if g2.Results[i] != g1.Results[i] {
			t.Fatalf("comparison %d differs between cold and warm gated runs", i)
		}
	}

	fused := base
	fused.TraceMode = core.TraceModeFused
	f1, err := Run(d, fused)
	if err != nil {
		t.Fatal(err)
	}
	if f1.CacheHits != 0 {
		t.Fatalf("fused run shared %d entries with the replay fill", f1.CacheHits)
	}

	// Score-only runs ignore both knobs: a gated fingerprint with
	// traceback off must equal the plain score-only fingerprint, so
	// score-only workloads keep sharing entries.
	plain := testCfg(1, true)
	gatedOff := plain
	gatedOff.TraceMinScore = cut
	gatedOff.TraceMode = core.TraceModeFused
	a := KernelFingerprint(plain.Normalized().Kernel, plain.Model)
	b := KernelFingerprint(gatedOff.Normalized().Kernel, gatedOff.Model)
	if a != b {
		t.Fatal("trace knobs changed the score-only kernel fingerprint")
	}
}

// traceCapDataset hand-builds a dataset of small comparisons plus one
// oversized one whose traceback recording blows a tiny injected cell
// cap while the small ones stay under it.
func traceCapDataset(big int) (*workload.Dataset, int) {
	rng := rand.New(rand.NewSource(99))
	const alpha = "ACGT"
	gen := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = alpha[rng.Intn(4)]
		}
		return s
	}
	mut := func(h []byte, rate float64) []byte {
		v := append([]byte(nil), h...)
		for i := range v {
			if rng.Float64() < rate {
				v[i] = alpha[rng.Intn(4)]
			}
		}
		return v
	}
	d := &workload.Dataset{Name: "trace-cap"}
	addPair := func(n int) {
		h := gen(n)
		v := mut(h, 0.03)
		k := 17
		s := n/2 - k/2
		copy(v[s:s+k], h[s:s+k])
		i := len(d.Sequences)
		d.Sequences = append(d.Sequences, h, v)
		d.Comparisons = append(d.Comparisons, workload.Comparison{
			H: i, V: i + 1, SeedH: s, SeedV: s, SeedLen: k,
		})
	}
	for i := 0; i < 4; i++ {
		addPair(80)
	}
	bigIdx := len(d.Comparisons)
	addPair(big)
	addPair(80)
	return d, bigIdx
}

// TestTraceTooLargeDegradesSingleComparison is the propagation-bugfix
// regression: a traceback recording that overflows the cell cap must
// surface as that one comparison failing (AlignOut.Failed), not poison
// sibling comparisons on the tile or fail the batch — and the degraded
// placeholder must never enter the result cache.
func TestTraceTooLargeDegradesSingleComparison(t *testing.T) {
	d, bigIdx := traceCapDataset(2000)
	for _, mode := range []core.TraceMode{core.TraceModeReplay, core.TraceModeFused} {
		t.Run(mode.String(), func(t *testing.T) {
			cache := newMapCache()
			// Partitioning off: the SRAM certifier would (correctly)
			// refuse to force-fuse the oversized extension; the cap
			// propagation path is what this test pins.
			cfg := testCfg(1, false)
			cfg.Traceback = true
			cfg.TraceMode = mode
			cfg.Cache = cache
			// δb=64 keeps the forced-fused per-thread arena bound for the
			// 2 kb pair within the SRAM-derived sequence budget.
			cfg.Kernel.Params.DeltaB = 64

			restore := core.SetTraceCellCapForTest(6_000)
			rep, err := Run(d, cfg)
			if err != nil {
				restore()
				t.Fatalf("capped run failed as a batch: %v", err)
			}
			if rep.PartialFailures != 1 {
				restore()
				t.Fatalf("want exactly 1 degraded comparison, got %d", rep.PartialFailures)
			}
			for i, r := range rep.Results {
				if i == bigIdx {
					if !r.Failed || r.Score != 0 || r.Cigar != "" {
						restore()
						t.Fatalf("oversized comparison not a clean Failed placeholder: %+v", r)
					}
					continue
				}
				if r.Failed {
					restore()
					t.Fatalf("sibling comparison %d poisoned by the oversized trace: %+v", i, r)
				}
				if r.Cigar == "" {
					restore()
					t.Fatalf("sibling comparison %d lost its CIGAR", i)
				}
				if err := (alignment.Alignment{
					Score: r.Score, BegH: r.BegH, BegV: r.BegV, EndH: r.EndH, EndV: r.EndV, Cigar: r.Cigar,
				}).Validate(); err != nil {
					restore()
					t.Fatalf("sibling comparison %d invalid: %v", i, err)
				}
			}
			restore()

			// With the cap restored and the same warm cache, the big
			// comparison must come back real — proving its Failed
			// placeholder was never cached.
			rep2, err := Run(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep2.PartialFailures != 0 {
				t.Fatalf("uncapped rerun still degraded: %d", rep2.PartialFailures)
			}
			big := rep2.Results[bigIdx]
			if big.Failed || big.Cigar == "" || big.Score <= 0 {
				t.Fatalf("uncapped rerun served a stale degraded result: %+v", big)
			}
			if rep2.CacheHits == 0 {
				t.Fatal("uncapped rerun had no cache hits for the small comparisons")
			}
		})
	}
}
