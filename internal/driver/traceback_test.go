package driver

import (
	"testing"

	"github.com/sram-align/xdropipu/internal/alignment"
	"github.com/sram-align/xdropipu/internal/workload"
)

// TestTracebackReportOracle runs every golden workload/config pair with
// traceback enabled and checks the full report-level contract: score
// fields bit-identical to the score-only run, every CIGAR valid,
// consuming exactly the aligned spans, re-scoring to the kernel score,
// and peak traceback memory bounded by the live-window band rather than
// the full matrix.
func TestTracebackReportOracle(t *testing.T) {
	ds := goldenDatasets(t)
	for name, tc := range goldenConfigs() {
		d := ds[tc.dataset]
		off, err := Run(d, tc.cfg)
		if err != nil {
			t.Fatalf("%s: score-only run: %v", name, err)
		}
		cfg := tc.cfg
		cfg.Traceback = true
		on, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("%s: traceback run: %v", name, err)
		}

		if on.PeakTracebackBytes <= 0 || on.TracebackBytes <= 0 {
			t.Fatalf("%s: traceback run reported no trace memory (%d peak, %d total)",
				name, on.PeakTracebackBytes, on.TracebackBytes)
		}
		if off.PeakTracebackBytes != 0 || off.TracebackBytes != 0 {
			t.Fatalf("%s: score-only run reported trace memory", name)
		}
		// The band bound: a single extension's trace is at most
		// (antidiagonals × δb/4) plus the window index — far below the
		// 4·m·n score matrix of the largest comparison.
		maxCells := int64(0)
		for _, c := range d.Comparisons {
			if n := d.Complexity(c); n > maxCells {
				maxCells = n
			}
		}
		if int64(on.PeakTracebackBytes)*4 > maxCells {
			t.Fatalf("%s: peak traceback bytes %d not far below the %d-byte full matrix",
				name, on.PeakTracebackBytes, 4*maxCells)
		}

		if len(on.Results) != len(off.Results) {
			t.Fatalf("%s: result count changed with traceback", name)
		}
		p := cfg.Kernel.Params
		for i, r := range on.Results {
			w := off.Results[i]
			if r.Score != w.Score || r.LeftScore != w.LeftScore || r.RightScore != w.RightScore ||
				r.BegH != w.BegH || r.BegV != w.BegV || r.EndH != w.EndH || r.EndV != w.EndV ||
				r.Cells != w.Cells || r.Antidiagonals != w.Antidiagonals ||
				r.MaxLiveBand != w.MaxLiveBand || r.Clamped != w.Clamped {
				t.Fatalf("%s: comparison %d score fields changed with traceback:\n on: %+v\noff: %+v", name, i, r, w)
			}
			aln := alignment.Alignment{
				Score: r.Score,
				BegH:  r.BegH, BegV: r.BegV, EndH: r.EndH, EndV: r.EndV,
				Cigar: r.Cigar,
			}
			if err := aln.Validate(); err != nil {
				t.Fatalf("%s: comparison %d alignment invalid: %v (cigar %q)", name, i, err, r.Cigar)
			}
			c := d.Comparisons[i]
			h, v := d.Sequences[c.H], d.Sequences[c.V]
			recon, err := alignment.ScoreOf(h[r.BegH:r.EndH], v[r.BegV:r.EndV], r.Cigar,
				p.Scorer, p.Gap, p.GapOpen)
			if err != nil {
				t.Fatalf("%s: comparison %d reconstruction: %v (cigar %q)", name, i, err, r.Cigar)
			}
			if recon != r.Score {
				t.Fatalf("%s: comparison %d reconstructed score %d != kernel %d (cigar %q)",
					name, i, recon, r.Score, r.Cigar)
			}
			if r.TraceBytes <= 0 {
				t.Fatalf("%s: comparison %d has no trace-byte accounting", name, i)
			}
		}
		// The CIGAR payload rides the result link.
		if on.HostBytesOut <= off.HostBytesOut {
			t.Fatalf("%s: traceback result payload %d not above score-only %d",
				name, on.HostBytesOut, off.HostBytesOut)
		}
	}
}

// TestTracebackComposesWithDedup: with duplicate-extension elimination
// (and representatives fanned back out) every comparison must receive
// the same CIGAR as a dedup-off traceback run.
func TestTracebackComposesWithDedup(t *testing.T) {
	ds := goldenDatasets(t)
	d := ds["reads"]
	// Duplicate the comparison list to create real dedup pressure.
	dup := &workload.Dataset{
		Name:        d.Name + "-dup",
		Sequences:   d.Sequences,
		Comparisons: append(append([]workload.Comparison(nil), d.Comparisons...), d.Comparisons...),
		Protein:     d.Protein,
	}
	base := goldenConfigs()["reads-partition"].cfg
	base.Traceback = true

	off, err := Run(dup, base)
	if err != nil {
		t.Fatal(err)
	}
	onCfg := base
	onCfg.DedupExtensions = true
	on, err := Run(dup, onCfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.DedupedComparisons == 0 {
		t.Fatal("duplicated dataset produced no dedup")
	}
	for i := range off.Results {
		if on.Results[i] != off.Results[i] {
			t.Fatalf("comparison %d differs under dedup:\n  on: %+v\n off: %+v",
				i, on.Results[i], off.Results[i])
		}
	}
}
