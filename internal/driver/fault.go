package driver

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FaultKind classifies one injected fault.
type FaultKind uint8

const (
	// FaultNone leaves the execution untouched.
	FaultNone FaultKind = iota
	// FaultTransient fails one (batch, attempt) execution; a later
	// attempt of the same batch can succeed, which is what makes retries
	// worth having.
	FaultTransient
	// FaultPermanent fails every attempt of a batch — the "device is
	// gone" case no amount of retrying fixes.
	FaultPermanent
	// FaultStraggler delays an execution by the plan's StragglerDelay
	// without failing it — the slow-device case hedging exists for.
	FaultStraggler
)

// String names the kind for error messages and logs.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultStraggler:
		return "straggler"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultSpec sets a fault plan's injection rates. Rates are per batch
// execution and mutually exclusive per decision: a batch first draws its
// permanent fate (attempt-independent), then each attempt draws one of
// transient / straggler / clean.
type FaultSpec struct {
	// TransientRate is the probability an individual (batch, attempt)
	// execution fails with a retryable fault.
	TransientRate float64
	// PermanentRate is the probability a batch fails on every attempt.
	PermanentRate float64
	// StragglerRate is the probability an individual (batch, attempt)
	// execution is delayed by StragglerDelay before running normally.
	StragglerRate float64
	// StragglerDelay is the wall-clock delay of a straggler execution.
	StragglerDelay time.Duration
}

// FaultPlan injects deterministic, seeded faults at the ExecBatch
// boundary — the substrate for chaos testing the layers above. Decisions
// are a pure function of (seed, batch index, attempt), so a given plan
// injects exactly the same faults on every run and tests can predict
// counters exactly; only wall-clock timing (straggler sleeps) touches
// the real clock. Injection never changes any result that is delivered:
// a faulted execution either fails outright or runs late, and re-executed
// batches are bit-identical by the repository's determinism invariant —
// which is precisely why the engine's retry/hedge layer is sound.
//
// A plan is safe for concurrent use; its counters are plan-lifetime and
// shared by every BatchPlan it is installed in (Config.Faults).
type FaultPlan struct {
	seed int64
	spec FaultSpec

	transients, permanents, stragglers atomic.Int64
}

// NewFaultPlan returns a seeded fault plan. The zero spec injects
// nothing.
func NewFaultPlan(seed int64, spec FaultSpec) *FaultPlan {
	return &FaultPlan{seed: seed, spec: spec}
}

// Spec returns the plan's injection rates.
func (p *FaultPlan) Spec() FaultSpec { return p.spec }

// Kind returns the plan's deterministic decision for one execution —
// pure, uncounted, side-effect free — so tests can replay the schedule a
// run will see and assert injected-fault counters exactly.
func (p *FaultPlan) Kind(batch, attempt int) FaultKind {
	if p == nil {
		return FaultNone
	}
	// Permanent fate is drawn per batch from its own stream so it holds
	// across attempts (retrying a dead batch must keep failing).
	if p.spec.PermanentRate > 0 &&
		unitFloat(faultHash(p.seed, batch, -1)) < p.spec.PermanentRate {
		return FaultPermanent
	}
	u := unitFloat(faultHash(p.seed, batch, attempt))
	switch {
	case u < p.spec.TransientRate:
		return FaultTransient
	case u < p.spec.TransientRate+p.spec.StragglerRate:
		return FaultStraggler
	}
	return FaultNone
}

// inject applies the plan's decision to one execution: it returns the
// injected error for a failure, sleeps out a straggler delay, and counts
// whatever it did.
func (p *FaultPlan) inject(batch, attempt int) error {
	switch p.Kind(batch, attempt) {
	case FaultTransient:
		p.transients.Add(1)
		return &FaultError{Batch: batch, Attempt: attempt, Kind: FaultTransient}
	case FaultPermanent:
		p.permanents.Add(1)
		return &FaultError{Batch: batch, Attempt: attempt, Kind: FaultPermanent}
	case FaultStraggler:
		p.stragglers.Add(1)
		if p.spec.StragglerDelay > 0 {
			time.Sleep(p.spec.StragglerDelay)
		}
	}
	return nil
}

// Injected returns the plan-lifetime injection counters: transient and
// permanent failures raised, and straggler delays served.
func (p *FaultPlan) Injected() (transient, permanent, straggler int64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.transients.Load(), p.permanents.Load(), p.stragglers.Load()
}

// InjectedTotal sums all injections (Engine.Stats.FaultsInjected).
func (p *FaultPlan) InjectedTotal() int64 {
	t, pm, s := p.Injected()
	return t + pm + s
}

// FaultError is the error an installed FaultPlan raises for a failed
// batch execution. Callers classify it with errors.As and Transient to
// decide between retrying and degrading.
type FaultError struct {
	// Batch and Attempt identify the failed execution.
	Batch, Attempt int
	// Kind is FaultTransient or FaultPermanent.
	Kind FaultKind
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("driver: injected %s fault (batch %d, attempt %d)",
		e.Kind, e.Batch, e.Attempt)
}

// Transient reports whether a later attempt of the same batch can
// succeed.
func (e *FaultError) Transient() bool { return e.Kind == FaultTransient }

// faultHash mixes (seed, batch, attempt) into one 64-bit draw
// (splitmix64-style finalization over distinct odd-constant streams).
func faultHash(seed int64, batch, attempt int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 +
		uint64(int64(batch))*0xbf58476d1ce4e5b9 +
		uint64(int64(attempt))*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unitFloat maps a 64-bit draw to [0, 1).
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }
