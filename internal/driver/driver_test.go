package driver

import (
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func testCfg(ipus int, partitionOn bool) Config {
	return Config{
		IPUs:  ipus,
		Model: platform.GC200,
		// Test datasets are tiny relative to 1472 tiles; scale the
		// device down so batching and reuse behave as they do at scale.
		TilesPerIPU: 8,
		Partition:   partitionOn,
		Kernel: ipukernel.Config{
			Params:           core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}
}

func readsData(t *testing.T, seed int64, maxCmp int) *workload.Dataset {
	t.Helper()
	d := synth.Reads(synth.ReadsSpec{
		Name: "drv", GenomeLen: 50000, Coverage: 8, MeanReadLen: 2200, MinReadLen: 800,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 600, Seed: seed, MaxComparisons: maxCmp,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunProducesCorrectScores(t *testing.T) {
	d := readsData(t, 1, 40)
	rep, err := Run(d, testCfg(2, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(d.Comparisons) {
		t.Fatalf("got %d results for %d comparisons", len(rep.Results), len(d.Comparisons))
	}
	p := core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256}
	for i, c := range d.Comparisons {
		want, err := core.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V],
			core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}, p)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Results[i]
		if got.Score != want.Score {
			t.Fatalf("cmp %d: driver score %d != direct %d", i, got.Score, want.Score)
		}
	}
	if rep.WallSeconds <= 0 || rep.DeviceComputeSeconds <= 0 || rep.Batches == 0 {
		t.Errorf("bad accounting: %+v", rep)
	}
	if rep.TheoreticalCells != d.TheoreticalCells() {
		t.Errorf("theoretical cells %d != dataset %d", rep.TheoreticalCells, d.TheoreticalCells())
	}
}

func TestMoreIPUsNeverSlower(t *testing.T) {
	d := readsData(t, 2, 120)
	var prev float64
	for i, n := range []int{1, 2, 4, 8} {
		rep, err := Run(d, testCfg(n, true))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rep.WallSeconds > prev*1.001 {
			t.Errorf("%d IPUs slower than fewer: %g > %g", n, rep.WallSeconds, prev)
		}
		prev = rep.WallSeconds
	}
}

func TestPartitioningReducesTraffic(t *testing.T) {
	d := readsData(t, 3, 150)
	single, err := Run(d, testCfg(4, false))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(d, testCfg(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if multi.HostBytesIn >= single.HostBytesIn {
		t.Errorf("partitioning did not cut traffic: %d -> %d", single.HostBytesIn, multi.HostBytesIn)
	}
	if multi.ReuseFactor <= 1.1 {
		t.Errorf("reuse factor %.2f too low", multi.ReuseFactor)
	}
	if single.ReuseFactor != 1 {
		t.Errorf("single-comparison reuse factor %.2f, want 1", single.ReuseFactor)
	}
	// Scores must be identical either way.
	for i := range single.Results {
		if single.Results[i].Score != multi.Results[i].Score {
			t.Fatalf("cmp %d scores differ between modes", i)
		}
	}
}

func TestDeviceComputeIndependentOfIPUCount(t *testing.T) {
	// Total on-device compute is a property of the workload, not of how
	// many devices share it.
	d := readsData(t, 4, 60)
	r1, err := Run(d, testCfg(1, true))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(d, testCfg(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if r1.DeviceComputeSeconds != r4.DeviceComputeSeconds {
		t.Errorf("device compute changed with IPU count: %g vs %g",
			r1.DeviceComputeSeconds, r4.DeviceComputeSeconds)
	}
}

func TestDeterminism(t *testing.T) {
	d := readsData(t, 5, 50)
	a, err := Run(d, testCfg(3, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, testCfg(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.WallSeconds != b.WallSeconds || a.Batches != b.Batches || a.Cells != b.Cells {
		t.Error("driver run not deterministic")
	}
}

func TestGCUPSAndMeanBand(t *testing.T) {
	d := readsData(t, 6, 30)
	rep, err := Run(d, testCfg(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if g := rep.GCUPS(rep.DeviceComputeSeconds); g <= 0 {
		t.Errorf("GCUPS = %f", g)
	}
	if mb := rep.MeanBand(); mb <= 0 || mb > 1000 {
		t.Errorf("MeanBand = %f", mb)
	}
}

func TestEmptyDataset(t *testing.T) {
	d := &workload.Dataset{Name: "empty"}
	rep, err := Run(d, testCfg(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 0 || rep.WallSeconds != 0 {
		t.Errorf("empty dataset produced work: %+v", rep)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := readsData(t, 7, 10)
	cfg := testCfg(0, true) // IPUs=0 → 1
	cfg.Model = platform.IPUModel{}
	rep, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(d.Comparisons) {
		t.Error("defaults run failed")
	}
}

func TestInvalidDatasetRejected(t *testing.T) {
	d := &workload.Dataset{
		Sequences:   [][]byte{[]byte("ACGT")},
		Comparisons: []workload.Comparison{{H: 0, V: 5, SeedLen: 2}},
	}
	if _, err := Run(d, testCfg(1, true)); err == nil {
		t.Error("invalid dataset accepted")
	}
}
