package elba

import (
	"sort"

	"github.com/sram-align/xdropipu/internal/workload"
)

// edge is a directed suffix→prefix overlap: src's suffix matches dst's
// prefix; following the edge appends dst[splice:] to a walk.
type edge struct {
	dst int
	// splice is the offset on dst where new sequence starts.
	splice int
	// wt is the overhang length len(dst)−splice (Myers' edge length).
	wt int
	// dropped marks transitively reduced edges.
	dropped bool
}

// graph is the assembly string graph (forward strand only).
type graph struct {
	adj       [][]edge
	indeg     []int
	contained []bool
}

func newGraph(n int) *graph {
	return &graph{
		adj:       make([][]edge, n),
		indeg:     make([]int, n),
		contained: make([]bool, n),
	}
}

// classify turns an accepted alignment between reads a (H) and b (V) into
// a containment mark or a directed overlap edge (§2.3 stage four input).
func (g *graph) classify(a, b int, aln workload.Alignment, lenA, lenB, fuzz int) {
	aLeft := aln.BegH <= fuzz
	aRight := lenA-aln.EndH <= fuzz
	bLeft := aln.BegV <= fuzz
	bRight := lenB-aln.EndV <= fuzz
	switch {
	case bLeft && bRight:
		// b fully covered: contained in a.
		g.contained[b] = true
	case aLeft && aRight:
		g.contained[a] = true
	case aRight && bLeft:
		// a suffix overlaps b prefix: a → b.
		g.addEdge(a, b, aln.EndV, lenB)
	case bRight && aLeft:
		g.addEdge(b, a, aln.EndH, lenA)
	default:
		// Internal match (likely a repeat or a chimeric candidate):
		// not a proper dovetail overlap; discard.
	}
}

func (g *graph) addEdge(src, dst, splice, lenDst int) {
	if src == dst {
		return
	}
	for _, e := range g.adj[src] {
		if e.dst == dst {
			return // keep the first (highest-evidence) edge
		}
	}
	g.adj[src] = append(g.adj[src], edge{dst: dst, splice: splice, wt: lenDst - splice})
	g.indeg[dst]++
}

func (g *graph) containedCount() int {
	n := 0
	for _, c := range g.contained {
		if c {
			n++
		}
	}
	return n
}

// dropContained removes contained reads and every edge touching them.
func (g *graph) dropContained() {
	for v := range g.adj {
		if g.contained[v] {
			for _, e := range g.adj[v] {
				if !e.dropped {
					g.indeg[e.dst]--
				}
			}
			g.adj[v] = nil
			continue
		}
		kept := g.adj[v][:0]
		for _, e := range g.adj[v] {
			if g.contained[e.dst] {
				continue
			}
			kept = append(kept, e)
		}
		g.adj[v] = kept
	}
	// Rebuild in-degrees (simpler than tracking the two loops above).
	for v := range g.indeg {
		g.indeg[v] = 0
	}
	for v := range g.adj {
		for _, e := range g.adj[v] {
			if !e.dropped {
				g.indeg[e.dst]++
			}
		}
	}
}

func (g *graph) edgeCount() int {
	n := 0
	for _, es := range g.adj {
		for _, e := range es {
			if !e.dropped {
				n++
			}
		}
	}
	return n
}

// transitiveReduce removes edges v→x when a two-hop path v→w→x of
// consistent length exists (Myers 2005, with fuzz tolerance) — ELBA's
// graph simplification stage.
func (g *graph) transitiveReduce(fuzz int) {
	for v := range g.adj {
		sort.Slice(g.adj[v], func(a, b int) bool { return g.adj[v][a].wt < g.adj[v][b].wt })
	}
	mark := make(map[int]int) // dst → edge index in adj[v]
	for v := range g.adj {
		if len(g.adj[v]) < 2 {
			continue
		}
		clear(mark)
		longest := g.adj[v][len(g.adj[v])-1].wt + fuzz
		for i, e := range g.adj[v] {
			mark[e.dst] = i
		}
		for _, e := range g.adj[v] {
			if e.dropped {
				continue
			}
			for _, f := range g.adj[e.dst] {
				if f.dropped {
					continue
				}
				total := e.wt + f.wt
				if total > longest {
					break // adj sorted by wt: all further are longer
				}
				if xi, ok := mark[f.dst]; ok {
					x := &g.adj[v][xi]
					if !x.dropped && x.wt >= total-fuzz && x.wt <= total+fuzz {
						x.dropped = true
						g.indeg[x.dst]--
					}
				}
			}
		}
	}
}

// liveOut returns non-dropped out-edges of v.
func (g *graph) liveOut(v int) []edge {
	var out []edge
	for _, e := range g.adj[v] {
		if !e.dropped {
			out = append(out, e)
		}
	}
	return out
}

// contigs walks unbranched paths and splices reads into contigs. Every
// non-contained read is emitted exactly once (singletons become
// single-read contigs).
func (g *graph) contigs(reads [][]byte) [][]byte {
	n := len(g.adj)
	visited := make([]bool, n)
	var out [][]byte

	walk := func(start int) {
		contig := append([]byte{}, reads[start]...)
		visited[start] = true
		v := start
		for {
			es := g.liveOut(v)
			if len(es) != 1 {
				break // dead end or branch (repeat boundary)
			}
			next := es[0]
			if visited[next.dst] || g.indeg[next.dst] != 1 {
				break // converging path or cycle
			}
			if next.splice < len(reads[next.dst]) {
				contig = append(contig, reads[next.dst][next.splice:]...)
			}
			visited[next.dst] = true
			v = next.dst
		}
		out = append(out, contig)
	}

	// Linear path starts first...
	for v := 0; v < n; v++ {
		if !visited[v] && !g.contained[v] && g.indeg[v] == 0 {
			walk(v)
		}
	}
	// ...then any remaining cycles or converged tangles.
	for v := 0; v < n; v++ {
		if !visited[v] && !g.contained[v] {
			walk(v)
		}
	}
	return out
}
