package elba

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/backend"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func ipuBackend(x int) backend.Backend {
	return &backend.IPU{Cfg: driver.Config{
		IPUs: 1, Model: platform.GC200, TilesPerIPU: 16, Partition: true,
		Kernel: ipukernel.Config{
			Params:           core.Params{Scorer: scoring.DNADefault, Gap: -1, X: x, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}
}

// tilingReads emits overlapping error-free-ish reads covering the genome
// in order, guaranteeing a linear overlap chain.
func tilingReads(rng *rand.Rand, genome []byte, readLen, stride int, prof synth.MutationProfile) [][]byte {
	var reads [][]byte
	for off := 0; ; off += stride {
		end := off + readLen
		if end > len(genome) {
			if off < len(genome)-stride {
				reads = append(reads, prof.Apply(rng, genome[len(genome)-readLen:]))
			}
			break
		}
		reads = append(reads, prof.Apply(rng, genome[off:end]))
	}
	return reads
}

func TestAssembleLinearGenome(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	genomeLen := 30000
	genome := synth.RandDNA(rng, genomeLen)
	reads := tilingReads(rng, genome, 3000, 1200, synth.HiFiDNA())
	res, err := Assemble(reads, Config{K: 17, Backend: ipuBackend(15)})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverlapStats.Comparisons == 0 {
		t.Fatal("no overlaps detected")
	}
	if res.Accepted == 0 {
		t.Fatal("no alignments accepted")
	}
	if res.ReducedEdges > res.Edges {
		t.Error("transitive reduction added edges")
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	// A clean tiling should assemble into very few contigs covering
	// roughly the genome.
	if len(res.Contigs) > 4 {
		t.Errorf("assembly fragmented into %d contigs", len(res.Contigs))
	}
	total := TotalLength(res.Contigs)
	if total < genomeLen*85/100 || total > genomeLen*125/100 {
		t.Errorf("assembled length %d, genome %d", total, genomeLen)
	}
	if n50 := N50(res.Contigs); n50 < genomeLen/2 {
		t.Errorf("N50 %d too small for a linear genome of %d", n50, genomeLen)
	}
}

func TestAssembleRejectsMissingBackend(t *testing.T) {
	if _, err := Assemble(nil, Config{}); err == nil {
		t.Error("missing backend accepted")
	}
}

func TestTransitiveReductionRemovesShortcut(t *testing.T) {
	// Three reads in a chain; A overlaps B, B overlaps C, and A also
	// overlaps C (shortcut). Reduction must drop A→C.
	g := newGraph(3)
	// A→B: splice 1000 on B (len 3000): wt 2000.
	g.addEdge(0, 1, 1000, 3000)
	// B→C: splice 1000 on C (len 3000): wt 2000.
	g.addEdge(1, 2, 1000, 3000)
	// A→C: splice 2000 on C: wt 1000... must be ≈ wt(A→B)+wt(B→C) to be
	// transitive; use consistent geometry: wt(A→C) = 4000 → splice -1000
	// is impossible, so construct with lenC 5000.
	g = newGraph(3)
	g.addEdge(0, 1, 1000, 3000) // wt 2000
	g.addEdge(1, 2, 1000, 3000) // wt 2000
	g.addEdge(0, 2, 0, 4000)    // wt 4000 = 2000+2000 → transitive
	g.transitiveReduce(100)
	if g.edgeCount() != 2 {
		t.Errorf("edges after reduction = %d, want 2", g.edgeCount())
	}
	for _, e := range g.adj[0] {
		if e.dst == 2 && !e.dropped {
			t.Error("shortcut edge survived")
		}
	}
}

func TestTransitiveReductionKeepsInconsistentLengths(t *testing.T) {
	g := newGraph(3)
	g.addEdge(0, 1, 1000, 3000) // wt 2000
	g.addEdge(1, 2, 1000, 3000) // wt 2000
	g.addEdge(0, 2, 3000, 4000) // wt 1000 ≠ 4000 → not transitive
	g.transitiveReduce(100)
	if g.edgeCount() != 3 {
		t.Errorf("edges = %d, want 3 (inconsistent shortcut kept)", g.edgeCount())
	}
}

func TestClassifyContainment(t *testing.T) {
	g := newGraph(2)
	// b fully covered by the alignment → contained.
	g.classify(0, 1, workload.Alignment{Score: 900, BegH: 500, EndH: 1500, BegV: 10, EndV: 990}, 3000, 1000, 50)
	if !g.contained[1] || g.contained[0] {
		t.Error("containment misclassified")
	}
}

func TestClassifyDovetail(t *testing.T) {
	g := newGraph(2)
	// a's suffix aligns b's prefix → edge a→b.
	g.classify(0, 1, workload.Alignment{Score: 900, BegH: 2000, EndH: 3000, BegV: 5, EndV: 1010}, 3010, 4000, 50)
	if len(g.adj[0]) != 1 || g.adj[0][0].dst != 1 {
		t.Fatalf("expected edge 0→1, adj=%v", g.adj)
	}
	if g.adj[0][0].splice != 1010 {
		t.Errorf("splice = %d, want 1010", g.adj[0][0].splice)
	}
	// Internal (non-dovetail) alignments must be discarded.
	g2 := newGraph(2)
	g2.classify(0, 1, workload.Alignment{Score: 900, BegH: 1000, EndH: 2000, BegV: 1000, EndV: 2000}, 4000, 4000, 50)
	if g2.edgeCount() != 0 || g2.containedCount() != 0 {
		t.Error("internal match created graph structure")
	}
}

func TestN50(t *testing.T) {
	contigs := [][]byte{make([]byte, 100), make([]byte, 300), make([]byte, 600)}
	// Total 1000; sorted desc 600,300,100; cumulative 600 ≥ 500 → 600.
	if n := N50(contigs); n != 600 {
		t.Errorf("N50 = %d, want 600", n)
	}
	if N50(nil) != 0 {
		t.Error("empty N50 must be 0")
	}
	if TotalLength(contigs) != 1000 {
		t.Error("TotalLength broken")
	}
}

func TestAssembleWithCPUBackendMatchesIPU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genome := synth.RandDNA(rng, 15000)
	reads := tilingReads(rng, genome, 2500, 1100, synth.HiFiDNA())
	ipuRes, err := Assemble(reads, Config{K: 17, Backend: ipuBackend(15)})
	if err != nil {
		t.Fatal(err)
	}
	cpuRes, err := Assemble(reads, Config{K: 17, Backend: &backend.CPU{Model: platform.EPYC7763, X: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ipuRes.Contigs) != len(cpuRes.Contigs) {
		t.Fatalf("backends assembled differently: %d vs %d contigs", len(ipuRes.Contigs), len(cpuRes.Contigs))
	}
	for i := range ipuRes.Contigs {
		if string(ipuRes.Contigs[i]) != string(cpuRes.Contigs[i]) {
			t.Fatal("contig sequences differ between backends")
		}
	}
}
