// Package elba reimplements the ELBA long-read assembly pipeline (§2.3)
// as the paper's first real-world host for the X-Drop aligner: k-mer
// counting → sparse overlap detection (AᵀA) → X-Drop alignment of every
// overlap-matrix nonzero → string-graph simplification (containment
// removal, transitive reduction) → contig extraction.
//
// Simplifications relative to the MPI original are documented in
// DESIGN.md: single-process instead of distributed memory, and
// forward-strand reads only (the synthetic read simulator emits no
// reverse complements), which removes the bidirected-graph bookkeeping
// without changing the alignment-phase workload the paper measures.
package elba

import (
	"fmt"
	"sort"

	"github.com/sram-align/xdropipu/internal/backend"
	"github.com/sram-align/xdropipu/internal/overlap"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Config parameterises a run. Zero fields take the defaults the paper
// uses for its ELBA experiments (§5.3.2).
type Config struct {
	// K is the k-mer length (paper: 31).
	K int
	// MinKmerFreq/MaxKmerFreq bound reliable k-mers (default 2/500).
	MinKmerFreq, MaxKmerFreq int32
	// MinSharedSeeds is the seed-evidence threshold (paper: 2).
	MinSharedSeeds int32
	// MinOverlap rejects alignments spanning fewer symbols.
	MinOverlap int
	// MinScoreRatio rejects alignments scoring below ratio×span (false
	// overlap filter).
	MinScoreRatio float64
	// Fuzz is the coordinate tolerance for overlap classification and
	// transitive reduction.
	Fuzz int
	// Backend executes the alignment phase.
	Backend backend.Backend
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 31
	}
	if c.MinKmerFreq == 0 {
		c.MinKmerFreq = 2
	}
	if c.MaxKmerFreq == 0 {
		c.MaxKmerFreq = 500
	}
	if c.MinSharedSeeds == 0 {
		c.MinSharedSeeds = 2
	}
	if c.MinOverlap == 0 {
		c.MinOverlap = 500
	}
	if c.MinScoreRatio == 0 {
		c.MinScoreRatio = 0.5
	}
	if c.Fuzz == 0 {
		c.Fuzz = 150
	}
	return c
}

// Result is one assembly run's outcome.
type Result struct {
	// Dataset is the alignment workload derived from overlap detection.
	Dataset *workload.Dataset
	// OverlapStats reports the detection stage.
	OverlapStats overlap.Stats
	// Alignments holds the X-Drop results per comparison.
	Alignments []workload.Alignment
	// AlignSeconds is the modeled alignment-phase time (§6.3.1's
	// comparison quantity).
	AlignSeconds float64
	// BackendName names the executor used.
	BackendName string
	// Accepted counts alignments surviving the false-match filter.
	Accepted int
	// Contained counts reads swallowed by containment removal.
	Contained int
	// Edges and ReducedEdges count string-graph edges before and after
	// transitive reduction.
	Edges, ReducedEdges int
	// Contigs holds the assembled sequences.
	Contigs [][]byte
}

// Assemble runs the full pipeline on a read set.
func Assemble(reads [][]byte, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Backend == nil {
		return nil, fmt.Errorf("elba: Config.Backend is required")
	}

	cmps, ost, err := overlap.Detect(reads, overlap.Options{
		K:              cfg.K,
		MinKmerFreq:    cfg.MinKmerFreq,
		MaxKmerFreq:    cfg.MaxKmerFreq,
		MinSharedSeeds: cfg.MinSharedSeeds,
	})
	if err != nil {
		return nil, err
	}
	// Pack Ω into an arena up front: read indices survive interning
	// (identical reads share a span, not an index), every alignment
	// backend sees the same packed pool, and concurrent Assemble calls
	// submitting to a shared engine duplicate no sequence memory.
	arena := workload.NewArena(0, len(reads))
	for ri, r := range reads {
		if _, err := arena.TryAppend(r); err != nil {
			return nil, fmt.Errorf("elba: read %d: %w", ri, err)
		}
	}
	plan := workload.PlanOf(cmps)
	if err := arena.ValidatePlan(plan); err != nil {
		return nil, err
	}
	d := arena.NewDataset("elba", plan, false)

	out, err := cfg.Backend.Align(d)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Dataset:      d,
		OverlapStats: ost,
		Alignments:   out.Alignments,
		AlignSeconds: out.Seconds,
		BackendName:  out.Name,
	}

	g := newGraph(len(reads))
	for ci, aln := range out.Alignments {
		c := cmps[ci]
		span := aln.SpanH()
		if aln.SpanV() < span {
			span = aln.SpanV()
		}
		if span < cfg.MinOverlap || float64(aln.Score) < cfg.MinScoreRatio*float64(span) {
			continue
		}
		res.Accepted++
		g.classify(c.H, c.V, aln, len(reads[c.H]), len(reads[c.V]), cfg.Fuzz)
	}
	res.Contained = g.containedCount()
	g.dropContained()
	res.Edges = g.edgeCount()
	g.transitiveReduce(cfg.Fuzz)
	res.ReducedEdges = g.edgeCount()
	res.Contigs = g.contigs(reads)
	return res, nil
}

// N50 returns the standard assembly contiguity metric: the length L such
// that contigs of length ≥ L cover half the assembly.
func N50(contigs [][]byte) int {
	if len(contigs) == 0 {
		return 0
	}
	lens := make([]int, len(contigs))
	total := 0
	for i, c := range contigs {
		lens[i] = len(c)
		total += len(c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	run := 0
	for _, l := range lens {
		run += l
		if 2*run >= total {
			return l
		}
	}
	return lens[len(lens)-1]
}

// TotalLength sums contig lengths.
func TotalLength(contigs [][]byte) int {
	n := 0
	for _, c := range contigs {
		n += len(c)
	}
	return n
}
