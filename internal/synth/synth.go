// Package synth generates the synthetic and realistic-shaped workloads the
// paper evaluates on (§5.2): uniform-error synthetic pairs (simulated85),
// long-read datasets extracted from an assembly overlap step (the E. coli
// and C. elegans rows of Table 2), and protein families for PASTIS.
//
// No proprietary traces or PacBio runs are available to a pure-Go
// reproduction, so this package is the substitution: a seeded genome/read
// simulator whose length, error and seed-position distributions are shaped
// to match Table 2. All generation is deterministic given the spec's seed.
package synth

import (
	"math"
	"math/rand"
	"sort"

	"github.com/sram-align/xdropipu/internal/workload"
)

var dnaSymbols = []byte("ACGT")

// proteinSymbols are the 20 standard amino acids (no ambiguity codes).
var proteinSymbols = []byte("ARNDCQEGHILKMFPSTWYV")

// RandDNA returns n uniform random nucleotides.
func RandDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = dnaSymbols[rng.Intn(4)]
	}
	return s
}

// RandProtein returns n uniform random amino acids.
func RandProtein(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = proteinSymbols[rng.Intn(len(proteinSymbols))]
	}
	return s
}

// MutationProfile describes a per-symbol error model. Long-read
// technologies are indel-dominated (§2.2), so the default read profile
// weights insertions and deletions above substitutions.
type MutationProfile struct {
	// Sub, Ins and Del are per-symbol probabilities.
	Sub, Ins, Del float64
	// Burst is the per-symbol probability of an indel burst — a run of
	// BurstLen±50% inserted (or deleted) symbols, the bursty error mode
	// of CLR-class long reads that drives wide X-Drop working bands.
	Burst float64
	// BurstLen is the mean burst length (0 disables bursts).
	BurstLen int
	// Protein selects the amino-acid alphabet for replacement symbols.
	Protein bool
}

// Rate returns the total per-symbol error probability.
func (m MutationProfile) Rate() float64 { return m.Sub + m.Ins + m.Del }

// UniformDNA splits rate evenly across substitutions, insertions and
// deletions, matching the paper's synthetic data ("uniform-randomly
// mutating individual bases").
func UniformDNA(rate float64) MutationProfile {
	return MutationProfile{Sub: rate / 3, Ins: rate / 3, Del: rate / 3}
}

// SubOnlyDNA mutates by substitution only (used by the Fig. 6 sweep,
// which varies "symbol mismatches").
func SubOnlyDNA(rate float64) MutationProfile {
	return MutationProfile{Sub: rate}
}

// HiFiDNA approximates PacBio HiFi error characteristics: low total error,
// indel-leaning.
func HiFiDNA() MutationProfile {
	return MutationProfile{Sub: 0.002, Ins: 0.004, Del: 0.004}
}

func (m MutationProfile) alphabet() []byte {
	if m.Protein {
		return proteinSymbols
	}
	return dnaSymbols
}

// Apply mutates s under the profile and returns a new slice.
func (m MutationProfile) Apply(rng *rand.Rand, s []byte) []byte {
	out := make([]byte, 0, len(s)+len(s)/8+4)
	alpha := m.alphabet()
	skip := 0
	for _, c := range s {
		if skip > 0 {
			// Inside a deletion burst.
			skip--
			continue
		}
		if m.Burst > 0 && m.BurstLen > 0 && rng.Float64() < m.Burst {
			n := m.BurstLen/2 + rng.Intn(m.BurstLen+1)
			if rng.Intn(2) == 0 {
				for i := 0; i < n; i++ {
					out = append(out, alpha[rng.Intn(len(alpha))])
				}
				out = append(out, c)
			} else {
				skip = n
			}
			continue
		}
		r := rng.Float64()
		switch {
		case r < m.Sub:
			// Substitute with a different symbol.
			nc := alpha[rng.Intn(len(alpha))]
			for nc == c {
				nc = alpha[rng.Intn(len(alpha))]
			}
			out = append(out, nc)
		case r < m.Sub+m.Ins:
			out = append(out, alpha[rng.Intn(len(alpha))], c)
		case r < m.Sub+m.Ins+m.Del:
			// Deletion: drop the symbol.
		default:
			out = append(out, c)
		}
	}
	return out
}

// Comparison aliases the workload interchange type; generators fill it.
type Comparison = workload.Comparison

// Dataset aliases the workload interchange type; generators produce it.
type Dataset = workload.Dataset

// packDataset packs fully generated sequences into an arena-backed
// dataset: one slab for Ω, a columnar comparison plan, and the
// compatibility view over both. Generators mutate sequences (seed
// planting, error application) before packing, so the arena's content
// hashes stay valid.
func packDataset(name string, protein bool, seqs [][]byte, cmps []Comparison) *Dataset {
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	a := workload.NewArena(total, len(seqs))
	for _, s := range seqs {
		a.Append(s)
	}
	return a.NewDataset(name, workload.PlanOf(cmps), protein)
}

// PlantSeed copies the k-mer at h[seedH:] over v[seedV:] so the seed is an
// exact match, as the k-mer seeding stages guarantee.
func PlantSeed(h, v []byte, seedH, seedV, k int) {
	copy(v[seedV:seedV+k], h[seedH:seedH+k])
}

// UniformPairsSpec configures the simulated85-style dataset: equal-length
// sequence pairs with a fixed similarity and a centred seed (§5.2:
// "Synthetic datasets were generated with equal sequence length and fixed
// read similarity").
type UniformPairsSpec struct {
	// Count is the number of comparisons.
	Count int
	// Length is the per-sequence length (9 992 in Table 2).
	Length int
	// ErrorRate is the mutation rate outside the seed (0.15 for
	// simulated85).
	ErrorRate float64
	// SeedLen is the planted exact k-mer length (17 in §5.2).
	SeedLen int
	// Seed seeds the generator.
	Seed int64
}

// UniformPairs generates the spec'd dataset. Every comparison gets its own
// pair of fresh sequences (no reuse), which is what makes the synthetic
// data insensitive to the LR-splitting and partitioning optimisations
// (§4.1.2, Table 1).
func UniformPairs(spec UniformPairsSpec) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	seqs := make([][]byte, 0, 2*spec.Count)
	cmps := make([]Comparison, 0, spec.Count)
	prof := UniformDNA(spec.ErrorRate)
	for c := 0; c < spec.Count; c++ {
		h := RandDNA(rng, spec.Length)
		v := prof.Apply(rng, h)
		if len(v) < spec.Length {
			v = append(v, RandDNA(rng, spec.Length-len(v))...)
		}
		v = v[:spec.Length]
		mid := spec.Length / 2
		seedH := mid - spec.SeedLen/2
		// Locate the corresponding seed on v near the same offset.
		seedV := seedH
		if seedV+spec.SeedLen > len(v) {
			seedV = len(v) - spec.SeedLen
		}
		PlantSeed(h, v, seedH, seedV, spec.SeedLen)
		seqs = append(seqs, h, v)
		cmps = append(cmps, Comparison{
			H: len(seqs) - 2, V: len(seqs) - 1,
			SeedH: seedH, SeedV: seedV, SeedLen: spec.SeedLen,
		})
	}
	return packDataset("simulated", false, seqs, cmps)
}

// ReadsSpec configures a long-read overlap dataset shaped like the ELBA
// rows of Table 2: reads sampled from one genome, comparisons derived from
// genomic overlap, seeds placed inside the overlap region.
type ReadsSpec struct {
	// Name labels the dataset.
	Name string
	// GenomeLen is the reference length to sample from.
	GenomeLen int
	// Coverage is the mean sequencing depth; it controls how many reads
	// (and therefore overlaps) are generated.
	Coverage float64
	// MeanReadLen and MinReadLen shape the length distribution
	// (log-normal-like, long tail — ecoli100 averages ~3.6 kb, ecoli and
	// elegans ~7.3 kb). MaxReadLen clamps the tail (0 = 4×mean).
	MeanReadLen, MinReadLen, MaxReadLen int
	// Errors is the per-read error model.
	Errors MutationProfile
	// SeedLen is the k-mer length (17 for the standalone sets, 31 for
	// ELBA runs).
	SeedLen int
	// MinOverlap is the genomic overlap needed to emit a comparison.
	MinOverlap int
	// MaxComparisons caps the emitted comparisons (0 = unlimited). The
	// cap keeps the genome-ordered prefix, i.e. every overlap within a
	// contiguous genomic region, so the comparison graph keeps the
	// density the partitioner (§4.3) exploits.
	MaxComparisons int
	// Seed seeds the generator.
	Seed int64
}

type readMeta struct {
	start, gLen int // genomic interval [start, start+gLen)
}

// Reads generates the spec'd dataset. Reads overlap on the genome, so
// sequences participate in multiple comparisons — the graph structure the
// partitioner (§4.3) exploits.
func Reads(spec ReadsSpec) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	genome := RandDNA(rng, spec.GenomeLen)
	numReads := int(float64(spec.GenomeLen) * spec.Coverage / float64(spec.MeanReadLen))
	if numReads < 2 {
		numReads = 2
	}

	var seqs [][]byte
	metas := make([]readMeta, 0, numReads)
	for r := 0; r < numReads; r++ {
		// Log-normal-ish length: exp(N(log mean, 0.45)) clamped.
		ln := math.Exp(math.Log(float64(spec.MeanReadLen)) + rng.NormFloat64()*0.45)
		gLen := int(ln)
		if gLen < spec.MinReadLen {
			gLen = spec.MinReadLen
		}
		maxLen := spec.MaxReadLen
		if maxLen <= 0 {
			maxLen = 4 * spec.MeanReadLen
		}
		gLen = min(gLen, maxLen, spec.GenomeLen)
		start := rng.Intn(spec.GenomeLen - gLen + 1)
		read := spec.Errors.Apply(rng, genome[start:start+gLen])
		if len(read) < spec.SeedLen+2 {
			continue
		}
		metas = append(metas, readMeta{start: start, gLen: gLen})
		seqs = append(seqs, read)
	}

	// Emit comparisons for genomically overlapping read pairs. A sweep
	// over start-sorted reads keeps this O(overlaps).
	var cmps []Comparison
	order := make([]int, len(metas))
	for i := range order {
		order[i] = i
	}
	sortByStart(order, metas)
	for oi, i := range order {
		mi := metas[i]
		for _, j := range order[oi+1:] {
			mj := metas[j]
			if mj.start >= mi.start+mi.gLen-spec.MinOverlap {
				break
			}
			ovBeg := max(mi.start, mj.start)
			ovEnd := min(mi.start+mi.gLen, mj.start+mj.gLen)
			if ovEnd-ovBeg < spec.MinOverlap || ovEnd-ovBeg < spec.SeedLen {
				continue
			}
			// Place the seed at a random genomic point inside the
			// overlap; the same point maps into each read's local
			// coordinates (indels shift it slightly; clamping keeps
			// it legal and the extension tolerates the offset).
			g := ovBeg + rng.Intn(ovEnd-ovBeg-spec.SeedLen+1)
			sh := clampInt(g-mi.start, 0, len(seqs[i])-spec.SeedLen)
			sv := clampInt(g-mj.start, 0, len(seqs[j])-spec.SeedLen)
			PlantSeed(seqs[i], seqs[j], sh, sv, spec.SeedLen)
			cmps = append(cmps, Comparison{
				H: i, V: j, SeedH: sh, SeedV: sv, SeedLen: spec.SeedLen,
			})
		}
	}

	if spec.MaxComparisons > 0 && len(cmps) > spec.MaxComparisons {
		cmps = cmps[:spec.MaxComparisons]
	}
	return packDataset(spec.Name, false, seqs, cmps)
}

func sortByStart(order []int, metas []readMeta) {
	sort.Slice(order, func(a, b int) bool { return metas[order[a]].start < metas[order[b]].start })
}

// ProteinFamiliesSpec configures the PASTIS workload: families of
// homologous proteins derived from common ancestors.
type ProteinFamiliesSpec struct {
	// Families is the number of ancestral proteins.
	Families int
	// MembersPerFamily is the family size (homolog count).
	MembersPerFamily int
	// MeanLen shapes member length.
	MeanLen int
	// MutRate is the per-residue divergence between family members.
	MutRate float64
	// Seed seeds the generator.
	Seed int64
}

// ProteinFamilies generates the families and returns the dataset plus the
// ground-truth family label per sequence (for recall checks).
func ProteinFamilies(spec ProteinFamiliesSpec) (*Dataset, []int) {
	rng := rand.New(rand.NewSource(spec.Seed))
	var seqs [][]byte
	var labels []int
	prof := MutationProfile{Sub: spec.MutRate * 0.8, Ins: spec.MutRate * 0.1, Del: spec.MutRate * 0.1, Protein: true}
	for f := 0; f < spec.Families; f++ {
		ln := spec.MeanLen/2 + rng.Intn(spec.MeanLen)
		anc := RandProtein(rng, ln)
		for m := 0; m < spec.MembersPerFamily; m++ {
			member := prof.Apply(rng, anc)
			if len(member) < 8 {
				member = append(member, RandProtein(rng, 8-len(member))...)
			}
			seqs = append(seqs, member)
			labels = append(labels, f)
		}
	}
	return packDataset("protein-families", true, seqs, nil), labels
}

func clampInt(v, lo, hi int) int {
	return min(max(v, lo), hi)
}
