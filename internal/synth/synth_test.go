package synth

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/scoring"
)

func TestMutationProfileRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandDNA(rng, 100000)
	prof := SubOnlyDNA(0.15)
	m := prof.Apply(rng, s)
	if len(m) != len(s) {
		t.Fatalf("sub-only mutation changed length: %d -> %d", len(s), len(m))
	}
	diff := 0
	for i := range s {
		if s[i] != m[i] {
			diff++
		}
	}
	rate := float64(diff) / float64(len(s))
	if rate < 0.13 || rate > 0.17 {
		t.Errorf("observed substitution rate %.3f, want ~0.15", rate)
	}
}

func TestUniformDNASplitsRate(t *testing.T) {
	p := UniformDNA(0.15)
	if r := p.Rate(); r < 0.149 || r > 0.151 {
		t.Errorf("Rate() = %f, want 0.15", r)
	}
}

func TestApplyIndelsChangeLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := RandDNA(rng, 50000)
	insOnly := MutationProfile{Ins: 0.1}
	delOnly := MutationProfile{Del: 0.1}
	if m := insOnly.Apply(rng, s); len(m) <= len(s) {
		t.Error("insertions did not grow the sequence")
	}
	if m := delOnly.Apply(rng, s); len(m) >= len(s) {
		t.Error("deletions did not shrink the sequence")
	}
}

func TestSubstitutionNeverIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := RandDNA(rng, 5000)
	prof := SubOnlyDNA(1.0) // substitute every symbol
	m := prof.Apply(rng, s)
	for i := range s {
		if s[i] == m[i] {
			t.Fatalf("substitution produced identical symbol at %d", i)
		}
	}
}

func TestUniformPairs(t *testing.T) {
	d := UniformPairs(UniformPairsSpec{Count: 25, Length: 500, ErrorRate: 0.15, SeedLen: 17, Seed: 4})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Comparisons) != 25 || len(d.Sequences) != 50 {
		t.Fatalf("got %d comparisons over %d sequences", len(d.Comparisons), len(d.Sequences))
	}
	for _, c := range d.Comparisons {
		h, v := d.Sequences[c.H], d.Sequences[c.V]
		if len(h) != 500 || len(v) != 500 {
			t.Fatal("uniform pairs must have fixed length")
		}
		// The planted seed must be an exact match.
		for k := 0; k < c.SeedLen; k++ {
			if h[c.SeedH+k] != v[c.SeedV+k] {
				t.Fatalf("seed not exact at offset %d", k)
			}
		}
	}
}

func TestUniformPairsAlignable(t *testing.T) {
	d := UniformPairs(UniformPairsSpec{Count: 5, Length: 400, ErrorRate: 0.15, SeedLen: 17, Seed: 5})
	p := core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15}
	for _, c := range d.Comparisons {
		r, err := core.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V],
			core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}, p)
		if err != nil {
			t.Fatal(err)
		}
		// 15% error with +1/−1 scoring gives roughly 0.55·len slope; an
		// extension spanning most of the pair should clear 100 on 400 bp.
		if r.Score < 100 {
			t.Errorf("15%% error pair scored only %d", r.Score)
		}
	}
}

func TestReadsDataset(t *testing.T) {
	d := Reads(ReadsSpec{
		Name: "ecoli-mini", GenomeLen: 60000, Coverage: 8,
		MeanReadLen: 3000, MinReadLen: 800,
		Errors: HiFiDNA(), SeedLen: 17, MinOverlap: 600, Seed: 6,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Sequences) < 50 {
		t.Fatalf("too few reads: %d", len(d.Sequences))
	}
	if len(d.Comparisons) < len(d.Sequences) {
		t.Fatalf("too few comparisons: %d for %d reads", len(d.Comparisons), len(d.Sequences))
	}
	// Reads datasets must exhibit sequence reuse (the partitioning
	// motivation): comparisons > sequences implies some sequence is in
	// more than one comparison.
	inCmp := map[int]int{}
	for _, c := range d.Comparisons {
		inCmp[c.H]++
		inCmp[c.V]++
	}
	reused := 0
	for _, n := range inCmp {
		if n > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Error("no sequence reuse in reads dataset")
	}
	// Length variance should be substantial (log-normal model).
	minL, maxL := 1<<30, 0
	for _, s := range d.Sequences {
		if len(s) < minL {
			minL = len(s)
		}
		if len(s) > maxL {
			maxL = len(s)
		}
	}
	if maxL < 2*minL {
		t.Errorf("read lengths too uniform: [%d,%d]", minL, maxL)
	}
}

func TestReadsOverlappingPairsAlign(t *testing.T) {
	d := Reads(ReadsSpec{
		Name: "mini", GenomeLen: 30000, Coverage: 6,
		MeanReadLen: 2500, MinReadLen: 1000,
		Errors: HiFiDNA(), SeedLen: 17, MinOverlap: 800, Seed: 7,
		MaxComparisons: 20,
	})
	p := core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15}
	good := 0
	for _, c := range d.Comparisons {
		r, err := core.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V],
			core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Score > 400 {
			good++
		}
	}
	if good < len(d.Comparisons)/2 {
		t.Errorf("only %d/%d overlap pairs aligned well", good, len(d.Comparisons))
	}
}

func TestMaxComparisonsCap(t *testing.T) {
	d := Reads(ReadsSpec{
		Name: "capped", GenomeLen: 50000, Coverage: 10,
		MeanReadLen: 2000, MinReadLen: 700,
		Errors: HiFiDNA(), SeedLen: 17, MinOverlap: 500, Seed: 8,
		MaxComparisons: 13,
	})
	if len(d.Comparisons) != 13 {
		t.Errorf("cap not applied: %d comparisons", len(d.Comparisons))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProteinFamilies(t *testing.T) {
	d, labels := ProteinFamilies(ProteinFamiliesSpec{
		Families: 5, MembersPerFamily: 4, MeanLen: 300, MutRate: 0.2, Seed: 9,
	})
	if len(d.Sequences) != 20 || len(labels) != 20 {
		t.Fatalf("got %d sequences, %d labels", len(d.Sequences), len(labels))
	}
	if !d.Protein {
		t.Error("dataset not marked protein")
	}
	// Family members must align much better than non-members.
	p := core.Params{Scorer: scoring.Blosum62, Gap: -2, X: 49}
	sameScore := core.Align(core.NewView(d.Sequences[0]), core.NewView(d.Sequences[1]), p).Score
	diffScore := core.Align(core.NewView(d.Sequences[0]), core.NewView(d.Sequences[len(d.Sequences)-1]), p).Score
	if sameScore <= diffScore*2 {
		t.Errorf("family member score %d not clearly above cross-family %d", sameScore, diffScore)
	}
}

func TestDatasetValidateCatchesBadSeeds(t *testing.T) {
	d := &Dataset{
		Sequences:   [][]byte{[]byte("ACGTACGT")},
		Comparisons: []Comparison{{H: 0, V: 0, SeedH: 6, SeedV: 0, SeedLen: 5}},
	}
	if err := d.Validate(); err == nil {
		t.Error("out-of-range seed accepted")
	}
	d.Comparisons[0] = Comparison{H: 0, V: 1, SeedH: 0, SeedV: 0, SeedLen: 4}
	if err := d.Validate(); err == nil {
		t.Error("missing sequence index accepted")
	}
}

func TestTotalSeqBytes(t *testing.T) {
	d := &Dataset{Sequences: [][]byte{make([]byte, 10), make([]byte, 32)}}
	if d.TotalSeqBytes() != 42 {
		t.Errorf("TotalSeqBytes = %d, want 42", d.TotalSeqBytes())
	}
}
