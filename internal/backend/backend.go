// Package backend abstracts the alignment-phase executor the pipelines
// call into: the simulated IPU system (our contribution), the SeqAn-class
// CPU node, or the LOGAN-class GPU node — mirroring how ELBA selects
// between SeqAn and LOGAN and how this paper's library slots in as a third
// option (§5.3).
package backend

import (
	"context"
	"fmt"

	"github.com/sram-align/xdropipu/internal/baselines"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Outcome is an alignment-phase result.
type Outcome struct {
	// Alignments holds one entry per comparison, in dataset order.
	Alignments []workload.Alignment
	// Seconds is the modeled alignment-phase time (the §6.3 measure:
	// end-to-end for the IPU including host transfers; compute for the
	// CPU; kernel time for the GPU).
	Seconds float64
	// Name identifies the executor.
	Name string
}

// Backend executes a dataset's planned comparisons.
type Backend interface {
	// Align runs all comparisons and reports alignments plus time.
	Align(d *workload.Dataset) (*Outcome, error)
	// Name identifies the executor for reports.
	Name() string
}

// IPU runs alignments on the simulated multi-IPU system through the
// engine service layer.
type IPU struct {
	// Cfg is the driver configuration (devices, kernel, partitioning).
	// Ignored when Eng is set — a shared engine's fleet wins.
	Cfg driver.Config
	// Eng optionally routes the phase through a long-lived shared Engine,
	// so pipelines running concurrently share one device fleet instead of
	// each modeling their own. Nil means a throwaway engine per Align.
	Eng *engine.Engine
}

// config returns the fleet configuration the backend actually runs.
func (b *IPU) config() driver.Config {
	if b.Eng != nil {
		return b.Eng.Config()
	}
	return b.Cfg
}

// Name implements Backend.
func (b *IPU) Name() string {
	cfg := b.config()
	return fmt.Sprintf("ipu×%d(%s)", max(1, cfg.IPUs), cfg.Model.Name)
}

// Align implements Backend.
func (b *IPU) Align(d *workload.Dataset) (*Outcome, error) {
	var rep *driver.Report
	var err error
	if b.Eng != nil {
		var job *engine.Job
		job, err = b.Eng.Submit(context.Background(), d)
		if err != nil {
			return nil, err
		}
		rep, err = job.Wait(context.Background())
	} else {
		rep, err = engine.RunOnce(context.Background(), b.Cfg, d)
	}
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Alignments: make([]workload.Alignment, len(rep.Results)),
		Seconds:    rep.WallSeconds,
		Name:       b.Name(),
	}
	for i, r := range rep.Results {
		out.Alignments[i] = workload.Alignment{
			Score: r.Score,
			BegH:  r.BegH, BegV: r.BegV,
			EndH: r.EndH, EndV: r.EndV,
			Cigar:  r.Cigar,  // non-empty when the fleet ran with traceback
			Failed: r.Failed, // degraded placeholder under DegradePartial
		}
	}
	return out, nil
}

// CPUImpl selects the CPU aligner flavour.
type CPUImpl string

// CPU aligner flavours.
const (
	CPUSeqAn       CPUImpl = "seqan"
	CPUKsw2        CPUImpl = "ksw2"
	CPUGenomeTools CPUImpl = "genometools"
)

// CPU runs alignments with a modeled multicore CPU baseline.
type CPU struct {
	// Model is the CPU node (platform.EPYC7763 or a scaled variant).
	Model platform.CPUModel
	// X is the drop threshold.
	X int
	// Impl selects the aligner (default SeqAn).
	Impl CPUImpl
}

// Name implements Backend.
func (b *CPU) Name() string {
	impl := b.Impl
	if impl == "" {
		impl = CPUSeqAn
	}
	return fmt.Sprintf("cpu-%s(%s)", impl, b.Model.Name)
}

// Align implements Backend.
func (b *CPU) Align(d *workload.Dataset) (*Outcome, error) {
	var res *baselines.Result
	switch b.Impl {
	case CPUKsw2:
		res = baselines.Ksw2(d, b.X, b.Model)
	case CPUGenomeTools:
		res = baselines.GenomeTools(d, b.X, b.Model)
	case "", CPUSeqAn:
		res = baselines.SeqAn(d, b.X, b.Model)
	default:
		return nil, fmt.Errorf("backend: unknown CPU impl %q", b.Impl)
	}
	return &Outcome{Alignments: res.Alignments, Seconds: res.Seconds, Name: b.Name()}, nil
}

// GPU runs alignments with the LOGAN-like GPU model.
type GPU struct {
	// Model is the GPU part.
	Model platform.GPUModel
	// GPUs is the device count.
	GPUs int
	// X is the drop threshold.
	X int
}

// Name implements Backend.
func (b *GPU) Name() string {
	return fmt.Sprintf("gpu-logan×%d(%s)", max(1, b.GPUs), b.Model.Name)
}

// Align implements Backend.
func (b *GPU) Align(d *workload.Dataset) (*Outcome, error) {
	if d.Protein {
		return nil, fmt.Errorf("backend: LOGAN does not support protein alignment (§2.4)")
	}
	res := baselines.Logan(d, b.X, b.Model, b.GPUs)
	return &Outcome{Alignments: res.Alignments, Seconds: res.Seconds, Name: b.Name()}, nil
}
