package backend

import (
	"reflect"
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func testData(t *testing.T) *workload.Dataset {
	t.Helper()
	d := synth.UniformPairs(synth.UniformPairsSpec{
		Count: 12, Length: 600, ErrorRate: 0.1, SeedLen: 17, Seed: 1,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func ipuBackend(x int) *IPU {
	return &IPU{Cfg: driver.Config{
		IPUs: 2, Model: platform.GC200, TilesPerIPU: 8, Partition: true,
		Kernel: ipukernel.Config{
			Params:           core.Params{Scorer: scoring.DNADefault, Gap: -1, X: x, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}
}

// TestAllBackendsAgreeOnScores: the executor changes time, never results
// (IPU and CPU-seqan share the exact same search space).
func TestAllBackendsAgreeOnScores(t *testing.T) {
	d := testData(t)
	x := 10
	ipu, err := ipuBackend(x).Align(d)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := (&CPU{Model: platform.EPYC7763, X: x}).Align(d)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := (&GPU{Model: platform.A100, GPUs: 1, X: x}).Align(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Comparisons {
		if ipu.Alignments[i] != cpu.Alignments[i] || cpu.Alignments[i] != gpu.Alignments[i] {
			t.Fatalf("cmp %d: backends disagree: ipu=%+v cpu=%+v gpu=%+v",
				i, ipu.Alignments[i], cpu.Alignments[i], gpu.Alignments[i])
		}
	}
	for _, o := range []*Outcome{ipu, cpu, gpu} {
		if o.Seconds <= 0 {
			t.Errorf("%s reported non-positive time", o.Name)
		}
	}
}

func TestCPUImplSelection(t *testing.T) {
	d := testData(t)
	for _, impl := range []CPUImpl{CPUSeqAn, CPUKsw2, CPUGenomeTools, ""} {
		b := &CPU{Model: platform.EPYC7763, X: 10, Impl: impl}
		out, err := b.Align(d)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if len(out.Alignments) != len(d.Comparisons) {
			t.Fatalf("%s: wrong result count", impl)
		}
	}
	if _, err := (&CPU{Model: platform.EPYC7763, X: 10, Impl: "magic"}).Align(d); err == nil {
		t.Error("unknown impl accepted")
	}
}

func TestGPURejectsProtein(t *testing.T) {
	d := testData(t)
	d.Protein = true
	if _, err := (&GPU{Model: platform.A100, X: 10}).Align(d); err == nil {
		t.Error("LOGAN backend accepted protein data")
	}
}

func TestNames(t *testing.T) {
	if (&CPU{Model: platform.EPYC7763}).Name() == "" ||
		(&GPU{Model: platform.A100}).Name() == "" ||
		ipuBackend(5).Name() == "" {
		t.Error("empty backend name")
	}
}

// TestCPUUnknownImplErrorText: the error names the bad impl so service
// operators can spot config typos.
func TestCPUUnknownImplErrorText(t *testing.T) {
	_, err := (&CPU{Model: platform.EPYC7763, X: 10, Impl: "blastn"}).Align(testData(t))
	if err == nil || !strings.Contains(err.Error(), "blastn") {
		t.Fatalf("unknown impl error = %v, want it to name the impl", err)
	}
}

// TestIPUBackendSharedEngine: routing two pipelines through one shared
// engine yields the same alignments as throwaway engines.
func TestIPUBackendSharedEngine(t *testing.T) {
	d := testData(t)
	solo, err := ipuBackend(10).Align(d)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.WithDriverConfig(ipuBackend(10).Cfg))
	defer eng.Close()
	shared := &IPU{Eng: eng}
	if shared.Name() == "" {
		t.Error("shared-engine backend has no name")
	}
	for i := 0; i < 2; i++ {
		out, err := shared.Align(d)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out.Alignments, solo.Alignments) {
			t.Fatal("shared engine changed alignments")
		}
	}
}

// TestIPUBackendPropagatesErrors: an invalid dataset surfaces the
// driver's validation error through the engine path.
func TestIPUBackendPropagatesErrors(t *testing.T) {
	bad := &workload.Dataset{
		Sequences:   [][]byte{make([]byte, 40)},
		Comparisons: []workload.Comparison{{H: 0, V: 2, SeedLen: 9}},
	}
	if _, err := ipuBackend(10).Align(bad); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}
