package backend

import (
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func testData(t *testing.T) *workload.Dataset {
	t.Helper()
	d := synth.UniformPairs(synth.UniformPairsSpec{
		Count: 12, Length: 600, ErrorRate: 0.1, SeedLen: 17, Seed: 1,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func ipuBackend(x int) *IPU {
	return &IPU{Cfg: driver.Config{
		IPUs: 2, Model: platform.GC200, TilesPerIPU: 8, Partition: true,
		Kernel: ipukernel.Config{
			Params:           core.Params{Scorer: scoring.DNADefault, Gap: -1, X: x, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}
}

// TestAllBackendsAgreeOnScores: the executor changes time, never results
// (IPU and CPU-seqan share the exact same search space).
func TestAllBackendsAgreeOnScores(t *testing.T) {
	d := testData(t)
	x := 10
	ipu, err := ipuBackend(x).Align(d)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := (&CPU{Model: platform.EPYC7763, X: x}).Align(d)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := (&GPU{Model: platform.A100, GPUs: 1, X: x}).Align(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Comparisons {
		if ipu.Alignments[i] != cpu.Alignments[i] || cpu.Alignments[i] != gpu.Alignments[i] {
			t.Fatalf("cmp %d: backends disagree: ipu=%+v cpu=%+v gpu=%+v",
				i, ipu.Alignments[i], cpu.Alignments[i], gpu.Alignments[i])
		}
	}
	for _, o := range []*Outcome{ipu, cpu, gpu} {
		if o.Seconds <= 0 {
			t.Errorf("%s reported non-positive time", o.Name)
		}
	}
}

func TestCPUImplSelection(t *testing.T) {
	d := testData(t)
	for _, impl := range []CPUImpl{CPUSeqAn, CPUKsw2, CPUGenomeTools, ""} {
		b := &CPU{Model: platform.EPYC7763, X: 10, Impl: impl}
		out, err := b.Align(d)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if len(out.Alignments) != len(d.Comparisons) {
			t.Fatalf("%s: wrong result count", impl)
		}
	}
	if _, err := (&CPU{Model: platform.EPYC7763, X: 10, Impl: "magic"}).Align(d); err == nil {
		t.Error("unknown impl accepted")
	}
}

func TestGPURejectsProtein(t *testing.T) {
	d := testData(t)
	d.Protein = true
	if _, err := (&GPU{Model: platform.A100, X: 10}).Align(d); err == nil {
		t.Error("LOGAN backend accepted protein data")
	}
}

func TestNames(t *testing.T) {
	if (&CPU{Model: platform.EPYC7763}).Name() == "" ||
		(&GPU{Model: platform.A100}).Name() == "" ||
		ipuBackend(5).Name() == "" {
		t.Error("empty backend name")
	}
}
