// Prometheus text exposition (version 0.0.4): the minimal stdlib-only
// encoder behind the service's GET /v1/metrics. Families render in the
// order given and samples in the order added, so scrapes are
// deterministic and diffable in tests.

package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus metric types.
const (
	PromCounter = "counter"
	PromGauge   = "gauge"
)

// PromLabel is one name="value" pair on a sample.
type PromLabel struct {
	Name, Value string
}

// PromSample is one time-series point of a family.
type PromSample struct {
	Labels []PromLabel
	Value  float64
}

// PromFamily is one metric family: HELP and TYPE header plus samples.
type PromFamily struct {
	// Name must match [a-zA-Z_:][a-zA-Z0-9_:]*; the caller owns naming
	// discipline (…_total for counters, base units).
	Name string
	// Help is the one-line description (newlines are escaped).
	Help string
	// Type is PromCounter or PromGauge.
	Type string
	// Samples hold the family's labeled points.
	Samples []PromSample
}

// Add appends one sample; labels alternate name, value.
func (f *PromFamily) Add(value float64, labels ...string) {
	s := PromSample{Value: value}
	for i := 0; i+1 < len(labels); i += 2 {
		s.Labels = append(s.Labels, PromLabel{Name: labels[i], Value: labels[i+1]})
	}
	f.Samples = append(f.Samples, s)
}

// WriteProm renders the families in Prometheus text exposition format.
func WriteProm(w io.Writer, fams []PromFamily) error {
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if _, err := io.WriteString(w, f.Name); err != nil {
				return err
			}
			if len(s.Labels) > 0 {
				parts := make([]string, len(s.Labels))
				for i, l := range s.Labels {
					parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
				}
				if _, err := io.WriteString(w, "{"+strings.Join(parts, ",")+"}"); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, " "+formatPromValue(s.Value)+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
