// Package metrics implements the paper's performance accounting: the GCUPS
// metric of §5.1 (giga cell-updates per second over the *theoretical*
// matrix size |H|·|V|, not the cells a heuristic actually computed),
// percentile statistics for Table 2, and plain-text table rendering for
// the benchmark harness.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// GCUPS returns the paper's metric: theoretical cells (|H|×|V| summed over
// all alignments) divided by elapsed seconds, in units of 1e9 cells/s.
// Heuristics that prune more cells at equal quality therefore score higher.
func GCUPS(theoreticalCells int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(theoreticalCells) / seconds / 1e9
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// PercentileInts is Percentile over integer samples.
func PercentileInts(xs []int, p float64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Percentile(fs, p)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInts is Mean over integer samples.
func MeanInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Mean(fs)
}

// Table accumulates rows of strings and renders them column-aligned, the
// output format of cmd/benchtables.
type Table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "## %s\n\n", t.title)
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Ratio renders a speedup factor like "1.35×".
func Ratio(v float64) string {
	return fmt.Sprintf("%.2f×", v)
}

// HitRate returns hits/(hits+misses) in [0,1], 0 when no lookups
// happened — the cache and dedup reporting helper shared by the engine
// stats surfaces and cmd/benchtables.
func HitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Percent renders a percentage like "−52.0%".
func Percent(v float64) string {
	return fmt.Sprintf("%.1f%%", v)
}

// Seconds pretty-prints a duration given in seconds with adaptive units.
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.2fµs", s*1e6)
	default:
		return fmt.Sprintf("%.0fns", s*1e9)
	}
}
