package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGCUPS(t *testing.T) {
	if g := GCUPS(2e12, 2.0); math.Abs(g-1000) > 1e-9 {
		t.Errorf("GCUPS = %f, want 1000", g)
	}
	if GCUPS(100, 0) != 0 || GCUPS(100, -1) != 0 {
		t.Error("non-positive time must yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {10, 1.9}, {90, 9.1},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("P%.0f = %f, want %f", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	if Percentile([]float64{7}, 33) != 7 {
		t.Error("singleton percentile must be the element")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8, p float64) bool {
		if n == 0 {
			return true
		}
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		p = math.Mod(math.Abs(p), 100)
		got := Percentile(xs, p)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean broken")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) must be 0")
	}
	if MeanInts([]int{2, 4}) != 3 {
		t.Error("MeanInts broken")
	}
	if PercentileInts([]int{1, 2, 3}, 100) != 3 {
		t.Error("PercentileInts broken")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "x", "gcups")
	tab.AddRow("ecoli", 15, 12345.678)
	tab.AddRow("celegans", 5, 0.5)
	tab.AddNote("sampled to %d%%", 10)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"## Demo", "name", "ecoli", "celegans", "12346", "0.500", "note: sampled to 10%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Header separator line must exist.
	if !strings.Contains(out, "----") {
		t.Error("missing separator")
	}
}

func TestSeconds(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{2.5, "2.50s"},
		{0.0021, "2.10ms"},
		{3.4e-6, "3.40µs"},
		{5e-9, "5ns"},
	}
	for _, tc := range tests {
		if got := Seconds(tc.in); got != tc.want {
			t.Errorf("Seconds(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
