package ipukernel

import (
	"runtime"
	"testing"

	"github.com/sram-align/xdropipu/internal/ipu"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/synth"
)

// warmTile builds a multi-job tile for executor-reuse tests.
func warmTile(t *testing.T, jobs int) *TileWork {
	t.Helper()
	d := synth.UniformPairs(synth.UniformPairsSpec{
		Count: jobs, Length: 700, ErrorRate: 0.15, SeedLen: 17, Seed: 21,
	})
	arena, _ := d.Spine()
	tile := &TileWork{Slabs: arena.SlabViews()}
	for i, c := range d.Comparisons {
		tile.Seqs = append(tile.Seqs, arena.Ref(c.H), arena.Ref(c.V))
		tile.Jobs = append(tile.Jobs, SeedJob{
			HLocal: 2 * i, VLocal: 2*i + 1,
			SeedH: c.SeedH, SeedV: c.SeedV, SeedLen: c.SeedLen, GlobalID: i,
		})
	}
	return tile
}

// TestWarmTileWorkerAllocs: once an executor's workspaces and scratch are
// warm, executing a tile must not allocate — the pooled tile workers run
// arbitrarily many supersteps at zero steady-state allocation.
func TestWarmTileWorkerAllocs(t *testing.T) {
	tile := warmTile(t, 8)
	out := make([]AlignOut, len(tile.Jobs))
	for _, mut := range []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.LRSplit = true },
		func(c *Config) { c.LRSplit = true; c.WorkStealing = true; c.BusyWaitVariance = true },
	} {
		cfg := dnaCfg(15).withDefaults(platform.GC200)
		mut(&cfg)
		ex := &executor{}
		runTile(tile, cfg, ex, out) // warm workspaces and scratch
		allocs := testing.AllocsPerRun(20, func() {
			runTile(tile, cfg, ex, out)
		})
		if allocs != 0 {
			t.Errorf("warm tile worker allocates %.1f objects/op, want 0 (cfg %+v)", allocs, cfg)
		}
	}
}

// TestExecutorReuseAcrossTiles: an executor that just ran one tile must
// produce identical results on the next, regardless of what sizes the
// previous tile left in its workspaces and scratch slices.
func TestExecutorReuseAcrossTiles(t *testing.T) {
	big := warmTile(t, 12)
	small := warmTile(t, 3)
	cfg := dnaCfg(12).withDefaults(platform.GC200)
	cfg.LRSplit = true
	cfg.WorkStealing = true
	cfg.BusyWaitVariance = true

	fresh := make([]AlignOut, len(small.Jobs))
	runTile(small, cfg, &executor{}, fresh)

	reused := make([]AlignOut, len(small.Jobs))
	ex := &executor{}
	runTile(big, cfg, ex, make([]AlignOut, len(big.Jobs)))
	runTile(small, cfg, ex, reused)

	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("job %d: reused executor %+v != fresh %+v", i, reused[i], fresh[i])
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts: the pooled Run must produce
// identical batch results no matter how many pool workers execute it.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func() *BatchResult {
		dev := ipu.New(ipu.Config{Model: platform.GC200})
		b, _ := buildBatch(t, 24, 400, 0.18, 31)
		cfg := dnaCfg(12)
		cfg.LRSplit = true
		cfg.WorkStealing = true
		cfg.BusyWaitVariance = true
		res, err := Run(dev, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	var ref *BatchResult
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		res := run()
		if ref == nil {
			ref = res
			continue
		}
		if res.Seconds != ref.Seconds || res.Races != ref.Races || res.Cells != ref.Cells ||
			res.MaxSRAM != ref.MaxSRAM || res.HostBytesIn != ref.HostBytesIn {
			t.Fatalf("GOMAXPROCS=%d changed batch aggregates", procs)
		}
		for i := range res.Out {
			if res.Out[i] != ref.Out[i] {
				t.Fatalf("GOMAXPROCS=%d changed output %d", procs, i)
			}
		}
	}
}
