// Package ipukernel is the X-Drop codelet: it executes seed extensions on
// the simulated IPU's tiles exactly as §4.1 describes — six data-parallel
// threads per tile over the detached sequence-set/seed-list data structure
// of Fig. 4, with left/right extension splitting (§4.1.2), eventual work
// stealing (§4.1.3) and VLIW dual issue (§4.1.4) as switchable
// optimisations.
//
// The alignments themselves are computed for real (internal/core); the
// kernel charges each one a deterministic instruction cost derived from
// its execution trace, which the device (internal/ipu) converts to time.
package ipukernel

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/sram-align/xdropipu/internal/alignment"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/ipu"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/workload"
)

// SeedJob is one comparison placed on a tile. Sequence references are
// local to the tile's detached sequence set, so a sequence shared by many
// comparisons is stored (and transferred) once — the optimisation that
// saves O(#seeds) host traffic (§4.1.1).
type SeedJob struct {
	// HLocal and VLocal index the tile's Seqs.
	HLocal, VLocal int
	// SeedH, SeedV, SeedLen locate the seed match.
	SeedH, SeedV, SeedLen int
	// GlobalID identifies the comparison in the submitting dataset.
	GlobalID int
	// Fanout is the number of planned comparisons this job represents
	// after duplicate-extension elimination (0 or 1 = itself only). It is
	// host bookkeeping for skipped-work accounting — the device tuple
	// (JobTupleBytes) does not ship it, because fan-out happens on the
	// host when results are assembled.
	Fanout int
}

// TileWork is the per-tile input of Fig. 4: the sequence set ω_i plus the
// seed-extension list. The set is held as spans into the shared arena
// spine — the dataset's packed Ω — so batches from any number of
// concurrent jobs reference one copy of the pool, and transfer sizes fall
// out of the spans instead of summed slice headers.
type TileWork struct {
	// Slabs is the spine slab table the tile's spans address, indexed by
	// SeqRef.Slab (shared, immutable). The partitioner leaves it nil and
	// the driver binds it per execution attempt (Batch.Bound) from the
	// arena's pinned slab set, so slabs a batch does not touch can stay
	// spilled; standalone tiles built with AddSeq carry their private
	// slab here directly.
	Slabs [][]byte
	// Seqs is the detached sequence set ω_i as spans into Slabs.
	Seqs []workload.SeqRef
	// Jobs is the seed-extension list over Seqs.
	Jobs []SeedJob
}

// Seq returns local sequence i as a zero-copy view into its slab.
func (t *TileWork) Seq(i int) []byte {
	r := t.Seqs[i]
	s := t.Slabs[r.Slab]
	return s[r.Off:r.End():r.End()]
}

// AddSeq appends s to the tile's private slab (the last entry of Slabs)
// and returns its local index. It is the standalone construction path
// (tests, single-tile tools); the partitioner instead points tiles at the
// dataset's shared arena spine. Like Arena.Append, it panics if the slab
// would outgrow 32-bit offsets.
func (t *TileWork) AddSeq(s []byte) int {
	if len(t.Slabs) == 0 {
		t.Slabs = append(t.Slabs, nil)
	}
	si := len(t.Slabs) - 1
	slab := t.Slabs[si]
	if len(slab)+len(s) > workload.MaxSlabBytes {
		panic(fmt.Sprintf("ipukernel: tile slab would exceed %d bytes", workload.MaxSlabBytes))
	}
	t.Seqs = append(t.Seqs, workload.SeqRef{Slab: int32(si), Off: int32(len(slab)), Len: int32(len(s))})
	t.Slabs[si] = append(slab, s...)
	return len(t.Seqs) - 1
}

// SeqBytes returns the tile's sequence payload size: the sum of span
// lengths, charging one transfer per descriptor (a sequence placed twice —
// the Copies mode — is transferred twice, as on the real device).
func (t *TileWork) SeqBytes() int {
	n := 0
	for _, r := range t.Seqs {
		n += int(r.Len)
	}
	return n
}

// UniqueSeqBytes returns the distinct slab bytes the tile's spans cover —
// the exact §4.1 payload an arena-aware exchange would ship, with spans
// deduplicated and overlaps merged. SeqBytes ≥ UniqueSeqBytes; the gap is
// what descriptor-level duplication still costs.
func (t *TileWork) UniqueSeqBytes() int {
	n, _ := t.uniqueSeqBytes(nil)
	return n
}

// uniqueSeqBytes is UniqueSeqBytes with a reusable sort scratch, so the
// per-batch accounting loop in Run stays allocation-free once warm.
// Spans merge only within their own slab — offsets in different slabs
// are unrelated addresses — so the sort is (slab, offset)-ordered and a
// slab change closes the current merge run. The total is therefore
// identical however the same logical pool is cut into slabs.
func (t *TileWork) uniqueSeqBytes(scratch []workload.SeqRef) (int, []workload.SeqRef) {
	if len(t.Seqs) == 0 {
		return 0, scratch
	}
	scratch = append(scratch[:0], t.Seqs...)
	slices.SortFunc(scratch, func(a, b workload.SeqRef) int {
		if a.Slab != b.Slab {
			return int(a.Slab) - int(b.Slab)
		}
		return int(a.Off) - int(b.Off)
	})
	n := 0
	cur := scratch[0]
	for _, s := range scratch[1:] {
		if s.Slab == cur.Slab && s.Off <= cur.End() {
			if s.End() > cur.End() {
				cur.Len = s.End() - cur.Off
			}
			continue
		}
		n += int(cur.Len)
		cur = s
	}
	return n + int(cur.Len), scratch
}

// Batch is one BSP superstep's worth of work across tiles.
type Batch struct {
	// Tiles holds at most device.Tiles() entries.
	Tiles []TileWork
}

// Jobs counts all comparisons in the batch.
func (b *Batch) Jobs() int {
	n := 0
	for i := range b.Tiles {
		n += len(b.Tiles[i].Jobs)
	}
	return n
}

// Bound returns a shallow copy of the batch with every tile's slab table
// set to slabs (tiles share Seqs and Jobs with the original). This is
// the driver's per-attempt binding step: the partitioner emits tiles
// with nil Slabs, the driver pins the batch's slab set in the arena and
// binds here, so hedged attempts racing on the same BatchPlan each get a
// private tile header array and never mutate shared state.
func (b *Batch) Bound(slabs [][]byte) *Batch {
	nb := &Batch{Tiles: make([]TileWork, len(b.Tiles))}
	for i, t := range b.Tiles {
		t.Slabs = slabs
		nb.Tiles[i] = t
	}
	return nb
}

// Wire-format sizes for SRAM and transfer accounting: a job tuple is two
// sequence references plus two 32-bit seed offsets and a length
// (Fig. 4's (seqH*, seqV*, seedBegH, seedBegV) plus k); a result slot is
// the L/R scores and end offsets.
const (
	JobTupleBytes  = 20
	ResultBytes    = 32
	seqDescrBytes  = 8 // per-sequence descriptor (pointer+length)
	batchHdrBytes  = 64
	outScoreFields = 4
)

// Config selects the kernel variant and optimisation set.
type Config struct {
	// Params configures the X-Drop extension (algorithm, X, δb, scoring).
	Params core.Params
	// Threads is the hardware thread count to use (0 → the model's six).
	Threads int
	// LRSplit schedules left and right extensions as separate work units
	// (§4.1.2); otherwise one unit computes both.
	LRSplit bool
	// WorkStealing enables the lock-free shared work list (§4.1.3);
	// otherwise units are statically assigned round-robin.
	WorkStealing bool
	// BusyWaitVariance enables the thread-unique busy-wait that turns
	// racy stealing into "eventual" work stealing (§4.1.3). Ignored
	// unless WorkStealing is set.
	BusyWaitVariance bool
	// DualIssue co-issues the integer and float pipelines (§4.1.4).
	DualIssue bool
	// Traceback enables the two-pass traceback: after the score pass each
	// extension is replayed with direction recording (charged like a
	// second DP sweep) and AlignOut carries the alignment's CIGAR plus
	// exact trace-memory accounting. Off, results are bit-identical to
	// the score-only kernel. Trace memory stays bounded by the live
	// window band (2 bits per banded cell for the linear variants, 4 for
	// affine), never by the full matrix; the peak single-extension
	// footprint surfaces as BatchResult.PeakTraceBytes. Replays are
	// modeled as serialized through one per-tile trace arena (a replay
	// holds the arena only while its CIGAR is emitted, and the scoring
	// pass of other units proceeds meanwhile), so TileMemoryBytes folds a
	// single arena allowance — ExtensionTraceBytes of the tile's worst
	// extension — into the SRAM gate alongside the DP buffers, making
	// traceback runs SRAM-certified end-to-end.
	Traceback bool
	// TraceMinScore gates the traceback pass on the comparison's total
	// score (left + seed + right): with a positive cutoff only
	// comparisons that reach it are traced — the rest return score-only
	// results (no CIGAR, no trace bytes), exactly as a score-only run
	// would report them. Gated replays are deferred until both extension
	// scores are known and are charged to the threads that scored the
	// sides. Zero or negative traces every comparison. Ignored unless
	// Traceback is set; part of the kernel fingerprint (when tracing), so
	// gated and ungated runs never share cache entries.
	TraceMinScore int
	// TraceMode selects how direction data is recorded when tracing:
	// core.TraceModeAuto (fuse recording into the scoring pass for
	// eligible extensions whose arena bound fits the per-thread fused
	// budget), core.TraceModeReplay (always the PR 5 two-pass replay) or
	// core.TraceModeFused (fuse every eligible extension). Fused
	// recordings live on their thread for the whole scoring pass, so
	// TileMemoryBytes charges one arena per thread for them; the replay
	// path keeps the single serialized arena allowance. The score gate
	// takes precedence: with TraceMinScore active every traced extension
	// uses the deferred replay (a fused recording cannot be deferred —
	// its buffers are clobbered by the thread's next extension). Part of
	// the kernel fingerprint when tracing.
	TraceMode core.TraceMode
	// KernelTier selects the kernel score width: core.TierWide (the
	// default int32 kernels), core.TierNarrow (attempt int16 with runtime
	// saturation promotion) or core.TierAuto (int16 only when the
	// headroom precheck proves saturation impossible). Folded with
	// Params.Tier — whichever knob is non-wide wins — so driver-level and
	// kernel-level configuration agree everywhere the config flows
	// (fingerprints, SRAM model, execution).
	KernelTier core.Tier
	// Cost is the instruction cost model (zero value → calibrated
	// defaults).
	Cost platform.KernelCost
	// Parallelism caps the host-side tile worker pool (0 → GOMAXPROCS).
	// Callers that already run Run concurrently (driver.NewPlan) divide
	// their budget here so nested pools do not multiply.
	Parallelism int
}

// EffectiveThreads resolves the configured thread count against a model:
// zero or out-of-range selects the model's hardware thread count. This is
// the single clamp the kernel executes with — cache-key fingerprints must
// use it too, so configurations that resolve to the same schedule share
// entries and ones that differ never alias.
func (c Config) EffectiveThreads(m platform.IPUModel) int {
	if c.Threads <= 0 || c.Threads > m.ThreadsPerTile {
		return m.ThreadsPerTile
	}
	return c.Threads
}

func (c Config) withDefaults(m platform.IPUModel) Config {
	c.Threads = c.EffectiveThreads(m)
	if c.Cost == (platform.KernelCost{}) {
		c.Cost = platform.DefaultKernelCost
	}
	// Fold the two tier knobs into one (non-wide wins) and mirror the
	// result on both, so the core dispatch and every SRAM consumer see
	// the same choice. Idempotent.
	c.KernelTier = c.Tier()
	c.Params.Tier = c.KernelTier
	return c
}

// fusedTraceBudget is the per-thread direction-arena allowance of the
// auto trace mode: an extension fuses only when its ExtensionTraceBytes
// bound fits, so the concurrent recordings of a six-thread tile cost at
// most 6×16 KiB — under a sixth of the 624 KiB tile — while small-band
// extensions (the common X-Drop case) still skip the replay.
const fusedTraceBudget = 16 << 10

// traceGated reports whether the score-threshold gate is active.
func (c Config) traceGated() bool { return c.Traceback && c.TraceMinScore > 0 }

// fusedExtension decides whether an extension with side lengths lh×lv
// records directions during the scoring pass (fused single-pass) rather
// than replaying. The decision is part of the SRAM model — partition's
// budget math calls it too — so it resolves the tier itself instead of
// relying on the defaults pass.
func (c Config) fusedExtension(lh, lv int) bool {
	if !c.Traceback || c.traceGated() || c.TraceMode == core.TraceModeReplay {
		return false
	}
	p := c.Params
	p.Tier = c.Tier()
	if !core.FusedEligible(lh, lv, p) {
		return false
	}
	if c.TraceMode == core.TraceModeFused {
		return true
	}
	return c.ExtensionTraceBytes(lh, lv) <= fusedTraceBudget
}

// Tier resolves the effective kernel tier from the two equivalent knobs
// (KernelTier and Params.Tier; non-wide wins) without requiring the
// defaults pass first — partition and the driver consult the SRAM model
// and fingerprints on raw configs.
func (c Config) Tier() core.Tier {
	if c.KernelTier != core.TierWide {
		return c.KernelTier
	}
	return c.Params.Tier
}

// bufCellsPerThread returns the per-thread DP window size in score cells
// for the configured algorithm given the largest min(m,n) among a tile's
// extensions: Standard3 needs 3δ scores, Restricted2 needs 2δb (§3).
func (c Config) bufCellsPerThread(maxMinLen int) int {
	delta := maxMinLen + 1
	switch c.Params.Algo {
	case core.AlgoStandard3:
		return 3 * delta
	case core.AlgoAffine:
		return 7 * delta
	case core.AlgoReference:
		// Full matrix; present for completeness, never tile-feasible
		// beyond toy sizes.
		return delta * delta
	default:
		db := c.Params.DeltaB
		if db <= 0 || db > delta {
			db = delta
		}
		return 2 * db
	}
}

// WorkBufBytesPerThread returns the per-thread DP buffer footprint for
// the configured algorithm and kernel tier given the largest min(m,n)
// among a tile's extensions. This is the quantity the 55× claim
// compares. The tier shapes it as the executing workspaces actually
// allocate:
//
//   - TierWide (or narrow-ineligible parameters): int32 buffers only.
//   - TierNarrow: int16 buffers plus the full int32 set — a saturating
//     extension promotes mid-batch and the wide buffers must already fit.
//   - TierAuto: when every admissible extension passes the headroom
//     precheck (maxMinLen within core.NarrowCapLen), int16 buffers only —
//     Auto never promotes, so this is certifiable and is the tier's SRAM
//     win. A mixed tile provisions wide buffers for the over-cap jobs
//     plus int16 buffers sized to the largest headroom-certified job.
func (c Config) WorkBufBytesPerThread(maxMinLen int) int {
	wide := c.bufCellsPerThread(maxMinLen) * core.WideScoreBytes
	if c.Params.Algo == core.AlgoReference || !c.Params.NarrowEligible() {
		return wide
	}
	switch c.Tier() {
	case core.TierNarrow:
		return wide + c.bufCellsPerThread(maxMinLen)*core.NarrowScoreBytes
	case core.TierAuto:
		if c.Params.Scorer == nil {
			return wide
		}
		capLen := core.NarrowCapLen(c.Params.Scorer.MaxScore())
		if maxMinLen <= capLen {
			return c.bufCellsPerThread(maxMinLen) * core.NarrowScoreBytes
		}
		return wide + c.bufCellsPerThread(capLen)*core.NarrowScoreBytes
	default:
		return wide
	}
}

// ExtensionTraceBytes bounds the direction-trace footprint of one
// traceback replay over an extension with side lengths lh×lv: packed
// per-cell codes (2 bits per banded cell, 4 for affine) over at most
// lh+lv+1 antidiagonal windows, each at most the band wide (δb-capped
// for Restricted2) and collectively at most the full matrix, plus the
// 8-byte-per-antidiagonal window index. The bound dominates the exact
// tracer footprint (core.Trace.TraceBytes) for every input; zero with
// Config.Traceback off.
func (c Config) ExtensionTraceBytes(lh, lv int) int {
	if !c.Traceback || lh < 0 || lv < 0 {
		return 0
	}
	antid := lh + lv + 1
	bandw := min(lh, lv) + 1
	switch c.Params.Algo {
	case core.AlgoStandard3, core.AlgoAffine, core.AlgoReference:
	default:
		if db := c.Params.DeltaB; db > 0 && db < bandw {
			bandw = db
		}
	}
	cells := int64(antid) * int64(bandw)
	if full := int64(lh+1) * int64(lv+1); full < cells {
		cells = full
	}
	bits := int64(2)
	if c.Params.Algo == core.AlgoAffine {
		bits = 4
	}
	return int((cells*bits+7)/8) + 8*(antid+1)
}

// TileMemoryBytes returns the SRAM footprint of a tile's work under the
// kernel configuration: sequences, descriptors, job tuples, per-thread DP
// buffers (tier-aware), result slots, and — with traceback on — the
// direction-arena charges. Replay-path extensions share one serialized
// arena sized for the tile's worst such extension; fused-path extensions
// record concurrently on every thread, so their worst arena is charged
// once per thread. Kept in lockstep with partition.DeriveSeqBudget.
func (c Config) TileMemoryBytes(t *TileWork, model platform.IPUModel) int {
	cc := c.withDefaults(model)
	maxMin, maxReplay, maxFused := 0, 0, 0
	for _, j := range t.Jobs {
		hn, vn := int(t.Seqs[j.HLocal].Len), int(t.Seqs[j.VLocal].Len)
		// The larger extension side bounds δ for this job.
		rh, rv := hn-j.SeedH-j.SeedLen, vn-j.SeedV-j.SeedLen
		l := min(j.SeedH, j.SeedV)
		r := min(rh, rv)
		maxMin = max(maxMin, l, r)
		if cc.Traceback {
			lf, lr := cc.extensionTraceCharge(j.SeedH, j.SeedV)
			rf, rr := cc.extensionTraceCharge(rh, rv)
			maxFused = max(maxFused, lf, rf)
			maxReplay = max(maxReplay, lr, rr)
		}
	}
	return t.SeqBytes() +
		len(t.Seqs)*seqDescrBytes +
		len(t.Jobs)*JobTupleBytes +
		cc.Threads*cc.WorkBufBytesPerThread(maxMin) +
		cc.Threads*maxFused +
		maxReplay +
		len(t.Jobs)*ResultBytes +
		batchHdrBytes
}

// extensionTraceCharge splits one extension's direction-arena bound into
// the fused (per-thread) or replay (shared serialized arena) pool,
// according to where the kernel would actually record it.
func (c Config) extensionTraceCharge(lh, lv int) (fused, replay int) {
	b := c.ExtensionTraceBytes(lh, lv)
	if b == 0 {
		return 0, 0
	}
	if c.fusedExtension(lh, lv) {
		return b, 0
	}
	return 0, b
}

// TraceCharges reports one extension's direction-arena charge split into
// the fused (per-thread) and replay (shared serialized) pools — the same
// split TileMemoryBytes applies; at most one of the two is nonzero.
// Exported for partition's budget math, which must mirror the gate
// exactly or admitted tiles could lose their SRAM certification.
func (c Config) TraceCharges(lh, lv int) (fused, replay int) {
	return c.extensionTraceCharge(lh, lv)
}

// AlignOut is one comparison's result.
type AlignOut struct {
	// GlobalID echoes the job's comparison identity.
	GlobalID int
	// Score = LeftScore + seed score + RightScore.
	Score int
	// LeftScore and RightScore are the two extension scores.
	LeftScore, RightScore int
	// BegH/BegV/EndH/EndV delimit the aligned region.
	BegH, BegV, EndH, EndV int
	// Cells and Antidiagonals aggregate both extensions' traces.
	Cells         int64
	Antidiagonals int
	// MaxLiveBand is the larger δw of the two extensions.
	MaxLiveBand int
	// Clamped reports a δb clamp in either extension.
	Clamped bool
	// Failed marks a comparison whose batch exhausted the engine's fault
	// tolerance and completed as a degraded placeholder instead of an
	// alignment: GlobalID is valid, every score, coordinate and trace
	// field is zero. The kernel never sets it — it exists so degraded
	// per-comparison status can ride the same result plumbing (fan-out,
	// streaming, reports) as real alignments. Counted in
	// driver.Report.PartialFailures; never stored in a result cache.
	Failed bool
	// Cigar is the comparison's full edit script (left extension + seed
	// columns + right extension) over [BegH,EndH)×[BegV,EndV). Empty
	// unless Config.Traceback is set. Being a validated string it is
	// immutable and comparable, so results stay ==-testable and safely
	// shared through dedup fan-out and the cross-job result cache.
	Cigar alignment.Cigar
	// TraceBytes is the exact direction-trace storage both extensions'
	// replays recorded (0 with traceback off).
	TraceBytes int
}

// BatchResult aggregates one superstep.
type BatchResult struct {
	// Out holds one entry per job, in batch tile/job order.
	Out []AlignOut
	// Seconds is the modeled superstep duration (compute+exchange+sync).
	Seconds float64
	// TileInstr is the per-tile max thread instruction count.
	TileInstr []int64
	// HostBytesIn is the host→device payload (sequences, descriptors,
	// job tuples, header) — what the driver pushes over the shared link.
	HostBytesIn int64
	// UniqueSeqBytesIn is the exact arena payload: the distinct slab
	// bytes the batch's spans cover, per tile. HostBytesIn − this gap is
	// the duplication an offset-addressed exchange would eliminate.
	UniqueSeqBytesIn int64
	// HostBytesOut is the device→host result payload.
	HostBytesOut int64
	// MaxSRAM is the largest per-tile SRAM footprint in the batch.
	MaxSRAM int
	// Races counts duplicated steals (two threads grabbing one unit).
	Races int
	// StealOps counts work-steal attempts.
	StealOps int
	// Cells and TheoreticalCells aggregate the alignment traces.
	Cells, TheoreticalCells int64
	// SumBand and Antidiags support mean-band reporting.
	SumBand   int64
	Antidiags int64
	// DedupSkippedCells counts theoretical cells of duplicate comparisons
	// that this batch's jobs represent (SeedJob.Fanout) but that dedup
	// kept off the device; DedupSkippedJobs counts those comparisons.
	// Zero unless the driver planned with duplicate-extension elimination.
	DedupSkippedCells int64
	DedupSkippedJobs  int
	// PeakTraceBytes is the largest single-extension direction-trace
	// footprint any tile thread held during the batch — the extra SRAM a
	// traceback-enabled tile needs at once, bounded by the live-window
	// band (0 with Config.Traceback off). TraceBytes sums the recorded
	// trace storage across all the batch's extensions.
	PeakTraceBytes int
	TraceBytes     int64
	// Kernel-tier accounting, one count per executed extension (an
	// LRSplit comparison contributes two). NarrowExtensions completed on
	// the int16 tier; PromotedExtensions saturated the int16 kernel and
	// transparently re-ran wide; WideExtensions ran int32 outright
	// (TierWide, narrow-ineligible parameters, or an Auto headroom
	// refusal). The three are disjoint and sum to the executed
	// extensions.
	NarrowExtensions   int
	WideExtensions     int
	PromotedExtensions int
	// Traceback-gate accounting, one count per executed extension (an
	// extension is either traced or skipped, never both; both are zero
	// with Config.Traceback off). TracedExtensions recorded and delivered
	// a direction trace (fused or replayed); TraceSkippedExtensions were
	// score-gated below Config.TraceMinScore and returned score-only
	// results. Extensions of comparisons degraded by a trace-overflow
	// failure count in neither.
	TracedExtensions       int
	TraceSkippedExtensions int
}

// GCUPSDenominatorSeconds returns on-device compute seconds — the time
// base the paper uses for IPU GCUPS (§5.1).
func (r *BatchResult) GCUPSDenominatorSeconds() float64 { return r.Seconds }

// Run executes a batch on the device and accounts one BSP superstep.
func Run(dev *ipu.Device, b *Batch, cfg Config) (*BatchResult, error) {
	cfg = cfg.withDefaults(dev.Model())
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(b.Tiles) > dev.Tiles() {
		return nil, fmt.Errorf("ipukernel: batch has %d tiles, device has %d", len(b.Tiles), dev.Tiles())
	}
	for ti := range b.Tiles {
		t := &b.Tiles[ti]
		for _, r := range t.Seqs {
			if r.Len == 0 {
				continue
			}
			if r.Slab < 0 || int(r.Slab) >= len(t.Slabs) || t.Slabs[r.Slab] == nil {
				return nil, fmt.Errorf("ipukernel: tile %d references slab %d but the tile's slab table is unbound (partitioned batches must be Bound to a pinned slab set before Run)", ti, r.Slab)
			}
		}
	}

	res := &BatchResult{
		TileInstr: make([]int64, len(b.Tiles)),
	}
	outOff := make([]int, len(b.Tiles))
	total := 0
	for i := range b.Tiles {
		outOff[i] = total
		total += len(b.Tiles[i].Jobs)
	}
	res.Out = make([]AlignOut, total)

	type tileStats struct {
		instr        int64
		sram         int
		races        int
		steals       int
		cells        int64
		theo         int64
		sumBand      int64
		antidiag     int64
		skippedCells int64
		skippedJobs  int
		peakTrace    int
		traceBytes   int64
		cigarBytes   int64
		narrowExt    int
		wideExt      int
		promotedExt  int
		tracedExt    int
		skippedExt   int
		err          error
	}
	stats := make([]tileStats, len(b.Tiles))

	// A GOMAXPROCS-sized worker pool pulls tiles from an atomic cursor:
	// per-worker executors carry the DP workspaces and scheduling scratch
	// across tiles (and, via execPool, across Run calls), so steady-state
	// tile execution allocates nothing. Results stay deterministic
	// regardless of worker count: each tile writes a disjoint slice of
	// res.Out and its own stats slot, and per-tile execution is itself
	// deterministic.
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(b.Tiles) {
		workers = len(b.Tiles)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := execPool.Get().(*executor)
			defer execPool.Put(ex)
			for {
				ti := int(cursor.Add(1)) - 1
				if ti >= len(b.Tiles) {
					return
				}
				st := &stats[ti]
				tile := &b.Tiles[ti]
				st.sram = cfg.TileMemoryBytes(tile, dev.Model())
				if st.sram > dev.DataSRAM() {
					st.err = fmt.Errorf("ipukernel: tile %d needs %d B SRAM, budget %d B (use graph partitioning / smaller δb)",
						ti, st.sram, dev.DataSRAM())
					continue
				}
				tr := runTile(tile, cfg, ex, res.Out[outOff[ti]:outOff[ti]+len(tile.Jobs)])
				st.instr = tr.maxInstr
				st.races = tr.races
				st.steals = tr.steals
				st.cells = tr.cells
				st.theo = tr.theo
				st.sumBand = tr.sumBand
				st.antidiag = tr.antidiag
				st.skippedCells = tr.skippedCells
				st.skippedJobs = tr.skippedJobs
				st.peakTrace = tr.peakTrace
				st.traceBytes = tr.traceBytes
				st.cigarBytes = tr.cigarBytes
				st.narrowExt = tr.narrowExt
				st.wideExt = tr.wideExt
				st.promotedExt = tr.promotedExt
				st.tracedExt = tr.tracedExt
				st.skippedExt = tr.skippedExt
				st.err = tr.err
			}
		}()
	}
	wg.Wait()

	maxSRAM := 0
	var spanScratch []workload.SeqRef
	for ti := range stats {
		st := &stats[ti]
		if st.err != nil {
			return nil, st.err
		}
		res.TileInstr[ti] = st.instr
		res.Races += st.races
		res.StealOps += st.steals
		res.Cells += st.cells
		res.TheoreticalCells += st.theo
		res.SumBand += st.sumBand
		res.Antidiags += st.antidiag
		res.DedupSkippedCells += st.skippedCells
		res.DedupSkippedJobs += st.skippedJobs
		if st.peakTrace > res.PeakTraceBytes {
			res.PeakTraceBytes = st.peakTrace
		}
		res.TraceBytes += st.traceBytes
		res.NarrowExtensions += st.narrowExt
		res.WideExtensions += st.wideExt
		res.PromotedExtensions += st.promotedExt
		res.TracedExtensions += st.tracedExt
		res.TraceSkippedExtensions += st.skippedExt
		if st.sram > maxSRAM {
			maxSRAM = st.sram
		}
		tile := &b.Tiles[ti]
		res.HostBytesIn += int64(tile.SeqBytes() + len(tile.Seqs)*seqDescrBytes +
			len(tile.Jobs)*JobTupleBytes + batchHdrBytes)
		var unique int
		unique, spanScratch = tile.uniqueSeqBytes(spanScratch)
		res.UniqueSeqBytesIn += int64(unique)
		// CIGARs ride the result return as 4-byte packed runs on top of
		// the fixed result slot.
		res.HostBytesOut += int64(len(tile.Jobs)*ResultBytes) + st.cigarBytes
	}
	res.MaxSRAM = maxSRAM

	secs, err := dev.RunSuperstep(ipu.Superstep{
		TileInstr:     res.TileInstr,
		ExchangeBytes: res.HostBytesOut,
		SRAMUsed:      maxSRAM,
	})
	if err != nil {
		return nil, err
	}
	res.Seconds = secs
	return res, nil
}
