package ipukernel

import (
	"errors"
	"fmt"
	"sync"

	"github.com/sram-align/xdropipu/internal/alignment"
	"github.com/sram-align/xdropipu/internal/core"
)

// unit is one schedulable piece of tile work: a whole comparison, or one
// extension side of it when LR splitting is enabled.
type unit struct {
	job  int
	side int8 // 0 = both sides, 1 = left only, 2 = right only
}

const (
	sideBoth  int8 = 0
	sideLeft  int8 = 1
	sideRight int8 = 2
)

type tileResult struct {
	maxInstr     int64
	races        int
	steals       int
	cells        int64
	theo         int64
	sumBand      int64
	antidiag     int64
	skippedCells int64
	skippedJobs  int
	// Traceback accounting (zero with Config.Traceback off): peakTrace is
	// the largest single-extension direction-trace footprint any simulated
	// thread held; traceBytes sums recorded trace storage; cigarBytes is
	// the encoded CIGAR payload added to the result transfer; tracedExt
	// and skippedExt count extensions that delivered a trace vs. ones the
	// score gate skipped.
	peakTrace  int
	traceBytes int64
	cigarBytes int64
	tracedExt  int
	skippedExt int
	// Kernel-tier accounting per executed extension (disjoint): completed
	// on the int16 tier, saturated-and-promoted to int32, or ran int32
	// outright.
	narrowExt   int
	wideExt     int
	promotedExt int
	// err records a traceback divergence (recording not bit-matching the
	// score pass) — a kernel bug surfaced loudly instead of shipping a
	// wrong alignment. A trace-overflow (core.ErrTraceTooLarge) is not a
	// kernel bug: it degrades its one comparison to a Failed placeholder
	// instead of landing here.
	err error
}

// executor is a pool worker's reusable tile-execution state: one DP
// workspace per simulated hardware thread plus the scheduling scratch.
// Executors persist across tiles and (through execPool) across Run
// calls, so a warm tile execution performs no allocation.
type executor struct {
	ws    []core.Workspace
	instr []int64
	units []unit
	tied  []int
	// Per-job traceback scratch (sized only when Config.Traceback is on):
	// each side's sequence-forward Cigar and trace footprint, combined
	// with the seed columns once the tile's units have all run; failed
	// marks jobs whose trace recording overflowed (degraded to a Failed
	// placeholder). Under the score gate the score-pass Result and the
	// scoring thread of each side are kept so the deferred replay can
	// cross-check and charge the right thread.
	leftC, rightC   []alignment.Cigar
	leftTB, rightTB []int
	leftR, rightR   []core.Result
	leftTh, rightTh []int
	failed          []bool
}

var execPool = sync.Pool{New: func() any { return &executor{} }}

// prepare sizes the per-thread state, keeping warm workspaces.
func (ex *executor) prepare(threads int) {
	for len(ex.ws) < threads {
		ex.ws = append(ex.ws, core.Workspace{})
	}
	if cap(ex.instr) < threads {
		ex.instr = make([]int64, threads)
	}
	ex.instr = ex.instr[:threads]
	for th := range ex.instr {
		ex.instr[th] = 0
	}
	ex.units = ex.units[:0]
	ex.tied = ex.tied[:0]
}

// prepareTraces sizes and clears the per-job traceback scratch. The
// CIGAR slices are cleared through their full capacity, not just the
// new length: executors live in execPool for the process lifetime, and
// a stale tail would pin an earlier tile's alignment-length strings.
func (ex *executor) prepareTraces(jobs int) {
	grow := func(c []alignment.Cigar) []alignment.Cigar {
		if cap(c) < jobs {
			return make([]alignment.Cigar, jobs)
		}
		c = c[:cap(c)]
		clear(c)
		return c[:jobs]
	}
	growN := func(n []int) []int {
		if cap(n) < jobs {
			return make([]int, jobs)
		}
		n = n[:jobs]
		clear(n)
		return n
	}
	growR := func(r []core.Result) []core.Result {
		if cap(r) < jobs {
			return make([]core.Result, jobs)
		}
		r = r[:jobs]
		clear(r)
		return r
	}
	growB := func(b []bool) []bool {
		if cap(b) < jobs {
			return make([]bool, jobs)
		}
		b = b[:jobs]
		clear(b)
		return b
	}
	ex.leftC, ex.rightC = grow(ex.leftC), grow(ex.rightC)
	ex.leftTB, ex.rightTB = growN(ex.leftTB), growN(ex.rightTB)
	ex.leftR, ex.rightR = growR(ex.leftR), growR(ex.rightR)
	ex.leftTh, ex.rightTh = growN(ex.leftTh), growN(ex.rightTh)
	ex.failed = growB(ex.failed)
}

// runTile executes all of a tile's jobs on the configured number of
// simulated hardware threads and fills out (one slot per job, in order).
//
// Scheduling is simulated in deterministic instruction time, mirroring the
// IPU's deterministic latencies (§4.1.3): whichever thread has the lowest
// instruction counter acts next. Without work stealing, units are
// statically assigned round-robin. With work stealing, each thread starts
// on its statically assigned first unit and then steals from the shared
// list; steals by threads whose counters collide grab the same unit — a
// race that duplicates work. Eventual work stealing adds a thread-unique
// busy-wait on collision so subsequent steals diverge.
//
// With traceback gated (Config.TraceMinScore), the scheduling loop runs
// score-only and the replays of above-cutoff comparisons are deferred to
// a second phase, charged to the threads that scored the sides — the
// skipped comparisons pay nothing beyond the score pass.
func runTile(t *TileWork, cfg Config, ex *executor, out []AlignOut) tileResult {
	threads := cfg.Threads
	var tr tileResult

	for j := range t.Jobs {
		out[j].GlobalID = t.Jobs[j].GlobalID
	}

	ex.prepare(threads)
	if cfg.Traceback {
		ex.prepareTraces(len(t.Jobs))
	}
	units := ex.units
	if cfg.LRSplit {
		for j := range t.Jobs {
			units = append(units, unit{job: j, side: sideLeft}, unit{job: j, side: sideRight})
		}
	} else {
		for j := range t.Jobs {
			units = append(units, unit{job: j, side: sideBoth})
		}
	}
	ex.units = units

	instr := ex.instr

	exec := func(th int, u unit) {
		cost := runUnit(t, cfg, ex, th, u, out, &tr)
		instr[th] += cost
	}

	if !cfg.WorkStealing {
		for ui, u := range units {
			exec(ui%threads, u)
		}
	} else {
		next := 0
		// Eventual work stealing staggers threads with a thread-unique
		// busy wait so their deterministic counters rarely collide
		// (§4.1.3); plain racy stealing starts everyone in lockstep.
		if cfg.BusyWaitVariance {
			for th := 0; th < threads; th++ {
				instr[th] += stealJitter(th, -1-th)
			}
		}
		// Static initial assignment: thread th begins with unit th.
		for th := 0; th < threads && next < len(units); th++ {
			exec(th, units[next])
			next++
		}
		stealCost := int64(cfg.Cost.StealInstr + 0.5)
		for next < len(units) {
			// The thread(s) with the lowest deterministic counter
			// reach the steal swap first; exact ties race and take
			// the same unit (§4.1.3).
			low := instr[0]
			for th := 1; th < threads; th++ {
				if instr[th] < low {
					low = instr[th]
				}
			}
			tied := ex.tied[:0]
			for th := 0; th < threads; th++ {
				if instr[th] == low {
					tied = append(tied, th)
				}
			}
			ex.tied = tied
			u := units[next]
			next++
			for k, th := range tied {
				instr[th] += stealCost
				if cfg.BusyWaitVariance {
					// The thread-unique busy wait makes every
					// steal take a slightly different, iteration-
					// dependent time, so counters that once
					// collided diverge instead of staying in
					// perpetual lockstep (§4.1.3). A small
					// deterministic hash stands in for the loop's
					// timing variance.
					instr[th] += stealJitter(th, tr.steals)
				}
				exec(th, u)
				tr.steals++
				if k > 0 {
					tr.races++
				}
			}
		}
		// Every thread's final steal attempt finds the list empty.
		for th := 0; th < threads; th++ {
			instr[th] += stealCost
		}
	}

	// Deferred gated replays: with the score gate active the scheduling
	// loop recorded nothing, so replay the above-cutoff comparisons now,
	// each side on the thread that scored it. The replays append to those
	// threads' deterministic counters before the superstep maximum is
	// taken — the modeled schedule runs them after the score pass drains.
	if cfg.traceGated() && tr.err == nil {
		for j := range t.Jobs {
			if ex.failed[j] {
				continue
			}
			job := &t.Jobs[j]
			h, v := t.Seq(job.HLocal), t.Seq(job.VLocal)
			seed := core.Seed{H: job.SeedH, V: job.SeedV, Len: job.SeedLen}
			o := &out[j]
			if o.LeftScore+core.SeedScore(h, v, seed, cfg.Params)+o.RightScore < cfg.TraceMinScore {
				continue
			}
			lth := ex.leftTh[j]
			trc, err := ex.ws[lth].TracebackLeft(h, v, job.SeedH, job.SeedV, cfg.Params)
			instr[lth] += recordTrace(trc, err, &ex.leftR[j], "left", job.GlobalID,
				&ex.leftC[j], &ex.leftTB[j], &ex.failed[j], &tr, cfg)
			if ex.failed[j] || tr.err != nil {
				continue
			}
			rth := ex.rightTh[j]
			trc, err = ex.ws[rth].TracebackRight(h, v, job.SeedH+job.SeedLen, job.SeedV+job.SeedLen, cfg.Params)
			instr[rth] += recordTrace(trc, err, &ex.rightR[j], "right", job.GlobalID,
				&ex.rightC[j], &ex.rightTB[j], &ex.failed[j], &tr, cfg)
		}
	}

	for th := 0; th < threads; th++ {
		if instr[th] > tr.maxInstr {
			tr.maxInstr = instr[th]
		}
	}

	// Combine extension results (seed score bridged between them) and
	// account theoretical cells once per comparison — duplicated racy
	// executions must not inflate the GCUPS numerator (§5.1). A job with
	// Fanout > 1 stands for that many byte-identical planned comparisons;
	// the duplicates' work never reaches the device, so it is accounted
	// separately as skipped rather than folded into the executed traces.
	for j := range t.Jobs {
		job := &t.Jobs[j]
		h, v := t.Seq(job.HLocal), t.Seq(job.VLocal)
		seed := core.Seed{H: job.SeedH, V: job.SeedV, Len: job.SeedLen}
		o := &out[j]
		o.Score = o.LeftScore + core.SeedScore(h, v, seed, cfg.Params) + o.RightScore
		tr.theo += int64(len(h)) * int64(len(v))
		if f := job.Fanout; f > 1 {
			tr.skippedCells += int64(f-1) * int64(len(h)) * int64(len(v))
			tr.skippedJobs += f - 1
		}
		if !cfg.Traceback || tr.err != nil {
			continue
		}
		if ex.failed[j] {
			// The trace recording overflowed: degrade this one
			// comparison to the PR 6 placeholder (GlobalID valid,
			// everything else zero) instead of poisoning the batch.
			// AssemblePlan never caches Failed results.
			*o = AlignOut{GlobalID: o.GlobalID, Failed: true}
			continue
		}
		if cfg.TraceMinScore > 0 && o.Score < cfg.TraceMinScore {
			// Score-gated: deliver the score-only result, bit-identical
			// to a traceback-off run's.
			tr.skippedExt += 2
			continue
		}
		// Bridge the seed's own columns between the two extension
		// CIGARs (both already in sequence-forward order).
		full, err := alignment.Concat(ex.leftC[j], core.SeedCigar(h, v, seed), ex.rightC[j])
		if err != nil {
			tr.err = fmt.Errorf("ipukernel: comparison %d cigar: %w", job.GlobalID, err)
			continue
		}
		o.Cigar = full
		o.TraceBytes = ex.leftTB[j] + ex.rightTB[j]
		tr.traceBytes += int64(o.TraceBytes)
		tr.cigarBytes += int64(full.WireBytes())
		tr.tracedExt += 2
	}
	return tr
}

// stealJitter is the deterministic per-steal busy-wait duration: a small
// hash of the thread id and steal ordinal standing in for the busy-wait
// loop's timing variance (1–1024 instruction bundles, ≈ at most 4.6 µs of
// thread time — "small" in the paper's sense, §4.1.3, yet wide enough
// that counter collisions become as rare as the paper's 18 per 1.13 M
// alignments).
func stealJitter(th, n int) int64 {
	x := uint64(th+1)*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	return int64(x>>54) + 1
}

// runUnit executes one unit's extension(s), records results and traces,
// and returns the charged instruction cost. With Config.Traceback each
// side either fuses direction recording into the scoring pass (one sweep)
// or runs the recording replay after it (the two-pass scheme, charged
// like another DP sweep); with the score gate active it only remembers
// which thread scored the side, for the deferred replay phase. A
// recording must bit-match the score pass or the tile fails loudly.
func runUnit(t *TileWork, cfg Config, ex *executor, th int, u unit, out []AlignOut, tr *tileResult) int64 {
	job := &t.Jobs[u.job]
	h, v := t.Seq(job.HLocal), t.Seq(job.VLocal)
	o := &out[u.job]
	ws := &ex.ws[th]

	var cost int64
	doLeft := u.side == sideBoth || u.side == sideLeft
	doRight := u.side == sideBoth || u.side == sideRight
	gated := cfg.traceGated()

	if doLeft {
		if cfg.Traceback && !gated && cfg.fusedExtension(job.SeedH, job.SeedV) {
			r, trc, err := ws.FusedExtendLeft(h, v, job.SeedH, job.SeedV, cfg.Params)
			if err != nil {
				failTrace(err, &ex.failed[u.job], tr)
			} else {
				o.LeftScore = r.Score
				o.BegH = job.SeedH - r.EndH
				o.BegV = job.SeedV - r.EndV
				cost += instrCost(cfg, r.Stats)
				accumulate(o, tr, r.Stats)
				storeTrace(trc, &ex.leftC[u.job], &ex.leftTB[u.job], tr)
			}
		} else {
			r := ws.ExtendLeft(h, v, job.SeedH, job.SeedV, cfg.Params)
			o.LeftScore = r.Score
			o.BegH = job.SeedH - r.EndH
			o.BegV = job.SeedV - r.EndV
			cost += instrCost(cfg, r.Stats)
			accumulate(o, tr, r.Stats)
			if cfg.Traceback {
				if gated {
					ex.leftR[u.job], ex.leftTh[u.job] = r, th
				} else {
					trc, err := ws.TracebackLeft(h, v, job.SeedH, job.SeedV, cfg.Params)
					cost += recordTrace(trc, err, &r, "left", job.GlobalID,
						&ex.leftC[u.job], &ex.leftTB[u.job], &ex.failed[u.job], tr, cfg)
				}
			}
		}
	}
	if doRight {
		rh := len(h) - job.SeedH - job.SeedLen
		rv := len(v) - job.SeedV - job.SeedLen
		if cfg.Traceback && !gated && cfg.fusedExtension(rh, rv) {
			r, trc, err := ws.FusedExtendRight(h, v, job.SeedH+job.SeedLen, job.SeedV+job.SeedLen, cfg.Params)
			if err != nil {
				failTrace(err, &ex.failed[u.job], tr)
			} else {
				o.RightScore = r.Score
				o.EndH = job.SeedH + job.SeedLen + r.EndH
				o.EndV = job.SeedV + job.SeedLen + r.EndV
				cost += instrCost(cfg, r.Stats)
				accumulate(o, tr, r.Stats)
				storeTrace(trc, &ex.rightC[u.job], &ex.rightTB[u.job], tr)
			}
		} else {
			r := ws.ExtendRight(h, v, job.SeedH+job.SeedLen, job.SeedV+job.SeedLen, cfg.Params)
			o.RightScore = r.Score
			o.EndH = job.SeedH + job.SeedLen + r.EndH
			o.EndV = job.SeedV + job.SeedLen + r.EndV
			cost += instrCost(cfg, r.Stats)
			accumulate(o, tr, r.Stats)
			if cfg.Traceback {
				if gated {
					ex.rightR[u.job], ex.rightTh[u.job] = r, th
				} else {
					trc, err := ws.TracebackRight(h, v, job.SeedH+job.SeedLen, job.SeedV+job.SeedLen, cfg.Params)
					cost += recordTrace(trc, err, &r, "right", job.GlobalID,
						&ex.rightC[u.job], &ex.rightTB[u.job], &ex.failed[u.job], tr, cfg)
				}
			}
		}
	}
	return cost
}

// failTrace routes a recording error: a trace overflow degrades its one
// comparison (Failed placeholder), anything else is a kernel bug and
// fails the batch loudly.
func failTrace(err error, failed *bool, tr *tileResult) {
	if errors.Is(err, core.ErrTraceTooLarge) {
		*failed = true
		return
	}
	if tr.err == nil {
		tr.err = err
	}
}

// recordTrace cross-checks one side's traceback replay against the
// score-pass result and stores the side's CIGAR and trace footprint in
// the executor scratch. It returns the extra instruction cost charged
// for the replay (one more DP sweep), or 0 on failure — a trace overflow
// degrades the one comparison via failed, while a divergence or corrupt
// trace lands in tr.err and fails the batch loudly rather than shipping
// a wrong alignment.
func recordTrace(trc core.Trace, err error, r *core.Result, side string, id int,
	cigar *alignment.Cigar, traceBytes *int, failed *bool, tr *tileResult, cfg Config) int64 {
	if err == nil && (trc.Score != r.Score || trc.EndH != r.EndH || trc.EndV != r.EndV) {
		err = fmt.Errorf("ipukernel: %s traceback of comparison %d diverged: replay (%d,%d,%d) vs kernel (%d,%d,%d)",
			side, id, trc.Score, trc.EndH, trc.EndV, r.Score, r.EndH, r.EndV)
	}
	if err != nil {
		failTrace(err, failed, tr)
		return 0
	}
	*cigar = trc.Cigar
	*traceBytes = trc.TraceBytes
	if trc.TraceBytes > tr.peakTrace {
		tr.peakTrace = trc.TraceBytes
	}
	return instrCost(cfg, r.Stats)
}

// storeTrace records a fused recording's CIGAR and trace footprint (the
// fused kernel already cross-checked itself: its Result and Trace come
// from the same sweep).
func storeTrace(trc core.Trace, cigar *alignment.Cigar, traceBytes *int, tr *tileResult) {
	*cigar = trc.Cigar
	*traceBytes = trc.TraceBytes
	if trc.TraceBytes > tr.peakTrace {
		tr.peakTrace = trc.TraceBytes
	}
}

func accumulate(o *AlignOut, tr *tileResult, s core.Stats) {
	o.Cells += s.Cells
	o.Antidiagonals += s.Antidiagonals
	if s.MaxLiveBand > o.MaxLiveBand {
		o.MaxLiveBand = s.MaxLiveBand
	}
	o.Clamped = o.Clamped || s.Clamped
	tr.cells += s.Cells
	tr.sumBand += s.SumComputedBand
	tr.antidiag += int64(s.Antidiagonals)
	switch {
	case s.Narrow:
		tr.narrowExt++
	case s.Promoted:
		tr.promotedExt++
	default:
		tr.wideExt++
	}
}

// instrCost converts an extension trace into thread-instruction bundles
// under the calibrated cost model, applying the dual-issue speedup last.
func instrCost(cfg Config, s core.Stats) int64 {
	c := cfg.Cost
	raw := c.InstrPerAlignment +
		float64(s.Antidiagonals)*c.InstrPerIteration +
		float64(s.Cells)*c.InstrPerCell
	if cfg.DualIssue {
		raw /= c.DualIssueSpeedup
	}
	return int64(raw + 0.5)
}
