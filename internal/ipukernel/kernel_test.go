package ipukernel

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/ipu"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func dnaCfg(x int) Config {
	return Config{
		Params: core.Params{Scorer: scoring.DNADefault, Gap: -1, X: x, DeltaB: 256},
	}
}

// buildBatch places one uniform synthetic comparison per tile. Tiles
// reference the dataset's shared arena slab, as the partitioner builds
// them.
func buildBatch(t *testing.T, count, length int, errRate float64, seed int64) (*Batch, *synth.Dataset) {
	t.Helper()
	d := synth.UniformPairs(synth.UniformPairsSpec{
		Count: count, Length: length, ErrorRate: errRate, SeedLen: 17, Seed: seed,
	})
	arena, plan := d.Spine()
	b := &Batch{}
	for i := 0; i < plan.Len(); i++ {
		c := plan.At(i)
		b.Tiles = append(b.Tiles, TileWork{
			Slabs: arena.SlabViews(),
			Seqs:  []workload.SeqRef{arena.Ref(c.H), arena.Ref(c.V)},
			Jobs:  []SeedJob{{HLocal: 0, VLocal: 1, SeedH: c.SeedH, SeedV: c.SeedV, SeedLen: c.SeedLen, GlobalID: i}},
		})
	}
	return b, d
}

func TestRunBasic(t *testing.T) {
	dev := ipu.New(ipu.Config{Model: platform.GC200})
	b, d := buildBatch(t, 20, 600, 0.15, 1)
	res, err := Run(dev, b, dnaCfg(15))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 20 {
		t.Fatalf("got %d outputs", len(res.Out))
	}
	for i, o := range res.Out {
		if o.GlobalID != i {
			t.Errorf("output %d has GlobalID %d", i, o.GlobalID)
		}
		if o.Score < 17 { // at least the seed must match
			t.Errorf("output %d score %d below seed score", i, o.Score)
		}
		c := d.Comparisons[i]
		if o.BegH > c.SeedH || o.EndH < c.SeedH+c.SeedLen {
			t.Errorf("output %d does not span the seed", i)
		}
	}
	if res.Seconds <= 0 || res.Cells <= 0 || res.TheoreticalCells <= 0 {
		t.Errorf("bad accounting: %+v", res)
	}
	if dev.Stats().Supersteps != 1 {
		t.Error("superstep not accounted")
	}
}

// TestKernelMatchesDirectExtension: the kernel must produce exactly the
// scores ExtendSeed produces — the IPU mapping changes scheduling, never
// results.
func TestKernelMatchesDirectExtension(t *testing.T) {
	for _, cfgMut := range []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.LRSplit = true },
		func(c *Config) { c.LRSplit = true; c.WorkStealing = true; c.BusyWaitVariance = true },
		func(c *Config) { c.DualIssue = true },
		func(c *Config) { c.Threads = 1 },
	} {
		dev := ipu.New(ipu.Config{Model: platform.GC200})
		b, d := buildBatch(t, 12, 500, 0.1, 2)
		cfg := dnaCfg(10)
		cfgMut(&cfg)
		res, err := Run(dev, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range res.Out {
			c := d.Comparisons[i]
			want, err := core.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V],
				core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}, cfg.Params)
			if err != nil {
				t.Fatal(err)
			}
			if o.Score != want.Score || o.LeftScore != want.LeftScore || o.RightScore != want.RightScore {
				t.Fatalf("cmp %d: kernel %+v != direct %+v", i, o, want)
			}
			if o.BegH != want.BegH || o.EndH != want.EndH || o.BegV != want.BegV || o.EndV != want.EndV {
				t.Fatalf("cmp %d: kernel span != direct span", i)
			}
		}
	}
}

func TestMultiJobTileSharedSequences(t *testing.T) {
	// One tile holding 4 sequences and 5 jobs reusing them (the graph
	// partitioning payoff, §4.3).
	rng := rand.New(rand.NewSource(3))
	seqs := make([][]byte, 4)
	base := synth.RandDNA(rng, 800)
	prof := synth.UniformDNA(0.1)
	for i := range seqs {
		seqs[i] = prof.Apply(rng, base)
		if len(seqs[i]) < 400 {
			t.Fatal("mutation shrank sequence too much")
		}
	}
	var jobs []SeedJob
	for k := 0; k < 5; k++ {
		a, b := k%4, (k+1)%4
		jobs = append(jobs, SeedJob{HLocal: a, VLocal: b, SeedH: 100, SeedV: 100, SeedLen: 17, GlobalID: k})
	}
	// Plant exact seeds.
	for _, j := range jobs {
		synth.PlantSeed(seqs[j.HLocal], seqs[j.VLocal], j.SeedH, j.SeedV, j.SeedLen)
	}
	tile := TileWork{Jobs: jobs}
	for _, s := range seqs {
		tile.AddSeq(s)
	}
	b := &Batch{Tiles: []TileWork{tile}}
	dev := ipu.New(ipu.Config{Model: platform.GC200})
	cfg := dnaCfg(10)
	cfg.LRSplit = true
	cfg.WorkStealing = true
	cfg.BusyWaitVariance = true
	res, err := Run(dev, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StealOps == 0 {
		t.Error("work stealing never engaged")
	}
	if len(res.Out) != 5 {
		t.Fatalf("got %d outputs", len(res.Out))
	}
	// Transfer accounting must charge each sequence once, not per job.
	wantSeqBytes := 0
	for _, s := range seqs {
		wantSeqBytes += len(s)
	}
	wantIn := int64(wantSeqBytes + 4*seqDescrBytes + 5*JobTupleBytes + batchHdrBytes)
	if res.HostBytesIn != wantIn {
		t.Errorf("HostBytesIn = %d, want %d", res.HostBytesIn, wantIn)
	}
}

// TestUniqueSeqBytes covers the span merge behind the exact §4.1 payload
// stat: duplicates, overlaps and adjacent spans collapse, disjoint spans
// sum, and SeqBytes (per-descriptor accounting) stays the upper bound.
func TestUniqueSeqBytes(t *testing.T) {
	empty := TileWork{}
	if got := empty.UniqueSeqBytes(); got != 0 {
		t.Errorf("empty tile UniqueSeqBytes = %d", got)
	}
	tile := TileWork{
		Slabs: [][]byte{make([]byte, 100)},
		Seqs: []workload.SeqRef{
			{Off: 40, Len: 5},  // disjoint, out of order
			{Off: 10, Len: 10}, // base span
			{Off: 10, Len: 10}, // exact duplicate (interned sequence)
			{Off: 15, Len: 10}, // overlaps base
			{Off: 25, Len: 5},  // adjacent to the merged run
		},
	}
	// Coverage: [10,30) ∪ [40,45) = 25 bytes; descriptors charge 40.
	if got := tile.UniqueSeqBytes(); got != 25 {
		t.Errorf("UniqueSeqBytes = %d, want 25", got)
	}
	if got := tile.SeqBytes(); got != 40 {
		t.Errorf("SeqBytes = %d, want 40", got)
	}
	if tile.UniqueSeqBytes() > tile.SeqBytes() {
		t.Error("unique payload exceeds per-descriptor payload")
	}
}

// TestUniqueSeqBytesInRun: a tile listing an arena sequence twice (the
// Copies mode) charges it per descriptor in HostBytesIn but once in
// UniqueSeqBytesIn.
func TestUniqueSeqBytesInRun(t *testing.T) {
	d := synth.UniformPairs(synth.UniformPairsSpec{
		Count: 1, Length: 400, ErrorRate: 0.15, SeedLen: 17, Seed: 12})
	arena, _ := d.Spine()
	c := d.Comparisons[0]
	tile := TileWork{
		Slabs: arena.SlabViews(),
		Seqs:  []workload.SeqRef{arena.Ref(c.H), arena.Ref(c.V), arena.Ref(c.H)},
		Jobs: []SeedJob{
			{HLocal: 0, VLocal: 1, SeedH: c.SeedH, SeedV: c.SeedV, SeedLen: c.SeedLen, GlobalID: 0},
			{HLocal: 2, VLocal: 1, SeedH: c.SeedH, SeedV: c.SeedV, SeedLen: c.SeedLen, GlobalID: 1},
		},
	}
	dev := ipu.New(ipu.Config{Model: platform.GC200})
	res, err := Run(dev, &Batch{Tiles: []TileWork{tile}}, dnaCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	hn, vn := len(d.Sequences[c.H]), len(d.Sequences[c.V])
	if want := int64(2*hn + vn); res.HostBytesIn-int64(3*seqDescrBytes+2*JobTupleBytes+batchHdrBytes) != want {
		t.Errorf("per-descriptor sequence payload = %d, want %d",
			res.HostBytesIn-int64(3*seqDescrBytes+2*JobTupleBytes+batchHdrBytes), want)
	}
	if want := int64(hn + vn); res.UniqueSeqBytesIn != want {
		t.Errorf("UniqueSeqBytesIn = %d, want %d (duplicate span charged once)", res.UniqueSeqBytesIn, want)
	}
	if res.Out[0].Score != res.Out[1].Score {
		t.Error("duplicate-span job scored differently")
	}
}

func TestSRAMRejection(t *testing.T) {
	// A tile with sequences larger than the SRAM budget must be refused.
	big := make([]byte, 300*1024)
	for i := range big {
		big[i] = "ACGT"[i%4]
	}
	tile := TileWork{Jobs: []SeedJob{{HLocal: 0, VLocal: 1, SeedH: 0, SeedV: 0, SeedLen: 17}}}
	tile.AddSeq(big)
	tile.AddSeq(big)
	b := &Batch{Tiles: []TileWork{tile}}
	dev := ipu.New(ipu.Config{Model: platform.GC200})
	if _, err := Run(dev, b, dnaCfg(10)); err == nil {
		t.Fatal("oversized tile accepted")
	}
}

func TestStandard3NeedsMoreSRAM(t *testing.T) {
	cfg := dnaCfg(10)
	all := make([]byte, 20000)
	for i := range all {
		all[i] = 'A'
	}
	tile := &TileWork{
		Jobs: []SeedJob{{HLocal: 0, VLocal: 1, SeedH: 10000, SeedV: 10000, SeedLen: 17}},
	}
	tile.AddSeq(all)
	tile.AddSeq(all)
	restricted := cfg.TileMemoryBytes(tile, platform.GC200)
	cfg.Params.Algo = core.AlgoStandard3
	standard := cfg.TileMemoryBytes(tile, platform.GC200)
	if standard <= restricted {
		t.Errorf("standard3 footprint %d not above restricted %d", standard, restricted)
	}
	// For 20 kb extensions the standard algorithm cannot fit six threads
	// of 3δ buffers in 624 KB — the paper's motivation (§3, §4.1).
	if standard < platform.GC200.DataSRAM() {
		t.Errorf("standard3 on 20kb pairs should exceed tile SRAM, got %d < %d",
			standard, platform.GC200.DataSRAM())
	}
	if restricted > platform.GC200.DataSRAM() {
		t.Errorf("restricted on 20kb pairs should fit tile SRAM, got %d", restricted)
	}
}

func TestWorkBufBytesPerThread(t *testing.T) {
	cfg := dnaCfg(10) // δb = 256
	if got := cfg.WorkBufBytesPerThread(10000); got != 2*256*4 {
		t.Errorf("restricted buf = %d, want %d", got, 2*256*4)
	}
	cfg.Params.DeltaB = 0
	if got := cfg.WorkBufBytesPerThread(10000); got != 2*10001*4 {
		t.Errorf("unbounded restricted buf = %d", got)
	}
	cfg.Params.Algo = core.AlgoStandard3
	if got := cfg.WorkBufBytesPerThread(10000); got != 3*10001*4 {
		t.Errorf("standard buf = %d", got)
	}
	cfg.Params.Algo = core.AlgoAffine
	if got := cfg.WorkBufBytesPerThread(10000); got != 7*10001*4 {
		t.Errorf("affine buf = %d", got)
	}
}

// TestThreadScalingSpeedsUp reproduces the Table 1 mechanism: more
// threads per tile shorten the modeled superstep.
func TestThreadScalingSpeedsUp(t *testing.T) {
	mk := func(threads int) float64 {
		dev := ipu.New(ipu.Config{Model: platform.GC200})
		// One tile, 12 equal jobs.
		d := synth.UniformPairs(synth.UniformPairsSpec{Count: 12, Length: 400, ErrorRate: 0.15, SeedLen: 17, Seed: 4})
		arena, _ := d.Spine()
		tile := TileWork{Slabs: arena.SlabViews()}
		for i, c := range d.Comparisons {
			tile.Seqs = append(tile.Seqs, arena.Ref(c.H), arena.Ref(c.V))
			tile.Jobs = append(tile.Jobs, SeedJob{
				HLocal: 2 * i, VLocal: 2*i + 1,
				SeedH: c.SeedH, SeedV: c.SeedV, SeedLen: c.SeedLen, GlobalID: i,
			})
		}
		cfg := dnaCfg(15)
		cfg.Threads = threads
		res, err := Run(dev, &Batch{Tiles: []TileWork{tile}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	t1 := mk(1)
	t6 := mk(6)
	speedup := t1 / t6
	if speedup < 4.0 || speedup > 6.001 {
		t.Errorf("6-thread speedup = %.2f, want within (4, 6]", speedup)
	}
}

// TestDualIssueSpeedsUp reproduces §4.1.4's ~1.3×.
func TestDualIssueSpeedsUp(t *testing.T) {
	run := func(dual bool) float64 {
		dev := ipu.New(ipu.Config{Model: platform.GC200})
		b, _ := buildBatch(t, 10, 500, 0.15, 5)
		cfg := dnaCfg(15)
		cfg.DualIssue = dual
		res, err := Run(dev, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	ratio := run(false) / run(true)
	if ratio < 1.2 || ratio > 1.4 {
		t.Errorf("dual-issue speedup %.3f, want ≈1.3", ratio)
	}
}

// TestWorkStealingBalancesVariance: with variable-cost jobs on one tile,
// stealing must beat static round-robin (§4.1.3: 1.44× on real data).
func TestWorkStealingBalancesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tile := TileWork{}
	// 18 jobs with wildly varying lengths (cost variance).
	for i := 0; i < 18; i++ {
		n := 200 + rng.Intn(1400)
		h := synth.RandDNA(rng, n)
		v := synth.UniformDNA(0.12).Apply(rng, h)
		if len(v) < 100 {
			t.Fatal("sequence too short")
		}
		sh := n / 2
		if sh+17 > len(v) {
			sh = len(v) - 17
		}
		synth.PlantSeed(h, v, sh, sh, 17)
		tile.AddSeq(h)
		tile.AddSeq(v)
		tile.Jobs = append(tile.Jobs, SeedJob{HLocal: 2 * i, VLocal: 2*i + 1, SeedH: sh, SeedV: sh, SeedLen: 17, GlobalID: i})
	}
	run := func(ws bool) float64 {
		dev := ipu.New(ipu.Config{Model: platform.GC200})
		cfg := dnaCfg(15)
		cfg.LRSplit = true
		cfg.WorkStealing = ws
		cfg.BusyWaitVariance = true
		res, err := Run(dev, &Batch{Tiles: []TileWork{tile}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	static := run(false)
	stealing := run(true)
	if stealing >= static {
		t.Errorf("work stealing (%.3gs) did not beat static assignment (%.3gs)", stealing, static)
	}
}

// TestEventualWorkStealingReducesRaces reproduces §4.1.3: without the
// busy-wait variance, deterministic latencies make tied threads steal the
// same unit perpetually; the busy-wait breaks the ties.
func TestEventualWorkStealingReducesRaces(t *testing.T) {
	// Uniform jobs → identical costs → maximal tie pressure.
	b, _ := buildBatch(t, 1, 300, 0.15, 7)
	// Pack 24 identical jobs on one tile.
	tile := TileWork{Slabs: b.Tiles[0].Slabs, Seqs: b.Tiles[0].Seqs}
	for k := 0; k < 24; k++ {
		j := b.Tiles[0].Jobs[0]
		j.GlobalID = k
		tile.Jobs = append(tile.Jobs, j)
	}
	run := func(busyWait bool) int {
		dev := ipu.New(ipu.Config{Model: platform.GC200})
		cfg := dnaCfg(15)
		cfg.WorkStealing = true
		cfg.BusyWaitVariance = busyWait
		res, err := Run(dev, &Batch{Tiles: []TileWork{tile}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Races
	}
	racy := run(false)
	eventual := run(true)
	if racy == 0 {
		t.Fatal("expected races with identical unit costs and no busy-wait")
	}
	if eventual >= racy {
		t.Errorf("busy-wait variance did not reduce races: %d -> %d", racy, eventual)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	dev := ipu.New(ipu.Config{Model: platform.GC200})
	b, _ := buildBatch(t, 1, 100, 0.1, 8)
	cfg := Config{Params: core.Params{Scorer: scoring.DNADefault, Gap: 1, X: 5}}
	if _, err := Run(dev, b, cfg); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Run(dev, &Batch{Tiles: make([]TileWork, 2000)}, dnaCfg(5)); err == nil {
		t.Error("too many tiles accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *BatchResult {
		dev := ipu.New(ipu.Config{Model: platform.GC200})
		b, _ := buildBatch(t, 16, 400, 0.2, 9)
		cfg := dnaCfg(12)
		cfg.LRSplit = true
		cfg.WorkStealing = true
		cfg.BusyWaitVariance = true
		res, err := Run(dev, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Seconds != b.Seconds || a.Races != b.Races || a.Cells != b.Cells {
		t.Error("kernel run not deterministic")
	}
	for i := range a.Out {
		if a.Out[i] != b.Out[i] {
			t.Fatalf("output %d differs between runs", i)
		}
	}
}
