// Slab-level residency: sealed slabs of the arena spine can be spilled
// to disk and faulted back on demand, with pinning around execution
// windows. This is what lets a dataset larger than RAM be schedulable —
// the driver pins exactly the slab set a batch references, runs the
// batch, and releases, so peak residency tracks the working set instead
// of |Ω|.
//
// Lifecycle per slab: open → sealed → spilled ⇄ resident, with pins
// holding a slab resident. Slabs are immutable once sealed, so a spill
// file is written at most once and never invalidated; re-spilling a
// faulted slab just drops the in-memory bytes again.

package workload

import (
	"fmt"
	"os"
	"sync"
)

// EnableSpill sets the directory slab spill files are written into and
// turns residency management on. It must be called before the arena is
// shared with concurrent readers. Spilling stays a no-op until Spill is
// called.
func (a *Arena) EnableSpill(dir string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spillDir = dir
}

// Seal closes the open tail slab: no further bytes land in it and it
// becomes spillable; the next append rolls a fresh slab. Sealing an
// empty or already-sealed spine is a no-op. Like appends, Seal is a
// writer-side operation — callers must not run it concurrently with
// appends.
func (a *Arena) Seal() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.slabs); n > 0 {
		a.slabs[n-1].sealed = true
	}
}

// Spill writes every sealed, unpinned, resident slab to its spill file
// (first spill only — slabs are immutable once sealed) and drops the
// in-memory bytes. It returns the number of bytes released. Spill is a
// no-op until EnableSpill has set a directory.
func (a *Arena) Spill() (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spillDir == "" {
		return 0, nil
	}
	var released int64
	for si, sl := range a.slabs {
		if !sl.sealed || sl.pins > 0 || sl.size == 0 {
			continue
		}
		b := sl.bytes()
		if b == nil {
			continue // already spilled
		}
		if sl.path == "" {
			f, err := os.CreateTemp(a.spillDir, fmt.Sprintf("slab-%d-*.bin", si))
			if err != nil {
				return released, fmt.Errorf("workload: spill slab %d: %w", si, err)
			}
			_, werr := f.Write(b)
			cerr := f.Close()
			if werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(f.Name())
				return released, fmt.Errorf("workload: spill slab %d: %w", si, werr)
			}
			sl.path = f.Name()
		}
		sl.data.Store(nil)
		released += int64(sl.size)
		a.spills++
		a.spilledBytes += int64(sl.size)
	}
	return released, nil
}

// faultInLocked brings a slab's bytes back from its spill file. Caller
// holds a.mu.
func (a *Arena) faultInLocked(sl *slab) ([]byte, error) {
	if b := sl.bytes(); b != nil {
		return b, nil
	}
	if sl.size == 0 {
		b := []byte{}
		sl.setBytes(b)
		return b, nil
	}
	if sl.path == "" {
		return nil, fmt.Errorf("workload: slab spilled with no spill file")
	}
	buf, err := os.ReadFile(sl.path)
	if err != nil {
		return nil, fmt.Errorf("workload: fault slab in: %w", err)
	}
	if len(buf) != sl.size {
		return nil, fmt.Errorf("workload: spill file %s holds %d bytes, slab expects %d",
			sl.path, len(buf), sl.size)
	}
	sl.setBytes(buf)
	a.faults++
	return buf, nil
}

// SlabPin holds a set of slabs resident. Obtained from Pin, released
// exactly once with Release (idempotent); while held, Spill skips the
// pinned slabs, so views handed out by Slabs stay valid.
type SlabPin struct {
	a     *Arena
	set   []int32
	views [][]byte
	once  sync.Once
}

// Pin faults the given slab indices into memory and pins them resident
// until Release. The returned pin's Slabs() table is indexed by slab
// number (full spine length, nil for slabs outside the set), which is
// exactly the shape TileWork.Slabs wants. Pinning an already-resident
// slab is cheap — a counter bump — so the driver pins unconditionally,
// spill enabled or not.
func (a *Arena) Pin(set []int32) (*SlabPin, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := &SlabPin{a: a, set: make([]int32, 0, len(set)), views: make([][]byte, len(a.slabs))}
	for _, si := range set {
		if si < 0 || int(si) >= len(a.slabs) {
			a.unpinLocked(p.set)
			return nil, fmt.Errorf("workload: pin of slab %d outside the %d-slab spine", si, len(a.slabs))
		}
		sl := a.slabs[si]
		b, err := a.faultInLocked(sl)
		if err != nil {
			a.unpinLocked(p.set)
			return nil, err
		}
		sl.pins++
		p.set = append(p.set, si)
		p.views[si] = b[:len(b):len(b)]
	}
	return p, nil
}

// PinAll pins every slab in the spine.
func (a *Arena) PinAll() (*SlabPin, error) {
	set := make([]int32, len(a.slabs))
	for i := range set {
		set[i] = int32(i)
	}
	return a.Pin(set)
}

func (a *Arena) unpinLocked(set []int32) {
	for _, si := range set {
		a.slabs[si].pins--
	}
}

// Slabs returns the pinned slab views indexed by slab number; entries
// for slabs outside the pinned set are nil. The table length equals the
// spine length at pin time.
func (p *SlabPin) Slabs() [][]byte { return p.views }

// Release unpins the slabs. Idempotent; after release the views may be
// invalidated by a later Spill, so callers must not retain them.
func (p *SlabPin) Release() {
	p.once.Do(func() {
		p.a.mu.Lock()
		defer p.a.mu.Unlock()
		p.a.unpinLocked(p.set)
	})
}

// ResidencyStats is a point-in-time snapshot of the spine's residency.
type ResidencyStats struct {
	// Slabs is the spine length; Resident/Spilled partition the sealed
	// and open slabs by where their bytes are.
	Slabs, Resident, Spilled int
	// ResidentBytes/SpilledBytes are the byte totals of the two sets.
	ResidentBytes, SpilledBytes int64
	// Spills and Faults count slab writes to and reads from spill files
	// over the arena's lifetime.
	Spills, Faults int64
}

// Residency reports the spine's residency snapshot and lifetime
// spill/fault counters.
func (a *Arena) Residency() ResidencyStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ResidencyStats{Slabs: len(a.slabs), Spills: a.spills, Faults: a.faults}
	for _, sl := range a.slabs {
		if sl.bytes() == nil && sl.size > 0 {
			st.Spilled++
			st.SpilledBytes += int64(sl.size)
		} else {
			st.Resident++
			st.ResidentBytes += int64(sl.size)
		}
	}
	return st
}

// Close removes the arena's spill files, faulting any spilled slab back
// in first so no bytes are lost. Use it when a spill-managed arena is
// retired before its spill directory is (temp dirs clean themselves up).
func (a *Arena) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var firstErr error
	for _, sl := range a.slabs {
		if sl.path == "" {
			continue
		}
		if _, err := a.faultInLocked(sl); err != nil && firstErr == nil {
			firstErr = err
			continue
		}
		if err := os.Remove(sl.path); err != nil && firstErr == nil {
			firstErr = err
		}
		sl.path = ""
	}
	return firstErr
}
