package workload

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/seqio"
)

func TestArenaAppendAndSeq(t *testing.T) {
	a := NewArena(0, 0)
	in := [][]byte{[]byte("ACGT"), []byte("TTTT"), []byte("ACGTACGT")}
	for i, s := range in {
		if idx := a.Append(s); idx != i {
			t.Fatalf("Append returned index %d, want %d", idx, i)
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	for i, s := range in {
		if !bytes.Equal(a.Seq(i), s) {
			t.Errorf("Seq(%d) = %q, want %q", i, a.Seq(i), s)
		}
		if int(a.Ref(i).Len) != len(s) {
			t.Errorf("Ref(%d).Len = %d, want %d", i, a.Ref(i).Len, len(s))
		}
	}
	if got, want := a.SlabBytes(), 4+4+8; got != want {
		t.Errorf("SlabBytes = %d, want %d", got, want)
	}
	if got := a.SeqBytes(); got != 16 {
		t.Errorf("SeqBytes = %d, want 16", got)
	}
}

// TestArenaInterning: Append dedups storage but preserves index numbering;
// Intern dedups the index too.
func TestArenaInterning(t *testing.T) {
	a := NewArena(0, 0)
	a.Append([]byte("ACGTACGT"))
	dup := a.Append([]byte("ACGTACGT"))
	if dup != 1 {
		t.Fatalf("Append duplicate returned index %d, want a fresh index 1", dup)
	}
	if a.SlabBytes() != 8 {
		t.Errorf("duplicate grew the slab to %d bytes, want 8", a.SlabBytes())
	}
	if a.Ref(0) != a.Ref(1) {
		t.Errorf("duplicate spans differ: %v vs %v", a.Ref(0), a.Ref(1))
	}
	if a.SavedBytes() != 8 {
		t.Errorf("SavedBytes = %d, want 8", a.SavedBytes())
	}
	if got := a.Intern([]byte("ACGTACGT")); got != 0 {
		t.Errorf("Intern of pooled bytes returned %d, want canonical index 0", got)
	}
	if got := a.Intern([]byte("GGGG")); got != 2 {
		t.Errorf("Intern of new bytes returned %d, want 2", got)
	}
	if a.SlabBytes() != 12 {
		t.Errorf("SlabBytes = %d, want 12", a.SlabBytes())
	}
	// Same length, different content must not collide.
	x := a.Append([]byte("TTTT"))
	if bytes.Equal(a.Seq(x), a.Seq(2)) {
		t.Error("distinct content shares a span")
	}
}

func TestArenaAppendFasta(t *testing.T) {
	in := ">r1 first\nACGT\nacgt\n>r2\nTT\r\nTT\r\n>r1dup\nACGTACGT\n"
	a := NewArena(0, 0)
	ids, err := a.AppendFasta(strings.NewReader(in), seqio.DNAAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "r1" || ids[1] != "r2" || ids[2] != "r1dup" {
		t.Fatalf("ids = %v", ids)
	}
	if !bytes.Equal(a.Seq(0), []byte("ACGTACGT")) || !bytes.Equal(a.Seq(1), []byte("TTTT")) {
		t.Fatalf("sequences wrong: %q %q", a.Seq(0), a.Seq(1))
	}
	// r1 and r1dup have identical symbols → interned storage.
	if a.Ref(0) != a.Ref(2) {
		t.Errorf("identical FASTA records not interned: %v vs %v", a.Ref(0), a.Ref(2))
	}
	if _, err := a.AppendFasta(strings.NewReader(">bad\nACGJ\n"), seqio.DNAAlphabet); err == nil {
		t.Error("invalid symbol accepted")
	}
}

func TestValidateCentralised(t *testing.T) {
	a := NewArena(0, 0)
	a.Append([]byte("ACGTACGT"))
	a.Append([]byte("TTTTTTTT"))
	ok := Comparison{H: 0, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4}
	bad := []Comparison{
		{H: 2, V: 0, SeedLen: 2},                      // missing sequence
		{H: 0, V: -1, SeedLen: 2},                     // negative index
		{H: 0, V: 1, SeedH: 7, SeedV: 0, SeedLen: 4},  // seed off the end of H
		{H: 0, V: 1, SeedH: 0, SeedV: -1, SeedLen: 4}, // negative seed
		{H: 0, V: 1, SeedH: 0, SeedV: 0, SeedLen: 0},  // zero-length seed
	}
	if err := a.ValidatePlan(PlanOf([]Comparison{ok})); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for i, c := range bad {
		if err := a.ValidatePlan(PlanOf([]Comparison{c})); err == nil {
			t.Errorf("bad comparison %d accepted by arena", i)
		}
		// Dataset.Validate must agree — same implementation underneath.
		d := a.NewDataset("v", PlanOf(nil), false)
		d.Comparisons = []Comparison{c}
		if err := d.Validate(); err == nil {
			t.Errorf("bad comparison %d accepted by dataset view", i)
		}
	}
}

func TestPlanColumnsRoundTrip(t *testing.T) {
	cmps := []Comparison{
		{H: 0, V: 1, SeedH: 5, SeedV: 7, SeedLen: 17},
		{H: 3, V: 2, SeedH: 0, SeedV: 1, SeedLen: 13},
	}
	p := PlanOf(cmps)
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i, c := range cmps {
		if p.At(i) != c {
			t.Errorf("At(%d) = %+v, want %+v", i, p.At(i), c)
		}
	}
	mat := p.Comparisons()
	if &mat[0] != &p.Comparisons()[0] {
		t.Error("Comparisons materialisation not cached")
	}
}

// TestDatasetSpineLazyAndStale: hand-assembled datasets grow a spine on
// demand, and appending comparisons afterwards refreshes the plan.
func TestDatasetSpineLazyAndStale(t *testing.T) {
	d := &Dataset{
		Name:      "lazy",
		Sequences: [][]byte{[]byte("ACGTACGT"), []byte("ACGTACGT"), []byte("TTTTCCCC")},
	}
	a, p := d.Spine()
	if a.Len() != 3 || p.Len() != 0 {
		t.Fatalf("spine: %d seqs, %d cmps", a.Len(), p.Len())
	}
	if a.SlabBytes() != 16 {
		t.Errorf("lazy spine did not intern duplicates: slab %d bytes, want 16", a.SlabBytes())
	}
	d.Comparisons = append(d.Comparisons, Comparison{H: 0, V: 2, SeedH: 0, SeedV: 0, SeedLen: 4})
	_, p2 := d.Spine()
	if p2.Len() != 1 {
		t.Fatalf("stale plan not refreshed: %d cmps", p2.Len())
	}
	a2, _ := d.Spine()
	if a2 != a {
		t.Error("arena rebuilt although the pool did not change")
	}
	// Whole-slice replacement with the same count must also be caught
	// (slice identity, not just length).
	repl := []Comparison{{H: 1, V: 2, SeedH: 1, SeedV: 1, SeedLen: 4}}
	d.Comparisons = repl
	_, p3 := d.Spine()
	if p3.Len() != 1 || p3.At(0) != repl[0] {
		t.Errorf("equal-count slice replacement served stale plan: %+v", p3.At(0))
	}
}

// TestArenaDatasetView: the compatibility view's Sequences alias the slab
// (zero copy), and its Comparisons match the plan.
func TestArenaDatasetView(t *testing.T) {
	a := NewArena(0, 0)
	a.Append([]byte("ACGTACGTACGT"))
	a.Append([]byte("ACGAACGTACGT"))
	p := PlanOf([]Comparison{{H: 0, V: 1, SeedH: 4, SeedV: 4, SeedLen: 4}})
	d := a.NewDataset("view", p, false)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if &d.Sequences[0][0] != &a.Slab()[a.Ref(0).Off] {
		t.Error("view sequence is a copy, not a slab span")
	}
	if d.TotalSeqBytes() != a.SeqBytes() {
		t.Errorf("view bytes %d != arena bytes %d", d.TotalSeqBytes(), a.SeqBytes())
	}
	ar, pl := d.Spine()
	if ar != a || pl != p {
		t.Error("view lost its spine")
	}
}
