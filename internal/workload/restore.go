// Wire-restore surface: rebuilding an arena spine from its serialized
// parts. The service tier ships datasets as (slab, refs, plan columns);
// RestoreArena turns the first two back into a full Arena — digests and
// intern index included — without re-appending byte by byte, so the
// restored spine is semantically identical to the sender's: same
// indices, same spans, same content digests, and therefore the same
// ExtensionKeys and result-cache identity.

package workload

import "fmt"

// RestoreArena rebuilds an arena from a slab and its span table, the
// inverse of reading Slab() and Refs() on the wire's encode side. The
// slab is adopted, not copied — the caller must not mutate it afterwards
// (arena slabs are immutable once shared). Spans are validated against
// the slab; exact duplicate spans are recognised as interned (they share
// their canonical's digest and count toward SavedBytes), so a
// round-tripped arena reports the same interning the original did.
func RestoreArena(slab []byte, refs []SeqRef) (*Arena, error) {
	if len(slab) > MaxSlabBytes {
		return nil, fmt.Errorf("workload: restored slab exceeds %d bytes", int64(MaxSlabBytes))
	}
	a := &Arena{
		slab:    slab,
		refs:    append([]SeqRef(nil), refs...),
		digests: make([]SeqDigest, len(refs)),
		index:   make(map[uint64][]int32, len(refs)),
	}
	seen := make(map[SeqRef]int32, len(refs))
	for i, r := range a.refs {
		if r.Off < 0 || r.Len < 0 || int(r.End()) > len(slab) {
			return nil, fmt.Errorf("workload: restored span %d (%d+%d) outside the %d-byte slab",
				i, r.Off, r.Len, len(slab))
		}
		if ci, ok := seen[r]; ok {
			a.digests[i] = a.digests[ci]
			a.savedBytes += int64(r.Len)
			continue
		}
		d := digestBytes(slab[r.Off:r.End()])
		a.digests[i] = d
		a.index[d.Lo] = append(a.index[d.Lo], int32(i))
		seen[r] = int32(i)
	}
	return a, nil
}
