// Wire-restore surface: rebuilding an arena spine from its serialized
// parts. The service tier ships datasets as (slabs, refs, plan columns);
// RestoreArenaSlabs turns the first two back into a full Arena — digests
// and intern index included — without re-appending byte by byte, so the
// restored spine is semantically identical to the sender's: same
// indices, same spans, same content digests, and therefore the same
// ExtensionKeys and result-cache identity.

package workload

import "fmt"

// RestoreArenaSlabs rebuilds an arena spine from its slabs and span
// table, the inverse of reading SlabViews() and Refs() on the wire's
// encode side. The slabs are adopted, not copied — the caller must not
// mutate them afterwards (slab contents are immutable once shared) — and
// come back sealed, so the restored spine is immediately spillable and a
// later append rolls a fresh slab. Spans are validated against their
// slabs; exact duplicate spans are recognised as interned (they share
// their canonical's digest and count toward SavedBytes), so a
// round-tripped arena reports the same interning the original did.
func RestoreArenaSlabs(slabs [][]byte, refs []SeqRef) (*Arena, error) {
	a := &Arena{
		refs:    append([]SeqRef(nil), refs...),
		digests: make([]SeqDigest, len(refs)),
		index:   make(map[uint64][]int32, len(refs)),
		maxSlab: MaxSlabBytes,
		slabs:   make([]*slab, len(slabs)),
	}
	for si, b := range slabs {
		if len(b) > MaxSlabBytes {
			return nil, fmt.Errorf("workload: restored slab %d exceeds %d bytes", si, int64(MaxSlabBytes))
		}
		sl := &slab{size: len(b), sealed: true}
		sl.setBytes(b[:len(b):len(b)])
		a.slabs[si] = sl
	}
	seen := make(map[SeqRef]int32, len(refs))
	for i, r := range a.refs {
		if r.Slab < 0 || int(r.Slab) >= len(slabs) {
			return nil, fmt.Errorf("workload: restored span %d references slab %d of a %d-slab spine",
				i, r.Slab, len(slabs))
		}
		if r.Off < 0 || r.Len < 0 || int(r.End()) > len(slabs[r.Slab]) {
			return nil, fmt.Errorf("workload: restored span %d (%d+%d) outside the %d-byte slab %d",
				i, r.Off, r.Len, len(slabs[r.Slab]), r.Slab)
		}
		if ci, ok := seen[r]; ok {
			a.digests[i] = a.digests[ci]
			a.savedBytes += int64(r.Len)
			continue
		}
		d := digestBytes(slabs[r.Slab][r.Off:r.End()])
		a.digests[i] = d
		a.index[d.Lo] = append(a.index[d.Lo], int32(i))
		seen[r] = int32(i)
	}
	return a, nil
}

// RestoreArena is the single-slab form of RestoreArenaSlabs, kept for
// producers (and the XDW1 wire compat path) whose pools fit one slab.
// Every span must carry Slab == 0.
func RestoreArena(slab []byte, refs []SeqRef) (*Arena, error) {
	return RestoreArenaSlabs([][]byte{slab}, refs)
}
