// Duplicate-extension elimination: the content-interned arena already
// knows when two comparisons are byte-identical work, so the host can map
// every planned extension to a unique representative and align each
// distinct (pair, seed, params) extension once — the dedup-before-align
// staging overlap pipelines (ELBA, PASTIS candidate resubmission) and
// LOGAN-class batch aligners get much of their throughput from.

package workload

// ExtensionKey is the canonical content-addressed identity of one seed
// extension: the 128-bit content digests and lengths of H and V plus the
// seed geometry. Two comparisons from different jobs — different arenas,
// different pool numbering — produce equal keys exactly when the bytes
// and the seed anchor are identical (up to digest collision, ~2⁻¹²⁸ with
// the explicit lengths folded in). It is the cross-job result-cache key;
// within one arena, DedupPlan uses exact span identity instead, so
// in-plan dedup never depends on a hash at all.
type ExtensionKey struct {
	// H and V are the sequences' content digests.
	H, V SeqDigest
	// HLen and VLen pin the sequence lengths (a digest collision must
	// also collide at equal length to matter).
	HLen, VLen int32
	// SeedH, SeedV and SeedLen anchor the extension. Extensions are
	// directional: (H,V) and (V,H) with mirrored seeds are distinct keys.
	SeedH, SeedV, SeedLen int32
}

// ExtensionKeyOf derives comparison c's content-addressed key from the
// arena's digests. c must validate against the arena.
func (a *Arena) ExtensionKeyOf(c Comparison) ExtensionKey {
	return ExtensionKey{
		H: a.digests[c.H], V: a.digests[c.V],
		HLen: a.refs[c.H].Len, VLen: a.refs[c.V].Len,
		SeedH: int32(c.SeedH), SeedV: int32(c.SeedV), SeedLen: int32(c.SeedLen),
	}
}

// DedupMap maps a plan's comparison rows onto their unique-extension
// representatives: execution runs per unique extension, reports stay per
// comparison by fanning each representative's result back out.
type DedupMap struct {
	// RowUID maps each plan row to its unique-extension ordinal.
	RowUID []int32
	// UniqueRows lists, per ordinal, the representative plan row (the
	// first appearance of that extension).
	UniqueRows []int32
	// Fanout counts, per ordinal, how many rows share the extension
	// (1 = no duplicates).
	Fanout []int32
}

// Unique returns the number of distinct extensions.
func (m *DedupMap) Unique() int { return len(m.UniqueRows) }

// Duplicates returns the number of rows served by another row's
// extension.
func (m *DedupMap) Duplicates() int { return len(m.RowUID) - len(m.UniqueRows) }

// extSpanKey is the exact in-arena identity of one extension: the
// canonical spine spans of both sequences plus the seed geometry. Content
// interning guarantees that, within one arena, identical bytes share one
// canonical span — so span equality is byte equality and the dedup map
// needs no content hash, making in-plan dedup immune to hash collisions
// by construction. The slab indices are part of the span identity:
// offsets are only meaningful within a slab, so two spans at equal
// offsets in different slabs must never collapse.
type extSpanKey struct {
	hSlab, hOff, hLen, vSlab, vOff, vLen int32
	seedH, seedV, seedLen                int32
}

// DedupPlan computes the unique-extension mapping of plan p over the
// arena. Rows with different pool indices but interned-identical bytes
// (and equal seed geometry) collapse onto one representative; identical
// pairs with different seeds, and (H,V) vs (V,H), never do.
func (a *Arena) DedupPlan(p *Plan) *DedupMap {
	n := p.Len()
	m := &DedupMap{RowUID: make([]int32, n)}
	seen := make(map[extSpanKey]int32, n)
	for i := 0; i < n; i++ {
		rh, rv := a.refs[p.H[i]], a.refs[p.V[i]]
		k := extSpanKey{
			hSlab: rh.Slab, hOff: rh.Off, hLen: rh.Len,
			vSlab: rv.Slab, vOff: rv.Off, vLen: rv.Len,
			seedH: p.SeedH[i], seedV: p.SeedV[i], seedLen: p.SeedLen[i],
		}
		uid, ok := seen[k]
		if !ok {
			uid = int32(len(m.UniqueRows))
			seen[k] = uid
			m.UniqueRows = append(m.UniqueRows, int32(i))
			m.Fanout = append(m.Fanout, 0)
		}
		m.RowUID[i] = uid
		m.Fanout[uid]++
	}
	return m
}
