// The sequence pool Ω as the paper's vertex-packing step wants it (§4.3):
// one contiguous byte slab plus offset/length spans, so every layer above —
// partitioner, batcher, driver, kernel — addresses sequences by reference
// instead of re-slicing and re-copying per comparison. A content-hash index
// interns identical sequences on append, the way Scrooge/LOGAN-class
// aligners keep their device-resident pools tight.

package workload

import (
	"fmt"
	"io"

	"github.com/sram-align/xdropipu/internal/seqio"
)

// SeqRef is a sequence span inside an Arena slab: Ω[Off:Off+Len). Spans are
// 8 bytes, so columnar tables of them stay cache-resident where a [][]byte
// pool costs 24 bytes of header plus a pointer chase per sequence.
type SeqRef struct {
	// Off is the span's byte offset into the slab.
	Off int32
	// Len is the span's length in symbols.
	Len int32
}

// End returns the exclusive end offset of the span.
func (r SeqRef) End() int32 { return r.Off + r.Len }

// MaxSlabBytes bounds an arena slab at 2 GiB so 32-bit offsets stay
// exact. Dataset.Validate enforces it centrally for the execution stack;
// TryAppend/AppendFasta surface it as an error for input-fed pools.
const MaxSlabBytes = 1<<31 - 1

// Arena is the packed sequence pool Ω: a single contiguous slab addressed
// by SeqRef spans. Appending interns by content hash — a sequence already
// in the pool is stored once and every later append of the same bytes
// shares its span — and the slab is immutable once datasets or tiles
// reference it, so any number of concurrent jobs share one copy of Ω.
type Arena struct {
	slab []byte
	refs []SeqRef
	// digests holds each sequence's 128-bit content fingerprint (interned
	// duplicates copy their canonical's), the content-addressed identity
	// behind ExtensionKey and the cross-job result cache.
	digests []SeqDigest
	// index maps content hashes to canonical sequence indices (first
	// appearance of each distinct byte string).
	index map[uint64][]int32
	// savedBytes counts slab bytes avoided by interning.
	savedBytes int64
}

// NewArena returns an empty arena with capacity hints: sizeHint slab bytes
// and seqHint sequence slots (either may be 0).
func NewArena(sizeHint, seqHint int) *Arena {
	return &Arena{
		slab:    make([]byte, 0, sizeHint),
		refs:    make([]SeqRef, 0, seqHint),
		digests: make([]SeqDigest, 0, seqHint),
		index:   make(map[uint64][]int32, seqHint),
	}
}

// SeqDigest is a 128-bit content fingerprint of a sequence's bytes: two
// independent 64-bit hashes computed in one pass. Lo doubles as the
// arena's intern-index key; the pair (plus the explicit length carried by
// ExtensionKey) identifies sequence content across arenas, which is what
// lets a result cache recognise byte-identical work from different jobs
// with different pool numbering.
type SeqDigest struct {
	Lo, Hi uint64
}

// digestBytes computes both fingerprint halves in a single pass: Lo is
// FNV-1a 64 (the historical intern hash), Hi a multiply-accumulate with
// an avalanche finaliser. Inlined accumulators, no hash.Hash allocation.
func digestBytes(s []byte) SeqDigest {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	lo := uint64(offset64)
	hi := uint64(0x9e3779b97f4a7c15)
	for _, c := range s {
		lo ^= uint64(c)
		lo *= prime64
		hi = (hi + uint64(c) + 1) * 0x9e3779b97f4a7c15
	}
	// splitmix-style finaliser so short sequences still diffuse into Hi.
	hi ^= hi >> 30
	hi *= 0xbf58476d1ce4e5b9
	hi ^= hi >> 27
	return SeqDigest{Lo: lo, Hi: hi}
}

// Len returns the number of sequences (pool indices) in the arena. Interned
// duplicates count separately: indices are stable, only storage is shared.
func (a *Arena) Len() int { return len(a.refs) }

// Seq returns sequence i as a zero-copy view into the slab. Callers must
// not mutate it once the arena is shared.
func (a *Arena) Seq(i int) []byte {
	r := a.refs[i]
	return a.slab[r.Off:r.End():r.End()]
}

// Ref returns sequence i's span.
func (a *Arena) Ref(i int) SeqRef { return a.refs[i] }

// Digest returns sequence i's 128-bit content fingerprint. Interned
// duplicates share their canonical sequence's digest, so equal digests
// (at equal length) mean equal bytes across any two arenas up to hash
// collision — within one arena, equal spans are the exact test.
func (a *Arena) Digest(i int) SeqDigest { return a.digests[i] }

// Refs returns the span table (shared; callers must not mutate).
func (a *Arena) Refs() []SeqRef { return a.refs }

// Slab returns the backing slab (shared; callers must not mutate). The
// capacity is capped at the length, so an append through the returned
// slice copies instead of scribbling over the arena's spare capacity.
func (a *Arena) Slab() []byte { return a.slab[:len(a.slab):len(a.slab)] }

// SeqViews materialises the [][]byte view over the pool: one zero-copy
// slab span per sequence, in index order.
func (a *Arena) SeqViews() [][]byte {
	seqs := make([][]byte, a.Len())
	for i := range seqs {
		seqs[i] = a.Seq(i)
	}
	return seqs
}

// SlabBytes returns the physical pool size — what the host actually holds
// after interning.
func (a *Arena) SlabBytes() int { return len(a.slab) }

// SeqBytes returns the logical pool size: the sum of span lengths, i.e.
// what Ω would cost without interning.
func (a *Arena) SeqBytes() int64 {
	var n int64
	for _, r := range a.refs {
		n += int64(r.Len)
	}
	return n
}

// SavedBytes reports slab bytes avoided by content interning.
func (a *Arena) SavedBytes() int64 { return a.savedBytes }

// lookup returns the canonical index of s if its bytes are already pooled.
func (a *Arena) lookup(h uint64, s []byte) (int32, bool) {
	for _, ci := range a.index[h] {
		r := a.refs[ci]
		if int(r.Len) == len(s) && string(a.slab[r.Off:r.End()]) == string(s) {
			return ci, true
		}
	}
	return 0, false
}

// TryAppend is Append returning an error instead of panicking when the
// slab would overflow MaxSlabBytes. The check runs only when the bytes
// are new — interned duplicates never grow the slab, so they always fit.
// Paths fed by external input (pipelines, FASTA) use this form.
func (a *Arena) TryAppend(s []byte) (int, error) {
	idx := len(a.refs)
	d := digestBytes(s)
	if ci, ok := a.lookup(d.Lo, s); ok {
		a.refs = append(a.refs, a.refs[ci])
		a.digests = append(a.digests, a.digests[ci])
		a.savedBytes += int64(len(s))
		return idx, nil
	}
	if len(a.slab)+len(s) > MaxSlabBytes {
		return 0, fmt.Errorf("workload: arena slab would exceed %d bytes", MaxSlabBytes)
	}
	ref := SeqRef{Off: int32(len(a.slab)), Len: int32(len(s))}
	a.slab = append(a.slab, s...)
	a.refs = append(a.refs, ref)
	a.digests = append(a.digests, d)
	a.index[d.Lo] = append(a.index[d.Lo], int32(idx))
	return idx, nil
}

// Append adds s to the pool and returns its new sequence index. Storage is
// interned: when identical bytes are already pooled the new index shares
// the existing span and the slab does not grow. Index assignment is always
// sequential, so callers' external numbering (reads, comparisons) survives
// interning untouched. Append panics if the slab would exceed
// MaxSlabBytes — use TryAppend where the input size is not under the
// caller's control.
func (a *Arena) Append(s []byte) int {
	idx, err := a.TryAppend(s)
	if err != nil {
		panic(err.Error())
	}
	return idx
}

// Intern is Append with full deduplication: identical bytes return the
// existing sequence index instead of minting a new one. Use it when the
// caller keeps its own index mapping (e.g. a pipeline deduplicating reads);
// use Append when external numbering must be preserved.
func (a *Arena) Intern(s []byte) int {
	if ci, ok := a.lookup(digestBytes(s).Lo, s); ok {
		a.savedBytes += int64(len(s))
		return int(ci)
	}
	return a.Append(s)
}

// arenaMark snapshots the arena's append state so a failed multi-record
// ingest can be undone atomically.
type arenaMark struct {
	refs, slab int
	saved      int64
}

func (a *Arena) mark() arenaMark {
	return arenaMark{refs: len(a.refs), slab: len(a.slab), saved: a.savedBytes}
}

// rollback restores the arena to a previous mark: spans, digests and slab
// bytes appended since are dropped and their intern-index entries removed,
// so a retry after a failed ingest re-interns nothing twice and mints no
// phantom indices. Must run before any rolled-back span is shared.
func (a *Arena) rollback(m arenaMark) {
	cut := int32(m.refs)
	for i := len(a.refs) - 1; i >= m.refs; i-- {
		// Only canonical spans (first appearance of their bytes) live in
		// the index; scrubbing a bucket is idempotent, so re-visiting the
		// hash of an interned duplicate is harmless.
		lo := a.digests[i].Lo
		bucket := a.index[lo]
		kept := bucket[:0]
		for _, ci := range bucket {
			if ci < cut {
				kept = append(kept, ci)
			}
		}
		if len(kept) == 0 {
			delete(a.index, lo)
		} else {
			a.index[lo] = kept
		}
	}
	a.refs = a.refs[:m.refs]
	a.digests = a.digests[:m.refs]
	a.slab = a.slab[:m.slab]
	a.savedBytes = m.saved
}

// AppendFasta parses FASTA records from r, validating against alpha, and
// packs each record's symbols straight into the slab — no per-record
// sequence allocation. It returns the record IDs in pool-index order.
// Oversized inputs (slab past 2 GiB) surface as an error, not a panic.
//
// The append is atomic: a mid-stream error (bad record, slab overflow)
// rolls the arena back to its pre-call state, so no partial record set
// lands silently and a retry with a corrected stream interns exactly as
// if the failed call never happened.
func (a *Arena) AppendFasta(r io.Reader, alpha *seqio.Alphabet) ([]string, error) {
	m := a.mark()
	var ids []string
	err := seqio.ReadFastaFunc(r, alpha, func(id, desc string, seq []byte) error {
		if _, err := a.TryAppend(seq); err != nil {
			return fmt.Errorf("record %q: %w", id, err)
		}
		ids = append(ids, id)
		return nil
	})
	if err != nil {
		a.rollback(m)
		return nil, err
	}
	return ids, nil
}

// ValidatePlan checks every comparison of p against the arena: sequence
// indices in the pool, seeds in range. This is the single validation
// implementation; Dataset.Validate delegates here through its spine.
func (a *Arena) ValidatePlan(p *Plan) error {
	return validateComparisons(a.Len(), func(i int) int { return int(a.refs[i].Len) }, p.Len(), p.At)
}

// validateComparisons is the one bounds-checking implementation shared by
// Arena.ValidatePlan and Dataset.Validate (satellite: no ad-hoc copies in
// driver or partition).
func validateComparisons(nseqs int, seqLen func(int) int, n int, at func(int) Comparison) error {
	for i := 0; i < n; i++ {
		c := at(i)
		if c.H < 0 || c.H >= nseqs || c.V < 0 || c.V >= nseqs {
			return fmt.Errorf("workload: comparison %d references missing sequence", i)
		}
		lh, lv := seqLen(c.H), seqLen(c.V)
		if c.SeedLen <= 0 || c.SeedH < 0 || c.SeedV < 0 ||
			c.SeedH+c.SeedLen > lh || c.SeedV+c.SeedLen > lv {
			return fmt.Errorf("workload: comparison %d seed out of range", i)
		}
	}
	return nil
}

// NewDataset builds the compatibility view over the arena and a comparison
// plan: Sequences are zero-copy spans of the slab, Comparisons the
// materialised plan rows. The view is what legacy layers consume; the
// spine (arena + plan) is what the execution stack runs on.
func (a *Arena) NewDataset(name string, p *Plan, protein bool) *Dataset {
	d := &Dataset{
		Name:        name,
		Sequences:   a.SeqViews(),
		Comparisons: p.Comparisons(),
		Protein:     protein,
	}
	d.arena, d.plan = a, p
	d.spineSeqs, d.spineCmps = d.Sequences, d.Comparisons
	d.seqFP = seqFingerprintOf(d.Sequences)
	d.cmpFP = cmpFingerprintOf(d.Comparisons)
	return d
}
