// The sequence pool Ω as the paper's vertex-packing step wants it (§4.3):
// a spine of byte slabs plus (slab, offset, length) spans, so every layer
// above — partitioner, batcher, driver, kernel — addresses sequences by
// reference instead of re-slicing and re-copying per comparison. A
// content-hash index interns identical sequences on append, the way
// Scrooge/LOGAN-class aligners keep their device-resident pools tight.
//
// The spine is multi-slab: per-slab offsets stay exact 32-bit, and the
// pool as a whole is unbounded — when the open slab would overflow its
// cap, the arena seals it and rolls a fresh one, so streaming ingestion
// past 2 GiB just keeps appending. Sealed slabs are immutable and can be
// spilled to disk and faulted back on demand (see spill.go), which is
// what makes datasets larger than RAM schedulable.

package workload

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/sram-align/xdropipu/internal/seqio"
)

// SeqRef is a sequence span inside the arena spine: slab Slab, bytes
// [Off, Off+Len). Spans are 12 bytes, so columnar tables of them stay
// cache-resident where a [][]byte pool costs 24 bytes of header plus a
// pointer chase per sequence. Single-slab pools carry Slab == 0
// everywhere, which keeps their encodings and goldens identical to the
// pre-spine stack.
type SeqRef struct {
	// Slab indexes the spine slab holding the span.
	Slab int32
	// Off is the span's byte offset into its slab.
	Off int32
	// Len is the span's length in symbols.
	Len int32
}

// End returns the exclusive end offset of the span within its slab.
func (r SeqRef) End() int32 { return r.Off + r.Len }

// MaxSlabBytes bounds one arena slab at 2 GiB so 32-bit offsets stay
// exact. It is no longer a pool limit: an arena rolls to a fresh slab
// when the open one would overflow, so the spine as a whole is bounded
// only by storage. A single sequence must still fit one slab.
const MaxSlabBytes = 1<<31 - 1

// SlabState describes where a slab is in its lifecycle:
// open → sealed → spilled (⇄ pinned). Only the last slab of a spine can
// be open; only sealed slabs spill; pinned slabs are resident and stay
// so until every pin is released.
type SlabState int

const (
	// SlabOpen marks the growing tail slab; appends land here.
	SlabOpen SlabState = iota
	// SlabSealed marks an immutable resident slab (spillable).
	SlabSealed
	// SlabSpilled marks a sealed slab whose bytes live only in its
	// spill file; access faults it back in.
	SlabSpilled
)

// slab is one segment of the spine. data is accessed through an atomic
// pointer so readers on the hot path never take the arena lock: it holds
// the resident bytes, or nil while the slab is spilled. All other fields
// are guarded by the arena mutex once residency operations are in play.
type slab struct {
	data atomic.Pointer[[]byte]
	// size is the slab's byte length, valid even while spilled.
	size int
	// sealed is set once the slab stops growing.
	sealed bool
	// pins counts Pin holders; a pinned slab cannot be spilled.
	pins int
	// path is the slab's spill file, written at most once ("" = never
	// spilled). Slabs are immutable once sealed, so the file never needs
	// rewriting.
	path string
}

// bytes returns the resident view, or nil while spilled.
func (sl *slab) bytes() []byte {
	if p := sl.data.Load(); p != nil {
		return *p
	}
	return nil
}

func (sl *slab) setBytes(b []byte) { sl.data.Store(&b) }

func (sl *slab) state() SlabState {
	switch {
	case !sl.sealed:
		return SlabOpen
	case sl.data.Load() == nil:
		return SlabSpilled
	default:
		return SlabSealed
	}
}

// Arena is the packed sequence pool Ω: a spine of slabs addressed by
// SeqRef spans. Appending interns by content hash — a sequence already
// in the pool is stored once and every later append of the same bytes
// shares its span — and slab contents are immutable once datasets or
// tiles reference them, so any number of concurrent jobs share one copy
// of Ω. Appends are single-writer: the arena must not be appended to
// concurrently or once shared with the execution stack. Residency
// operations (Spill/Pin/Release) are safe to call concurrently with
// reads and with each other.
type Arena struct {
	slabs []*slab
	refs  []SeqRef
	// digests holds each sequence's 128-bit content fingerprint (interned
	// duplicates copy their canonical's), the content-addressed identity
	// behind ExtensionKey and the cross-job result cache.
	digests []SeqDigest
	// index maps content hashes to canonical sequence indices (first
	// appearance of each distinct byte string).
	index map[uint64][]int32
	// savedBytes counts slab bytes avoided by interning.
	savedBytes int64
	// maxSlab is the per-slab byte cap (default MaxSlabBytes; tests and
	// benchmarks force it small to exercise slab rolls without
	// multi-GiB fixtures).
	maxSlab int

	// mu guards residency state: spillDir, slab seal/pin/path fields and
	// the spilled↔resident transitions. Slab data itself is read through
	// the atomic pointer, so resident readers never contend here.
	mu       sync.Mutex
	spillDir string
	// spills/faults count slab writes to and reads from spill files.
	spills, faults int64
	spilledBytes   int64
}

// NewArena returns an empty arena with capacity hints: sizeHint slab bytes
// and seqHint sequence slots (either may be 0).
func NewArena(sizeHint, seqHint int) *Arena {
	a := &Arena{
		refs:    make([]SeqRef, 0, seqHint),
		digests: make([]SeqDigest, 0, seqHint),
		index:   make(map[uint64][]int32, seqHint),
		maxSlab: MaxSlabBytes,
	}
	if sizeHint > 0 {
		sl := &slab{}
		sl.setBytes(make([]byte, 0, min(sizeHint, MaxSlabBytes)))
		a.slabs = append(a.slabs, sl)
	}
	return a
}

// SetMaxSlabBytes overrides the per-slab byte cap (clamped to
// [1, MaxSlabBytes]). Smaller caps make the arena roll slabs earlier;
// existing spans are untouched, only future appends see the new cap.
// Tests and benchmarks use tiny caps to force multi-slab spines without
// multi-GiB fixtures.
func (a *Arena) SetMaxSlabBytes(n int) {
	if n <= 0 {
		panic("workload: SetMaxSlabBytes requires a positive cap")
	}
	if n > MaxSlabBytes {
		n = MaxSlabBytes
	}
	a.maxSlab = n
}

// MaxSlab returns the arena's per-slab byte cap.
func (a *Arena) MaxSlab() int { return a.maxSlab }

// SeqDigest is a 128-bit content fingerprint of a sequence's bytes: two
// independent 64-bit hashes computed in one pass. Lo doubles as the
// arena's intern-index key; the pair (plus the explicit length carried by
// ExtensionKey) identifies sequence content across arenas, which is what
// lets a result cache recognise byte-identical work from different jobs
// with different pool numbering. Digests are computed from bytes alone,
// so a sequence's digest is independent of which slab it landed in.
type SeqDigest struct {
	Lo, Hi uint64
}

// digestBytes computes both fingerprint halves in a single pass: Lo is
// FNV-1a 64 (the historical intern hash), Hi a multiply-accumulate with
// an avalanche finaliser. Inlined accumulators, no hash.Hash allocation.
func digestBytes(s []byte) SeqDigest {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	lo := uint64(offset64)
	hi := uint64(0x9e3779b97f4a7c15)
	for _, c := range s {
		lo ^= uint64(c)
		lo *= prime64
		hi = (hi + uint64(c) + 1) * 0x9e3779b97f4a7c15
	}
	// splitmix-style finaliser so short sequences still diffuse into Hi.
	hi ^= hi >> 30
	hi *= 0xbf58476d1ce4e5b9
	hi ^= hi >> 27
	return SeqDigest{Lo: lo, Hi: hi}
}

// Len returns the number of sequences (pool indices) in the arena. Interned
// duplicates count separately: indices are stable, only storage is shared.
func (a *Arena) Len() int { return len(a.refs) }

// Seq returns sequence i as a zero-copy view into its slab, faulting the
// slab in from its spill file if needed. Callers must not mutate it once
// the arena is shared.
func (a *Arena) Seq(i int) []byte {
	return a.seqBytes(a.refs[i])
}

// seqBytes resolves a span to its bytes, faulting in the slab if spilled.
func (a *Arena) seqBytes(r SeqRef) []byte {
	return a.SlabView(int(r.Slab))[r.Off:r.End():r.End()]
}

// Ref returns sequence i's span.
func (a *Arena) Ref(i int) SeqRef { return a.refs[i] }

// Digest returns sequence i's 128-bit content fingerprint. Interned
// duplicates share their canonical sequence's digest, so equal digests
// (at equal length) mean equal bytes across any two arenas up to hash
// collision — within one arena, equal spans are the exact test.
func (a *Arena) Digest(i int) SeqDigest { return a.digests[i] }

// Refs returns the span table (shared; callers must not mutate).
func (a *Arena) Refs() []SeqRef { return a.refs }

// NumSlabs returns the number of slabs in the spine.
func (a *Arena) NumSlabs() int { return len(a.slabs) }

// SlabLen returns the byte length of slab si (valid even while spilled).
func (a *Arena) SlabLen(si int) int { return a.slabs[si].size }

// SlabStateOf returns slab si's lifecycle state.
func (a *Arena) SlabStateOf(si int) SlabState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.slabs[si].state()
}

// Slab returns the backing slab of a single-slab arena (shared; callers
// must not mutate). The capacity is capped at the length, so an append
// through the returned slice copies instead of scribbling over the
// arena's spare capacity. It panics on a multi-slab spine — those
// callers must use SlabView/SlabViews and honour SeqRef.Slab.
func (a *Arena) Slab() []byte {
	if len(a.slabs) == 0 {
		return nil
	}
	if len(a.slabs) > 1 {
		panic("workload: Slab() on a multi-slab arena; use SlabViews")
	}
	return a.SlabView(0)
}

// SlabView returns slab si's resident bytes (shared; callers must not
// mutate), faulting the slab in from its spill file if needed. The view
// does not pin the slab — use Pin around execution windows that must not
// refault.
func (a *Arena) SlabView(si int) []byte {
	sl := a.slabs[si]
	if b := sl.bytes(); b != nil || sl.size == 0 {
		return b[:len(b):len(b)]
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b, err := a.faultInLocked(sl)
	if err != nil {
		panic("workload: " + err.Error())
	}
	return b[:len(b):len(b)]
}

// SlabViews returns resident views of every slab in the spine, faulting
// in any spilled ones. Index si of the result backs every span with
// Slab == si.
func (a *Arena) SlabViews() [][]byte {
	views := make([][]byte, len(a.slabs))
	for i := range views {
		views[i] = a.SlabView(i)
	}
	return views
}

// SeqViews materialises the [][]byte view over the pool: one zero-copy
// slab span per sequence, in index order.
func (a *Arena) SeqViews() [][]byte {
	seqs := make([][]byte, a.Len())
	for i := range seqs {
		seqs[i] = a.Seq(i)
	}
	return seqs
}

// SlabBytes returns the physical pool size across all slabs — what the
// host actually holds (or would hold fully resident) after interning.
func (a *Arena) SlabBytes() int {
	var n int
	for _, sl := range a.slabs {
		n += sl.size
	}
	return n
}

// SeqBytes returns the logical pool size: the sum of span lengths, i.e.
// what Ω would cost without interning.
func (a *Arena) SeqBytes() int64 {
	var n int64
	for _, r := range a.refs {
		n += int64(r.Len)
	}
	return n
}

// SavedBytes reports slab bytes avoided by content interning.
func (a *Arena) SavedBytes() int64 { return a.savedBytes }

// lookup returns the canonical index of s if its bytes are already pooled.
// Comparing against a spilled slab faults it in.
func (a *Arena) lookup(h uint64, s []byte) (int32, bool) {
	for _, ci := range a.index[h] {
		r := a.refs[ci]
		if int(r.Len) == len(s) && string(a.seqBytes(r)) == string(s) {
			return ci, true
		}
	}
	return 0, false
}

// openSlab returns the growing tail slab, rolling a fresh one if the
// spine is empty, the tail is sealed, or appending need more bytes would
// overflow the cap.
func (a *Arena) openSlab(need int) *slab {
	if n := len(a.slabs); n > 0 {
		sl := a.slabs[n-1]
		if !sl.sealed && sl.size+need <= a.maxSlab {
			return sl
		}
		if !sl.sealed {
			// Roll: seal the tail in place; the fresh slab below becomes
			// the open one.
			sl.sealed = true
		}
	}
	sl := &slab{}
	sl.setBytes([]byte{})
	a.slabs = append(a.slabs, sl)
	return sl
}

// TryAppend is Append returning an error instead of panicking when a
// single sequence cannot fit one slab. The check runs only when the
// bytes are new — interned duplicates never grow the spine, so they
// always fit. When the open slab would overflow the per-slab cap, the
// arena seals it and rolls a fresh slab instead of erroring: streaming
// ingestion past the cap is the normal path, not a failure.
func (a *Arena) TryAppend(s []byte) (int, error) {
	idx := len(a.refs)
	d := digestBytes(s)
	if ci, ok := a.lookup(d.Lo, s); ok {
		a.refs = append(a.refs, a.refs[ci])
		a.digests = append(a.digests, a.digests[ci])
		a.savedBytes += int64(len(s))
		return idx, nil
	}
	if len(s) > a.maxSlab {
		return 0, fmt.Errorf("workload: sequence of %d bytes exceeds the %d-byte slab cap", len(s), a.maxSlab)
	}
	sl := a.openSlab(len(s))
	b := sl.bytes()
	ref := SeqRef{Slab: int32(len(a.slabs) - 1), Off: int32(len(b)), Len: int32(len(s))}
	b = append(b, s...)
	sl.setBytes(b)
	sl.size = len(b)
	a.refs = append(a.refs, ref)
	a.digests = append(a.digests, d)
	a.index[d.Lo] = append(a.index[d.Lo], int32(idx))
	return idx, nil
}

// Append adds s to the pool and returns its new sequence index. Storage is
// interned: when identical bytes are already pooled the new index shares
// the existing span and the spine does not grow. Index assignment is
// always sequential, so callers' external numbering (reads, comparisons)
// survives interning untouched. Append panics only when a single sequence
// exceeds the per-slab cap — use TryAppend where the input size is not
// under the caller's control.
func (a *Arena) Append(s []byte) int {
	idx, err := a.TryAppend(s)
	if err != nil {
		panic(err.Error())
	}
	return idx
}

// Intern is Append with full deduplication: identical bytes return the
// existing sequence index instead of minting a new one. Use it when the
// caller keeps its own index mapping (e.g. a pipeline deduplicating reads);
// use Append when external numbering must be preserved.
func (a *Arena) Intern(s []byte) int {
	if ci, ok := a.lookup(digestBytes(s).Lo, s); ok {
		a.savedBytes += int64(len(s))
		return int(ci)
	}
	return a.Append(s)
}

// arenaMark snapshots the arena's append state so a failed multi-record
// ingest can be undone atomically — including any slab rolls it caused.
type arenaMark struct {
	refs int
	// slabs is the spine length; open the byte length of the then-tail
	// slab; sealed whether that tail was already sealed.
	slabs  int
	open   int
	sealed bool
	saved  int64
}

func (a *Arena) mark() arenaMark {
	m := arenaMark{refs: len(a.refs), slabs: len(a.slabs), saved: a.savedBytes}
	if m.slabs > 0 {
		tail := a.slabs[m.slabs-1]
		m.open, m.sealed = tail.size, tail.sealed
	}
	return m
}

// rollback restores the arena to a previous mark: spans, digests and slab
// bytes appended since are dropped and their intern-index entries removed,
// so a retry after a failed ingest re-interns nothing twice and mints no
// phantom indices. Slabs rolled since the mark are removed outright and
// the then-tail slab is reopened and truncated to its marked length, so
// the restore is atomic across slab boundaries too. Must run before any
// rolled-back span is shared.
func (a *Arena) rollback(m arenaMark) {
	cut := int32(m.refs)
	for i := len(a.refs) - 1; i >= m.refs; i-- {
		// Only canonical spans (first appearance of their bytes) live in
		// the index; scrubbing a bucket is idempotent, so re-visiting the
		// hash of an interned duplicate is harmless.
		lo := a.digests[i].Lo
		bucket := a.index[lo]
		kept := bucket[:0]
		for _, ci := range bucket {
			if ci < cut {
				kept = append(kept, ci)
			}
		}
		if len(kept) == 0 {
			delete(a.index, lo)
		} else {
			a.index[lo] = kept
		}
	}
	a.refs = a.refs[:m.refs]
	a.digests = a.digests[:m.refs]
	a.slabs = a.slabs[:m.slabs]
	if m.slabs > 0 {
		tail := a.slabs[m.slabs-1]
		// The marked tail cannot have been spilled since the mark: only
		// sealed slabs spill, and if it was open at the mark, rolling it
		// sealed happened after — a state this rollback undoes. If it was
		// already sealed at the mark, nothing was appended to it since.
		if !m.sealed {
			b := tail.bytes()[:m.open]
			tail.setBytes(b)
			tail.size = m.open
			tail.sealed = false
		}
	}
	a.savedBytes = m.saved
}

// AppendFasta parses FASTA records from r, validating against alpha, and
// packs each record's symbols straight into the spine — no per-record
// sequence allocation, rolling to a fresh slab whenever the open one
// fills, so streams larger than one slab ingest without special casing.
// It returns the record IDs in pool-index order.
//
// The append is atomic: a mid-stream error (bad record, oversized single
// sequence) rolls the arena back to its pre-call state — slab rolls
// included — so no partial record set lands silently and a retry with a
// corrected stream interns exactly as if the failed call never happened.
func (a *Arena) AppendFasta(r io.Reader, alpha *seqio.Alphabet) ([]string, error) {
	m := a.mark()
	var ids []string
	err := seqio.ReadFastaFunc(r, alpha, func(id, desc string, seq []byte) error {
		if _, err := a.TryAppend(seq); err != nil {
			return fmt.Errorf("record %q: %w", id, err)
		}
		ids = append(ids, id)
		return nil
	})
	if err != nil {
		a.rollback(m)
		return nil, err
	}
	return ids, nil
}

// ValidatePlan checks every comparison of p against the arena: sequence
// indices in the pool, seeds in range. This is the single validation
// implementation; Dataset.Validate delegates here through its spine.
func (a *Arena) ValidatePlan(p *Plan) error {
	return validateComparisons(a.Len(), func(i int) int { return int(a.refs[i].Len) }, p.Len(), p.At)
}

// validateComparisons is the one bounds-checking implementation shared by
// Arena.ValidatePlan and Dataset.Validate (satellite: no ad-hoc copies in
// driver or partition).
func validateComparisons(nseqs int, seqLen func(int) int, n int, at func(int) Comparison) error {
	for i := 0; i < n; i++ {
		c := at(i)
		if c.H < 0 || c.H >= nseqs || c.V < 0 || c.V >= nseqs {
			return fmt.Errorf("workload: comparison %d references missing sequence", i)
		}
		lh, lv := seqLen(c.H), seqLen(c.V)
		if c.SeedLen <= 0 || c.SeedH < 0 || c.SeedV < 0 ||
			c.SeedH+c.SeedLen > lh || c.SeedV+c.SeedLen > lv {
			return fmt.Errorf("workload: comparison %d seed out of range", i)
		}
	}
	return nil
}

// NewDataset builds the compatibility view over the arena and a comparison
// plan: Sequences are zero-copy spans of the spine, Comparisons the
// materialised plan rows. The view is what legacy layers consume; the
// spine (arena + plan) is what the execution stack runs on. Materialising
// Sequences holds every slab resident — for spill-managed pools use
// NewStreamingDataset instead.
func (a *Arena) NewDataset(name string, p *Plan, protein bool) *Dataset {
	d := &Dataset{
		Name:        name,
		Sequences:   a.SeqViews(),
		Comparisons: p.Comparisons(),
		Protein:     protein,
	}
	d.arena, d.plan = a, p
	d.spineSeqs, d.spineCmps = d.Sequences, d.Comparisons
	d.seqFP = seqFingerprintOf(d.Sequences)
	d.cmpFP = cmpFingerprintOf(d.Comparisons)
	return d
}

// NewStreamingDataset builds a spine-only dataset: no Sequences view is
// materialised, so slabs the execution stack is not actively pinning can
// stay spilled. Everything on the execution path (validation, cost
// estimation, partitioning, kernels, wire encoding) consults the spine;
// only legacy consumers that read d.Sequences directly need the
// materialised view of NewDataset.
func (a *Arena) NewStreamingDataset(name string, p *Plan, protein bool) *Dataset {
	d := &Dataset{
		Name:        name,
		Comparisons: p.Comparisons(),
		Protein:     protein,
	}
	d.arena, d.plan = a, p
	d.spineRefs = a.refs
	d.spineSeqs, d.spineCmps = nil, d.Comparisons
	d.seqFP = seqFingerprintOf(nil)
	d.cmpFP = cmpFingerprintOf(d.Comparisons)
	return d
}
