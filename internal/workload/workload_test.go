package workload

import (
	"strings"
	"testing"
)

func testDataset() *Dataset {
	return &Dataset{
		Name:      "t",
		Sequences: [][]byte{make([]byte, 100), make([]byte, 80), make([]byte, 60)},
		Comparisons: []Comparison{
			{H: 0, V: 1, SeedH: 40, SeedV: 30, SeedLen: 10},
			{H: 1, V: 2, SeedH: 10, SeedV: 20, SeedLen: 10},
		},
	}
}

func TestValidate(t *testing.T) {
	d := testDataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Comparison{
		{H: -1, V: 0, SeedLen: 5},
		{H: 0, V: 9, SeedLen: 5},
		{H: 0, V: 1, SeedH: 95, SeedV: 0, SeedLen: 10},
		{H: 0, V: 1, SeedH: 0, SeedV: 75, SeedLen: 10},
		{H: 0, V: 1, SeedLen: 0},
		{H: 0, V: 1, SeedH: -1, SeedLen: 3},
	}
	for i, c := range bad {
		d := testDataset()
		d.Comparisons = []Comparison{c}
		if err := d.Validate(); err == nil {
			t.Errorf("bad comparison %d accepted", i)
		}
	}
}

func TestExtensionLens(t *testing.T) {
	d := testDataset()
	lh, lv, rh, rv := d.ExtensionLens(d.Comparisons[0])
	if lh != 40 || lv != 30 || rh != 50 || rv != 40 {
		t.Errorf("extensions = %d,%d,%d,%d", lh, lv, rh, rv)
	}
}

func TestComplexity(t *testing.T) {
	d := testDataset()
	if d.Complexity(d.Comparisons[0]) != 8000 {
		t.Errorf("Complexity = %d", d.Complexity(d.Comparisons[0]))
	}
	if d.TheoreticalCells() != 8000+4800 {
		t.Errorf("TheoreticalCells = %d", d.TheoreticalCells())
	}
	if d.TotalSeqBytes() != 240 {
		t.Errorf("TotalSeqBytes = %d", d.TotalSeqBytes())
	}
}

func TestAlignmentSpans(t *testing.T) {
	a := Alignment{Score: 5, BegH: 10, EndH: 30, BegV: 8, EndV: 20}
	if a.SpanH() != 20 || a.SpanV() != 12 {
		t.Errorf("spans = %d, %d", a.SpanH(), a.SpanV())
	}
}

// TestValidateSeedRangeMessages: out-of-range seeds are reported as seed
// errors (not missing-sequence errors), since service clients see these
// messages verbatim.
func TestValidateSeedRangeMessages(t *testing.T) {
	outOfRange := []Comparison{
		{H: 0, V: 1, SeedH: 91, SeedV: 0, SeedLen: 10},  // H seed past end
		{H: 0, V: 1, SeedH: 0, SeedV: 71, SeedLen: 10},  // V seed past end
		{H: 0, V: 1, SeedH: -5, SeedV: 0, SeedLen: 10},  // negative H seed
		{H: 0, V: 1, SeedH: 0, SeedV: -1, SeedLen: 10},  // negative V seed
		{H: 0, V: 1, SeedH: 0, SeedV: 0, SeedLen: 200},  // seed longer than both
		{H: 0, V: 1, SeedH: 10, SeedV: 10, SeedLen: -3}, // non-positive seed
	}
	for i, c := range outOfRange {
		d := testDataset()
		d.Comparisons = []Comparison{c}
		err := d.Validate()
		if err == nil {
			t.Errorf("case %d: out-of-range seed accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), "seed out of range") {
			t.Errorf("case %d: error %q does not report the seed", i, err)
		}
	}
	// Boundary cases stay valid: seed ending exactly at a sequence end.
	d := testDataset()
	d.Comparisons = []Comparison{{H: 0, V: 1, SeedH: 90, SeedV: 70, SeedLen: 10}}
	if err := d.Validate(); err != nil {
		t.Errorf("boundary seed rejected: %v", err)
	}
}
