package workload

import "testing"

func testDataset() *Dataset {
	return &Dataset{
		Name:      "t",
		Sequences: [][]byte{make([]byte, 100), make([]byte, 80), make([]byte, 60)},
		Comparisons: []Comparison{
			{H: 0, V: 1, SeedH: 40, SeedV: 30, SeedLen: 10},
			{H: 1, V: 2, SeedH: 10, SeedV: 20, SeedLen: 10},
		},
	}
}

func TestValidate(t *testing.T) {
	d := testDataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Comparison{
		{H: -1, V: 0, SeedLen: 5},
		{H: 0, V: 9, SeedLen: 5},
		{H: 0, V: 1, SeedH: 95, SeedV: 0, SeedLen: 10},
		{H: 0, V: 1, SeedH: 0, SeedV: 75, SeedLen: 10},
		{H: 0, V: 1, SeedLen: 0},
		{H: 0, V: 1, SeedH: -1, SeedLen: 3},
	}
	for i, c := range bad {
		d := testDataset()
		d.Comparisons = []Comparison{c}
		if err := d.Validate(); err == nil {
			t.Errorf("bad comparison %d accepted", i)
		}
	}
}

func TestExtensionLens(t *testing.T) {
	d := testDataset()
	lh, lv, rh, rv := d.ExtensionLens(d.Comparisons[0])
	if lh != 40 || lv != 30 || rh != 50 || rv != 40 {
		t.Errorf("extensions = %d,%d,%d,%d", lh, lv, rh, rv)
	}
}

func TestComplexity(t *testing.T) {
	d := testDataset()
	if d.Complexity(d.Comparisons[0]) != 8000 {
		t.Errorf("Complexity = %d", d.Complexity(d.Comparisons[0]))
	}
	if d.TheoreticalCells() != 8000+4800 {
		t.Errorf("TheoreticalCells = %d", d.TheoreticalCells())
	}
	if d.TotalSeqBytes() != 240 {
		t.Errorf("TotalSeqBytes = %d", d.TotalSeqBytes())
	}
}

func TestAlignmentSpans(t *testing.T) {
	a := Alignment{Score: 5, BegH: 10, EndH: 30, BegV: 8, EndV: 20}
	if a.SpanH() != 20 || a.SpanV() != 12 {
		t.Errorf("spans = %d, %d", a.SpanH(), a.SpanV())
	}
}
