package workload

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

// rolledArena builds a spine with a tiny per-slab cap: four 4-byte
// sequences under an 8-byte cap, so the pool spans two slabs.
func rolledArena(t *testing.T) *Arena {
	t.Helper()
	a := NewArena(0, 4)
	a.SetMaxSlabBytes(8)
	for _, s := range []string{"AAAA", "CCCC", "GGGG", "TTTT"} {
		a.Append([]byte(s))
	}
	if a.NumSlabs() != 2 {
		t.Fatalf("spine has %d slabs, want 2", a.NumSlabs())
	}
	return a
}

func TestArenaSlabRoll(t *testing.T) {
	a := rolledArena(t)
	// Spans: slab offsets restart at every roll.
	if r := a.Ref(0); r != (SeqRef{Slab: 0, Off: 0, Len: 4}) {
		t.Errorf("Ref(0) = %+v", r)
	}
	if r := a.Ref(2); r != (SeqRef{Slab: 1, Off: 0, Len: 4}) {
		t.Errorf("Ref(2) = %+v (roll did not reset offsets)", r)
	}
	if got := a.SlabBytes(); got != 16 {
		t.Errorf("SlabBytes = %d, want 16", got)
	}
	if got := string(a.Seq(2)); got != "GGGG" {
		t.Errorf("Seq(2) = %q", got)
	}
	// The first slab sealed when it rolled; the tail is open.
	if st := a.SlabStateOf(0); st != SlabSealed {
		t.Errorf("slab 0 state = %v, want sealed", st)
	}
	if st := a.SlabStateOf(1); st != SlabOpen {
		t.Errorf("slab 1 state = %v, want open", st)
	}
	// A single sequence over the cap is the only remaining append error.
	if _, err := a.TryAppend([]byte("AAAAAAAAA")); err == nil {
		t.Error("9-byte sequence accepted under an 8-byte slab cap")
	}
	// Appending past the cap in aggregate keeps rolling.
	a.Append([]byte("AACCGGTT"))
	if a.NumSlabs() != 3 {
		t.Errorf("spine has %d slabs after a full-slab append, want 3", a.NumSlabs())
	}
}

// TestInterningAcrossSlabRoll is the satellite coverage for interning and
// digest stability across slab boundaries: a duplicate appended after a
// roll must still share its canonical's span and digest, exactly as if
// the pool were one slab.
func TestInterningAcrossSlabRoll(t *testing.T) {
	a := rolledArena(t)
	// "AAAA" is canonical in slab 0; the pool has rolled to slab 1 since.
	i := a.Append([]byte("AAAA"))
	if a.Ref(i) != a.Ref(0) {
		t.Errorf("duplicate after roll minted span %+v, canonical is %+v", a.Ref(i), a.Ref(0))
	}
	if a.Digest(i) != a.Digest(0) {
		t.Errorf("duplicate after roll has digest %+v, canonical %+v", a.Digest(i), a.Digest(0))
	}
	if a.SavedBytes() != 4 {
		t.Errorf("SavedBytes = %d, want 4", a.SavedBytes())
	}
	if a.SlabBytes() != 16 {
		t.Errorf("duplicate grew the spine to %d bytes", a.SlabBytes())
	}
	// Intern resolves cross-slab too.
	if ci := a.Intern([]byte("GGGG")); ci != 2 {
		t.Errorf("Intern resolved to %d, want 2", ci)
	}

	// Digests depend on bytes alone, not slab layout: the same pool
	// packed into one slab fingerprints identically.
	b := NewArena(0, 4)
	for _, s := range []string{"AAAA", "CCCC", "GGGG", "TTTT"} {
		b.Append([]byte(s))
	}
	if b.NumSlabs() != 1 {
		t.Fatalf("control arena has %d slabs", b.NumSlabs())
	}
	for i := 0; i < 4; i++ {
		if a.Digest(i) != b.Digest(i) {
			t.Errorf("seq %d digest differs across slab layouts: %+v vs %+v", i, a.Digest(i), b.Digest(i))
		}
	}
}

// TestDedupPlanAcrossSlabs pins the slab field of the span key: spans at
// equal offsets in different slabs must never collapse, while true
// duplicates keep collapsing across a roll.
func TestDedupPlanAcrossSlabs(t *testing.T) {
	a := rolledArena(t)
	// Ref(0) and Ref(2) are both {Off:0, Len:4} — in different slabs.
	dup := a.Append([]byte("AAAA")) // interns onto Ref(0)
	p := PlanOf([]Comparison{
		{H: 0, V: 1, SeedH: 0, SeedV: 0, SeedLen: 4},
		{H: 2, V: 3, SeedH: 0, SeedV: 0, SeedLen: 4},   // same offsets, other slab
		{H: dup, V: 1, SeedH: 0, SeedV: 0, SeedLen: 4}, // true duplicate of row 0
	})
	dm := a.DedupPlan(p)
	if dm.Unique() != 2 {
		t.Fatalf("unique extensions = %d, want 2 (rows 0+2 collapse, row 1 distinct)", dm.Unique())
	}
	if dm.RowUID[0] != dm.RowUID[2] {
		t.Errorf("interned duplicate after a slab roll did not collapse")
	}
	if dm.RowUID[0] == dm.RowUID[1] {
		t.Errorf("spans at equal offsets in different slabs collapsed")
	}
}

func TestSpillFaultPinLifecycle(t *testing.T) {
	dir := t.TempDir()
	a := rolledArena(t)
	want := make([]string, a.Len())
	for i := range want {
		want[i] = string(append([]byte(nil), a.Seq(i)...))
	}
	a.EnableSpill(dir)
	a.Seal()

	released, err := a.Spill()
	if err != nil {
		t.Fatal(err)
	}
	if released != 16 {
		t.Errorf("Spill released %d bytes, want 16", released)
	}
	for si := 0; si < a.NumSlabs(); si++ {
		if st := a.SlabStateOf(si); st != SlabSpilled {
			t.Errorf("slab %d state = %v after spill, want spilled", si, st)
		}
	}
	st := a.Residency()
	if st.Spilled != 2 || st.Resident != 0 || st.SpilledBytes != 16 || st.Spills != 2 {
		t.Errorf("residency after spill = %+v", st)
	}

	// Reads fault slabs back in transparently and bytes survive the trip.
	for i := range want {
		if got := string(a.Seq(i)); got != want[i] {
			t.Errorf("seq %d after fault-in = %q, want %q", i, got, want[i])
		}
	}
	if st := a.Residency(); st.Faults < 2 || st.Resident != 2 {
		t.Errorf("residency after fault-in = %+v", st)
	}

	// Pinned slabs refuse to spill; unpinned ones drop again (their spill
	// files are written once, never rewritten).
	pin, err := a.Pin([]int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if views := pin.Slabs(); len(views) != 2 || views[0] != nil || views[1] == nil {
		t.Fatalf("pin views = %v-slab table, want [nil, bytes]", views)
	}
	if _, err := a.Spill(); err != nil {
		t.Fatal(err)
	}
	if got := a.SlabStateOf(1); got != SlabSealed {
		t.Errorf("pinned slab spilled: state %v", got)
	}
	if got := a.SlabStateOf(0); got != SlabSpilled {
		t.Errorf("unpinned slab kept resident: state %v", got)
	}
	if got := string(pin.Slabs()[1][0:4]); got != "GGGG" {
		t.Errorf("pinned view corrupt: %q", got)
	}
	pin.Release()
	pin.Release() // idempotent
	if _, err := a.Spill(); err != nil {
		t.Fatal(err)
	}
	if got := a.SlabStateOf(1); got != SlabSpilled {
		t.Errorf("released slab did not spill: state %v", got)
	}

	// Hostile pin sets fail cleanly without leaking pins.
	if _, err := a.Pin([]int32{5}); err == nil {
		t.Error("pin of slab 5 in a 2-slab spine succeeded")
	}

	// Close faults everything back and removes the spill files.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("%d spill files left after Close", len(entries))
	}
	for i := range want {
		if got := string(a.Seq(i)); got != want[i] {
			t.Errorf("seq %d after Close = %q, want %q", i, got, want[i])
		}
	}
}

// TestSpineConcurrentPinSpill soaks the residency lock: concurrent
// pin/read/release cycles race a spiller. Run under -race this proves
// readers holding pins never observe a spilled view.
func TestSpineConcurrentPinSpill(t *testing.T) {
	a := NewArena(0, 8)
	a.SetMaxSlabBytes(16)
	var seqs [][]byte
	for i := 0; i < 8; i++ {
		seqs = append(seqs, bytes.Repeat([]byte{"ACGT"[i%4]}, 12))
		a.Append(seqs[i])
	}
	a.EnableSpill(t.TempDir())
	a.Seal()
	nslabs := a.NumSlabs()
	if nslabs < 4 {
		t.Fatalf("spine has %d slabs, want ≥4", nslabs)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				si := int32((w*31 + i) % nslabs)
				pin, err := a.Pin([]int32{si})
				if err != nil {
					t.Error(err)
					return
				}
				v := pin.Slabs()[si]
				if len(v) == 0 || (v[0] != 'A' && v[0] != 'C' && v[0] != 'G' && v[0] != 'T') {
					t.Errorf("pinned slab %d corrupt: %q", si, v)
					pin.Release()
					return
				}
				pin.Release()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := a.Spill(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreArenaSlabsRoundTrip: a multi-slab spine survives the
// slabs+refs round trip with identical spans, digests and interning.
func TestRestoreArenaSlabsRoundTrip(t *testing.T) {
	a := rolledArena(t)
	a.Append([]byte("AAAA")) // interned duplicate
	r, err := RestoreArenaSlabs(a.SlabViews(), a.Refs())
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != a.Len() || r.NumSlabs() != a.NumSlabs() {
		t.Fatalf("restored %d seqs / %d slabs, want %d / %d", r.Len(), r.NumSlabs(), a.Len(), a.NumSlabs())
	}
	for i := 0; i < a.Len(); i++ {
		if r.Ref(i) != a.Ref(i) || r.Digest(i) != a.Digest(i) {
			t.Errorf("seq %d: restored (%+v, %+v), want (%+v, %+v)",
				i, r.Ref(i), r.Digest(i), a.Ref(i), a.Digest(i))
		}
	}
	if r.SavedBytes() != a.SavedBytes() {
		t.Errorf("restored SavedBytes %d, want %d", r.SavedBytes(), a.SavedBytes())
	}
	// Restored slabs come back sealed: the next append rolls.
	r.Append([]byte("AACC"))
	if r.NumSlabs() != a.NumSlabs()+1 {
		t.Errorf("append to restored spine landed in an adopted slab")
	}

	// Hostile inputs: slab index out of range, span past its slab.
	if _, err := RestoreArenaSlabs([][]byte{make([]byte, 4)}, []SeqRef{{Slab: 1, Len: 2}}); err == nil {
		t.Error("out-of-range slab index accepted")
	}
	if _, err := RestoreArenaSlabs([][]byte{make([]byte, 4)}, []SeqRef{{Off: 2, Len: 4}}); err == nil {
		t.Error("span past its slab accepted")
	}
}

// TestStreamingDatasetSpine: a spine-only dataset validates, measures and
// clones without a materialised Sequences view.
func TestStreamingDatasetSpine(t *testing.T) {
	a := rolledArena(t)
	p := PlanOf([]Comparison{{H: 0, V: 2, SeedH: 0, SeedV: 0, SeedLen: 4}})
	d := a.NewStreamingDataset("stream", p, false)
	if d.Sequences != nil {
		t.Fatal("streaming dataset materialised Sequences")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumSeqs() != 4 || d.SeqLen(2) != 4 {
		t.Errorf("NumSeqs/SeqLen = %d/%d", d.NumSeqs(), d.SeqLen(2))
	}
	if d.TotalSeqBytes() != 16 {
		t.Errorf("TotalSeqBytes = %d", d.TotalSeqBytes())
	}
	if got := d.Complexity(d.Comparisons[0]); got != 16 {
		t.Errorf("Complexity = %d", got)
	}
	arena, plan := d.Spine()
	if arena != a || plan != p {
		t.Error("streaming dataset rebuilt its spine")
	}
	c := d.Clone()
	if len(c.Sequences) != 4 || string(c.Sequences[2]) != "GGGG" {
		t.Errorf("clone did not materialise the pool: %q", c.Sequences)
	}
}

func TestSetMaxSlabBytesValidation(t *testing.T) {
	a := NewArena(0, 0)
	defer func() {
		if recover() == nil {
			t.Error("non-positive cap accepted")
		}
	}()
	a.SetMaxSlabBytes(0)
}

func TestSlabPanicsOnMultiSlabSpine(t *testing.T) {
	a := rolledArena(t)
	defer func() {
		if recover() == nil {
			t.Error("Slab() on a multi-slab spine did not panic")
		}
	}()
	_ = a.Slab()
}

func TestSpillBeforeEnableIsNoop(t *testing.T) {
	a := rolledArena(t)
	a.Seal()
	released, err := a.Spill()
	if err != nil || released != 0 {
		t.Errorf("Spill without EnableSpill: released %d, err %v", released, err)
	}
	if st := a.Residency(); st.Spilled != 0 {
		t.Errorf("slabs spilled without a spill dir: %+v", st)
	}
}

func TestSpillFaultErrorSurfacesOnPin(t *testing.T) {
	dir := t.TempDir()
	a := rolledArena(t)
	a.EnableSpill(dir)
	a.Seal()
	if _, err := a.Spill(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the spill state: delete the files behind the arena's back.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		os.Remove(fmt.Sprintf("%s/%s", dir, e.Name()))
	}
	if _, err := a.Pin([]int32{0}); err == nil {
		t.Error("pin of a slab with a missing spill file succeeded")
	}
}
