package workload

import (
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/seqio"
)

// snapshotArena captures the externally observable arena state.
type arenaSnapshot struct {
	n, slab int
	saved   int64
}

func snapshot(a *Arena) arenaSnapshot {
	return arenaSnapshot{n: a.Len(), slab: a.SlabBytes(), saved: a.SavedBytes()}
}

func TestAppendFastaRollbackOnError(t *testing.T) {
	a := NewArena(0, 4)
	pre := a.Append([]byte("ACGTACGTACGT"))

	before := snapshot(a)
	// Two good records land, then a bad symbol aborts the stream.
	bad := ">r1\nTTTTGGGG\n>r2\nCCCCAAAA\n>r3\nACGTZZZZ\n"
	ids, err := a.AppendFasta(strings.NewReader(bad), seqio.DNAAlphabet)
	if err == nil {
		t.Fatal("invalid record accepted")
	}
	if ids != nil {
		t.Fatalf("failed append returned ids %v", ids)
	}
	if got := snapshot(a); got != before {
		t.Fatalf("failed append left partial state: %+v, want %+v", got, before)
	}

	// Retry with the stream fixed. The records must intern exactly as if
	// the failed call never happened: r1/r2 appear once, a record equal
	// to the pre-existing pool sequence shares its span, and re-appending
	// r1's bytes afterwards interns against the retried copy (no stale or
	// duplicated index entries from the rolled-back call).
	good := ">r1\nTTTTGGGG\n>r2\nCCCCAAAA\n>r3\nACGTACGTACGT\n"
	ids, err = a.AppendFasta(strings.NewReader(good), seqio.DNAAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("retry appended %d records, want 3", len(ids))
	}
	if a.Len() != 4 {
		t.Fatalf("pool has %d sequences, want 4", a.Len())
	}
	if string(a.Seq(1)) != "TTTTGGGG" || string(a.Seq(2)) != "CCCCAAAA" {
		t.Fatalf("retried records corrupt: %q %q", a.Seq(1), a.Seq(2))
	}
	if a.Ref(3) != a.Ref(pre) {
		t.Errorf("record equal to pre-existing sequence did not intern")
	}
	slabAfterRetry := a.SlabBytes()
	if i := a.Append([]byte("TTTTGGGG")); a.Ref(i) != a.Ref(1) {
		t.Errorf("re-append after rollback minted a new span (double-intern)")
	}
	if a.SlabBytes() != slabAfterRetry {
		t.Errorf("re-append after rollback grew the slab: %d -> %d", slabAfterRetry, a.SlabBytes())
	}
}

func TestAppendFastaRollbackPreservesPreexistingInterning(t *testing.T) {
	a := NewArena(0, 2)
	a.Append([]byte("ACGTACGT"))

	// The failing stream interns a duplicate of the pre-existing sequence
	// before hitting the bad record; rollback must not scrub the
	// pre-existing index entry while undoing the duplicate.
	bad := ">dup\nACGTACGT\n>bad\nNOPE!\n"
	if _, err := a.AppendFasta(strings.NewReader(bad), seqio.DNAAlphabet); err == nil {
		t.Fatal("invalid record accepted")
	}
	if a.Len() != 1 || a.SavedBytes() != 0 {
		t.Fatalf("rollback left state: len %d saved %d", a.Len(), a.SavedBytes())
	}
	if i := a.Append([]byte("ACGTACGT")); a.Ref(i) != a.Ref(0) {
		t.Errorf("pre-existing sequence no longer interns after rollback")
	}
}

// TestAppendFastaRollbackAcrossSlabBoundary: a mid-stream error after the
// spine has rolled to fresh slabs must restore the whole spine atomically
// — slab count, tail slab fill, open/sealed state, spans and the intern
// index all back to the mark.
func TestAppendFastaRollbackAcrossSlabBoundary(t *testing.T) {
	a := NewArena(0, 4)
	a.SetMaxSlabBytes(8)
	a.Append([]byte("AAAA")) // slab 0 half full, open

	before := snapshot(a)
	// r1 fills slab 0 to the cap, r2 rolls a fresh slab, r3 aborts.
	bad := ">r1\nCCCC\n>r2\nGGGGTTTT\n>r3\nZZ!\n"
	if _, err := a.AppendFasta(strings.NewReader(bad), seqio.DNAAlphabet); err == nil {
		t.Fatal("invalid record accepted")
	}
	if got := snapshot(a); got != before {
		t.Fatalf("cross-slab rollback left partial state: %+v, want %+v", got, before)
	}
	if a.NumSlabs() != 1 {
		t.Fatalf("rollback left %d slabs, want 1", a.NumSlabs())
	}
	if st := a.SlabStateOf(0); st != SlabOpen {
		t.Fatalf("rollback left the tail slab %v, want open", st)
	}

	// The reopened tail keeps accepting appends in place: the next small
	// sequence lands in slab 0 at the pre-failure offset, not a new slab.
	if i := a.Append([]byte("TT")); a.Ref(i) != (SeqRef{Slab: 0, Off: 4, Len: 2}) {
		t.Fatalf("append after rollback landed at %+v, want {0 4 2}", a.Ref(i))
	}

	// A clean retry rolls slabs exactly as a fresh stream would (slab 0 is
	// at 6/8 bytes now, so r1 rolls to slab 1 and r2 to slab 2), and a
	// record equal to the pre-existing slab-0 sequence interns across the
	// boundary (no stale index entries survived the rollback).
	good := ">r1\nCCCC\n>r2\nGGGGTTTT\n>r3\nAAAA\n"
	ids, err := a.AppendFasta(strings.NewReader(good), seqio.DNAAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("retry appended %d records, want 3", len(ids))
	}
	if a.NumSlabs() != 3 {
		t.Errorf("retry left %d slabs, want 3", a.NumSlabs())
	}
	if a.Ref(a.Len()-1) != a.Ref(0) {
		t.Errorf("record equal to pre-existing sequence did not intern across the slab boundary")
	}
	if string(a.Seq(3)) != "GGGGTTTT" {
		t.Errorf("retried roll record corrupt: %q", a.Seq(3))
	}
}

// TestAppendFastaRollbackSealedTail: when the tail slab was already sealed
// at the mark, rollback must not reopen it — the next append still rolls.
func TestAppendFastaRollbackSealedTail(t *testing.T) {
	a := NewArena(0, 4)
	a.SetMaxSlabBytes(8)
	a.Append([]byte("AAAA"))
	a.Seal()

	before := snapshot(a)
	bad := ">r1\nCCCCGGGG\n>bad\nNOPE!\n" // r1 rolls a fresh slab, then abort
	if _, err := a.AppendFasta(strings.NewReader(bad), seqio.DNAAlphabet); err == nil {
		t.Fatal("invalid record accepted")
	}
	if got := snapshot(a); got != before {
		t.Fatalf("rollback left partial state: %+v, want %+v", got, before)
	}
	if a.NumSlabs() != 1 {
		t.Fatalf("rollback left %d slabs, want 1", a.NumSlabs())
	}
	if st := a.SlabStateOf(0); st != SlabSealed {
		t.Fatalf("rollback reopened a sealed slab: state %v", st)
	}
	if i := a.Append([]byte("TT")); a.Ref(i) != (SeqRef{Slab: 1, Off: 0, Len: 2}) {
		t.Errorf("append after rollback landed at %+v, want a fresh slab", a.Ref(i))
	}
}

func TestValidateCatchesInPlaceComparisonMutation(t *testing.T) {
	d := &Dataset{
		Sequences: [][]byte{[]byte("ACGTACGTACGTACGTACGT"), []byte("TTTTCCCCGGGGAAAATTTT")},
		Comparisons: []Comparison{
			{H: 0, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4},
		},
	}
	_, plan := d.Spine()
	if got := plan.At(0).SeedH; got != 2 {
		t.Fatalf("spine SeedH = %d", got)
	}

	// In-place mutation: slice identity unchanged, previously served
	// stale results silently.
	d.Comparisons[0].SeedH = 5
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, plan = d.Spine(); plan.At(0).SeedH != 5 {
		t.Errorf("Validate did not refresh the stale plan: SeedH = %d, want 5", plan.At(0).SeedH)
	}
}

func TestValidateCatchesInPlaceSequenceMutation(t *testing.T) {
	d := &Dataset{
		Sequences: [][]byte{[]byte("ACGTACGTACGTACGTACGT"), []byte("TTTTCCCCGGGGAAAATTTT")},
		Comparisons: []Comparison{
			{H: 0, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4},
		},
	}
	arena, _ := d.Spine()
	if arena.Seq(0)[0] != 'A' {
		t.Fatal("unexpected spine content")
	}

	d.Sequences[0][0] = 'G' // first-element probe catches boundary edits
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	arena, _ = d.Spine()
	if arena.Seq(0)[0] != 'G' {
		t.Errorf("Validate did not refresh the stale arena: %q", arena.Seq(0))
	}
}

func TestInvalidateForcesRebuild(t *testing.T) {
	d := &Dataset{
		Sequences: [][]byte{[]byte("ACGTACGTACGTACGTACGT"), []byte("TTTTCCCCGGGGAAAATTTT")},
		Comparisons: []Comparison{
			{H: 0, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4},
			{H: 0, V: 1, SeedH: 3, SeedV: 3, SeedLen: 4},
			{H: 0, V: 1, SeedH: 4, SeedV: 4, SeedLen: 4},
		},
	}
	arenaBefore, planBefore := d.Spine()

	// An interior edit is invisible to the O(1) fingerprint (only
	// boundary rows are probed) — the documented limit of the recheck —
	// so the spine legitimately stays cached...
	d.Comparisons[1].SeedH = 9
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, plan := d.Spine(); plan != planBefore {
		t.Skip("interior edit unexpectedly caught; fingerprint got stronger")
	}

	// ...until the producer declares the mutation explicitly.
	d.Invalidate()
	arena, plan := d.Spine()
	if plan == planBefore || arena == arenaBefore {
		t.Fatal("Invalidate did not drop the cached spine")
	}
	if got := plan.At(1).SeedH; got != 9 {
		t.Errorf("rebuilt plan SeedH = %d, want 9", got)
	}
}
