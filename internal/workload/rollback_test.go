package workload

import (
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/seqio"
)

// snapshotArena captures the externally observable arena state.
type arenaSnapshot struct {
	n, slab int
	saved   int64
}

func snapshot(a *Arena) arenaSnapshot {
	return arenaSnapshot{n: a.Len(), slab: a.SlabBytes(), saved: a.SavedBytes()}
}

func TestAppendFastaRollbackOnError(t *testing.T) {
	a := NewArena(0, 4)
	pre := a.Append([]byte("ACGTACGTACGT"))

	before := snapshot(a)
	// Two good records land, then a bad symbol aborts the stream.
	bad := ">r1\nTTTTGGGG\n>r2\nCCCCAAAA\n>r3\nACGTZZZZ\n"
	ids, err := a.AppendFasta(strings.NewReader(bad), seqio.DNAAlphabet)
	if err == nil {
		t.Fatal("invalid record accepted")
	}
	if ids != nil {
		t.Fatalf("failed append returned ids %v", ids)
	}
	if got := snapshot(a); got != before {
		t.Fatalf("failed append left partial state: %+v, want %+v", got, before)
	}

	// Retry with the stream fixed. The records must intern exactly as if
	// the failed call never happened: r1/r2 appear once, a record equal
	// to the pre-existing pool sequence shares its span, and re-appending
	// r1's bytes afterwards interns against the retried copy (no stale or
	// duplicated index entries from the rolled-back call).
	good := ">r1\nTTTTGGGG\n>r2\nCCCCAAAA\n>r3\nACGTACGTACGT\n"
	ids, err = a.AppendFasta(strings.NewReader(good), seqio.DNAAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("retry appended %d records, want 3", len(ids))
	}
	if a.Len() != 4 {
		t.Fatalf("pool has %d sequences, want 4", a.Len())
	}
	if string(a.Seq(1)) != "TTTTGGGG" || string(a.Seq(2)) != "CCCCAAAA" {
		t.Fatalf("retried records corrupt: %q %q", a.Seq(1), a.Seq(2))
	}
	if a.Ref(3) != a.Ref(pre) {
		t.Errorf("record equal to pre-existing sequence did not intern")
	}
	slabAfterRetry := a.SlabBytes()
	if i := a.Append([]byte("TTTTGGGG")); a.Ref(i) != a.Ref(1) {
		t.Errorf("re-append after rollback minted a new span (double-intern)")
	}
	if a.SlabBytes() != slabAfterRetry {
		t.Errorf("re-append after rollback grew the slab: %d -> %d", slabAfterRetry, a.SlabBytes())
	}
}

func TestAppendFastaRollbackPreservesPreexistingInterning(t *testing.T) {
	a := NewArena(0, 2)
	a.Append([]byte("ACGTACGT"))

	// The failing stream interns a duplicate of the pre-existing sequence
	// before hitting the bad record; rollback must not scrub the
	// pre-existing index entry while undoing the duplicate.
	bad := ">dup\nACGTACGT\n>bad\nNOPE!\n"
	if _, err := a.AppendFasta(strings.NewReader(bad), seqio.DNAAlphabet); err == nil {
		t.Fatal("invalid record accepted")
	}
	if a.Len() != 1 || a.SavedBytes() != 0 {
		t.Fatalf("rollback left state: len %d saved %d", a.Len(), a.SavedBytes())
	}
	if i := a.Append([]byte("ACGTACGT")); a.Ref(i) != a.Ref(0) {
		t.Errorf("pre-existing sequence no longer interns after rollback")
	}
}

func TestValidateCatchesInPlaceComparisonMutation(t *testing.T) {
	d := &Dataset{
		Sequences: [][]byte{[]byte("ACGTACGTACGTACGTACGT"), []byte("TTTTCCCCGGGGAAAATTTT")},
		Comparisons: []Comparison{
			{H: 0, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4},
		},
	}
	_, plan := d.Spine()
	if got := plan.At(0).SeedH; got != 2 {
		t.Fatalf("spine SeedH = %d", got)
	}

	// In-place mutation: slice identity unchanged, previously served
	// stale results silently.
	d.Comparisons[0].SeedH = 5
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, plan = d.Spine(); plan.At(0).SeedH != 5 {
		t.Errorf("Validate did not refresh the stale plan: SeedH = %d, want 5", plan.At(0).SeedH)
	}
}

func TestValidateCatchesInPlaceSequenceMutation(t *testing.T) {
	d := &Dataset{
		Sequences: [][]byte{[]byte("ACGTACGTACGTACGTACGT"), []byte("TTTTCCCCGGGGAAAATTTT")},
		Comparisons: []Comparison{
			{H: 0, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4},
		},
	}
	arena, _ := d.Spine()
	if arena.Seq(0)[0] != 'A' {
		t.Fatal("unexpected spine content")
	}

	d.Sequences[0][0] = 'G' // first-element probe catches boundary edits
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	arena, _ = d.Spine()
	if arena.Seq(0)[0] != 'G' {
		t.Errorf("Validate did not refresh the stale arena: %q", arena.Seq(0))
	}
}

func TestInvalidateForcesRebuild(t *testing.T) {
	d := &Dataset{
		Sequences: [][]byte{[]byte("ACGTACGTACGTACGTACGT"), []byte("TTTTCCCCGGGGAAAATTTT")},
		Comparisons: []Comparison{
			{H: 0, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4},
			{H: 0, V: 1, SeedH: 3, SeedV: 3, SeedLen: 4},
			{H: 0, V: 1, SeedH: 4, SeedV: 4, SeedLen: 4},
		},
	}
	arenaBefore, planBefore := d.Spine()

	// An interior edit is invisible to the O(1) fingerprint (only
	// boundary rows are probed) — the documented limit of the recheck —
	// so the spine legitimately stays cached...
	d.Comparisons[1].SeedH = 9
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, plan := d.Spine(); plan != planBefore {
		t.Skip("interior edit unexpectedly caught; fingerprint got stronger")
	}

	// ...until the producer declares the mutation explicitly.
	d.Invalidate()
	arena, plan := d.Spine()
	if plan == planBefore || arena == arenaBefore {
		t.Fatal("Invalidate did not drop the cached spine")
	}
	if got := plan.At(1).SeedH; got != 9 {
		t.Errorf("rebuilt plan SeedH = %d, want 9", got)
	}
}
