// Package workload defines the interchange format between workload
// producers (synthetic generators, the ELBA and PASTIS pipelines) and the
// alignment execution stack (partitioner, batcher, driver, kernels).
//
// The canonical representation is the arena spine: the sequence pool Ω as
// one contiguous, content-interned byte slab addressed by SeqRef spans
// (Arena), plus the planned seed extensions as a columnar Plan table
// (§4.3). Dataset remains as the compatibility view over the spine —
// Sequences are zero-copy slab spans, Comparisons materialised plan rows —
// so producers that still assemble [][]byte pools keep working: their
// spine is built lazily on first use by the execution stack.
package workload

import (
	"fmt"
	"sync"

	"github.com/sram-align/xdropipu/internal/alignment"
)

// Comparison is one planned pairwise alignment: two sequence indices plus
// the seed match that anchors the extension — the e_c tuple of §4.3.
type Comparison struct {
	// H and V index into the dataset's Sequences.
	H, V int
	// SeedH and SeedV are the seed start offsets on each sequence.
	SeedH, SeedV int
	// SeedLen is the k-mer length.
	SeedLen int
}

// Dataset is a set of sequences plus the comparisons to run on them.
// Arena-backed datasets (Arena.NewDataset) carry their spine from birth;
// hand-assembled ones grow it on demand via Spine.
//
// A Dataset contains a mutex guarding the cached spine and must not be
// copied by value after first use — share the pointer (go vet's
// copylocks check flags violations).
type Dataset struct {
	// Name labels the dataset in reports.
	Name string
	// Sequences is the sequence pool Ω (§4.3). In an arena-backed dataset
	// these are zero-copy spans of the slab.
	Sequences [][]byte
	// Comparisons lists the planned seed extensions.
	Comparisons []Comparison
	// Protein marks amino-acid data.
	Protein bool

	mu    sync.Mutex
	arena *Arena
	plan  *Plan
	// spineRefs is set for spine-only datasets (NewStreamingDataset):
	// the arena's span table, so lengths and counts resolve without a
	// materialised Sequences view and without faulting spilled slabs in.
	// Written once at construction, never mutated — safe to read without
	// the mutex.
	spineRefs []SeqRef
	// spineSeqs/spineCmps remember the exact slices the cached spine was
	// built from, so replacing a field wholesale (even with an equal
	// count) is detected and the stale half rebuilt.
	spineSeqs [][]byte
	spineCmps []Comparison
	// seqFP/cmpFP are cheap content fingerprints of the slices the spine
	// was built from (lengths plus first/last elements). In-place edits
	// keep slice identity, so sameSlice alone cannot see them; Validate
	// rechecks these and rebuilds the touched half instead of silently
	// serving a stale spine.
	seqFP seqFingerprint
	cmpFP cmpFingerprint
}

// seqFingerprint is the O(1) staleness probe over a sequence pool: the
// slice length plus the length and boundary bytes of the first and last
// sequences. It cannot see every in-place edit (that would cost a full
// hash per Validate), but it catches the common corruption patterns —
// overwriting the pool front-to-back, or truncate-and-refill within the
// same backing array — that used to yield silently wrong results.
type seqFingerprint struct {
	n                    int
	firstLen, lastLen    int
	firstHead, firstTail byte
	lastHead, lastTail   byte
}

func seqFingerprintOf(seqs [][]byte) seqFingerprint {
	fp := seqFingerprint{n: len(seqs)}
	if fp.n == 0 {
		return fp
	}
	probe := func(s []byte) (n int, head, tail byte) {
		if len(s) == 0 {
			return 0, 0, 0
		}
		return len(s), s[0], s[len(s)-1]
	}
	fp.firstLen, fp.firstHead, fp.firstTail = probe(seqs[0])
	fp.lastLen, fp.lastHead, fp.lastTail = probe(seqs[fp.n-1])
	return fp
}

// cmpFingerprint is the comparison-side staleness probe: length plus the
// first and last rows by value.
type cmpFingerprint struct {
	n           int
	first, last Comparison
}

func cmpFingerprintOf(cmps []Comparison) cmpFingerprint {
	fp := cmpFingerprint{n: len(cmps)}
	if fp.n > 0 {
		fp.first, fp.last = cmps[0], cmps[fp.n-1]
	}
	return fp
}

// sameSlice reports whether two slices share length and backing array —
// the cheap identity test behind spine staleness detection.
func sameSlice[T any](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// Spine returns the dataset's arena and columnar plan, building and
// caching them on first call for datasets assembled from plain slices.
// The build packs Ω into one slab (interning duplicate sequences) and
// transposes Comparisons into columns; every later consumer — partitioner,
// tiles, concurrent engine jobs — shares that single immutable copy.
//
// Producers that extend or replace a dataset's slices after its spine
// exists (e.g. attaching comparisons to a generated pool) are caught by
// a slice-identity check — length or backing array changed — and get
// that half of the spine rebuilt. Edits that keep both (overwriting
// entries in place, or truncate-and-refill to the same length within the
// same backing array) are not detectable, so a dataset handed to the
// execution stack must stop mutating; reuse a fresh slice per batch of
// comparisons instead.
func (d *Dataset) Spine() (*Arena, *Plan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spineLocked()
}

func (d *Dataset) spineLocked() (*Arena, *Plan) {
	if d.arena == nil || !sameSlice(d.spineSeqs, d.Sequences) {
		a := NewArena(int(d.TotalSeqBytes()), len(d.Sequences))
		for _, s := range d.Sequences {
			a.Append(s)
		}
		d.arena = a
		d.spineSeqs = d.Sequences
		d.seqFP = seqFingerprintOf(d.Sequences)
	}
	if d.plan == nil || !sameSlice(d.spineCmps, d.Comparisons) {
		d.plan = PlanOf(d.Comparisons)
		d.spineCmps = d.Comparisons
		d.cmpFP = cmpFingerprintOf(d.Comparisons)
	}
	return d.arena, d.plan
}

// Invalidate drops the cached spine, forcing the next Spine (or Validate)
// to rebuild it from the current Sequences and Comparisons. It is the
// explicit escape hatch for producers that must mutate a dataset in place
// after the execution stack has already seen it — in-place edits keep
// slice identity, so without this call (or a fingerprint hit in Validate)
// the stale spine would keep serving the old bytes.
func (d *Dataset) Invalidate() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.arena, d.plan = nil, nil
	d.spineSeqs, d.spineCmps = nil, nil
	d.seqFP, d.cmpFP = seqFingerprint{}, cmpFingerprint{}
}

// Clone returns a deep copy of the dataset: every sequence in a private
// buffer, comparisons by value, no spine. It is the escape hatch for
// callers that must mutate a dataset in place (seed planting in
// experiments, per-job pools in benchmarks) — arena-backed datasets are
// immutable and may alias interned spans, so mutate a Clone instead.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Name:        d.Name,
		Comparisons: append([]Comparison(nil), d.Comparisons...),
		Protein:     d.Protein,
	}
	if d.Sequences == nil && d.spineRefs != nil {
		// Spine-only dataset: materialise the copy from the arena
		// (faulting in any spilled slabs — a clone is fully resident).
		d.mu.Lock()
		a := d.arena
		d.mu.Unlock()
		c.Sequences = make([][]byte, a.Len())
		for i := range c.Sequences {
			c.Sequences[i] = append([]byte(nil), a.Seq(i)...)
		}
		return c
	}
	c.Sequences = make([][]byte, len(d.Sequences))
	for i, s := range d.Sequences {
		c.Sequences[i] = append([]byte(nil), s...)
	}
	return c
}

// NumSeqs returns the pool size. For spine-only datasets it comes from
// the arena's span table; otherwise from the Sequences view.
func (d *Dataset) NumSeqs() int {
	if d.Sequences == nil && d.spineRefs != nil {
		return len(d.spineRefs)
	}
	return len(d.Sequences)
}

// SeqLen returns sequence i's length without touching its bytes — for
// spine-only datasets this never faults a spilled slab in, which is what
// keeps cost estimation and validation residency-free.
func (d *Dataset) SeqLen(i int) int {
	if d.Sequences == nil && d.spineRefs != nil {
		return int(d.spineRefs[i].Len)
	}
	return len(d.Sequences[i])
}

// TotalSeqBytes sums sequence lengths (the logical |Ω|; interning may
// store less — see Arena.SlabBytes).
func (d *Dataset) TotalSeqBytes() int64 {
	var n int64
	for i, nseqs := 0, d.NumSeqs(); i < nseqs; i++ {
		n += int64(d.SeqLen(i))
	}
	return n
}

// Validate checks that every comparison references a pooled sequence and
// anchors its seed in range, and that every single sequence fits one
// arena slab (the pool as a whole is unbounded — the spine rolls slabs).
// This delegates to the single implementation shared with
// Arena.ValidatePlan; the driver calls it once per submission on every
// entry path, so layers below (partition, kernel) index and build the
// spine without re-checking.
//
// Validate also rechecks the spine's staleness fingerprints: a producer
// that mutated Sequences or Comparisons in place (undetectable by slice
// identity) is caught here and the touched half of the spine dropped, so
// the next Spine call rebuilds from the current data instead of silently
// serving the old bytes. Edits the O(1) fingerprint cannot see remain the
// caller's responsibility — call Invalidate after any in-place mutation.
func (d *Dataset) Validate() error {
	d.mu.Lock()
	if d.arena != nil && sameSlice(d.spineSeqs, d.Sequences) &&
		d.seqFP != seqFingerprintOf(d.Sequences) {
		d.arena = nil
		d.spineSeqs = nil
	}
	if d.plan != nil && sameSlice(d.spineCmps, d.Comparisons) &&
		d.cmpFP != cmpFingerprintOf(d.Comparisons) {
		d.plan = nil
		d.spineCmps = nil
	}
	// Only a spine built from the current pool proves its sequences fit
	// (at append time). A replaced Sequences slice will be re-packed by
	// Spine, so it must pass the per-sequence cap here first — the pool
	// total is unbounded now that the spine rolls slabs.
	poolPacked := d.arena != nil && sameSlice(d.spineSeqs, d.Sequences)
	d.mu.Unlock()
	if !poolPacked {
		for i, n := 0, d.NumSeqs(); i < n; i++ {
			if d.SeqLen(i) > MaxSlabBytes {
				return fmt.Errorf("workload: sequence %d exceeds the %d-byte arena slab limit", i, int64(MaxSlabBytes))
			}
		}
	}
	return validateComparisons(d.NumSeqs(), d.SeqLen,
		len(d.Comparisons),
		func(i int) Comparison { return d.Comparisons[i] })
}

// ExtensionLens returns the four extension lengths of comparison c: the
// left and right fragments of H and V around the seed. Table 2 reports
// their distributions.
func (d *Dataset) ExtensionLens(c Comparison) (lh, lv, rh, rv int) {
	nh, nv := d.SeqLen(c.H), d.SeqLen(c.V)
	return c.SeedH, c.SeedV, nh - c.SeedH - c.SeedLen, nv - c.SeedV - c.SeedLen
}

// Complexity returns |H|·|V| for comparison c, the Table 2 "Complexity"
// column and the GCUPS numerator (§5.1).
func (d *Dataset) Complexity(c Comparison) int64 {
	return int64(d.SeqLen(c.H)) * int64(d.SeqLen(c.V))
}

// TheoreticalCells sums Complexity over all comparisons.
func (d *Dataset) TheoreticalCells() int64 {
	var n int64
	for _, c := range d.Comparisons {
		n += d.Complexity(c)
	}
	return n
}

// Alignment is the outcome of one comparison's seed-and-extend alignment,
// in dataset coordinates: [BegH,EndH) on sequence H aligned to
// [BegV,EndV) on sequence V.
type Alignment struct {
	// Score is the total alignment score (left + seed + right).
	Score int
	// BegH/BegV are inclusive start offsets; EndH/EndV exclusive ends.
	BegH, BegV, EndH, EndV int
	// Cigar is the alignment's edit script over the aligned region,
	// empty unless the backend ran with traceback enabled. Identity and
	// aligned spans derive from it (alignment.Cigar methods).
	Cigar alignment.Cigar
	// Failed marks a comparison whose batch exhausted the engine's
	// fault tolerance and completed as a degraded placeholder
	// (DegradePartial): Score, spans and Cigar are zero. Backends
	// without fault injection never set it.
	Failed bool
}

// SpanH returns the aligned length on H.
func (a Alignment) SpanH() int { return a.EndH - a.BegH }

// SpanV returns the aligned length on V.
func (a Alignment) SpanV() int { return a.EndV - a.BegV }
