// Package workload defines the interchange format between workload
// producers (synthetic generators, the ELBA and PASTIS pipelines) and the
// alignment execution stack (partitioner, batcher, driver, kernels): a
// sequence pool Ω plus the list of planned seed extensions over it (§4.3).
package workload

import "fmt"

// Comparison is one planned pairwise alignment: two sequence indices plus
// the seed match that anchors the extension — the e_c tuple of §4.3.
type Comparison struct {
	// H and V index into the dataset's Sequences.
	H, V int
	// SeedH and SeedV are the seed start offsets on each sequence.
	SeedH, SeedV int
	// SeedLen is the k-mer length.
	SeedLen int
}

// Dataset is a set of sequences plus the comparisons to run on them.
type Dataset struct {
	// Name labels the dataset in reports.
	Name string
	// Sequences is the sequence pool Ω (§4.3).
	Sequences [][]byte
	// Comparisons lists the planned seed extensions.
	Comparisons []Comparison
	// Protein marks amino-acid data.
	Protein bool
}

// TotalSeqBytes sums sequence lengths.
func (d *Dataset) TotalSeqBytes() int64 {
	var n int64
	for _, s := range d.Sequences {
		n += int64(len(s))
	}
	return n
}

// Validate checks that every comparison's seed is in range.
func (d *Dataset) Validate() error {
	for i, c := range d.Comparisons {
		if c.H < 0 || c.H >= len(d.Sequences) || c.V < 0 || c.V >= len(d.Sequences) {
			return fmt.Errorf("workload: comparison %d references missing sequence", i)
		}
		h, v := d.Sequences[c.H], d.Sequences[c.V]
		if c.SeedLen <= 0 || c.SeedH < 0 || c.SeedV < 0 ||
			c.SeedH+c.SeedLen > len(h) || c.SeedV+c.SeedLen > len(v) {
			return fmt.Errorf("workload: comparison %d seed out of range", i)
		}
	}
	return nil
}

// ExtensionLens returns the four extension lengths of comparison c: the
// left and right fragments of H and V around the seed. Table 2 reports
// their distributions.
func (d *Dataset) ExtensionLens(c Comparison) (lh, lv, rh, rv int) {
	h, v := d.Sequences[c.H], d.Sequences[c.V]
	return c.SeedH, c.SeedV, len(h) - c.SeedH - c.SeedLen, len(v) - c.SeedV - c.SeedLen
}

// Complexity returns |H|·|V| for comparison c, the Table 2 "Complexity"
// column and the GCUPS numerator (§5.1).
func (d *Dataset) Complexity(c Comparison) int64 {
	return int64(len(d.Sequences[c.H])) * int64(len(d.Sequences[c.V]))
}

// TheoreticalCells sums Complexity over all comparisons.
func (d *Dataset) TheoreticalCells() int64 {
	var n int64
	for _, c := range d.Comparisons {
		n += d.Complexity(c)
	}
	return n
}

// Alignment is the outcome of one comparison's seed-and-extend alignment,
// in dataset coordinates: [BegH,EndH) on sequence H aligned to
// [BegV,EndV) on sequence V.
type Alignment struct {
	// Score is the total alignment score (left + seed + right).
	Score int
	// BegH/BegV are inclusive start offsets; EndH/EndV exclusive ends.
	BegH, BegV, EndH, EndV int
}

// SpanH returns the aligned length on H.
func (a Alignment) SpanH() int { return a.EndH - a.BegH }

// SpanV returns the aligned length on V.
func (a Alignment) SpanV() int { return a.EndV - a.BegV }
