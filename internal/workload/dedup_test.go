package workload

import (
	"math/rand"
	"testing"
)

func mkArena(t *testing.T, seqs ...[]byte) *Arena {
	t.Helper()
	a := NewArena(0, len(seqs))
	for _, s := range seqs {
		a.Append(s)
	}
	return a
}

func TestDedupPlanCollapsesInternedDuplicates(t *testing.T) {
	// Indices 0 and 1 are byte-identical (interned), 2 is distinct.
	a := mkArena(t,
		[]byte("ACGTACGTACGTACGTACGT"),
		[]byte("ACGTACGTACGTACGTACGT"),
		[]byte("TTTTCCCCGGGGAAAATTTT"),
	)
	p := PlanOf([]Comparison{
		{H: 0, V: 2, SeedH: 3, SeedV: 4, SeedLen: 5},
		{H: 1, V: 2, SeedH: 3, SeedV: 4, SeedLen: 5}, // same bytes, different numbering
		{H: 0, V: 2, SeedH: 3, SeedV: 4, SeedLen: 5}, // literal duplicate
		{H: 2, V: 0, SeedH: 4, SeedV: 3, SeedLen: 5}, // mirrored: distinct
	})
	m := a.DedupPlan(p)
	if m.Unique() != 2 {
		t.Fatalf("Unique = %d, want 2", m.Unique())
	}
	if m.Duplicates() != 2 {
		t.Fatalf("Duplicates = %d, want 2", m.Duplicates())
	}
	if m.RowUID[0] != m.RowUID[1] || m.RowUID[0] != m.RowUID[2] {
		t.Errorf("rows 0..2 should share a unique extension: %v", m.RowUID)
	}
	if m.RowUID[3] == m.RowUID[0] {
		t.Errorf("mirrored (V,H) comparison must not dedup against (H,V)")
	}
	if m.Fanout[m.RowUID[0]] != 3 || m.Fanout[m.RowUID[3]] != 1 {
		t.Errorf("fanout = %v, want [3 1]", m.Fanout)
	}
	if m.UniqueRows[m.RowUID[0]] != 0 || m.UniqueRows[m.RowUID[3]] != 3 {
		t.Errorf("representatives should be first appearances: %v", m.UniqueRows)
	}
}

func TestDedupPlanSelfComparisons(t *testing.T) {
	// 0 and 1 are identical bytes; self-comparisons on each are the same
	// extension, a self-comparison on distinct bytes is not.
	a := mkArena(t,
		[]byte("ACGTACGTACGTACGTACGT"),
		[]byte("ACGTACGTACGTACGTACGT"),
		[]byte("TTTTCCCCGGGGAAAATTTT"),
	)
	p := PlanOf([]Comparison{
		{H: 0, V: 0, SeedH: 2, SeedV: 2, SeedLen: 4},
		{H: 1, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4},
		{H: 2, V: 2, SeedH: 2, SeedV: 2, SeedLen: 4},
	})
	m := a.DedupPlan(p)
	if m.Unique() != 2 {
		t.Fatalf("Unique = %d, want 2", m.Unique())
	}
	if m.RowUID[0] != m.RowUID[1] {
		t.Errorf("interned self-comparisons should dedup")
	}
	if m.RowUID[2] == m.RowUID[0] {
		t.Errorf("distinct-content self-comparison wrongly deduped")
	}
}

func TestDedupPlanSamePairDifferentSeeds(t *testing.T) {
	a := mkArena(t, []byte("ACGTACGTACGTACGTACGT"), []byte("TTTTCCCCGGGGAAAATTTT"))
	p := PlanOf([]Comparison{
		{H: 0, V: 1, SeedH: 1, SeedV: 1, SeedLen: 4},
		{H: 0, V: 1, SeedH: 2, SeedV: 1, SeedLen: 4},
		{H: 0, V: 1, SeedH: 1, SeedV: 1, SeedLen: 5},
	})
	m := a.DedupPlan(p)
	if m.Unique() != 3 {
		t.Fatalf("identical pairs with different seeds must not dedup: Unique = %d, want 3", m.Unique())
	}
}

// TestDedupPlanExactForEqualLengthContent is the hash-collision guard for
// the in-plan extension-key map: the map is keyed by canonical slab
// spans, not by any content hash, so two sequences of equal length whose
// digests hypothetically collided could still never be merged — their
// spans differ whenever their bytes do.
func TestDedupPlanExactForEqualLengthContent(t *testing.T) {
	sA := []byte("AAAACGTACGTACGTAAAAA")
	sB := []byte("AAAACGTACGTACGTAAAAC") // same length, one byte off
	a := mkArena(t, sA, sB)
	if a.Ref(0) == a.Ref(1) {
		t.Fatal("distinct content interned onto one span")
	}
	p := PlanOf([]Comparison{
		{H: 0, V: 1, SeedH: 1, SeedV: 1, SeedLen: 4},
		{H: 1, V: 0, SeedH: 1, SeedV: 1, SeedLen: 4},
		{H: 0, V: 0, SeedH: 1, SeedV: 1, SeedLen: 4},
		{H: 1, V: 1, SeedH: 1, SeedV: 1, SeedLen: 4},
	})
	m := a.DedupPlan(p)
	if m.Unique() != 4 {
		t.Fatalf("equal-length distinct content deduped: Unique = %d, want 4", m.Unique())
	}
}

func TestExtensionKeyCrossArena(t *testing.T) {
	sA := []byte("ACGTACGTACGTACGTACGT")
	sB := []byte("TTTTCCCCGGGGAAAATTTT")
	sC := []byte("GGGGGGGGCCCCCCCCAAAA")

	// Arena 1: A at index 0, B at 1. Arena 2: padded with C first and B
	// before A — different numbering, different offsets.
	a1 := mkArena(t, sA, sB)
	a2 := mkArena(t, sC, sB, sA)

	k1 := a1.ExtensionKeyOf(Comparison{H: 0, V: 1, SeedH: 3, SeedV: 4, SeedLen: 5})
	k2 := a2.ExtensionKeyOf(Comparison{H: 2, V: 1, SeedH: 3, SeedV: 4, SeedLen: 5})
	if k1 != k2 {
		t.Errorf("same bytes + seed across arenas should produce equal keys:\n%+v\n%+v", k1, k2)
	}

	// Different sequence content, different seed, or swapped direction
	// all change the key.
	if k1 == a2.ExtensionKeyOf(Comparison{H: 0, V: 1, SeedH: 3, SeedV: 4, SeedLen: 5}) {
		t.Error("different H content produced an equal key")
	}
	if k1 == a1.ExtensionKeyOf(Comparison{H: 0, V: 1, SeedH: 4, SeedV: 4, SeedLen: 5}) {
		t.Error("different seed produced an equal key")
	}
	if k1 == a1.ExtensionKeyOf(Comparison{H: 1, V: 0, SeedH: 4, SeedV: 3, SeedLen: 5}) {
		t.Error("mirrored direction produced an equal key")
	}
}

// TestSeqDigestDistinctness is a smoke check that the 128-bit digest
// separates a corpus of near-identical sequences (single-symbol edits,
// shared prefixes, varied lengths) — the regime interning and the result
// cache actually see.
func TestSeqDigestDistinctness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := []byte("ACGT")
	seen := make(map[SeqDigest][]byte)
	check := func(s []byte) {
		d := digestBytes(s)
		if prev, ok := seen[d]; ok && string(prev) != string(s) {
			t.Fatalf("digest collision between %q and %q", prev, s)
		}
		seen[d] = append([]byte(nil), s...)
	}
	base := make([]byte, 64)
	for i := range base {
		base[i] = alpha[rng.Intn(4)]
	}
	check(base)
	for i := range base {
		for _, c := range alpha {
			if base[i] == c {
				continue
			}
			mut := append([]byte(nil), base...)
			mut[i] = c
			check(mut)
		}
	}
	for n := 0; n < 64; n++ {
		check(base[:n])
	}
}
