package workload

import "sync"

// Plan is the comparison table in columnar (struct-of-arrays) layout: one
// int32 column per Comparison field. A row is the e_c tuple of §4.3; the
// columnar form packs 20 bytes per planned extension — matching the
// device's job-tuple wire format — where a []Comparison costs 40 and
// scatters the fields the partitioner scans (H, V) among the ones it does
// not (seed offsets).
type Plan struct {
	// H and V are the sequence-index columns (rows index into an Arena).
	H, V []int32
	// SeedH, SeedV and SeedLen are the seed-anchor columns.
	SeedH, SeedV, SeedLen []int32

	matOnce sync.Once
	mat     []Comparison
}

// NewPlan returns an empty plan with row capacity hint n.
func NewPlan(n int) *Plan {
	return &Plan{
		H: make([]int32, 0, n), V: make([]int32, 0, n),
		SeedH: make([]int32, 0, n), SeedV: make([]int32, 0, n),
		SeedLen: make([]int32, 0, n),
	}
}

// PlanOf builds a columnar plan from a comparison slice.
func PlanOf(cmps []Comparison) *Plan {
	p := NewPlan(len(cmps))
	for _, c := range cmps {
		p.Add(c)
	}
	return p
}

// Len returns the number of planned comparisons.
func (p *Plan) Len() int { return len(p.H) }

// Add appends one comparison row. Adding after Comparisons has been
// materialised is a misuse (the cached view would go stale); plans are
// built once and then shared immutably, like the arena they index.
func (p *Plan) Add(c Comparison) {
	p.H = append(p.H, int32(c.H))
	p.V = append(p.V, int32(c.V))
	p.SeedH = append(p.SeedH, int32(c.SeedH))
	p.SeedV = append(p.SeedV, int32(c.SeedV))
	p.SeedLen = append(p.SeedLen, int32(c.SeedLen))
}

// At materialises row i as a Comparison.
func (p *Plan) At(i int) Comparison {
	return Comparison{
		H: int(p.H[i]), V: int(p.V[i]),
		SeedH: int(p.SeedH[i]), SeedV: int(p.SeedV[i]), SeedLen: int(p.SeedLen[i]),
	}
}

// Select returns a new plan holding rows[i] of p, in order — the
// sub-plan the driver partitions when dedup reduces execution to the
// unique-extension representatives.
func (p *Plan) Select(rows []int32) *Plan {
	q := NewPlan(len(rows))
	for _, r := range rows {
		q.Add(p.At(int(r)))
	}
	return q
}

// Comparisons returns the row-materialised view, built once and cached, so
// every Dataset view over the same plan shares one []Comparison instead of
// re-allocating per job. Callers must not mutate the returned slice.
func (p *Plan) Comparisons() []Comparison {
	p.matOnce.Do(func() {
		p.mat = make([]Comparison, p.Len())
		for i := range p.mat {
			p.mat[i] = p.At(i)
		}
	})
	return p.mat
}
