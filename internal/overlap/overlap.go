// Package overlap implements the sparse overlap-detection stage shared by
// ELBA and PASTIS (§2.3, §2.4): sequences become a |seqs|×|k-mers| sparse
// matrix A of k-mer occurrences, and the candidate comparisons are the
// nonzeros of A·Aᵀ (quasi-exact ASAᵀ for proteins) that carry at least the
// required number of shared seeds.
package overlap

import (
	"fmt"
	"sort"

	"github.com/sram-align/xdropipu/internal/kmer"
	"github.com/sram-align/xdropipu/internal/sparse"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Candidate is one overlap-matrix nonzero: the shared-seed evidence for a
// sequence pair.
type Candidate struct {
	// Count is the number of shared k-mer occurrences.
	Count int32
	// H1, V1 locate the first shared k-mer on each sequence.
	H1, V1 int32
	// H2, V2 locate a second distinct shared k-mer (−1 when absent).
	H2, V2 int32
}

// Options configures detection.
type Options struct {
	// K is the k-mer length (31 for ELBA runs, 17 standalone, 6 PASTIS).
	K int
	// MinKmerFreq and MaxKmerFreq bound the reliable k-mer range.
	MinKmerFreq, MaxKmerFreq int32
	// MinSharedSeeds is the evidence threshold per pair (both pipelines
	// use 2, §5.3).
	MinSharedSeeds int32
	// Protein selects the amino-acid alphabet.
	Protein bool
	// SubstituteMinScore, when positive on protein data, also indexes
	// single-substitution k-mer neighbours whose BLOSUM62 substitution
	// scores at least this value — PASTIS's quasi-exact seeding (§2.4).
	SubstituteMinScore int
}

// Stats reports detection volume.
type Stats struct {
	// TotalKmers and ReliableKmers count distinct k-mers before/after
	// the frequency filter.
	TotalKmers, ReliableKmers int
	// CandidatePairs is the upper-triangle nonzero count before the
	// shared-seed threshold; Comparisons after.
	CandidatePairs, Comparisons int
}

// Detect builds the comparison list for a sequence set. Output order is
// deterministic (row-major over the overlap matrix).
func Detect(seqs [][]byte, opt Options) ([]workload.Comparison, Stats, error) {
	var st Stats
	if opt.K <= 0 {
		return nil, st, fmt.Errorf("overlap: K must be positive")
	}
	if opt.MinSharedSeeds <= 0 {
		opt.MinSharedSeeds = 1
	}
	count := kmer.CountDNA
	scan := kmer.ScanDNA
	if opt.Protein {
		count = kmer.CountProtein
		scan = kmer.ScanProtein
	}
	counts, err := count(seqs, opt.K)
	if err != nil {
		return nil, st, err
	}
	st.TotalKmers = len(counts)

	maxF := opt.MaxKmerFreq
	if maxF <= 0 {
		maxF = 1 << 30
	}
	reliable := counts.Reliable(opt.MinKmerFreq, maxF)
	st.ReliableKmers = len(reliable)
	// Deterministic column ids: sort the reliable k-mers.
	ids := make([]uint64, 0, len(reliable))
	for km := range reliable {
		ids = append(ids, km)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for i, km := range ids {
		reliable[km] = int32(i)
	}

	// A: seq × k-mer, value = first occurrence position.
	var triples []sparse.Triple[int32]
	for si, s := range seqs {
		emit := func(col int32, pos int32) {
			triples = append(triples, sparse.Triple[int32]{Row: si, Col: int(col), Val: pos})
		}
		err := scan(s, opt.K, func(o kmer.Occurrence) {
			if col, ok := reliable[o.Kmer]; ok {
				emit(col, o.Pos)
			}
			if opt.Protein && opt.SubstituteMinScore > 0 {
				kmer.SubstituteNeighbors(o.Kmer, opt.K, opt.SubstituteMinScore, func(nb uint64) {
					if col, ok := reliable[nb]; ok {
						emit(col, o.Pos)
					}
				})
			}
		})
		if err != nil {
			return nil, st, err
		}
	}
	keepFirst := func(a, b int32) int32 {
		if a <= b {
			return a
		}
		return b
	}
	a, err := sparse.FromTriples(len(seqs), len(ids), triples, keepFirst)
	if err != nil {
		return nil, st, err
	}
	at := sparse.Transpose(a)

	// C = A·Aᵀ with the shared-seed semiring.
	c, err := sparse.SpGEMM(a, at, sparse.Semiring[int32, int32, Candidate]{
		Mult: func(hp, vp int32, _ int) Candidate {
			return Candidate{Count: 1, H1: hp, V1: vp, H2: -1, V2: -1}
		},
		Add: func(acc, v Candidate) Candidate {
			acc.Count += v.Count
			if acc.H2 < 0 && (v.H1 != acc.H1 || v.V1 != acc.V1) {
				acc.H2, acc.V2 = v.H1, v.V1
			}
			return acc
		},
	})
	if err != nil {
		return nil, st, err
	}
	upper := sparse.UpperTriangle(c)
	st.CandidatePairs = upper.NNZ()

	var cmps []workload.Comparison
	for r := 0; r < upper.NumRows; r++ {
		cols, vals := upper.Row(r)
		for i, col := range cols {
			cand := vals[i]
			if cand.Count < opt.MinSharedSeeds {
				continue
			}
			cmps = append(cmps, workload.Comparison{
				H: r, V: int(col),
				SeedH: int(cand.H1), SeedV: int(cand.V1),
				SeedLen: opt.K,
			})
		}
	}
	st.Comparisons = len(cmps)
	return cmps, st, nil
}
