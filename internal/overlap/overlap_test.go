package overlap

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func hasPair(cmps []workload.Comparison, a, b int) bool {
	for _, c := range cmps {
		if c.H == a && c.V == b {
			return true
		}
	}
	return false
}

func TestDetectFindsOverlappingReads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	genome := synth.RandDNA(rng, 12000)
	prof := synth.HiFiDNA()
	// Three overlapping reads plus one unrelated sequence.
	reads := [][]byte{
		prof.Apply(rng, genome[0:4000]),
		prof.Apply(rng, genome[3000:7000]),
		prof.Apply(rng, genome[6000:10000]),
		synth.RandDNA(rng, 4000),
	}
	cmps, st, err := Detect(reads, Options{K: 17, MinKmerFreq: 2, MinSharedSeeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReliableKmers == 0 || st.Comparisons != len(cmps) {
		t.Errorf("stats inconsistent: %+v", st)
	}
	for _, c := range cmps {
		if c.H >= c.V {
			t.Fatalf("comparison not upper-triangular: %d,%d", c.H, c.V)
		}
		if c.SeedH+c.SeedLen > len(reads[c.H]) || c.SeedV+c.SeedLen > len(reads[c.V]) {
			t.Fatal("seed out of range")
		}
	}
	if !hasPair(cmps, 0, 1) || !hasPair(cmps, 1, 2) {
		t.Errorf("expected overlaps missing: %v", cmps)
	}
	for _, other := range []int{0, 1, 2} {
		if hasPair(cmps, other, 3) {
			t.Error("random read spuriously overlapped")
		}
	}
}

func TestDetectSeedsAreRealMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genome := synth.RandDNA(rng, 8000)
	prof := synth.HiFiDNA()
	reads := [][]byte{
		prof.Apply(rng, genome[0:5000]),
		prof.Apply(rng, genome[2000:8000]),
	}
	cmps, _, err := Detect(reads, Options{K: 17, MinKmerFreq: 2, MinSharedSeeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 1 {
		t.Fatalf("got %d comparisons, want 1", len(cmps))
	}
	c := cmps[0]
	h := reads[c.H][c.SeedH : c.SeedH+c.SeedLen]
	v := reads[c.V][c.SeedV : c.SeedV+c.SeedLen]
	if string(h) != string(v) {
		t.Errorf("seed mismatch: %s vs %s", h, v)
	}
}

func TestDetectMinSharedSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome := synth.RandDNA(rng, 6000)
	reads := [][]byte{
		append([]byte{}, genome[0:3500]...),
		append([]byte{}, genome[3000:6000]...), // 500 bp of exact overlap
	}
	loose, _, err := Detect(reads, Options{K: 17, MinKmerFreq: 2, MinSharedSeeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	strict, _, err := Detect(reads, Options{K: 17, MinKmerFreq: 2, MinSharedSeeds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) != 1 {
		t.Fatalf("loose detection found %d pairs", len(loose))
	}
	if len(strict) != 0 {
		t.Fatalf("absurd threshold still found %d pairs", len(strict))
	}
}

func TestDetectProteinQuasiExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := synth.RandProtein(rng, 400)
	prof := synth.MutationProfile{Sub: 0.15, Protein: true}
	a := prof.Apply(rng, base)
	b := prof.Apply(rng, base)
	unrelated := synth.RandProtein(rng, 400)
	seqs := [][]byte{a, b, unrelated}

	exact, _, err := Detect(seqs, Options{K: 6, MinKmerFreq: 1, MinSharedSeeds: 2, Protein: true})
	if err != nil {
		t.Fatal(err)
	}
	quasi, _, err := Detect(seqs, Options{K: 6, MinKmerFreq: 1, MinSharedSeeds: 2, Protein: true, SubstituteMinScore: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !hasPair(exact, 0, 1) && !hasPair(quasi, 0, 1) {
		t.Fatal("homologous pair not seeded at all")
	}
	// Quasi-exact seeding must find at least as many pairs as exact.
	if len(quasi) < len(exact) {
		t.Errorf("quasi-exact (%d pairs) found fewer than exact (%d)", len(quasi), len(exact))
	}
}

func TestDetectDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	genome := synth.RandDNA(rng, 20000)
	prof := synth.HiFiDNA()
	var reads [][]byte
	for i := 0; i+4000 <= 20000; i += 1500 {
		reads = append(reads, prof.Apply(rng, genome[i:i+4000]))
	}
	a, _, err := Detect(reads, Options{K: 17, MinKmerFreq: 2, MinSharedSeeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Detect(reads, Options{K: 17, MinKmerFreq: 2, MinSharedSeeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic comparison count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("comparison %d differs between runs", i)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	if _, _, err := Detect(nil, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}
