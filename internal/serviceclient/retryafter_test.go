// White-box regression tests for the 0-second Retry-After bug: a server
// that derives a sub-second wait truncates the header to "0", and the
// client used to treat that as "no hint" and fall back to millisecond
// jitter — a hot retry loop against an already-refusing server.

package serviceclient

import (
	"net/http"
	"testing"
	"time"
)

// TestParseRetryAfterAlwaysPositive: whenever a Retry-After header is
// present the parsed backoff must be positive — a zero, negative or
// unparseable value still means "back off", clamped to one second. Only
// an absent header yields 0 (falling back to jittered backoff).
func TestParseRetryAfterAlwaysPositive(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"0", time.Second},
		{"-2", time.Second},
		{"junk", time.Second},
		{"1.5", time.Second},
		{"1", time.Second},
		{"5", 5 * time.Second},
		{"30", 30 * time.Second},
	}
	for _, tc := range cases {
		resp := &http.Response{Header: http.Header{}}
		if tc.header != "" {
			resp.Header.Set("Retry-After", tc.header)
		}
		got := parseRetryAfter(resp)
		if got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
		if tc.header != "" && got <= 0 {
			t.Errorf("parseRetryAfter(%q) = %v: present header must parse positive", tc.header, got)
		}
	}
}
