// Package serviceclient is the Go client for the alignment service: it
// preserves the in-process engine's submit/stream/join contract across
// the wire. Submit posts an encoded workload and returns a RemoteJob
// whose Results channel streams engine.Update values exactly as a local
// Job would deliver them, and whose Wait returns a *driver.Report
// assembled from the stream — bit-identical to Engine.Submit on the same
// workload, because every AlignOut and report field round-trips the
// NDJSON wire format exactly.
//
// The client owns the transport failure domain and nothing more: it
// retries refused submissions (429/503 with Retry-After, connection
// errors) with jittered exponential backoff, and resumes a dropped
// result stream from its cursor via GET /v1/jobs/{id}/results?from=N —
// the server replays delivered batches from its bounded window, so
// nothing re-executes. Engine-level fault tolerance (batch retry,
// hedging, degradation) stays server-side; a job error the engine
// reports travels back in the stream's final record and is returned from
// Wait verbatim, never retried here. One gap is inherent to the wire:
// if the POST succeeds server-side but the response is lost before the
// header arrives, the orphaned job is torn down by the server's linger
// cancellation or TTL, not by the client.
package serviceclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/service/wire"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Client talks to one alignment service.
type Client struct {
	base    string // e.g. "http://127.0.0.1:8080", no trailing slash
	hc      *http.Client
	tenant  string
	linger  time.Duration
	retries int // transport attempts per request (submit and resume alike)
	backoff time.Duration
	cap     time.Duration
	rng     *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, HTTP/2, test
// instrumentation).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTenant sets the X-Tenant identity submissions carry into the
// service's fair-share admission.
func WithTenant(name string) Option { return func(c *Client) { c.tenant = name } }

// WithStreamLinger asks the server to keep a disconnected job alive that
// long (X-Linger, capped server-side) so the client can resume instead
// of losing the job to disconnect-cancellation.
func WithStreamLinger(d time.Duration) Option { return func(c *Client) { c.linger = d } }

// WithTransportRetry sets how many attempts each transport operation
// gets (default 4). This layer retries refusals and broken connections
// only — job-level failures come back through Wait untouched.
func WithTransportRetry(attempts int) Option {
	return func(c *Client) {
		if attempts > 0 {
			c.retries = attempts
		}
	}
}

// WithTransportBackoff sets the retry backoff's base and cap (defaults
// 100ms and 2s). The wait doubles per attempt with full jitter; a
// server-supplied Retry-After overrides the computed wait.
func WithTransportBackoff(base, cap time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoff = base
		}
		if cap > 0 {
			c.cap = cap
		}
	}
}

// New builds a client for the service at base (scheme://host[:port]).
func New(base string, opts ...Option) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	c := &Client{
		base: base, hc: http.DefaultClient,
		retries: 4, backoff: 100 * time.Millisecond, cap: 2 * time.Second,
		rng: rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// RemoteJob is the wire analogue of engine.Job: a submitted workload's
// handle with the same stream/join surface.
type RemoteJob struct {
	// ID addresses the job on the server (status, resume, cancel).
	ID string
	// Comparisons is the submitted comparison count; Batches the
	// schedule's batch total (0 until the first header on cache-only
	// deliveries that never learned it).
	Comparisons int
	Batches     int

	c       *Client
	updates chan engine.Update
	done    chan struct{}
	rep     *driver.Report
	err     error
}

// Results streams per-batch updates in delivery order, exactly as the
// in-process Job would. The channel closes when the job settles; the
// buffer covers the whole schedule, so an unread channel never blocks
// assembly and Wait stays reachable.
func (j *RemoteJob) Results() <-chan engine.Update { return j.updates }

// Wait blocks until the job settles and returns the assembled report —
// bit-identical to the in-process engine's — or the job's terminal
// error. ctx bounds the wait only.
func (j *RemoteJob) Wait(ctx context.Context) (*driver.Report, error) {
	select {
	case <-j.done:
		return j.rep, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel asks the server to tear the job down. The stream then settles
// with the job's cancellation error.
func (j *RemoteJob) Cancel(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		j.c.base+"/v1/jobs/"+j.ID, nil)
	if err != nil {
		return err
	}
	resp, err := j.c.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("serviceclient: cancel %s: %s", j.ID, resp.Status)
	}
	return nil
}

// Submit encodes the dataset once and posts it, retrying transport
// refusals, then hands the response stream to a reader goroutine and
// returns the job handle as soon as the server's header arrives.
func (c *Client) Submit(ctx context.Context, d *workload.Dataset) (*RemoteJob, error) {
	payload, err := wire.EncodeDataset(d)
	if err != nil {
		return nil, err
	}
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.base+"/v1/jobs", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", wire.ContentTypeDataset)
		if c.tenant != "" {
			req.Header.Set("X-Tenant", c.tenant)
		}
		if c.linger > 0 {
			req.Header.Set("X-Linger", c.linger.String())
		}
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	return c.openStream(ctx, resp)
}

// openStream reads the header off a fresh result stream and starts the
// reader goroutine that assembles the job.
func (c *Client) openStream(ctx context.Context, resp *http.Response) (*RemoteJob, error) {
	br := bufio.NewReader(resp.Body)
	hdr, err := readHeader(br)
	if err != nil {
		resp.Body.Close()
		return nil, err
	}
	j := &RemoteJob{
		ID: hdr.Job, Comparisons: hdr.Comparisons, Batches: hdr.Batches,
		c: c, done: make(chan struct{}),
		// A schedule never has more batches than comparisons, so
		// Comparisons+2 covers every chunk plus the cache-served
		// pre-batch — the reader can always buffer without blocking,
		// matching the in-process Job's never-block guarantee.
		updates: make(chan engine.Update, hdr.Comparisons+2),
	}
	go j.run(ctx, resp.Body, br, hdr.From)
	return j, nil
}

func readHeader(br *bufio.Reader) (*wire.Header, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("serviceclient: reading stream header: %w", err)
	}
	var env wire.Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("serviceclient: bad stream header: %w", err)
	}
	if env.Header == nil {
		return nil, errors.New("serviceclient: stream did not open with a header")
	}
	return env.Header, nil
}

// run consumes the stream (resuming across drops) until the final
// record, then settles the job.
func (j *RemoteJob) run(ctx context.Context, body io.ReadCloser, br *bufio.Reader, from int) {
	defer close(j.updates)
	defer close(j.done)

	results := make([]ipukernel.AlignOut, j.Comparisons)
	cursor := from
	for {
		fin, ferr := j.consume(br, results, &cursor)
		body.Close()
		if fin != nil {
			j.settle(fin, results)
			return
		}
		if ctx.Err() != nil {
			j.err = ctx.Err()
			return
		}
		// The stream broke before its final record: resume from the
		// cursor. The server replays from its window — completed batches
		// are never re-executed.
		body, br, ferr = j.resume(ctx, cursor)
		if ferr != nil {
			j.err = ferr
			return
		}
	}
}

// consume drains stream lines into results until the final record or a
// transport error. It returns the final record when the stream completed.
func (j *RemoteJob) consume(br *bufio.Reader, results []ipukernel.AlignOut, cursor *int) (*wire.Final, error) {
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return nil, err
		}
		var env wire.Envelope
		if err := json.Unmarshal(line, &env); err != nil {
			return nil, err
		}
		switch {
		case env.Chunk != nil:
			ch := env.Chunk
			if ch.Seq != *cursor {
				return nil, fmt.Errorf("serviceclient: stream gap: got seq %d, want %d", ch.Seq, *cursor)
			}
			*cursor = ch.Seq + 1
			if ch.Batches > j.Batches {
				j.Batches = ch.Batches
			}
			outs := make([]ipukernel.AlignOut, len(ch.Results))
			for i, r := range ch.Results {
				o, err := r.AlignOut()
				if err != nil {
					return nil, fmt.Errorf("serviceclient: corrupt result %d: %w", r.GlobalID, err)
				}
				if o.GlobalID < 0 || o.GlobalID >= len(results) {
					return nil, fmt.Errorf("serviceclient: result id %d out of range", o.GlobalID)
				}
				results[o.GlobalID] = o
				outs[i] = o
			}
			j.updates <- engine.Update{
				Batch: ch.Batch, Batches: ch.Batches,
				Seconds: ch.Seconds, Results: outs,
			}
		case env.Final != nil:
			return env.Final, nil
		case env.Header != nil:
			// Resumed streams re-open with a header; nothing to assemble.
		default:
			return nil, errors.New("serviceclient: empty stream record")
		}
	}
}

func (j *RemoteJob) settle(fin *wire.Final, results []ipukernel.AlignOut) {
	if fin.Error != "" {
		j.err = errors.New(fin.Error)
		return
	}
	if fin.Report == nil {
		j.err = errors.New("serviceclient: final record carried neither report nor error")
		return
	}
	j.rep = fin.Report.Report(results)
}

// resume re-opens the result stream from cursor, retrying transport
// refusals like a submission. A 410 means the replay window outran this
// client; the job's delivered batches are unrecoverable, so resume fails.
func (j *RemoteJob) resume(ctx context.Context, cursor int) (io.ReadCloser, *bufio.Reader, error) {
	resp, err := j.c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			j.c.base+"/v1/jobs/"+j.ID+"/results?from="+strconv.Itoa(cursor), nil)
		if err != nil {
			return nil, err
		}
		if j.c.tenant != "" {
			req.Header.Set("X-Tenant", j.c.tenant)
		}
		return req, nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("serviceclient: resuming %s from %d: %w", j.ID, cursor, err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := readHeader(br); err != nil {
		resp.Body.Close()
		return nil, nil, err
	}
	return resp.Body, br, nil
}

// doRetry runs one transport operation with up to c.retries attempts.
// Retryable: connection errors, 429 and 503 (honouring Retry-After when
// the server sent one, else exponential backoff with full jitter).
// Other statuses fail immediately with the server's error body.
func (c *Client) doRetry(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt, lastErr); err != nil {
				return nil, err
			}
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode < 300:
			return resp, nil
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = &retryableStatus{
				status: resp.Status, retryAfter: parseRetryAfter(resp),
				body: drainError(resp),
			}
		default:
			return nil, fmt.Errorf("serviceclient: %s: %s", resp.Status, drainError(resp))
		}
	}
	return nil, fmt.Errorf("serviceclient: gave up after %d attempts: %w", c.retries, lastErr)
}

// retryableStatus carries a refused attempt's Retry-After hint through
// the backoff loop.
type retryableStatus struct {
	status     string
	retryAfter time.Duration
	body       string
}

func (e *retryableStatus) Error() string {
	if e.body != "" {
		return e.status + ": " + e.body
	}
	return e.status
}

// sleep waits out one backoff step: the server's Retry-After when the
// last refusal carried one, otherwise base<<attempt with full jitter,
// capped.
func (c *Client) sleep(ctx context.Context, attempt int, lastErr error) error {
	d := c.backoff << (attempt - 1)
	if d > c.cap {
		d = c.cap
	}
	d = time.Duration(c.rng.Int63n(int64(d)) + 1) // full jitter in (0, d]
	var rs *retryableStatus
	if errors.As(lastErr, &rs) && rs.retryAfter > 0 {
		d = rs.retryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter returns the refusal's Retry-After hint, or 0 when the
// server sent none. A header that is present but unparseable or
// non-positive still means "back off" — it is clamped to one second
// rather than discarded, so a server that derives a 0-second wait can
// never make the jittered fallback hot-loop in the millisecond range.
func parseRetryAfter(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}

// drainError reads a refused response's JSON {"error": …} body (or raw
// text) and closes it.
func drainError(resp *http.Response) string {
	defer resp.Body.Close()
	p, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return ""
	}
	var je struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(p, &je) == nil && je.Error != "" {
		return je.Error
	}
	return string(bytes.TrimSpace(p))
}

// Stats fetches the service's JSON stats snapshot into dst (pass a
// pointer to service.StatsReply or any compatible shape).
func (c *Client) Stats(ctx context.Context, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serviceclient: stats: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
