// Client transport tests: refused submissions retry with backoff until
// admitted, and a stream that dies mid-job resumes from the cursor —
// both without disturbing the assembled report.

package serviceclient_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/service"
	"github.com/sram-align/xdropipu/internal/serviceclient"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func testCfg() driver.Config {
	return driver.Config{
		IPUs: 1, Model: platform.GC200, TilesPerIPU: 8, Partition: true,
		Kernel: ipukernel.Config{
			Params:  core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256},
			LRSplit: true, WorkStealing: true, BusyWaitVariance: true, DualIssue: true,
		},
	}
}

func testData(t *testing.T, seed int64, maxCmp int) *workload.Dataset {
	t.Helper()
	d := synth.Reads(synth.ReadsSpec{
		Name: "cli", GenomeLen: 40000, Coverage: 8, MeanReadLen: 1800, MinReadLen: 700,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 500, Seed: seed, MaxComparisons: maxCmp,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func golden(t *testing.T, opts []engine.Option, d *workload.Dataset) *driver.Report {
	t.Helper()
	e := engine.New(opts...)
	defer e.Close()
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestServiceClientRetriesRefusals: the first submissions bounce off a
// 429 middleware; the client backs off and lands the job, and the report
// matches the in-process golden.
func TestServiceClientRetriesRefusals(t *testing.T) {
	opts := []engine.Option{engine.WithDriverConfig(testCfg()), engine.WithExecutors(1)}
	d := testData(t, 41, 18)
	want := golden(t, opts, d)

	svc := service.New(service.Config{Shards: 1, EngineOptions: opts})
	defer svc.Close()
	var refusals atomic.Int64
	refusals.Store(2)
	var attempts atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			attempts.Add(1)
			if refusals.Add(-1) >= 0 {
				w.Header().Set("Retry-After", "1")
				http.Error(w, `{"error":"synthetic saturation"}`, http.StatusTooManyRequests)
				return
			}
		}
		svc.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := serviceclient.New(ts.URL,
		serviceclient.WithTransportRetry(4),
		serviceclient.WithTransportBackoff(time.Millisecond, 10*time.Millisecond))
	job, err := c.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("report after retried submit differs\n got: %+v\nwant: %+v", got, want)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("submit attempts = %d, want 3 (two refusals, one success)", n)
	}
}

// TestServiceClientGivesUpAfterRetries: persistent refusal surfaces as a
// terminal error naming the exhausted attempts, not a hang.
func TestServiceClientGivesUpAfterRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"always full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := serviceclient.New(ts.URL,
		serviceclient.WithTransportRetry(3),
		serviceclient.WithTransportBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Submit(context.Background(), testData(t, 43, 6))
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("want exhausted-retries error, got %v", err)
	}
	if !strings.Contains(err.Error(), "always full") {
		t.Fatalf("terminal error lost the server's reason: %v", err)
	}
}

// abortOnce kills the first streaming response after limit lines,
// forcing the client onto its resume path exactly once.
type abortOnce struct {
	inner http.Handler
	limit int
	used  atomic.Bool
}

func (h *abortOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && h.used.CompareAndSwap(false, true) {
		h.inner.ServeHTTP(&lineLimitWriter{ResponseWriter: w, limit: h.limit}, r)
		return
	}
	h.inner.ServeHTTP(w, r)
}

type lineLimitWriter struct {
	http.ResponseWriter
	limit, lines int
}

func (w *lineLimitWriter) Write(p []byte) (int, error) {
	if w.lines >= w.limit {
		panic(http.ErrAbortHandler)
	}
	n, err := w.ResponseWriter.Write(p)
	for _, b := range p[:n] {
		if b == '\n' {
			w.lines++
		}
	}
	return n, err
}

func (w *lineLimitWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestServiceClientResumesDroppedStream: the submit stream dies after a
// few lines; the client resumes from its cursor, every comparison
// arrives exactly once, the report matches the golden, and the engine
// never re-executed a batch.
func TestServiceClientResumesDroppedStream(t *testing.T) {
	// Slow the batches slightly so the stream reliably has undelivered
	// chunks when the abort fires.
	plan := driver.NewFaultPlan(2, driver.FaultSpec{StragglerRate: 1, StragglerDelay: 20 * time.Millisecond})
	opts := []engine.Option{
		engine.WithDriverConfig(testCfg()), engine.WithExecutors(1),
		engine.WithMaxBatchJobs(4), engine.WithFaultPlan(plan),
	}
	calm := []engine.Option{
		engine.WithDriverConfig(testCfg()), engine.WithExecutors(1), engine.WithMaxBatchJobs(4),
	}
	d := testData(t, 47, 24)
	want := golden(t, calm, d)

	svc := service.New(service.Config{Shards: 1, EngineOptions: opts})
	defer svc.Close()
	ah := &abortOnce{inner: svc.Handler(), limit: 3}
	ts := httptest.NewServer(ah)
	defer ts.Close()

	c := serviceclient.New(ts.URL,
		serviceclient.WithStreamLinger(30*time.Second),
		serviceclient.WithTransportRetry(4),
		serviceclient.WithTransportBackoff(2*time.Millisecond, 20*time.Millisecond))
	job, err := c.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for u := range job.Results() {
		for _, o := range u.Results {
			seen[o.GlobalID]++
		}
	}
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ah.used.Load() {
		t.Fatal("abort middleware never fired; resume path untested")
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("comparison %d streamed %d times across resume", id, n)
		}
	}
	if len(seen) != len(d.Comparisons) {
		t.Fatalf("stream covered %d of %d comparisons", len(seen), len(d.Comparisons))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("report after resume differs\n got: %+v\nwant: %+v", got, want)
	}
	if st := svc.Shards()[0].Stats(); st.BatchesDone != int64(want.Batches) {
		t.Fatalf("engine executed %d batches for a %d-batch schedule: resume re-ran work",
			st.BatchesDone, want.Batches)
	}
}

// TestServiceClientCancel: Cancel settles Wait with the job's
// cancellation error.
func TestServiceClientCancel(t *testing.T) {
	plan := driver.NewFaultPlan(8, driver.FaultSpec{StragglerRate: 1, StragglerDelay: 100 * time.Millisecond})
	opts := []engine.Option{
		engine.WithDriverConfig(testCfg()), engine.WithExecutors(1),
		engine.WithMaxBatchJobs(4), engine.WithFaultPlan(plan),
	}
	svc := service.New(service.Config{Shards: 1, EngineOptions: opts})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	c := serviceclient.New(ts.URL)
	job, err := c.Submit(context.Background(), testData(t, 53, 20))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Cancel(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err == nil {
		t.Fatal("cancelled job's Wait returned no error")
	}
}
