// Package sparse provides the distributed-sparse-matrix substrate that
// ELBA and PASTIS are built on (§2.3, §2.4): COO/CSR matrices over generic
// nonzero payloads and a Gustavson SpGEMM with caller-supplied semirings,
// which is how the pipelines compute their AᵀA / ASAᵀ overlap products.
package sparse

import (
	"fmt"
	"sort"
	"sync"
)

// Triple is one COO nonzero.
type Triple[T any] struct {
	// Row and Col are the coordinates.
	Row, Col int
	// Val is the payload.
	Val T
}

// CSR is a compressed-sparse-row matrix over payload type T.
type CSR[T any] struct {
	// NumRows and NumCols are the logical dimensions.
	NumRows, NumCols int
	// RowPtr has NumRows+1 entries delimiting each row's nonzeros.
	RowPtr []int64
	// ColIdx holds column indices, row-major, sorted within a row.
	ColIdx []int32
	// Vals holds the payloads parallel to ColIdx.
	Vals []T
}

// NNZ returns the stored-nonzero count.
func (m *CSR[T]) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices and values of row r (shared slices).
func (m *CSR[T]) Row(r int) ([]int32, []T) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// FromTriples builds a CSR from unordered COO triples. Duplicate
// coordinates are merged with add.
func FromTriples[T any](rows, cols int, ts []Triple[T], add func(T, T) T) (*CSR[T], error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: triple (%d,%d) outside %d×%d", t.Row, t.Col, rows, cols)
		}
	}
	sort.SliceStable(ts, func(a, b int) bool {
		if ts[a].Row != ts[b].Row {
			return ts[a].Row < ts[b].Row
		}
		return ts[a].Col < ts[b].Col
	})
	m := &CSR[T]{NumRows: rows, NumCols: cols, RowPtr: make([]int64, rows+1)}
	for i := 0; i < len(ts); {
		j := i + 1
		v := ts[i].Val
		for j < len(ts) && ts[j].Row == ts[i].Row && ts[j].Col == ts[i].Col {
			v = add(v, ts[j].Val)
			j++
		}
		m.ColIdx = append(m.ColIdx, int32(ts[i].Col))
		m.Vals = append(m.Vals, v)
		m.RowPtr[ts[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// Transpose returns the transposed matrix.
func Transpose[T any](m *CSR[T]) *CSR[T] {
	t := &CSR[T]{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  make([]int64, m.NumCols+1),
		ColIdx:  make([]int32, m.NNZ()),
		Vals:    make([]T, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for r := 0; r < t.NumRows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	next := make([]int64, t.NumRows)
	copy(next, t.RowPtr[:t.NumRows])
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for k := lo; k < hi; k++ {
			c := m.ColIdx[k]
			p := next[c]
			next[c]++
			t.ColIdx[p] = int32(r)
			t.Vals[p] = m.Vals[k]
		}
	}
	return t
}

// Semiring defines the SpGEMM algebra: Mult combines a-nonzero (i,k) with
// b-nonzero (k,j); Add accumulates products landing on the same (i,j).
type Semiring[A, B, C any] struct {
	Mult func(a A, b B, k int) C
	Add  func(acc C, v C) C
}

// SpGEMM computes C = A·B row-wise (Gustavson) with the given semiring,
// parallelised over row blocks. The result has sorted column indices.
func SpGEMM[A, B, C any](a *CSR[A], b *CSR[B], sr Semiring[A, B, C]) (*CSR[C], error) {
	if a.NumCols != b.NumRows {
		return nil, fmt.Errorf("sparse: dimension mismatch %d×%d · %d×%d",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols)
	}
	type rowOut struct {
		cols []int32
		vals []C
	}
	out := make([]rowOut, a.NumRows)
	workers := 8
	if a.NumRows < workers {
		workers = a.NumRows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := make(map[int32]C)
			for r := w; r < a.NumRows; r += workers {
				clear(acc)
				acols, avals := a.Row(r)
				for i, k := range acols {
					bcols, bvals := b.Row(int(k))
					for j, c := range bcols {
						p := sr.Mult(avals[i], bvals[j], int(k))
						if old, ok := acc[c]; ok {
							acc[c] = sr.Add(old, p)
						} else {
							acc[c] = p
						}
					}
				}
				if len(acc) == 0 {
					continue
				}
				ro := rowOut{cols: make([]int32, 0, len(acc)), vals: make([]C, 0, len(acc))}
				for c := range acc {
					ro.cols = append(ro.cols, c)
				}
				sort.Slice(ro.cols, func(x, y int) bool { return ro.cols[x] < ro.cols[y] })
				for _, c := range ro.cols {
					ro.vals = append(ro.vals, acc[c])
				}
				out[r] = ro
			}
		}(w)
	}
	wg.Wait()

	c := &CSR[C]{NumRows: a.NumRows, NumCols: b.NumCols, RowPtr: make([]int64, a.NumRows+1)}
	for r := range out {
		c.RowPtr[r+1] = c.RowPtr[r] + int64(len(out[r].cols))
	}
	c.ColIdx = make([]int32, c.RowPtr[a.NumRows])
	c.Vals = make([]C, c.RowPtr[a.NumRows])
	for r := range out {
		copy(c.ColIdx[c.RowPtr[r]:], out[r].cols)
		copy(c.Vals[c.RowPtr[r]:], out[r].vals)
	}
	return c, nil
}

// Filter returns a copy of m keeping only nonzeros where keep returns
// true.
func Filter[T any](m *CSR[T], keep func(row, col int, v T) bool) *CSR[T] {
	out := &CSR[T]{NumRows: m.NumRows, NumCols: m.NumCols, RowPtr: make([]int64, m.NumRows+1)}
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			if keep(r, int(c), vals[i]) {
				out.ColIdx = append(out.ColIdx, c)
				out.Vals = append(out.Vals, vals[i])
			}
		}
		out.RowPtr[r+1] = int64(len(out.ColIdx))
	}
	return out
}

// UpperTriangle keeps nonzeros with col > row — the i<j half of a
// symmetric overlap matrix, one comparison per unordered pair.
func UpperTriangle[T any](m *CSR[T]) *CSR[T] {
	return Filter(m, func(r, c int, _ T) bool { return c > r })
}
