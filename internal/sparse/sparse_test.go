package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func addInt(a, b int) int { return a + b }

func denseOf(m *CSR[int]) [][]int {
	d := make([][]int, m.NumRows)
	for r := range d {
		d[r] = make([]int, m.NumCols)
		cols, vals := m.Row(r)
		for i, c := range cols {
			d[r][c] = vals[i]
		}
	}
	return d
}

func randomTriples(rng *rand.Rand, rows, cols, nnz int) []Triple[int] {
	ts := make([]Triple[int], nnz)
	for i := range ts {
		ts[i] = Triple[int]{
			Row: rng.Intn(rows),
			Col: rng.Intn(cols),
			Val: 1 + rng.Intn(5),
		}
	}
	return ts
}

func TestFromTriplesBasic(t *testing.T) {
	m, err := FromTriples(3, 4, []Triple[int]{
		{Row: 1, Col: 2, Val: 5},
		{Row: 0, Col: 0, Val: 1},
		{Row: 1, Col: 2, Val: 7}, // duplicate: merged via add
		{Row: 2, Col: 3, Val: 2},
	}, addInt)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	d := denseOf(m)
	if d[1][2] != 12 || d[0][0] != 1 || d[2][3] != 2 {
		t.Errorf("dense = %v", d)
	}
}

func TestFromTriplesRejectsOutOfRange(t *testing.T) {
	if _, err := FromTriples(2, 2, []Triple[int]{{Row: 2, Col: 0, Val: 1}}, addInt); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := FromTriples(2, 2, []Triple[int]{{Row: 0, Col: -1, Val: 1}}, addInt); err == nil {
		t.Error("negative col accepted")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m, err := FromTriples(rows, cols, randomTriples(rng, rows, cols, rng.Intn(40)), addInt)
		if err != nil {
			t.Fatal(err)
		}
		tt := Transpose(Transpose(m))
		a, b := denseOf(m), denseOf(tt)
		for r := range a {
			for c := range a[r] {
				if a[r][c] != b[r][c] {
					t.Fatalf("transpose involution broken at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestTransposeShape(t *testing.T) {
	m, _ := FromTriples(2, 5, []Triple[int]{{Row: 1, Col: 4, Val: 9}}, addInt)
	tt := Transpose(m)
	if tt.NumRows != 5 || tt.NumCols != 2 {
		t.Fatalf("shape %dx%d", tt.NumRows, tt.NumCols)
	}
	if denseOf(tt)[4][1] != 9 {
		t.Error("value misplaced")
	}
}

// TestSpGEMMAgainstDense: the generic Gustavson product must match the
// naive dense product under the (+,×) semiring.
func TestSpGEMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sr := Semiring[int, int, int]{
		Mult: func(a, b int, _ int) int { return a * b },
		Add:  func(x, y int) int { return x + y },
	}
	for trial := 0; trial < 60; trial++ {
		n, k, m := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a, err := FromTriples(n, k, randomTriples(rng, n, k, rng.Intn(30)), addInt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FromTriples(k, m, randomTriples(rng, k, m, rng.Intn(30)), addInt)
		if err != nil {
			t.Fatal(err)
		}
		c, err := SpGEMM(a, b, sr)
		if err != nil {
			t.Fatal(err)
		}
		da, db, dc := denseOf(a), denseOf(b), denseOf(c)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				want := 0
				for kk := 0; kk < k; kk++ {
					want += da[i][kk] * db[kk][j]
				}
				if dc[i][j] != want {
					t.Fatalf("trial %d: C[%d][%d] = %d, want %d", trial, i, j, dc[i][j], want)
				}
			}
		}
		// Column indices must be sorted within each row.
		for r := 0; r < c.NumRows; r++ {
			cols, _ := c.Row(r)
			for i := 1; i < len(cols); i++ {
				if cols[i-1] >= cols[i] {
					t.Fatal("row columns not strictly sorted")
				}
			}
		}
	}
}

func TestSpGEMMDimensionMismatch(t *testing.T) {
	a, _ := FromTriples(2, 3, nil, addInt)
	b, _ := FromTriples(4, 2, nil, addInt)
	sr := Semiring[int, int, int]{
		Mult: func(a, b int, _ int) int { return a * b },
		Add:  func(x, y int) int { return x + y },
	}
	if _, err := SpGEMM(a, b, sr); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSpGEMMDeterministicAccumulationOrder(t *testing.T) {
	// The Add function sees products in ascending-k order, which the
	// overlap semiring relies on for deterministic seed selection.
	a, _ := FromTriples(1, 3, []Triple[int]{
		{Row: 0, Col: 0, Val: 10}, {Row: 0, Col: 1, Val: 20}, {Row: 0, Col: 2, Val: 30},
	}, addInt)
	b, _ := FromTriples(3, 1, []Triple[int]{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1}, {Row: 2, Col: 0, Val: 1},
	}, addInt)
	var order []int
	sr := Semiring[int, int, int]{
		Mult: func(a, b int, k int) int { order = append(order, k); return a * b },
		Add:  func(x, y int) int { return x + y },
	}
	if _, err := SpGEMM(a, b, sr); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("accumulation order %v, want [0 1 2]", order)
	}
}

func TestFilterAndUpperTriangle(t *testing.T) {
	m, _ := FromTriples(3, 3, []Triple[int]{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 2},
		{Row: 1, Col: 0, Val: 3}, {Row: 2, Col: 2, Val: 4},
	}, addInt)
	up := UpperTriangle(m)
	if up.NNZ() != 1 || denseOf(up)[0][2] != 2 {
		t.Errorf("UpperTriangle wrong: %v", denseOf(up))
	}
	odd := Filter(m, func(_, _ int, v int) bool { return v%2 == 1 })
	if odd.NNZ() != 2 {
		t.Errorf("Filter kept %d, want 2", odd.NNZ())
	}
}

func TestFromTriplesPropertyNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(nRows, nCols uint8, n uint8) bool {
		rows, cols := int(nRows%10)+1, int(nCols%10)+1
		ts := randomTriples(rng, rows, cols, int(n%50))
		m, err := FromTriples(rows, cols, ts, addInt)
		if err != nil {
			return false
		}
		// NNZ never exceeds input triples, and RowPtr is monotone.
		if m.NNZ() > len(ts) {
			return false
		}
		for r := 0; r < rows; r++ {
			if m.RowPtr[r] > m.RowPtr[r+1] {
				return false
			}
		}
		return int(m.RowPtr[rows]) == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
