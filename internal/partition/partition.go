// Package partition implements the host-side work organisation of §4.2 and
// §4.3: interpreting the planned comparisons as a graph over sequences,
// greedily partitioning that graph so tiles can reuse sequences across
// comparisons (cutting host→device traffic), and k-partitioning the
// resulting items across tiles into load-balanced, SRAM-feasible batches.
package partition

import (
	"fmt"
	"sort"

	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Item is one indivisible group of comparisons destined for a single tile:
// either a graph partition (with its unique sequence set ω_i) or a single
// comparison when reuse is disabled.
type Item struct {
	// Seqs lists the global sequence indices the item needs (unique).
	Seqs []int
	// Cmps lists comparison indices into the dataset.
	Cmps []int
	// Bytes is the sequence payload (what the item costs to transfer),
	// summed from the arena's exact span lengths.
	Bytes int
	// Cost is the §4.2 runtime estimate: quadratic in the extension
	// lengths, summed over the item's comparisons.
	Cost float64
	// Copies marks single-comparison items that carry private sequence
	// copies: without the graph interpretation the host has no
	// relationship information, so tiles store and receive duplicates
	// (the state of the art the paper improves on, §4.3).
	Copies bool
}

// CostEstimate returns the batching cost estimate for one comparison. The
// paper uses the maximum running time, quadratic in the sequence lengths
// (§4.2): the left and right extension rectangles.
func CostEstimate(d *workload.Dataset, c workload.Comparison) float64 {
	lh, lv, rh, rv := d.ExtensionLens(c)
	return float64(lh)*float64(lv) + float64(rh)*float64(rv)
}

// Options configures item construction.
type Options struct {
	// SeqBudget caps a partition's sequence payload in bytes.
	SeqBudget int
	// Reuse enables the §4.3 graph partitioning; off, every comparison
	// becomes its own item (the "Singlecomparison" mode of Fig. 7).
	Reuse bool
	// MaxCmps caps comparisons per partition (0 = unlimited). The
	// driver sets it so small workloads still spread across all tiles
	// instead of pooling on a few; large workloads are unaffected.
	MaxCmps int
}

// BuildItems turns a dataset into schedulable items using the paper's
// greedy edge-list walk (§4.3): adjacent vertices join the open partition
// until the next vertex would exceed the sequence budget, then a new
// partition starts.
func BuildItems(d *workload.Dataset, opt Options) []Item {
	arena, plan := d.Spine()
	refs := arena.Refs()
	seqBudget := opt.SeqBudget
	maxCmps := opt.MaxCmps
	if maxCmps <= 0 {
		maxCmps = plan.Len() + 1
	}
	if !opt.Reuse {
		items := make([]Item, 0, plan.Len())
		for ci := 0; ci < plan.Len(); ci++ {
			c := plan.At(ci)
			it := Item{
				Seqs:   []int{c.H},
				Cmps:   []int{ci},
				Cost:   CostEstimate(d, c),
				Copies: true,
			}
			it.Bytes = int(refs[c.H].Len)
			if c.V != c.H {
				it.Seqs = append(it.Seqs, c.V)
				it.Bytes += int(refs[c.V].Len)
			}
			items = append(items, it)
		}
		return items
	}

	// Greedy graph growing (§4.3): start from a vertex, walk through its
	// edge list adding the adjacent vertices to the partition, and keep
	// following the newly added vertices' edges until the next vertex
	// would exceed the memory budget; then start a new partition. The
	// frontier walk keeps partitions topologically local regardless of
	// the sequence numbering, which is what makes reuse high on overlap
	// graphs. The walk scans only the plan's H/V columns — the seed
	// columns stay cold.
	adj := make([][]int, len(refs)) // vertex → incident edges
	for ci := range plan.H {
		h, v := int(plan.H[ci]), int(plan.V[ci])
		adj[h] = append(adj[h], ci)
		if v != h {
			adj[v] = append(adj[v], ci)
		}
	}

	var items []Item
	assigned := make([]bool, plan.Len())
	inPart := make([]int, len(refs)) // vertex → open-partition stamp
	for i := range inPart {
		inPart[i] = -1
	}
	var cur Item
	stamp := 0

	flush := func() {
		if len(cur.Cmps) > 0 {
			items = append(items, cur)
		}
		cur = Item{}
		stamp++
	}
	addSeq := func(s int) {
		if inPart[s] != stamp {
			inPart[s] = stamp
			cur.Seqs = append(cur.Seqs, s)
			cur.Bytes += int(refs[s].Len)
		}
	}
	need := func(s int) int {
		if inPart[s] == stamp {
			return 0
		}
		return int(refs[s].Len)
	}

	var queue []int
	for seed := range adj {
		if len(adj[seed]) == 0 {
			continue
		}
		queue = append(queue[:0], seed)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ci := range adj[u] {
				if assigned[ci] {
					continue
				}
				c := plan.At(ci)
				grow := need(c.H) + need(c.V)
				if cur.Bytes+grow > seqBudget || len(cur.Cmps) >= maxCmps {
					if len(cur.Cmps) == 0 {
						// A single comparison larger than the
						// budget gets its own item; the batcher
						// decides feasibility.
						addSeq(c.H)
						addSeq(c.V)
						cur.Cmps = append(cur.Cmps, ci)
						cur.Cost += CostEstimate(d, c)
						assigned[ci] = true
						flush()
					}
					// Leave the edge for a later partition rooted
					// nearby; close the full partition and restart
					// the walk from this vertex, preserving the
					// pending frontier: vertices discovered earlier
					// in the walk keep their queue slots, so their
					// unassigned edges extend the next partition
					// instead of falling through to the reuse-blind
					// mop-up sweep once their seed turns have passed.
					if len(cur.Cmps) > 0 {
						flush()
						pending := queue[qi+1:]
						copy(queue[1:1+len(pending)], pending)
						queue[0] = u
						queue = queue[:1+len(pending)]
						qi = 0
					}
					continue
				}
				wasH := inPart[c.H] == stamp
				wasV := inPart[c.V] == stamp
				addSeq(c.H)
				addSeq(c.V)
				// A vertex preserved across a flush may be re-appended
				// when a new-partition edge rediscovers it (its stamp
				// reset with the flush); the extra adjacency scan is
				// redundant-but-correct (assigned[] filters it) and
				// bounded by one slot per discovery, which keeps the
				// walk's grouping — and the pinned golden schedules —
				// unchanged.
				if !wasH && c.H != u {
					queue = append(queue, c.H)
				}
				if !wasV && c.V != u {
					queue = append(queue, c.V)
				}
				cur.Cmps = append(cur.Cmps, ci)
				cur.Cost += CostEstimate(d, c)
				assigned[ci] = true
			}
		}
	}
	flush()
	// Mop-up: edges skipped at a partition boundary whose endpoints were
	// both consumed by earlier walks never reappear on the frontier;
	// sweep them into fresh partitions so every comparison is scheduled
	// exactly once.
	for ci := range assigned {
		if assigned[ci] {
			continue
		}
		c := plan.At(ci)
		grow := need(c.H) + need(c.V)
		if (cur.Bytes+grow > seqBudget || len(cur.Cmps) >= maxCmps) && len(cur.Cmps) > 0 {
			flush()
		}
		addSeq(c.H)
		addSeq(c.V)
		cur.Cmps = append(cur.Cmps, ci)
		cur.Cost += CostEstimate(d, c)
		assigned[ci] = true
	}
	flush()
	return items
}

// ReuseFactor reports the transfer saving of a set of items: the ratio of
// naive per-comparison sequence bytes to the bytes the items actually
// carry. 1.0 means no reuse; 2.0 means each transferred sequence serves
// two comparisons on average.
func ReuseFactor(d *workload.Dataset, items []Item) float64 {
	arena, plan := d.Spine()
	refs := arena.Refs()
	var naive, actual int64
	for _, it := range items {
		actual += int64(it.Bytes)
		for _, ci := range it.Cmps {
			naive += int64(refs[plan.H[ci]].Len) + int64(refs[plan.V[ci]].Len)
		}
	}
	if actual == 0 {
		return 1
	}
	return float64(naive) / float64(actual)
}

// MaxMinExtension returns the largest min-side extension length over the
// dataset's comparisons — the δ that sizes unbounded DP buffers.
func MaxMinExtension(d *workload.Dataset) int {
	arena, plan := d.Spine()
	refs := arena.Refs()
	mm := 0
	for ci := 0; ci < plan.Len(); ci++ {
		if v := cmpMaxMin(refs, plan.At(ci)); v > mm {
			mm = v
		}
	}
	return mm
}

// traceAllowances returns the per-tile trace-arena allowances the kernel
// SRAM model charges for the dataset's worst single extension in each
// recording pool — fused (charged once per thread) and replay (one
// shared serialized arena) — both zero with traceback off. Kept in
// lockstep with TileMemoryBytes so a budget derived here always admits
// tiles the gate accepts.
func traceAllowances(d *workload.Dataset, cfg ipukernel.Config) (fused, replay int) {
	if !cfg.Traceback {
		return 0, 0
	}
	arena, plan := d.Spine()
	refs := arena.Refs()
	for ci := 0; ci < plan.Len(); ci++ {
		f, r := cmpTraceCharges(refs, plan.At(ci), cfg)
		fused = max(fused, f)
		replay = max(replay, r)
	}
	return fused, replay
}

// DeriveSeqBudget computes the per-partition sequence budget for a dataset
// under a kernel configuration: tile SRAM minus the thread work buffers
// the configured algorithm and kernel tier need for the dataset's largest
// extension, minus (with traceback on) the shared trace-arena allowance
// for the worst extension, minus a small allowance for tuples and
// results. It fails when the per-tile buffers alone exceed tile SRAM —
// which is precisely what happens to the unrestricted algorithms on long
// reads (§3) and what δb fixes.
func DeriveSeqBudget(d *workload.Dataset, cfg ipukernel.Config, model platform.IPUModel) (int, error) {
	threads := cfg.Threads
	if threads <= 0 || threads > model.ThreadsPerTile {
		threads = model.ThreadsPerTile
	}
	const allowance = 8 * 1024
	fusedA, replayA := traceAllowances(d, cfg)
	bufs := threads*cfg.WorkBufBytesPerThread(MaxMinExtension(d)) +
		threads*fusedA + replayA
	budget := model.DataSRAM() - bufs - allowance
	if budget <= 0 {
		return 0, fmt.Errorf(
			"partition: %v work buffers need %d B of the %d B tile SRAM; use the memory-restricted algorithm or a smaller δb",
			cfg.Params.Algo, bufs, model.DataSRAM())
	}
	return budget, nil
}

// tileBuilder incrementally assembles one tile's work while tracking the
// SRAM formula of the kernel configuration. Tiles reference the dataset's
// shared arena spine: adding a sequence appends its span, never its
// bytes. The tile's slab table stays nil — the driver binds it per
// execution attempt from the arena's pinned slab set (Batch.Bound), so
// building batches never forces spilled slabs resident.
type tileBuilder struct {
	work      ipukernel.TileWork
	localIdx  map[int]int
	load      float64
	seqBytes  int
	maxMin    int
	maxFused  int
	maxReplay int
}

func newTileBuilder() *tileBuilder {
	return &tileBuilder{localIdx: make(map[int]int)}
}

func (tb *tileBuilder) memoryWith(refs []workload.SeqRef, plan *workload.Plan, it *Item, cfg ipukernel.Config, threads int) int {
	seqBytes := tb.seqBytes
	nSeqs := len(tb.work.Seqs)
	for _, s := range it.Seqs {
		if _, ok := tb.localIdx[s]; !ok || it.Copies {
			seqBytes += int(refs[s].Len)
			nSeqs++
		}
	}
	nJobs := len(tb.work.Jobs) + len(it.Cmps)
	maxMin, maxFused, maxReplay := tb.maxMin, tb.maxFused, tb.maxReplay
	// Same comparison source as add(): admission and placement must
	// agree on seed geometry.
	for _, ci := range it.Cmps {
		c := plan.At(ci)
		if mm := cmpMaxMin(refs, c); mm > maxMin {
			maxMin = mm
		}
		f, r := cmpTraceCharges(refs, c, cfg)
		maxFused = max(maxFused, f)
		maxReplay = max(maxReplay, r)
	}
	return seqBytes + nSeqs*8 + nJobs*ipukernel.JobTupleBytes +
		threads*cfg.WorkBufBytesPerThread(maxMin) +
		threads*maxFused + maxReplay +
		nJobs*ipukernel.ResultBytes + 64
}

// cmpMaxMin computes the larger of the two min-side extension lengths of
// c from the arena spans — the same source the byte budgets use, so SRAM
// admission and placement can never disagree with the slab the kernel
// actually executes.
func cmpMaxMin(refs []workload.SeqRef, c workload.Comparison) int {
	rh := int(refs[c.H].Len) - c.SeedH - c.SeedLen
	rv := int(refs[c.V].Len) - c.SeedV - c.SeedLen
	return max(min(c.SeedH, c.SeedV), min(rh, rv))
}

// cmpTraceCharges is the traceback analogue of cmpMaxMin: the larger of
// the two extensions' direction-trace allowances under the kernel's
// bound, split into the fused (per-thread) and replay (shared) pools the
// way the kernel would record each side (both zero with traceback off).
func cmpTraceCharges(refs []workload.SeqRef, c workload.Comparison, cfg ipukernel.Config) (fused, replay int) {
	rh := int(refs[c.H].Len) - c.SeedH - c.SeedLen
	rv := int(refs[c.V].Len) - c.SeedV - c.SeedLen
	lf, lr := cfg.TraceCharges(c.SeedH, c.SeedV)
	rf, rr := cfg.TraceCharges(rh, rv)
	return max(lf, rf), max(lr, rr)
}

func (tb *tileBuilder) add(refs []workload.SeqRef, plan *workload.Plan, it *Item, cfg ipukernel.Config, fanout []int32) {
	for _, s := range it.Seqs {
		if _, ok := tb.localIdx[s]; !ok || it.Copies {
			tb.localIdx[s] = len(tb.work.Seqs)
			tb.work.Seqs = append(tb.work.Seqs, refs[s])
			tb.seqBytes += int(refs[s].Len)
		}
	}
	for _, ci := range it.Cmps {
		c := plan.At(ci)
		job := ipukernel.SeedJob{
			HLocal: tb.localIdx[c.H],
			VLocal: tb.localIdx[c.V],
			SeedH:  c.SeedH, SeedV: c.SeedV, SeedLen: c.SeedLen,
			GlobalID: ci,
		}
		if fanout != nil {
			job.Fanout = int(fanout[ci])
		}
		tb.work.Jobs = append(tb.work.Jobs, job)
		if mm := cmpMaxMin(refs, c); mm > tb.maxMin {
			tb.maxMin = mm
		}
		f, r := cmpTraceCharges(refs, c, cfg)
		tb.maxFused = max(tb.maxFused, f)
		tb.maxReplay = max(tb.maxReplay, r)
	}
	tb.load += it.Cost
}

// MakeBatches distributes items across tiles into BSP batches: items are
// placed largest-cost-first onto the least-loaded tile of the open batch
// that still has the SRAM for them (longest-processing-time k-partitioning
// under the §4.2 quadratic estimate); when no tile fits, the batch closes.
func MakeBatches(d *workload.Dataset, items []Item, tiles int, cfg ipukernel.Config, model platform.IPUModel) ([]*ipukernel.Batch, error) {
	return MakeBatchesLimit(d, items, tiles, cfg, model, 0)
}

// MakeBatchesLimit is MakeBatches with a cap on jobs per batch (0 = no
// cap). Finer batches keep the multi-IPU work queue deep enough for the
// driver to scale and prefetch (§4.4).
func MakeBatchesLimit(d *workload.Dataset, items []Item, tiles int, cfg ipukernel.Config, model platform.IPUModel, maxJobs int) ([]*ipukernel.Batch, error) {
	return MakeBatchesFanout(d, items, tiles, cfg, model, maxJobs, nil)
}

// MakeBatchesFanout is MakeBatchesLimit with per-comparison fan-out
// counts: fanout[ci] is the number of planned comparisons that comparison
// ci represents after duplicate-extension elimination (nil = every
// comparison stands for itself). The counts ride along on the tile jobs
// so the kernel can account the work dedup skipped.
func MakeBatchesFanout(d *workload.Dataset, items []Item, tiles int, cfg ipukernel.Config, model platform.IPUModel, maxJobs int, fanout []int32) ([]*ipukernel.Batch, error) {
	if tiles <= 0 {
		return nil, fmt.Errorf("partition: tiles must be positive")
	}
	if maxJobs <= 0 {
		maxJobs = 1 << 30
	}
	threads := cfg.Threads
	if threads <= 0 || threads > model.ThreadsPerTile {
		threads = model.ThreadsPerTile
	}
	budget := model.DataSRAM()
	arena, plan := d.Spine()
	refs := arena.Refs()

	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return items[order[a]].Cost > items[order[b]].Cost })

	var batches []*ipukernel.Batch
	var builders []*tileBuilder

	closeBatch := func() {
		if len(builders) == 0 {
			return
		}
		b := &ipukernel.Batch{}
		for _, tb := range builders {
			if len(tb.work.Jobs) > 0 {
				b.Tiles = append(b.Tiles, tb.work)
			}
		}
		if len(b.Tiles) > 0 {
			batches = append(batches, b)
		}
		builders = nil
	}

	batchJobs := 0
	for _, idx := range order {
		it := &items[idx]
		placed := false
		for attempt := 0; attempt < 2 && !placed; attempt++ {
			if batchJobs+len(it.Cmps) > maxJobs && batchJobs > 0 {
				closeBatch()
				batchJobs = 0
			}
			if builders == nil {
				builders = make([]*tileBuilder, tiles)
				for i := range builders {
					builders[i] = newTileBuilder()
				}
			}
			// Least-loaded tile that still fits the item.
			best := -1
			for ti, tb := range builders {
				if tb.memoryWith(refs, plan, it, cfg, threads) > budget {
					continue
				}
				if best < 0 || tb.load < builders[best].load {
					best = ti
				}
			}
			if best >= 0 {
				builders[best].add(refs, plan, it, cfg, fanout)
				batchJobs += len(it.Cmps)
				placed = true
				break
			}
			// No room anywhere: start a fresh batch and retry once.
			closeBatch()
			batchJobs = 0
		}
		if !placed {
			return nil, fmt.Errorf("partition: item with %d comparisons (%d B of sequences) cannot fit an empty tile; reduce δb or split the item",
				len(it.Cmps), it.Bytes)
		}
	}
	closeBatch()
	return batches, nil
}
