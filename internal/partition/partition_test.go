package partition

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/ipu"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func testKernelCfg() ipukernel.Config {
	return ipukernel.Config{
		Params: core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256},
	}
}

func readsData(t *testing.T, seed int64) *workload.Dataset {
	t.Helper()
	d := synth.Reads(synth.ReadsSpec{
		Name: "p", GenomeLen: 40000, Coverage: 8, MeanReadLen: 2000, MinReadLen: 700,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 500, Seed: seed,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// coverage checks every comparison appears in exactly one item.
func coverage(t *testing.T, d *workload.Dataset, items []Item) {
	t.Helper()
	seen := make([]int, len(d.Comparisons))
	for _, it := range items {
		for _, ci := range it.Cmps {
			seen[ci]++
		}
		// Item sequence lists must cover their comparisons and stay
		// unique.
		have := map[int]bool{}
		for _, s := range it.Seqs {
			if have[s] {
				t.Fatalf("duplicate sequence %d in item", s)
			}
			have[s] = true
		}
		for _, ci := range it.Cmps {
			c := d.Comparisons[ci]
			if !have[c.H] || !have[c.V] {
				t.Fatalf("item missing sequences of comparison %d", ci)
			}
		}
	}
	for ci, n := range seen {
		if n != 1 {
			t.Fatalf("comparison %d assigned %d times", ci, n)
		}
	}
}

func TestBuildItemsNoReuse(t *testing.T) {
	d := readsData(t, 1)
	items := BuildItems(d, Options{SeqBudget: 1 << 20, Reuse: false})
	coverage(t, d, items)
	if len(items) != len(d.Comparisons) {
		t.Fatalf("no-reuse should yield one item per comparison: %d != %d", len(items), len(d.Comparisons))
	}
	if rf := ReuseFactor(d, items); rf != 1 {
		t.Errorf("no-reuse ReuseFactor = %f, want 1", rf)
	}
}

func TestBuildItemsWithReuse(t *testing.T) {
	d := readsData(t, 2)
	items := BuildItems(d, Options{SeqBudget: 200_000, Reuse: true})
	coverage(t, d, items)
	if len(items) >= len(d.Comparisons) {
		t.Errorf("reuse produced %d items for %d comparisons — no grouping", len(items), len(d.Comparisons))
	}
	rf := ReuseFactor(d, items)
	if rf <= 1.2 {
		t.Errorf("reuse factor %.2f too low for an overlap graph", rf)
	}
	// Budget must hold for every item (single-comparison spillovers may
	// exceed it only when one comparison alone is larger).
	for _, it := range items {
		if it.Bytes > 200_000 && len(it.Cmps) > 1 {
			t.Errorf("multi-comparison item exceeds budget: %d B", it.Bytes)
		}
	}
}

func TestBuildItemsRespectsTinyBudget(t *testing.T) {
	d := readsData(t, 3)
	items := BuildItems(d, Options{SeqBudget: 1, Reuse: true}) // nothing fits: every comparison alone
	coverage(t, d, items)
	for _, it := range items {
		if len(it.Cmps) != 1 {
			t.Fatalf("tiny budget produced a grouped item with %d comparisons", len(it.Cmps))
		}
	}
}

func TestCostEstimate(t *testing.T) {
	d := &workload.Dataset{
		Sequences: [][]byte{make([]byte, 100), make([]byte, 80)},
		Comparisons: []workload.Comparison{
			{H: 0, V: 1, SeedH: 40, SeedV: 30, SeedLen: 10},
		},
	}
	// left: 40×30, right: 50×40.
	want := float64(40*30 + 50*40)
	if got := CostEstimate(d, d.Comparisons[0]); got != want {
		t.Errorf("CostEstimate = %f, want %f", got, want)
	}
}

func TestMakeBatchesCoverageAndMemory(t *testing.T) {
	d := readsData(t, 4)
	cfg := testKernelCfg()
	items := BuildItems(d, Options{SeqBudget: 150_000, Reuse: true})
	batches, err := MakeBatches(d, items, 16, cfg, platform.GC200)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, len(d.Comparisons))
	for _, b := range batches {
		if len(b.Tiles) > 16 {
			t.Fatalf("batch uses %d tiles, limit 16", len(b.Tiles))
		}
		for ti := range b.Tiles {
			tw := &b.Tiles[ti]
			if mem := cfg.TileMemoryBytes(tw, platform.GC200); mem > platform.GC200.DataSRAM() {
				t.Fatalf("tile memory %d exceeds SRAM budget", mem)
			}
			for _, j := range tw.Jobs {
				seen[j.GlobalID]++
				// Local references must resolve.
				if j.HLocal >= len(tw.Seqs) || j.VLocal >= len(tw.Seqs) {
					t.Fatal("dangling local sequence reference")
				}
			}
		}
	}
	for ci, n := range seen {
		if n != 1 {
			t.Fatalf("comparison %d scheduled %d times", ci, n)
		}
	}
}

func TestMakeBatchesFewerWithReuse(t *testing.T) {
	// The §6.2 measurement: partitioning reduces batch count (−52% for
	// E. coli 100x, −44% for C. elegans). Two tiles force multi-batch
	// schedules at this workload size.
	d := synth.Reads(synth.ReadsSpec{
		Name: "dense", GenomeLen: 80000, Coverage: 12, MeanReadLen: 2000, MinReadLen: 700,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 500, Seed: 5,
	})
	cfg := testKernelCfg()
	tiles := 2
	single, err := MakeBatches(d, BuildItems(d, Options{SeqBudget: 150_000, Reuse: false}), tiles, cfg, platform.GC200)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MakeBatches(d, BuildItems(d, Options{SeqBudget: 150_000, Reuse: true}), tiles, cfg, platform.GC200)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) < 2 {
		t.Fatalf("workload too small to exercise batching: %d batches", len(single))
	}
	if len(multi) >= len(single) {
		t.Errorf("partitioning did not reduce batches: %d -> %d", len(single), len(multi))
	}
}

func TestMakeBatchesLoadBalance(t *testing.T) {
	d := readsData(t, 6)
	cfg := testKernelCfg()
	items := BuildItems(d, Options{SeqBudget: 150_000, Reuse: true})
	batches, err := MakeBatches(d, items, 4, cfg, platform.GC200)
	if err != nil {
		t.Fatal(err)
	}
	// In the first (fullest) batch, tile cost estimates should be within
	// a reasonable factor of each other (LPT guarantee-ish).
	if len(batches) == 0 {
		t.Fatal("no batches")
	}
	b := batches[0]
	if len(b.Tiles) < 2 {
		t.Skip("not enough tiles to assess balance")
	}
	var lo, hi float64
	for ti := range b.Tiles {
		var load float64
		for _, j := range b.Tiles[ti].Jobs {
			load += CostEstimate(d, d.Comparisons[j.GlobalID])
		}
		if ti == 0 || load < lo {
			lo = load
		}
		if load > hi {
			hi = load
		}
	}
	if lo <= 0 || hi/lo > 20 {
		t.Errorf("first batch badly balanced: min %.0f max %.0f", lo, hi)
	}
}

func TestMakeBatchesErrors(t *testing.T) {
	d := readsData(t, 7)
	items := BuildItems(d, Options{SeqBudget: 150_000, Reuse: true})
	if _, err := MakeBatches(d, items, 0, testKernelCfg(), platform.GC200); err == nil {
		t.Error("tiles=0 accepted")
	}
	// An item that cannot fit even an empty tile must be rejected.
	big := &workload.Dataset{
		Sequences: [][]byte{make([]byte, 400*1024), make([]byte, 400*1024)},
		Comparisons: []workload.Comparison{
			{H: 0, V: 1, SeedH: 1000, SeedV: 1000, SeedLen: 17},
		},
	}
	bigItems := BuildItems(big, Options{SeqBudget: 1 << 30, Reuse: false})
	if _, err := MakeBatches(big, bigItems, 4, testKernelCfg(), platform.GC200); err == nil {
		t.Error("oversized item accepted")
	}
}

func TestStandardAlgoNeedsMoreBatches(t *testing.T) {
	// The abstract's claim that memory restriction improves scaling:
	// Standard3's 3δ·threads buffers crowd sequences out of SRAM, so the
	// same workload needs more batches than Restricted2 with a small δb.
	d := synth.Reads(synth.ReadsSpec{
		Name: "long", GenomeLen: 150000, Coverage: 8, MeanReadLen: 4500, MinReadLen: 2500,
		MaxReadLen: 6000,
		Errors:     synth.HiFiDNA(), SeedLen: 17, MinOverlap: 2000, Seed: 8, MaxComparisons: 160,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	tiles := 1
	restricted := testKernelCfg()
	rBudget, err := DeriveSeqBudget(d, restricted, platform.GC200)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := MakeBatches(d, BuildItems(d, Options{SeqBudget: rBudget, Reuse: true}), tiles, restricted, platform.GC200)
	if err != nil {
		t.Fatal(err)
	}
	standard := restricted
	standard.Params.Algo = core.AlgoStandard3
	sBudget, err := DeriveSeqBudget(d, standard, platform.GC200)
	if err != nil {
		t.Fatal(err)
	}
	if sBudget >= rBudget {
		t.Fatalf("standard budget %d should be below restricted %d", sBudget, rBudget)
	}
	sb, err := MakeBatches(d, BuildItems(d, Options{SeqBudget: sBudget, Reuse: true}), tiles, standard, platform.GC200)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb) <= len(rb) {
		t.Errorf("standard3 (%d batches) should need more batches than restricted2 (%d)", len(sb), len(rb))
	}
}

// TestBuildItemsCoverageFuzz drives the greedy walk across many random
// graph shapes and budgets; every comparison must land in exactly one
// item (regression: edges skipped at partition boundaries used to be
// lost when both endpoints had already left the frontier).
func TestBuildItemsCoverageFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nSeqs := 2 + rng.Intn(40)
		d := &workload.Dataset{}
		for i := 0; i < nSeqs; i++ {
			d.Sequences = append(d.Sequences, make([]byte, 50+rng.Intn(500)))
		}
		nCmps := rng.Intn(120)
		for i := 0; i < nCmps; i++ {
			h, v := rng.Intn(nSeqs), rng.Intn(nSeqs)
			if h == v {
				continue
			}
			d.Comparisons = append(d.Comparisons, workload.Comparison{
				H: h, V: v, SeedH: 10, SeedV: 10, SeedLen: 17,
			})
		}
		budget := 100 + rng.Intn(3000)
		maxCmps := []int{0, 1, 3, 10}[trial%4]
		items := BuildItems(d, Options{SeqBudget: budget, Reuse: true, MaxCmps: maxCmps})
		coverage(t, d, items)
		if maxCmps > 0 {
			for _, it := range items {
				if len(it.Cmps) > maxCmps {
					t.Fatalf("trial %d: item holds %d cmps, cap %d", trial, len(it.Cmps), maxCmps)
				}
			}
		}
	}
}

// TestBuildItemsFrontierPreservedAcrossFlush pins the boundary-restart
// fix: closing a full partition used to reset the walk queue to just the
// current vertex (`queue = append(queue[:0], u)`), discarding frontier
// vertices discovered earlier. Their unassigned edges could only
// resurface when those vertices' own seed turns came — or, if those had
// already passed, in the reuse-blind mop-up sweep — fragmenting
// partitions on dense graphs. This workload (found by searching random
// graphs against the old walk) yielded ReuseFactor 2.81 before the fix
// and 3.48 with the frontier preserved; the threshold sits between the
// two so a regression to the old restart fails loudly.
func TestBuildItemsFrontierPreservedAcrossFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(796))
	n := 12 + rng.Intn(30)
	d := &workload.Dataset{}
	for i := 0; i < n; i++ {
		d.Sequences = append(d.Sequences, make([]byte, 200+rng.Intn(600)))
	}
	m := 30 + rng.Intn(120)
	for i := 0; i < m; i++ {
		h, v := rng.Intn(n), rng.Intn(n)
		if h == v {
			continue
		}
		d.Comparisons = append(d.Comparisons, workload.Comparison{
			H: h, V: v, SeedH: 10, SeedV: 10, SeedLen: 17,
		})
	}
	budget := 1000 + rng.Intn(2500)
	items := BuildItems(d, Options{SeqBudget: budget, Reuse: true})
	coverage(t, d, items)
	if rf := ReuseFactor(d, items); rf < 3.0 {
		t.Errorf("ReuseFactor = %.3f, want ≥ 3.0 (old frontier-discarding walk scored 2.81)", rf)
	}
	for _, it := range items {
		if it.Bytes > budget && len(it.Cmps) > 1 {
			t.Errorf("multi-comparison item exceeds budget: %d B", it.Bytes)
		}
	}
}

func TestDeriveSeqBudget(t *testing.T) {
	// 25 kb reads: the unrestricted variants cannot fit tile SRAM at all
	// (the paper's headline constraint), the restricted one can.
	d := &workload.Dataset{
		Sequences: [][]byte{make([]byte, 25000), make([]byte, 25000)},
		Comparisons: []workload.Comparison{
			{H: 0, V: 1, SeedH: 12500, SeedV: 12500, SeedLen: 17},
		},
	}
	cfg := testKernelCfg() // δb = 256
	budget, err := DeriveSeqBudget(d, cfg, platform.GC200)
	if err != nil || budget < 50000 {
		t.Fatalf("restricted budget = %d, err = %v", budget, err)
	}
	cfg.Params.Algo = core.AlgoStandard3
	if _, err := DeriveSeqBudget(d, cfg, platform.GC200); err == nil {
		t.Fatal("standard3 on 25kb reads should not fit tile SRAM")
	}
	cfg.Params.Algo = core.AlgoRestricted2
	cfg.Params.DeltaB = 0 // unbounded restricted: 2δ also too large for 6 threads
	if _, err := DeriveSeqBudget(d, cfg, platform.GC200); err == nil {
		t.Fatal("unbounded 2δ buffers on 25kb reads should not fit six threads")
	}
}

// TestTracebackBudgetAdmitsWithinSRAM pins ROADMAP item (a): with
// traceback enabled, the derived sequence budget must only admit tiles
// whose full SRAM model — work buffers plus the shared trace arena —
// fits the device, and the modeled arena allowance must dominate the
// peak trace footprint the kernel actually records while replaying
// extensions. Exercised across every kernel tier so the narrow-tier
// working-set savings never under-charge the trace arena.
func TestTracebackBudgetAdmitsWithinSRAM(t *testing.T) {
	for _, tier := range []core.Tier{core.TierWide, core.TierNarrow, core.TierAuto} {
		d := readsData(t, 11)
		cfg := testKernelCfg()
		cfg.Traceback = true
		cfg.KernelTier = tier
		budget, err := DeriveSeqBudget(d, cfg, platform.GC200)
		if err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		// MaxCmps mirrors the driver's spread cap: it also keeps the
		// per-item tuple/result overhead inside the budget allowance.
		items := BuildItems(d, Options{SeqBudget: budget, Reuse: true, MaxCmps: 64})
		batches, err := MakeBatches(d, items, 8, cfg, platform.GC200)
		if err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		for _, b := range batches {
			allowance := 0
			for ti := range b.Tiles {
				tw := &b.Tiles[ti]
				if mem := cfg.TileMemoryBytes(tw, platform.GC200); mem > platform.GC200.DataSRAM() {
					t.Fatalf("tier %v: admitted tile needs %d B of the %d B SRAM",
						tier, mem, platform.GC200.DataSRAM())
				}
				for _, j := range tw.Jobs {
					hn, vn := int(tw.Seqs[j.HLocal].Len), int(tw.Seqs[j.VLocal].Len)
					for _, tb := range []int{
						cfg.ExtensionTraceBytes(j.SeedH, j.SeedV),
						cfg.ExtensionTraceBytes(hn-j.SeedH-j.SeedLen, vn-j.SeedV-j.SeedLen),
					} {
						if tb > allowance {
							allowance = tb
						}
					}
				}
			}
			arena, _ := d.Spine()
			res, err := ipukernel.Run(ipu.New(ipu.Config{Model: platform.GC200}), b.Bound(arena.SlabViews()), cfg)
			if err != nil {
				t.Fatalf("tier %v: %v", tier, err)
			}
			if res.PeakTraceBytes == 0 {
				t.Fatalf("tier %v: traceback run recorded no trace bytes", tier)
			}
			if res.PeakTraceBytes > allowance {
				t.Fatalf("tier %v: peak trace %d B exceeds modeled arena allowance %d B",
					tier, res.PeakTraceBytes, allowance)
			}
		}
	}
}
