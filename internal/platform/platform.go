// Package platform holds the machine models and calibrated cost constants
// used to convert execution traces of the real algorithms into modeled run
// times. No IPU, A100 or EPYC testbed exists in a pure-Go reproduction, so
// — per the substitution rule — timing is modeled while computation is
// real. The paper itself derives IPU time from deterministic cycle counts
// (t = cycles/f, §5.1), so a cycle model is faithful to its methodology.
//
// Calibration (documented in DESIGN.md §4.2): with the defaults below the
// models reproduce the paper's headline comparisons — ≈100k GCUPS for one
// IPU on C. elegans at X=5, ≈2× over the SeqAn CPU model, ≈10× over the
// LOGAN GPU model, with both ratios shrinking at X=20 as the paper reports.
package platform

// IPUModel describes one Graphcore IPU generation (§2.1.1).
type IPUModel struct {
	// Name is the marketing name (GC200, BOW).
	Name string
	// Tiles is the number of independent cores with local SRAM.
	Tiles int
	// ThreadsPerTile is the hardware thread count (temporal
	// multithreading, fixed six-slot rotation).
	ThreadsPerTile int
	// ClockHz is the tile clock frequency.
	ClockHz float64
	// SRAMPerTile is the local memory per tile in bytes (624 KB).
	SRAMPerTile int
	// CodeReserve is SRAM set aside for code, stack and runtime per
	// tile; the batcher may not fill it with data.
	CodeReserve int
	// ExchangeBytesPerSec is the aggregate on-chip exchange bandwidth.
	ExchangeBytesPerSec float64
	// HostLinkBytesPerSec is the host↔IPU-system link (100 Gb/s
	// Ethernet, shared by every IPU attached to the host; §2.1.1).
	HostLinkBytesPerSec float64
	// ThreadSlotCycles is the instruction-slot rotation length: each
	// thread retires one instruction bundle every ThreadSlotCycles
	// device cycles (six on both generations).
	ThreadSlotCycles int
}

// GC200 is the Mk2 IPU used on the ex3 system (§5).
var GC200 = IPUModel{
	Name:                "GC200",
	Tiles:               1472,
	ThreadsPerTile:      6,
	ClockHz:             1.33e9,
	SRAMPerTile:         624 * 1024,
	CodeReserve:         72 * 1024,
	ExchangeBytesPerSec: 7.83e12,
	HostLinkBytesPerSec: 100e9 / 8,
	ThreadSlotCycles:    6,
}

// BOW is the Bow IPU (same layout, higher clock) used for the real-world
// pipeline runs (§5).
var BOW = IPUModel{
	Name:                "BOW",
	Tiles:               1472,
	ThreadsPerTile:      6,
	ClockHz:             1.85e9,
	SRAMPerTile:         624 * 1024,
	CodeReserve:         72 * 1024,
	ExchangeBytesPerSec: 10.9e12,
	HostLinkBytesPerSec: 100e9 / 8,
	ThreadSlotCycles:    6,
}

// DataSRAM returns the per-tile SRAM available to sequences, comparison
// tuples, work buffers and outputs.
func (m IPUModel) DataSRAM() int { return m.SRAMPerTile - m.CodeReserve }

// ThreadSeconds converts a per-thread instruction count into seconds: one
// instruction bundle retires per slot rotation.
func (m IPUModel) ThreadSeconds(instr int64) float64 {
	return float64(instr) * float64(m.ThreadSlotCycles) / m.ClockHz
}

// KernelCost parameterises the X-Drop codelet in thread-instruction
// bundles. The defaults are calibrated so one GC200 tile sustains
// clock/InstrPerCell cell updates per second with all six threads busy,
// which lands the full device at the paper's GCUPS scale (§6.2).
type KernelCost struct {
	// InstrPerCell is the bundle count per DP cell without dual issue.
	InstrPerCell float64
	// DualIssueSpeedup divides InstrPerCell when the VLIW float/int
	// pipelines are co-issued (§4.1.4 measures 1.30–1.35×).
	DualIssueSpeedup float64
	// InstrPerIteration is the per-antidiagonal loop overhead (window
	// bookkeeping, bounds update).
	InstrPerIteration float64
	// InstrPerAlignment is the per-extension setup/teardown cost.
	InstrPerAlignment float64
	// StealInstr is the cost of one work-steal attempt (global value
	// swap plus branch; §4.1.3).
	StealInstr float64
	// BusyWaitInstr is the thread-unique busy-wait loop stride used by
	// eventual work stealing to break steal ties (§4.1.3).
	BusyWaitInstr float64
}

// DefaultKernelCost is the calibrated codelet cost model.
var DefaultKernelCost = KernelCost{
	InstrPerCell:      4.5,
	DualIssueSpeedup:  1.3,
	InstrPerIteration: 10,
	InstrPerAlignment: 260,
	StealInstr:        48,
	BusyWaitInstr:     7,
}

// Scaled returns a proportionally smaller machine: parallel resources
// (tiles) divided by s with per-tile behaviour unchanged. Experiments use
// matched scaling across IPU/CPU/GPU so comparative ratios survive while
// datasets small enough for a Go test run still saturate every device.
func (m IPUModel) Scaled(s int) IPUModel {
	if s <= 1 {
		return m
	}
	out := m
	out.Name = m.Name + "/" + itoa(s)
	out.Tiles = ceilDiv(m.Tiles, s)
	out.ExchangeBytesPerSec = m.ExchangeBytesPerSec / float64(s)
	out.HostLinkBytesPerSec = m.HostLinkBytesPerSec / float64(s)
	return out
}

// Scaled divides the core count by s (minimum 1).
func (c CPUModel) Scaled(s int) CPUModel {
	if s <= 1 {
		return c
	}
	out := c
	out.Name = c.Name + "/" + itoa(s)
	out.Cores = ceilDiv(c.Cores, s)
	return out
}

// Scaled divides the SM count by s (minimum 1).
func (g GPUModel) Scaled(s int) GPUModel {
	if s <= 1 {
		return g
	}
	out := g
	out.Name = g.Name + "/" + itoa(s)
	out.SMs = ceilDiv(g.SMs, s)
	return out
}

func ceilDiv(a, b int) int {
	n := (a + b - 1) / b
	if n < 1 {
		return 1
	}
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// CPUModel describes a multicore CPU node with SIMD X-Drop kernels.
type CPUModel struct {
	// Name identifies the part.
	Name string
	// Cores is the physical core count used by the OpenMP-style runner.
	Cores int
	// ClockHz is the sustained all-core clock.
	ClockHz float64
	// VecPeakCellsPerCycle is the per-core DP-cell throughput at
	// saturating band width for the vectorised (SeqAn/ksw2-class)
	// kernels.
	VecPeakCellsPerCycle float64
	// VecHalfBand is the live-band width at which vector efficiency
	// reaches half of peak: narrow X-Drop bands underfill AVX2 vectors,
	// which is why the CPU closes the gap as X grows (Fig. 5).
	VecHalfBand float64
	// ScalarCellsPerCycle is per-core throughput for scalar kernels
	// (the genometools-class baseline).
	ScalarCellsPerCycle float64
	// AffineCellFactor multiplies per-cell cost for affine-gap kernels
	// (three DP channels per cell; the ksw2 baseline).
	AffineCellFactor float64
	// PerAlignmentSeconds is scheduling/dispatch overhead per alignment
	// across the OpenMP pool.
	PerAlignmentSeconds float64
}

// EPYC7763 models the Perlmutter CPU node of §5 (64 cores, AVX2).
var EPYC7763 = CPUModel{
	Name:                 "EPYC-7763",
	Cores:                64,
	ClockHz:              2.45e9,
	VecPeakCellsPerCycle: 2.2,
	VecHalfBand:          10,
	ScalarCellsPerCycle:  0.35,
	AffineCellFactor:     1.8,
	PerAlignmentSeconds:  2.0e-7,
}

// VecCellsPerCycle returns the band-dependent vector throughput per core.
func (c CPUModel) VecCellsPerCycle(meanBand float64) float64 {
	if meanBand <= 0 {
		return 0
	}
	return c.VecPeakCellsPerCycle * meanBand / (meanBand + c.VecHalfBand)
}

// GPUModel describes a CUDA GPU running a LOGAN-style X-Drop kernel: one
// alignment per thread block, the live antidiagonal processed in lockstep
// chunks of BlockLanes threads with a block barrier per antidiagonal.
type GPUModel struct {
	// Name identifies the part.
	Name string
	// SMs is the streaming-multiprocessor count.
	SMs int
	// ClockHz is the SM clock.
	ClockHz float64
	// BlocksPerSM is the number of alignment blocks resident per SM
	// (shared-memory bound for 3δ antidiagonal buffers).
	BlocksPerSM int
	// BlockLanes is the thread-block width; antidiagonals shorter than
	// this waste lanes, LOGAN's weakness at small X (Fig. 5).
	BlockLanes int
	// CellCycles is the cycle cost of one lockstep chunk.
	CellCycles float64
	// SyncCycles is the per-antidiagonal block-barrier cost.
	SyncCycles float64
	// KernelLaunchSeconds is per-batch launch overhead.
	KernelLaunchSeconds float64
}

// A100 models the Perlmutter GPU of §5.
var A100 = GPUModel{
	Name:                "A100",
	SMs:                 108,
	ClockHz:             1.41e9,
	BlocksPerSM:         4,
	BlockLanes:          128,
	CellCycles:          4,
	SyncCycles:          100,
	KernelLaunchSeconds: 20e-6,
}

// BlockSlots is the number of alignments resident on the device at once.
func (g GPUModel) BlockSlots() int { return g.SMs * g.BlocksPerSM }
