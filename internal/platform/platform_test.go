package platform

import (
	"math"
	"testing"
)

func TestIPUModels(t *testing.T) {
	for _, m := range []IPUModel{GC200, BOW} {
		if m.Tiles != 1472 || m.ThreadsPerTile != 6 || m.ThreadSlotCycles != 6 {
			t.Errorf("%s: wrong layout %+v", m.Name, m)
		}
		if m.SRAMPerTile != 624*1024 {
			t.Errorf("%s: SRAM %d", m.Name, m.SRAMPerTile)
		}
		if m.DataSRAM() >= m.SRAMPerTile || m.DataSRAM() <= 0 {
			t.Errorf("%s: DataSRAM %d", m.Name, m.DataSRAM())
		}
	}
	if BOW.ClockHz <= GC200.ClockHz {
		t.Error("BOW must clock higher than GC200 (§2.1.1)")
	}
}

func TestThreadSeconds(t *testing.T) {
	// 1.33e9 Hz, 6-cycle slot rotation: 1 instruction = 6/1.33e9 s.
	got := GC200.ThreadSeconds(1)
	want := 6.0 / 1.33e9
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("ThreadSeconds(1) = %g, want %g", got, want)
	}
	if GC200.ThreadSeconds(0) != 0 {
		t.Error("zero instructions must take zero time")
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	s := 8
	ipu := GC200.Scaled(s)
	cpu := EPYC7763.Scaled(s)
	gpu := A100.Scaled(s)
	if ipu.Tiles != (1472+s-1)/s {
		t.Errorf("scaled tiles = %d", ipu.Tiles)
	}
	if cpu.Cores != 8 {
		t.Errorf("scaled cores = %d", cpu.Cores)
	}
	if gpu.SMs != (108+s-1)/s {
		t.Errorf("scaled SMs = %d", gpu.SMs)
	}
	// Per-unit behaviour unchanged.
	if ipu.ClockHz != GC200.ClockHz || cpu.ClockHz != EPYC7763.ClockHz {
		t.Error("scaling must not change clocks")
	}
	if ipu.SRAMPerTile != GC200.SRAMPerTile {
		t.Error("scaling must not change per-tile SRAM")
	}
	// Scale 1 and below are identity.
	if GC200.Scaled(1).Tiles != 1472 || GC200.Scaled(0).Tiles != 1472 {
		t.Error("Scaled(≤1) must be identity")
	}
	// Never scale to zero resources.
	if EPYC7763.Scaled(1000).Cores < 1 || A100.Scaled(1000).SMs < 1 {
		t.Error("scaling must keep at least one unit")
	}
}

func TestVecCellsPerCycle(t *testing.T) {
	c := EPYC7763
	if c.VecCellsPerCycle(0) != 0 {
		t.Error("zero band → zero throughput")
	}
	if !(c.VecCellsPerCycle(40) > c.VecCellsPerCycle(8)) {
		t.Error("efficiency must grow with band width")
	}
	if c.VecCellsPerCycle(1e12) > c.VecPeakCellsPerCycle {
		t.Error("efficiency must saturate at peak")
	}
}

func TestGPUBlockSlots(t *testing.T) {
	if A100.BlockSlots() != 108*4 {
		t.Errorf("BlockSlots = %d", A100.BlockSlots())
	}
}

func TestDefaultKernelCost(t *testing.T) {
	c := DefaultKernelCost
	if c.InstrPerCell <= 0 || c.DualIssueSpeedup <= 1 || c.DualIssueSpeedup > 2 {
		t.Errorf("implausible kernel cost %+v", c)
	}
	// Calibration sanity: one full GC200 with dual issue must land in
	// the paper's computed-cell throughput regime (§6.2 analysis —
	// ~4×10¹¹ cells/s).
	rate := GC200.ClockHz * float64(GC200.Tiles) / (c.InstrPerCell / c.DualIssueSpeedup)
	if rate < 2e11 || rate > 8e11 {
		t.Errorf("device cell rate %.3g outside calibrated regime", rate)
	}
}
