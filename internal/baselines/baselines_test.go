package baselines

import (
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func simData(t *testing.T) *workload.Dataset {
	t.Helper()
	d := synth.UniformPairs(synth.UniformPairsSpec{
		Count: 30, Length: 1200, ErrorRate: 0.15, SeedLen: 17, Seed: 1,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSeqAnScoresMatchCore(t *testing.T) {
	d := simData(t)
	res := SeqAn(d, 15, platform.EPYC7763)
	p := SeqAnParams(15)
	for i, c := range d.Comparisons {
		want, err := core.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V],
			core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scores[i] != want.Score {
			t.Fatalf("cmp %d: seqan %d != core %d", i, res.Scores[i], want.Score)
		}
	}
	if res.Seconds <= 0 || res.GCUPS() <= 0 {
		t.Errorf("bad accounting: %+v", res)
	}
}

func TestBaselineOrderingOnHiFiData(t *testing.T) {
	// Fig. 5's CPU-side ordering at realistic X: SeqAn beats ksw2 (larger
	// affine search space) and genometools (scalar).
	d := simData(t)
	x := 15
	seqan := SeqAn(d, x, platform.EPYC7763)
	ksw2 := Ksw2(d, x, platform.EPYC7763)
	gt := GenomeTools(d, x, platform.EPYC7763)
	if !(seqan.GCUPS() > ksw2.GCUPS()) {
		t.Errorf("seqan (%.0f) should beat ksw2 (%.0f)", seqan.GCUPS(), ksw2.GCUPS())
	}
	if !(seqan.GCUPS() > gt.GCUPS()) {
		t.Errorf("seqan (%.0f) should beat genometools (%.0f)", seqan.GCUPS(), gt.GCUPS())
	}
	// ksw2's handicap must come from a genuinely larger search space.
	if ksw2.Cells <= seqan.Cells {
		t.Errorf("ksw2 cells %d not above seqan cells %d", ksw2.Cells, seqan.Cells)
	}
}

func TestLoganSyncBoundAtSmallX(t *testing.T) {
	// LOGAN's GCUPS should be far below SeqAn's at X=5 and close the gap
	// at X=20 (Fig. 5: 10.5× vs 2.55× against the IPU; against SeqAn the
	// ratio moves the same direction).
	d := simData(t)
	gapAt := func(x int) float64 {
		return SeqAn(d, x, platform.EPYC7763).GCUPS() / Logan(d, x, platform.A100, 1).GCUPS()
	}
	g5, g20 := gapAt(5), gapAt(20)
	if g5 <= 1 {
		t.Errorf("at X=5 LOGAN (gap %.2f) should trail SeqAn", g5)
	}
	if g20 >= g5 {
		t.Errorf("LOGAN should close the gap with X: %.2f at X=5 vs %.2f at X=20", g5, g20)
	}
}

func TestLoganMultiGPUScales(t *testing.T) {
	d := simData(t)
	one := Logan(d, 15, platform.A100, 1)
	four := Logan(d, 15, platform.A100, 4)
	if four.Seconds >= one.Seconds {
		t.Errorf("4 GPUs (%.4gs) not faster than 1 (%.4gs)", four.Seconds, one.Seconds)
	}
	if one.Scores[0] != four.Scores[0] {
		t.Error("GPU count changed scores")
	}
}

func TestVecEfficiencyGrowsWithBand(t *testing.T) {
	cpu := platform.EPYC7763
	if !(cpu.VecCellsPerCycle(50) > cpu.VecCellsPerCycle(10)) {
		t.Error("vector efficiency should grow with band width")
	}
	if cpu.VecCellsPerCycle(0) != 0 {
		t.Error("zero band must yield zero throughput")
	}
	if cpu.VecCellsPerCycle(1e9) > cpu.VecPeakCellsPerCycle {
		t.Error("efficiency must not exceed peak")
	}
}

func TestProteinBaseline(t *testing.T) {
	gen, _ := synth.ProteinFamilies(synth.ProteinFamiliesSpec{
		Families: 4, MembersPerFamily: 3, MeanLen: 250, MutRate: 0.15, Seed: 2,
	})
	// The generator's dataset is arena-backed and immutable (identical
	// members share interned spans); seed planting below mutates in
	// place, so work on a private deep copy of the pool.
	d := gen.Clone()
	// Give every in-family pair a comparison with a centred seed.
	for f := 0; f < 4; f++ {
		base := f * 3
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				h, v := d.Sequences[base+a], d.Sequences[base+b]
				k := 6
				sh := len(h) / 2
				sv := len(v) / 2
				if sh+k > len(h) || sv+k > len(v) {
					continue
				}
				synth.PlantSeed(h, v, sh, sv, k)
				d.Comparisons = append(d.Comparisons, workload.Comparison{
					H: base + a, V: base + b, SeedH: sh, SeedV: sv, SeedLen: k,
				})
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res := SeqAn(d, 49, platform.EPYC7763)
	for i, s := range res.Scores {
		if s <= 0 {
			t.Errorf("protein pair %d scored %d", i, s)
		}
	}
	// Protein runs must use BLOSUM62: a sanity alignment of identical
	// tryptophans scores 11 each.
	if scoring.Blosum62.Score('W', 'W') != 11 {
		t.Fatal("BLOSUM62 wiring broken")
	}
}

func TestEmptyDatasetBaselines(t *testing.T) {
	d := &workload.Dataset{Name: "empty"}
	for _, r := range []*Result{
		SeqAn(d, 10, platform.EPYC7763),
		Ksw2(d, 10, platform.EPYC7763),
		GenomeTools(d, 10, platform.EPYC7763),
		Logan(d, 10, platform.A100, 1),
	} {
		if len(r.Scores) != 0 {
			t.Errorf("%s produced scores for empty dataset", r.Name)
		}
	}
}
