// Package baselines implements the comparison systems of §5.1: the
// SeqAn-like vectorised CPU X-Drop, the ksw2-like affine-gap CPU aligner,
// the genometools-like scalar CPU aligner, and the LOGAN-like GPU X-Drop.
//
// Each baseline really executes its algorithm (via internal/core) — search
// spaces, scores and band dynamics are genuine — and converts the
// execution trace into modeled seconds with the calibrated platform
// models, mirroring how the paper measures each system (alignment-phase
// time only, §5.1).
package baselines

import (
	"runtime"
	"sync"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Result is one baseline's outcome on a dataset.
type Result struct {
	// Name identifies the baseline.
	Name string
	// Scores holds per-comparison total scores (left+seed+right).
	Scores []int
	// Alignments holds per-comparison coordinates (pipeline input).
	Alignments []workload.Alignment
	// Seconds is the modeled alignment time.
	Seconds float64
	// Cells is the number of DP cells the algorithm actually computed.
	Cells int64
	// TheoreticalCells is the GCUPS numerator.
	TheoreticalCells int64
	// MeanBand is the average computed antidiagonal width.
	MeanBand float64
	// Antidiagonals sums antidiagonal iterations.
	Antidiagonals int64
	// Chunks128 sums ceil(band/128) per antidiagonal (GPU cost input).
	Chunks128 int64
}

// GCUPS returns the paper's throughput metric for the result.
func (r *Result) GCUPS() float64 { return metrics.GCUPS(r.TheoreticalCells, r.Seconds) }

// trace aggregates extension statistics across a dataset run.
type trace struct {
	cells    int64
	theo     int64
	antidiag int64
	sumBand  int64
	chunks   int64
}

// runAll executes every comparison's two extensions under params, in
// parallel across host goroutines (results are deterministic; scheduling
// is not part of the model for CPU/GPU baselines).
func runAll(d *workload.Dataset, params core.Params) ([]int, []workload.Alignment, trace) {
	scores := make([]int, len(d.Comparisons))
	alns := make([]workload.Alignment, len(d.Comparisons))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(d.Comparisons) {
		workers = len(d.Comparisons)
	}
	if workers < 1 {
		workers = 1
	}
	traces := make([]trace, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ws core.Workspace
			tr := &traces[w]
			for ci := w; ci < len(d.Comparisons); ci += workers {
				c := d.Comparisons[ci]
				h, v := d.Sequences[c.H], d.Sequences[c.V]
				seed := core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}
				res, err := ws.ExtendSeed(h, v, seed, params)
				if err != nil {
					// Validated datasets cannot fail; match the
					// kernel by scoring the comparison zero.
					continue
				}
				scores[ci] = res.Score
				alns[ci] = workload.Alignment{
					Score: res.Score,
					BegH:  res.BegH, BegV: res.BegV,
					EndH: res.EndH, EndV: res.EndV,
				}
				tr.cells += res.Stats.Cells
				tr.antidiag += int64(res.Stats.Antidiagonals)
				tr.sumBand += res.Stats.SumComputedBand
				tr.chunks += res.Stats.Chunks128
				tr.theo += d.Complexity(c)
			}
		}(w)
	}
	wg.Wait()
	var total trace
	for _, tr := range traces {
		total.cells += tr.cells
		total.theo += tr.theo
		total.antidiag += tr.antidiag
		total.sumBand += tr.sumBand
		total.chunks += tr.chunks
	}
	return scores, alns, total
}

func (t trace) meanBand() float64 {
	if t.antidiag == 0 {
		return 0
	}
	return float64(t.sumBand) / float64(t.antidiag)
}

func resultFrom(name string, scores []int, alns []workload.Alignment, t trace, seconds float64) *Result {
	return &Result{
		Name:             name,
		Scores:           scores,
		Alignments:       alns,
		Seconds:          seconds,
		Cells:            t.cells,
		TheoreticalCells: t.theo,
		MeanBand:         t.meanBand(),
		Antidiagonals:    t.antidiag,
		Chunks128:        t.chunks,
	}
}

// cpuVecSeconds models an OpenMP + SIMD kernel: cells spread over all
// cores at a band-dependent vector efficiency, plus per-alignment
// dispatch overhead (§5.1's benchmark runner).
func cpuVecSeconds(cpu platform.CPUModel, t trace, alignments int, affine bool) float64 {
	cpc := cpu.VecCellsPerCycle(t.meanBand())
	if affine {
		cpc /= cpu.AffineCellFactor
	}
	if cpc <= 0 {
		return 0
	}
	compute := float64(t.cells) / (float64(cpu.Cores) * cpu.ClockHz * cpc)
	return compute + float64(alignments)*cpu.PerAlignmentSeconds/float64(cpu.Cores)
}

// SeqAnParams returns the scoring the paper's DNA experiments use with
// SeqAn-class tools: +1/−1 with linear gap −1.
func SeqAnParams(x int) core.Params {
	return core.Params{Scorer: scoring.DNADefault, Gap: -1, X: x, Algo: core.AlgoStandard3}
}

// SeqAn runs the SeqAn-like baseline: Zhang's standard X-Drop search
// space on a vectorised multicore CPU (§5.1; the strongest CPU
// competitor in Fig. 5).
func SeqAn(d *workload.Dataset, x int, cpu platform.CPUModel) *Result {
	params := SeqAnParams(x)
	if d.Protein {
		params.Scorer = scoring.Blosum62
		params.Gap = -2
	}
	scores, alns, t := runAll(d, params)
	return resultFrom("seqan", scores, alns, t, cpuVecSeconds(cpu, t, len(d.Comparisons), false))
}

// Ksw2 runs the ksw2-like baseline: affine-gap X-Drop with minimap2-style
// penalties (match 2, mismatch −4, gap open −4, gap extend −1). The drop
// threshold scales by the mismatch ratio (4×) so ksw2 tolerates the same
// number of mismatches as the +1/−1 tools at a given X — on that scale its
// weak long-gap extension penalty genuinely enlarges the live band, the
// §6.2 explanation for ksw2 trailing SeqAn ("ksw2 penalizes long gaps
// less, resulting in a larger search space").
func Ksw2(d *workload.Dataset, x int, cpu platform.CPUModel) *Result {
	params := core.Params{
		Scorer:  scoring.NewSimple(2, -4),
		Gap:     -1,
		GapOpen: -4,
		X:       4 * x,
		Algo:    core.AlgoAffine,
	}
	scores, alns, t := runAll(d, params)
	return resultFrom("ksw2", scores, alns, t, cpuVecSeconds(cpu, t, len(d.Comparisons), true))
}

// GenomeTools runs the genometools-like baseline: the standard X-Drop
// search space on a scalar CPU kernel.
func GenomeTools(d *workload.Dataset, x int, cpu platform.CPUModel) *Result {
	params := SeqAnParams(x)
	if d.Protein {
		params.Scorer = scoring.Blosum62
		params.Gap = -2
	}
	scores, alns, t := runAll(d, params)
	compute := float64(t.cells) / (float64(cpu.Cores) * cpu.ClockHz * cpu.ScalarCellsPerCycle)
	secs := compute + float64(len(d.Comparisons))*cpu.PerAlignmentSeconds/float64(cpu.Cores)
	return resultFrom("genometools", scores, alns, t, secs)
}

// Logan runs the LOGAN-like GPU baseline: the same standard X-Drop search
// space mapped SIMT-style — one alignment per thread block, each
// antidiagonal processed in lockstep chunks of BlockLanes threads with a
// block barrier per antidiagonal. Narrow bands leave most lanes idle and
// pay the barrier anyway, which is why LOGAN loses badly at small X and
// recovers at large X (Fig. 5). LOGAN supports DNA only (§2.4).
func Logan(d *workload.Dataset, x int, gpu platform.GPUModel, numGPUs int) *Result {
	if numGPUs <= 0 {
		numGPUs = 1
	}
	scores, alns, t := runAll(d, SeqAnParams(x))
	cycles := float64(t.chunks)*gpu.CellCycles + float64(t.antidiag)*gpu.SyncCycles
	slots := float64(gpu.BlockSlots() * numGPUs)
	secs := cycles/(slots*gpu.ClockHz) + gpu.KernelLaunchSeconds
	return resultFrom("logan", scores, alns, t, secs)
}
