// Package seqio provides biological sequence types, alphabets and FASTA
// input/output for the aligner and the ELBA/PASTIS pipelines.
//
// Sequences are stored as plain byte slices of upper-case symbols
// (nucleotides ACGT or amino-acid one-letter codes). The package validates
// symbols against an Alphabet and offers the reverse-complement and indexing
// helpers the alignment kernels build on.
package seqio

import (
	"fmt"
	"strings"
)

// Kind discriminates nucleotide from protein sequences.
type Kind uint8

const (
	// DNA is the nucleotide alphabet ACGT (N tolerated on input).
	DNA Kind = iota
	// Protein is the 20-letter amino-acid alphabet plus ambiguity codes
	// B, Z, X and the stop symbol '*', matching BLOSUM62 rows.
	Protein
)

// String returns the human-readable alphabet name.
func (k Kind) String() string {
	switch k {
	case DNA:
		return "DNA"
	case Protein:
		return "protein"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Alphabet reports which byte symbols are valid for a sequence kind.
type Alphabet struct {
	kind  Kind
	valid [256]bool
	// canon maps lower-case and ambiguous symbols to their canonical form.
	canon [256]byte
}

// DNAAlphabet is the nucleotide alphabet: A, C, G, T with N accepted and
// canonicalised as-is (scoring treats N as a universal mismatch).
var DNAAlphabet = newAlphabet(DNA, "ACGTN")

// ProteinAlphabet covers the 24 BLOSUM62 symbols.
var ProteinAlphabet = newAlphabet(Protein, "ARNDCQEGHILKMFPSTWYVBZX*")

func newAlphabet(kind Kind, symbols string) *Alphabet {
	a := &Alphabet{kind: kind}
	for i := 0; i < 256; i++ {
		a.canon[i] = byte(i)
	}
	for _, r := range symbols {
		c := byte(r)
		a.valid[c] = true
		lower := byte(strings.ToLower(string(r))[0])
		a.valid[lower] = true
		a.canon[lower] = c
	}
	return a
}

// Kind returns the alphabet's sequence kind.
func (a *Alphabet) Kind() Kind { return a.kind }

// Valid reports whether c is an accepted symbol (either case).
func (a *Alphabet) Valid(c byte) bool { return a.valid[c] }

// Canonical returns the canonical (upper-case) form of c.
func (a *Alphabet) Canonical(c byte) byte { return a.canon[c] }

// Clean canonicalises s in place and returns an error naming the first
// invalid symbol, if any.
func (a *Alphabet) Clean(s []byte) error {
	for i, c := range s {
		if !a.valid[c] {
			return fmt.Errorf("seqio: invalid %s symbol %q at position %d", a.kind, c, i)
		}
		s[i] = a.canon[c]
	}
	return nil
}

// Sequence is a named biological sequence.
type Sequence struct {
	// ID is the FASTA record identifier (first word of the header).
	ID string
	// Desc is the remainder of the FASTA header, if any.
	Desc string
	// Data holds the canonical upper-case symbols.
	Data []byte
	// Kind records the alphabet the sequence was validated against.
	Kind Kind
}

// Len returns the sequence length in symbols.
func (s *Sequence) Len() int { return len(s.Data) }

// String renders a short human-readable summary, not the raw symbols.
func (s *Sequence) String() string {
	return fmt.Sprintf("%s[%d %s]", s.ID, len(s.Data), s.Kind)
}

var revComp = func() [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		t[i] = byte(i)
	}
	t['A'], t['T'] = 'T', 'A'
	t['C'], t['G'] = 'G', 'C'
	t['a'], t['t'] = 't', 'a'
	t['c'], t['g'] = 'g', 'c'
	return t
}()

// ReverseComplement returns the reverse complement of a DNA sequence as a
// new slice. Non-ACGT symbols (e.g. N) map to themselves.
func ReverseComplement(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = revComp[c]
	}
	return out
}

// Reverse returns a reversed copy of s (used for protein left extensions in
// tests; the aligner itself uses index views instead of copying).
func Reverse(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}
