package seqio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAlphabetValidation(t *testing.T) {
	tests := []struct {
		alpha *Alphabet
		in    string
		want  string
		ok    bool
	}{
		{DNAAlphabet, "acgt", "ACGT", true},
		{DNAAlphabet, "ACGTN", "ACGTN", true},
		{DNAAlphabet, "ACGU", "", false},
		{DNAAlphabet, "", "", true},
		{ProteinAlphabet, "mkvl*", "MKVL*", true},
		{ProteinAlphabet, "BZX", "BZX", true},
		{ProteinAlphabet, "MJ", "", false},
	}
	for _, tc := range tests {
		data := []byte(tc.in)
		err := tc.alpha.Clean(data)
		if tc.ok && err != nil {
			t.Errorf("Clean(%q) unexpected error: %v", tc.in, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Clean(%q) wanted error, got none", tc.in)
		}
		if tc.ok && string(data) != tc.want {
			t.Errorf("Clean(%q) = %q, want %q", tc.in, data, tc.want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	got := ReverseComplement([]byte("ACGTTN"))
	if string(got) != "NAACGT" {
		t.Fatalf("ReverseComplement = %q, want NAACGT", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		s := randomDNA(rng, int(n))
		back := ReverseComplement(ReverseComplement(s))
		return bytes.Equal(s, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		s := randomDNA(rng, int(n))
		return bytes.Equal(s, Reverse(Reverse(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomDNA(rng *rand.Rand, n int) []byte {
	const sym = "ACGT"
	s := make([]byte, n)
	for i := range s {
		s[i] = sym[rng.Intn(4)]
	}
	return s
}

func TestReadFastaBasic(t *testing.T) {
	in := ">read1 a description\nACGT\nacgt\n;comment\n>read2\nTTTT\n"
	seqs, err := ReadFasta(strings.NewReader(in), DNAAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records, want 2", len(seqs))
	}
	if seqs[0].ID != "read1" || seqs[0].Desc != "a description" {
		t.Errorf("header parse: got %q %q", seqs[0].ID, seqs[0].Desc)
	}
	if string(seqs[0].Data) != "ACGTACGT" {
		t.Errorf("seq1 = %q", seqs[0].Data)
	}
	if seqs[1].ID != "read2" || string(seqs[1].Data) != "TTTT" {
		t.Errorf("seq2 = %v", seqs[1])
	}
}

func TestReadFastaErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",       // data before header
		">x\n",         // empty record
		">\nACGT\n",    // empty header
		">x\nACGU\n",   // invalid symbol
		">x\nAC\n>y\n", // trailing empty record
	}
	for _, in := range cases {
		if _, err := ReadFasta(strings.NewReader(in), DNAAlphabet); err == nil {
			t.Errorf("ReadFasta(%q): wanted error, got none", in)
		}
	}
}

func TestFastaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var seqs []*Sequence
	for i := 0; i < 17; i++ {
		seqs = append(seqs, &Sequence{
			ID:   "s" + strings.Repeat("x", i%3),
			Desc: "",
			Data: randomDNA(rng, 1+rng.Intn(300)),
			Kind: DNA,
		})
	}
	// Give them unique IDs.
	for i, s := range seqs {
		s.ID = s.ID + string(rune('a'+i%26))
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, seqs, 60); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFasta(&buf, DNAAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(seqs) {
		t.Fatalf("round trip count %d != %d", len(back), len(seqs))
	}
	for i := range seqs {
		if !bytes.Equal(seqs[i].Data, back[i].Data) {
			t.Errorf("record %d data mismatch", i)
		}
	}
}

func TestWriteFastaWrapping(t *testing.T) {
	s := &Sequence{ID: "x", Data: bytes.Repeat([]byte("A"), 25)}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, []*Sequence{s}, 10); err != nil {
		t.Fatal(err)
	}
	want := ">x\nAAAAAAAAAA\nAAAAAAAAAA\nAAAAA\n"
	if buf.String() != want {
		t.Errorf("got %q want %q", buf.String(), want)
	}
}

func TestKindString(t *testing.T) {
	if DNA.String() != "DNA" || Protein.String() != "protein" {
		t.Error("Kind.String mismatch")
	}
	if (&Sequence{ID: "s", Data: []byte("ACGT")}).String() != "s[4 DNA]" {
		t.Error("Sequence.String mismatch")
	}
}
