package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// ReadFastaFunc parses FASTA records from r, validating and canonicalising
// each sequence against alpha, and hands every record to rec in file order.
// The seq slice is a reused scratch buffer valid only for the duration of
// the call — consumers that keep the symbols must copy them (the workload
// arena packs them straight into its slab, which is why this streaming
// form exists: one FASTA pass fills Ω with no per-record allocation).
// Records with empty sequences are rejected.
func ReadFastaFunc(r io.Reader, alpha *Alphabet, rec func(id, desc string, seq []byte) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	var buf bytes.Buffer
	var id, desc string
	open := false
	lineNo := 0

	flush := func() error {
		if !open {
			return nil
		}
		if buf.Len() == 0 {
			return fmt.Errorf("seqio: record %q has no sequence data", id)
		}
		data := buf.Bytes()
		if err := alpha.Clean(data); err != nil {
			return fmt.Errorf("record %q: %w", id, err)
		}
		if err := rec(id, desc, data); err != nil {
			return err
		}
		open = false
		buf.Reset()
		return nil
	}

	for {
		line, err := br.ReadBytes('\n')
		lineNo++
		line = bytes.TrimRight(line, "\r\n")
		if len(line) > 0 {
			switch line[0] {
			case '>':
				if err := flush(); err != nil {
					return err
				}
				id, desc = splitHeader(line[1:])
				if id == "" {
					return fmt.Errorf("seqio: empty FASTA header at line %d", lineNo)
				}
				open = true
			case ';':
				// Classic FASTA comment line; ignore.
			default:
				if !open {
					return fmt.Errorf("seqio: sequence data before first header at line %d", lineNo)
				}
				buf.Write(line)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return flush()
}

// ReadFasta parses FASTA records from r into Sequence values, copying each
// record's symbols. Use ReadFastaFunc to stream records without the
// per-record copies.
func ReadFasta(r io.Reader, alpha *Alphabet) ([]*Sequence, error) {
	var seqs []*Sequence
	err := ReadFastaFunc(r, alpha, func(id, desc string, seq []byte) error {
		data := make([]byte, len(seq))
		copy(data, seq)
		seqs = append(seqs, &Sequence{ID: id, Desc: desc, Data: data, Kind: alpha.Kind()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return seqs, nil
}

func splitHeader(h []byte) (id, desc string) {
	h = bytes.TrimSpace(h)
	if i := bytes.IndexByte(h, ' '); i >= 0 {
		return string(h[:i]), string(bytes.TrimSpace(h[i+1:]))
	}
	return string(h), ""
}

// WriteFasta writes records to w with lines wrapped at width symbols
// (width <= 0 selects the conventional 80).
func WriteFasta(w io.Writer, seqs []*Sequence, width int) error {
	if width <= 0 {
		width = 80
	}
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if s.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for off := 0; off < len(s.Data); off += width {
			end := off + width
			if end > len(s.Data) {
				end = len(s.Data)
			}
			bw.Write(s.Data[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadFastaFile reads a FASTA file from disk.
func ReadFastaFile(path string, alpha *Alphabet) ([]*Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFasta(f, alpha)
}

// WriteFastaFile writes sequences to a FASTA file on disk.
func WriteFastaFile(path string, seqs []*Sequence, width int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFasta(f, seqs, width); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
