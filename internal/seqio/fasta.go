package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// ReadFasta parses FASTA records from r, validating and canonicalising each
// sequence against alpha. Records with empty sequences are rejected.
func ReadFasta(r io.Reader, alpha *Alphabet) ([]*Sequence, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var seqs []*Sequence
	var cur *Sequence
	var buf bytes.Buffer
	lineNo := 0

	flush := func() error {
		if cur == nil {
			return nil
		}
		if buf.Len() == 0 {
			return fmt.Errorf("seqio: record %q has no sequence data", cur.ID)
		}
		data := make([]byte, buf.Len())
		copy(data, buf.Bytes())
		if err := alpha.Clean(data); err != nil {
			return fmt.Errorf("record %q: %w", cur.ID, err)
		}
		cur.Data = data
		cur.Kind = alpha.Kind()
		seqs = append(seqs, cur)
		cur = nil
		buf.Reset()
		return nil
	}

	for {
		line, err := br.ReadBytes('\n')
		lineNo++
		line = bytes.TrimRight(line, "\r\n")
		if len(line) > 0 {
			switch line[0] {
			case '>':
				if err := flush(); err != nil {
					return nil, err
				}
				id, desc := splitHeader(line[1:])
				if id == "" {
					return nil, fmt.Errorf("seqio: empty FASTA header at line %d", lineNo)
				}
				cur = &Sequence{ID: id, Desc: desc}
			case ';':
				// Classic FASTA comment line; ignore.
			default:
				if cur == nil {
					return nil, fmt.Errorf("seqio: sequence data before first header at line %d", lineNo)
				}
				buf.Write(line)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return seqs, nil
}

func splitHeader(h []byte) (id, desc string) {
	h = bytes.TrimSpace(h)
	if i := bytes.IndexByte(h, ' '); i >= 0 {
		return string(h[:i]), string(bytes.TrimSpace(h[i+1:]))
	}
	return string(h), ""
}

// WriteFasta writes records to w with lines wrapped at width symbols
// (width <= 0 selects the conventional 80).
func WriteFasta(w io.Writer, seqs []*Sequence, width int) error {
	if width <= 0 {
		width = 80
	}
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if s.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for off := 0; off < len(s.Data); off += width {
			end := off + width
			if end > len(s.Data) {
				end = len(s.Data)
			}
			bw.Write(s.Data[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadFastaFile reads a FASTA file from disk.
func ReadFastaFile(path string, alpha *Alphabet) ([]*Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFasta(f, alpha)
}

// WriteFastaFile writes sequences to a FASTA file on disk.
func WriteFastaFile(path string, seqs []*Sequence, width int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFasta(f, seqs, width); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
