package seqio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFasta hammers the parser with malformed headers, empty records,
// CRLF line endings, comments and arbitrary byte soup. The invariants: no
// panic; on success every record has a non-empty ID and non-empty,
// alphabet-canonical data; and a successful parse round-trips through
// WriteFasta to the same records.
func FuzzReadFasta(f *testing.F) {
	f.Add([]byte(">a\nACGT\n"))
	f.Add([]byte(">a desc here\nacgt\nACGT\n>b\nTTTT\n"))
	f.Add([]byte(">a\r\nAC\r\nGT\r\n>b\r\nNNNN\r\n")) // CRLF
	f.Add([]byte(";comment\n>a\nACGT\n"))
	f.Add([]byte(">\nACGT\n"))      // empty header
	f.Add([]byte(">a\n>b\nACGT\n")) // record with no sequence
	f.Add([]byte("ACGT\n"))         // data before header
	f.Add([]byte(">a\nACGJ\n"))     // invalid symbol
	f.Add([]byte(">a"))             // EOF in header, no newline
	f.Add([]byte(">a\nACGT"))       // EOF in sequence, no newline
	f.Add([]byte(""))
	f.Add([]byte(">a \nACGT\n")) // trailing space after ID

	f.Fuzz(func(t *testing.T, in []byte) {
		seqs, err := ReadFasta(bytes.NewReader(in), DNAAlphabet)
		if err != nil {
			return
		}
		for _, s := range seqs {
			if s.ID == "" {
				t.Fatalf("parsed record with empty ID from %q", in)
			}
			if len(s.Data) == 0 {
				t.Fatalf("parsed record %q with empty sequence from %q", s.ID, in)
			}
			for i, c := range s.Data {
				if !DNAAlphabet.Valid(c) || DNAAlphabet.Canonical(c) != c {
					t.Fatalf("record %q has non-canonical symbol %q at %d", s.ID, c, i)
				}
			}
			// The parser splits the header at the first space, so an ID
			// with one would not round-trip.
			if strings.ContainsRune(s.ID, ' ') {
				t.Fatalf("record ID %q contains a space", s.ID)
			}
		}
		// Round-trip: writing and re-parsing must reproduce the records.
		var out bytes.Buffer
		if err := WriteFasta(&out, seqs, 60); err != nil {
			t.Fatalf("WriteFasta: %v", err)
		}
		again, err := ReadFasta(bytes.NewReader(out.Bytes()), DNAAlphabet)
		if err != nil {
			t.Fatalf("re-parse after WriteFasta: %v (input %q)", err, in)
		}
		if len(again) != len(seqs) {
			t.Fatalf("round-trip record count %d != %d", len(again), len(seqs))
		}
		for i := range seqs {
			if again[i].ID != seqs[i].ID || !bytes.Equal(again[i].Data, seqs[i].Data) {
				t.Fatalf("round-trip record %d differs: %v vs %v", i, again[i], seqs[i])
			}
		}
	})
}

// TestReadFastaFuncStreams pins the streaming contract: records arrive in
// file order and the scratch buffer is reused between callbacks.
func TestReadFastaFuncStreams(t *testing.T) {
	in := ">a one\nACGT\n>b\nTT\nGG\n"
	var ids, descs []string
	var firstPtr *byte
	reused := false
	err := ReadFastaFunc(strings.NewReader(in), DNAAlphabet, func(id, desc string, seq []byte) error {
		ids = append(ids, id)
		descs = append(descs, desc)
		if firstPtr == nil {
			firstPtr = &seq[0]
		} else if firstPtr == &seq[0] {
			reused = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" || descs[0] != "one" {
		t.Fatalf("streamed records wrong: ids=%v descs=%v", ids, descs)
	}
	if !reused {
		t.Error("scratch buffer not reused across records (streaming contract broken)")
	}
}
