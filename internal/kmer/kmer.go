// Package kmer implements k-mer extraction, counting and seed discovery —
// the first stages of ELBA and PASTIS (§2.3, §2.4). DNA k-mers (k ≤ 31)
// pack 2 bits per base into a uint64; protein k-mers (k ≤ 12) pack 5 bits
// per residue. PASTIS-style quasi-exact protein seeding additionally
// indexes high-scoring single-substitution neighbours under BLOSUM62.
package kmer

import (
	"fmt"

	"github.com/sram-align/xdropipu/internal/scoring"
)

// dnaCode maps A/C/G/T to 2-bit codes; 0xFF marks invalid symbols (N).
var dnaCode = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 0xFF
	}
	t['A'], t['C'], t['G'], t['T'] = 0, 1, 2, 3
	return t
}()

// protCode maps the 20 standard amino acids to 5-bit codes.
var protCode = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 0xFF
	}
	for i, c := range []byte("ARNDCQEGHILKMFPSTWYV") {
		t[c] = byte(i)
	}
	return t
}()

// protAlpha is the inverse of protCode.
var protAlpha = []byte("ARNDCQEGHILKMFPSTWYV")

// Occurrence is one k-mer hit: the packed k-mer and its position.
type Occurrence struct {
	// Kmer is the packed k-mer code.
	Kmer uint64
	// Pos is the 0-based start offset in the sequence.
	Pos int32
}

// ScanDNA emits every valid (N-free) k-mer occurrence of seq.
func ScanDNA(seq []byte, k int, emit func(Occurrence)) error {
	if k < 1 || k > 31 {
		return fmt.Errorf("kmer: DNA k=%d out of range [1,31]", k)
	}
	mask := uint64(1)<<(2*uint(k)) - 1
	var cur uint64
	valid := 0
	for i, c := range seq {
		code := dnaCode[c]
		if code == 0xFF {
			valid = 0
			cur = 0
			continue
		}
		cur = (cur<<2 | uint64(code)) & mask
		valid++
		if valid >= k {
			emit(Occurrence{Kmer: cur, Pos: int32(i - k + 1)})
		}
	}
	return nil
}

// ScanProtein emits every k-mer occurrence of a protein sequence,
// skipping windows with non-standard residues.
func ScanProtein(seq []byte, k int, emit func(Occurrence)) error {
	if k < 1 || k > 12 {
		return fmt.Errorf("kmer: protein k=%d out of range [1,12]", k)
	}
	mask := uint64(1)<<(5*uint(k)) - 1
	var cur uint64
	valid := 0
	for i, c := range seq {
		code := protCode[c]
		if code == 0xFF {
			valid = 0
			cur = 0
			continue
		}
		cur = (cur<<5 | uint64(code)) & mask
		valid++
		if valid >= k {
			emit(Occurrence{Kmer: cur, Pos: int32(i - k + 1)})
		}
	}
	return nil
}

// Counts is a k-mer frequency table (the 1D distributed hash table of
// ELBA's first stage, §2.3, single-process here).
type Counts map[uint64]int32

// CountDNA tallies k-mer frequencies over all sequences.
func CountDNA(seqs [][]byte, k int) (Counts, error) {
	counts := make(Counts)
	for _, s := range seqs {
		if err := ScanDNA(s, k, func(o Occurrence) { counts[o.Kmer]++ }); err != nil {
			return nil, err
		}
	}
	return counts, nil
}

// CountProtein tallies protein k-mer frequencies.
func CountProtein(seqs [][]byte, k int) (Counts, error) {
	counts := make(Counts)
	for _, s := range seqs {
		if err := ScanProtein(s, k, func(o Occurrence) { counts[o.Kmer]++ }); err != nil {
			return nil, err
		}
	}
	return counts, nil
}

// Reliable returns the set of k-mers with frequency in [lo, hi]: below lo
// they are probably sequencing errors, above hi probably repeats — ELBA's
// reliable-k-mer filter.
func (c Counts) Reliable(lo, hi int32) map[uint64]int32 {
	ids := make(map[uint64]int32)
	for km, n := range c {
		if n >= lo && n <= hi {
			ids[km] = -1 // id assigned later
		}
	}
	return ids
}

// SubstituteNeighbors generates the PASTIS-style quasi-exact neighbour
// set of a packed protein k-mer: every single-residue substitution whose
// BLOSUM62 score against the original residue is at least minScore. The
// original k-mer is not included.
func SubstituteNeighbors(km uint64, k int, minScore int, emit func(uint64)) {
	for pos := 0; pos < k; pos++ {
		shift := uint(5 * (k - 1 - pos))
		orig := byte(km >> shift & 31)
		if int(orig) >= len(protAlpha) {
			continue
		}
		oc := protAlpha[orig]
		for sub, sc := range protAlpha {
			if byte(sub) == orig {
				continue
			}
			if scoring.Blosum62.Score(oc, sc) < minScore {
				continue
			}
			nb := km&^(uint64(31)<<shift) | uint64(sub)<<shift
			emit(nb)
		}
	}
}

// UnpackDNA renders a packed DNA k-mer back to symbols (test helper).
func UnpackDNA(km uint64, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = "ACGT"[km&3]
		km >>= 2
	}
	return out
}

// UnpackProtein renders a packed protein k-mer back to residues.
func UnpackProtein(km uint64, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = protAlpha[km&31]
		km >>= 5
	}
	return out
}
