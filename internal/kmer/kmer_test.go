package kmer

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
)

func TestScanDNABasic(t *testing.T) {
	var occ []Occurrence
	if err := ScanDNA([]byte("ACGTA"), 3, func(o Occurrence) { occ = append(occ, o) }); err != nil {
		t.Fatal(err)
	}
	if len(occ) != 3 {
		t.Fatalf("got %d k-mers, want 3", len(occ))
	}
	wants := []string{"ACG", "CGT", "GTA"}
	for i, o := range occ {
		if string(UnpackDNA(o.Kmer, 3)) != wants[i] || int(o.Pos) != i {
			t.Errorf("occ %d = %s@%d, want %s@%d", i, UnpackDNA(o.Kmer, 3), o.Pos, wants[i], i)
		}
	}
}

func TestScanDNASkipsN(t *testing.T) {
	var occ []Occurrence
	if err := ScanDNA([]byte("ACGNACG"), 3, func(o Occurrence) { occ = append(occ, o) }); err != nil {
		t.Fatal(err)
	}
	// Only ACG at 0 and ACG at 4 are N-free windows.
	if len(occ) != 2 || occ[0].Pos != 0 || occ[1].Pos != 4 {
		t.Fatalf("occ = %+v", occ)
	}
}

func TestScanDNAErrors(t *testing.T) {
	if err := ScanDNA([]byte("ACGT"), 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if err := ScanDNA([]byte("ACGT"), 32, nil); err == nil {
		t.Error("k=32 accepted")
	}
	if err := ScanProtein([]byte("ARND"), 13, nil); err == nil {
		t.Error("protein k=13 accepted")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := synth.RandDNA(rng, 500)
	k := 21
	if err := ScanDNA(seq, k, func(o Occurrence) {
		if !bytes.Equal(UnpackDNA(o.Kmer, k), seq[o.Pos:int(o.Pos)+k]) {
			t.Fatalf("round trip failed at %d", o.Pos)
		}
	}); err != nil {
		t.Fatal(err)
	}
	prot := synth.RandProtein(rng, 300)
	pk := 6
	if err := ScanProtein(prot, pk, func(o Occurrence) {
		if !bytes.Equal(UnpackProtein(o.Kmer, pk), prot[o.Pos:int(o.Pos)+pk]) {
			t.Fatalf("protein round trip failed at %d", o.Pos)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCountDNAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seqs := [][]byte{synth.RandDNA(rng, 300), synth.RandDNA(rng, 200)}
	k := 5
	counts, err := CountDNA(seqs, k)
	if err != nil {
		t.Fatal(err)
	}
	naive := map[string]int32{}
	for _, s := range seqs {
		for i := 0; i+k <= len(s); i++ {
			naive[string(s[i:i+k])]++
		}
	}
	if len(counts) > len(naive) {
		t.Fatalf("more packed k-mers (%d) than strings (%d)", len(counts), len(naive))
	}
	for km, n := range counts {
		if naive[string(UnpackDNA(km, k))] != n {
			t.Fatalf("count mismatch for %s", UnpackDNA(km, k))
		}
	}
}

func TestReliableFilter(t *testing.T) {
	c := Counts{1: 1, 2: 2, 3: 5, 4: 100}
	r := c.Reliable(2, 10)
	if len(r) != 2 {
		t.Fatalf("reliable = %v", r)
	}
	if _, ok := r[2]; !ok {
		t.Error("k-mer with count 2 missing")
	}
	if _, ok := r[3]; !ok {
		t.Error("k-mer with count 5 missing")
	}
}

func TestSubstituteNeighbors(t *testing.T) {
	// Pack "AAA" (protein, k=3).
	var km uint64
	k := 3
	if err := ScanProtein([]byte("AAA"), k, func(o Occurrence) { km = o.Kmer }); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	SubstituteNeighbors(km, k, 0, func(nb uint64) {
		if seen[nb] {
			t.Fatalf("duplicate neighbour %s", UnpackProtein(nb, k))
		}
		seen[nb] = true
		s := UnpackProtein(nb, k)
		// Exactly one position differs from AAA.
		diff := 0
		var subbed byte
		for i := 0; i < k; i++ {
			if s[i] != 'A' {
				diff++
				subbed = s[i]
			}
		}
		if diff != 1 {
			t.Fatalf("neighbour %s differs in %d positions", s, diff)
		}
		if scoring.Blosum62.Score('A', subbed) < 0 {
			t.Fatalf("neighbour %s has negative substitution score", s)
		}
	})
	if len(seen) == 0 {
		t.Fatal("no neighbours emitted")
	}
	// Raising the threshold must shrink the set.
	tight := 0
	SubstituteNeighbors(km, k, 1, func(uint64) { tight++ })
	if tight >= len(seen) {
		t.Errorf("threshold 1 (%d) not smaller than threshold 0 (%d)", tight, len(seen))
	}
}

func TestCountProtein(t *testing.T) {
	counts, err := CountProtein([][]byte{[]byte("ARNDAR")}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: AR, RN, ND, DA, AR → AR twice.
	var arKm uint64
	ScanProtein([]byte("AR"), 2, func(o Occurrence) { arKm = o.Kmer })
	if counts[arKm] != 2 {
		t.Errorf("AR count = %d, want 2", counts[arKm])
	}
	if len(counts) != 4 {
		t.Errorf("distinct k-mers = %d, want 4", len(counts))
	}
}
