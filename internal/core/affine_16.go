package core

// affineNarrow is the int16 tier of Affine (see dp16.go for the tier and
// bit-identity contract). Like the wide kernel it keeps the Gotoh E/F/H
// channels in seven rotating buffers; the gap-open+extend sum is hoisted
// out of the inner loop (max(a,b)+c ≡ max(a+c, b+c), exact in-range), so
// each channel costs two independent adds feeding one max instead of a
// serial add→max→add chain. ok is false when the saturation guard fired
// and the caller must promote to the wide tier.
func (w *Workspace) affineNarrow(h, v View, p Params) (Result, bool) {
	m, n := h.Len(), v.Len()
	delta := min(m, n) + 1
	w.nb0 = growBuf16(w.nb0, delta)
	w.nb1 = growBuf16(w.nb1, delta)
	w.nb2 = growBuf16(w.nb2, delta)
	w.ne0 = growBuf16(w.ne0, delta)
	w.ne1 = growBuf16(w.ne1, delta)
	w.nf0 = growBuf16(w.nf0, delta)
	w.nf1 = growBuf16(w.nf1, delta)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        7 * delta * narrowScoreBytes,
		Narrow:           true,
	}}

	tab := p.Scorer.Table()
	gape := int16(p.Gap)
	gapo := int16(p.GapOpen)
	goe := gapo + gape
	hb, vb := h.data, v.data
	hStep, hOrg := h.dir()
	vStep, vD, vOrg := v.vdir()

	d1h, d1e, d1f := w.nb1, w.ne1, w.nf1
	d2h := w.nb2
	outH, outE, outF := w.nb0, w.ne0, w.nf0
	seedDiag16(d1h, 0)
	seedDiag16(d1e, negInf16)
	seedDiag16(d1f, negInf16)
	seedDiag16(d2h, negInf16)
	d1cl, d1lo, d1hi := 0, 0, 0
	d2cl := 0

	var acc statAcc
	acc.observe(1, 1)

	best, t := int16(0), int16(0)
	bestI, bestD := 0, 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		limit := pruneLimit16(t, p.X)
		lo, hi := -1, -1
		o1 := bufPad - d1cl
		o2 := bufPad - d2cl
		oo := bufPad - cl

		i := cl
		if i == 0 {
			// Top boundary (j = d): only the E channel exists, and it
			// is also the cell's H value.
			e := max(d1e[o1]+gape, d1h[o1]+goe)
			if e < limit {
				e = negInf16
			}
			outH[oo], outE[oo], outF[oo] = e, e, negInf16
			i = 1
		}
		iB := cu
		peelDiag := cu == d // bottom boundary cell (j = 0) exists
		if peelDiag {
			iB = cu - 1
		}
		if cnt := iB - i + 1; cnt > 0 {
			base := i
			ohRow := outH[base+oo:][:cnt]
			oeRow := outE[base+oo:][:cnt]
			ofRow := outF[base+oo:][:cnt]
			d2v := d2h[base-1+o2:][:cnt]
			d1hr := d1h[base+o1:][:cnt]
			d1er := d1e[base+o1:][:cnt]
			d1fr := d1f[base+o1:][:cnt]
			hlv := d1h[base-1+o1]
			flv := d1f[base-1+o1]
			switch {
			case !h.rev && !v.rev:
				hRow := hb[base-1:][:cnt]
				vRow := vb[d-base-cnt:][:cnt]
				for k := range ohRow {
					hrv := d1hr[k]
					e := max(d1er[k]+gape, hrv+goe)
					f := max(flv+gape, hlv+goe)
					flv = d1fr[k]
					s := d2v[k] + int16(tab[hRow[k]][vRow[cnt-1-k]])
					hlv = hrv
					if e > s {
						s = e
					}
					if f > s {
						s = f
					}
					if s < limit {
						s = negInf16
					}
					if e < limit {
						e = negInf16
					}
					if f < limit {
						f = negInf16
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
				}
			case h.rev && v.rev:
				hRow := hb[m-base-cnt+1:][:cnt]
				vRow := vb[n-d+base:][:cnt]
				for k := range ohRow {
					hrv := d1hr[k]
					e := max(d1er[k]+gape, hrv+goe)
					f := max(flv+gape, hlv+goe)
					flv = d1fr[k]
					s := d2v[k] + int16(tab[hRow[cnt-1-k]][vRow[k]])
					hlv = hrv
					if e > s {
						s = e
					}
					if f > s {
						s = f
					}
					if s < limit {
						s = negInf16
					}
					if e < limit {
						e = negInf16
					}
					if f < limit {
						f = negInf16
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
				}
			default:
				// Mixed-direction views: generic index cursors.
				hIdx := hOrg + hStep*base
				vIdx := vOrg + vD*d + vStep*base
				for k := range ohRow {
					hrv := d1hr[k]
					e := max(d1er[k]+gape, hrv+goe)
					f := max(flv+gape, hlv+goe)
					flv = d1fr[k]
					s := d2v[k] + int16(tab[hb[hIdx]][vb[vIdx]])
					hIdx += hStep
					vIdx += vStep
					hlv = hrv
					if e > s {
						s = e
					}
					if f > s {
						s = f
					}
					if s < limit {
						s = negInf16
					}
					if e < limit {
						e = negInf16
					}
					if f < limit {
						f = negInf16
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
				}
			}
			i = iB + 1
		}
		if peelDiag {
			// Bottom boundary (j = 0): only the F channel exists, and
			// it is also the cell's H value.
			f := max(d1f[i-1+o1]+gape, d1h[i-1+o1]+goe)
			if f < limit {
				f = negInf16
			}
			k := i + oo
			outH[k], outE[k], outF[k] = f, negInf16, f
		}
		width := cu - cl + 1
		setGuards16(outH, width)
		setGuards16(outE, width)
		setGuards16(outF, width)

		rowH := outH[bufPad:][:width]
		rowE := outE[bufPad:][:width]
		rowF := outF[bufPad:][:width]
		for k := 0; k < width; k++ {
			if rowH[k] != negInf16 || rowE[k] != negInf16 || rowF[k] != negInf16 {
				lo = cl + k
				break
			}
		}
		rowBest, rowBestI := negInf16, -1
		if lo >= 0 {
			for k := width - 1; ; k-- {
				if rowH[k] != negInf16 || rowE[k] != negInf16 || rowF[k] != negInf16 {
					hi = cl + k
					break
				}
			}
			for k := lo - cl; k <= hi-cl; k++ {
				if s := rowH[k]; s > rowBest {
					rowBest, rowBestI = s, cl+k
				}
			}
		}
		if rowBest > satGuard16 {
			return Result{}, false
		}

		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		acc.observe(width, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		d2h, d1h, outH = d1h, outH, d2h
		d1e, outE = outE, d1e
		d1f, outF = outF, d1f
		d2cl = d1cl
		d1cl, d1lo, d1hi = cl, lo, hi
	}

	acc.flush(&res.Stats)
	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	return res, true
}
