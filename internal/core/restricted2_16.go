package core

// restricted2Narrow is the int16 tier of Restricted2 (see dp16.go for
// the tier and bit-identity contract). Window realignment, pruning and
// the live-window recovery are byte-for-byte the wide kernel's; the
// interior runs four hand-unrolled lanes per iteration — every d−2 read
// issues before the four in-place stores (safe: writes trail reads
// because the window start cl never decreases), and the row maximum
// accumulates in four independent lanes merged once per antidiagonal.
// ok is false when the saturation guard fired and the caller must
// promote to the wide tier.
func (w *Workspace) restricted2Narrow(h, v View, p Params) (Result, bool) {
	m, n := h.Len(), v.Len()
	delta := min(m, n) + 1
	capacity := delta
	if p.DeltaB > 0 && p.DeltaB < delta {
		capacity = p.DeltaB
	}
	w.nb1 = growBuf16(w.nb1, capacity)
	w.nb2 = growBuf16(w.nb2, capacity)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        2 * capacity * narrowScoreBytes,
		Narrow:           true,
	}}

	tab := p.Scorer.Table()
	gap := int16(p.Gap)
	hb, vb := h.data, v.data
	hStep, hOrg := h.dir()
	vStep, vD, vOrg := v.vdir()

	d1b, d2b := w.nb1, w.nb2
	seedDiag16(d1b, 0)
	seedDiag16(d2b, negInf16)
	d1cl, d1lo, d1hi := 0, 0, 0
	d2cl := 0

	var acc statAcc
	acc.observe(1, 1)

	best, t := int16(0), int16(0)
	bestI, bestD := 0, 0
	rowBestI := 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		if cu-cl+1 > capacity {
			res.Stats.Clamped = true
			ncl := rowBestI - capacity/2
			if ncl < cl {
				ncl = cl
			}
			if ncl > cu-capacity+1 {
				ncl = cu - capacity + 1
			}
			cl = ncl
			cu = cl + capacity - 1
		}

		limit := pruneLimit16(t, p.X)
		rowBest := negInf16
		lo, hi := -1, -1
		o1 := bufPad - d1cl
		o2 := bufPad - d2cl
		oo := bufPad - cl
		out := d2b // antidiagonal d overwrites d−2 in place
		wlast := out[cl-1+o2]

		i := cl
		if i == 0 {
			// Top boundary (j = d): only the vertical gap move exists.
			wnew := out[o2]
			s := d1b[o1] + gap
			if s < limit {
				s = negInf16
			}
			if s > rowBest {
				rowBest = s
			}
			out[oo] = s
			wlast = wnew
			i = 1
		}
		iB := cu
		peelDiag := cu == d // bottom boundary cell (j = 0) exists
		if peelDiag {
			iB = cu - 1
		}
		if cnt := iB - i + 1; cnt > 0 {
			base := i
			outRow := out[base+oo:][:cnt]
			d2v := out[base+o2:][:cnt]
			d1r := d1b[base+o1:][:cnt]
			dlv := d1b[base-1+o1]
			// Four independent row-maximum chains; the merged value
			// equals the sequential maximum, and the first-wins index
			// is recovered by the equality scan below exactly as on the
			// wide tier.
			rb0, rb1 := rowBest, negInf16
			rb2, rb3 := negInf16, negInf16
			switch {
			case !h.rev && !v.rev:
				hRow := hb[base-1:][:cnt]
				vRow := vb[d-base-cnt:][:cnt]
				k := 0
				for ; k+3 < cnt; k += 4 {
					w0, w1, w2, w3 := d2v[k], d2v[k+1], d2v[k+2], d2v[k+3]
					r0, r1, r2, r3 := d1r[k], d1r[k+1], d1r[k+2], d1r[k+3]
					s0 := wlast + int16(tab[hRow[k]][vRow[cnt-1-k]])
					s1 := w0 + int16(tab[hRow[k+1]][vRow[cnt-2-k]])
					s2 := w1 + int16(tab[hRow[k+2]][vRow[cnt-3-k]])
					s3 := w2 + int16(tab[hRow[k+3]][vRow[cnt-4-k]])
					if g := max(dlv, r0) + gap; g > s0 {
						s0 = g
					}
					if g := max(r0, r1) + gap; g > s1 {
						s1 = g
					}
					if g := max(r1, r2) + gap; g > s2 {
						s2 = g
					}
					if g := max(r2, r3) + gap; g > s3 {
						s3 = g
					}
					if s0 < limit {
						s0 = negInf16
					}
					if s1 < limit {
						s1 = negInf16
					}
					if s2 < limit {
						s2 = negInf16
					}
					if s3 < limit {
						s3 = negInf16
					}
					if s0 > rb0 {
						rb0 = s0
					}
					if s1 > rb1 {
						rb1 = s1
					}
					if s2 > rb2 {
						rb2 = s2
					}
					if s3 > rb3 {
						rb3 = s3
					}
					outRow[k] = s0
					outRow[k+1] = s1
					outRow[k+2] = s2
					outRow[k+3] = s3
					dlv = r3
					wlast = w3
				}
				for ; k < cnt; k++ {
					wnew := d2v[k]
					s := wlast + int16(tab[hRow[k]][vRow[cnt-1-k]])
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf16
					}
					if s > rb0 {
						rb0 = s
					}
					outRow[k] = s
					wlast = wnew
				}
			case h.rev && v.rev:
				hRow := hb[m-base-cnt+1:][:cnt]
				vRow := vb[n-d+base:][:cnt]
				k := 0
				for ; k+3 < cnt; k += 4 {
					w0, w1, w2, w3 := d2v[k], d2v[k+1], d2v[k+2], d2v[k+3]
					r0, r1, r2, r3 := d1r[k], d1r[k+1], d1r[k+2], d1r[k+3]
					s0 := wlast + int16(tab[hRow[cnt-1-k]][vRow[k]])
					s1 := w0 + int16(tab[hRow[cnt-2-k]][vRow[k+1]])
					s2 := w1 + int16(tab[hRow[cnt-3-k]][vRow[k+2]])
					s3 := w2 + int16(tab[hRow[cnt-4-k]][vRow[k+3]])
					if g := max(dlv, r0) + gap; g > s0 {
						s0 = g
					}
					if g := max(r0, r1) + gap; g > s1 {
						s1 = g
					}
					if g := max(r1, r2) + gap; g > s2 {
						s2 = g
					}
					if g := max(r2, r3) + gap; g > s3 {
						s3 = g
					}
					if s0 < limit {
						s0 = negInf16
					}
					if s1 < limit {
						s1 = negInf16
					}
					if s2 < limit {
						s2 = negInf16
					}
					if s3 < limit {
						s3 = negInf16
					}
					if s0 > rb0 {
						rb0 = s0
					}
					if s1 > rb1 {
						rb1 = s1
					}
					if s2 > rb2 {
						rb2 = s2
					}
					if s3 > rb3 {
						rb3 = s3
					}
					outRow[k] = s0
					outRow[k+1] = s1
					outRow[k+2] = s2
					outRow[k+3] = s3
					dlv = r3
					wlast = w3
				}
				for ; k < cnt; k++ {
					wnew := d2v[k]
					s := wlast + int16(tab[hRow[cnt-1-k]][vRow[k]])
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf16
					}
					if s > rb0 {
						rb0 = s
					}
					outRow[k] = s
					wlast = wnew
				}
			default:
				// Mixed-direction views: generic index cursors.
				hIdx := hOrg + hStep*base
				vIdx := vOrg + vD*d + vStep*base
				for k := range outRow {
					wnew := d2v[k]
					s := wlast + int16(tab[hb[hIdx]][vb[vIdx]])
					hIdx += hStep
					vIdx += vStep
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf16
					}
					if s > rb0 {
						rb0 = s
					}
					outRow[k] = s
					wlast = wnew
				}
			}
			rowBest = max(max(rb0, rb1), max(rb2, rb3))
			i = iB + 1
		}
		if peelDiag {
			// Bottom boundary (j = 0): only the horizontal gap move.
			s := d1b[i-1+o1] + gap
			if s < limit {
				s = negInf16
			}
			if s > rowBest {
				rowBest = s
			}
			out[i+oo] = s
		}
		if rowBest > satGuard16 {
			return Result{}, false
		}
		width := cu - cl + 1
		setGuards16(out, width)

		row := out[bufPad:][:width]
		for k := 0; k < width; k++ {
			if row[k] != negInf16 {
				lo = cl + k
				break
			}
		}
		rowBestI = -1
		if lo >= 0 {
			for k := width - 1; ; k-- {
				if row[k] != negInf16 {
					hi = cl + k
					break
				}
			}
			for k := lo - cl; ; k++ {
				if row[k] == rowBest {
					rowBestI = cl + k
					break
				}
			}
		}

		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		acc.observe(width, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		d1b, d2b = d2b, d1b
		d2cl = d1cl
		d1cl, d1lo, d1hi = cl, lo, hi
	}

	acc.flush(&res.Stats)
	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	return res, true
}
