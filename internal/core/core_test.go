package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/scoring"
)

func dnaParams(x int) Params {
	return Params{Scorer: scoring.DNADefault, Gap: -1, X: x}
}

func randDNA(rng *rand.Rand, n int) []byte {
	const sym = "ACGT"
	s := make([]byte, n)
	for i := range s {
		s[i] = sym[rng.Intn(4)]
	}
	return s
}

// mutate applies substitutions/insertions/deletions at the given rate.
func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	const sym = "ACGT"
	out := make([]byte, 0, len(s)+8)
	for _, c := range s {
		if rng.Float64() < rate {
			switch rng.Intn(3) {
			case 0: // substitution
				out = append(out, sym[rng.Intn(4)])
			case 1: // insertion
				out = append(out, sym[rng.Intn(4)], c)
			case 2: // deletion
			}
		} else {
			out = append(out, c)
		}
	}
	return out
}

func TestViewAccess(t *testing.T) {
	b := []byte("ACGT")
	f := NewView(b)
	r := NewReversedView(b)
	if f.Len() != 4 || r.Len() != 4 {
		t.Fatal("length mismatch")
	}
	if f.At(0) != 'A' || f.At(3) != 'T' {
		t.Error("forward view broken")
	}
	if r.At(0) != 'T' || r.At(3) != 'A' {
		t.Error("reversed view broken")
	}
	if !bytes.Equal(r.Bytes(), []byte("TGCA")) {
		t.Error("Bytes() of reversed view broken")
	}
	if f.Reversed() || !r.Reversed() {
		t.Error("Reversed() flags wrong")
	}
}

func TestParamsValidate(t *testing.T) {
	good := dnaParams(10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Scorer: nil, Gap: -1, X: 5},
		{Scorer: scoring.DNADefault, Gap: 0, X: 5},
		{Scorer: scoring.DNADefault, Gap: -1, X: -1},
		{Scorer: scoring.DNADefault, Gap: -1, X: 5, DeltaB: -2},
		{Scorer: scoring.DNADefault, Gap: -1, X: 5, GapOpen: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestIdenticalSequences(t *testing.T) {
	// A perfect match must score len×match and end at the corners.
	for _, n := range []int{1, 2, 10, 100, 777} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := randDNA(rng, n)
		for _, algo := range []Algo{AlgoReference, AlgoStandard3, AlgoRestricted2} {
			p := dnaParams(5)
			p.Algo = algo
			r := Align(NewView(s), NewView(s), p)
			if r.Score != n {
				t.Errorf("%v n=%d: score %d, want %d", algo, n, r.Score, n)
			}
			if r.EndH != n || r.EndV != n {
				t.Errorf("%v n=%d: end (%d,%d), want (%d,%d)", algo, n, r.EndH, r.EndV, n, n)
			}
		}
	}
}

func TestEmptySequences(t *testing.T) {
	p := dnaParams(5)
	for _, algo := range []Algo{AlgoReference, AlgoStandard3, AlgoRestricted2, AlgoAffine} {
		p.Algo = algo
		r := Align(NewView(nil), NewView(nil), p)
		if r.Score != 0 || r.EndH != 0 || r.EndV != 0 {
			t.Errorf("%v empty/empty: %+v", algo, r)
		}
		r = Align(NewView([]byte("ACGT")), NewView(nil), p)
		if r.Score != 0 {
			t.Errorf("%v seq/empty: score %d, want 0", algo, r.Score)
		}
		r = Align(NewView(nil), NewView([]byte("ACGT")), p)
		if r.Score != 0 {
			t.Errorf("%v empty/seq: score %d, want 0", algo, r.Score)
		}
	}
}

func TestCompletelyMismatched(t *testing.T) {
	// Poly-A vs poly-C: every path scores negative, so the best score is
	// 0 at the origin and the search dies after roughly X antidiagonals.
	h := bytes.Repeat([]byte("A"), 200)
	v := bytes.Repeat([]byte("C"), 200)
	for _, algo := range []Algo{AlgoReference, AlgoStandard3, AlgoRestricted2} {
		p := dnaParams(10)
		p.Algo = algo
		r := Align(NewView(h), NewView(v), p)
		if r.Score != 0 {
			t.Errorf("%v: score %d, want 0", algo, r.Score)
		}
		if r.Stats.Antidiagonals > 30 {
			t.Errorf("%v: search should die after ~X antidiagonals, ran %d", algo, r.Stats.Antidiagonals)
		}
	}
}

// TestVariantsAgreeWithOracle is the central correctness property: on
// random mutated pairs, Standard3 and Restricted2 (unbounded δb) must
// reproduce the full-matrix oracle exactly — score, end point, cells.
func TestVariantsAgreeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(120)
		h := randDNA(rng, n)
		v := mutate(rng, h, []float64{0, 0.05, 0.15, 0.4, 0.9}[trial%5])
		if trial%7 == 0 {
			v = randDNA(rng, 1+rng.Intn(120)) // unrelated pair
		}
		x := []int{0, 1, 5, 10, 25, 100}[trial%6]
		p := dnaParams(x)

		ref := Reference(NewView(h), NewView(v), p)
		std := Standard3(NewView(h), NewView(v), p)
		rst := Restricted2(NewView(h), NewView(v), p)

		if std.Score != ref.Score || std.EndH != ref.EndH || std.EndV != ref.EndV {
			t.Fatalf("trial %d: standard3 %+v != reference %+v (x=%d h=%s v=%s)",
				trial, std, ref, x, h, v)
		}
		if rst.Score != ref.Score || rst.EndH != ref.EndH || rst.EndV != ref.EndV {
			t.Fatalf("trial %d: restricted2 %+v != reference %+v (x=%d h=%s v=%s)",
				trial, rst, ref, x, h, v)
		}
		if std.Stats.Cells != ref.Stats.Cells || rst.Stats.Cells != ref.Stats.Cells {
			t.Fatalf("trial %d: cell counts diverge ref=%d std=%d rst=%d",
				trial, ref.Stats.Cells, std.Stats.Cells, rst.Stats.Cells)
		}
		if std.Stats.MaxLiveBand != ref.Stats.MaxLiveBand || rst.Stats.MaxLiveBand != ref.Stats.MaxLiveBand {
			t.Fatalf("trial %d: band diverges ref=%d std=%d rst=%d",
				trial, ref.Stats.MaxLiveBand, std.Stats.MaxLiveBand, rst.Stats.MaxLiveBand)
		}
		if rst.Stats.Clamped {
			t.Fatalf("trial %d: unbounded restricted2 reported clamping", trial)
		}
	}
}

// TestRestrictedWithSufficientBand checks the paper's δb selection claim
// (§6.1): choosing δb ≥ δw preserves the computation exactly.
func TestRestrictedWithSufficientBand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		h := randDNA(rng, 80+rng.Intn(80))
		v := mutate(rng, h, 0.15)
		p := dnaParams(10)
		full := Standard3(NewView(h), NewView(v), p)

		p.DeltaB = full.Stats.MaxLiveBand + 1
		rst := Restricted2(NewView(h), NewView(v), p)
		if rst.Score != full.Score || rst.EndH != full.EndH || rst.EndV != full.EndV {
			t.Fatalf("trial %d: δb=δw+1 diverged: %+v vs %+v", trial, rst, full)
		}
	}
}

// TestRestrictedClampIsLowerBound checks that an undersized δb yields a
// score that never exceeds the unrestricted one and flags the clamp.
func TestRestrictedClampIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	clamps := 0
	for trial := 0; trial < 150; trial++ {
		h := randDNA(rng, 150)
		v := mutate(rng, h, 0.35)
		p := dnaParams(30)
		full := Standard3(NewView(h), NewView(v), p)
		p.DeltaB = 4
		rst := Restricted2(NewView(h), NewView(v), p)
		if rst.Score > full.Score {
			t.Fatalf("trial %d: clamped score %d exceeds unrestricted %d", trial, rst.Score, full.Score)
		}
		if rst.Stats.MaxLiveBand > 4 {
			t.Fatalf("trial %d: band %d exceeds δb=4", trial, rst.Stats.MaxLiveBand)
		}
		if rst.Stats.Clamped {
			clamps++
		}
	}
	if clamps == 0 {
		t.Fatal("δb=4 at 35% error never clamped; clamp path untested")
	}
}

// TestScoreMonotoneInX: enlarging X can only enlarge the search space and
// therefore never lowers the score; X huge reaches the full-DP optimum.
func TestScoreMonotoneInX(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		h := randDNA(rng, 60+rng.Intn(60))
		v := mutate(rng, h, 0.25)
		prev := -1 << 30
		var prevCells int64
		for _, x := range []int{0, 2, 5, 10, 20, 50, 1 << 20} {
			p := dnaParams(x)
			r := Standard3(NewView(h), NewView(v), p)
			if r.Score < prev {
				t.Fatalf("trial %d: score decreased (%d → %d) at X=%d", trial, prev, r.Score, x)
			}
			if r.Stats.Cells < prevCells {
				t.Fatalf("trial %d: cells decreased at X=%d", trial, x)
			}
			prev = r.Score
			prevCells = r.Stats.Cells
		}
		// X=∞ must reach the unpruned semi-global optimum.
		full := SemiGlobalFull(NewView(h), NewView(v), scoring.DNADefault, -1)
		if prev != full.Score {
			t.Fatalf("trial %d: X=∞ score %d != full DP %d", trial, prev, full.Score)
		}
	}
}

// TestLeftExtensionEqualsReversedRight: the op(·) view transformation must
// be equivalent to materialising reversed sequences.
func TestLeftExtensionEqualsReversedRight(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		h := randDNA(rng, 40+rng.Intn(100))
		v := mutate(rng, h, 0.2)
		hOff := rng.Intn(len(h) + 1)
		vOff := rng.Intn(len(v) + 1)
		p := dnaParams(8)

		left := ExtendLeft(h, v, hOff, vOff, p)

		hr := make([]byte, hOff)
		vr := make([]byte, vOff)
		for i := 0; i < hOff; i++ {
			hr[i] = h[hOff-1-i]
		}
		for i := 0; i < vOff; i++ {
			vr[i] = v[vOff-1-i]
		}
		right := Align(NewView(hr), NewView(vr), p)

		if left.Score != right.Score || left.EndH != right.EndH || left.EndV != right.EndV {
			t.Fatalf("trial %d: left ext %+v != reversed right %+v", trial, left, right)
		}
	}
}

func TestExtendSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Construct two sequences sharing an exact 17-mer in the middle.
	k := 17
	seed := randDNA(rng, k)
	hl, hr := randDNA(rng, 200), randDNA(rng, 180)
	h := append(append(append([]byte{}, hl...), seed...), hr...)
	vl := mutate(rng, hl, 0.1)
	vr := mutate(rng, hr, 0.1)
	v := append(append(append([]byte{}, vl...), seed...), vr...)

	p := dnaParams(15)
	s := Seed{H: len(hl), V: len(vl), Len: k}
	r, err := ExtendSeed(h, v, s, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Score < k {
		t.Errorf("seed extension score %d below seed score %d", r.Score, k)
	}
	if r.Score != r.LeftScore+k+r.RightScore {
		t.Errorf("score %d != left %d + seed %d + right %d", r.Score, r.LeftScore, k, r.RightScore)
	}
	if r.BegH > s.H || r.EndH < s.H+k || r.BegV > s.V || r.EndV < s.V+k {
		t.Errorf("alignment [%d,%d)x[%d,%d) does not span seed %+v", r.BegH, r.EndH, r.BegV, r.EndV, s)
	}
	if r.BegH < 0 || r.EndH > len(h) || r.BegV < 0 || r.EndV > len(v) {
		t.Errorf("alignment out of bounds: %+v", r)
	}
}

func TestExtendSeedErrors(t *testing.T) {
	h, v := []byte("ACGTACGT"), []byte("ACGTACGT")
	p := dnaParams(5)
	bad := []Seed{
		{H: -1, V: 0, Len: 3},
		{H: 0, V: -1, Len: 3},
		{H: 0, V: 0, Len: 0},
		{H: 6, V: 0, Len: 3},
		{H: 0, V: 7, Len: 2},
	}
	for _, s := range bad {
		if _, err := ExtendSeed(h, v, s, p); err == nil {
			t.Errorf("seed %+v accepted, want error", s)
		}
	}
}

func TestAffineBasics(t *testing.T) {
	p := Params{Scorer: scoring.NewSimple(2, -4), Gap: -1, GapOpen: -4, X: 40, Algo: AlgoAffine}
	// Perfect match.
	s := []byte("ACGTACGTACGTACGTACGT")
	r := Affine(NewView(s), NewView(s), p)
	if r.Score != 2*len(s) {
		t.Errorf("affine perfect match: score %d, want %d", r.Score, 2*len(s))
	}
	// One long deletion: affine must prefer a single opened gap.
	h := []byte("ACGTACGTAAAAAAAAAAACGTACGTGGGG")
	v := append(append([]byte{}, h[:9]...), h[19:]...) // delete 10 symbols
	r = Affine(NewView(h), NewView(v), p)
	// 20 matches (score 40) minus open 4 minus 10×extend 10 = 26.
	want := 2*(len(h)-10) - 4 - 10
	if r.Score != want {
		t.Errorf("affine long gap: score %d, want %d", r.Score, want)
	}
}

func TestAffineLargerSearchSpace(t *testing.T) {
	// The ksw2-style scheme (2/−4, open −4, extend −1) must on average
	// compute more cells than the linear DNA scheme at matched X values,
	// reproducing the §6.2 observation that ksw2's weaker long-gap
	// penalty enlarges the search space.
	rng := rand.New(rand.NewSource(12))
	var linCells, affCells int64
	for trial := 0; trial < 40; trial++ {
		h := randDNA(rng, 400)
		v := mutate(rng, h, 0.15)
		lin := Standard3(NewView(h), NewView(v), dnaParams(15))
		ap := Params{Scorer: scoring.NewSimple(2, -4), Gap: -1, GapOpen: -4, X: 30, Algo: AlgoAffine}
		af := Affine(NewView(h), NewView(v), ap)
		linCells += lin.Stats.Cells
		affCells += af.Stats.Cells
	}
	if affCells <= linCells {
		t.Errorf("affine cells %d not larger than linear cells %d", affCells, linCells)
	}
}

func TestBandedVsXDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := randDNA(rng, 300)
	// Insert a long gap so the optimal path leaves a narrow static band
	// (the Fig. 1 scenario).
	v := append(append(append([]byte{}, h[:100]...), randDNA(rng, 60)...), h[100:]...)
	full := SemiGlobalFull(NewView(h), NewView(v), scoring.DNADefault, -1)
	narrow := Banded(NewView(h), NewView(v), 10, scoring.DNADefault, -1)
	wide := Banded(NewView(h), NewView(v), len(v), scoring.DNADefault, -1)
	xd := Standard3(NewView(h), NewView(v), dnaParams(100))
	if narrow.Score >= full.Score {
		t.Errorf("narrow band should miss the optimum: banded %d vs full %d", narrow.Score, full.Score)
	}
	if wide.Score != full.Score {
		t.Errorf("wide band %d != full %d", wide.Score, full.Score)
	}
	if xd.Score != full.Score {
		t.Errorf("x-drop (X=100) %d != full %d", xd.Score, full.Score)
	}
}

func TestReferenceMatrixComputedArea(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	h := randDNA(rng, 60)
	v := mutate(rng, h, 0.1)
	p10 := dnaParams(5)
	p20 := dnaParams(20)
	pInf := dnaParams(1 << 20)
	m10, _ := ReferenceMatrix(NewView(h), NewView(v), p10)
	m20, _ := ReferenceMatrix(NewView(h), NewView(v), p20)
	mInf, rInf := ReferenceMatrix(NewView(h), NewView(v), pInf)
	if !(m10.ComputedCells() <= m20.ComputedCells() && m20.ComputedCells() <= mInf.ComputedCells()) {
		t.Errorf("computed area not monotone in X: %d, %d, %d",
			m10.ComputedCells(), m20.ComputedCells(), mInf.ComputedCells())
	}
	if !mInf.Computed(0, 0) || mInf.Score(0, 0) != 0 {
		t.Error("origin cell wrong")
	}
	if int64(mInf.ComputedCells()) != rInf.Stats.Cells {
		t.Errorf("mask count %d != stats cells %d", mInf.ComputedCells(), rInf.Stats.Cells)
	}
}

func TestWorkBytesAccounting(t *testing.T) {
	h := bytes.Repeat([]byte("ACGT"), 100) // 400
	v := bytes.Repeat([]byte("ACGT"), 100)
	p := dnaParams(10)
	std := Standard3(NewView(h), NewView(v), p)
	if std.Stats.WorkBytes != 3*401*4 {
		t.Errorf("standard3 WorkBytes = %d, want %d", std.Stats.WorkBytes, 3*401*4)
	}
	p.DeltaB = 64
	rst := Restricted2(NewView(h), NewView(v), p)
	if rst.Stats.WorkBytes != 2*64*4 {
		t.Errorf("restricted2 WorkBytes = %d, want %d", rst.Stats.WorkBytes, 2*64*4)
	}
	// The 55× headline: 3δ/2δb for a 25 kb sequence at δb=680.
	ratio := float64(3*25001*4) / float64(2*680*4)
	if ratio < 50 || ratio > 60 {
		t.Errorf("memory-reduction ratio %f outside the paper's ~55× regime", ratio)
	}
}

func TestStatsObserveAndAdd(t *testing.T) {
	var s Stats
	s.observe(100, 40)
	s.observe(200, 80)
	if s.Antidiagonals != 2 || s.Cells != 300 || s.MaxLiveBand != 80 {
		t.Errorf("observe: %+v", s)
	}
	if s.Chunks32 != 4+7 || s.Chunks128 != 1+2 {
		t.Errorf("chunks: %+v", s)
	}
	var o Stats
	o.observe(50, 90)
	o.Clamped = true
	s.add(o)
	if s.Antidiagonals != 3 || s.MaxLiveBand != 90 || !s.Clamped {
		t.Errorf("add: %+v", s)
	}
}

func TestAlgoString(t *testing.T) {
	names := map[Algo]string{
		AlgoRestricted2: "restricted2",
		AlgoStandard3:   "standard3",
		AlgoReference:   "reference",
		AlgoAffine:      "affine",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("Algo(%d).String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestWorkspaceReuseIsClean(t *testing.T) {
	// Reusing one workspace across alignments of different sizes must
	// give identical results to fresh workspaces.
	rng := rand.New(rand.NewSource(15))
	var w Workspace
	for trial := 0; trial < 60; trial++ {
		h := randDNA(rng, 1+rng.Intn(200))
		v := mutate(rng, h, 0.2)
		p := dnaParams(12)
		if trial%3 == 1 {
			p.DeltaB = 8
		}
		a := w.Restricted2(NewView(h), NewView(v), p)
		b := Restricted2(NewView(h), NewView(v), p)
		if a.Score != b.Score || a.Stats != b.Stats {
			t.Fatalf("trial %d: workspace reuse diverged: %+v vs %+v", trial, a, b)
		}
		s1 := w.Standard3(NewView(h), NewView(v), p)
		s2 := Standard3(NewView(h), NewView(v), p)
		if s1.Score != s2.Score || s1.Stats != s2.Stats {
			t.Fatalf("trial %d: standard3 workspace reuse diverged", trial)
		}
	}
}
