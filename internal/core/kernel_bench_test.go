package core

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/scoring"
)

// Kernel-level micro-benchmarks: single-core Mcells/s of each variant at
// each score width, on the same 2000bp/15%-error workload as the facade
// benchmarks. These feed the kernel_tiers section of BENCH_engine.json.

func benchKernelPair(n int, errRate float64) ([]byte, []byte) {
	rng := rand.New(rand.NewSource(42))
	h := randDNA(rng, n)
	v := mutate(rng, h, errRate)
	return h, v
}

func benchKernel(b *testing.B, algo Algo, deltaB int, tier Tier) {
	b.Helper()
	h, v := benchKernelPair(2000, 0.15)
	p := Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, Algo: algo, DeltaB: deltaB, Tier: tier}
	if algo == AlgoAffine {
		p.GapOpen = -2
	}
	hv, vv := NewView(h), NewView(v)
	var ws Workspace
	ws.align(hv, vv, p) // warm buffers; the loop must be allocation-free
	var cells int64
	var promotions int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ws.align(hv, vv, p)
		cells += r.Stats.Cells
		if r.Stats.Promoted {
			promotions++
		}
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e6, "Mcells/s")
	if tier == TierNarrow && promotions > 0 {
		b.Fatalf("benchmark workload promoted %d/%d runs; tier comparison invalid", promotions, b.N)
	}
}

func BenchmarkKernelRestricted2Wide(b *testing.B)   { benchKernel(b, AlgoRestricted2, 256, TierWide) }
func BenchmarkKernelRestricted2Narrow(b *testing.B) { benchKernel(b, AlgoRestricted2, 256, TierNarrow) }
func BenchmarkKernelStandard3Wide(b *testing.B)     { benchKernel(b, AlgoStandard3, 0, TierWide) }
func BenchmarkKernelStandard3Narrow(b *testing.B)   { benchKernel(b, AlgoStandard3, 0, TierNarrow) }
func BenchmarkKernelAffineWide(b *testing.B)        { benchKernel(b, AlgoAffine, 0, TierWide) }
func BenchmarkKernelAffineNarrow(b *testing.B)      { benchKernel(b, AlgoAffine, 0, TierNarrow) }

// TestKernelLoopsAllocationFree pins the alloc regression: with a warm
// workspace, no variant may allocate per extension on either tier.
func TestKernelLoopsAllocationFree(t *testing.T) {
	h, v := benchKernelPair(2000, 0.15)
	hv, vv := NewView(h), NewView(v)
	for _, algo := range []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine} {
		for _, tier := range []Tier{TierWide, TierNarrow, TierAuto} {
			p := Params{Scorer: scoring.DNADefault, Gap: -1, GapOpen: -2, X: 15, DeltaB: 256, Algo: algo, Tier: tier}
			var ws Workspace
			ws.align(hv, vv, p)
			if n := testing.AllocsPerRun(10, func() { ws.align(hv, vv, p) }); n != 0 {
				t.Errorf("%v/%v: %.0f allocs per warm extension, want 0", algo, tier, n)
			}
		}
	}
}
