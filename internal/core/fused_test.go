package core

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/alignment"
)

// fusedVariants is tbVariants minus the full-matrix reference, which is
// never fused-eligible.
func fusedVariants() map[string]Params {
	m := tbVariants()
	delete(m, "reference")
	return m
}

// checkFusedExtension runs one extension side three ways — score-only,
// two-pass replay, fused single-pass — and pins the three-way contract:
// the fused Result bit-matches the score kernel in every field (the
// kernel accumulates fused Stats as if the score kernel ran), and the
// fused Trace bit-matches the replay tracer's (score, end points, CIGAR,
// clamp flag and trace-byte accounting), with the CIGAR independently
// re-scoring to the kernel score.
func checkFusedExtension(t *testing.T, h, v []byte, hOff, vOff int, right bool, p Params, label string) {
	t.Helper()
	var ws Workspace
	var want Result
	var replay Trace
	var fr Result
	var ft Trace
	var err error
	if right {
		want = ws.ExtendRight(h, v, hOff, vOff, p)
		replay, err = ws.TracebackRight(h, v, hOff, vOff, p)
		if err != nil {
			t.Fatalf("%s: TracebackRight: %v", label, err)
		}
		fr, ft, err = ws.FusedExtendRight(h, v, hOff, vOff, p)
	} else {
		want = ws.ExtendLeft(h, v, hOff, vOff, p)
		replay, err = ws.TracebackLeft(h, v, hOff, vOff, p)
		if err != nil {
			t.Fatalf("%s: TracebackLeft: %v", label, err)
		}
		fr, ft, err = ws.FusedExtendLeft(h, v, hOff, vOff, p)
	}
	if err != nil {
		t.Fatalf("%s: fused: %v", label, err)
	}
	if fr != want {
		t.Fatalf("%s: fused Result differs from score kernel:\nfused: %+v\nscore: %+v", label, fr, want)
	}
	if ft.Score != replay.Score || ft.EndH != replay.EndH || ft.EndV != replay.EndV {
		t.Fatalf("%s: fused trace (%d,%d,%d) != replay (%d,%d,%d)", label,
			ft.Score, ft.EndH, ft.EndV, replay.Score, replay.EndH, replay.EndV)
	}
	if ft.Cigar != replay.Cigar {
		t.Fatalf("%s: fused cigar %q != replay cigar %q", label, ft.Cigar, replay.Cigar)
	}
	if ft.Clamped != replay.Clamped {
		t.Fatalf("%s: fused clamp flag %v != replay %v", label, ft.Clamped, replay.Clamped)
	}
	if ft.TraceBytes != replay.TraceBytes {
		t.Fatalf("%s: fused trace bytes %d != replay %d", label, ft.TraceBytes, replay.TraceBytes)
	}
	// Independent oracle: the CIGAR re-scores to the kernel score over
	// the exact aligned spans.
	var fh, fv []byte
	if right {
		fh, fv = h[hOff:hOff+ft.EndH], v[vOff:vOff+ft.EndV]
	} else {
		fh, fv = h[hOff-ft.EndH:hOff], v[vOff-ft.EndV:vOff]
	}
	recon, err := alignment.ScoreOf(fh, fv, ft.Cigar, p.Scorer, p.Gap, p.GapOpen)
	if err != nil {
		t.Fatalf("%s: reconstruction: %v (cigar %q)", label, err, ft.Cigar)
	}
	if recon != want.Score {
		t.Fatalf("%s: reconstructed score %d != kernel %d (cigar %q)", label, recon, want.Score, ft.Cigar)
	}
}

// TestFusedDifferentialOracle is the three-way seeded-fuzz oracle:
// score-only vs replay vs fused across every fused-eligible variant,
// tier, size class and mutation rate, on both extension sides.
func TestFusedDifferentialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for name, base := range fusedVariants() {
		for _, tier := range []Tier{TierWide, TierNarrow, TierAuto} {
			p := base
			p.Tier = tier
			for _, size := range []int{40, 200, 700} {
				for _, rate := range []float64{0.03, 0.25} {
					for it := 0; it < 3; it++ {
						h := randDNA(rng, size)
						v := mutate(rng, h, rate)
						k := 9
						if k > len(v) {
							k = len(v)
						}
						sH := rng.Intn(len(h) - k + 1)
						sV := rng.Intn(len(v) - k + 1)
						copy(v[sV:sV+k], h[sH:sH+k])
						label := name + "/" + tier.String()
						// The kernel only fuses eligible extensions;
						// mirror that gate here so the Result equality
						// check always compares like against like.
						if FusedEligible(sH, sV, p) {
							checkFusedExtension(t, h, v, sH, sV, false, p, label+"/left")
						}
						rh, rv := len(h)-sH-k, len(v)-sV-k
						if FusedEligible(rh, rv, p) {
							checkFusedExtension(t, h, v, sH+k, sV+k, true, p, label+"/right")
						}
					}
				}
			}
		}
	}
}

// TestFusedEligibility pins the gate: the reference oracle never fuses,
// narrow-tier extensions never fuse (fusing them would change the batch
// tier counters), and wide extensions of every production variant do.
func TestFusedEligibility(t *testing.T) {
	dna := tbVariants()["restricted2-db256"]
	if FusedEligible(300, 300, dna) != true {
		t.Fatal("wide restricted2 extension not fused-eligible")
	}
	ref := tbVariants()["reference"]
	if FusedEligible(300, 300, ref) {
		t.Fatal("reference oracle fused-eligible")
	}
	narrow := dna
	narrow.Tier = TierNarrow
	if FusedEligible(100, 100, narrow) {
		t.Fatal("narrow-tier extension fused-eligible; fusing would change tier counters")
	}
	// Past the int16 headroom the auto tier falls back to wide lanes,
	// and eligibility returns with it.
	wideAgain := dna
	wideAgain.Tier = TierAuto
	if !FusedEligible(satGuard16+1, satGuard16+1, wideAgain) {
		t.Fatal("auto tier past the narrow headroom should be fused-eligible")
	}
}

// TestFusedEmptyAndEdgeExtensions covers the degenerate geometries the
// peeled loops are most likely to get wrong.
func TestFusedEmptyAndEdgeExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for name, p := range fusedVariants() {
		for _, mn := range [][2]int{{0, 0}, {0, 17}, {17, 0}, {1, 1}, {2, 1}, {33, 29}} {
			h := randDNA(rng, mn[0])
			v := mutate(rng, h, 0.2)
			for len(v) < mn[1] {
				v = append(v, randDNA(rng, mn[1]-len(v))...)
			}
			v = v[:mn[1]]
			checkFusedExtension(t, h, v, 0, 0, true, p, name+"/edge-right")
			checkFusedExtension(t, h, v, len(h), len(v), false, p, name+"/edge-left")
		}
	}
}
