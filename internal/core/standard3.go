package core

// Standard3 runs Zhang's three-antidiagonal X-Drop extension. It allocates
// its own workspace; use (*Workspace).Standard3 in hot loops.
func Standard3(h, v View, p Params) Result {
	var w Workspace
	return w.Standard3(h, v, p)
}

// Standard3 runs Zhang's three-antidiagonal X-Drop extension using the
// workspace buffers. Memory footprint is 3δ scores, δ = min(m,n)+1
// (Fig. 3, left).
//
// Like Restricted2, the kernel runs on NegInf-padded int32 buffers (see
// dp32.go): the view direction is resolved to byte-row slices once per
// extension, the i=0 and j=0 boundary cells are peeled out of the inner
// loop, and interior cells read their neighbors through exact-length row
// slices with no window checks. Antidiagonal rotation moves three slice
// headers and three scalars — no struct copies — and the trace counters
// accumulate in locals (statAcc), flushed once at the end.
func (w *Workspace) Standard3(h, v View, p Params) Result {
	m, n := h.Len(), v.Len()
	delta := min(m, n) + 1
	w.b0 = growBuf32(w.b0, delta)
	w.b1 = growBuf32(w.b1, delta)
	w.b2 = growBuf32(w.b2, delta)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        3 * delta * scoreBytes,
	}}

	tab := p.Scorer.Table()
	gap := int32(p.Gap)
	hb, vb := h.data, v.data
	hStep, hOrg := h.dir()
	vStep, vD, vOrg := v.vdir()

	// d1b holds antidiagonal d−1, d2b holds d−2; out is written for d.
	// Only the window start (cl) and the live bounds of d−1 are needed
	// from previous antidiagonals, so they rotate as plain scalars.
	d1b, d2b, out := w.b1, w.b2, w.b0
	seedDiag(d1b, 0)
	seedDiag(d2b, negInf32)
	d1cl, d1lo, d1hi := 0, 0, 0
	d2cl := 0

	var acc statAcc
	acc.observe(1, 1)

	best, t := int32(0), int32(0)
	bestI, bestD := 0, 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		limit := pruneLimit(t, p.X)
		// rowBest tracks only the value in the hot loops (a single
		// compare-and-move); its index is recovered afterwards by an
		// equality scan that stops at the first argmax, matching the
		// first-wins tie-breaking of a scalar best chain.
		rowBest := negInf32
		lo, hi := -1, -1
		o1 := bufPad - d1cl
		o2 := bufPad - d2cl
		oo := bufPad - cl

		i := cl
		if i == 0 {
			// Top boundary (j = d): only the vertical gap move exists.
			s := d1b[o1] + gap
			if s < limit {
				s = negInf32
			}
			if s > rowBest {
				rowBest = s
			}
			out[oo] = s
			i = 1
		}
		iB := cu
		peelDiag := cu == d // bottom boundary cell (j = 0) exists
		if peelDiag {
			iB = cu - 1
		}
		if cnt := iB - i + 1; cnt > 0 {
			base := i
			// Exact-length row slices: the compiler proves almost all
			// k accesses in range, so the inner loops are close to
			// bounds-check-free. d1's value at i−1 is carried in a
			// register (dlv) instead of re-loaded.
			outRow := out[base+oo:][:cnt]
			d2v := d2b[base-1+o2:][:cnt]
			d1r := d1b[base+o1:][:cnt]
			dlv := d1b[base-1+o1]
			switch {
			case !h.rev && !v.rev:
				hRow := hb[base-1:][:cnt]
				vRow := vb[d-base-cnt:][:cnt]
				for k := range outRow {
					s := d2v[k] + int32(tab[hRow[k]][vRow[cnt-1-k]])
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf32
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
				}
			case h.rev && v.rev:
				hRow := hb[m-base-cnt+1:][:cnt]
				vRow := vb[n-d+base:][:cnt]
				for k := range outRow {
					s := d2v[k] + int32(tab[hRow[cnt-1-k]][vRow[k]])
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf32
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
				}
			default:
				// Mixed-direction views (never produced by the seed
				// extension paths): generic index cursors.
				hIdx := hOrg + hStep*base
				vIdx := vOrg + vD*d + vStep*base
				for k := range outRow {
					s := d2v[k] + int32(tab[hb[hIdx]][vb[vIdx]])
					hIdx += hStep
					vIdx += vStep
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf32
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
				}
			}
			i = iB + 1
		}
		if peelDiag {
			// Bottom boundary (j = 0): only the horizontal gap move.
			s := d1b[i-1+o1] + gap
			if s < limit {
				s = negInf32
			}
			if s > rowBest {
				rowBest = s
			}
			out[i+oo] = s
		}
		width := cu - cl + 1
		setGuards(out, width)

		// Recover the live sub-window and the row maximum from the
		// stored row: cheaper than branching on liveness and best-so-far
		// per cell inside the DP loop.
		row := out[bufPad:][:width]
		for k := 0; k < width; k++ {
			if row[k] != negInf32 {
				lo = cl + k
				break
			}
		}
		rowBestI := -1
		if lo >= 0 {
			for k := width - 1; ; k-- {
				if row[k] != negInf32 {
					hi = cl + k
					break
				}
			}
			for k := lo - cl; ; k++ {
				if row[k] == rowBest {
					rowBestI = cl + k
					break
				}
			}
		}

		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		acc.observe(width, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		// Rotate: d−2 buffer becomes the next write target.
		d2b, d1b, out = d1b, out, d2b
		d2cl = d1cl
		d1cl, d1lo, d1hi = cl, lo, hi
	}

	acc.flush(&res.Stats)
	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	return res
}
