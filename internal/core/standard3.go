package core

// adiag is one stored antidiagonal: the computed window [cl,cu] lives in
// buf[0..cu-cl], with cells outside the window implicitly −∞.
type adiag struct {
	buf    []int
	cl, cu int // computed window (inclusive); cu < cl means empty
	lo, hi int // live (non-pruned) sub-window; hi < lo means none
}

func (a *adiag) at(i int) int {
	if i < a.cl || i > a.cu {
		return NegInf
	}
	return a.buf[i-a.cl]
}

func (a *adiag) reset() {
	a.cl, a.cu = 0, -1
	a.lo, a.hi = 0, -1
}

// Workspace holds reusable DP buffers so a long-lived aligner (one per
// simulated IPU thread) performs no per-alignment allocation. The zero
// value is ready to use; buffers grow on demand.
type Workspace struct {
	b0, b1, b2             []int
	e0, e1, f0, f1, h0, h1 []int
}

func growBuf(b []int, n int) []int {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int, n)
}

// Standard3 runs Zhang's three-antidiagonal X-Drop extension. It allocates
// its own workspace; use (*Workspace).Standard3 in hot loops.
func Standard3(h, v View, p Params) Result {
	var w Workspace
	return w.Standard3(h, v, p)
}

// Standard3 runs Zhang's three-antidiagonal X-Drop extension using the
// workspace buffers. Memory footprint is 3δ scores, δ = min(m,n)+1
// (Fig. 3, left).
func (w *Workspace) Standard3(h, v View, p Params) Result {
	m, n := h.Len(), v.Len()
	delta := minI(m, n) + 1
	w.b0 = growBuf(w.b0, delta)
	w.b1 = growBuf(w.b1, delta)
	w.b2 = growBuf(w.b2, delta)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        3 * delta * 4,
	}}

	tab := p.Scorer.Table()
	gap := p.Gap

	// d1 holds antidiagonal d−1, d2 holds d−2; cur is written for d.
	d1 := adiag{buf: w.b1}
	d2 := adiag{buf: w.b2}
	cur := adiag{buf: w.b0}
	d1.reset()
	d2.reset()

	// Antidiagonal 0 is the single seed cell S(0,0)=0.
	d1.buf[0] = 0
	d1.cl, d1.cu, d1.lo, d1.hi = 0, 0, 0, 0
	res.Stats.observe(1, 1)

	best, bestI, bestD := 0, 0, 0
	t := 0 // T: best score of previous antidiagonals (prune reference)

	for d := 1; d <= m+n; d++ {
		cl := maxI(d1.lo, maxI(0, d-n))
		cu := minI(d1.hi+1, minI(d, m))
		if cl > cu {
			break
		}
		rowBest, rowBestI := NegInf, -1
		lo, hi := -1, -1
		out := cur.buf
		for i := cl; i <= cu; i++ {
			j := d - i
			s := NegInf
			if i > 0 && j > 0 {
				s = d2.at(i-1) + int(tab[h.At(i-1)][v.At(j-1)])
			}
			if i > 0 {
				if g := d1.at(i-1) + gap; g > s {
					s = g
				}
			}
			if j > 0 {
				if g := d1.at(i) + gap; g > s {
					s = g
				}
			}
			if s < t-p.X {
				s = NegInf
			} else {
				if lo < 0 {
					lo = i
				}
				hi = i
				if s > rowBest {
					rowBest, rowBestI = s, i
				}
			}
			out[i-cl] = s
		}
		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		res.Stats.observe(cu-cl+1, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		cur.cl, cur.cu, cur.lo, cur.hi = cl, cu, lo, hi
		// Rotate: d−2 buffer becomes the next write target.
		d2, d1, cur = d1, cur, adiag{buf: d2.buf}
	}

	res.Score = best
	res.EndH = bestI
	res.EndV = bestD - bestI
	return res
}
