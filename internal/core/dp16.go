package core

import "math"

// The narrow kernel tier runs the same antidiagonal recurrences on int16
// score buffers: half the working-buffer traffic of the int32 tier (the
// tentpole of the narrow-integer design, mirroring ksw2/SSW's 16-bit
// lanes) and hand-unrolled four-lane inner loops. Overflow is handled the
// standard ksw2 way — a cheap headroom precheck plus a runtime saturation
// guard that makes the kernel bail out so the caller transparently
// re-runs the extension on the int32 path.
//
// Bit-identity contract. A narrow run that completes (does not saturate)
// returns exactly the int32 tier's Result. The argument:
//
//   - Eligibility bounds X ≤ maxNarrowX (4095) and |Gap|,|GapOpen| ≤
//     maxNarrowGap (1024). With T ≥ 0 always, the prune limit T−X stays
//     in [−4095, satGuard16] on both tiers, so neither tier's pruneLimit
//     clamp ever engages and the limits are equal integers.
//   - Live cell values are identical exact integers in both widths: the
//     saturation guard bails before any value can exceed
//     satGuard16 + maxSim < MaxInt16, and live values are ≥ T−X ≥ −4095,
//     far from MinInt16 even after a gap penalty.
//   - Pruned cells store the width's own sentinel (negInf16 vs negInf32).
//     Sentinel-derived candidates lose every comparison against a
//     live-derived candidate in both widths (a live predecessor is
//     ≥ −4095, so live−|gap|−maxSim ≥ −5247 > negInf16+maxSim = −8065),
//     and a cell whose candidates are all sentinel-derived re-prunes in
//     both widths (−8065 < −4095 ≤ limit). So prune decisions, the live
//     window [lo,hi], rowBest and its first-wins index — and therefore
//     every Stats counter and the final Score/EndH/EndV — coincide.
//
// When the guard does fire the partial narrow attempt is discarded
// wholesale (values, stats, everything) and the extension re-runs wide;
// Result.Stats.Promoted records the event.

// Tier selects the kernel score width. The zero value is TierWide — the
// int32 kernels of dp32.go — so existing configurations and goldens are
// unchanged unless a caller opts in.
type Tier uint8

const (
	// TierWide runs the int32 kernels unconditionally.
	TierWide Tier = iota
	// TierNarrow attempts the int16 kernels whenever the parameters are
	// narrow-eligible, relying on the runtime saturation guard (and the
	// transparent int32 promotion) for overflow safety.
	TierNarrow
	// TierAuto attempts the int16 kernels only when the per-extension
	// headroom precheck proves saturation impossible, so an Auto run
	// never promotes and its SRAM footprint is certifiably narrow.
	TierAuto
)

// String names the tier for reports and fingerprints.
func (t Tier) String() string {
	switch t {
	case TierNarrow:
		return "narrow"
	case TierAuto:
		return "auto"
	default:
		return "wide"
	}
}

// negInf16 is the narrow tier's pruned-cell sentinel: far enough from the
// int16 minimum that adding similarity scores or gap penalties (bounded
// by narrowEligible) cannot wrap.
const negInf16 int16 = math.MinInt16 / 4

// narrowScoreBytes is the narrow tier's working-buffer element size;
// Stats.WorkBytes and the ipukernel SRAM model derive tile footprints
// from it.
const narrowScoreBytes = 2

// NarrowScoreBytes and WideScoreBytes export the per-cell working-buffer
// element sizes of the two kernel tiers for the ipukernel SRAM model.
const (
	NarrowScoreBytes = narrowScoreBytes
	WideScoreBytes   = scoreBytes
)

// satGuard16 is the saturation threshold: when an antidiagonal's best
// value exceeds it the narrow kernel bails out. The 512-point margin
// covers the largest per-antidiagonal growth (one per-symbol score,
// ≤ 127 for an int8 table), so every int16 operation up to and including
// the guarded antidiagonal is exact.
const satGuard16 = math.MaxInt16 - 512

const (
	// maxNarrowX bounds X so the prune limit T−X ≥ −4095 never reaches
	// either tier's pruneLimit clamp (see the bit-identity contract).
	maxNarrowX = 4095
	// maxNarrowGap bounds |Gap| and |GapOpen| so sentinel arithmetic
	// (negInf16 − |GapOpen| − |Gap|) stays far above MinInt16.
	maxNarrowGap = 1024
)

// narrowEligible reports whether the parameters satisfy the narrow
// tier's bit-identity preconditions. Ineligible extensions silently run
// wide regardless of the requested tier.
func narrowEligible(p Params) bool {
	return p.X <= maxNarrowX && -p.Gap <= maxNarrowGap && -p.GapOpen <= maxNarrowGap
}

// NarrowEligible exports narrowEligible: whether these parameters can run
// the int16 tier at all. The ipukernel SRAM model uses it to decide when
// a TierNarrow/TierAuto configuration must still provision wide buffers.
func (p Params) NarrowEligible() bool { return narrowEligible(p) }

// NarrowCapLen returns the largest min-side extension length for which
// NarrowHeadroom holds at the given maximum per-symbol score — the
// longest extension TierAuto will certifiably run narrow. A
// non-positive maxScore can never saturate, so the cap is unbounded.
func NarrowCapLen(maxScore int) int {
	if maxScore <= 0 {
		return math.MaxInt
	}
	return satGuard16 / maxScore
}

// NarrowHeadroom reports whether an extension of the given side lengths
// can be proven never to saturate int16: the best score is at most
// min(m,n) diagonal matches at maxScore each, so if that bound stays
// under satGuard16 the runtime guard cannot fire. TierAuto admits narrow
// runs only under this proof; the ipukernel SRAM model uses the same
// predicate to certify narrow-only tile buffers.
func NarrowHeadroom(m, n, maxScore int) bool {
	if maxScore <= 0 {
		return true
	}
	return int64(min(m, n))*int64(maxScore) <= satGuard16
}

// useNarrow resolves the tier choice for one extension.
func useNarrow(m, n int, p Params) bool {
	switch p.Tier {
	case TierNarrow:
		return narrowEligible(p)
	case TierAuto:
		return narrowEligible(p) && NarrowHeadroom(m, n, p.Scorer.MaxScore())
	default:
		return false
	}
}

// seedDiag16 initialises a narrow buffer to the one-cell window {0: v}
// with its guards.
func seedDiag16(b []int16, v int16) {
	b[0], b[1], b[2], b[3], b[4] = negInf16, negInf16, v, negInf16, negInf16
}

// setGuards16 writes the −∞ guard cells around a freshly computed window.
func setGuards16(buf []int16, width int) {
	buf[0], buf[1] = negInf16, negInf16
	buf[width+bufPad], buf[width+bufPad+1] = negInf16, negInf16
}

// growBuf16 returns a narrow buffer holding n window cells plus guards,
// reusing b's storage when it is large enough.
func growBuf16(b []int16, n int) []int16 {
	n += 2 * bufPad
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int16, n)
}

// pruneLimit16 returns the X-Drop cutoff T−X. Under narrowEligible the
// value is always in int16 range (T ≥ 0 and X ≤ maxNarrowX), matching
// the unclamped int32 limit exactly.
func pruneLimit16(t int16, x int) int16 {
	return int16(int(t) - x)
}
