package core

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/alignment"
	"github.com/sram-align/xdropipu/internal/scoring"
)

// tbVariants enumerates the kernel configurations the differential
// oracle covers: all three production variants (including a δb small
// enough to clamp) plus the full-matrix reference.
func tbVariants() map[string]Params {
	dna := scoring.DNADefault
	return map[string]Params{
		"restricted2":         {Scorer: dna, Gap: -1, X: 15, Algo: AlgoRestricted2},
		"restricted2-db256":   {Scorer: dna, Gap: -1, X: 15, DeltaB: 256, Algo: AlgoRestricted2},
		"restricted2-clamped": {Scorer: dna, Gap: -1, X: 25, DeltaB: 8, Algo: AlgoRestricted2},
		"standard3":           {Scorer: dna, Gap: -1, X: 15, Algo: AlgoStandard3},
		"reference":           {Scorer: dna, Gap: -1, X: 15, Algo: AlgoReference},
		"affine":              {Scorer: dna, Gap: -1, GapOpen: -2, X: 21, Algo: AlgoAffine},
		"affine-blosum":       {Scorer: scoring.Blosum62, Gap: -2, GapOpen: -3, X: 49, Algo: AlgoAffine},
	}
}

// checkSeedTraceback runs the full differential oracle for one workload
// and parameter set: the traceback replay must bit-match the score-only
// kernel (score and end points), the emitted CIGAR must validate and
// consume exactly the aligned spans, and re-scoring the CIGAR over the
// aligned fragments (alignment.ScoreOf — an independent recomputation)
// must reproduce the kernel score exactly. For unclamped linear variants
// the score is additionally pinned to the full-matrix reference oracle.
func checkSeedTraceback(t *testing.T, h, v []byte, s Seed, p Params, label string) {
	t.Helper()
	var ws Workspace
	want, err := ws.ExtendSeed(h, v, s, p)
	if err != nil {
		t.Fatalf("%s: ExtendSeed: %v", label, err)
	}
	got, aln, err := ws.TracebackSeed(h, v, s, p)
	if err != nil {
		t.Fatalf("%s: TracebackSeed: %v", label, err)
	}
	if got.Score != want.Score || got.LeftScore != want.LeftScore || got.RightScore != want.RightScore {
		t.Fatalf("%s: traceback scores (%d,%d,%d) != kernel (%d,%d,%d)", label,
			got.Score, got.LeftScore, got.RightScore, want.Score, want.LeftScore, want.RightScore)
	}
	if got.BegH != want.BegH || got.BegV != want.BegV || got.EndH != want.EndH || got.EndV != want.EndV {
		t.Fatalf("%s: traceback span [%d,%d)x[%d,%d) != kernel [%d,%d)x[%d,%d)", label,
			got.BegH, got.EndH, got.BegV, got.EndV, want.BegH, want.EndH, want.BegV, want.EndV)
	}
	if err := aln.Validate(); err != nil {
		t.Fatalf("%s: emitted alignment invalid: %v (cigar %q)", label, err, aln.Cigar)
	}
	recon, err := alignment.ScoreOf(h[aln.BegH:aln.EndH], v[aln.BegV:aln.EndV], aln.Cigar,
		p.Scorer, p.Gap, p.GapOpen)
	if err != nil {
		t.Fatalf("%s: score reconstruction: %v (cigar %q)", label, err, aln.Cigar)
	}
	if recon != want.Score {
		t.Fatalf("%s: reconstructed score %d != kernel score %d (cigar %q)", label, recon, want.Score, aln.Cigar)
	}
	// Unclamped linear variants must also agree with core/reference.go.
	if p.Algo != AlgoAffine && !got.Stats.Clamped {
		rp := p
		rp.Algo = AlgoReference
		rp.DeltaB = 0
		ref, err := ExtendSeed(h, v, s, rp)
		if err != nil {
			t.Fatalf("%s: reference oracle: %v", label, err)
		}
		if want.Score != ref.Score {
			t.Fatalf("%s: kernel score %d != reference oracle %d", label, want.Score, ref.Score)
		}
		if recon != ref.Score {
			t.Fatalf("%s: reconstructed score %d != reference oracle %d", label, recon, ref.Score)
		}
	}
}

// TestTracebackDifferentialOracle is the seeded table-driven half of the
// differential test layer: randomized seed-and-extend workloads across
// every variant, mutation rate and size class.
func TestTracebackDifferentialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for name, p := range tbVariants() {
		for _, size := range []int{40, 200, 700} {
			for _, rate := range []float64{0.02, 0.15, 0.35} {
				for it := 0; it < 4; it++ {
					h := randDNA(rng, size)
					v := mutate(rng, h, rate)
					k := 9
					if k > len(v) {
						k = len(v)
					}
					// Plant an exact seed so extension anchors are valid.
					sH := rng.Intn(len(h) - k + 1)
					sV := rng.Intn(len(v) - k + 1)
					copy(v[sV:sV+k], h[sH:sH+k])
					s := Seed{H: sH, V: sV, Len: k}
					checkSeedTraceback(t, h, v, s, p, name)
				}
			}
		}
	}
}

// TestTracebackExtensionMatchesAlign checks the single-extension entry
// point on forward views, including zero-length and empty-sequence edges.
func TestTracebackExtensionMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for name, p := range tbVariants() {
		for _, mn := range [][2]int{{0, 0}, {0, 17}, {17, 0}, {1, 1}, {33, 29}, {250, 260}} {
			h := randDNA(rng, mn[0])
			v := mutate(rng, h, 0.2)
			for len(v) < mn[1] {
				v = append(v, randDNA(rng, mn[1]-len(v))...)
			}
			v = v[:mn[1]]
			var ws Workspace
			want := Align(NewView(h), NewView(v), p)
			tr, err := ws.TracebackExtension(NewView(h), NewView(v), p)
			if err != nil {
				t.Fatalf("%s %v: %v", name, mn, err)
			}
			if tr.Score != want.Score || tr.EndH != want.EndH || tr.EndV != want.EndV {
				t.Fatalf("%s %v: traceback (%d,%d,%d) != kernel (%d,%d,%d)",
					name, mn, tr.Score, tr.EndH, tr.EndV, want.Score, want.EndH, want.EndV)
			}
			st, err := tr.Cigar.Stats()
			if err != nil {
				t.Fatalf("%s %v: cigar %q: %v", name, mn, tr.Cigar, err)
			}
			if st.SpanH != tr.EndH || st.SpanV != tr.EndV {
				t.Fatalf("%s %v: cigar %q spans %dx%d, extension consumed %dx%d",
					name, mn, tr.Cigar, st.SpanH, st.SpanV, tr.EndH, tr.EndV)
			}
			recon, err := alignment.ScoreOf(h[:tr.EndH], v[:tr.EndV], tr.Cigar, p.Scorer, p.Gap, p.GapOpen)
			if err != nil || recon != want.Score {
				t.Fatalf("%s %v: reconstructed %d (err %v), kernel %d (cigar %q)",
					name, mn, recon, err, want.Score, tr.Cigar)
			}
			if tr.Clamped != want.Stats.Clamped {
				t.Fatalf("%s %v: replay clamped=%v, kernel clamped=%v", name, mn, tr.Clamped, want.Stats.Clamped)
			}
		}
	}
}

// TestTracebackMemoryBoundedByBand pins the space story: the recorded
// trace footprint must stay bounded by antidiagonals × band, far below
// the O(m·n) score matrix, and a δb-clamped Restricted2 run must bound
// the per-antidiagonal storage by δb.
func TestTracebackMemoryBoundedByBand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randDNA(rng, 3000)
	v := mutate(rng, h, 0.15)
	const deltaB = 64
	p := Params{Scorer: scoring.DNADefault, Gap: -1, X: 20, DeltaB: deltaB, Algo: AlgoRestricted2}
	var ws Workspace
	res := ws.ExtendRight(h, v, 0, 0, p)
	tr, err := ws.TracebackRight(h, v, 0, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Score != res.Score {
		t.Fatalf("traceback score %d != kernel %d", tr.Score, res.Score)
	}
	// 2 bits per cell over ≤ δb-wide windows, plus 8 index bytes per
	// antidiagonal and the one-element offs slack.
	bound := res.Stats.Antidiagonals*(deltaB/4+8) + 16
	if tr.TraceBytes > bound {
		t.Fatalf("trace bytes %d exceed the band bound %d", tr.TraceBytes, bound)
	}
	full := (len(h) + 1) * (len(v) + 1) * 4
	if tr.TraceBytes*20 > full {
		t.Fatalf("trace bytes %d are not far below the %d-byte full matrix", tr.TraceBytes, full)
	}
}

// FuzzTracebackOracle is the fuzzing half of the differential layer:
// arbitrary bytes become a workload (sequences, seed geometry, variant,
// penalties) and every invariant of the table-driven oracle must hold.
func FuzzTracebackOracle(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGT"), []byte("ACGTACGTTCGTACGT"), uint8(0), uint8(4), uint8(15))
	f.Add([]byte("GATTACAGATTACA"), []byte("GATTACATTACAGA"), uint8(3), uint8(2), uint8(7))
	f.Add([]byte("AAAAAAAAAA"), []byte("TTTTTTTTTT"), uint8(1), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, hb, vb []byte, mode, geom, xb uint8) {
		if len(hb) == 0 || len(vb) == 0 || len(hb) > 300 || len(vb) > 300 {
			return
		}
		p := Params{Scorer: scoring.DNADefault, Gap: -1, X: int(xb)}
		switch mode % 4 {
		case 0:
			p.Algo = AlgoRestricted2
		case 1:
			p.Algo = AlgoRestricted2
			p.DeltaB = 4 + int(geom)%32
		case 2:
			p.Algo = AlgoStandard3
		case 3:
			p.Algo = AlgoAffine
			p.GapOpen = -1 - int(geom)%4
		}
		k := 1 + int(geom)%5
		if k > len(hb) || k > len(vb) {
			k = min(len(hb), len(vb))
		}
		sH := int(geom) * 7 % (len(hb) - k + 1)
		sV := int(xb) * 5 % (len(vb) - k + 1)
		s := Seed{H: sH, V: sV, Len: k}

		var ws Workspace
		want, err := ws.ExtendSeed(hb, vb, s, p)
		if err != nil {
			t.Fatal(err)
		}
		got, aln, err := ws.TracebackSeed(hb, vb, s, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score || got.BegH != want.BegH || got.BegV != want.BegV ||
			got.EndH != want.EndH || got.EndV != want.EndV {
			t.Fatalf("traceback %+v != kernel %+v", got, want)
		}
		if err := aln.Validate(); err != nil {
			t.Fatalf("invalid alignment: %v (cigar %q)", err, aln.Cigar)
		}
		recon, err := alignment.ScoreOf(hb[aln.BegH:aln.EndH], vb[aln.BegV:aln.EndV], aln.Cigar,
			p.Scorer, p.Gap, p.GapOpen)
		if err != nil {
			t.Fatalf("score reconstruction: %v (cigar %q)", err, aln.Cigar)
		}
		if recon != want.Score {
			t.Fatalf("reconstructed score %d != kernel %d (cigar %q)", recon, want.Score, aln.Cigar)
		}
		if p.Algo != AlgoAffine && !want.Stats.Clamped {
			rp := p
			rp.Algo = AlgoReference
			rp.DeltaB = 0
			ref, err := ExtendSeed(hb, vb, s, rp)
			if err != nil {
				t.Fatal(err)
			}
			if want.Score != ref.Score {
				t.Fatalf("kernel score %d != reference oracle %d", want.Score, ref.Score)
			}
		}
	})
}
