package core

import "fmt"

// Seed identifies a k-mer match between two sequences: the start offsets
// of the shared k-mer on each sequence and its length. It is the unit the
// overlap-detection stages of ELBA and PASTIS emit (§2.3, §2.4).
type Seed struct {
	// H and V are the seed start offsets on the two sequences.
	H, V int
	// Len is the seed (k-mer) length.
	Len int
}

// SeedResult is the outcome of a two-sided seed extension: the alignment
// is forced through the seed and extended left and right with X-Drop
// (semi-global: the seed-side extremity is anchored, the far side free).
type SeedResult struct {
	// Score is LeftScore + seed score + RightScore.
	Score int
	// LeftScore and RightScore are the two extension scores.
	LeftScore, RightScore int
	// BegH, BegV are the alignment start offsets (inclusive).
	BegH, BegV int
	// EndH, EndV are the alignment end offsets (exclusive).
	EndH, EndV int
	// Stats merges both extensions' traces.
	Stats Stats
}

// ExtendRight extends an alignment rightwards from (hOff, vOff): it aligns
// h[hOff:] against v[vOff:] with the selected X-Drop variant.
func ExtendRight(h, v []byte, hOff, vOff int, p Params) Result {
	var w Workspace
	return w.ExtendRight(h, v, hOff, vOff, p)
}

// ExtendRight is the workspace-reusing form of the package function.
func (w *Workspace) ExtendRight(h, v []byte, hOff, vOff int, p Params) Result {
	return w.align(NewView(h[hOff:]), NewView(v[vOff:]), p)
}

// ExtendLeft extends an alignment leftwards from (hOff, vOff): it aligns
// the reversed prefixes h[:hOff] and v[:vOff]. No copy is made — the
// op(·) index transformation of §4.1.1 reads the prefixes backwards in
// place.
func ExtendLeft(h, v []byte, hOff, vOff int, p Params) Result {
	var w Workspace
	return w.ExtendLeft(h, v, hOff, vOff, p)
}

// ExtendLeft is the workspace-reusing form of the package function.
func (w *Workspace) ExtendLeft(h, v []byte, hOff, vOff int, p Params) Result {
	return w.align(NewReversedView(h[:hOff]), NewReversedView(v[:vOff]), p)
}

func (w *Workspace) align(hv, vv View, p Params) Result {
	if p.Algo != AlgoReference && useNarrow(hv.Len(), vv.Len(), p) {
		if r, ok := w.alignNarrow(hv, vv, p); ok {
			return r
		}
		// The narrow attempt saturated int16: discard it wholesale and
		// transparently re-run on the wide tier (the promotion contract
		// of dp16.go). The result and stats are the wide run's.
		r := w.alignWide(hv, vv, p)
		r.Stats.Promoted = true
		return r
	}
	return w.alignWide(hv, vv, p)
}

func (w *Workspace) alignWide(hv, vv View, p Params) Result {
	switch p.Algo {
	case AlgoStandard3:
		return w.Standard3(hv, vv, p)
	case AlgoReference:
		return Reference(hv, vv, p)
	case AlgoAffine:
		return w.Affine(hv, vv, p)
	default:
		return w.Restricted2(hv, vv, p)
	}
}

// alignNarrow dispatches to the int16 kernels; ok is false when the
// saturation guard fired and the caller must promote to the wide tier.
func (w *Workspace) alignNarrow(hv, vv View, p Params) (Result, bool) {
	switch p.Algo {
	case AlgoStandard3:
		return w.standard3Narrow(hv, vv, p)
	case AlgoAffine:
		return w.affineNarrow(hv, vv, p)
	default:
		return w.restricted2Narrow(hv, vv, p)
	}
}

// SeedScore sums the similarity over the seed region. For an exact k-mer
// match under a simple scheme this is Len×match.
func SeedScore(h, v []byte, s Seed, p Params) int {
	tab := p.Scorer.Table()
	total := 0
	for k := 0; k < s.Len; k++ {
		total += int(tab[h[s.H+k]][v[s.V+k]])
	}
	return total
}

// ExtendSeed runs the full seed-and-extend alignment of §4.1.1: a left
// extension from the seed start, the seed itself, and a right extension
// from the seed end.
func ExtendSeed(h, v []byte, s Seed, p Params) (SeedResult, error) {
	var w Workspace
	return w.ExtendSeed(h, v, s, p)
}

// ExtendSeed is the workspace-reusing form of the package function.
func (w *Workspace) ExtendSeed(h, v []byte, s Seed, p Params) (SeedResult, error) {
	if s.Len <= 0 || s.H < 0 || s.V < 0 || s.H+s.Len > len(h) || s.V+s.Len > len(v) {
		return SeedResult{}, fmt.Errorf("core: seed %+v out of range for |h|=%d |v|=%d", s, len(h), len(v))
	}
	left := w.ExtendLeft(h, v, s.H, s.V, p)
	right := w.ExtendRight(h, v, s.H+s.Len, s.V+s.Len, p)
	out := SeedResult{
		Score:      left.Score + SeedScore(h, v, s, p) + right.Score,
		LeftScore:  left.Score,
		RightScore: right.Score,
		BegH:       s.H - left.EndH,
		BegV:       s.V - left.EndV,
		EndH:       s.H + s.Len + right.EndH,
		EndV:       s.V + s.Len + right.EndV,
	}
	out.Stats = left.Stats
	out.Stats.add(right.Stats)
	return out, nil
}
