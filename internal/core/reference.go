package core

import "github.com/sram-align/xdropipu/internal/scoring"

// Matrix is a fully materialised DP matrix produced by ReferenceMatrix.
// It exists for testing and for rendering the paper's search-space figures
// (Fig. 2); production code paths never allocate it.
type Matrix struct {
	M, N     int
	scores   []int  // (M+1)×(N+1), row-major over i
	computed []bool // cells visited by the antidiagonal sweep
}

// Score returns the DP score at (i, j), NegInf if pruned or not computed.
func (mx *Matrix) Score(i, j int) int { return mx.scores[i*(mx.N+1)+j] }

// Computed reports whether the sweep visited cell (i, j).
func (mx *Matrix) Computed(i, j int) bool { return mx.computed[i*(mx.N+1)+j] }

// ComputedCells counts visited cells (the gray area of Fig. 2).
func (mx *Matrix) ComputedCells() int {
	n := 0
	for _, c := range mx.computed {
		if c {
			n++
		}
	}
	return n
}

// Reference runs the full-matrix X-Drop oracle. Identical window semantics
// to Standard3, but with every antidiagonal retained. O(mn) memory — test
// and figure use only.
func Reference(h, v View, p Params) Result {
	_, res := ReferenceMatrix(h, v, p)
	return res
}

// ReferenceMatrix runs the oracle and returns the materialised matrix
// together with the result.
func ReferenceMatrix(h, v View, p Params) (*Matrix, Result) {
	m, n := h.Len(), v.Len()
	mx := &Matrix{
		M:        m,
		N:        n,
		scores:   make([]int, (m+1)*(n+1)),
		computed: make([]bool, (m+1)*(n+1)),
	}
	for i := range mx.scores {
		mx.scores[i] = NegInf
	}
	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        (m + 1) * (n + 1) * 4,
	}}

	tab := p.Scorer.Table()
	gap := p.Gap
	stride := n + 1
	set := func(i, j, s int) {
		mx.scores[i*stride+j] = s
		mx.computed[i*stride+j] = true
	}
	at := func(i, j int) int { return mx.scores[i*stride+j] }

	set(0, 0, 0)
	res.Stats.observe(1, 1)

	best, bestI, bestD := 0, 0, 0
	t := 0
	lo, hi := 0, 0 // live window of the previous antidiagonal

	for d := 1; d <= m+n; d++ {
		cl := max(lo, max(0, d-n))
		cu := min(hi+1, min(d, m))
		if cl > cu {
			break
		}
		rowBest, rowBestI := NegInf, -1
		lo, hi = -1, -1
		for i := cl; i <= cu; i++ {
			j := d - i
			s := NegInf
			if i > 0 && j > 0 {
				s = at(i-1, j-1) + int(tab[h.At(i-1)][v.At(j-1)])
			}
			if i > 0 {
				if g := at(i-1, j) + gap; g > s {
					s = g
				}
			}
			if j > 0 {
				if g := at(i, j-1) + gap; g > s {
					s = g
				}
			}
			if s < t-p.X {
				s = NegInf
			} else {
				if lo < 0 {
					lo = i
				}
				hi = i
				if s > rowBest {
					rowBest, rowBestI = s, i
				}
			}
			set(i, j, s)
		}
		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		res.Stats.observe(cu-cl+1, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
	}

	res.Score = best
	res.EndH = bestI
	res.EndV = bestD - bestI
	return mx, res
}

// SemiGlobalFull computes the plain semi-global DP (no X-Drop pruning,
// no windowing) row-major in O(n) memory and returns the best cell score.
// It is the absolute ground truth: Reference with X→∞ must match it.
func SemiGlobalFull(h, v View, sc scoring.Scorer, gap int) Result {
	m, n := h.Len(), v.Len()
	tab := sc.Table()
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	best, bestI, bestJ := 0, 0, 0
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + gap
		if prev[j] > best {
			best, bestI, bestJ = prev[j], 0, j
		}
	}
	for i := 1; i <= m; i++ {
		cur[0] = prev[0] + gap
		if cur[0] > best {
			best, bestI, bestJ = cur[0], i, 0
		}
		for j := 1; j <= n; j++ {
			s := prev[j-1] + int(tab[h.At(i-1)][v.At(j-1)])
			if g := prev[j] + gap; g > s {
				s = g
			}
			if g := cur[j-1] + gap; g > s {
				s = g
			}
			cur[j] = s
			if s > best {
				best, bestI, bestJ = s, i, j
			}
		}
		prev, cur = cur, prev
	}
	return Result{
		Score: best,
		EndH:  bestI,
		EndV:  bestJ,
		Stats: Stats{
			Antidiagonals:    m + n + 1,
			Cells:            int64(m+1)*int64(n+1) - 1,
			TheoreticalCells: int64(m) * int64(n),
		},
	}
}

// Banded computes a classic static-band semi-global alignment (Fig. 1,
// left): only cells with |i−j| ≤ halfWidth are filled. It exists to
// demonstrate why the X-Drop dynamic band is preferable for long-read
// data (experiment E12).
func Banded(h, v View, halfWidth int, sc scoring.Scorer, gap int) Result {
	m, n := h.Len(), v.Len()
	tab := sc.Table()
	width := 2*halfWidth + 1
	// Row-major with a band offset: row i holds columns
	// [i−halfWidth, i+halfWidth] at positions j−(i−halfWidth).
	prev := make([]int, width)
	cur := make([]int, width)
	for k := range prev {
		prev[k] = NegInf
	}
	var cells int64
	best, bestI, bestJ := 0, 0, 0
	// Row 0.
	for j := 0; j <= min(n, halfWidth); j++ {
		prev[j+halfWidth] = j * gap
		cells++
	}
	for i := 1; i <= m; i++ {
		for k := range cur {
			cur[k] = NegInf
		}
		jloA := max(0, i-halfWidth)
		jhiA := min(n, i+halfWidth)
		for j := jloA; j <= jhiA; j++ {
			k := j - (i - halfWidth)
			s := NegInf
			if j == 0 {
				if i <= halfWidth {
					s = i * gap
				}
			}
			// prev row i−1 has offset i−1−halfWidth: column j is at
			// index j−(i−1−halfWidth) = k+1; column j−1 at k.
			if j > 0 {
				if dpd := prev[k]; dpd > NegInf/2 {
					if x := dpd + int(tab[h.At(i-1)][v.At(j-1)]); x > s {
						s = x
					}
				}
				if k-1 >= 0 {
					if g := cur[k-1]; g > NegInf/2 && g+gap > s {
						s = g + gap
					}
				}
			}
			if k+1 < width {
				if g := prev[k+1]; g > NegInf/2 && g+gap > s {
					s = g + gap
				}
			}
			cur[k] = s
			cells++
			if s > best {
				best, bestI, bestJ = s, i, j
			}
		}
		prev, cur = cur, prev
	}
	return Result{
		Score: best,
		EndH:  bestI,
		EndV:  bestJ,
		Stats: Stats{
			Antidiagonals:    m + 1,
			Cells:            cells,
			MaxLiveBand:      width,
			TheoreticalCells: int64(m) * int64(n),
			WorkBytes:        2 * width * 4,
		},
	}
}
