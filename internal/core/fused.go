package core

// Fused single-pass traceback: the scoring sweep records 2/4-bit
// direction codes as it goes, so eligible extensions skip the replay of
// the two-pass scheme entirely. The loops are structured like the score
// kernels (NegInf-padded rotating buffers, resolved byte-row slices,
// peeled boundaries, fringe-scan liveness recovery, statAcc counters) so
// the recording costs roughly one sweep instead of two — and the
// returned Result is bit-identical to the score kernels' in every field,
// including the trace counters, while the recorded directions (and
// therefore the CIGAR) are bit-identical to the replay tracer's.
//
// Eligibility (FusedEligible): the int32 wide kernels only. Narrow
// (int16) extensions keep the two-pass scheme — fusing them would change
// the batch tier counters — and AlgoReference keeps its full-matrix
// oracle. The memory trade is explicit: a fused recording lives on its
// thread for the whole scoring pass, so the SRAM model charges one
// direction arena per thread (ipukernel.TileMemoryBytes) instead of the
// single serialized replay arena.

// TraceMode selects how traceback direction data is recorded.
type TraceMode int

const (
	// TraceModeAuto fuses recording into the scoring pass for eligible
	// extensions whose direction-arena bound fits the per-thread fused
	// budget, and replays the rest. The default.
	TraceModeAuto TraceMode = iota
	// TraceModeReplay always uses the two-pass replay scheme (PR 5
	// behaviour).
	TraceModeReplay
	// TraceModeFused fuses every eligible extension regardless of the
	// budget heuristic; SRAM admission still certifies the tile.
	TraceModeFused
)

// String names the mode for flags, config echoes and fingerprint dumps.
func (m TraceMode) String() string {
	switch m {
	case TraceModeReplay:
		return "replay"
	case TraceModeFused:
		return "fused"
	default:
		return "auto"
	}
}

// FusedEligible reports whether an m×n extension under p can use the
// fused single-pass recording: the wide (int32) linear and affine
// kernels only. Narrow-tier extensions and the Reference oracle keep
// the two-pass replay.
func FusedEligible(m, n int, p Params) bool {
	if p.Algo == AlgoReference {
		return false
	}
	return !useNarrow(m, n, p)
}

// fusedExtend dispatches the fused kernels, leaving the walk-order ops
// in w.tb.ops like the replay tracer does.
func (w *Workspace) fusedExtend(h, v View, p Params) (Result, Trace, error) {
	if err := p.Validate(); err != nil {
		return Result{}, Trace{}, err
	}
	if p.Algo == AlgoAffine {
		return w.fusedAffine(h, v, p)
	}
	return w.fusedLinear(h, v, p)
}

// FusedExtendRight runs the right seed extension (ExtendRight geometry)
// with fused direction recording: the Result bit-matches ExtendRight and
// the Trace bit-matches TracebackRight (Cigar in sequence-forward
// order).
func (w *Workspace) FusedExtendRight(h, v []byte, hOff, vOff int, p Params) (Result, Trace, error) {
	r, tr, err := w.fusedExtend(NewView(h[hOff:]), NewView(v[vOff:]), p)
	if err != nil {
		w.tb.trim()
		return Result{}, Trace{}, err
	}
	tr.Cigar = encodeOps(w.tb.ops, true)
	w.tb.trim()
	return r, tr, nil
}

// FusedExtendLeft is FusedExtendRight for the left seed extension
// (ExtendLeft geometry, reversed views; Cigar in sequence-forward
// order, matching TracebackLeft).
func (w *Workspace) FusedExtendLeft(h, v []byte, hOff, vOff int, p Params) (Result, Trace, error) {
	r, tr, err := w.fusedExtend(NewReversedView(h[:hOff]), NewReversedView(v[:vOff]), p)
	if err != nil {
		w.tb.trim()
		return Result{}, Trace{}, err
	}
	tr.Cigar = encodeOps(w.tb.ops, false)
	w.tb.trim()
	return r, tr, nil
}

// fusedLinear is the fused linear-gap kernel (Restricted2 / Standard3
// semantics, selected by p.Algo exactly like linearCapacity). The loop
// body mirrors Restricted2's padded-window sweep with the replay
// tracer's per-cell code assignment folded in; the rotation uses three
// distinct buffers (like Standard3) so the recording loop needs no
// in-place aliasing carry.
func (w *Workspace) fusedLinear(h, v View, p Params) (Result, Trace, error) {
	m, n := h.Len(), v.Len()
	delta := min(m, n) + 1
	capacity := linearCapacity(m, n, p)
	w.b0 = growBuf32(w.b0, capacity)
	w.b1 = growBuf32(w.b1, capacity)
	w.b2 = growBuf32(w.b2, capacity)
	tb := &w.tb
	tb.reset(2)

	res := Result{Stats: Stats{TheoreticalCells: int64(m) * int64(n)}}
	if p.Algo == AlgoStandard3 {
		res.Stats.WorkBytes = 3 * delta * scoreBytes
	} else {
		res.Stats.WorkBytes = 2 * capacity * scoreBytes
	}

	tab := p.Scorer.Table()
	gap := int32(p.Gap)
	hb, vb := h.data, v.data
	hStep, hOrg := h.dir()
	vStep, vD, vOrg := v.vdir()

	out, d1b, d2b := w.b0, w.b1, w.b2
	seedDiag(d1b, 0)
	seedDiag(d2b, negInf32)
	d1cl, d1lo, d1hi := 0, 0, 0
	d2cl := 0

	var acc statAcc
	acc.observe(1, 1)

	var trc Trace
	base := tb.beginDiag(0, 1)
	tb.setCode(base, 0, codeNone)

	best, t := int32(0), int32(0)
	bestI, bestD := 0, 0
	rowBestI := 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		if cu-cl+1 > capacity {
			// The δb clamp, re-centred on the previous antidiagonal's
			// best cell — identical to Restricted2's realignment rule.
			res.Stats.Clamped = true
			ncl := rowBestI - capacity/2
			if ncl < cl {
				ncl = cl
			}
			if ncl > cu-capacity+1 {
				ncl = cu - capacity + 1
			}
			cl = ncl
			cu = cl + capacity - 1
		}

		limit := pruneLimit(t, p.X)
		width := cu - cl + 1
		dbase := tb.beginDiag(cl, width)
		if dbase < 0 {
			return Result{}, Trace{}, ErrTraceTooLarge
		}
		codes := tb.growCodes(width)
		rowBest := negInf32
		o1 := bufPad - d1cl
		o2 := bufPad - d2cl
		oo := bufPad - cl

		i := cl
		if i == 0 {
			// Top boundary (j = d): only the left (gap-in-H) move.
			s := d1b[o1] + gap
			c := codeLeft
			if s < limit {
				s, c = negInf32, codeNone
			}
			if s > rowBest {
				rowBest = s
			}
			out[oo] = s
			codes[0] = c
			i = 1
		}
		iB := cu
		peelDiag := cu == d // bottom boundary cell (j = 0) exists
		if peelDiag {
			iB = cu - 1
		}
		if cnt := iB - i + 1; cnt > 0 {
			kbase := i
			outRow := out[kbase+oo:][:cnt]
			codeRow := codes[kbase-cl:][:cnt]
			d2v := d2b[kbase-1+o2:][:cnt]
			d1r := d1b[kbase+o1:][:cnt]
			dlv := d1b[kbase-1+o1]
			switch {
			case !h.rev && !v.rev:
				hRow := hb[kbase-1:][:cnt]
				vRow := vb[d-kbase-cnt:][:cnt]
				for k := range outRow {
					s := d2v[k] + int32(tab[hRow[k]][vRow[cnt-1-k]])
					c := codeDiag
					drv := d1r[k]
					// The kernels take the gap branch only when it
					// strictly beats the diagonal; between the two gap
					// sources up wins ties (the replay tracer's rule).
					if g := max(dlv, drv) + gap; g > s {
						s = g
						if dlv >= drv {
							c = codeUp
						} else {
							c = codeLeft
						}
					}
					dlv = drv
					if s < limit {
						s, c = negInf32, codeNone
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
					codeRow[k] = c
				}
			case h.rev && v.rev:
				hRow := hb[m-kbase-cnt+1:][:cnt]
				vRow := vb[n-d+kbase:][:cnt]
				for k := range outRow {
					s := d2v[k] + int32(tab[hRow[cnt-1-k]][vRow[k]])
					c := codeDiag
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
						if dlv >= drv {
							c = codeUp
						} else {
							c = codeLeft
						}
					}
					dlv = drv
					if s < limit {
						s, c = negInf32, codeNone
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
					codeRow[k] = c
				}
			default:
				// Mixed-direction views (never produced by the seed
				// extension paths): generic index cursors.
				hIdx := hOrg + hStep*kbase
				vIdx := vOrg + vD*d + vStep*kbase
				for k := range outRow {
					s := d2v[k] + int32(tab[hb[hIdx]][vb[vIdx]])
					hIdx += hStep
					vIdx += vStep
					c := codeDiag
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
						if dlv >= drv {
							c = codeUp
						} else {
							c = codeLeft
						}
					}
					dlv = drv
					if s < limit {
						s, c = negInf32, codeNone
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
					codeRow[k] = c
				}
			}
			i = iB + 1
		}
		if peelDiag {
			// Bottom boundary (j = 0): only the up (gap-in-V) move.
			s := d1b[i-1+o1] + gap
			c := codeUp
			if s < limit {
				s, c = negInf32, codeNone
			}
			if s > rowBest {
				rowBest = s
			}
			out[i+oo] = s
			codes[i-cl] = c
		}
		setGuards(out, width)
		tb.packRow(dbase, codes)

		// Recover the live sub-window and the row argmax from the
		// stored row, exactly like the score kernels (the equality scan
		// stops at the first argmax — first-wins tie-breaking).
		row := out[bufPad:][:width]
		lo, hi := -1, -1
		for k := 0; k < width; k++ {
			if row[k] != negInf32 {
				lo = cl + k
				break
			}
		}
		rowBestI = -1
		if lo >= 0 {
			for k := width - 1; ; k-- {
				if row[k] != negInf32 {
					hi = cl + k
					break
				}
			}
			for k := lo - cl; ; k++ {
				if row[k] == rowBest {
					rowBestI = cl + k
					break
				}
			}
		}

		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		acc.observe(width, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		out, d1b, d2b = d2b, out, d1b
		d2cl = d1cl
		d1cl, d1lo, d1hi = cl, lo, hi
	}
	w.b0, w.b1, w.b2 = out, d1b, d2b

	acc.flush(&res.Stats)
	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	trc.Score, trc.EndH, trc.EndV = res.Score, res.EndH, res.EndV
	trc.Clamped = res.Stats.Clamped
	trc.TraceBytes = tb.traceBytes()
	if err := tb.walkLinear(h, v, bestI, bestD); err != nil {
		return Result{}, Trace{}, err
	}
	return res, trc, nil
}

// fusedAffine is the fused Gotoh affine-gap kernel: Affine's padded
// three-channel sweep with the replay tracer's 4-bit nibble assignment
// (H source in the low 2 bits, E/F gap-extension flags above) folded
// into the scoring loop.
func (w *Workspace) fusedAffine(h, v View, p Params) (Result, Trace, error) {
	m, n := h.Len(), v.Len()
	delta := min(m, n) + 1
	w.b0 = growBuf32(w.b0, delta)
	w.b1 = growBuf32(w.b1, delta)
	w.b2 = growBuf32(w.b2, delta)
	w.e0 = growBuf32(w.e0, delta)
	w.e1 = growBuf32(w.e1, delta)
	w.f0 = growBuf32(w.f0, delta)
	w.f1 = growBuf32(w.f1, delta)
	tb := &w.tb
	tb.reset(4)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        7 * delta * scoreBytes,
	}}

	tab := p.Scorer.Table()
	gape := int32(p.Gap)
	gapo := int32(p.GapOpen)
	goe := gapo + gape
	hb, vb := h.data, v.data
	hStep, hOrg := h.dir()
	vStep, vD, vOrg := v.vdir()

	d1h, d1e, d1f := w.b1, w.e1, w.f1
	d2h := w.b2
	outH, outE, outF := w.b0, w.e0, w.f0
	seedDiag(d1h, 0)
	seedDiag(d1e, negInf32)
	seedDiag(d1f, negInf32)
	seedDiag(d2h, negInf32)
	d1cl, d1lo, d1hi := 0, 0, 0
	d2cl := 0

	var acc statAcc
	acc.observe(1, 1)

	var trc Trace
	base := tb.beginDiag(0, 1)
	tb.setCode(base, 0, codeNone)

	best, t := int32(0), int32(0)
	bestI, bestD := 0, 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		limit := pruneLimit(t, p.X)
		width := cu - cl + 1
		dbase := tb.beginDiag(cl, width)
		if dbase < 0 {
			return Result{}, Trace{}, ErrTraceTooLarge
		}
		codes := tb.growCodes(width)
		o1 := bufPad - d1cl
		o2 := bufPad - d2cl
		oo := bufPad - cl

		i := cl
		if i == 0 {
			// Top boundary (j = d): only the E channel exists, and it
			// is also the cell's H value.
			pe := d1e[o1]
			ph := d1h[o1]
			e := max(pe+gape, ph+goe)
			var c byte
			if pe+gape >= ph+goe {
				c |= afEExt
			}
			if e < limit {
				e = negInf32
			} else {
				c |= afSrcE
			}
			outH[oo], outE[oo], outF[oo] = e, e, negInf32
			codes[0] = c
			i = 1
		}
		iB := cu
		peelDiag := cu == d // bottom boundary cell (j = 0) exists
		if peelDiag {
			iB = cu - 1
		}
		if cnt := iB - i + 1; cnt > 0 {
			kbase := i
			ohRow := outH[kbase+oo:][:cnt]
			oeRow := outE[kbase+oo:][:cnt]
			ofRow := outF[kbase+oo:][:cnt]
			codeRow := codes[kbase-cl:][:cnt]
			d2v := d2h[kbase-1+o2:][:cnt]
			d1hr := d1h[kbase+o1:][:cnt]
			d1er := d1e[kbase+o1:][:cnt]
			d1fr := d1f[kbase+o1:][:cnt]
			hlv := d1h[kbase-1+o1]
			flv := d1f[kbase-1+o1]
			switch {
			case !h.rev && !v.rev:
				hRow := hb[kbase-1:][:cnt]
				vRow := vb[d-kbase-cnt:][:cnt]
				for k := range ohRow {
					hrv := d1hr[k]
					erv := d1er[k]
					e := max(erv+gape, hrv+goe)
					var c byte
					if erv+gape >= hrv+goe {
						c = afEExt
					}
					f := max(flv+gape, hlv+goe)
					if flv+gape >= hlv+goe {
						c |= afFExt
					}
					flv = d1fr[k]
					s := d2v[k] + int32(tab[hRow[k]][vRow[cnt-1-k]])
					hlv = hrv
					src := afSrcDiag
					if e > s {
						s = e
						src = afSrcE
					}
					if f > s {
						s = f
						src = afSrcF
					}
					if s < limit {
						s = negInf32
						src = 0
					}
					if e < limit {
						e = negInf32
					}
					if f < limit {
						f = negInf32
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
					codeRow[k] = c | src
				}
			case h.rev && v.rev:
				hRow := hb[m-kbase-cnt+1:][:cnt]
				vRow := vb[n-d+kbase:][:cnt]
				for k := range ohRow {
					hrv := d1hr[k]
					erv := d1er[k]
					e := max(erv+gape, hrv+goe)
					var c byte
					if erv+gape >= hrv+goe {
						c = afEExt
					}
					f := max(flv+gape, hlv+goe)
					if flv+gape >= hlv+goe {
						c |= afFExt
					}
					flv = d1fr[k]
					s := d2v[k] + int32(tab[hRow[cnt-1-k]][vRow[k]])
					hlv = hrv
					src := afSrcDiag
					if e > s {
						s = e
						src = afSrcE
					}
					if f > s {
						s = f
						src = afSrcF
					}
					if s < limit {
						s = negInf32
						src = 0
					}
					if e < limit {
						e = negInf32
					}
					if f < limit {
						f = negInf32
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
					codeRow[k] = c | src
				}
			default:
				hIdx := hOrg + hStep*kbase
				vIdx := vOrg + vD*d + vStep*kbase
				for k := range ohRow {
					hrv := d1hr[k]
					erv := d1er[k]
					e := max(erv+gape, hrv+goe)
					var c byte
					if erv+gape >= hrv+goe {
						c = afEExt
					}
					f := max(flv+gape, hlv+goe)
					if flv+gape >= hlv+goe {
						c |= afFExt
					}
					flv = d1fr[k]
					s := d2v[k] + int32(tab[hb[hIdx]][vb[vIdx]])
					hIdx += hStep
					vIdx += vStep
					hlv = hrv
					src := afSrcDiag
					if e > s {
						s = e
						src = afSrcE
					}
					if f > s {
						s = f
						src = afSrcF
					}
					if s < limit {
						s = negInf32
						src = 0
					}
					if e < limit {
						e = negInf32
					}
					if f < limit {
						f = negInf32
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
					codeRow[k] = c | src
				}
			}
			i = iB + 1
		}
		if peelDiag {
			// Bottom boundary (j = 0): only the F channel exists, and
			// it is also the cell's H value.
			pf := d1f[i-1+o1]
			ph := d1h[i-1+o1]
			f := max(pf+gape, ph+goe)
			var c byte
			if pf+gape >= ph+goe {
				c |= afFExt
			}
			if f < limit {
				f = negInf32
			} else {
				c |= afSrcF
			}
			k := i + oo
			outH[k], outE[k], outF[k] = f, negInf32, f
			codes[i-cl] = c
		}
		setGuards(outH, width)
		setGuards(outE, width)
		setGuards(outF, width)
		tb.packRow(dbase, codes)

		rowH := outH[bufPad:][:width]
		rowE := outE[bufPad:][:width]
		rowF := outF[bufPad:][:width]
		lo, hi := -1, -1
		for k := 0; k < width; k++ {
			if rowH[k] != negInf32 || rowE[k] != negInf32 || rowF[k] != negInf32 {
				lo = cl + k
				break
			}
		}
		rowBest, rowBestI := negInf32, -1
		if lo >= 0 {
			for k := width - 1; ; k-- {
				if rowH[k] != negInf32 || rowE[k] != negInf32 || rowF[k] != negInf32 {
					hi = cl + k
					break
				}
			}
			for k := lo - cl; k <= hi-cl; k++ {
				if s := rowH[k]; s > rowBest {
					rowBest, rowBestI = s, cl+k
				}
			}
		}

		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		acc.observe(width, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		d2h, d1h, outH = d1h, outH, d2h
		d1e, outE = outE, d1e
		d1f, outF = outF, d1f
		d2cl = d1cl
		d1cl, d1lo, d1hi = cl, lo, hi
	}
	w.b0, w.b1, w.b2 = outH, d1h, d2h
	w.e0, w.e1, w.f0, w.f1 = outE, d1e, outF, d1f

	acc.flush(&res.Stats)
	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	trc.Score, trc.EndH, trc.EndV = res.Score, res.EndH, res.EndV
	trc.Clamped = res.Stats.Clamped
	trc.TraceBytes = tb.traceBytes()
	if err := tb.walkAffine(h, v, bestI, bestD); err != nil {
		return Result{}, Trace{}, err
	}
	return res, trc, nil
}
