package core

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/scoring"
)

// stripTierTrace zeroes the fields that legitimately differ between
// tiers: the modeled buffer footprint (the narrow tier's point) and the
// tier markers themselves. Everything else must be bit-identical.
func stripTierTrace(r Result) Result {
	r.Stats.WorkBytes = 0
	r.Stats.Narrow = false
	r.Stats.Promoted = false
	return r
}

// TestNarrowMatchesWide is the tier-equivalence property: on random DNA
// and protein pairs, under every view-direction combination and every
// variant, a TierNarrow run must reproduce the TierWide Result exactly —
// Score, EndH/EndV and the full Stats trace (modulo WorkBytes and the
// tier markers).
func TestNarrowMatchesWide(t *testing.T) {
	rng := rand.New(rand.NewSource(1601))
	var ww, nw Workspace
	for trial := 0; trial < 500; trial++ {
		protein := trial%3 == 2
		var hs, vs []byte
		var p Params
		if protein {
			hs = randProtein(rng, 1+rng.Intn(200))
			vs = mutateProtein(rng, hs, []float64{0, 0.1, 0.3, 0.8}[trial%4])
			p = Params{Scorer: scoring.Blosum62, Gap: -2, GapOpen: -4, X: []int{0, 2, 7, 20, 60, 4000}[trial%6]}
		} else {
			hs = randDNA(rng, 1+rng.Intn(200))
			vs = mutate(rng, hs, []float64{0, 0.05, 0.15, 0.45, 0.9}[trial%5])
			p = Params{Scorer: scoring.DNADefault, Gap: -1, GapOpen: -3, X: []int{0, 1, 5, 12, 30, 4095}[trial%6]}
		}
		if trial%11 == 0 {
			vs = randDNA(rng, 1+rng.Intn(200)) // unrelated pair
		}
		p.DeltaB = []int{0, 0, 8, 32}[trial%4]
		var hv, vv View
		switch trial % 4 {
		case 0:
			hv, vv = NewView(hs), NewView(vs)
		case 1:
			hv, vv = NewReversedView(hs), NewReversedView(vs)
		case 2: // mixed directions: the generic cursor fallback loops
			hv, vv = NewView(hs), NewReversedView(vs)
		default:
			hv, vv = NewReversedView(hs), NewView(vs)
		}

		for _, algo := range []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine} {
			pw, pn := p, p
			pw.Algo, pn.Algo = algo, algo
			pw.Tier, pn.Tier = TierWide, TierNarrow
			wide := ww.align(hv, vv, pw)
			narrow := nw.align(hv, vv, pn)
			if !narrow.Stats.Narrow || narrow.Stats.Promoted {
				t.Fatalf("trial %d %v: expected a clean narrow run, got narrow=%v promoted=%v",
					trial, algo, narrow.Stats.Narrow, narrow.Stats.Promoted)
			}
			if stripTierTrace(narrow) != stripTierTrace(wide) {
				t.Fatalf("trial %d %v: narrow %+v != wide %+v (h=%q v=%q p=%+v)",
					trial, algo, narrow, wide, hs, vs, p)
			}
		}
	}
}

// TestNarrowWorkBytesHalved pins the tier's accounting: the narrow trace
// must model exactly half the wide tier's working-buffer bytes.
func TestNarrowWorkBytesHalved(t *testing.T) {
	rng := rand.New(rand.NewSource(1602))
	h := randDNA(rng, 300)
	v := mutate(rng, h, 0.1)
	for _, algo := range []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine} {
		p := Params{Scorer: scoring.DNADefault, Gap: -1, GapOpen: -2, X: 20, DeltaB: 64, Algo: algo}
		wide := Align(NewView(h), NewView(v), p)
		p.Tier = TierNarrow
		narrow := Align(NewView(h), NewView(v), p)
		if narrow.Stats.WorkBytes*2 != wide.Stats.WorkBytes {
			t.Errorf("%v: narrow WorkBytes %d, wide %d (want exactly half)",
				algo, narrow.Stats.WorkBytes, wide.Stats.WorkBytes)
		}
	}
}

// TestNarrowIneligibleFallsBackWide: parameters outside the narrow
// eligibility envelope must run wide even under TierNarrow, silently.
func TestNarrowIneligibleFallsBackWide(t *testing.T) {
	rng := rand.New(rand.NewSource(1603))
	h := randDNA(rng, 100)
	v := mutate(rng, h, 0.2)
	for _, p := range []Params{
		{Scorer: scoring.DNADefault, Gap: -1, X: maxNarrowX + 1, Tier: TierNarrow},
		{Scorer: scoring.DNADefault, Gap: -(maxNarrowGap + 1), X: 10, Tier: TierNarrow},
		{Scorer: scoring.DNADefault, Gap: -1, GapOpen: -(maxNarrowGap + 1), X: 10, Algo: AlgoAffine, Tier: TierNarrow},
	} {
		res := Align(NewView(h), NewView(v), p)
		if res.Stats.Narrow || res.Stats.Promoted {
			t.Errorf("params %+v: ineligible extension ran narrow (narrow=%v promoted=%v)",
				p, res.Stats.Narrow, res.Stats.Promoted)
		}
		pw := p
		pw.Tier = TierWide
		if res != Align(NewView(h), NewView(v), pw) {
			t.Errorf("params %+v: ineligible fallback differs from explicit wide", p)
		}
	}
}

// TestNarrowSaturationPromotes forces int16 saturation mid-extension: a
// long identical pair under a +9 match accumulates past satGuard16, the
// runtime guard fires, and the extension must transparently re-run wide
// with a bit-identical Result and the Promoted marker set.
func TestNarrowSaturationPromotes(t *testing.T) {
	rng := rand.New(rand.NewSource(1604))
	scorer := scoring.NewSimple(9, -9)
	h := randDNA(rng, 4200) // 4200·9 = 37800 > satGuard16: saturates ~nine tenths in
	for _, algo := range []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine} {
		p := Params{Scorer: scorer, Gap: -3, GapOpen: -5, X: 50, Algo: algo}
		wide := Align(NewView(h), NewView(h), p)
		p.Tier = TierNarrow
		prom := Align(NewView(h), NewView(h), p)
		if !prom.Stats.Promoted || prom.Stats.Narrow {
			t.Fatalf("%v: expected promotion, got narrow=%v promoted=%v",
				algo, prom.Stats.Narrow, prom.Stats.Promoted)
		}
		if stripTierTrace(prom) != stripTierTrace(wide) {
			t.Fatalf("%v: promoted %+v != wide %+v", algo, prom, wide)
		}
		// A promoted run's stats are the wide re-run's, so even
		// WorkBytes must match the wide trace.
		if prom.Stats.WorkBytes != wide.Stats.WorkBytes {
			t.Fatalf("%v: promoted WorkBytes %d != wide %d", algo, prom.Stats.WorkBytes, wide.Stats.WorkBytes)
		}
	}
}

// TestNarrowSaturationBoundary walks lengths across the exact saturation
// threshold: below it narrow completes, above it the guard fires — and in
// every case the Result equals the wide tier's.
func TestNarrowSaturationBoundary(t *testing.T) {
	scorer := scoring.NewSimple(127, -127) // steepest int8 slope
	// satGuard16/127 ≈ 253.97: lengths straddle the guard.
	for _, n := range []int{250, 253, 254, 255, 258, 400} {
		h := make([]byte, n)
		for i := range h {
			h[i] = "ACGT"[i%4]
		}
		for _, algo := range []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine} {
			p := Params{Scorer: scorer, Gap: -1, GapOpen: -1, X: 100, Algo: algo}
			wide := Align(NewView(h), NewView(h), p)
			p.Tier = TierNarrow
			got := Align(NewView(h), NewView(h), p)
			if stripTierTrace(got) != stripTierTrace(wide) {
				t.Fatalf("n=%d %v: narrow-tier %+v != wide %+v", n, algo, got, wide)
			}
			wantPromoted := n*127 > satGuard16
			if got.Stats.Promoted != wantPromoted {
				t.Errorf("n=%d %v: promoted=%v, want %v", n, algo, got.Stats.Promoted, wantPromoted)
			}
		}
	}
}

// TestAutoTierNeverPromotes: TierAuto only admits narrow runs under the
// headroom proof, so promotion must be impossible — long saturating pairs
// run wide outright, short ones run narrow.
func TestAutoTierNeverPromotes(t *testing.T) {
	rng := rand.New(rand.NewSource(1605))
	scorer := scoring.NewSimple(9, -9)
	for _, n := range []int{100, 1000, 3583, 3584, 8000} {
		h := randDNA(rng, n)
		for _, algo := range []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine} {
			p := Params{Scorer: scorer, Gap: -3, GapOpen: -5, X: 50, Algo: algo, Tier: TierAuto}
			res := Align(NewView(h), NewView(h), p)
			if res.Stats.Promoted {
				t.Fatalf("n=%d %v: TierAuto promoted", n, algo)
			}
			wantNarrow := NarrowHeadroom(n, n, scorer.MaxScore())
			if res.Stats.Narrow != wantNarrow {
				t.Errorf("n=%d %v: narrow=%v, want %v", n, algo, res.Stats.Narrow, wantNarrow)
			}
			pw := p
			pw.Tier = TierWide
			if stripTierTrace(res) != stripTierTrace(Align(NewView(h), NewView(h), pw)) {
				t.Fatalf("n=%d %v: TierAuto result differs from wide", n, algo)
			}
		}
	}
}

// TestExtendSeedNarrowFlags: the merged seed-extension trace is narrow
// only when both sides ran narrow, and promoted when either side did.
func TestExtendSeedNarrowFlags(t *testing.T) {
	rng := rand.New(rand.NewSource(1606))
	h := randDNA(rng, 400)
	v := append(append([]byte{}, h[:200]...), mutate(rng, h[200:], 0.1)...)
	p := Params{Scorer: scoring.DNADefault, Gap: -1, X: 20, Tier: TierNarrow}
	res, err := ExtendSeed(h, v, Seed{H: 200, V: 200, Len: 12}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Narrow || res.Stats.Promoted {
		t.Errorf("both-sides-narrow seed: narrow=%v promoted=%v", res.Stats.Narrow, res.Stats.Promoted)
	}
	pw := p
	pw.Tier = TierWide
	want, err := ExtendSeed(h, v, Seed{H: 200, V: 200, Len: 12}, pw)
	if err != nil {
		t.Fatal(err)
	}
	res.Stats = Stats{}
	want.Stats = Stats{}
	if res != want {
		t.Errorf("narrow seed result %+v != wide %+v", res, want)
	}
}

// FuzzNarrowVsWide fuzzes the tier-equivalence property over arbitrary
// byte sequences and parameters.
func FuzzNarrowVsWide(f *testing.F) {
	f.Add([]byte("ACGTACGTAC"), []byte("ACGTTCGTAC"), 10, 1, 2, uint8(0))
	f.Add([]byte("GATTACA"), []byte("GATTTACA"), 5, 2, 0, uint8(1))
	f.Add([]byte(""), []byte("A"), 0, 1, 1, uint8(2))
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAA"), []byte("AAAAAAAAAAAAAAAAAAAA"), 4095, 1, 3, uint8(0))
	f.Fuzz(func(t *testing.T, hs, vs []byte, x, gap, gapOpen int, sel uint8) {
		if len(hs) > 2000 || len(vs) > 2000 {
			return
		}
		if x < 0 || x > maxNarrowX {
			x = maxNarrowX
		}
		gap = 1 + gap%maxNarrowGap
		if gap < 0 {
			gap = -gap
		}
		gapOpen = gapOpen % maxNarrowGap
		if gapOpen < 0 {
			gapOpen = -gapOpen
		}
		algo := []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine}[sel%3]
		p := Params{Scorer: scoring.DNADefault, Gap: -gap, GapOpen: -gapOpen, X: x, Algo: algo}
		if sel%2 == 1 {
			p.DeltaB = 16
		}
		hv, vv := NewView(hs), NewView(vs)
		if sel%5 == 3 {
			hv = NewReversedView(hs)
		}
		wide := Align(hv, vv, p)
		p.Tier = TierNarrow
		narrow := Align(hv, vv, p)
		if stripTierTrace(narrow) != stripTierTrace(wide) {
			t.Fatalf("narrow %+v != wide %+v (h=%q v=%q p=%+v)", narrow, wide, hs, vs, p)
		}
	})
}
