package core

import (
	"math/rand"
	"testing"
	"unsafe"

	"github.com/sram-align/xdropipu/internal/scoring"
)

func randProtein(rng *rand.Rand, n int) []byte {
	const sym = "ARNDCQEGHILKMFPSTWYV"
	s := make([]byte, n)
	for i := range s {
		s[i] = sym[rng.Intn(len(sym))]
	}
	return s
}

func mutateProtein(rng *rand.Rand, s []byte, rate float64) []byte {
	const sym = "ARNDCQEGHILKMFPSTWYV"
	out := make([]byte, 0, len(s)+8)
	for _, c := range s {
		if rng.Float64() < rate {
			switch rng.Intn(3) {
			case 0:
				out = append(out, sym[rng.Intn(len(sym))])
			case 1:
				out = append(out, sym[rng.Intn(len(sym))], c)
			case 2:
			}
		} else {
			out = append(out, c)
		}
	}
	return out
}

func reversed(b []byte) []byte {
	out := make([]byte, len(b))
	for i := range b {
		out[i] = b[len(b)-1-i]
	}
	return out
}

// TestOptimizedVariantsMatchReference is the fuzz-style equivalence
// property for the branch-specialized int32 kernels: on random DNA and
// protein pairs, under forward AND reversed views, every optimized
// variant must reproduce the full-matrix Reference oracle exactly —
// Score, EndH/EndV and Stats.Cells. (Reference itself consumes the views
// generically, so a reversed view compares against the oracle running on
// the same reversed inputs; a separate check below pins reversed views to
// materialised reversed sequences.)
func TestOptimizedVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 400; trial++ {
		protein := trial%3 == 2
		var hs, vs []byte
		var p Params
		if protein {
			hs = randProtein(rng, 1+rng.Intn(150))
			vs = mutateProtein(rng, hs, []float64{0, 0.1, 0.3, 0.8}[trial%4])
			p = Params{Scorer: scoring.Blosum62, Gap: -2, X: []int{0, 2, 7, 20, 60, 1 << 18}[trial%6]}
		} else {
			hs = randDNA(rng, 1+rng.Intn(150))
			vs = mutate(rng, hs, []float64{0, 0.05, 0.15, 0.45, 0.9}[trial%5])
			p = Params{Scorer: scoring.DNADefault, Gap: -1, X: []int{0, 1, 5, 12, 30, 1 << 18}[trial%6]}
		}
		if trial%11 == 0 {
			vs = randDNA(rng, 1+rng.Intn(150)) // unrelated pair
		}
		var hv, vv View
		switch trial % 4 {
		case 0:
			hv, vv = NewView(hs), NewView(vs)
		case 1:
			hv, vv = NewReversedView(hs), NewReversedView(vs)
		case 2: // mixed directions: the generic cursor fallback loops
			hv, vv = NewView(hs), NewReversedView(vs)
		default:
			hv, vv = NewReversedView(hs), NewView(vs)
		}

		ref := Reference(hv, vv, p)
		for _, algo := range []Algo{AlgoStandard3, AlgoRestricted2} {
			pp := p
			pp.Algo = algo
			got := Align(hv, vv, pp)
			if got.Score != ref.Score || got.EndH != ref.EndH || got.EndV != ref.EndV {
				t.Fatalf("trial %d: %v %+v != reference %+v (h=%s v=%s x=%d)",
					trial, algo, got, ref, hs, vs, p.X)
			}
			if got.Stats.Cells != ref.Stats.Cells {
				t.Fatalf("trial %d: %v cells %d != reference %d", trial, algo, got.Stats.Cells, ref.Stats.Cells)
			}
			if got.Stats.MaxLiveBand != ref.Stats.MaxLiveBand {
				t.Fatalf("trial %d: %v band %d != reference %d", trial, algo, got.Stats.MaxLiveBand, ref.Stats.MaxLiveBand)
			}
		}
	}
}

// TestAffineZeroOpenMatchesReference pins the affine kernel to the
// linear-gap oracle in the regime where the two recurrences coincide:
// with GapOpen = 0, E and F reduce to plain gap extensions of H, and a
// channel survives pruning exactly when the cell's H does — so scores,
// end points, cell counts and live bands must all match Reference.
func TestAffineZeroOpenMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 200; trial++ {
		hs := randDNA(rng, 1+rng.Intn(150))
		vs := mutate(rng, hs, []float64{0, 0.1, 0.3, 0.8}[trial%4])
		p := Params{Scorer: scoring.DNADefault, Gap: -1, X: []int{0, 3, 9, 25, 1 << 18}[trial%5]}
		var hv, vv View
		switch trial % 4 {
		case 0:
			hv, vv = NewView(hs), NewView(vs)
		case 1:
			hv, vv = NewReversedView(hs), NewReversedView(vs)
		case 2: // mixed directions: the generic cursor fallback loops
			hv, vv = NewView(hs), NewReversedView(vs)
		default:
			hv, vv = NewReversedView(hs), NewView(vs)
		}
		ref := Reference(hv, vv, p)
		pp := p
		pp.Algo = AlgoAffine // GapOpen stays 0
		got := Align(hv, vv, pp)
		if got.Score != ref.Score || got.EndH != ref.EndH || got.EndV != ref.EndV {
			t.Fatalf("trial %d: affine(open=0) %+v != reference %+v (h=%s v=%s x=%d)",
				trial, got, ref, hs, vs, p.X)
		}
		if got.Stats.Cells != ref.Stats.Cells || got.Stats.MaxLiveBand != ref.Stats.MaxLiveBand {
			t.Fatalf("trial %d: affine(open=0) trace (%d,%d) != reference (%d,%d)",
				trial, got.Stats.Cells, got.Stats.MaxLiveBand, ref.Stats.Cells, ref.Stats.MaxLiveBand)
		}
	}
}

// TestReversedViewsMatchMaterialised pins the direction-specialized
// loops: running any variant on reversed views must equal running it on
// materialised reversed byte slices, including the full execution trace.
func TestReversedViewsMatchMaterialised(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 200; trial++ {
		hs := randDNA(rng, 1+rng.Intn(200))
		vs := mutate(rng, hs, 0.2)
		for _, algo := range []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine, AlgoReference} {
			p := Params{Scorer: scoring.DNADefault, Gap: -1, X: 10, Algo: algo}
			if algo == AlgoAffine {
				p.Scorer = scoring.NewSimple(2, -4)
				p.Gap = -2
				p.GapOpen = -4
				p.X = 20
			}
			if algo == AlgoRestricted2 && trial%2 == 0 {
				p.DeltaB = 8 // exercise the clamped path too
			}
			rev := Align(NewReversedView(hs), NewReversedView(vs), p)
			mat := Align(NewView(reversed(hs)), NewView(reversed(vs)), p)
			if rev.Score != mat.Score || rev.EndH != mat.EndH || rev.EndV != mat.EndV || rev.Stats != mat.Stats {
				t.Fatalf("trial %d %v: reversed view %+v != materialised %+v", trial, algo, rev, mat)
			}
		}
	}
}

// TestWorkBytesMatchesBufferFootprint closes the WorkBytes honesty gap:
// the modeled footprint must be computed from the actual element size of
// the working buffers (4-byte scores, §3), not an assumed one.
func TestWorkBytesMatchesBufferFootprint(t *testing.T) {
	var w Workspace
	h := []byte("ACGTACGTACGTACGT")
	v := []byte("ACGTACGTACGTACGT")
	p := Params{Scorer: scoring.DNADefault, Gap: -1, X: 10}

	w.Restricted2(NewView(h), NewView(v), p)
	elem := int(unsafe.Sizeof(w.b1[0]))
	if elem != scoreBytes {
		t.Fatalf("buffer element is %d B, WorkBytes math assumes %d B", elem, scoreBytes)
	}

	// The stored buffers carry 2·bufPad guard cells beyond the modeled
	// window capacity; WorkBytes must equal capacity × element size per
	// antidiagonal for each variant's buffer count.
	delta := min(len(h), len(v)) + 1
	r := w.Restricted2(NewView(h), NewView(v), p)
	if want := 2 * delta * elem; r.Stats.WorkBytes != want {
		t.Errorf("restricted2 WorkBytes = %d, want %d (2δ cells × %d B)", r.Stats.WorkBytes, want, elem)
	}
	if got := (len(w.b1) - 2*bufPad) * elem * 2; got != r.Stats.WorkBytes {
		t.Errorf("restricted2 actual buffers hold %d B of window cells, WorkBytes says %d", got, r.Stats.WorkBytes)
	}

	p.DeltaB = 4
	r = w.Restricted2(NewView(h), NewView(v), p)
	if want := 2 * 4 * elem; r.Stats.WorkBytes != want {
		t.Errorf("restricted2 δb=4 WorkBytes = %d, want %d", r.Stats.WorkBytes, want)
	}
	if got := (len(w.b1) - 2*bufPad) * elem * 2; got != r.Stats.WorkBytes {
		t.Errorf("restricted2 δb=4 buffers hold %d B, WorkBytes says %d", got, r.Stats.WorkBytes)
	}

	p.DeltaB = 0
	s := w.Standard3(NewView(h), NewView(v), p)
	if want := 3 * delta * elem; s.Stats.WorkBytes != want {
		t.Errorf("standard3 WorkBytes = %d, want %d", s.Stats.WorkBytes, want)
	}
	if got := (len(w.b0) - 2*bufPad) * elem * 3; got != s.Stats.WorkBytes {
		t.Errorf("standard3 buffers hold %d B, WorkBytes says %d", got, s.Stats.WorkBytes)
	}

	a := w.Affine(NewView(h), NewView(v), p)
	if want := 7 * delta * elem; a.Stats.WorkBytes != want {
		t.Errorf("affine WorkBytes = %d, want %d", a.Stats.WorkBytes, want)
	}
}

// TestExtendSeedSteadyStateAllocs: a warm workspace must run whole seed
// extensions without allocating — the property that lets one workspace
// per simulated IPU thread run millions of alignments.
func TestExtendSeedSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	h := randDNA(rng, 2000)
	v := mutate(rng, h, 0.15)
	if len(v) < 1200 {
		t.Fatal("mutation shrank sequence too much")
	}
	s := Seed{H: 600, V: 600, Len: 17}
	for _, algo := range []Algo{AlgoRestricted2, AlgoStandard3, AlgoAffine} {
		p := Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256, Algo: algo}
		if algo == AlgoAffine {
			p.GapOpen = -4
		}
		var w Workspace
		if _, err := w.ExtendSeed(h, v, s, p); err != nil { // warm the buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := w.ExtendSeed(h, v, s, p); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: steady-state ExtendSeed allocates %.1f objects/op, want 0", algo, allocs)
		}
	}
}
