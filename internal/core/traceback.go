package core

import (
	"fmt"

	"github.com/sram-align/xdropipu/internal/alignment"
)

// This file is the opt-in second pass of the two-pass traceback scheme:
// the score pass (restricted2.go, standard3.go, affine.go) stays exactly
// as it is — branch-specialized, allocation-free, no per-cell bookkeeping
// — and when a caller asks for edit operations the extension is replayed
// once more with direction recording enabled.
//
// The replay reproduces each variant's window semantics bit for bit
// (same antidiagonal windows, the same δb clamp re-centred on the
// previous row's best cell, the same X-Drop pruning in int32 arithmetic,
// the same first-wins tie-breaking), so its Score/EndH/EndV must equal
// the score pass's — the kernel asserts exactly that, and the
// differential oracle tests pin it per variant.
//
// Memory stays in the paper's SRAM discipline: instead of materialising
// the O(m·n) score matrix, the replay records only direction codes over
// the banded antidiagonal windows — 2 bits per computed cell for the
// linear variants, 4 bits for affine (H-source plus the E/F gap-extension
// bits) — plus one window descriptor per antidiagonal. Peak traceback
// memory is therefore bounded by (antidiagonals × band)/4 bytes, with the
// band clamped to δb for Restricted2, never by the full matrix.

// Trace direction codes (2 bits per cell, linear variants). For affine
// the low 2 bits hold the H-channel source (codeDiag/codeUpE/codeLeftF
// reinterpreted as diag/E/F) and bits 2 and 3 hold the E- and F-channel
// gap-extension flags.
const (
	codeNone byte = 0 // pruned cell / origin
	codeDiag byte = 1 // from (i-1, j-1): consumes one symbol of each
	codeUp   byte = 2 // from (i-1, j): consumes H only ('I')
	codeLeft byte = 3 // from (i, j-1): consumes V only ('D')

	// Affine H-channel sources (low 2 bits).
	afSrcDiag byte = 1
	afSrcE    byte = 2 // H equals the E channel (gap in H ending here)
	afSrcF    byte = 3 // H equals the F channel (gap in V ending here)
	// Affine channel-extension flags.
	afEExt byte = 4 // E came from E(i,j-1), not H(i,j-1)+open
	afFExt byte = 8 // F came from F(i-1,j), not H(i-1,j)+open
)

// tracer is the workspace state of a traceback replay: the rotating DP
// rows, the per-antidiagonal window index, and the packed direction
// codes. Buffers are reused across replays; peak footprint is reported
// per extension as Trace.TraceBytes.
type tracer struct {
	rowA, rowB, rowC []int32 // rotating H rows (d, d-1, d-2)
	e1, e0, f1, f0   []int32 // affine E/F rows (d-1 and d)

	cls  []int32 // window start per antidiagonal
	offs []int32 // prefix cell counts per antidiagonal (len = diags+1)
	dirs []byte  // packed direction codes
	ops  []byte  // walker scratch: one op byte per alignment column

	// codes is the fused kernels' unpacked scratch row: one byte per
	// window cell, packed into dirs once per antidiagonal (packRow), so
	// the scoring loop never does per-cell read-modify-write on dirs.
	codes []byte

	bits uint // bits per cell this recording uses (2 linear, 4 affine)
}

func (tb *tracer) reset(bits uint) {
	tb.cls = tb.cls[:0]
	tb.offs = append(tb.offs[:0], 0)
	tb.dirs = tb.dirs[:0]
	tb.bits = bits
}

// maxTraceCells caps the recorded cells of one recording so the int32
// prefix offsets cannot wrap. The fleet path never gets near it (tile
// SRAM bounds extensions first); the direct host API errors cleanly
// instead of corrupting a multi-hundred-MB trace. A variable only so
// SetTraceCellCapForTest can inject a tiny cap.
var maxTraceCells int64 = 1<<31 - 1

// ErrTraceTooLarge reports a traceback recording (replay or fused) that
// would exceed the 31-bit cell space (host-API-only; tile extensions
// are SRAM-bounded). Callers distinguish it with errors.Is: it is a
// per-extension resource condition, not a kernel bug, so the kernel
// degrades the one affected comparison instead of failing the batch.
var ErrTraceTooLarge = fmt.Errorf("core: traceback recording exceeds the recordable cell space (extension too large; restrict δb or split the extension)")

// SetTraceCellCapForTest lowers the recording cell cap and returns a
// restore func. Test-only: it lets regression tests force the
// ErrTraceTooLarge path on small inputs. Not safe for concurrent use
// with running kernels.
func SetTraceCellCapForTest(n int64) (restore func()) {
	old := maxTraceCells
	maxTraceCells = n
	return func() { maxTraceCells = old }
}

// beginDiag opens the recording window [cl, cl+width) for the next
// antidiagonal and returns the cell offset its codes start at, or -1
// when the recording would overflow the 31-bit cell space.
func (tb *tracer) beginDiag(cl, width int) int32 {
	base := tb.offs[len(tb.offs)-1]
	if int64(base)+int64(width) > maxTraceCells {
		return -1
	}
	tb.cls = append(tb.cls, int32(cl))
	tb.offs = append(tb.offs, base+int32(width))
	need := ((int(base)+width)*int(tb.bits) + 7) / 8
	if need > len(tb.dirs) {
		if need <= cap(tb.dirs) {
			// Stale bits from a previous replay are fine: setCode masks
			// every cell it writes and code() bounds-checks every read.
			tb.dirs = tb.dirs[:need]
		} else {
			tb.dirs = append(tb.dirs, make([]byte, need-len(tb.dirs))...)
		}
	}
	return base
}

// setCode stores the direction code of the k-th cell of the window
// opened at base.
func (tb *tracer) setCode(base int32, k int, code byte) {
	idx := uint(base) + uint(k)
	if tb.bits == 2 {
		shift := (idx & 3) * 2
		b := &tb.dirs[idx>>2]
		*b = *b&^(3<<shift) | code<<shift
		return
	}
	shift := (idx & 1) * 4
	b := &tb.dirs[idx>>1]
	*b = *b&^(15<<shift) | code<<shift
}

// code reads the direction code of cell i on antidiagonal d, or an error
// when (d, i) lies outside the recorded windows (a corrupt trace).
func (tb *tracer) code(d, i int) (byte, error) {
	if d < 0 || d >= len(tb.cls) {
		return 0, fmt.Errorf("core: traceback walked off the recorded antidiagonals (d=%d of %d)", d, len(tb.cls))
	}
	cl := int(tb.cls[d])
	width := int(tb.offs[d+1] - tb.offs[d])
	if i < cl || i >= cl+width {
		return 0, fmt.Errorf("core: traceback cell (d=%d, i=%d) outside recorded window [%d,%d)", d, i, cl, cl+width)
	}
	idx := uint(tb.offs[d]) + uint(i-cl)
	if tb.bits == 2 {
		return tb.dirs[idx>>2] >> ((idx & 3) * 2) & 3, nil
	}
	return tb.dirs[idx>>1] >> ((idx & 1) * 4) & 15, nil
}

// traceBytes is the recording's exact byte footprint: packed codes plus
// the per-antidiagonal window index.
func (tb *tracer) traceBytes() int {
	return len(tb.dirs) + 4*len(tb.cls) + 4*len(tb.offs)
}

// tracerRetainBytes is the high-water threshold above which trim
// releases a recording buffer instead of keeping it warm. Workspaces
// are pooled for the engine's lifetime, so without the cap one outlier
// extension would pin its worst-case arena on every pooled workspace
// forever; 1 MiB comfortably covers every SRAM-certified tile extension
// (ExtensionTraceBytes tops out well below tile SRAM) while letting
// host-API outliers be returned to the allocator.
const tracerRetainBytes = 1 << 20

// trim releases recording buffers that grew past tracerRetainBytes.
// Called after the recording's ops have been consumed (encodeOps) —
// every buffer here is rebuilt from scratch by the next recording.
func (tb *tracer) trim() {
	if cap(tb.dirs) > tracerRetainBytes {
		tb.dirs = nil
	}
	if cap(tb.cls)*4 > tracerRetainBytes {
		tb.cls = nil
	}
	if cap(tb.offs)*4 > tracerRetainBytes {
		tb.offs = nil
	}
	if cap(tb.ops) > tracerRetainBytes {
		tb.ops = nil
	}
	if cap(tb.codes) > tracerRetainBytes {
		tb.codes = nil
	}
}

// growCodes returns the unpacked per-cell scratch row for one window.
func (tb *tracer) growCodes(n int) []byte {
	if cap(tb.codes) < n {
		tb.codes = make([]byte, n)
	}
	return tb.codes[:n]
}

// packRow packs one window's unpacked codes into dirs starting at cell
// offset base (as returned by beginDiag). Head and tail cells that share
// a byte with a neighboring window are read-modify-written; the aligned
// body is stored whole-byte, so packing costs ~width/4 byte stores
// instead of width RMWs.
func (tb *tracer) packRow(base int32, codes []byte) {
	idx := uint(base)
	k := 0
	if tb.bits == 2 {
		for ; k < len(codes) && idx&3 != 0; k++ {
			shift := (idx & 3) * 2
			b := &tb.dirs[idx>>2]
			*b = *b&^(3<<shift) | codes[k]<<shift
			idx++
		}
		for ; k+4 <= len(codes); k += 4 {
			tb.dirs[idx>>2] = codes[k] | codes[k+1]<<2 | codes[k+2]<<4 | codes[k+3]<<6
			idx += 4
		}
		for ; k < len(codes); k++ {
			shift := (idx & 3) * 2
			b := &tb.dirs[idx>>2]
			*b = *b&^(3<<shift) | codes[k]<<shift
			idx++
		}
		return
	}
	for ; k < len(codes) && idx&1 != 0; k++ {
		b := &tb.dirs[idx>>1]
		*b = *b&^(15<<4) | codes[k]<<4
		idx++
	}
	for ; k+2 <= len(codes); k += 2 {
		tb.dirs[idx>>1] = codes[k] | codes[k+1]<<4
		idx += 2
	}
	for ; k < len(codes); k++ {
		b := &tb.dirs[idx>>1]
		*b = *b&^15 | codes[k]
		idx++
	}
}

// Trace is the outcome of one extension's traceback replay.
type Trace struct {
	// Score, EndH and EndV bit-match the score-only kernel's Result for
	// the same views and parameters.
	Score      int
	EndH, EndV int
	// Cigar covers view positions [0,EndH)×[0,EndV). TracebackExtension
	// and TracebackRight return it in view-forward order;
	// TracebackLeft returns it in sequence-forward order (the
	// composition order of a left seed extension).
	Cigar alignment.Cigar
	// TraceBytes is the exact peak byte footprint of the recorded
	// direction data for this replay: packed per-cell codes over the
	// banded windows plus the window index — the measured space cost of
	// traceback, bounded by antidiagonals × band, never by m·n.
	TraceBytes int
	// Clamped mirrors the score pass: the δb window clamped at least once.
	Clamped bool
}

func grow32(b []int32, n int) []int32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int32, n)
}

// get32 reads row value i from a window [cl, cu]; outside reads answer
// −∞, exactly like the score kernels' guard cells.
func get32(vals []int32, cl, cu, i int) int32 {
	if i < cl || i > cu {
		return negInf32
	}
	return vals[i-cl]
}

// linearCapacity resolves the replay's working-window bound the same way
// the score kernels do: Restricted2 honours DeltaB, every other linear
// variant (Standard3, Reference) is unbounded.
func linearCapacity(m, n int, p Params) int {
	delta := min(m, n) + 1
	if p.Algo == AlgoRestricted2 && p.DeltaB > 0 && p.DeltaB < delta {
		return p.DeltaB
	}
	return delta
}

// traceLinear replays a linear-gap extension (Restricted2 / Standard3 /
// Reference semantics) with direction recording and returns the walk-order
// ops (best cell back to the origin) in tb.ops.
func (w *Workspace) traceLinear(h, v View, p Params) (Trace, error) {
	m, n := h.Len(), v.Len()
	capacity := linearCapacity(m, n, p)
	tb := &w.tb
	tb.reset(2)

	tab := p.Scorer.Table()
	gap := int32(p.Gap)

	d1 := grow32(tb.rowB, 1)
	d1[0] = 0
	d1cl, d1cu := 0, 0 // computed window of antidiagonal d-1
	d1lo, d1hi := 0, 0 // live bounds of antidiagonal d-1
	d2 := tb.rowC[:0]
	d2cl, d2cu := 0, -1 // antidiagonal d-2 starts empty (all −∞)
	spare := tb.rowA

	var res Trace
	base := tb.beginDiag(0, 1)
	tb.setCode(base, 0, codeNone) // the origin

	best, t := int32(0), int32(0)
	bestI, bestD := 0, 0
	prevBestI := 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		if cu-cl+1 > capacity {
			// The δb clamp, re-centred on the previous antidiagonal's
			// best cell — identical to Restricted2's realignment rule.
			res.Clamped = true
			ncl := prevBestI - capacity/2
			if ncl < cl {
				ncl = cl
			}
			if ncl > cu-capacity+1 {
				ncl = cu - capacity + 1
			}
			cl = ncl
			cu = cl + capacity - 1
		}
		limit := pruneLimit(t, p.X)
		width := cu - cl + 1
		out := grow32(spare, width)
		rowBest, rowBestI := negInf32, -1
		lo, hi := -1, -1
		base := tb.beginDiag(cl, width)
		if base < 0 {
			return Trace{}, ErrTraceTooLarge
		}
		for i := cl; i <= cu; i++ {
			j := d - i
			var s int32
			var code byte
			switch {
			case i == 0:
				// Top boundary (j = d): only the left (gap-in-H) move.
				s = get32(d1, d1cl, d1cu, 0) + gap
				code = codeLeft
			case j == 0:
				// Bottom boundary: only the up (gap-in-V) move.
				s = get32(d1, d1cl, d1cu, i-1) + gap
				code = codeUp
			default:
				s = get32(d2, d2cl, d2cu, i-1) + int32(tab[h.At(i-1)][v.At(j-1)])
				code = codeDiag
				up := get32(d1, d1cl, d1cu, i-1)
				left := get32(d1, d1cl, d1cu, i)
				// The kernels take the gap branch only when it strictly
				// beats the diagonal; between the two gap sources the
				// value is what matters, up wins ties here.
				if g := max(up, left) + gap; g > s {
					s = g
					if up >= left {
						code = codeUp
					} else {
						code = codeLeft
					}
				}
			}
			if s < limit {
				s, code = negInf32, codeNone
			} else {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
			if s > rowBest {
				rowBest, rowBestI = s, i
			}
			out[i-cl] = s
			tb.setCode(base, i-cl, code)
		}
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		spare = d2
		d2, d2cl, d2cu = d1, d1cl, d1cu
		d1, d1cl, d1cu = out, cl, cu
		d1lo, d1hi = lo, hi
		prevBestI = rowBestI
	}
	tb.rowA, tb.rowB, tb.rowC = spare[:0], d1[:0], d2[:0]

	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	res.TraceBytes = tb.traceBytes()
	if err := tb.walkLinear(h, v, bestI, bestD); err != nil {
		return Trace{}, err
	}
	return res, nil
}

// walkLinear follows the recorded directions from the best cell back to
// the origin, leaving one op byte per column in tb.ops (walk order:
// best → origin).
func (tb *tracer) walkLinear(h, v View, bestI, bestD int) error {
	i, j := bestI, bestD-bestI
	ops := tb.ops[:0]
	for i != 0 || j != 0 {
		code, err := tb.code(i+j, i)
		if err != nil {
			return err
		}
		switch code {
		case codeDiag:
			op := byte(alignment.OpMismatch)
			if h.At(i-1) == v.At(j-1) {
				op = byte(alignment.OpMatch)
			}
			ops = append(ops, op)
			i--
			j--
		case codeUp:
			ops = append(ops, byte(alignment.OpIns))
			i--
		case codeLeft:
			ops = append(ops, byte(alignment.OpDel))
			j--
		default:
			return fmt.Errorf("core: traceback hit a pruned cell at (i=%d, j=%d)", i, j)
		}
	}
	tb.ops = ops
	return nil
}

// traceAffine replays the Gotoh affine-gap extension with direction
// recording (4 bits per cell) and leaves the walk-order ops in tb.ops.
func (w *Workspace) traceAffine(h, v View, p Params) (Trace, error) {
	m, n := h.Len(), v.Len()
	tb := &w.tb
	tb.reset(4)

	tab := p.Scorer.Table()
	gape := int32(p.Gap)
	gapo := int32(p.GapOpen)

	d1h := grow32(tb.rowB, 1)
	d1e := grow32(tb.e1, 1)
	d1f := grow32(tb.f1, 1)
	d1h[0], d1e[0], d1f[0] = 0, negInf32, negInf32
	d1cl, d1cu := 0, 0
	d1lo, d1hi := 0, 0
	d2h := tb.rowC[:0]
	d2cl, d2cu := 0, -1
	spareH, spareE, spareF := tb.rowA, tb.e0, tb.f0

	var res Trace
	base := tb.beginDiag(0, 1)
	tb.setCode(base, 0, codeNone)

	best, t := int32(0), int32(0)
	bestI, bestD := 0, 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		limit := pruneLimit(t, p.X)
		width := cu - cl + 1
		outH := grow32(spareH, width)
		outE := grow32(spareE, width)
		outF := grow32(spareF, width)
		rowBest, rowBestI := negInf32, -1
		lo, hi := -1, -1
		base := tb.beginDiag(cl, width)
		if base < 0 {
			return Trace{}, ErrTraceTooLarge
		}
		for i := cl; i <= cu; i++ {
			j := d - i
			var hs, es, fs int32
			var code byte
			switch {
			case i == 0:
				// Top boundary: the cell is its own E channel.
				pe := get32(d1e, d1cl, d1cu, 0)
				ph := get32(d1h, d1cl, d1cu, 0)
				es = max(pe, ph+gapo) + gape
				if pe >= ph+gapo {
					code |= afEExt
				}
				if es < limit {
					es = negInf32
				}
				hs, fs = es, negInf32
				if es != negInf32 {
					code |= afSrcE
				}
			case j == 0:
				// Bottom boundary: the cell is its own F channel.
				pf := get32(d1f, d1cl, d1cu, i-1)
				ph := get32(d1h, d1cl, d1cu, i-1)
				fs = max(pf, ph+gapo) + gape
				if pf >= ph+gapo {
					code |= afFExt
				}
				if fs < limit {
					fs = negInf32
				}
				hs, es = fs, negInf32
				if fs != negInf32 {
					code |= afSrcF
				}
			default:
				pe := get32(d1e, d1cl, d1cu, i)
				phr := get32(d1h, d1cl, d1cu, i)
				es = max(pe, phr+gapo) + gape
				if pe >= phr+gapo {
					code |= afEExt
				}
				pf := get32(d1f, d1cl, d1cu, i-1)
				phl := get32(d1h, d1cl, d1cu, i-1)
				fs = max(pf, phl+gapo) + gape
				if pf >= phl+gapo {
					code |= afFExt
				}
				hs = get32(d2h, d2cl, d2cu, i-1) + int32(tab[h.At(i-1)][v.At(j-1)])
				src := afSrcDiag
				if es > hs {
					hs = es
					src = afSrcE
				}
				if fs > hs {
					hs = fs
					src = afSrcF
				}
				if hs < limit {
					hs = negInf32
					src = 0
				}
				if es < limit {
					es = negInf32
				}
				if fs < limit {
					fs = negInf32
				}
				code |= src
			}
			if hs != negInf32 || es != negInf32 || fs != negInf32 {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
			if hs > rowBest {
				rowBest, rowBestI = hs, i
			}
			outH[i-cl], outE[i-cl], outF[i-cl] = hs, es, fs
			tb.setCode(base, i-cl, code)
		}
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		spareH = d2h
		d2h, d2cl, d2cu = d1h, d1cl, d1cu
		spareE, spareF = d1e, d1f
		d1h, d1e, d1f = outH, outE, outF
		d1cl, d1cu = cl, cu
		d1lo, d1hi = lo, hi
		_ = rowBestI // affine never clamps, the previous best index is unused
	}
	tb.rowA, tb.rowB, tb.rowC = spareH[:0], d1h[:0], d2h[:0]
	tb.e0, tb.e1, tb.f0, tb.f1 = spareE[:0], d1e[:0], spareF[:0], d1f[:0]

	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	res.TraceBytes = tb.traceBytes()
	if err := tb.walkAffine(h, v, bestI, bestD); err != nil {
		return Trace{}, err
	}
	return res, nil
}

// walkAffine follows the affine trace channel-aware: the H channel reads
// its source nibble; the E and F channels emit one gap column each and
// their extension bit says whether the gap run continues.
func (tb *tracer) walkAffine(h, v View, bestI, bestD int) error {
	const chH, chE, chF = 0, 1, 2
	i, j := bestI, bestD-bestI
	ch := chH
	ops := tb.ops[:0]
	for i != 0 || j != 0 {
		nib, err := tb.code(i+j, i)
		if err != nil {
			return err
		}
		switch ch {
		case chH:
			switch nib & 3 {
			case afSrcDiag:
				op := byte(alignment.OpMismatch)
				if h.At(i-1) == v.At(j-1) {
					op = byte(alignment.OpMatch)
				}
				ops = append(ops, op)
				i--
				j--
			case afSrcE:
				ch = chE
			case afSrcF:
				ch = chF
			default:
				return fmt.Errorf("core: affine traceback hit a pruned H cell at (i=%d, j=%d)", i, j)
			}
		case chE:
			ops = append(ops, byte(alignment.OpDel))
			if nib&afEExt == 0 {
				ch = chH
			}
			j--
		case chF:
			ops = append(ops, byte(alignment.OpIns))
			if nib&afFExt == 0 {
				ch = chH
			}
			i--
		}
	}
	if ch != chH {
		return fmt.Errorf("core: affine traceback reached the origin inside a gap channel")
	}
	tb.ops = ops
	return nil
}

// traceback dispatches on the variant and leaves the walk-order ops in
// w.tb.ops.
func (w *Workspace) traceback(h, v View, p Params) (Trace, error) {
	if err := p.Validate(); err != nil {
		return Trace{}, err
	}
	if p.Algo == AlgoAffine {
		return w.traceAffine(h, v, p)
	}
	return w.traceLinear(h, v, p)
}

// encodeOps turns op bytes into a canonical Cigar. When rev is set the
// ops are consumed back-to-front (turning walk order into view-forward
// order).
func encodeOps(ops []byte, rev bool) alignment.Cigar {
	var b alignment.Builder
	if rev {
		for i := len(ops) - 1; i >= 0; i-- {
			b.Append(alignment.Op(ops[i]), 1)
		}
	} else {
		for _, op := range ops {
			b.Append(alignment.Op(op), 1)
		}
	}
	return b.Cigar()
}

// TracebackExtension replays one extension of h against v with direction
// recording and returns its Cigar in view-forward order. Score, EndH and
// EndV bit-match Align(h, v, p) on the same inputs.
func (w *Workspace) TracebackExtension(h, v View, p Params) (Trace, error) {
	tr, err := w.traceback(h, v, p)
	if err != nil {
		w.tb.trim()
		return Trace{}, err
	}
	tr.Cigar = encodeOps(w.tb.ops, true)
	w.tb.trim()
	return tr, nil
}

// TracebackRight replays the right seed extension (ExtendRight) and
// returns its Cigar in sequence-forward order.
func (w *Workspace) TracebackRight(h, v []byte, hOff, vOff int, p Params) (Trace, error) {
	return w.TracebackExtension(NewView(h[hOff:]), NewView(v[vOff:]), p)
}

// TracebackLeft replays the left seed extension (ExtendLeft, reversed
// views) and returns its Cigar in sequence-forward order — for a
// reversed view that is the walk order itself, so the left Cigar
// concatenates directly in front of the seed.
func (w *Workspace) TracebackLeft(h, v []byte, hOff, vOff int, p Params) (Trace, error) {
	tr, err := w.traceback(NewReversedView(h[:hOff]), NewReversedView(v[:vOff]), p)
	if err != nil {
		w.tb.trim()
		return Trace{}, err
	}
	tr.Cigar = encodeOps(w.tb.ops, false)
	w.tb.trim()
	return tr, nil
}

// SeedCigar emits the '='/'X' columns of the seed region itself. Exact
// k-mer seeds yield a single '=' run; quasi-exact protein seeds (PASTIS)
// may contain 'X' columns, which the score reconstruction prices through
// the substitution table like any other column.
func SeedCigar(h, v []byte, s Seed) alignment.Cigar {
	var b alignment.Builder
	for k := 0; k < s.Len; k++ {
		op := alignment.OpMismatch
		if h[s.H+k] == v[s.V+k] {
			op = alignment.OpMatch
		}
		b.Append(op, 1)
	}
	return b.Cigar()
}

// TracebackSeed runs the traceback pass of a full two-sided seed
// extension: both sides replayed with recording, the seed's own columns
// bridged in between. The returned SeedResult carries the scores and
// coordinates only (its Stats are zero — execution traces belong to the
// score pass); the Alignment is the sequence-space result whose
// reconstructed score (alignment.ScoreOf over the aligned fragments)
// bit-matches Score.
func (w *Workspace) TracebackSeed(h, v []byte, s Seed, p Params) (SeedResult, alignment.Alignment, error) {
	if s.Len <= 0 || s.H < 0 || s.V < 0 || s.H+s.Len > len(h) || s.V+s.Len > len(v) {
		return SeedResult{}, alignment.Alignment{}, fmt.Errorf("core: seed %+v out of range for |h|=%d |v|=%d", s, len(h), len(v))
	}
	left, err := w.TracebackLeft(h, v, s.H, s.V, p)
	if err != nil {
		return SeedResult{}, alignment.Alignment{}, err
	}
	leftCigar := left.Cigar
	right, err := w.TracebackRight(h, v, s.H+s.Len, s.V+s.Len, p)
	if err != nil {
		return SeedResult{}, alignment.Alignment{}, err
	}
	full, err := alignment.Concat(leftCigar, SeedCigar(h, v, s), right.Cigar)
	if err != nil {
		return SeedResult{}, alignment.Alignment{}, err
	}
	res := SeedResult{
		Score:      left.Score + SeedScore(h, v, s, p) + right.Score,
		LeftScore:  left.Score,
		RightScore: right.Score,
		BegH:       s.H - left.EndH,
		BegV:       s.V - left.EndV,
		EndH:       s.H + s.Len + right.EndH,
		EndV:       s.V + s.Len + right.EndV,
	}
	res.Stats.Clamped = left.Clamped || right.Clamped
	aln := alignment.Alignment{
		Score: res.Score,
		BegH:  res.BegH, BegV: res.BegV,
		EndH: res.EndH, EndV: res.EndV,
		Cigar: full,
	}
	return res, aln, nil
}
