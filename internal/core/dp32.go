package core

import "math"

// The DP kernels work on int32 score buffers: the paper models 4-byte
// scores (Stats.WorkBytes, §3) and the IPU stores them that way, so the
// simulator's working set should match — it also halves cache pressure
// versus 8-byte ints, which is most of the kernels' memory traffic.
//
// int32 bounds the representable alignment score to ±2^29-ish (scores are
// kept above negInf32/2, see pruneLimit); with per-symbol scores ≤ 127
// that covers sequences of a few million symbols per extension, far
// beyond anything a 624 KB tile can hold.

// negInf32 is the pruned-cell sentinel of the working buffers. It is far
// enough from the int32 minimum that adding similarity scores or gap
// penalties cannot wrap.
const negInf32 int32 = math.MinInt32 / 4

// scoreBytes is the working-buffer element size; Stats.WorkBytes is
// computed from it so the modeled footprint matches the real buffers.
const scoreBytes = 4

// bufPad is the number of −∞ guard cells kept on each side of a stored
// antidiagonal window. A row d reads its predecessors at most one (d−1)
// or two (d−2) cells beyond their computed windows — the guards answer
// those reads with −∞ directly, eliminating the per-neighbor window
// bounds checks the old adiag.at performed in the inner loop.
const bufPad = 2

// seedDiag initialises a buffer to the one-cell window {0: v} with its
// guards — the state of antidiagonal 0 (or, with v = negInf32, the
// placeholder for the not-yet-existing antidiagonal −1).
func seedDiag(b []int32, v int32) {
	b[0], b[1], b[2], b[3], b[4] = negInf32, negInf32, v, negInf32, negInf32
}

// setGuards writes the −∞ guard cells around a freshly computed window of
// the given width. O(1) per antidiagonal; it is what lets the inner loops
// read neighbors without window checks.
func setGuards(buf []int32, width int) {
	buf[0], buf[1] = negInf32, negInf32
	buf[width+bufPad], buf[width+bufPad+1] = negInf32, negInf32
}

// growBuf32 returns a buffer holding n window cells plus the guards,
// reusing b's storage when it is large enough.
func growBuf32(b []int32, n int) []int32 {
	n += 2 * bufPad
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int32, n)
}

// pruneLimit returns the X-Drop cutoff T−X for the current antidiagonal,
// clamped so that a pruned cell (negInf32) plus any per-symbol score
// still compares below it — i.e. pruned cells can never resurrect, even
// for enormous X.
func pruneLimit(t int32, x int) int32 {
	l := int(t) - x
	if l < int(negInf32)/2 {
		return negInf32 / 2
	}
	return int32(l)
}

// dir resolves the view's direction once per extension: the symbol read
// by DP column i is data[org+step*i]. This replaces the per-cell
// direction branch of View.At in the kernel inner loops.
func (v View) dir() (step, org int) {
	if v.rev {
		// Column i reads logical symbol i−1, i.e. data[len−1−(i−1)].
		return -1, len(v.data)
	}
	return 1, -1
}

// vdir is dir for the vertical sequence, whose symbol index also depends
// on the antidiagonal: column i of antidiagonal d reads symbol j−1 with
// j = d−i, i.e. data[org + dd*d + step*i].
func (v View) vdir() (step, dd, org int) {
	if v.rev {
		return 1, -1, len(v.data)
	}
	return -1, 1, -1
}

// Workspace holds reusable DP buffers so a long-lived aligner (one per
// simulated IPU thread) performs no per-alignment allocation. The zero
// value is ready to use; buffers grow on demand.
type Workspace struct {
	b0, b1, b2     []int32
	e0, e1, f0, f1 []int32
	// Narrow-tier (int16) buffers; allocated only when a narrow kernel
	// actually runs, so wide-only workloads pay nothing.
	nb0, nb1, nb2      []int16
	ne0, ne1, nf0, nf1 []int16
	// tb is the traceback replay's state (rows, window index, packed
	// direction codes); see traceback.go. Untouched by the score pass.
	tb tracer
}

// statAcc accumulates the per-antidiagonal trace counters in plain locals
// so the kernel inner loops touch registers, not Stats memory; kernels
// flush it into the Result once per extension.
type statAcc struct {
	antid               int
	cells               int64
	chunks32, chunks128 int64
	maxLive             int
}

func (a *statAcc) observe(computedWidth, liveWidth int) {
	a.antid++
	a.cells += int64(computedWidth)
	a.chunks32 += int64((computedWidth + 31) / 32)
	a.chunks128 += int64((computedWidth + 127) / 128)
	if liveWidth > a.maxLive {
		a.maxLive = liveWidth
	}
}

func (a *statAcc) flush(s *Stats) {
	s.Antidiagonals += a.antid
	s.Cells += a.cells
	s.SumComputedBand += a.cells
	s.Chunks32 += a.chunks32
	s.Chunks128 += a.chunks128
	if a.maxLive > s.MaxLiveBand {
		s.MaxLiveBand = a.maxLive
	}
}
