package core

// Restricted2 runs the paper's memory-restricted X-Drop extension
// (Algorithm 1). It allocates its own workspace; use
// (*Workspace).Restricted2 in hot loops.
func Restricted2(h, v View, p Params) Result {
	var w Workspace
	return w.Restricted2(h, v, p)
}

// Restricted2 is the paper's contribution (§3): an X-Drop extension that
// stores only two antidiagonals of bounded length δb (2δb scores total
// instead of Standard3's 3δ).
//
// Two ideas compose:
//
//  1. Gotoh's observation that two antidiagonals suffice — antidiagonal d
//     overwrites d−2 in place, carrying the one value that would be
//     clobbered (the diagonal predecessor) in a scalar (w_last in
//     Algorithm 1). This is safe because the live lower bound L never
//     decreases, so writes trail reads.
//  2. A dynamic working band: the buffers hold only δb cells, and the
//     window is re-aligned every iteration to the live region. If the
//     live region would outgrow δb it is clamped around the current
//     best-scoring cell and Stats.Clamped is set (the paper chooses
//     δb ≥ δw so this does not trigger on real data; §6.1).
//
// DeltaB = 0 (or ≥ δ) reproduces the unrestricted search space exactly.
//
// The kernel runs on NegInf-padded int32 buffers (see dp32.go): the view
// direction is resolved to byte-row slices once per extension, the i=0
// and j=0 boundary cells are peeled out of the inner loop, and interior
// cells read their neighbors through exact-length row slices with no
// direction branches and no window checks. The live sub-window is
// recovered by scanning the stored row's pruned fringes instead of
// branching on liveness per cell, and trace counters accumulate in
// locals (statAcc), flushed once at the end.
func (w *Workspace) Restricted2(h, v View, p Params) Result {
	m, n := h.Len(), v.Len()
	delta := min(m, n) + 1
	capacity := delta
	if p.DeltaB > 0 && p.DeltaB < delta {
		capacity = p.DeltaB
	}
	w.b1 = growBuf32(w.b1, capacity)
	w.b2 = growBuf32(w.b2, capacity)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        2 * capacity * scoreBytes,
	}}

	tab := p.Scorer.Table()
	gap := int32(p.Gap)
	hb, vb := h.data, v.data
	hStep, hOrg := h.dir()
	vStep, vD, vOrg := v.vdir()

	// d1b holds antidiagonal d−1; d2b holds d−2 and is overwritten in
	// place by d. Window starts and the live bounds of d−1 rotate as
	// plain scalars.
	d1b, d2b := w.b1, w.b2
	seedDiag(d1b, 0)
	seedDiag(d2b, negInf32)
	d1cl, d1lo, d1hi := 0, 0, 0
	d2cl := 0

	var acc statAcc
	acc.observe(1, 1)

	best, t := int32(0), int32(0)
	bestI, bestD := 0, 0
	rowBestI := 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		if cu-cl+1 > capacity {
			// Re-align the working window around the best-scoring
			// cell of the previous antidiagonal (§3: the band is
			// "constantly realigned to the active iteration
			// position that stores the best score").
			res.Stats.Clamped = true
			ncl := rowBestI - capacity/2
			if ncl < cl {
				ncl = cl
			}
			if ncl > cu-capacity+1 {
				ncl = cu - capacity + 1
			}
			cl = ncl
			cu = cl + capacity - 1
		}

		limit := pruneLimit(t, p.X)
		// rowBest tracks only the value in the hot loops (a single
		// compare-and-move); its index is recovered afterwards by an
		// equality scan that stops at the first argmax, matching the
		// first-wins tie-breaking of a scalar best chain.
		rowBest := negInf32
		lo, hi := -1, -1
		o1 := bufPad - d1cl
		o2 := bufPad - d2cl
		oo := bufPad - cl
		out := d2b // antidiagonal d overwrites d−2 in place
		// wlast carries the d−2 value at i−1 (the diagonal
		// predecessor), which the in-place write would clobber.
		wlast := out[cl-1+o2]

		i := cl
		if i == 0 {
			// Top boundary (j = d): only the vertical gap move exists.
			wnew := out[o2]
			s := d1b[o1] + gap
			if s < limit {
				s = negInf32
			}
			if s > rowBest {
				rowBest = s
			}
			out[oo] = s
			wlast = wnew
			i = 1
		}
		iB := cu
		peelDiag := cu == d // bottom boundary cell (j = 0) exists
		if peelDiag {
			iB = cu - 1
		}
		if cnt := iB - i + 1; cnt > 0 {
			base := i
			// Exact-length row slices: the compiler proves almost all
			// k accesses in range, so the inner loops are close to
			// bounds-check-free. outRow aliases d2v shifted left by
			// cl−d2cl cells; wnew is read before outRow[k] is stored,
			// and writes trail reads because cl never decreases.
			outRow := out[base+oo:][:cnt]
			d2v := out[base+o2:][:cnt]
			d1r := d1b[base+o1:][:cnt]
			dlv := d1b[base-1+o1]
			switch {
			case !h.rev && !v.rev:
				hRow := hb[base-1:][:cnt]
				vRow := vb[d-base-cnt:][:cnt]
				// Two cells per iteration: both d−2 reads issue before
				// the pair of in-place stores, so the may-alias
				// load/store pairs serialize half as often.
				k := 0
				for ; k+1 < cnt; k += 2 {
					w0, w1 := d2v[k], d2v[k+1]
					s0 := wlast + int32(tab[hRow[k]][vRow[cnt-1-k]])
					drv0 := d1r[k]
					if g := max(dlv, drv0) + gap; g > s0 {
						s0 = g
					}
					if s0 < limit {
						s0 = negInf32
					}
					if s0 > rowBest {
						rowBest = s0
					}
					outRow[k] = s0
					s1 := w0 + int32(tab[hRow[k+1]][vRow[cnt-2-k]])
					drv1 := d1r[k+1]
					if g := max(drv0, drv1) + gap; g > s1 {
						s1 = g
					}
					if s1 < limit {
						s1 = negInf32
					}
					if s1 > rowBest {
						rowBest = s1
					}
					outRow[k+1] = s1
					dlv = drv1
					wlast = w1
				}
				if k < cnt {
					wnew := d2v[k]
					s := wlast + int32(tab[hRow[k]][vRow[cnt-1-k]])
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf32
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
					wlast = wnew
				}
			case h.rev && v.rev:
				hRow := hb[m-base-cnt+1:][:cnt]
				vRow := vb[n-d+base:][:cnt]
				k := 0
				for ; k+1 < cnt; k += 2 {
					w0, w1 := d2v[k], d2v[k+1]
					s0 := wlast + int32(tab[hRow[cnt-1-k]][vRow[k]])
					drv0 := d1r[k]
					if g := max(dlv, drv0) + gap; g > s0 {
						s0 = g
					}
					if s0 < limit {
						s0 = negInf32
					}
					if s0 > rowBest {
						rowBest = s0
					}
					outRow[k] = s0
					s1 := w0 + int32(tab[hRow[cnt-2-k]][vRow[k+1]])
					drv1 := d1r[k+1]
					if g := max(drv0, drv1) + gap; g > s1 {
						s1 = g
					}
					if s1 < limit {
						s1 = negInf32
					}
					if s1 > rowBest {
						rowBest = s1
					}
					outRow[k+1] = s1
					dlv = drv1
					wlast = w1
				}
				if k < cnt {
					wnew := d2v[k]
					s := wlast + int32(tab[hRow[cnt-1-k]][vRow[k]])
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf32
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
					wlast = wnew
				}
			default:
				// Mixed-direction views (never produced by the seed
				// extension paths): generic index cursors.
				hIdx := hOrg + hStep*base
				vIdx := vOrg + vD*d + vStep*base
				for k := range outRow {
					wnew := d2v[k]
					s := wlast + int32(tab[hb[hIdx]][vb[vIdx]])
					hIdx += hStep
					vIdx += vStep
					drv := d1r[k]
					if g := max(dlv, drv) + gap; g > s {
						s = g
					}
					dlv = drv
					if s < limit {
						s = negInf32
					}
					if s > rowBest {
						rowBest = s
					}
					outRow[k] = s
					wlast = wnew
				}
			}
			i = iB + 1
		}
		if peelDiag {
			// Bottom boundary (j = 0): only the horizontal gap move.
			s := d1b[i-1+o1] + gap
			if s < limit {
				s = negInf32
			}
			if s > rowBest {
				rowBest = s
			}
			out[i+oo] = s
		}
		width := cu - cl + 1
		setGuards(out, width)

		// Recover the live sub-window and the row maximum from the
		// stored row: cheaper than branching on liveness and best-so-far
		// per cell inside the DP loop.
		row := out[bufPad:][:width]
		for k := 0; k < width; k++ {
			if row[k] != negInf32 {
				lo = cl + k
				break
			}
		}
		rowBestI = -1
		if lo >= 0 {
			for k := width - 1; ; k-- {
				if row[k] != negInf32 {
					hi = cl + k
					break
				}
			}
			for k := lo - cl; ; k++ {
				if row[k] == rowBest {
					rowBestI = cl + k
					break
				}
			}
		}

		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		acc.observe(width, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		d1b, d2b = d2b, d1b
		d2cl = d1cl
		d1cl, d1lo, d1hi = cl, lo, hi
	}

	acc.flush(&res.Stats)
	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	return res
}
