package core

// Restricted2 runs the paper's memory-restricted X-Drop extension
// (Algorithm 1). It allocates its own workspace; use
// (*Workspace).Restricted2 in hot loops.
func Restricted2(h, v View, p Params) Result {
	var w Workspace
	return w.Restricted2(h, v, p)
}

// Restricted2 is the paper's contribution (§3): an X-Drop extension that
// stores only two antidiagonals of bounded length δb (2δb scores total
// instead of Standard3's 3δ).
//
// Two ideas compose:
//
//  1. Gotoh's observation that two antidiagonals suffice — antidiagonal d
//     overwrites d−2 in place, carrying the one value that would be
//     clobbered (the diagonal predecessor) in a scalar (w_last in
//     Algorithm 1). This is safe because the live lower bound L never
//     decreases, so writes trail reads.
//  2. A dynamic working band: the buffers hold only δb cells, and the
//     window is re-aligned every iteration to the live region. If the
//     live region would outgrow δb it is clamped around the current
//     best-scoring cell and Stats.Clamped is set (the paper chooses
//     δb ≥ δw so this does not trigger on real data; §6.1).
//
// DeltaB = 0 (or ≥ δ) reproduces the unrestricted search space exactly.
func (w *Workspace) Restricted2(h, v View, p Params) Result {
	m, n := h.Len(), v.Len()
	delta := minI(m, n) + 1
	capacity := delta
	if p.DeltaB > 0 && p.DeltaB < delta {
		capacity = p.DeltaB
	}
	w.b1 = growBuf(w.b1, capacity)
	w.b2 = growBuf(w.b2, capacity)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        2 * capacity * 4,
	}}

	tab := p.Scorer.Table()
	gap := p.Gap

	// d1 holds antidiagonal d−1; d2 holds d−2 and is overwritten by d.
	d1 := adiag{buf: w.b1}
	d2 := adiag{buf: w.b2}
	d2.reset()
	d1.buf[0] = 0
	d1.cl, d1.cu, d1.lo, d1.hi = 0, 0, 0, 0
	res.Stats.observe(1, 1)

	best, bestI, bestD := 0, 0, 0
	rowBestI := 0
	t := 0

	for d := 1; d <= m+n; d++ {
		cl := maxI(d1.lo, maxI(0, d-n))
		cu := minI(d1.hi+1, minI(d, m))
		if cl > cu {
			break
		}
		if cu-cl+1 > capacity {
			// Re-align the working window around the best-scoring
			// cell of the previous antidiagonal (§3: the band is
			// "constantly realigned to the active iteration
			// position that stores the best score").
			res.Stats.Clamped = true
			ncl := rowBestI - capacity/2
			if ncl < cl {
				ncl = cl
			}
			if ncl > cu-capacity+1 {
				ncl = cu - capacity + 1
			}
			cl = ncl
			cu = cl + capacity - 1
		}

		rowBest := NegInf
		rowBestI = -1
		lo, hi := -1, -1
		out := d2.buf // antidiagonal d overwrites d−2 in place
		// wlast carries the d−2 value at i−1 (the diagonal
		// predecessor), which the in-place write would clobber.
		wlast := d2.at(cl - 1)
		for i := cl; i <= cu; i++ {
			j := d - i
			wnew := d2.at(i) // read before the write below
			s := NegInf
			if i > 0 && j > 0 {
				s = wlast + int(tab[h.At(i-1)][v.At(j-1)])
			}
			if i > 0 {
				if g := d1.at(i-1) + gap; g > s {
					s = g
				}
			}
			if j > 0 {
				if g := d1.at(i) + gap; g > s {
					s = g
				}
			}
			if s < t-p.X {
				s = NegInf
			} else {
				if lo < 0 {
					lo = i
				}
				hi = i
				if s > rowBest {
					rowBest, rowBestI = s, i
				}
			}
			out[i-cl] = s
			wlast = wnew
		}
		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		res.Stats.observe(cu-cl+1, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		d2.cl, d2.cu, d2.lo, d2.hi = cl, cu, lo, hi
		d1, d2 = d2, d1
	}

	res.Score = best
	res.EndH = bestI
	res.EndV = bestD - bestI
	return res
}
