// Package core implements the paper's primary contribution: the X-Drop
// semi-global alignment algorithm family, including the memory-restricted
// two-antidiagonal variant (Algorithm 1) designed for SRAM-based processors.
//
// Four score-compatible variants are provided:
//
//   - Reference: full-matrix oracle with the same live-window semantics,
//     used for testing and for rendering search-space figures.
//   - Standard3: Zhang's three-antidiagonal formulation (3δ memory), the
//     search space used by SeqAn and LOGAN.
//   - Restricted2: the paper's contribution — two antidiagonals of bounded
//     length δb (2δb memory), with the working window re-aligned to the
//     active best-scoring region each iteration (§3, Algorithm 1).
//   - Affine: Gotoh affine-gap X-Drop with ksw2-style penalties, backing the
//     ksw2 baseline (§6.2).
//
// All variants share identical recurrence and pruning semantics: a cell
// whose score falls below T−X, where T is the best score seen on previous
// antidiagonals, is removed from the search space (set to −∞).
package core

import (
	"fmt"
	"math"

	"github.com/sram-align/xdropipu/internal/scoring"
)

// NegInf is the pruned-cell sentinel. It is far enough from the integer
// minimum that adding similarity scores or gap penalties cannot wrap.
const NegInf = math.MinInt / 4

// View is the op(·) index transformation of §4.1.1: it presents a byte
// slice either forwards or backwards without copying, so left seed
// extensions can run on contiguous memory in reverse.
type View struct {
	data []byte
	rev  bool
}

// NewView wraps b for forward access.
func NewView(b []byte) View { return View{data: b} }

// NewReversedView wraps b for backward access: At(0) is the last byte.
func NewReversedView(b []byte) View { return View{data: b, rev: true} }

// Len returns the number of accessible symbols.
func (v View) Len() int { return len(v.data) }

// At returns the i-th symbol under the view's direction.
func (v View) At(i int) byte {
	if v.rev {
		return v.data[len(v.data)-1-i]
	}
	return v.data[i]
}

// Reversed reports whether the view reads backwards.
func (v View) Reversed() bool { return v.rev }

// Bytes materialises the view (test helper; the kernels never copy).
func (v View) Bytes() []byte {
	out := make([]byte, len(v.data))
	for i := range out {
		out[i] = v.At(i)
	}
	return out
}

// Algo selects an X-Drop implementation.
type Algo uint8

const (
	// AlgoRestricted2 is the paper's memory-restricted algorithm.
	AlgoRestricted2 Algo = iota
	// AlgoStandard3 is Zhang's three-antidiagonal algorithm.
	AlgoStandard3
	// AlgoReference is the full-matrix oracle.
	AlgoReference
	// AlgoAffine is the Gotoh affine-gap variant (ksw2 baseline).
	AlgoAffine
)

// String names the algorithm for reports.
func (a Algo) String() string {
	switch a {
	case AlgoRestricted2:
		return "restricted2"
	case AlgoStandard3:
		return "standard3"
	case AlgoReference:
		return "reference"
	case AlgoAffine:
		return "affine"
	default:
		return fmt.Sprintf("Algo(%d)", uint8(a))
	}
}

// Params configures an X-Drop extension.
type Params struct {
	// Scorer provides symbol-pair similarity (Sim of §2.2).
	Scorer scoring.Scorer
	// Gap is the linear gap penalty; it must be negative.
	Gap int
	// X is the drop threshold (≥ 0): cells scoring below best−X are pruned.
	X int
	// DeltaB bounds the working antidiagonal length of Restricted2
	// (δb of §3). Zero means "unbounded", i.e. δ = min(m,n)+1.
	DeltaB int
	// GapOpen is the extra affine gap-open penalty (negative); only the
	// Affine variant reads it.
	GapOpen int
	// Algo selects the implementation used by Align.
	Algo Algo
	// Tier selects the kernel score width (see dp16.go). The zero value
	// is TierWide; TierNarrow/TierAuto opt in to the int16 kernels with
	// transparent overflow promotion back to int32.
	Tier Tier
}

// Validate reports a descriptive error for out-of-range parameters.
func (p *Params) Validate() error {
	if p.Scorer == nil {
		return fmt.Errorf("core: Params.Scorer is nil")
	}
	if p.Gap >= 0 {
		return fmt.Errorf("core: gap penalty must be negative, got %d", p.Gap)
	}
	if p.X < 0 {
		return fmt.Errorf("core: X must be non-negative, got %d", p.X)
	}
	if p.DeltaB < 0 {
		return fmt.Errorf("core: DeltaB must be non-negative, got %d", p.DeltaB)
	}
	if p.GapOpen > 0 {
		return fmt.Errorf("core: GapOpen must be non-positive, got %d", p.GapOpen)
	}
	return nil
}

// Stats records the execution trace of one extension. Platform cost models
// (internal/platform) consume these to derive modeled run times, and the
// δw experiments (Fig. 6, §6.1) read MaxLiveBand.
type Stats struct {
	// Antidiagonals is the number of DP antidiagonals processed.
	Antidiagonals int
	// Cells is the number of DP cells actually computed.
	Cells int64
	// MaxLiveBand is δw: the maximum live-window width max|U−L|+1.
	MaxLiveBand int
	// SumComputedBand accumulates the computed-window width per
	// antidiagonal (equals Cells; kept separate for clarity in models).
	SumComputedBand int64
	// Chunks32 sums ceil(width/32) over antidiagonals (GPU warp model).
	Chunks32 int64
	// Chunks128 sums ceil(width/128) over antidiagonals (GPU block model).
	Chunks128 int64
	// Clamped reports whether Restricted2 had to shrink the live window
	// to respect DeltaB (result may then be a lower bound on the score).
	Clamped bool
	// TheoreticalCells is m·n, the denominator-free GCUPS numerator
	// (§5.1 defines GCUPS over the full matrix size).
	TheoreticalCells int64
	// WorkBytes is the modeled device memory footprint of the variant's
	// working buffers at the tier's score width: 4-byte scores on the
	// wide tier (3δ·4 for Standard3, 2δb·4 for Restricted2; §3, Fig. 3),
	// 2-byte scores on the narrow tier.
	WorkBytes int
	// Narrow reports that the extension completed on the int16 kernel
	// tier. Promoted reports that a narrow attempt saturated and the
	// extension transparently re-ran on the int32 tier (its Stats are
	// those of the wide re-run). Both false means a plain wide run.
	Narrow bool
	// Promoted is set with Narrow == false: the wide re-run produced the
	// result. See dp16.go for the saturation guard.
	Promoted bool
}

func (s *Stats) observe(computedWidth, liveWidth int) {
	s.Antidiagonals++
	s.Cells += int64(computedWidth)
	s.SumComputedBand += int64(computedWidth)
	s.Chunks32 += int64((computedWidth + 31) / 32)
	s.Chunks128 += int64((computedWidth + 127) / 128)
	if liveWidth > s.MaxLiveBand {
		s.MaxLiveBand = liveWidth
	}
}

// add merges another trace (used when combining left+right extensions).
func (s *Stats) add(o Stats) {
	s.Antidiagonals += o.Antidiagonals
	s.Cells += o.Cells
	s.SumComputedBand += o.SumComputedBand
	s.Chunks32 += o.Chunks32
	s.Chunks128 += o.Chunks128
	if o.MaxLiveBand > s.MaxLiveBand {
		s.MaxLiveBand = o.MaxLiveBand
	}
	s.Clamped = s.Clamped || o.Clamped
	s.TheoreticalCells += o.TheoreticalCells
	if o.WorkBytes > s.WorkBytes {
		s.WorkBytes = o.WorkBytes
	}
	// A merged trace is "narrow" only if every constituent ran narrow,
	// and "promoted" if any constituent promoted.
	s.Narrow = s.Narrow && o.Narrow
	s.Promoted = s.Promoted || o.Promoted
}

// Result is the outcome of one semi-global X-Drop extension.
type Result struct {
	// Score is the best alignment score found (T in Algorithm 1).
	Score int
	// EndH and EndV are the number of symbols of H and V consumed by the
	// best-scoring cell (the extension end point).
	EndH, EndV int
	// Stats is the execution trace.
	Stats Stats
}

// Align runs the extension selected by p.Algo (and p.Tier) on views h
// and v.
func Align(h, v View, p Params) Result {
	var w Workspace
	return w.align(h, v, p)
}
