package core

import (
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu/internal/scoring"
)

// TestTracerTrimReleasesOversizedBuffers is the allocation-regression
// test for the pooled-workspace retention bug: one outlier traceback
// used to pin its worst-case recording arena on the workspace forever.
// After an oversized replay every recording buffer past
// tracerRetainBytes must be released, and a subsequent ordinary
// traceback must leave only modest warm buffers behind.
func TestTracerTrimReleasesOversizedBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// ~20k x 20k at DeltaB=512 records ~40k antidiagonals x ~1k-wide
	// band: ~10 MB of packed direction codes, far past the 1 MiB
	// retention threshold. X=200 keeps the low-divergence extension
	// alive end to end.
	h := randDNA(rng, 20000)
	v := mutate(rng, h, 0.02)
	p := Params{Scorer: scoring.DNADefault, Gap: -1, X: 200, DeltaB: 512, Algo: AlgoRestricted2}

	var ws Workspace
	tr, err := ws.TracebackRight(h, v, 0, 0, p)
	if err != nil {
		t.Fatalf("oversized traceback: %v", err)
	}
	if tr.TraceBytes <= tracerRetainBytes {
		t.Fatalf("test geometry too small: TraceBytes %d <= retention threshold %d", tr.TraceBytes, tracerRetainBytes)
	}
	if c := cap(ws.tb.dirs); c != 0 {
		t.Fatalf("direction buffer retained after oversized replay: cap %d", c)
	}
	if c := cap(ws.tb.ops); c > tracerRetainBytes {
		t.Fatalf("ops buffer retained past threshold: cap %d", c)
	}
	if c := cap(ws.tb.codes); c > tracerRetainBytes {
		t.Fatalf("codes scratch retained past threshold: cap %d", c)
	}
	if c := cap(ws.tb.cls) * 4; c > tracerRetainBytes {
		t.Fatalf("cls buffer retained past threshold: %d bytes", c)
	}
	if c := cap(ws.tb.offs) * 4; c > tracerRetainBytes {
		t.Fatalf("offs buffer retained past threshold: %d bytes", c)
	}

	// A small follow-up replay on the same (pooled) workspace must work
	// and leave only sub-threshold buffers warm.
	sh := randDNA(rng, 300)
	sv := mutate(rng, sh, 0.05)
	sp := Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256, Algo: AlgoRestricted2}
	if _, err := ws.TracebackRight(sh, sv, 0, 0, sp); err != nil {
		t.Fatalf("small traceback after trim: %v", err)
	}
	if c := cap(ws.tb.dirs); c == 0 || c > tracerRetainBytes {
		t.Fatalf("small replay should leave a warm sub-threshold dirs buffer, got cap %d", c)
	}
}
