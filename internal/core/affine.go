package core

// Affine runs a Gotoh affine-gap X-Drop extension. It allocates its own
// workspace; use (*Workspace).Affine in hot loops.
func Affine(h, v View, p Params) Result {
	var w Workspace
	return w.Affine(h, v, p)
}

// Affine is the affine-gap (Gotoh) X-Drop extension backing the ksw2-like
// baseline (§6.2). A gap of length k costs GapOpen + k·Gap, so with
// ksw2-style penalties long gaps are penalised less per column than under
// the linear scheme, which genuinely enlarges the live search space — the
// behaviour the paper names as the reason ksw2 trails SeqAn.
//
// The recurrence keeps three channels per cell:
//
//	E(i,j) = max(E(i,j−1), H(i,j−1)+GapOpen) + Gap
//	F(i,j) = max(F(i−1,j), H(i−1,j)+GapOpen) + Gap
//	H(i,j) = max(H(i−1,j−1)+Sim(h_i,v_j), E(i,j), F(i,j))
//
// X-Drop pruning applies to every channel against the running best T.
// A cell is live while any channel survives; at the boundaries the H
// value equals the single surviving gap channel.
//
// Like the linear kernels, the loops run on NegInf-padded int32 buffers
// (see dp32.go) with the view direction resolved to byte-row slices once
// per extension, boundary cells peeled, liveness recovered by scanning
// the stored channels, and trace counters accumulated in locals.
func (w *Workspace) Affine(h, v View, p Params) Result {
	m, n := h.Len(), v.Len()
	delta := min(m, n) + 1
	w.b0 = growBuf32(w.b0, delta)
	w.b1 = growBuf32(w.b1, delta)
	w.b2 = growBuf32(w.b2, delta)
	w.e0 = growBuf32(w.e0, delta)
	w.e1 = growBuf32(w.e1, delta)
	w.f0 = growBuf32(w.f0, delta)
	w.f1 = growBuf32(w.f1, delta)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        7 * delta * scoreBytes,
	}}

	tab := p.Scorer.Table()
	gape := int32(p.Gap)
	gapo := int32(p.GapOpen)
	// Hoist the gap-open+extend sum: max(a,b)+c ≡ max(a+c, b+c) (exact —
	// int32 working values are orders of magnitude inside the range), so
	// each E/F update is two independent adds feeding one max instead of
	// the serial add→max→add chain the textbook recurrence spells.
	goe := gapo + gape
	hb, vb := h.data, v.data
	hStep, hOrg := h.dir()
	vStep, vD, vOrg := v.vdir()

	// d1 buffers hold antidiagonal d−1 (all three channels), d2h holds
	// d−2 (only H is read from it); out* are written for d. Window
	// starts and the live bounds of d−1 rotate as plain scalars.
	d1h, d1e, d1f := w.b1, w.e1, w.f1
	d2h := w.b2
	outH, outE, outF := w.b0, w.e0, w.f0
	seedDiag(d1h, 0)
	seedDiag(d1e, negInf32)
	seedDiag(d1f, negInf32)
	seedDiag(d2h, negInf32)
	d1cl, d1lo, d1hi := 0, 0, 0
	d2cl := 0

	var acc statAcc
	acc.observe(1, 1)

	best, t := int32(0), int32(0)
	bestI, bestD := 0, 0

	for d := 1; d <= m+n; d++ {
		cl := max(d1lo, max(0, d-n))
		cu := min(d1hi+1, min(d, m))
		if cl > cu {
			break
		}
		limit := pruneLimit(t, p.X)
		lo, hi := -1, -1
		o1 := bufPad - d1cl
		o2 := bufPad - d2cl
		oo := bufPad - cl

		i := cl
		if i == 0 {
			// Top boundary (j = d): only the E channel exists, and it
			// is also the cell's H value (H = max(−∞, E, −∞)).
			e := max(d1e[o1]+gape, d1h[o1]+goe)
			if e < limit {
				e = negInf32
			}
			outH[oo], outE[oo], outF[oo] = e, e, negInf32
			i = 1
		}
		iB := cu
		peelDiag := cu == d // bottom boundary cell (j = 0) exists
		if peelDiag {
			iB = cu - 1
		}
		if cnt := iB - i + 1; cnt > 0 {
			base := i
			// Exact-length row slices; d1's H and F values at i−1 are
			// carried in registers instead of re-loaded.
			ohRow := outH[base+oo:][:cnt]
			oeRow := outE[base+oo:][:cnt]
			ofRow := outF[base+oo:][:cnt]
			d2v := d2h[base-1+o2:][:cnt]
			d1hr := d1h[base+o1:][:cnt]
			d1er := d1e[base+o1:][:cnt]
			d1fr := d1f[base+o1:][:cnt]
			hlv := d1h[base-1+o1]
			flv := d1f[base-1+o1]
			switch {
			case !h.rev && !v.rev:
				hRow := hb[base-1:][:cnt]
				vRow := vb[d-base-cnt:][:cnt]
				for k := range ohRow {
					hrv := d1hr[k]
					e := max(d1er[k]+gape, hrv+goe)
					f := max(flv+gape, hlv+goe)
					flv = d1fr[k]
					s := d2v[k] + int32(tab[hRow[k]][vRow[cnt-1-k]])
					hlv = hrv
					if e > s {
						s = e
					}
					if f > s {
						s = f
					}
					if s < limit {
						s = negInf32
					}
					if e < limit {
						e = negInf32
					}
					if f < limit {
						f = negInf32
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
				}
			case h.rev && v.rev:
				hRow := hb[m-base-cnt+1:][:cnt]
				vRow := vb[n-d+base:][:cnt]
				for k := range ohRow {
					hrv := d1hr[k]
					e := max(d1er[k]+gape, hrv+goe)
					f := max(flv+gape, hlv+goe)
					flv = d1fr[k]
					s := d2v[k] + int32(tab[hRow[cnt-1-k]][vRow[k]])
					hlv = hrv
					if e > s {
						s = e
					}
					if f > s {
						s = f
					}
					if s < limit {
						s = negInf32
					}
					if e < limit {
						e = negInf32
					}
					if f < limit {
						f = negInf32
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
				}
			default:
				// Mixed-direction views (never produced by the seed
				// extension paths): generic index cursors.
				hIdx := hOrg + hStep*base
				vIdx := vOrg + vD*d + vStep*base
				for k := range ohRow {
					hrv := d1hr[k]
					e := max(d1er[k]+gape, hrv+goe)
					f := max(flv+gape, hlv+goe)
					flv = d1fr[k]
					s := d2v[k] + int32(tab[hb[hIdx]][vb[vIdx]])
					hIdx += hStep
					vIdx += vStep
					hlv = hrv
					if e > s {
						s = e
					}
					if f > s {
						s = f
					}
					if s < limit {
						s = negInf32
					}
					if e < limit {
						e = negInf32
					}
					if f < limit {
						f = negInf32
					}
					ohRow[k], oeRow[k], ofRow[k] = s, e, f
				}
			}
			i = iB + 1
		}
		if peelDiag {
			// Bottom boundary (j = 0): only the F channel exists, and
			// it is also the cell's H value (H = max(−∞, −∞, F)).
			f := max(d1f[i-1+o1]+gape, d1h[i-1+o1]+goe)
			if f < limit {
				f = negInf32
			}
			k := i + oo
			outH[k], outE[k], outF[k] = f, negInf32, f
		}
		width := cu - cl + 1
		setGuards(outH, width)
		setGuards(outE, width)
		setGuards(outF, width)

		// Recover the live sub-window (any surviving channel) and the
		// row's best H from the stored channels: cheaper than branching
		// on liveness and best-so-far per cell inside the DP loop.
		rowH := outH[bufPad:][:width]
		rowE := outE[bufPad:][:width]
		rowF := outF[bufPad:][:width]
		for k := 0; k < width; k++ {
			if rowH[k] != negInf32 || rowE[k] != negInf32 || rowF[k] != negInf32 {
				lo = cl + k
				break
			}
		}
		rowBest, rowBestI := negInf32, -1
		if lo >= 0 {
			for k := width - 1; ; k-- {
				if rowH[k] != negInf32 || rowE[k] != negInf32 || rowF[k] != negInf32 {
					hi = cl + k
					break
				}
			}
			for k := lo - cl; k <= hi-cl; k++ {
				if s := rowH[k]; s > rowBest {
					rowBest, rowBestI = s, cl+k
				}
			}
		}

		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		acc.observe(width, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		// Rotate: the d−2 H buffer becomes the next H write target; the
		// E/F channels ping-pong between d−1 and the write target.
		d2h, d1h, outH = d1h, outH, d2h
		d1e, outE = outE, d1e
		d1f, outF = outF, d1f
		d2cl = d1cl
		d1cl, d1lo, d1hi = cl, lo, hi
	}

	acc.flush(&res.Stats)
	res.Score = int(best)
	res.EndH = bestI
	res.EndV = bestD - bestI
	return res
}
