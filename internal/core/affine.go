package core

// affDiag stores one antidiagonal of the affine recurrence: the match
// channel H plus the two gap channels E (gaps consuming V) and F (gaps
// consuming H), over a shared computed window.
type affDiag struct {
	h, e, f []int
	cl, cu  int
	lo, hi  int
}

func (a *affDiag) reset() {
	a.cl, a.cu = 0, -1
	a.lo, a.hi = 0, -1
}

func (a *affDiag) atH(i int) int {
	if i < a.cl || i > a.cu {
		return NegInf
	}
	return a.h[i-a.cl]
}

func (a *affDiag) atE(i int) int {
	if i < a.cl || i > a.cu {
		return NegInf
	}
	return a.e[i-a.cl]
}

func (a *affDiag) atF(i int) int {
	if i < a.cl || i > a.cu {
		return NegInf
	}
	return a.f[i-a.cl]
}

// Affine runs a Gotoh affine-gap X-Drop extension. It allocates its own
// workspace; use (*Workspace).Affine in hot loops.
func Affine(h, v View, p Params) Result {
	var w Workspace
	return w.Affine(h, v, p)
}

// Affine is the affine-gap (Gotoh) X-Drop extension backing the ksw2-like
// baseline (§6.2). A gap of length k costs GapOpen + k·Gap, so with
// ksw2-style penalties long gaps are penalised less per column than under
// the linear scheme, which genuinely enlarges the live search space — the
// behaviour the paper names as the reason ksw2 trails SeqAn.
//
// The recurrence keeps three channels per cell:
//
//	E(i,j) = max(E(i,j−1), H(i,j−1)+GapOpen) + Gap
//	F(i,j) = max(F(i−1,j), H(i−1,j)+GapOpen) + Gap
//	H(i,j) = max(H(i−1,j−1)+Sim(h_i,v_j), E(i,j), F(i,j))
//
// X-Drop pruning applies to every channel against the running best T.
func (w *Workspace) Affine(h, v View, p Params) Result {
	m, n := h.Len(), v.Len()
	delta := minI(m, n) + 1
	w.b0 = growBuf(w.b0, delta)
	w.b1 = growBuf(w.b1, delta)
	w.b2 = growBuf(w.b2, delta)
	w.e0 = growBuf(w.e0, delta)
	w.e1 = growBuf(w.e1, delta)
	w.f0 = growBuf(w.f0, delta)
	w.f1 = growBuf(w.f1, delta)

	res := Result{Stats: Stats{
		TheoreticalCells: int64(m) * int64(n),
		WorkBytes:        7 * delta * 4,
	}}

	tab := p.Scorer.Table()
	gape := p.Gap
	gapo := p.GapOpen

	// d1 holds antidiagonal d−1 (all three channels), d2 holds d−2
	// (only H is read from it), cur is written for d.
	d1 := affDiag{h: w.b1, e: w.e1, f: w.f1}
	d2 := affDiag{h: w.b2}
	cur := affDiag{h: w.b0, e: w.e0, f: w.f0}
	d2.reset()

	d1.h[0], d1.e[0], d1.f[0] = 0, NegInf, NegInf
	d1.cl, d1.cu, d1.lo, d1.hi = 0, 0, 0, 0
	res.Stats.observe(1, 1)

	best, bestI, bestD := 0, 0, 0
	t := 0

	for d := 1; d <= m+n; d++ {
		cl := maxI(d1.lo, maxI(0, d-n))
		cu := minI(d1.hi+1, minI(d, m))
		if cl > cu {
			break
		}
		rowBest, rowBestI := NegInf, -1
		lo, hi := -1, -1
		for i := cl; i <= cu; i++ {
			j := d - i
			e, f, s := NegInf, NegInf, NegInf
			if j > 0 {
				e = maxI(d1.atE(i), d1.atH(i)+gapo) + gape
			}
			if i > 0 {
				f = maxI(d1.atF(i-1), d1.atH(i-1)+gapo) + gape
			}
			if i > 0 && j > 0 {
				s = d2.atH(i-1) + int(tab[h.At(i-1)][v.At(j-1)])
			}
			s = maxI(s, maxI(e, f))
			limit := t - p.X
			if s < limit {
				s = NegInf
			}
			if e < limit {
				e = NegInf
			}
			if f < limit {
				f = NegInf
			}
			if s > NegInf || e > NegInf || f > NegInf {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
			if s > rowBest {
				rowBest, rowBestI = s, i
			}
			k := i - cl
			cur.h[k], cur.e[k], cur.f[k] = s, e, f
		}
		liveW := 0
		if lo >= 0 {
			liveW = hi - lo + 1
		}
		res.Stats.observe(cu-cl+1, liveW)
		if lo < 0 {
			break
		}
		if rowBest > best {
			best, bestI, bestD = rowBest, rowBestI, d
		}
		if rowBest > t {
			t = rowBest
		}
		cur.cl, cur.cu, cur.lo, cur.hi = cl, cu, lo, hi
		d2, d1, cur = d1, cur, affDiag{h: d2.h, e: d1.e, f: d1.f}
	}

	res.Score = best
	res.EndH = bestI
	res.EndV = bestD - bestI
	return res
}
