// Observability endpoints: GET /v1/stats serves the JSON snapshot a
// dashboard or autoscaler consumes (per-tenant admission counters,
// per-shard engine stats with derived occupancy/hit-rate signals), and
// GET /v1/metrics serves the same counters in Prometheus text exposition
// format via internal/metrics.WriteProm.

package service

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/metrics"
)

// ShardSnapshot is one engine shard's stats plus the derived autoscaling
// signals.
type ShardSnapshot struct {
	Shard int `json:"shard"`
	engine.Stats
	// QueueDepth is the shard's admission bound; QueueOccupancy is
	// JobsLive/QueueDepth — the primary scale-out signal.
	QueueDepth     int     `json:"queueDepth"`
	QueueOccupancy float64 `json:"queueOccupancy"`
	// CacheHitRate is hits/(hits+misses) over the shard's lifetime.
	CacheHitRate float64 `json:"cacheHitRate"`
}

// StatsReply is the GET /v1/stats payload.
type StatsReply struct {
	// Tenants maps tenant name to admission counters.
	Tenants map[string]tenantState `json:"tenants"`
	// Shards holds one snapshot per engine shard.
	Shards []ShardSnapshot `json:"shards"`
	// Totals aggregates the shard snapshots (sum of counters, max of
	// occupancy) — the single-glance autoscaling view.
	Totals ShardSnapshot `json:"totals"`
	// TrackedJobs counts jobs currently addressable (live + retained).
	TrackedJobs int `json:"trackedJobs"`
}

func (s *Server) snapshotShards() []ShardSnapshot {
	snaps := make([]ShardSnapshot, len(s.shards))
	for i, e := range s.shards {
		st := e.Stats()
		depth := e.QueueDepth()
		snaps[i] = ShardSnapshot{
			Shard: i, Stats: st, QueueDepth: depth,
			QueueOccupancy: float64(st.JobsLive) / float64(depth),
			CacheHitRate:   metrics.HitRate(st.CacheHits, st.CacheMisses),
		}
	}
	return snaps
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	shards := s.snapshotShards()
	var tot ShardSnapshot
	tot.Shard = -1
	for _, sn := range shards {
		tot.JobsDone += sn.JobsDone
		tot.BatchesDone += sn.BatchesDone
		tot.CellsDone += sn.CellsDone
		tot.JobsLive += sn.JobsLive
		tot.InflightBatches += sn.InflightBatches
		tot.CacheHits += sn.CacheHits
		tot.CacheMisses += sn.CacheMisses
		tot.CacheEvictions += sn.CacheEvictions
		tot.CacheBytes += sn.CacheBytes
		tot.NarrowExtensions += sn.NarrowExtensions
		tot.WideExtensions += sn.WideExtensions
		tot.PromotedExtensions += sn.PromotedExtensions
		tot.TracedExtensions += sn.TracedExtensions
		tot.TraceSkippedExtensions += sn.TraceSkippedExtensions
		tot.Retries += sn.Retries
		tot.Hedges += sn.Hedges
		tot.Quarantined += sn.Quarantined
		tot.FaultsInjected += sn.FaultsInjected
		tot.DeadlineExceeded += sn.DeadlineExceeded
		tot.QueueDepth += sn.QueueDepth
		if sn.QueueOccupancy > tot.QueueOccupancy {
			tot.QueueOccupancy = sn.QueueOccupancy
		}
	}
	tot.CacheHitRate = metrics.HitRate(tot.CacheHits, tot.CacheMisses)

	s.mu.Lock()
	tenants := make(map[string]tenantState, len(s.tenants))
	for name, ts := range s.tenants {
		tenants[name] = *ts
	}
	tracked := len(s.jobs)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(StatsReply{
		Tenants: tenants, Shards: shards, Totals: tot, TrackedJobs: tracked,
	})
}

// MarshalJSON exports only the counter fields of a tenant snapshot (the
// bucket internals are admission state, not stats).
func (t tenantState) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Submitted   int64 `json:"submitted"`
		Completed   int64 `json:"completed"`
		Failed      int64 `json:"failed"`
		Cancelled   int64 `json:"cancelled"`
		Shed        int64 `json:"shed"`
		RateLimited int64 `json:"rateLimited"`
		Live        int   `json:"live"`
	}{t.Submitted, t.Completed, t.Failed, t.Cancelled, t.Shed, t.RateLimited, t.Live})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	shards := s.snapshotShards()

	counter := func(name, help string) metrics.PromFamily {
		return metrics.PromFamily{Name: name, Help: help, Type: metrics.PromCounter}
	}
	gauge := func(name, help string) metrics.PromFamily {
		return metrics.PromFamily{Name: name, Help: help, Type: metrics.PromGauge}
	}

	jobsDone := counter("xdropipu_engine_jobs_done_total", "Completed submissions per shard.")
	batches := counter("xdropipu_engine_batches_done_total", "Executed batches per shard.")
	cells := counter("xdropipu_engine_cells_done_total", "Computed DP cells per shard.")
	live := gauge("xdropipu_engine_jobs_live", "Admitted unfinished submissions per shard.")
	inflight := gauge("xdropipu_engine_inflight_batches", "Batches currently executing per shard.")
	depth := gauge("xdropipu_engine_queue_depth", "Admission queue bound per shard.")
	occ := gauge("xdropipu_engine_queue_occupancy", "JobsLive/QueueDepth per shard; the primary autoscaling signal.")
	hits := counter("xdropipu_engine_cache_hits_total", "Result-cache hits per shard.")
	misses := counter("xdropipu_engine_cache_misses_total", "Result-cache misses per shard.")
	evict := counter("xdropipu_engine_cache_evictions_total", "Result-cache evictions per shard.")
	cbytes := gauge("xdropipu_engine_cache_bytes", "Approximate resident result-cache footprint per shard.")
	hitRate := gauge("xdropipu_engine_cache_hit_rate", "Lifetime cache hit rate per shard.")
	narrow := counter("xdropipu_engine_narrow_extensions_total", "Extensions completed on the int16 kernel tier per shard.")
	wide := counter("xdropipu_engine_wide_extensions_total", "Extensions executed on the int32 kernel tier per shard.")
	promoted := counter("xdropipu_engine_promoted_extensions_total", "Extensions that saturated int16 and re-ran int32 per shard.")
	traced := counter("xdropipu_engine_traced_extensions_total", "Extensions that delivered a recorded traceback per shard.")
	traceSkipped := counter("xdropipu_engine_trace_skipped_extensions_total", "Extensions the traceback score gate skipped per shard.")
	retries := counter("xdropipu_engine_retries_total", "Batch retries after transient faults per shard.")
	hedges := counter("xdropipu_engine_hedges_total", "Hedged duplicate executions per shard.")
	quarantined := counter("xdropipu_engine_quarantined_total", "Batches completed degraded per shard.")
	faults := counter("xdropipu_engine_faults_injected_total", "Injected faults per shard.")
	deadlines := counter("xdropipu_engine_deadline_exceeded_total", "Jobs past their deadline per shard.")

	for _, sn := range shards {
		l := strconv.Itoa(sn.Shard)
		jobsDone.Add(float64(sn.JobsDone), "shard", l)
		batches.Add(float64(sn.BatchesDone), "shard", l)
		cells.Add(float64(sn.CellsDone), "shard", l)
		live.Add(float64(sn.JobsLive), "shard", l)
		inflight.Add(float64(sn.InflightBatches), "shard", l)
		depth.Add(float64(sn.QueueDepth), "shard", l)
		occ.Add(sn.QueueOccupancy, "shard", l)
		hits.Add(float64(sn.CacheHits), "shard", l)
		misses.Add(float64(sn.CacheMisses), "shard", l)
		evict.Add(float64(sn.CacheEvictions), "shard", l)
		cbytes.Add(float64(sn.CacheBytes), "shard", l)
		hitRate.Add(sn.CacheHitRate, "shard", l)
		narrow.Add(float64(sn.NarrowExtensions), "shard", l)
		wide.Add(float64(sn.WideExtensions), "shard", l)
		promoted.Add(float64(sn.PromotedExtensions), "shard", l)
		traced.Add(float64(sn.TracedExtensions), "shard", l)
		traceSkipped.Add(float64(sn.TraceSkippedExtensions), "shard", l)
		retries.Add(float64(sn.Retries), "shard", l)
		hedges.Add(float64(sn.Hedges), "shard", l)
		quarantined.Add(float64(sn.Quarantined), "shard", l)
		faults.Add(float64(sn.FaultsInjected), "shard", l)
		deadlines.Add(float64(sn.DeadlineExceeded), "shard", l)
	}

	submitted := counter("xdropipu_service_jobs_submitted_total", "Admitted submissions per tenant.")
	completed := counter("xdropipu_service_jobs_completed_total", "Successfully finished jobs per tenant.")
	failed := counter("xdropipu_service_jobs_failed_total", "Jobs settled with an error per tenant.")
	cancelled := counter("xdropipu_service_jobs_cancelled_total", "Client-cancelled jobs per tenant.")
	shed := counter("xdropipu_service_jobs_shed_total", "Submissions shed on queue depth per tenant.")
	limited := counter("xdropipu_service_jobs_ratelimited_total", "Submissions refused by the fair-share bucket per tenant.")
	tliv := gauge("xdropipu_service_jobs_live", "Live jobs per tenant.")

	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.tenants[name]
		submitted.Add(float64(ts.Submitted), "tenant", name)
		completed.Add(float64(ts.Completed), "tenant", name)
		failed.Add(float64(ts.Failed), "tenant", name)
		cancelled.Add(float64(ts.Cancelled), "tenant", name)
		shed.Add(float64(ts.Shed), "tenant", name)
		limited.Add(float64(ts.RateLimited), "tenant", name)
		tliv.Add(float64(ts.Live), "tenant", name)
	}
	tracked := len(s.jobs)
	s.mu.Unlock()

	trackedG := gauge("xdropipu_service_jobs_tracked", "Jobs currently addressable (live plus retained).")
	trackedG.Add(float64(tracked))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WriteProm(w, []metrics.PromFamily{
		jobsDone, batches, cells, live, inflight, depth, occ,
		hits, misses, evict, cbytes, hitRate,
		narrow, wide, promoted, traced, traceSkipped,
		retries, hedges, quarantined, faults, deadlines,
		submitted, completed, failed, cancelled, shed, limited, tliv,
		trackedG,
	})
}
