// Multi-tenant admission tests: the fair-share bucket must refuse a
// greedy tenant without touching a polite one, and a saturated shard
// must shed with 429 + a parseable Retry-After instead of blocking the
// connection on the engine's admission queue.

package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/service"
	"github.com/sram-align/xdropipu/internal/service/wire"
)

// postDetached submits the payload as the given tenant with ?stream=0
// and returns the response (body closed, job left running server-side).
func postDetached(t *testing.T, ts *httptest.Server, tenant string, payload []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?stream=0", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeDataset)
	req.Header.Set("X-Tenant", tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func requireRetryAfter(t *testing.T, resp *http.Response) int {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("refusal %s carried no Retry-After", resp.Status)
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer second count", ra)
	}
	return secs
}

// TestServiceTenantFairShare: a tenant burning through its burst gets
// 429 from its own bucket while another tenant's first submission is
// still admitted — one client's greed cannot starve the rest.
func TestServiceTenantFairShare(t *testing.T) {
	opts := []engine.Option{
		engine.WithDriverConfig(testCfg(1)), engine.WithQueueDepth(64), engine.WithExecutors(2),
	}
	svc := service.New(service.Config{
		Shards: 1, EngineOptions: opts,
		// A refill slow enough that the bucket cannot recover a token
		// mid-test: admission is burst-only for both tenants.
		TenantRatePerSec: 0.001, TenantBurst: 2,
	})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	payload, err := wire.EncodeDataset(readsData(t, 5, 6))
	if err != nil {
		t.Fatal(err)
	}

	greedyRefused := 0
	for i := 0; i < 4; i++ {
		resp := postDetached(t, ts, "greedy", payload)
		switch {
		case i < 2 && resp.StatusCode != http.StatusAccepted:
			t.Fatalf("greedy submit %d inside burst: %s", i, resp.Status)
		case i >= 2:
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("greedy submit %d past burst: got %s, want 429", i, resp.Status)
			}
			requireRetryAfter(t, resp)
			greedyRefused++
		}
	}
	if greedyRefused != 2 {
		t.Fatalf("greedy refusals = %d, want 2", greedyRefused)
	}

	// The polite tenant's bucket is untouched by the greedy tenant's
	// exhaustion.
	if resp := postDetached(t, ts, "polite", payload); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("polite tenant refused despite fresh bucket: %s", resp.Status)
	}

	var stats service.StatsReply
	getJSON(t, ts, "/v1/stats", &stats)
	if g := stats.Tenants["greedy"]; g.RateLimited != 2 || g.Submitted != 2 {
		t.Fatalf("greedy counters: %+v", g)
	}
	if p := stats.Tenants["polite"]; p.RateLimited != 0 || p.Submitted != 1 {
		t.Fatalf("polite counters: %+v", p)
	}
}

// TestServiceLoadShedding: with MaxLiveJobs 1 and a deliberately slow
// shard, the second submission is shed with 429 + Retry-After while the
// first still runs; once the first drains, submission works again.
func TestServiceLoadShedding(t *testing.T) {
	// Every batch straggles 200ms, so the first job reliably spans the
	// second submission attempt.
	plan := driver.NewFaultPlan(1, driver.FaultSpec{
		StragglerRate: 1, StragglerDelay: 200 * time.Millisecond,
	})
	opts := []engine.Option{
		engine.WithDriverConfig(testCfg(1)), engine.WithQueueDepth(8),
		engine.WithExecutors(1), engine.WithFaultPlan(plan),
	}
	svc := service.New(service.Config{Shards: 1, EngineOptions: opts, MaxLiveJobs: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	payload, err := wire.EncodeDataset(readsData(t, 7, 12))
	if err != nil {
		t.Fatal(err)
	}
	if resp := postDetached(t, ts, "a", payload); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s", resp.Status)
	}
	resp := postDetached(t, ts, "b", payload)
	if resp.StatusCode != service.StatusServiceSaturated {
		t.Fatalf("second submit on saturated shard: got %s, want 429", resp.Status)
	}
	requireRetryAfter(t, resp)

	// Shedding is load, not lockout: wait for the shard to drain and
	// the same tenant is admitted again.
	waitForLive(t, svc, 0, 10*time.Second)
	if resp := postDetached(t, ts, "b", payload); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after drain: %s", resp.Status)
	}
	waitForLive(t, svc, 0, 10*time.Second)
}

// waitForLive polls the shard pool until the live-job total reaches n.
func waitForLive(t *testing.T, svc *service.Server, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		live := 0
		for _, e := range svc.Shards() {
			live += e.Stats().JobsLive
		}
		if live == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("live jobs stuck at %d, want %d", live, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, dst any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}
