// Routing must be content-addressed: the slab layout a client's arena
// happened to use — one slab, many, or a wire-decoded spine — must never
// move a workload to a different shard, or repeat traffic would miss the
// shard-local result cache it is supposed to warm.

package service

import (
	"testing"

	"github.com/sram-align/xdropipu/internal/workload"
)

func TestRouteKeySlabLayoutInvariant(t *testing.T) {
	seqs := []string{"ACGTACGTACGTACGT", "TTTTCCCCGGGGAAAA", "ACGAACGTACGTTCGT", "ACGTACGTACGTACGT"}
	cmps := []workload.Comparison{
		{H: 0, V: 1, SeedH: 4, SeedV: 4, SeedLen: 8},
		{H: 2, V: 3, SeedH: 4, SeedV: 4, SeedLen: 8},
	}
	build := func(maxSlab int) *workload.Dataset {
		a := workload.NewArena(0, len(seqs))
		a.SetMaxSlabBytes(maxSlab)
		for _, s := range seqs {
			a.Append([]byte(s))
		}
		d := a.NewStreamingDataset("route", workload.PlanOf(cmps), false)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		return d
	}

	single := build(1 << 20)
	multi := build(16)
	sArena, _ := single.Spine()
	mArena, _ := multi.Spine()
	if sArena.NumSlabs() != 1 || mArena.NumSlabs() < 2 {
		t.Fatalf("fixture layouts: %d and %d slabs", sArena.NumSlabs(), mArena.NumSlabs())
	}
	if routeKey(single) != routeKey(multi) {
		t.Error("identical content routed differently across slab layouts")
	}

	// Different content must (for this fixture) move the key — routeKey is
	// a hash, so this guards against a degenerate constant, not collisions.
	a2 := workload.NewArena(0, 1)
	a2.Append([]byte("GGGGGGGGGGGGGGGG"))
	d2 := a2.NewStreamingDataset("route", workload.PlanOf([]workload.Comparison{}), false)
	if routeKey(single) == routeKey(d2) {
		t.Error("different content produced the same routing key")
	}
}
