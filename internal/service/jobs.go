// Per-job server state: each submission is pumped once from its engine
// stream into a bounded window of pre-encoded NDJSON chunk lines; every
// attached HTTP stream (the submitting POST or a resuming GET) is a
// reader over that window with its own cursor. The window is the resume
// contract — a reconnecting client replays delivered batches from its
// cursor without the engine re-executing anything — and its bound is the
// memory contract: a job retains at most WindowChunks encoded batches.

package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/service/wire"
)

type jobState struct {
	id          string
	tenant      string
	shard       int
	job         *engine.Job
	cancelJob   context.CancelFunc
	linger      time.Duration
	comparisons int
	windowMax   int
	created     time.Time

	mu       sync.Mutex
	batches  int      // schedule size, learned from the first update
	window   [][]byte // encoded chunk lines, window[i] has seq firstSeq+i
	firstSeq int
	nextSeq  int
	chunks   int // total chunks ever delivered (== nextSeq)
	done     bool
	err      error
	final    []byte // encoded final line
	attached int
	lingerT  *time.Timer
	notify   chan struct{} // closed and replaced on every append/finish
}

func newJobState(id, tenant string, shard int, job *engine.Job, cancel context.CancelFunc,
	linger time.Duration, comparisons, windowMax int) *jobState {
	return &jobState{
		id: id, tenant: tenant, shard: shard, job: job, cancelJob: cancel,
		linger: linger, comparisons: comparisons, windowMax: windowMax,
		created: time.Now(), notify: make(chan struct{}),
	}
}

// cancel tears the job down (idempotent): the engine drops its queued
// batches and the pump settles it with context.Canceled.
func (js *jobState) cancel() { js.cancelJob() }

// appendUpdate encodes one engine update as the next chunk line and
// appends it to the window, trimming the front past the bound. The pump
// is the only appender, so encoding happens outside the lock.
func (js *jobState) appendUpdate(u engine.Update) {
	results := make([]wire.Result, len(u.Results))
	for i, o := range u.Results {
		results[i] = wire.FromAlignOut(o)
	}
	line, err := json.Marshal(wire.Envelope{Chunk: &wire.Chunk{
		Seq: js.nextSeq, Batch: u.Batch, Batches: u.Batches,
		Seconds: u.Seconds, Results: results,
	}})
	if err != nil {
		return // unreachable: the chunk types marshal by construction
	}
	line = append(line, '\n')
	js.mu.Lock()
	if js.batches == 0 {
		js.batches = u.Batches
	}
	js.window = append(js.window, line)
	js.nextSeq++
	js.chunks = js.nextSeq
	if drop := len(js.window) - js.windowMax; drop > 0 {
		js.window = append([][]byte(nil), js.window[drop:]...)
		js.firstSeq += drop
	}
	close(js.notify)
	js.notify = make(chan struct{})
	js.mu.Unlock()
}

// finish records the job's terminal outcome and encodes the final line.
func (js *jobState) finish(rep *driver.Report, err error) {
	fin := wire.Final{}
	if err != nil {
		fin.Error = err.Error()
	} else {
		sum := wire.Summarize(rep)
		fin.Report = &sum
	}
	line, _ := json.Marshal(wire.Envelope{Final: &fin})
	line = append(line, '\n')
	js.mu.Lock()
	js.done = true
	js.err = err
	js.final = line
	if js.lingerT != nil {
		js.lingerT.Stop()
		js.lingerT = nil
	}
	close(js.notify)
	js.notify = make(chan struct{})
	js.mu.Unlock()
}

// attach registers a stream reader and disarms any pending linger
// cancellation.
func (js *jobState) attach() {
	js.mu.Lock()
	js.attached++
	if js.lingerT != nil {
		js.lingerT.Stop()
		js.lingerT = nil
	}
	js.mu.Unlock()
}

// collect returns the encoded chunks at and after cursor, the final line
// once the job settled and the cursor is drained, and the channel that
// signals the next append. gone reports a cursor older than the window.
func (js *jobState) collect(cursor int) (lines [][]byte, final []byte, notify chan struct{}, gone bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if cursor < js.firstSeq {
		return nil, nil, nil, true
	}
	if idx := cursor - js.firstSeq; idx < len(js.window) {
		lines = js.window[idx:]
	}
	if js.done && cursor+len(lines) == js.nextSeq {
		final = js.final
	}
	return lines, final, js.notify, false
}

// firstRetained returns the oldest cursor the window can still replay.
func (js *jobState) firstRetained() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.firstSeq
}

// headerSnapshot builds the stream-opening header for a reader starting
// at from.
func (js *jobState) headerSnapshot(from int) *wire.Header {
	js.mu.Lock()
	defer js.mu.Unlock()
	return &wire.Header{
		Job: js.id, Comparisons: js.comparisons,
		Batches: js.batches, Shard: js.shard, From: from,
	}
}

// JobStatus is the GET /v1/jobs/{id} reply.
type JobStatus struct {
	Job         string `json:"job"`
	Tenant      string `json:"tenant"`
	Shard       int    `json:"shard"`
	Comparisons int    `json:"comparisons"`
	Batches     int    `json:"batches"`
	// Chunks counts delivered result chunks; FirstRetained is the oldest
	// resume cursor still in the replay window.
	Chunks        int    `json:"chunks"`
	FirstRetained int    `json:"firstRetained"`
	Done          bool   `json:"done"`
	Error         string `json:"error,omitempty"`
	// Attached counts currently-connected result streams.
	Attached int `json:"attached"`
}

func (js *jobState) status() JobStatus {
	js.mu.Lock()
	defer js.mu.Unlock()
	st := JobStatus{
		Job: js.id, Tenant: js.tenant, Shard: js.shard,
		Comparisons: js.comparisons, Batches: js.batches,
		Chunks: js.chunks, FirstRetained: js.firstSeq,
		Done: js.done, Attached: js.attached,
	}
	if js.err != nil {
		st.Error = js.err.Error()
	}
	return st
}
