// Package service is the networked front-end of the alignment system: a
// stdlib-only streaming HTTP service (HTTP/1.1, and HTTP/2 when the
// embedding server enables it) over a pool of engine shards. It preserves
// the ipuma-lib submit/stream/join contract across the wire:
//
//	POST   /v1/jobs            submit a workload, stream NDJSON results
//	GET    /v1/jobs/{id}          job status (addressable jobs)
//	GET    /v1/jobs/{id}/results  (re-)stream results from a cursor
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/stats              per-tenant + per-shard JSON stats
//	GET    /v1/metrics            Prometheus text exposition
//	GET    /v1/healthz            liveness
//
// Jobs route to shards by content affinity — a hash of the workload's
// sequence digests — so repeat submissions of the same content land on
// the same shard and its cross-job result cache stays warm. Multi-tenant
// admission is two-layered: a per-tenant token bucket enforces fair
// share, and queue-depth load shedding (HTTP 429 with a Retry-After
// derived from engine.Stats) protects saturated shards. Delivered
// batches are retained in a bounded per-job window, so a client whose
// connection drops resumes with GET …/results?from=N instead of
// re-submitting; a job whose last stream disconnects is cancelled after
// a configurable linger.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/service/wire"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Config shapes a Server.
type Config struct {
	// Shards is the engine pool width (default 1). Each shard is an
	// independent engine — own executors, own admission queue, own result
	// cache — so tenants sharing content share warmth, not failure.
	Shards int
	// EngineOptions construct every shard (fleet size, kernel, cache,
	// fault tolerance). The same options apply to each shard, so results
	// are independent of routing.
	EngineOptions []engine.Option
	// WindowChunks bounds the per-job replay window (delivered batches
	// retained for resume), default 256. A resume cursor older than the
	// window gets 410 Gone.
	WindowChunks int
	// Linger is how long a job survives after its last stream detaches
	// before it is cancelled (default 0: immediate). Clients that intend
	// to resume ask for more with the X-Linger header, capped by
	// MaxLinger.
	Linger time.Duration
	// MaxLinger caps client-requested linger (default 60s).
	MaxLinger time.Duration
	// JobTTL is how long a settled job stays addressable for late reads
	// (default 2m).
	JobTTL time.Duration
	// TenantRatePerSec refills each tenant's admission bucket (0 = no
	// per-tenant rate limit).
	TenantRatePerSec float64
	// TenantBurst is the bucket capacity (default 4 when a rate is set).
	TenantBurst int
	// MaxLiveJobs is the per-shard load-shedding threshold: a shard with
	// this many live jobs answers 429 (0 = the shard's queue depth, so
	// shedding engages exactly where Submit would start blocking).
	MaxLiveJobs int
	// MaxBodyBytes bounds a submission body (default 1 GiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.WindowChunks <= 0 {
		c.WindowChunks = 256
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 60 * time.Second
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 2 * time.Minute
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	return c
}

// Server is the multi-tenant alignment service over a pool of engine
// shards. Create with New, expose with Handler, release with Close.
type Server struct {
	cfg    Config
	shards []*engine.Engine
	mux    *http.ServeMux

	mu      sync.Mutex
	jobs    map[string]*jobState
	tenants map[string]*tenantState
	nextID  int64
	closed  bool

	closedCh chan struct{}
	wg       sync.WaitGroup // pump goroutines
}

// New starts a server and its engine shards.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		jobs:     make(map[string]*jobState),
		tenants:  make(map[string]*tenantState),
		closedCh: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, engine.New(cfg.EngineOptions...))
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the service's HTTP handler. It works under HTTP/1.1
// and HTTP/2 alike (enable unencrypted HTTP/2 via http.Server.Protocols
// if desired); streaming responses flush per chunk on both.
func (s *Server) Handler() http.Handler { return s.mux }

// Shards exposes the engine pool (stats, tests).
func (s *Server) Shards() []*engine.Engine { return s.shards }

// Close cancels every live job, drains the pump goroutines and shuts the
// shard engines down. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.closedCh)
	jobs := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		jobs = append(jobs, js)
	}
	s.mu.Unlock()
	for _, js := range jobs {
		js.cancel()
	}
	s.wg.Wait()
	for _, e := range s.shards {
		e.Close()
	}
	return nil
}

// routeKey folds the workload's sequence digests into the content-
// affinity routing key: identical sequence content — regardless of which
// arena packed it — routes to the same shard, keeping that shard's
// ExtensionKey result cache warm for repeat and duplicate-heavy traffic.
func routeKey(d *workload.Dataset) uint64 {
	arena, _ := d.Spine()
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < arena.Len(); i++ {
		dg := arena.Digest(i)
		h ^= dg.Lo
		h *= prime64
		h ^= dg.Hi
		h *= prime64
	}
	return h
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := tenantName(r)
	if ok, retry := s.admitTenant(tenant); !ok {
		writeRetryAfter(w, retry)
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over fair-share rate; retry after %s", tenant, retry))
		return
	}

	d, err := s.decodeBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	shard := int(routeKey(d) % uint64(len(s.shards)))
	eng := s.shards[shard]
	maxLive := s.cfg.MaxLiveJobs
	if maxLive <= 0 {
		maxLive = eng.QueueDepth()
	}
	if st := eng.Stats(); st.JobsLive >= maxLive {
		retry := retryAfterFromStats(st, maxLive)
		s.tenantShed(tenant)
		writeRetryAfter(w, retry)
		writeError(w, StatusServiceSaturated,
			fmt.Sprintf("shard %d saturated (%d live jobs); retry after %s", shard, st.JobsLive, retry))
		return
	}

	linger := s.cfg.Linger
	if hv := r.Header.Get("X-Linger"); hv != "" {
		if pd, perr := time.ParseDuration(hv); perr == nil && pd > 0 {
			linger = min(pd, s.cfg.MaxLinger)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	job, err := eng.Submit(ctx, d)
	if err != nil {
		cancel()
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "service closing")
		return
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	js := newJobState(id, tenant, shard, job, cancel, linger, len(d.Comparisons), s.cfg.WindowChunks)
	s.jobs[id] = js
	ts := s.tenantLocked(tenant)
	ts.Submitted++
	ts.Live++
	s.wg.Add(1)
	s.mu.Unlock()
	go s.pump(js)

	if r.URL.Query().Get("stream") == "0" {
		// Detached submission: the job is addressable; results come via
		// GET …/results. No stream ever attaches, so disconnect-cancel
		// does not apply — the job runs to completion (or DELETE/TTL).
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(js.headerSnapshot(0))
		return
	}
	s.streamJob(w, r, js, 0)
}

// StatusServiceSaturated is the load-shedding status (429 Too Many
// Requests, per RFC 6585, with Retry-After).
const StatusServiceSaturated = http.StatusTooManyRequests

func (s *Server) decodeBody(r *http.Request) (*workload.Dataset, error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	switch ct {
	case wire.ContentTypeDataset, "application/octet-stream", "":
		p, err := io.ReadAll(body)
		if err != nil {
			return nil, err
		}
		return wire.DecodeDataset(p)
	case wire.ContentTypeFasta, "text/plain":
		q := r.URL.Query()
		protein := q.Get("protein") == "1" || q.Get("protein") == "true"
		k, _ := strconv.Atoi(q.Get("k"))
		name := q.Get("name")
		if name == "" {
			name = "fasta"
		}
		return wire.DecodeFasta(body, protein, k, name)
	default:
		return nil, fmt.Errorf("unsupported content type %q", ct)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r.PathValue("id"))
	if js == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(js.status())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r.PathValue("id"))
	if js == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	from := 0
	if fs := r.URL.Query().Get("from"); fs != "" {
		v, err := strconv.Atoi(fs)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad from cursor")
			return
		}
		from = v
	}
	if first := js.firstRetained(); from < first {
		writeError(w, http.StatusGone,
			fmt.Sprintf("cursor %d fell out of the replay window (first retained %d)", from, first))
		return
	}
	s.streamJob(w, r, js, from)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r.PathValue("id"))
	if js == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	js.cancel()
	s.mu.Lock()
	s.tenantLocked(js.tenant).Cancelled++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"job": js.id, "state": "cancelling"})
}

func (s *Server) lookup(id string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// pump is each job's single Results consumer: it encodes every update
// once into the bounded replay window (streams are readers over that
// window), then settles the job with its final record and schedules
// removal after the retention TTL.
func (s *Server) pump(js *jobState) {
	defer s.wg.Done()
	for u := range js.job.Results() {
		js.appendUpdate(u)
	}
	rep, err := js.job.Wait(context.Background())
	js.finish(rep, err)
	s.mu.Lock()
	ts := s.tenantLocked(js.tenant)
	ts.Live--
	if err != nil {
		ts.Failed++
	} else {
		ts.Completed++
	}
	s.mu.Unlock()
	time.AfterFunc(s.cfg.JobTTL, func() {
		s.mu.Lock()
		delete(s.jobs, js.id)
		s.mu.Unlock()
	})
}

// streamJob writes the NDJSON stream: header, window replay from the
// cursor, then live chunks as the pump appends them, and the final
// record. A client disconnect detaches; the last detach of an unfinished
// job arms (or is) its cancellation.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, js *jobState, from int) {
	w.Header().Set("Content-Type", wire.ContentTypeNDJSON)
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	rc := http.NewResponseController(w)

	js.attach()
	defer s.detach(js)

	enc := json.NewEncoder(w)
	if err := enc.Encode(wire.Envelope{Header: js.headerSnapshot(from)}); err != nil {
		return
	}
	rc.Flush()

	cursor := from
	for {
		lines, final, notify, gone := js.collect(cursor)
		if gone {
			// The window outran this reader (possible only if the cursor
			// was valid at entry and the writer lapped us). Terminate;
			// the client re-resumes and gets a clean 410.
			return
		}
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		cursor += len(lines)
		if len(lines) > 0 {
			rc.Flush()
		}
		if final != nil {
			w.Write(final)
			rc.Flush()
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.closedCh:
			return
		}
	}
}

// detach undoes one attach; the last detach of an unfinished job cancels
// it immediately (linger 0) or arms the linger timer, giving a resuming
// client that long to come back before the work is torn down.
func (s *Server) detach(js *jobState) {
	js.mu.Lock()
	js.attached--
	last := js.attached == 0 && !js.done
	if !last {
		js.mu.Unlock()
		return
	}
	if js.linger <= 0 {
		js.mu.Unlock()
		js.cancel()
		return
	}
	if js.lingerT == nil {
		js.lingerT = time.AfterFunc(js.linger, func() {
			js.mu.Lock()
			fire := js.attached == 0 && !js.done
			js.mu.Unlock()
			if fire {
				js.cancel()
			}
		})
	}
	js.mu.Unlock()
}

func tenantName(r *http.Request) string {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		return "default"
	}
	if len(t) > 64 {
		t = t[:64]
	}
	return t
}

func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
