// Package wire is the alignment service's interchange format: a compact
// binary codec for shipping a workload (the arena spine — slab, spans,
// columnar plan) across the network boundary, a FASTA ingestion path for
// thin clients, and the NDJSON record types the result stream is framed
// in. The codec preserves the spine exactly: a decoded dataset has the
// same sequence indices, spans and content digests as the sender's, so
// routing keys, ExtensionKeys and result-cache identity survive the trip
// and the service's reports stay byte-identical to an in-process run.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/sram-align/xdropipu/internal/alignment"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/seqio"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Content types the service accepts on POST /v1/jobs.
const (
	// ContentTypeDataset is the binary arena/plan payload EncodeDataset
	// produces — the zero-loss format engine-aware clients use.
	ContentTypeDataset = "application/x-xdropipu-dataset"
	// ContentTypeFasta is plain FASTA text; the server derives the
	// comparison plan (file-order pairing, midpoint seeds) like the CLI.
	ContentTypeFasta = "text/x-fasta"
	// ContentTypeNDJSON frames the result stream: one JSON Envelope per
	// line.
	ContentTypeNDJSON = "application/x-ndjson"
)

// Binary layout (little-endian). Version 1 frames a single-slab spine:
//
//	magic   "XDW1"
//	flags   u8      bit0 = protein
//	name    uvarint length + bytes
//	slab    uvarint length + bytes
//	refs    uvarint count  + count × (off u32, len u32)
//	plan    uvarint rows   + 5 columns × rows × i32  (H V SeedH SeedV SeedLen)
//
// Version 2 frames a multi-slab spine; spans carry their slab index:
//
//	magic   "XDW2"
//	flags   u8      bit0 = protein
//	name    uvarint length + bytes
//	slabs   uvarint count  + count × (uvarint length + bytes)
//	refs    uvarint count  + count × (slab u32, off u32, len u32)
//	plan    uvarint rows   + 5 columns × rows × i32  (H V SeedH SeedV SeedLen)
//
// The encoder emits XDW1 whenever the spine fits one slab — so every
// pre-spine payload stays byte-identical — and XDW2 only for genuinely
// multi-slab pools. The decoder accepts both.
var (
	magic  = [4]byte{'X', 'D', 'W', '1'}
	magic2 = [4]byte{'X', 'D', 'W', '2'}
)

const flagProtein = 1

// EncodeDataset serializes a dataset's arena spine. The encoding is
// canonical for a given spine: same slabs, spans and plan produce the
// same bytes, and a single-slab spine encodes byte-identically to the
// pre-spine XDW1 format.
func EncodeDataset(d *workload.Dataset) ([]byte, error) {
	arena, plan := d.Spine()
	refs := arena.Refs()
	var buf bytes.Buffer
	var flags byte
	if d.Protein {
		flags |= flagProtein
	}
	var u32 [4]byte
	if arena.NumSlabs() <= 1 {
		slab := arena.Slab()
		buf.Grow(len(slab) + len(refs)*8 + plan.Len()*20 + len(d.Name) + 64)
		buf.Write(magic[:])
		buf.WriteByte(flags)
		writeUvarint(&buf, uint64(len(d.Name)))
		buf.WriteString(d.Name)
		writeUvarint(&buf, uint64(len(slab)))
		buf.Write(slab)
		writeUvarint(&buf, uint64(len(refs)))
		for _, r := range refs {
			binary.LittleEndian.PutUint32(u32[:], uint32(r.Off))
			buf.Write(u32[:])
			binary.LittleEndian.PutUint32(u32[:], uint32(r.Len))
			buf.Write(u32[:])
		}
	} else {
		buf.Grow(arena.SlabBytes() + len(refs)*12 + plan.Len()*20 + len(d.Name) + 64)
		buf.Write(magic2[:])
		buf.WriteByte(flags)
		writeUvarint(&buf, uint64(len(d.Name)))
		buf.WriteString(d.Name)
		writeUvarint(&buf, uint64(arena.NumSlabs()))
		for si := 0; si < arena.NumSlabs(); si++ {
			slab := arena.SlabView(si)
			writeUvarint(&buf, uint64(len(slab)))
			buf.Write(slab)
		}
		writeUvarint(&buf, uint64(len(refs)))
		for _, r := range refs {
			binary.LittleEndian.PutUint32(u32[:], uint32(r.Slab))
			buf.Write(u32[:])
			binary.LittleEndian.PutUint32(u32[:], uint32(r.Off))
			buf.Write(u32[:])
			binary.LittleEndian.PutUint32(u32[:], uint32(r.Len))
			buf.Write(u32[:])
		}
	}
	writeUvarint(&buf, uint64(plan.Len()))
	for _, col := range [][]int32{plan.H, plan.V, plan.SeedH, plan.SeedV, plan.SeedLen} {
		for _, v := range col {
			binary.LittleEndian.PutUint32(u32[:], uint32(v))
			buf.Write(u32[:])
		}
	}
	return buf.Bytes(), nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

// DecodeDataset reverses EncodeDataset: the restored dataset shares the
// adopted slabs (no per-sequence copies) and validates like any other
// submission. Both wire versions decode — "XDW1" single-slab payloads
// from pre-spine senders and "XDW2" multi-slab spines. Lengths and
// counts are checked against the remaining input before any allocation,
// so truncated or hostile payloads (including absurd slab counts) fail
// cleanly instead of over-allocating.
func DecodeDataset(p []byte) (*workload.Dataset, error) {
	r := &reader{p: p}
	var m [4]byte
	r.bytes(m[:])
	multi := m == magic2
	if r.err == nil && m != magic && !multi {
		return nil, fmt.Errorf("wire: bad magic %q", m[:])
	}
	flags := r.u8()
	name := string(r.lenBytes("name"))
	var slabs [][]byte
	if multi {
		nslabs := r.count("slabs", 1)
		slabs = make([][]byte, 0, nslabs)
		for i := 0; i < nslabs && r.err == nil; i++ {
			slabs = append(slabs, append([]byte(nil), r.lenBytes("slab")...))
		}
	} else {
		slabs = [][]byte{append([]byte(nil), r.lenBytes("slab")...)}
	}
	refBytes := 8
	if multi {
		refBytes = 12
	}
	nrefs := r.count("refs", refBytes)
	refs := make([]workload.SeqRef, nrefs)
	for i := range refs {
		if multi {
			refs[i].Slab = int32(r.u32())
		}
		refs[i].Off = int32(r.u32())
		refs[i].Len = int32(r.u32())
	}
	nrows := r.count("plan", 20)
	plan := workload.NewPlan(nrows)
	cols := [5][]int32{}
	for c := range cols {
		col := make([]int32, nrows)
		for i := range col {
			col[i] = int32(r.u32())
		}
		cols[c] = col
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.p) != r.off {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(r.p)-r.off)
	}
	for i := 0; i < nrows; i++ {
		plan.Add(workload.Comparison{
			H: int(cols[0][i]), V: int(cols[1][i]),
			SeedH: int(cols[2][i]), SeedV: int(cols[3][i]), SeedLen: int(cols[4][i]),
		})
	}
	arena, err := workload.RestoreArenaSlabs(slabs, refs)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	d := arena.NewDataset(name, plan, flags&flagProtein != 0)
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return d, nil
}

// reader is a bounds-checked cursor over the payload; the first error
// sticks and every later read is a no-op.
type reader struct {
	p   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *reader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(dst) > len(r.p) {
		r.fail("truncated payload")
		return
	}
	copy(dst, r.p[r.off:])
	r.off += len(dst)
}

func (r *reader) u8() byte {
	var b [1]byte
	r.bytes(b[:])
	return b[0]
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.p[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// lenBytes reads a uvarint length and returns that many payload bytes as
// a subslice (no copy).
func (r *reader) lenBytes(what string) []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.p)-r.off) {
		r.fail("%s length %d exceeds payload", what, n)
		return nil
	}
	s := r.p[r.off : r.off+int(n)]
	r.off += int(n)
	return s
}

// count reads an element count and rejects values the remaining payload
// cannot possibly hold (elemSize bytes each), bounding allocations.
func (r *reader) count(what string, elemSize int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.p)-r.off)/uint64(elemSize) {
		r.fail("%s count %d exceeds payload", what, n)
		return 0
	}
	return int(n)
}

// DecodeFasta ingests FASTA text the way the CLI's default mode does:
// records pair up in file order (1st vs 2nd, 3rd vs 4th, …) with a
// length-k seed at each pair's midpoints. The records stream straight
// into an arena slab.
func DecodeFasta(body io.Reader, protein bool, k int, name string) (*workload.Dataset, error) {
	alpha := seqio.DNAAlphabet
	if protein {
		alpha = seqio.ProteinAlphabet
	}
	if k <= 0 {
		k = 17
	}
	arena := workload.NewArena(0, 0)
	if _, err := arena.AppendFasta(body, alpha); err != nil {
		return nil, err
	}
	plan := workload.NewPlan(arena.Len() / 2)
	for i := 0; i+1 < arena.Len(); i += 2 {
		lh, lv := int(arena.Ref(i).Len), int(arena.Ref(i+1).Len)
		if lh < k || lv < k {
			continue
		}
		plan.Add(workload.Comparison{
			H: i, V: i + 1,
			SeedH: (lh - k) / 2, SeedV: (lv - k) / 2, SeedLen: k,
		})
	}
	if plan.Len() == 0 {
		return nil, fmt.Errorf("wire: no comparisons derivable from %d FASTA records", arena.Len())
	}
	d := arena.NewDataset(name, plan, protein)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Result is one comparison's alignment on the wire — every AlignOut
// field round-trips, CIGAR included, so client-side assembly reproduces
// the in-process report byte for byte.
type Result struct {
	GlobalID      int    `json:"id"`
	Score         int    `json:"score"`
	LeftScore     int    `json:"ls"`
	RightScore    int    `json:"rs"`
	BegH          int    `json:"bh"`
	BegV          int    `json:"bv"`
	EndH          int    `json:"eh"`
	EndV          int    `json:"ev"`
	Cells         int64  `json:"cells"`
	Antidiagonals int    `json:"ad"`
	MaxLiveBand   int    `json:"band"`
	Clamped       bool   `json:"clamped,omitempty"`
	Failed        bool   `json:"failed,omitempty"`
	Cigar         string `json:"cigar,omitempty"`
	TraceBytes    int    `json:"tb,omitempty"`
}

// FromAlignOut converts one kernel result to its wire form.
func FromAlignOut(o ipukernel.AlignOut) Result {
	return Result{
		GlobalID: o.GlobalID, Score: o.Score,
		LeftScore: o.LeftScore, RightScore: o.RightScore,
		BegH: o.BegH, BegV: o.BegV, EndH: o.EndH, EndV: o.EndV,
		Cells: o.Cells, Antidiagonals: o.Antidiagonals,
		MaxLiveBand: o.MaxLiveBand, Clamped: o.Clamped, Failed: o.Failed,
		Cigar: string(o.Cigar), TraceBytes: o.TraceBytes,
	}
}

// AlignOut converts the wire form back, re-validating the CIGAR so a
// corrupted stream cannot smuggle an invalid edit script into client
// code that trusts the Cigar invariants.
func (r Result) AlignOut() (ipukernel.AlignOut, error) {
	o := ipukernel.AlignOut{
		GlobalID: r.GlobalID, Score: r.Score,
		LeftScore: r.LeftScore, RightScore: r.RightScore,
		BegH: r.BegH, BegV: r.BegV, EndH: r.EndH, EndV: r.EndV,
		Cells: r.Cells, Antidiagonals: r.Antidiagonals,
		MaxLiveBand: r.MaxLiveBand, Clamped: r.Clamped, Failed: r.Failed,
		TraceBytes: r.TraceBytes,
	}
	if r.Cigar != "" {
		c, err := alignment.Parse(r.Cigar)
		if err != nil {
			return o, err
		}
		o.Cigar = c
	}
	return o, nil
}

// Header opens every result stream: the job's address plus the schedule
// shape the client needs to assemble and track progress.
type Header struct {
	Job string `json:"job"`
	// Comparisons is the submitted comparison count — the length of the
	// report's Results.
	Comparisons int `json:"comparisons"`
	// Batches is the schedule's executed-batch total.
	Batches int `json:"batches"`
	// Shard is the engine shard the job routed to (content affinity).
	Shard int `json:"shard"`
	// From is the first chunk sequence number this stream will carry
	// (non-zero on resumed streams).
	From int `json:"from,omitempty"`
}

// Chunk is one delivered batch: Seq numbers chunks in delivery order
// (the resume cursor), Batch is the batch's index in the job's schedule
// (-1 for the cache-served update that precedes execution).
type Chunk struct {
	Seq     int      `json:"seq"`
	Batch   int      `json:"batch"`
	Batches int      `json:"batches"`
	Seconds float64  `json:"seconds,omitempty"`
	Results []Result `json:"results"`
}

// ReportSummary carries every scalar field of driver.Report; Results
// travel in the chunks. Float fields round-trip exactly (Go's JSON
// encoder emits shortest-round-trip float64).
type ReportSummary struct {
	Batches                 int     `json:"batches"`
	IPUs                    int     `json:"ipus"`
	WallSeconds             float64 `json:"wallSeconds"`
	DeviceComputeSeconds    float64 `json:"deviceComputeSeconds"`
	TransferSeconds         float64 `json:"transferSeconds"`
	HostBytesIn             int64   `json:"hostBytesIn"`
	HostBytesOut            int64   `json:"hostBytesOut"`
	UniqueSeqBytesIn        int64   `json:"uniqueSeqBytesIn"`
	TheoreticalCells        int64   `json:"theoreticalCells"`
	Cells                   int64   `json:"cells"`
	SumBand                 int64   `json:"sumBand"`
	Antidiags               int64   `json:"antidiags"`
	Races                   int     `json:"races"`
	StealOps                int     `json:"stealOps"`
	Clamped                 int     `json:"clamped"`
	ReuseFactor             float64 `json:"reuseFactor"`
	MaxSRAM                 int     `json:"maxSRAM"`
	UniqueExtensions        int     `json:"uniqueExtensions"`
	DedupedComparisons      int     `json:"dedupedComparisons"`
	CacheHits               int     `json:"cacheHits"`
	CacheMisses             int     `json:"cacheMisses"`
	SkippedTheoreticalCells int64   `json:"skippedTheoreticalCells"`
	PeakTracebackBytes      int     `json:"peakTracebackBytes"`
	TracebackBytes          int64   `json:"tracebackBytes"`
	PartialFailures         int     `json:"partialFailures"`
	NarrowExtensions        int     `json:"narrowExtensions"`
	WideExtensions          int     `json:"wideExtensions"`
	PromotedExtensions      int     `json:"promotedExtensions"`
	TracedExtensions        int     `json:"tracedExtensions"`
	TraceSkippedExtensions  int     `json:"traceSkippedExtensions"`
}

// Summarize extracts a report's scalar fields.
func Summarize(rep *driver.Report) ReportSummary {
	return ReportSummary{
		Batches: rep.Batches, IPUs: rep.IPUs,
		WallSeconds:          rep.WallSeconds,
		DeviceComputeSeconds: rep.DeviceComputeSeconds,
		TransferSeconds:      rep.TransferSeconds,
		HostBytesIn:          rep.HostBytesIn, HostBytesOut: rep.HostBytesOut,
		UniqueSeqBytesIn: rep.UniqueSeqBytesIn,
		TheoreticalCells: rep.TheoreticalCells, Cells: rep.Cells,
		SumBand: rep.SumBand, Antidiags: rep.Antidiags,
		Races: rep.Races, StealOps: rep.StealOps, Clamped: rep.Clamped,
		ReuseFactor: rep.ReuseFactor, MaxSRAM: rep.MaxSRAM,
		UniqueExtensions:   rep.UniqueExtensions,
		DedupedComparisons: rep.DedupedComparisons,
		CacheHits:          rep.CacheHits, CacheMisses: rep.CacheMisses,
		SkippedTheoreticalCells: rep.SkippedTheoreticalCells,
		PeakTracebackBytes:      rep.PeakTracebackBytes,
		TracebackBytes:          rep.TracebackBytes,
		PartialFailures:         rep.PartialFailures,
		NarrowExtensions:        rep.NarrowExtensions,
		WideExtensions:          rep.WideExtensions,
		PromotedExtensions:      rep.PromotedExtensions,
		TracedExtensions:        rep.TracedExtensions,
		TraceSkippedExtensions:  rep.TraceSkippedExtensions,
	}
}

// Report rebuilds a driver report around client-assembled results.
func (s ReportSummary) Report(results []ipukernel.AlignOut) *driver.Report {
	return &driver.Report{
		Results: results,
		Batches: s.Batches, IPUs: s.IPUs,
		WallSeconds:          s.WallSeconds,
		DeviceComputeSeconds: s.DeviceComputeSeconds,
		TransferSeconds:      s.TransferSeconds,
		HostBytesIn:          s.HostBytesIn, HostBytesOut: s.HostBytesOut,
		UniqueSeqBytesIn: s.UniqueSeqBytesIn,
		TheoreticalCells: s.TheoreticalCells, Cells: s.Cells,
		SumBand: s.SumBand, Antidiags: s.Antidiags,
		Races: s.Races, StealOps: s.StealOps, Clamped: s.Clamped,
		ReuseFactor: s.ReuseFactor, MaxSRAM: s.MaxSRAM,
		UniqueExtensions:   s.UniqueExtensions,
		DedupedComparisons: s.DedupedComparisons,
		CacheHits:          s.CacheHits, CacheMisses: s.CacheMisses,
		SkippedTheoreticalCells: s.SkippedTheoreticalCells,
		PeakTracebackBytes:      s.PeakTracebackBytes,
		TracebackBytes:          s.TracebackBytes,
		PartialFailures:         s.PartialFailures,
		NarrowExtensions:        s.NarrowExtensions,
		WideExtensions:          s.WideExtensions,
		PromotedExtensions:      s.PromotedExtensions,
		TracedExtensions:        s.TracedExtensions,
		TraceSkippedExtensions:  s.TraceSkippedExtensions,
	}
}

// Final closes every result stream: the report summary on success, the
// job's terminal error otherwise.
type Final struct {
	Report *ReportSummary `json:"report,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// Envelope is one NDJSON line of the result stream: exactly one of the
// fields is set.
type Envelope struct {
	Header *Header `json:"header,omitempty"`
	Chunk  *Chunk  `json:"chunk,omitempty"`
	Final  *Final  `json:"final,omitempty"`
}
