// Codec tests: the binary dataset format must round-trip the arena
// spine exactly — spans, digests, plan, flags — and fail cleanly on
// truncated or hostile payloads instead of over-allocating.

package wire

import (
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func encodedPayload(t *testing.T) []byte {
	t.Helper()
	d := synth.Reads(synth.ReadsSpec{
		Name: "wire", GenomeLen: 30000, Coverage: 6, MeanReadLen: 1500, MinReadLen: 600,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 400, Seed: 9, MaxComparisons: 20,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestServiceWireRoundTrip(t *testing.T) {
	d := synth.Reads(synth.ReadsSpec{
		Name: "wire", GenomeLen: 30000, Coverage: 6, MeanReadLen: 1500, MinReadLen: 600,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 400, Seed: 9, MaxComparisons: 20,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Protein != d.Protein {
		t.Fatalf("metadata drift: %q/%v vs %q/%v", got.Name, got.Protein, d.Name, d.Protein)
	}
	wantArena, wantPlan := d.Spine()
	gotArena, gotPlan := got.Spine()
	if gotArena.Len() != wantArena.Len() {
		t.Fatalf("arena length %d, want %d", gotArena.Len(), wantArena.Len())
	}
	for i := 0; i < wantArena.Len(); i++ {
		// Digest equality is the load-bearing property: routing keys and
		// result-cache identity both hang off it.
		if gotArena.Digest(i) != wantArena.Digest(i) {
			t.Fatalf("sequence %d digest drifted across the wire", i)
		}
		if string(gotArena.Seq(i)) != string(wantArena.Seq(i)) {
			t.Fatalf("sequence %d bytes drifted across the wire", i)
		}
	}
	if gotPlan.Len() != wantPlan.Len() {
		t.Fatalf("plan rows %d, want %d", gotPlan.Len(), wantPlan.Len())
	}
	for i := 0; i < wantPlan.Len(); i++ {
		for c, col := range [][]int32{gotPlan.H, gotPlan.V, gotPlan.SeedH, gotPlan.SeedV, gotPlan.SeedLen} {
			want := [][]int32{wantPlan.H, wantPlan.V, wantPlan.SeedH, wantPlan.SeedV, wantPlan.SeedLen}[c]
			if col[i] != want[i] {
				t.Fatalf("plan row %d column %d drifted: %d vs %d", i, c, col[i], want[i])
			}
		}
	}

	// Canonical encoding: re-encoding the decoded dataset reproduces the
	// payload byte for byte.
	p2, err := EncodeDataset(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(p2) != string(p) {
		t.Fatal("encoding is not canonical: decode→encode changed bytes")
	}
}

func TestServiceWireRejectsCorruption(t *testing.T) {
	p := encodedPayload(t)
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("XDW9"), p[4:]...),
		"truncated":  p[:len(p)/2],
		"trailing":   append(append([]byte{}, p...), 0xFF),
		"magic only": p[:4],
		"cut varint": p[:5],
	}
	for name, payload := range cases {
		if _, err := DecodeDataset(payload); err == nil {
			t.Fatalf("%s payload decoded without error", name)
		} else if !strings.Contains(err.Error(), "wire") {
			t.Fatalf("%s: error %q lost the wire prefix", name, err)
		}
	}
}

// TestServiceWireHostileCounts: a payload claiming absurd element counts
// must fail the bounds check, not attempt the allocation.
func TestServiceWireHostileCounts(t *testing.T) {
	// Minimal hand-built payload: magic, flags 0, empty name, empty
	// slab, then a refs count of 2^40 the remaining zero bytes cannot
	// possibly hold.
	hostile := []byte{'X', 'D', 'W', '1', 0, 0, 0}
	hostile = append(hostile, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 2^40
	if _, err := DecodeDataset(hostile); err == nil {
		t.Fatal("hostile refs count decoded without error")
	}
}

// u32le appends v little-endian — for hand-building golden payloads.
func u32le(p []byte, v uint32) []byte {
	return append(p, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func multiSlabDataset(t *testing.T) *workload.Dataset {
	t.Helper()
	a := workload.NewArena(0, 4)
	a.SetMaxSlabBytes(8)
	for _, s := range []string{"AAAACCCC", "GGGGTTTT", "ACGTACGT", "TTTTAAAA"} {
		a.Append([]byte(s))
	}
	if a.NumSlabs() != 4 {
		t.Fatalf("fixture spine has %d slabs, want 4", a.NumSlabs())
	}
	d := a.NewDataset("multi", workload.PlanOf([]workload.Comparison{
		{H: 0, V: 1, SeedH: 2, SeedV: 2, SeedLen: 4},
		{H: 2, V: 3, SeedH: 0, SeedV: 0, SeedLen: 4},
	}), false)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestServiceWireSingleSlabStaysXDW1: single-slab spines must keep the
// version-1 framing so every pre-spine payload stays byte-identical.
func TestServiceWireSingleSlabStaysXDW1(t *testing.T) {
	p := encodedPayload(t)
	if string(p[:4]) != "XDW1" {
		t.Fatalf("single-slab payload framed as %q, want XDW1", p[:4])
	}
}

func TestServiceWireMultiSlabRoundTrip(t *testing.T) {
	d := multiSlabDataset(t)
	p, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(p[:4]) != "XDW2" {
		t.Fatalf("multi-slab payload framed as %q, want XDW2", p[:4])
	}
	got, err := DecodeDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	wantArena, wantPlan := d.Spine()
	gotArena, gotPlan := got.Spine()
	if gotArena.NumSlabs() != wantArena.NumSlabs() {
		t.Fatalf("decoded spine has %d slabs, want %d", gotArena.NumSlabs(), wantArena.NumSlabs())
	}
	if gotArena.Len() != wantArena.Len() || gotPlan.Len() != wantPlan.Len() {
		t.Fatalf("decoded %d seqs / %d rows, want %d / %d",
			gotArena.Len(), gotPlan.Len(), wantArena.Len(), wantPlan.Len())
	}
	for i := 0; i < wantArena.Len(); i++ {
		if gotArena.Ref(i) != wantArena.Ref(i) {
			t.Fatalf("seq %d span drifted: %+v vs %+v", i, gotArena.Ref(i), wantArena.Ref(i))
		}
		if gotArena.Digest(i) != wantArena.Digest(i) {
			t.Fatalf("seq %d digest drifted across the wire", i)
		}
		if string(gotArena.Seq(i)) != string(wantArena.Seq(i)) {
			t.Fatalf("seq %d bytes drifted across the wire", i)
		}
	}
	// Canonical: decode→encode reproduces the payload byte for byte.
	p2, err := EncodeDataset(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(p2) != string(p) {
		t.Fatal("XDW2 encoding is not canonical: decode→encode changed bytes")
	}
}

// TestServiceWireXDW1GoldenDecode pins version-1 decode compatibility with
// a hand-rolled byte payload — independent of the current encoder, so an
// encoder change can never silently redefine what old senders mean.
func TestServiceWireXDW1GoldenDecode(t *testing.T) {
	p := []byte{'X', 'D', 'W', '1', 0}
	p = append(p, 1, 'g')                       // name "g"
	p = append(p, 8)                            // slab length
	p = append(p, "AAAACCCC"...)                // slab bytes
	p = append(p, 2)                            // ref count
	p = u32le(u32le(p, 0), 4)                   // ref 0: off 0 len 4
	p = u32le(u32le(p, 4), 4)                   // ref 1: off 4 len 4
	p = append(p, 1)                            // plan rows
	for _, v := range []uint32{0, 1, 0, 0, 4} { // H V SeedH SeedV SeedLen columns
		p = u32le(p, v)
	}
	d, err := DecodeDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "g" || d.Protein {
		t.Fatalf("golden metadata: %q/%v", d.Name, d.Protein)
	}
	arena, plan := d.Spine()
	if arena.Len() != 2 || string(arena.Seq(0)) != "AAAA" || string(arena.Seq(1)) != "CCCC" {
		t.Fatalf("golden pool corrupt: %d seqs", arena.Len())
	}
	if arena.NumSlabs() != 1 {
		t.Fatalf("golden decoded to %d slabs", arena.NumSlabs())
	}
	if plan.Len() != 1 || plan.At(0) != (workload.Comparison{H: 0, V: 1, SeedLen: 4}) {
		t.Fatalf("golden plan corrupt: %+v", plan.At(0))
	}
	// And the golden is canonical: re-encoding reproduces it exactly.
	p2, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(p2) != string(p) {
		t.Fatal("re-encoding the XDW1 golden changed bytes")
	}
}

func TestServiceWireMultiSlabRejectsCorruption(t *testing.T) {
	d := multiSlabDataset(t)
	p, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated mid-slab": p[:9],
		"truncated mid-refs": p[:len(p)-30],
		"trailing":           append(append([]byte{}, p...), 0xAB),
	}
	for name, payload := range cases {
		if _, err := DecodeDataset(payload); err == nil {
			t.Fatalf("%s payload decoded without error", name)
		} else if !strings.Contains(err.Error(), "wire") {
			t.Fatalf("%s: error %q lost the wire prefix", name, err)
		}
	}
}

// TestServiceWireHostileSlabCount: an XDW2 payload claiming 2^40 slabs
// must fail the bounds check before any per-slab allocation.
func TestServiceWireHostileSlabCount(t *testing.T) {
	hostile := []byte{'X', 'D', 'W', '2', 0, 0}                   // magic, flags, empty name
	hostile = append(hostile, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 2^40 slabs
	if _, err := DecodeDataset(hostile); err == nil {
		t.Fatal("hostile slab count decoded without error")
	}
}

// TestServiceWireRejectsOutOfRangeSlabIndex: a span naming a slab the
// payload never shipped must fail restore, not index out of bounds.
func TestServiceWireRejectsOutOfRangeSlabIndex(t *testing.T) {
	p := []byte{'X', 'D', 'W', '2', 0, 0} // magic, flags, empty name
	p = append(p, 1, 4)                   // 1 slab, 4 bytes
	p = append(p, "AAAA"...)
	p = append(p, 1)          // 1 ref
	p = u32le(p, 7)           // slab 7 of a 1-slab payload
	p = u32le(u32le(p, 0), 4) // off 0 len 4
	p = append(p, 0)          // empty plan
	if _, err := DecodeDataset(p); err == nil {
		t.Fatal("out-of-range slab index decoded without error")
	} else if !strings.Contains(err.Error(), "wire") {
		t.Fatalf("error %q lost the wire prefix", err)
	}
}
