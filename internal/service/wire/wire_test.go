// Codec tests: the binary dataset format must round-trip the arena
// spine exactly — spans, digests, plan, flags — and fail cleanly on
// truncated or hostile payloads instead of over-allocating.

package wire

import (
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/synth"
)

func encodedPayload(t *testing.T) []byte {
	t.Helper()
	d := synth.Reads(synth.ReadsSpec{
		Name: "wire", GenomeLen: 30000, Coverage: 6, MeanReadLen: 1500, MinReadLen: 600,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 400, Seed: 9, MaxComparisons: 20,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestServiceWireRoundTrip(t *testing.T) {
	d := synth.Reads(synth.ReadsSpec{
		Name: "wire", GenomeLen: 30000, Coverage: 6, MeanReadLen: 1500, MinReadLen: 600,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 400, Seed: 9, MaxComparisons: 20,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Protein != d.Protein {
		t.Fatalf("metadata drift: %q/%v vs %q/%v", got.Name, got.Protein, d.Name, d.Protein)
	}
	wantArena, wantPlan := d.Spine()
	gotArena, gotPlan := got.Spine()
	if gotArena.Len() != wantArena.Len() {
		t.Fatalf("arena length %d, want %d", gotArena.Len(), wantArena.Len())
	}
	for i := 0; i < wantArena.Len(); i++ {
		// Digest equality is the load-bearing property: routing keys and
		// result-cache identity both hang off it.
		if gotArena.Digest(i) != wantArena.Digest(i) {
			t.Fatalf("sequence %d digest drifted across the wire", i)
		}
		if string(gotArena.Seq(i)) != string(wantArena.Seq(i)) {
			t.Fatalf("sequence %d bytes drifted across the wire", i)
		}
	}
	if gotPlan.Len() != wantPlan.Len() {
		t.Fatalf("plan rows %d, want %d", gotPlan.Len(), wantPlan.Len())
	}
	for i := 0; i < wantPlan.Len(); i++ {
		for c, col := range [][]int32{gotPlan.H, gotPlan.V, gotPlan.SeedH, gotPlan.SeedV, gotPlan.SeedLen} {
			want := [][]int32{wantPlan.H, wantPlan.V, wantPlan.SeedH, wantPlan.SeedV, wantPlan.SeedLen}[c]
			if col[i] != want[i] {
				t.Fatalf("plan row %d column %d drifted: %d vs %d", i, c, col[i], want[i])
			}
		}
	}

	// Canonical encoding: re-encoding the decoded dataset reproduces the
	// payload byte for byte.
	p2, err := EncodeDataset(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(p2) != string(p) {
		t.Fatal("encoding is not canonical: decode→encode changed bytes")
	}
}

func TestServiceWireRejectsCorruption(t *testing.T) {
	p := encodedPayload(t)
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("XDW9"), p[4:]...),
		"truncated":  p[:len(p)/2],
		"trailing":   append(append([]byte{}, p...), 0xFF),
		"magic only": p[:4],
		"cut varint": p[:5],
	}
	for name, payload := range cases {
		if _, err := DecodeDataset(payload); err == nil {
			t.Fatalf("%s payload decoded without error", name)
		} else if !strings.Contains(err.Error(), "wire") {
			t.Fatalf("%s: error %q lost the wire prefix", name, err)
		}
	}
}

// TestServiceWireHostileCounts: a payload claiming absurd element counts
// must fail the bounds check, not attempt the allocation.
func TestServiceWireHostileCounts(t *testing.T) {
	// Minimal hand-built payload: magic, flags 0, empty name, empty
	// slab, then a refs count of 2^40 the remaining zero bytes cannot
	// possibly hold.
	hostile := []byte{'X', 'D', 'W', '1', 0, 0, 0}
	hostile = append(hostile, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 2^40
	if _, err := DecodeDataset(hostile); err == nil {
		t.Fatal("hostile refs count decoded without error")
	}
}
