package service_test

import (
	"bufio"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/service/wire"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func testCfg(ipus int) driver.Config {
	return driver.Config{
		IPUs:        ipus,
		Model:       platform.GC200,
		TilesPerIPU: 8,
		Partition:   true,
		Kernel: ipukernel.Config{
			Params:           core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}
}

func readsData(t *testing.T, seed int64, maxCmp int) *workload.Dataset {
	t.Helper()
	d := synth.Reads(synth.ReadsSpec{
		Name: "svc", GenomeLen: 40000, Coverage: 8, MeanReadLen: 1800, MinReadLen: 700,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 500, Seed: seed, MaxComparisons: maxCmp,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func reportsEqual(t *testing.T, label string, got, want *driver.Report) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: wire report differs from in-process engine\n got: %+v\nwant: %+v", label, got, want)
	}
}

func newStringReader(s string) io.Reader { return strings.NewReader(s) }

// drainStream reads a raw NDJSON result stream to its final record.
func drainStream(t *testing.T, body io.Reader) *wire.Final {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var env wire.Envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if env.Final != nil {
			return env.Final
		}
	}
	t.Fatalf("stream ended without a final record (scan err: %v)", sc.Err())
	return nil
}
