// Loopback differential tests: a workload submitted over the wire — the
// full encode → HTTP → decode → shard → NDJSON stream → client assembly
// loop — must yield a report bit-identical to handing the same dataset to
// an in-process engine with the same options. This pins the whole PR's
// core promise: the service adds distribution, not drift.

package service_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/service"
	"github.com/sram-align/xdropipu/internal/serviceclient"
	"github.com/sram-align/xdropipu/internal/workload"
)

// inProcessGoldens runs the submission sequence against a fresh local
// engine with the same options the service's shard gets, returning one
// report per submission. Submissions run sequentially, so stateful
// options (the result cache) see the same history on both sides.
func inProcessGoldens(t *testing.T, opts []engine.Option, datasets []*workload.Dataset) []*driver.Report {
	t.Helper()
	e := engine.New(opts...)
	defer e.Close()
	reps := make([]*driver.Report, len(datasets))
	for i, d := range datasets {
		job, err := e.Submit(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		reps[i], err = job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	}
	return reps
}

func TestServiceLoopbackDifferential(t *testing.T) {
	cfg := testCfg(2)
	base := []engine.Option{
		engine.WithDriverConfig(cfg), engine.WithQueueDepth(4), engine.WithExecutors(2),
	}
	d := readsData(t, 3, 30)
	for _, tc := range []struct {
		name    string
		opts    []engine.Option
		repeats int // total submissions of the same dataset
	}{
		{"plain", base, 1},
		{"dedup", append(append([]engine.Option{}, base...), engine.WithDedupExtensions(true)), 1},
		{"cache", append(append([]engine.Option{}, base...),
			engine.WithDedupExtensions(true), engine.WithResultCache(4096)), 2},
		{"traceback", append(append([]engine.Option{}, base...), engine.WithTraceback(true)), 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			datasets := make([]*workload.Dataset, tc.repeats)
			for i := range datasets {
				datasets[i] = d
			}
			wants := inProcessGoldens(t, tc.opts, datasets)

			svc := service.New(service.Config{Shards: 1, EngineOptions: tc.opts})
			defer svc.Close()
			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()
			c := serviceclient.New(ts.URL)

			for i, want := range wants {
				job, err := c.Submit(context.Background(), datasets[i])
				if err != nil {
					t.Fatal(err)
				}
				// Drain the stream like an interactive consumer and check
				// the per-update contract: every comparison exactly once.
				seen := make(map[int]int)
				for u := range job.Results() {
					for _, o := range u.Results {
						seen[o.GlobalID]++
					}
				}
				got, err := job.Wait(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if len(seen) != len(d.Comparisons) {
					t.Fatalf("submission %d: stream covered %d of %d comparisons", i, len(seen), len(d.Comparisons))
				}
				for id, n := range seen {
					if n != 1 {
						t.Fatalf("submission %d: comparison %d streamed %d times", i, id, n)
					}
				}
				reportsEqual(t, tc.name, got, want)
			}

			if tc.name == "cache" {
				// The second identical submission must have been served
				// from the warm shard cache, not recomputed.
				if wants[1].CacheHits == 0 {
					t.Fatal("golden engine reported no cache hits on repeat submission")
				}
				st := svc.Shards()[0].Stats()
				if st.CacheHits == 0 {
					t.Fatalf("service shard saw no cache hits: %+v", st)
				}
			}
			if tc.name == "traceback" {
				got := false
				for _, o := range wants[0].Results {
					if o.Cigar != "" {
						got = true
					}
				}
				if !got {
					t.Fatal("traceback golden carried no CIGARs; differential proved nothing")
				}
			}
		})
	}
}

// TestServiceFastaSubmission: the thin-client path — plain FASTA posted
// with no workload tooling — must land the same report as building the
// equivalent dataset locally.
func TestServiceFastaSubmission(t *testing.T) {
	cfg := testCfg(1)
	opts := []engine.Option{engine.WithDriverConfig(cfg), engine.WithExecutors(1)}
	svc := service.New(service.Config{Shards: 1, EngineOptions: opts})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	fasta := ">a\nACGTACGTACGTACGTACGTACGTACGTACGTACGT\n>b\nACGTACGTACGTACGTTCGTACGTACGTACGTACGT\n"
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs?k=9&name=pair", "text/x-fasta",
		newStringReader(fasta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("fasta submit: %s", resp.Status)
	}
	final := drainStream(t, resp.Body)
	if final.Error != "" {
		t.Fatalf("fasta job failed: %s", final.Error)
	}
	if final.Report == nil || final.Report.Batches == 0 {
		t.Fatalf("fasta job returned no executed batches: %+v", final.Report)
	}
}
