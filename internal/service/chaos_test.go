// Chaos composition: engine-side fault injection (transient failures,
// stragglers, retry, degraded fallback) layered under transport-side
// stream abortion, with the wire client's resume on top. The assembled
// report must still be bit-identical to a fault-free in-process run —
// the three fault-tolerance layers compose without duplicating or
// losing work.

package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/service"
	"github.com/sram-align/xdropipu/internal/serviceclient"
	"github.com/sram-align/xdropipu/internal/workload"
)

// abortingHandler wraps the service handler and kills result-stream
// connections after lineLimit NDJSON lines, up to aborts times — the
// HTTP-level analogue of a flaky network path.
type abortingHandler struct {
	inner     http.Handler
	lineLimit int
	aborts    atomic.Int64 // remaining aborts
}

func (h *abortingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	stream := (r.Method == http.MethodPost && r.URL.Path == "/v1/jobs") ||
		(r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/results"))
	if !stream || h.aborts.Load() <= 0 {
		h.inner.ServeHTTP(w, r)
		return
	}
	h.aborts.Add(-1)
	h.inner.ServeHTTP(&abortingWriter{ResponseWriter: w, limit: h.lineLimit}, r)
}

type abortingWriter struct {
	http.ResponseWriter
	limit int
	lines int
}

func (w *abortingWriter) Write(p []byte) (int, error) {
	if w.lines >= w.limit {
		panic(http.ErrAbortHandler)
	}
	n, err := w.ResponseWriter.Write(p)
	for _, b := range p[:n] {
		if b == '\n' {
			w.lines++
		}
	}
	return n, err
}

func (w *abortingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func TestServiceChaosComposedRecovery(t *testing.T) {
	cfg := testCfg(2)
	d := readsData(t, 23, 28)

	// Fault-free golden: what a calm in-process engine reports.
	calm := []engine.Option{
		engine.WithDriverConfig(cfg), engine.WithExecutors(2), engine.WithMaxBatchJobs(4),
	}
	want := inProcessGoldens(t, calm, []*workload.Dataset{d})[0]

	// Chaotic shard: transient faults and stragglers on every layer the
	// retry/hedge machinery covers, fallback for anything permanent-ish.
	plan := driver.NewFaultPlan(31, driver.FaultSpec{
		TransientRate: 0.3, StragglerRate: 0.2, StragglerDelay: 2 * time.Millisecond,
	})
	chaotic := append(append([]engine.Option{}, calm...),
		engine.WithRetry(12, 0),
		engine.WithRetryBackoff(200*time.Microsecond, 2*time.Millisecond),
		engine.WithDegradedMode(engine.DegradeFallback),
		engine.WithFaultPlan(plan),
	)
	svc := service.New(service.Config{Shards: 1, EngineOptions: chaotic})
	defer svc.Close()

	// Transport chaos: the first three stream connections die after four
	// lines each; the client must resume, never re-execute.
	ah := &abortingHandler{inner: svc.Handler(), lineLimit: 4}
	ah.aborts.Store(3)
	ts := httptest.NewServer(ah)
	defer ts.Close()

	c := serviceclient.New(ts.URL,
		serviceclient.WithStreamLinger(30*time.Second),
		serviceclient.WithTransportRetry(6),
		serviceclient.WithTransportBackoff(5*time.Millisecond, 50*time.Millisecond))
	job, err := c.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "chaos", got, want)
	if ah.aborts.Load() > 0 {
		t.Fatalf("only %d of 3 stream aborts fired; transport chaos never engaged", 3-ah.aborts.Load())
	}
	if st := svc.Shards()[0].Stats(); st.FaultsInjected == 0 {
		t.Fatalf("fault plan injected nothing: %+v", st)
	}
}
