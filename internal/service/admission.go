// Multi-tenant admission: a token bucket per tenant enforces fair share
// (a greedy client exhausts its own bucket, never another tenant's), and
// queue-depth load shedding turns a saturated shard's backpressure into
// HTTP 429 + Retry-After instead of a blocked connection. Both layers
// answer before any workload bytes are decoded or any engine slot is
// taken, so overload costs the server almost nothing.

package service

import (
	"time"

	"github.com/sram-align/xdropipu/internal/engine"
)

// tenantState is one tenant's admission bucket plus lifetime counters,
// all guarded by Server.mu.
type tenantState struct {
	tokens float64
	last   time.Time

	Submitted   int64
	Completed   int64
	Failed      int64
	Cancelled   int64
	Shed        int64
	RateLimited int64
	Live        int
}

func (s *Server) tenantLocked(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{tokens: float64(s.cfg.TenantBurst), last: time.Now()}
		s.tenants[name] = ts
	}
	return ts
}

// admitTenant draws one token from the tenant's bucket. With no rate
// configured every submission is admitted. On refusal it returns how
// long until the bucket refills one token — the Retry-After value.
func (s *Server) admitTenant(name string) (bool, time.Duration) {
	if s.cfg.TenantRatePerSec <= 0 {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenantLocked(name)
	now := time.Now()
	ts.tokens += now.Sub(ts.last).Seconds() * s.cfg.TenantRatePerSec
	if burst := float64(s.cfg.TenantBurst); ts.tokens > burst {
		ts.tokens = burst
	}
	ts.last = now
	if ts.tokens >= 1 {
		ts.tokens--
		return true, 0
	}
	ts.RateLimited++
	need := (1 - ts.tokens) / s.cfg.TenantRatePerSec
	d := time.Duration(need * float64(time.Second))
	// High refill rates derive sub-second waits, which truncate to a
	// 0-second Retry-After header and hot-loop shed clients. Clamp at
	// the source so the header, the error body and every other consumer
	// agree on a positive wait.
	if d < time.Second {
		d = time.Second
	}
	return false, d
}

func (s *Server) tenantShed(name string) {
	s.mu.Lock()
	s.tenantLocked(name).Shed++
	s.mu.Unlock()
}

// retryAfterFromStats derives a shed response's Retry-After from the
// shard's live-job excess over its shedding threshold: one second per
// queued-over-capacity job, capped at 30s. Deeper backlogs push clients
// further out, spreading the retry wave.
func retryAfterFromStats(st engine.Stats, maxLive int) time.Duration {
	excess := st.JobsLive - maxLive + 1
	if excess < 1 {
		excess = 1
	}
	d := time.Duration(excess) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
