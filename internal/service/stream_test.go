// Stream lifecycle tests: a dropped connection must cancel its job (no
// leaked engine work), a lingering job must be resumable from the exact
// cursor with zero batch re-execution, and a cursor that fell out of the
// bounded replay window must get 410 Gone rather than silent gaps.

package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/service"
	"github.com/sram-align/xdropipu/internal/service/wire"
)

// slowOpts makes every batch straggle so a test can reliably interrupt a
// job mid-stream.
func slowOpts(delay time.Duration, seed int64) []engine.Option {
	plan := driver.NewFaultPlan(seed, driver.FaultSpec{StragglerRate: 1, StragglerDelay: delay})
	return []engine.Option{
		engine.WithDriverConfig(testCfg(1)), engine.WithQueueDepth(8),
		engine.WithExecutors(1), engine.WithFaultPlan(plan),
		// Several batches per job, so streams can be interrupted between
		// chunks.
		engine.WithMaxBatchJobs(4),
	}
}

// TestServiceDisconnectCancelsJob: with no linger, dropping the
// submitting stream mid-job cancels the engine work; nothing leaks and
// the server closes cleanly. Run under -race in CI's service soak.
func TestServiceDisconnectCancelsJob(t *testing.T) {
	svc := service.New(service.Config{Shards: 1, EngineOptions: slowOpts(100*time.Millisecond, 2)})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	payload, err := wire.EncodeDataset(readsData(t, 11, 16))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeDataset)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the header so the job is certainly attached, then drop the
	// connection mid-stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// Disconnect-cancellation must reach the engine: live jobs drain to
	// zero without the job having run to completion.
	waitForLive(t, svc, 0, 10*time.Second)
	if done := svc.Shards()[0].Stats().JobsDone; done != 0 {
		t.Fatalf("job ran to completion (JobsDone=%d) despite mid-stream disconnect", done)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// streamChunks reads header + chunk lines off a raw stream, stopping
// after max chunks (or the final record). It returns the collected
// chunks and whether the final record was seen.
func streamChunks(t *testing.T, br *bufio.Reader, max int) (chunks []*wire.Chunk, final *wire.Final) {
	t.Helper()
	for max <= 0 || len(chunks) < max {
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		var env wire.Envelope
		if err := json.Unmarshal(line, &env); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		switch {
		case env.Chunk != nil:
			chunks = append(chunks, env.Chunk)
		case env.Final != nil:
			return chunks, env.Final
		}
	}
	return chunks, nil
}

// TestServiceResumeFromCursor: drop a lingering stream after two chunks,
// resume with GET …/results?from=N, and verify (a) the resumed stream
// carries exactly the remaining chunks, (b) the union reconstructs every
// comparison once, and (c) the engine executed each batch exactly once —
// resume is replay, not re-execution.
func TestServiceResumeFromCursor(t *testing.T) {
	svc := service.New(service.Config{
		Shards: 1, EngineOptions: slowOpts(50*time.Millisecond, 3),
		Linger: 0, MaxLinger: time.Minute, // linger comes from the client header
	})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	d := readsData(t, 13, 20)
	payload, err := wire.EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeDataset)
	req.Header.Set("X-Linger", "30s")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	hline, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var henv wire.Envelope
	if err := json.Unmarshal(hline, &henv); err != nil || henv.Header == nil {
		t.Fatalf("no stream header: %v", err)
	}
	id := henv.Header.Job

	first, final := streamChunks(t, br, 2)
	if final != nil {
		t.Skip("job finished before the stream could be interrupted; nothing to resume")
	}
	resp.Body.Close() // detach; X-Linger keeps the job alive

	results := map[int]ipukernel.AlignOut{}
	record := func(chs []*wire.Chunk) {
		for _, ch := range chs {
			for _, r := range ch.Results {
				o, err := r.AlignOut()
				if err != nil {
					t.Fatal(err)
				}
				if _, dup := results[o.GlobalID]; dup {
					t.Fatalf("comparison %d delivered twice across resume", o.GlobalID)
				}
				results[o.GlobalID] = o
			}
		}
	}
	record(first)

	cursor := len(first)
	rresp, err := ts.Client().Get(fmt.Sprintf("%s/v1/jobs/%s/results?from=%d", ts.URL, id, cursor))
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("resume: %s", rresp.Status)
	}
	rbr := bufio.NewReader(rresp.Body)
	rline, err := rbr.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var renv wire.Envelope
	if err := json.Unmarshal(rline, &renv); err != nil || renv.Header == nil || renv.Header.From != cursor {
		t.Fatalf("resume header wrong: %s", rline)
	}
	rest, rfinal := streamChunks(t, rbr, 0)
	if rfinal == nil || rfinal.Error != "" {
		t.Fatalf("resumed stream did not finish cleanly: %+v", rfinal)
	}
	if len(rest) > 0 && rest[0].Seq != cursor {
		t.Fatalf("resumed stream starts at seq %d, want %d", rest[0].Seq, cursor)
	}
	record(rest)

	if len(results) != len(d.Comparisons) {
		t.Fatalf("assembled %d of %d comparisons across resume", len(results), len(d.Comparisons))
	}
	// No re-execution: the engine ran the schedule exactly once.
	if st := svc.Shards()[0].Stats(); st.BatchesDone != int64(rfinal.Report.Batches) {
		t.Fatalf("engine executed %d batches for a %d-batch schedule: resume re-ran work",
			st.BatchesDone, rfinal.Report.Batches)
	}
}

// TestServiceResumeWindowGone: a cursor older than the bounded replay
// window answers 410 Gone.
func TestServiceResumeWindowGone(t *testing.T) {
	svc := service.New(service.Config{
		Shards: 1, WindowChunks: 1,
		EngineOptions: []engine.Option{
			engine.WithDriverConfig(testCfg(1)), engine.WithExecutors(1),
			engine.WithMaxBatchJobs(4), // multi-chunk delivery trims the 1-chunk window
		},
	})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	payload, err := wire.EncodeDataset(readsData(t, 17, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Submit detached: no stream ever attaches, so the job runs to
	// completion with the pump trimming the 1-chunk window as it goes.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?stream=0", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeDataset)
	sresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("detached submit: %s", sresp.Status)
	}
	var hdr wire.Header
	if err := json.NewDecoder(sresp.Body).Decode(&hdr); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()

	// Wait for the job to settle, then confirm the window trimmed: any
	// multi-chunk schedule overwrites seq 0.
	var st service.JobStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts, "/v1/jobs/"+hdr.Job, &st)
		if st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never settled: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Error != "" {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.FirstRetained == 0 {
		t.Skipf("schedule delivered %d chunk(s); window never trimmed", st.Chunks)
	}
	gresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + hdr.Job + "/results?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusGone {
		t.Fatalf("stale cursor: got %s, want 410 Gone", gresp.Status)
	}
}

// TestServiceCancelEndpoint: DELETE tears a running job down; its
// streams settle with the cancellation error and the engine frees the
// slot.
func TestServiceCancelEndpoint(t *testing.T) {
	svc := service.New(service.Config{Shards: 1, EngineOptions: slowOpts(100*time.Millisecond, 5)})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	payload, err := wire.EncodeDataset(readsData(t, 19, 16))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeDataset)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var env wire.Envelope
	if err := json.Unmarshal(line, &env); err != nil || env.Header == nil {
		t.Fatalf("no header: %v", err)
	}

	dreq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+env.Header.Job, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := ts.Client().Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %s", dresp.Status)
	}

	_, final := streamChunks(t, br, 0)
	if final == nil || final.Error == "" {
		t.Fatalf("cancelled job's stream settled without an error: %+v", final)
	}
	waitForLive(t, svc, 0, 10*time.Second)
}
