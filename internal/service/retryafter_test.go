// White-box regression test for the 0-second Retry-After bug: a
// high-refill tenant bucket derives a sub-second wait, which used to
// truncate to a "Retry-After: 0" header and hot-loop shed clients.

package service

import (
	"testing"
	"time"

	"github.com/sram-align/xdropipu/internal/engine"
)

// TestAdmitTenantRefusalAlwaysAtLeastOneSecond drains a burst-1 bucket
// at a refill rate fast enough that the raw token arithmetic yields a
// millisecond-scale wait, and asserts every refusal still reports at
// least one full second.
func TestAdmitTenantRefusalAlwaysAtLeastOneSecond(t *testing.T) {
	s := &Server{
		cfg:     Config{TenantRatePerSec: 500, TenantBurst: 1},
		tenants: make(map[string]*tenantState),
	}
	ok, d := s.admitTenant("hot")
	if !ok || d != 0 {
		t.Fatalf("first draw refused: ok=%v d=%v", ok, d)
	}
	refused := 0
	for i := 0; i < 50; i++ {
		ok, d := s.admitTenant("hot")
		if ok {
			continue
		}
		refused++
		if d < time.Second {
			t.Fatalf("refusal %d derived a sub-second Retry-After: %v", i, d)
		}
	}
	if refused == 0 {
		t.Fatal("bucket at 500/s burst 1 never refused; test exercised nothing")
	}
}

// TestRetryAfterFromStatsPositive: the shed-path derivation must also
// stay ≥1s even when the shard is barely over (or under) its threshold.
func TestRetryAfterFromStatsPositive(t *testing.T) {
	for _, live := range []int{0, 1, 7, 8, 9, 100} {
		d := retryAfterFromStats(engine.Stats{JobsLive: live}, 8)
		if d < time.Second {
			t.Fatalf("JobsLive=%d: Retry-After %v below one second", live, d)
		}
		if d > 30*time.Second {
			t.Fatalf("JobsLive=%d: Retry-After %v above the 30s cap", live, d)
		}
	}
}
