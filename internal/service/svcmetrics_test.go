// Observability tests: the stats snapshot and the Prometheus exposition
// must reflect real engine counters after traffic, deterministically
// enough to scrape.

package service_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/service"
	"github.com/sram-align/xdropipu/internal/service/wire"
)

func TestServiceStatsAndMetricsExposition(t *testing.T) {
	opts := []engine.Option{
		engine.WithDriverConfig(testCfg(1)), engine.WithExecutors(1),
		engine.WithDedupExtensions(true), engine.WithResultCache(1024),
	}
	svc := service.New(service.Config{Shards: 2, EngineOptions: opts})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	payload, err := wire.EncodeDataset(readsData(t, 29, 12))
	if err != nil {
		t.Fatal(err)
	}
	// Two identical submissions from one tenant: the second must hit the
	// affinity-routed shard's warm cache.
	for i := 0; i < 2; i++ {
		resp := postDetached(t, ts, "alpha", payload)
		if resp.StatusCode != 202 {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
	}
	waitForLive(t, svc, 0, 10*time.Second)

	var stats service.StatsReply
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Totals.JobsDone != 2 {
		t.Fatalf("totals.JobsDone = %d, want 2", stats.Totals.JobsDone)
	}
	if stats.Totals.CacheHits == 0 {
		t.Fatalf("repeat submission missed the affinity-routed cache: %+v", stats.Totals)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("stats carry %d shards, want 2", len(stats.Shards))
	}
	a := stats.Tenants["alpha"]
	if a.Submitted != 2 || a.Completed != 2 || a.Live != 0 {
		t.Fatalf("tenant alpha counters: %+v", a)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE xdropipu_engine_jobs_done_total counter",
		`xdropipu_engine_jobs_done_total{shard="0"}`,
		`xdropipu_engine_jobs_done_total{shard="1"}`,
		"# TYPE xdropipu_engine_queue_occupancy gauge",
		`xdropipu_service_jobs_submitted_total{tenant="alpha"} 2`,
		`xdropipu_service_jobs_completed_total{tenant="alpha"} 2`,
		"xdropipu_engine_cache_hits_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}
