package engine

import (
	"context"
	"time"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Job is one asynchronous submission's handle: wait for the full report,
// or stream results batch by batch as the fleet completes them.
type Job struct {
	eng     *Engine
	ctx     context.Context
	cancel  context.CancelFunc // cancels ctx (a child of the submit context)
	seq     int64
	dataset *workload.Dataset

	built  chan struct{} // closed once the plan is built and the stream exists
	doneCh chan struct{} // closed once the job settles

	// expand maps a batch's raw results into per-comparison space when
	// the plan was built with dedup (nil otherwise); cachedResults holds
	// the per-comparison results the build served from the result cache.
	// Both are set before built closes and immutable afterwards, and
	// outlive bp so late-opened streams replay correctly after the plan
	// is released.
	expand        func([]ipukernel.AlignOut) []ipukernel.AlignOut
	cachedResults []ipukernel.AlignOut

	// deadline is the job's wall-clock completion deadline (zero when the
	// engine runs without WithJobDeadline). Set before the job is
	// registered and immutable afterwards.
	deadline time.Time

	// All fields below are guarded by eng.mu.
	bp        *driver.BatchPlan
	updates   chan Update
	streaming bool // updates is open
	nextIssue int  // batches handed to executors for the first time
	issued    int  // executions issued (first issues + retries + hedges): the fair-share key
	done      int  // batches delivered (first accepted result per batch)
	outs      []*ipukernel.BatchResult
	finished  bool
	report    *driver.Report
	err       error
	inActive  bool // job is in eng.active

	// Fault-tolerance state, per batch unless noted. attempts counts
	// executions issued (so the next execution's attempt number is
	// attempts[bi]); inflight counts executions currently running; hedged
	// marks batches already duplicated near the deadline; fallback routes
	// a batch's next execution through the reference host path; queued
	// marks batches sitting in retryq. retriesUsed draws down the per-job
	// retry budget; timers holds pending backoff timers so settlement can
	// stop them.
	attempts    []int32
	inflight    []int32
	hedged      []bool
	fallback    []bool
	queued      []bool
	startNS     []int64 // earliest in-flight start, for slowest-batch hedging
	retryq      []int   // batch indices ready to re-issue
	retriesUsed int
	timers      map[*time.Timer]struct{}
}

// Update is one executed batch of a job, streamed in completion order.
type Update struct {
	// Batch is the batch's index in the job's schedule; Batches is the
	// schedule's total, so consumers can track progress. Batch is -1 for
	// the up-front update carrying results the engine's result cache
	// served without executing anything (WithResultCache).
	Batch, Batches int
	// Results holds the batch's comparison results; GlobalID indexes the
	// submitted dataset's comparison list. With dedup enabled a batch
	// executes unique extensions only, but the stream still carries one
	// entry per submitted comparison: duplicates arrive alongside their
	// representative, bit-identical except for GlobalID. Under
	// WithDegradedMode(DegradePartial) a quarantined batch streams Failed
	// placeholders instead of alignments (check AlignOut.Failed).
	Results []ipukernel.AlignOut
	// Seconds is the batch's modeled on-device compute time (0 for the
	// cache-served update).
	Seconds float64
}

// Done returns a channel closed when the job settles (report ready,
// failed, or cancelled).
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Cancel cancels the job: planning stops, not-yet-issued batches are
// dropped, and Wait returns context.Canceled. It is the handle-side
// cancellation hook for callers that do not own the submit context — a
// service front-end tearing a job down when its client disconnects.
// Idempotent; a no-op after the job settles.
func (j *Job) Cancel() { j.cancel() }

// Err returns the job's terminal error (nil while running or on success).
func (j *Job) Err() error {
	j.eng.mu.Lock()
	defer j.eng.mu.Unlock()
	if !j.finished {
		return nil
	}
	return j.err
}

// Wait blocks until the job settles and returns its report — bit-identical
// to driver.Run on the same dataset and engine configuration. The context
// bounds only this wait; cancelling it does not cancel the job (cancel the
// Submit context for that).
func (j *Job) Wait(ctx context.Context) (*driver.Report, error) {
	select {
	case <-j.doneCh:
		return j.report, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Results streams the job's batches as they complete; batches executed
// before the first Results call are replayed into the stream, so it is
// complete whenever it is opened: across all updates every submitted
// comparison appears exactly once (dedup'd duplicates stream alongside
// their representative; cache-served results lead as a Batch == -1
// update). The channel is buffered for the whole
// schedule — executors never block on a slow consumer — and is closed
// when the job settles, so ranging over it terminates; check Err
// afterwards to distinguish completion from cancellation. Results blocks
// until planning finishes (it needs the schedule's size); a job that
// settles before then yields a closed, empty stream.
func (j *Job) Results() <-chan Update {
	select {
	case <-j.built:
	case <-j.doneCh:
		select {
		case <-j.built:
		default: // settled before (or without) a plan
			ch := make(chan Update)
			close(ch)
			return ch
		}
	}
	j.eng.mu.Lock()
	defer j.eng.mu.Unlock()
	j.openStreamLocked()
	return j.updates
}
