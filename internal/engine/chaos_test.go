package engine

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/workload"
)

// probePlan builds the batch schedule a configuration produces, so
// chaos tests can replay a fault plan's deterministic decisions over
// the exact batches an engine run will see.
func probePlan(t *testing.T, d *workload.Dataset, cfg driver.Config) *driver.BatchPlan {
	t.Helper()
	bp, err := driver.BuildBatches(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

// predictFaults replays a fault plan over nb batches the way a retried
// engine run executes them — attempt 0, then one retry per transient
// failure until the batch draws something else — and returns the exact
// injection counts the run must produce: permanent batches fail once
// and are quarantined (never retried: the fault is not transient),
// other batches fail transiently a deterministic number of times, and a
// terminal straggler delays the attempt that finally succeeds.
func predictFaults(p *driver.FaultPlan, nb int) (transients, permanents, stragglers int) {
	for bi := 0; bi < nb; bi++ {
		if p.Kind(bi, 0) == driver.FaultPermanent {
			permanents++
			continue
		}
		a := 0
		for p.Kind(bi, a) == driver.FaultTransient {
			transients++
			a++
		}
		if p.Kind(bi, a) == driver.FaultStraggler {
			stragglers++
		}
	}
	return
}

// assertNoGoroutineLeak waits for the goroutine count to return to the
// baseline taken before the engine under test existed.
func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosMatrix: under a seeded fault plan injecting transient
// failures and straggler delays, a retrying engine completes every job
// with a report bit-identical to the fault-free golden — across plain,
// dedup, traceback and cache+traceback configurations — and the
// retry/fault counters match the plan's deterministic schedule exactly.
func TestChaosMatrix(t *testing.T) {
	d := readsData(t, 31, 30)
	cases := []struct {
		name             string
		dedup, traceback bool
		cache            bool
	}{
		{"plain", false, false, false},
		{"dedup", true, false, false},
		{"traceback", false, true, false},
		{"cache+traceback", true, true, true},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			cfg := testCfg(2)
			cfg.MaxBatchJobs = 4
			cfg.DedupExtensions = tc.dedup
			cfg.Traceback = tc.traceback
			want, err := driver.Run(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			plan := driver.NewFaultPlan(int64(1000+i), driver.FaultSpec{
				TransientRate:  0.25,
				StragglerRate:  0.10,
				StragglerDelay: time.Millisecond,
			})
			opts := []Option{
				WithDriverConfig(cfg), WithExecutors(4),
				WithRetry(12, 0),
				WithRetryBackoff(200*time.Microsecond, 2*time.Millisecond),
				WithFaultPlan(plan),
			}
			if tc.cache {
				opts = append(opts, WithResultCache(1 << 14))
			}
			e := New(opts...)
			jobs := 1
			if tc.cache {
				jobs = 2 // the second submission re-runs warm through the cache
			}
			for k := 0; k < jobs; k++ {
				job, err := e.Submit(context.Background(), d)
				if err != nil {
					t.Fatal(err)
				}
				got, err := job.Wait(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if tc.cache {
					// A cache changes the report's hit/miss bookkeeping
					// (and a warm job's batch count) by design; the
					// per-comparison results must still survive faults
					// bit for bit.
					if len(got.Results) != len(want.Results) {
						t.Fatalf("job %d: %d results, want %d", k, len(got.Results), len(want.Results))
					}
					for i := range want.Results {
						if got.Results[i] != want.Results[i] {
							t.Fatalf("job %d result %d differs from fault-free golden", k, i)
						}
					}
					if got.PartialFailures != 0 {
						t.Fatalf("job %d: PartialFailures = %d", k, got.PartialFailures)
					}
				} else {
					reportsEqual(t, tc.name, got, want)
				}
			}
			st := e.Stats()
			tr, pm, strag := plan.Injected()
			if pm != 0 {
				t.Fatalf("permanent faults injected at rate 0: %d", pm)
			}
			if st.Retries != tr {
				t.Fatalf("Stats.Retries = %d, want one per injected transient (%d)", st.Retries, tr)
			}
			if st.FaultsInjected != tr+strag {
				t.Fatalf("Stats.FaultsInjected = %d, want %d", st.FaultsInjected, tr+strag)
			}
			if st.Quarantined != 0 || st.DeadlineExceeded != 0 || st.Hedges != 0 {
				t.Fatalf("unexpected degradation: %+v", st)
			}
			if !tc.cache {
				// Single job, deterministic schedule: the injected counts
				// are predictable from the plan alone.
				nb := probePlan(t, d, cfg).Batches()
				wantTr, _, wantStrag := predictFaults(plan, nb)
				if int(tr) != wantTr || int(strag) != wantStrag {
					t.Fatalf("Injected() = (%d, _, %d), predicted (%d, _, %d)",
						tr, strag, wantTr, wantStrag)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			assertNoGoroutineLeak(t, base)
		})
	}
}

// TestChaosPermanentFallback: batches drawing permanent faults are
// quarantined to the reference host path and the job's report is still
// bit-identical to the fault-free golden; quarantine and retry counters
// match the plan's schedule exactly.
func TestChaosPermanentFallback(t *testing.T) {
	d := readsData(t, 32, 30)
	cfg := testCfg(2)
	cfg.MaxBatchJobs = 3
	want, err := driver.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb := probePlan(t, d, cfg).Batches()
	plan := driver.NewFaultPlan(6, driver.FaultSpec{PermanentRate: 0.4, TransientRate: 0.2})
	wantTr, wantPm, _ := predictFaults(plan, nb)
	if wantPm == 0 || wantPm == nb {
		t.Fatalf("seed draws %d/%d permanent batches; need a mix", wantPm, nb)
	}
	e := New(WithDriverConfig(cfg), WithExecutors(4),
		WithRetry(12, 0), WithRetryBackoff(200*time.Microsecond, 2*time.Millisecond),
		WithDegradedMode(DegradeFallback), WithFaultPlan(plan))
	defer e.Close()
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "permanent fallback", got, want)
	if got.PartialFailures != 0 {
		t.Fatalf("PartialFailures = %d under fallback, want 0", got.PartialFailures)
	}
	st := e.Stats()
	tr, pm, _ := plan.Injected()
	if int(pm) != wantPm || int(tr) != wantTr {
		t.Fatalf("Injected() = (%d, %d, _), predicted (%d, %d, _)", tr, pm, wantTr, wantPm)
	}
	if st.Quarantined != int64(wantPm) {
		t.Fatalf("Stats.Quarantined = %d, want %d", st.Quarantined, wantPm)
	}
	if st.Retries != int64(wantTr) {
		t.Fatalf("Stats.Retries = %d, want %d", st.Retries, wantTr)
	}
}

// TestChaosPermanentPartial: under DegradePartial, permanently-failing
// batches complete as Failed placeholders — the job finishes, the
// failures are counted, and every other comparison is bit-identical to
// the fault-free golden.
func TestChaosPermanentPartial(t *testing.T) {
	d := readsData(t, 32, 30)
	cfg := testCfg(2)
	cfg.MaxBatchJobs = 3
	want, err := driver.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := probePlan(t, d, cfg)
	nb := probe.Batches()
	plan := driver.NewFaultPlan(6, driver.FaultSpec{PermanentRate: 0.4, TransientRate: 0.2})
	wantFailed := 0
	for bi := 0; bi < nb; bi++ {
		if plan.Kind(bi, 0) == driver.FaultPermanent {
			wantFailed += len(probe.FailedBatchResult(bi).Out)
		}
	}
	if wantFailed == 0 {
		t.Fatal("seed draws no permanent batches")
	}
	e := New(WithDriverConfig(cfg), WithExecutors(4),
		WithRetry(12, 0), WithRetryBackoff(200*time.Microsecond, 2*time.Millisecond),
		WithDegradedMode(DegradePartial), WithFaultPlan(plan))
	defer e.Close()
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	// Stream and report must agree on which comparisons failed.
	streamFailed := 0
	streamed := 0
	for upd := range job.Results() {
		for _, r := range upd.Results {
			streamed++
			if r.Failed {
				streamFailed++
			}
		}
	}
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.PartialFailures != wantFailed {
		t.Fatalf("PartialFailures = %d, want %d", got.PartialFailures, wantFailed)
	}
	if streamed != len(d.Comparisons) || streamFailed != wantFailed {
		t.Fatalf("stream carried %d results (%d failed), want %d (%d failed)",
			streamed, streamFailed, len(d.Comparisons), wantFailed)
	}
	failed := 0
	for i, r := range got.Results {
		if r.Failed {
			failed++
			continue
		}
		if !reflect.DeepEqual(r, want.Results[i]) {
			t.Fatalf("surviving comparison %d differs from fault-free golden", i)
		}
	}
	if failed != wantFailed {
		t.Fatalf("%d Failed results, want %d", failed, wantFailed)
	}
	if st := e.Stats(); st.Quarantined == 0 {
		t.Fatalf("Stats.Quarantined = 0, want > 0")
	}
}

// TestRetryBudgetExhaustedFailsJob: with DegradeFail (the default), a
// job whose per-job retry budget runs dry fails with the transient
// fault that broke it, and Stats.Retries equals the budget exactly.
func TestRetryBudgetExhaustedFailsJob(t *testing.T) {
	d := readsData(t, 33, 20)
	plan := driver.NewFaultPlan(9, driver.FaultSpec{TransientRate: 1})
	e := New(WithDriverConfig(testCfg(1)), WithExecutors(2),
		WithRetry(10, 2), WithRetryBackoff(100*time.Microsecond, time.Millisecond),
		WithFaultPlan(plan))
	defer e.Close()
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	_, err = job.Wait(context.Background())
	var fe *driver.FaultError
	if !errors.As(err, &fe) || !fe.Transient() {
		t.Fatalf("job err = %v, want transient *FaultError", err)
	}
	if st := e.Stats(); st.Retries != 2 {
		t.Fatalf("Stats.Retries = %d, want the whole budget (2)", st.Retries)
	}
}

// TestCancelDropsQueuedWorkAndLateResults (S1): cancelling a job with
// batches in flight and batches queued must drop the queued work
// promptly — no further executions are issued — and the in-flight
// executions' late deliveries must neither reach the closed stream nor
// count in engine stats.
func TestCancelDropsQueuedWorkAndLateResults(t *testing.T) {
	base := runtime.NumGoroutine()
	d := readsData(t, 34, 24)
	cfg := testCfg(1)
	cfg.MaxBatchJobs = 3
	nb := probePlan(t, d, cfg).Batches()
	const execs = 2
	if nb <= execs {
		t.Fatalf("want more batches than executors, got %d", nb)
	}
	plan := driver.NewFaultPlan(3, driver.FaultSpec{
		StragglerRate: 1, StragglerDelay: 400 * time.Millisecond,
	})
	e := New(WithDriverConfig(cfg), WithExecutors(execs), WithFaultPlan(plan))
	ctx, cancel := context.WithCancel(context.Background())
	job, err := e.Submit(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	updates := job.Results() // blocks until the plan is built, then cancel mid-flight
	cancel()
	if _, err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("job err = %v, want context.Canceled", err)
	}
	got := 0
	for range updates { // closed by settlement; late deliveries must not land here
		got++
	}
	if got != 0 {
		t.Fatalf("%d updates leaked into a cancelled job's stream", got)
	}
	if err := e.Close(); err != nil { // waits out the straggling executions
		t.Fatal(err)
	}
	st := e.Stats()
	if st.BatchesDone != 0 || st.CellsDone != 0 || st.JobsDone != 0 {
		t.Fatalf("late deliveries corrupted stats: %+v", st)
	}
	if st.JobsLive != 0 {
		t.Fatalf("JobsLive = %d after settlement", st.JobsLive)
	}
	// Prompt drop: only the executions already in flight at cancel ever
	// started — the injection counter is per execution, so it bounds
	// issues exactly.
	if total := plan.InjectedTotal(); total > execs {
		t.Fatalf("%d executions started, want <= %d: queued batches not dropped", total, execs)
	}
	assertNoGoroutineLeak(t, base)
}

// TestEngineCloseWithPendingRetriesNoLeak (S2): Close while backoff
// timers are pending and every attempt keeps failing must neither
// deadlock nor leak goroutines once the job is cancelled.
func TestEngineCloseWithPendingRetriesNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	d := readsData(t, 35, 16)
	plan := driver.NewFaultPlan(9, driver.FaultSpec{TransientRate: 1})
	e := New(WithDriverConfig(testCfg(1)), WithExecutors(2),
		WithRetry(1<<20, 0), WithRetryBackoff(20*time.Millisecond, 40*time.Millisecond),
		WithFaultPlan(plan))
	ctx, cancel := context.WithCancel(context.Background())
	job, err := e.Submit(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	// Let attempts fail and backoff timers arm, then cancel under them.
	time.Sleep(60 * time.Millisecond)
	cancel()
	if _, err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("job err = %v, want context.Canceled", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeak(t, base)
}

// TestDeadlineHedgeAndFallback: a single straggling batch pushes a job
// into its hedge window (the duplicate is issued exactly once), then
// past its deadline, where DegradeFallback quarantines it to the host
// path — and the report is still bit-identical to the fault-free
// golden, with the losing executions dropped first-result-wins.
func TestDeadlineHedgeAndFallback(t *testing.T) {
	base := runtime.NumGoroutine()
	d := readsData(t, 36, 6)
	cfg := testCfg(1)
	if nb := probePlan(t, d, cfg).Batches(); nb != 1 {
		t.Fatalf("want a single batch, got %d", nb)
	}
	want, err := driver.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := driver.NewFaultPlan(4, driver.FaultSpec{
		StragglerRate: 1, StragglerDelay: 1500 * time.Millisecond,
	})
	e := New(WithDriverConfig(cfg), WithExecutors(3),
		WithJobDeadline(500*time.Millisecond),
		WithDegradedMode(DegradeFallback),
		WithFaultPlan(plan))
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "deadline fallback", got, want)
	st := e.Stats()
	if st.Hedges != 1 {
		t.Fatalf("Stats.Hedges = %d, want exactly 1", st.Hedges)
	}
	if st.DeadlineExceeded != 1 || st.Quarantined != 1 {
		t.Fatalf("DeadlineExceeded = %d, Quarantined = %d, want 1, 1",
			st.DeadlineExceeded, st.Quarantined)
	}
	if st.BatchesDone != 1 {
		t.Fatalf("BatchesDone = %d: a losing hedge copy double-counted", st.BatchesDone)
	}
	if err := e.Close(); err != nil { // waits out the straggling copies
		t.Fatal(err)
	}
	assertNoGoroutineLeak(t, base)
}

// TestDeadlinePartialCompletes: a job that cannot finish in time under
// DegradePartial settles at the deadline with every undelivered batch
// as Failed placeholders, streamed and counted.
func TestDeadlinePartialCompletes(t *testing.T) {
	d := readsData(t, 37, 18)
	cfg := testCfg(1)
	cfg.MaxBatchJobs = 4
	plan := driver.NewFaultPlan(8, driver.FaultSpec{
		StragglerRate: 1, StragglerDelay: 2 * time.Second,
	})
	e := New(WithDriverConfig(cfg), WithExecutors(2),
		WithJobDeadline(300*time.Millisecond),
		WithDegradedMode(DegradePartial),
		WithFaultPlan(plan))
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	updates := job.Results()
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.PartialFailures != len(d.Comparisons) {
		t.Fatalf("PartialFailures = %d, want every comparison (%d)",
			got.PartialFailures, len(d.Comparisons))
	}
	streamed, streamFailed := 0, 0
	for upd := range updates {
		for _, r := range upd.Results {
			streamed++
			if r.Failed {
				streamFailed++
			}
		}
	}
	if streamed != len(d.Comparisons) || streamFailed != streamed {
		t.Fatalf("stream carried %d results, %d failed; want %d, all failed",
			streamed, streamFailed, len(d.Comparisons))
	}
	st := e.Stats()
	if st.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
	if st.Quarantined == 0 {
		t.Fatal("Quarantined = 0, want every undelivered batch")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultInjectionOffIsByteIdentical: an engine with no fault plan
// and retries off behaves exactly as before the fault-tolerance layer —
// same report, all fault counters zero.
func TestFaultInjectionOffIsByteIdentical(t *testing.T) {
	d := readsData(t, 38, 20)
	cfg := testCfg(2)
	want, err := driver.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithDriverConfig(cfg), WithExecutors(4))
	defer e.Close()
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "no faults", got, want)
	st := e.Stats()
	if st.Retries != 0 || st.Hedges != 0 || st.Quarantined != 0 ||
		st.FaultsInjected != 0 || st.DeadlineExceeded != 0 {
		t.Fatalf("fault counters nonzero without a plan: %+v", st)
	}
}
