// Engine-level multi-slab spine coverage: the result cache keys on
// content digests, so the slab layout a client packed its pool into must
// be invisible to cache identity — and concurrent jobs over one spilled
// spine must pin and release slabs without racing each other.

package engine

import (
	"context"
	"sync"
	"testing"

	"github.com/sram-align/xdropipu/internal/workload"
)

// repackedSpine packs d's pool into a spine capped at maxSlab bytes per
// slab and returns the spine-only dataset plus its arena.
func repackedSpine(t testing.TB, d *workload.Dataset, maxSlab int) (*workload.Dataset, *workload.Arena) {
	t.Helper()
	a := workload.NewArena(0, len(d.Sequences))
	a.SetMaxSlabBytes(maxSlab)
	for _, s := range d.Sequences {
		a.Append(s)
	}
	if a.NumSlabs() < 2 {
		t.Fatalf("%d-byte cap produced %d slabs — fixture not multi-slab", maxSlab, a.NumSlabs())
	}
	rd := a.NewStreamingDataset(d.Name, workload.PlanOf(d.Comparisons), d.Protein)
	if err := rd.Validate(); err != nil {
		t.Fatal(err)
	}
	return rd, a
}

// TestEngineSpineCacheAcrossSlabLayouts: a warm submission of the same
// content repacked into many spilled slabs must be served entirely from
// the result cache — ExtensionKeys are content digests and never see the
// slab layout.
func TestEngineSpineCacheAcrossSlabLayouts(t *testing.T) {
	base := cacheTestDataset(61)
	eng := New(WithDriverConfig(cacheTestConfig()), WithResultCache(1<<12))
	defer eng.Close()

	j1, err := eng.Submit(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	rd, arena := repackedSpine(t, base, 600)
	arena.EnableSpill(t.TempDir())
	arena.Seal()
	if _, err := arena.Spill(); err != nil {
		t.Fatal(err)
	}
	j2, err := eng.Submit(context.Background(), rd)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Batches != 0 {
		t.Errorf("warm multi-slab job executed %d batches, want 0 (cache missed across slab layouts)", warm.Batches)
	}
	if warm.CacheMisses != 0 {
		t.Errorf("warm multi-slab job recorded %d cache misses", warm.CacheMisses)
	}
	for i := range cold.Results {
		if warm.Results[i] != cold.Results[i] {
			t.Fatalf("cache-served result %d differs across slab layouts: %+v vs %+v",
				i, warm.Results[i], cold.Results[i])
		}
	}
	if err := arena.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineSpineConcurrentJobsOneArena: several concurrent jobs over the
// SAME spilled spine exercise the pin/release protocol from the engine's
// executor pool — batches of different jobs fault and pin shared slabs
// concurrently, and every job must still report bit-identically.
func TestEngineSpineConcurrentJobsOneArena(t *testing.T) {
	base := cacheTestDataset(67)
	want, err := RunOnce(context.Background(), cacheTestConfig(), base)
	if err != nil {
		t.Fatal(err)
	}

	rd, arena := repackedSpine(t, base, 600)
	arena.EnableSpill(t.TempDir())
	arena.Seal()
	if _, err := arena.Spill(); err != nil {
		t.Fatal(err)
	}

	eng := New(WithDriverConfig(cacheTestConfig()), WithExecutors(4), WithQueueDepth(8))
	defer eng.Close()

	const jobs = 6
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := eng.Submit(context.Background(), rd)
			if err != nil {
				t.Error(err)
				return
			}
			rep, err := j.Wait(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			for i := range want.Results {
				if rep.Results[i] != want.Results[i] {
					t.Errorf("concurrent spilled-spine job: result %d differs", i)
					return
				}
			}
		}()
	}
	wg.Wait()

	// All pins released: the whole spine spills again.
	if _, err := arena.Spill(); err != nil {
		t.Fatal(err)
	}
	if st := arena.Residency(); st.Resident != 0 {
		t.Errorf("slabs still pinned after all jobs drained: %+v", st)
	}
	if st := arena.Residency(); st.Faults == 0 {
		t.Error("no faults recorded — jobs never touched the spilled spine")
	}
	if err := arena.Close(); err != nil {
		t.Fatal(err)
	}
}
