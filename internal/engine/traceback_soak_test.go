package engine

import (
	"context"
	"sync"
	"testing"

	"github.com/sram-align/xdropipu/internal/alignment"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/workload"
)

// dupDataset repeats a dataset's comparisons factor times over the same
// pool, the duplicate-heavy shape that exercises dedup and the cache.
func dupDataset(d *workload.Dataset, factor int) *workload.Dataset {
	cmps := make([]workload.Comparison, 0, len(d.Comparisons)*factor)
	for f := 0; f < factor; f++ {
		cmps = append(cmps, d.Comparisons...)
	}
	return &workload.Dataset{Name: d.Name + "-dup", Sequences: d.Sequences,
		Comparisons: cmps, Protein: d.Protein}
}

// collectStream drains a job's update stream into per-comparison space,
// failing on duplicate or missing comparisons.
func collectStream(t *testing.T, job *Job, n int) []ipukernel.AlignOut {
	t.Helper()
	got := make([]ipukernel.AlignOut, n)
	seen := make([]bool, n)
	for u := range job.Results() {
		for _, r := range u.Results {
			if r.GlobalID < 0 || r.GlobalID >= n {
				t.Fatalf("streamed GlobalID %d out of range", r.GlobalID)
			}
			if seen[r.GlobalID] {
				t.Fatalf("comparison %d streamed twice", r.GlobalID)
			}
			seen[r.GlobalID] = true
			got[r.GlobalID] = r
		}
	}
	if err := job.Err(); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("comparison %d never streamed", i)
		}
	}
	return got
}

// TestTracebackSoakStreamingDedupCancel is the engine soak: several
// duplicate-heavy jobs streamed concurrently from a traceback-enabled
// engine with dedup and the cross-job result cache on, with submissions
// cancelled mid-flight interleaved throughout. Every surviving job's
// per-comparison alignments (CIGARs included) must be identical to a
// dedup-off, cache-off traceback run of the same dataset, and the
// mid-job cancellations must neither poison other jobs nor leak into
// their streams. CI reruns this under -race, which is where the soak
// earns its keep: executors, streams and cancellation all cross
// goroutines.
func TestTracebackSoakStreamingDedupCancel(t *testing.T) {
	const dupFactor = 3
	base := dupDataset(readsData(t, 11, 24), dupFactor)

	// Ground truth: plain engine (no dedup, no cache), traceback on.
	plainCfg := testCfg(2)
	plainCfg.Traceback = true
	want, err := driver.Run(base, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range want.Results {
		if r.Cigar == "" {
			t.Fatalf("ground-truth comparison %d has no cigar", i)
		}
	}

	eng := New(WithDriverConfig(plainCfg), WithResultCache(0), WithTraceback(true),
		WithMaxBatchJobs(16), WithQueueDepth(8))
	defer eng.Close()

	const rounds = 3
	const jobsPerRound = 4
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for jo := 0; jo < jobsPerRound; jo++ {
			wg.Add(1)
			go func(jo int) {
				defer wg.Done()
				if jo == jobsPerRound-1 {
					// The cancellation lane: cancel while batches are in
					// flight; the job must settle with the context error
					// and nothing else.
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					job, err := eng.Submit(ctx, base)
					if err != nil {
						t.Error(err)
						return
					}
					// Wait for the first streamed update (the job is
					// genuinely mid-flight), then cancel.
					_, ok := <-job.Results()
					cancel()
					<-job.Done()
					if ok && job.Err() == nil {
						// The job may legitimately finish before cancel
						// lands; both outcomes are fine as long as it
						// settles consistently.
						if _, err := job.Wait(context.Background()); err != nil {
							t.Errorf("settled job reported error: %v", err)
						}
					}
					return
				}
				job, err := eng.Submit(context.Background(), base)
				if err != nil {
					t.Error(err)
					return
				}
				got := collectStream(t, job, len(base.Comparisons))
				for i := range got {
					if got[i] != want.Results[i] {
						t.Errorf("round %d job %d: comparison %d differs from dedup-off run:\n got: %+v\nwant: %+v",
							round, jo, i, got[i], want.Results[i])
						return
					}
				}
				rep, err := job.Wait(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				if rep.DedupedComparisons == 0 {
					t.Errorf("round %d job %d: no dedup on a %d× duplicated dataset", round, jo, dupFactor)
				}
				if rep.PeakTracebackBytes <= 0 && rep.CacheHits == 0 {
					t.Errorf("round %d job %d: executed batches reported no traceback memory", round, jo)
				}
				for i, r := range rep.Results {
					if r.Cigar != want.Results[i].Cigar {
						t.Errorf("round %d job %d: report cigar %d differs", round, jo, i)
						return
					}
				}
			}(jo)
		}
		wg.Wait()
	}

	// After the soak the cache is warm: a fresh submission must be served
	// (fully or partly) from the cache and still carry identical CIGARs.
	st := eng.Stats()
	if st.CacheHits == 0 {
		t.Fatal("soak produced no cache hits")
	}
	job, err := eng.Submit(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(t, job, len(base.Comparisons))
	for i := range got {
		if got[i] != want.Results[i] {
			t.Fatalf("cache-served comparison %d differs:\n got: %+v\nwant: %+v", i, got[i], want.Results[i])
		}
	}
}

// TestWithTracebackOptionFingerprint: the traceback flag must split the
// kernel fingerprint, so score-only and traceback cache entries can
// never alias.
func TestWithTracebackOptionFingerprint(t *testing.T) {
	cfg := testCfg(1).Normalized()
	on := cfg
	on.Traceback = true
	on = on.Normalized()
	if driver.KernelFingerprint(cfg.Kernel, cfg.Model) == driver.KernelFingerprint(on.Kernel, on.Model) {
		t.Fatal("traceback flag does not change the kernel fingerprint")
	}
	e := New(WithDriverConfig(testCfg(1)), WithTraceback(true))
	defer e.Close()
	if !e.Config().Kernel.Traceback {
		t.Fatal("WithTraceback did not reach the kernel config")
	}
}

// TestTracebackStreamCigarsValidate: streamed updates must carry
// validated CIGARs whose spans match each result's coordinates.
func TestTracebackStreamCigarsValidate(t *testing.T) {
	d := readsData(t, 13, 18)
	cfg := testCfg(1)
	cfg.Traceback = true
	e := New(WithDriverConfig(cfg), WithMaxBatchJobs(8))
	defer e.Close()
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(t, job, len(d.Comparisons))
	p := cfg.Kernel.Params
	for i, r := range got {
		aln := alignment.Alignment{Score: r.Score, BegH: r.BegH, BegV: r.BegV,
			EndH: r.EndH, EndV: r.EndV, Cigar: r.Cigar}
		if err := aln.Validate(); err != nil {
			t.Fatalf("streamed comparison %d invalid: %v (cigar %q)", i, err, r.Cigar)
		}
		c := d.Comparisons[i]
		h, v := d.Sequences[c.H], d.Sequences[c.V]
		recon, err := alignment.ScoreOf(h[r.BegH:r.EndH], v[r.BegV:r.EndV], r.Cigar, p.Scorer, p.Gap, p.GapOpen)
		if err != nil || recon != r.Score {
			t.Fatalf("streamed comparison %d: reconstructed %d (err %v) != score %d", i, recon, err, r.Score)
		}
	}
}
