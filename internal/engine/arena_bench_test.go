package engine

import (
	"context"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

// benchmarkSubmit measures the warm host-side cost of one submitted job
// at a given submitter concurrency, in two dataset regimes:
//
//   - slices: every job materialises its own pool — a fresh [][]byte
//     Dataset per submission, the way pre-arena clients fed the engine
//     (each request owning a copy of Ω, re-counted at every layer);
//   - arena: every job shares one immutable arena-backed dataset, so a
//     submission carries spans and the pool bytes are resident once.
//
// allocs/op and B/op are per job; poolB/job reports the Ω bytes each job
// materialises (the "host-side bytes per job" the arena eliminates).
func benchmarkSubmit(b *testing.B, submitters int, arenaBacked bool) {
	base := synth.UniformPairs(synth.UniformPairsSpec{
		Count: 12, Length: 500, ErrorRate: 0.15, SeedLen: 17, Seed: 77})
	poolBytes := base.TotalSeqBytes()

	cfg := driver.Config{IPUs: 1, Partition: true, Kernel: ipukernel.Config{
		Params: core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 10, DeltaB: 128}}}
	eng := New(WithDriverConfig(cfg), WithQueueDepth(max(submitters, DefaultQueueDepth)))
	defer eng.Close()

	mkJob := func() *workload.Dataset {
		if arenaBacked {
			return base // one resident arena, shared by every submission
		}
		return base.Clone() // every job materialises its own pool
	}

	// Warm the engine (device pools, executors) outside the measurement.
	if j, err := eng.Submit(context.Background(), mkJob()); err != nil {
		b.Fatal(err)
	} else if _, err := j.Wait(context.Background()); err != nil {
		b.Fatal(err)
	}

	jobs := make(chan *workload.Dataset, submitters)
	done := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		go func() {
			for d := range jobs {
				j, err := eng.Submit(context.Background(), d)
				if err == nil {
					_, err = j.Wait(context.Background())
				}
				done <- err
			}
		}()
	}

	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			jobs <- mkJob()
		}
		close(jobs)
	}()
	for i := 0; i < b.N; i++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if arenaBacked {
		b.ReportMetric(0, "poolB/job")
	} else {
		b.ReportMetric(float64(poolBytes), "poolB/job")
	}
}

func BenchmarkSubmitSlices1(b *testing.B)  { benchmarkSubmit(b, 1, false) }
func BenchmarkSubmitArena1(b *testing.B)   { benchmarkSubmit(b, 1, true) }
func BenchmarkSubmitSlices4(b *testing.B)  { benchmarkSubmit(b, 4, false) }
func BenchmarkSubmitArena4(b *testing.B)   { benchmarkSubmit(b, 4, true) }
func BenchmarkSubmitSlices16(b *testing.B) { benchmarkSubmit(b, 16, false) }
func BenchmarkSubmitArena16(b *testing.B)  { benchmarkSubmit(b, 16, true) }
