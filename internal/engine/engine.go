// Package engine exposes the modeled IPU system as a persistent
// asynchronous service, the way the paper's library does on real
// hardware (create_batches → async_submit → blocking_join): a long-lived
// Engine owns the device fleet, many clients Submit datasets
// concurrently, and each submission streams its results back batch by
// batch while the host keeps producing work.
//
// The engine layers on the driver's staged pipeline: Submit builds a
// BatchPlan asynchronously (cancellable via the submission's context),
// then a fixed pool of device executors interleaves batches from every
// active job onto the shared fleet — earliest-free device, per-job fair
// share — so one huge submission cannot starve small ones. A bounded
// admission queue provides backpressure: Submit blocks once QueueDepth
// jobs are in flight.
//
// Reports are bit-identical to driver.Run for the same dataset and
// configuration regardless of submission order, queue depth or executor
// count: batches are independent, per-batch results deterministic, and
// the final report is assembled in batch order from the job's own plan.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipu"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/workload"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// ErrDeadline settles a job whose WithJobDeadline expired in the default
// (fail) degraded mode. It wraps context.DeadlineExceeded, so
// errors.Is(err, context.DeadlineExceeded) holds.
var ErrDeadline = fmt.Errorf("engine: job deadline exceeded: %w", context.DeadlineExceeded)

// DefaultQueueDepth bounds in-flight submissions when WithQueueDepth is
// not given.
const DefaultQueueDepth = 16

// DegradedMode selects what the engine does with a batch that exhausted
// its fault tolerance (permanent fault, retry budget spent, or a job
// deadline expiring with work outstanding).
type DegradedMode uint8

const (
	// DegradeFail fails the whole job with the batch's error — the
	// pre-fault-tolerance behaviour, and the default.
	DegradeFail DegradedMode = iota
	// DegradeFallback quarantines the batch off the (faulty) fleet and
	// re-runs it through the reference host path
	// (driver.BatchPlan.ExecBatchHost). Results are bit-identical to
	// fault-free fleet execution, so the job's report is unchanged; only
	// Stats.Quarantined records the detour. Should the host path itself
	// fail (a deterministic execution error no re-run fixes), the batch
	// completes with Failed placeholders as in DegradePartial.
	DegradeFallback
	// DegradePartial completes the batch with one Failed placeholder per
	// comparison: the job finishes, Report.PartialFailures counts the
	// casualties, and each affected Results entry has Failed set.
	DegradePartial
)

// String names the mode.
func (m DegradedMode) String() string {
	switch m {
	case DegradeFail:
		return "fail"
	case DegradeFallback:
		return "fallback"
	case DegradePartial:
		return "partial"
	}
	return fmt.Sprintf("DegradedMode(%d)", uint8(m))
}

// Engine is a persistent asynchronous alignment service over the modeled
// device fleet.
type Engine struct {
	cfg          driver.Config
	queueDepth   int
	executors    int
	cacheEntries int
	cache        *resultCache

	// Fault-tolerance policy, fixed at construction.
	retryMax    int           // max retries per batch (0 = retries off)
	retryBudget int           // per-job retry cap (0 = uncapped)
	backoffBase time.Duration // first retry delay
	backoffCap  time.Duration // backoff ceiling
	deadline    time.Duration // per-job wall-clock deadline (0 = none)
	hedgeWindow time.Duration // hedging opens this long before the deadline
	degraded    DegradedMode

	mu     sync.Mutex
	cond   *sync.Cond
	active []*Job // built, unfinished jobs with work left to issue or hedge
	live   int    // admitted jobs not yet finished
	busy   int    // executors currently running a batch
	closed bool
	seq    int64

	// stats, guarded by mu
	doneJobs    int64
	doneBatches int64
	doneCells   int64
	stNarrow    int64
	stWide      int64
	stPromoted  int64
	stTraced    int64
	stSkipped   int64
	stRetries   int64
	stHedges    int64
	stQuarant   int64
	stDeadline  int64

	closedCh  chan struct{}
	slots     chan struct{} // admission tokens, cap queueDepth
	wgJobs    sync.WaitGroup
	wgWorkers sync.WaitGroup
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithDriverConfig replaces the whole driver configuration (fleet,
// kernel, partitioning). Later options still apply on top.
func WithDriverConfig(cfg driver.Config) Option { return func(e *Engine) { e.cfg = cfg } }

// WithModel selects the IPU generation.
func WithModel(m platform.IPUModel) Option { return func(e *Engine) { e.cfg.Model = m } }

// WithIPUs sets the modeled device count (NUMBER_IPUS).
func WithIPUs(n int) Option { return func(e *Engine) { e.cfg.IPUs = n } }

// WithTilesPerIPU restricts tiles per device (0 = all).
func WithTilesPerIPU(n int) Option { return func(e *Engine) { e.cfg.TilesPerIPU = n } }

// WithKernel configures the on-tile X-Drop codelet.
func WithKernel(k ipukernel.Config) Option { return func(e *Engine) { e.cfg.Kernel = k } }

// WithPartition toggles graph-based sequence reuse (§4.3).
func WithPartition(on bool) Option { return func(e *Engine) { e.cfg.Partition = on } }

// WithSeqBudget caps a partition's sequence payload in bytes.
func WithSeqBudget(b int) Option { return func(e *Engine) { e.cfg.SeqBudget = b } }

// WithMaxBatchJobs caps comparisons per batch; finer batches interleave
// concurrent jobs more smoothly.
func WithMaxBatchJobs(n int) Option { return func(e *Engine) { e.cfg.MaxBatchJobs = n } }

// WithBatchOverhead sets the modeled host-side cost per batch.
func WithBatchOverhead(sec float64) Option {
	return func(e *Engine) { e.cfg.BatchOverheadSeconds = sec }
}

// WithDedupExtensions toggles duplicate-extension elimination: every
// submission's byte-identical (pair, seed) extensions are aligned once
// and fanned back out, so reports stay per-comparison while modeled work
// drops. Off by default; per-comparison alignments are identical either
// way.
func WithDedupExtensions(on bool) Option { return func(e *Engine) { e.cfg.DedupExtensions = on } }

// WithResultCache attaches a bounded, sharded LRU result cache shared by
// every job the engine serves, keyed by (extension key, kernel-config
// fingerprint): byte-identical extensions submitted by any client — same
// job or a later one, regardless of pool numbering — are aligned once.
// entries bounds the cache (0 → DefaultResultCacheEntries). Enabling the
// cache also enables duplicate-extension elimination, which the cache
// keys ride on. Hit/miss/evict counters surface in Stats. The bound is
// per entry: under WithTraceback each entry also holds its alignment's
// CIGAR (length-proportional), so size entries accordingly and watch
// Stats.CacheBytes for the resident footprint.
func WithResultCache(entries int) Option {
	return func(e *Engine) {
		if entries <= 0 {
			entries = DefaultResultCacheEntries
		}
		e.cacheEntries = entries
		e.cfg.DedupExtensions = true
	}
}

// WithTraceback enables the two-pass traceback subsystem for every job
// the engine serves: each streamed and reported result carries its CIGAR
// (AlignOut.Cigar) and reports expose peak traceback memory. Composes
// with dedup and the result cache — a cached hit fans the stored CIGAR
// back out to every duplicate comparison, and the cache keys include the
// traceback flag so score-only and traceback runs never share entries.
func WithTraceback(on bool) Option { return func(e *Engine) { e.cfg.Traceback = on } }

// WithTraceMinScore gates the traceback cost behind a score cutoff for
// every job the engine serves: comparisons whose total score falls below
// min deliver score-only results (no CIGAR) and skip the recording
// replay entirely, so hit-sparse workloads pay traceback only for the
// alignments they keep. Zero or negative traces everything; ignored
// without WithTraceback. The cutoff is part of the kernel fingerprint,
// so gated and ungated runs never share result-cache entries — a warm
// hit below the cutoff can never fan out a stale CIGAR. The
// TracedExtensions/TraceSkippedExtensions counters in Stats (and every
// Report) split the executed extensions across the gate.
func WithTraceMinScore(min int) Option {
	return func(e *Engine) { e.cfg.TraceMinScore = min }
}

// WithTraceMode selects how traced comparisons record their directions:
// core.TraceModeAuto (default) fuses recording into the scoring pass
// whenever the extension's direction arena fits the per-thread budget
// and replays otherwise; core.TraceModeReplay always uses the two-pass
// replay; core.TraceModeFused forces single-pass recording wherever the
// kernel is eligible. Fused and replayed recordings are bit-identical —
// the modes differ only in SRAM charging and modeled time — but the mode
// is still part of the kernel fingerprint, so caches never mix entries
// whose trace accounting describes different execution shapes.
func WithTraceMode(m core.TraceMode) Option {
	return func(e *Engine) { e.cfg.TraceMode = m }
}

// WithKernelTier selects the kernel score width for every job the engine
// serves: core.TierWide (the int32 default), core.TierNarrow (int16
// kernels with transparent promotion to int32 on saturation) or
// core.TierAuto (int16 only when the headroom precheck proves saturation
// impossible, halving the DP working set the SRAM budget must hold).
// Per-comparison results are bit-identical across tiers; only the
// Narrow/Wide/PromotedExtensions counters and the modeled SRAM differ.
// The tier is part of the kernel fingerprint, so a shared result cache
// never mixes tiers.
func WithKernelTier(t core.Tier) Option { return func(e *Engine) { e.cfg.KernelTier = t } }

// WithRetry enables per-batch retry of transient execution failures:
// a batch whose attempt fails with a transient fault (a fault plan's
// FaultTransient, the only error class a re-execution can outrun) is
// re-issued after capped exponential backoff with deterministic jitter,
// up to max retries per batch and budget retries per job (budget <= 0 is
// uncapped). Retrying is provably safe here: batches are idempotent and
// every attempt's results are bit-identical, so the surviving report
// never depends on which attempt delivered — and under WithResultCache a
// retried batch's unique extensions may even return warm. Retries and
// injected faults surface in Stats.
func WithRetry(max, budget int) Option {
	return func(e *Engine) { e.retryMax, e.retryBudget = max, budget }
}

// WithRetryBackoff shapes the retry delay: the nth retry of a batch
// waits base·2ⁿ⁻¹ capped at ceil, plus a small deterministic jitter so
// simultaneous failures do not re-dogpile the fleet. Zero values keep
// the defaults (1ms base, 250ms ceiling). Backoff affects wall time
// only, never results.
func WithRetryBackoff(base, ceil time.Duration) Option {
	return func(e *Engine) { e.backoffBase, e.backoffCap = base, ceil }
}

// WithJobDeadline bounds every submission's wall-clock completion time.
// In the final fifth of the deadline, idle executors hedge: the slowest
// outstanding batch is duplicated onto a second device and the first
// result wins — safe because both executions are bit-identical by
// construction. A job still incomplete at the deadline counts in
// Stats.DeadlineExceeded and settles per WithDegradedMode: fail (the
// default, with ErrDeadline), fallback (remaining batches quarantined to
// the reference host path, full report), or partial (remaining batches
// complete as Failed placeholders).
func WithJobDeadline(d time.Duration) Option {
	return func(e *Engine) { e.deadline = d }
}

// WithDegradedMode selects how a batch that exhausted its fault
// tolerance completes: fail the job (DegradeFail, default), re-run the
// batch on the reference host path for a still-bit-identical report
// (DegradeFallback), or finish with per-comparison Failed status and
// Report.PartialFailures (DegradePartial).
func WithDegradedMode(m DegradedMode) Option {
	return func(e *Engine) { e.degraded = m }
}

// WithFaultPlan installs seeded, deterministic fault injection at the
// batch-execution boundary for every job the engine serves — the chaos
// substrate behind the retry/hedge/degradation machinery. Injected
// faults fail or delay executions but never change delivered results;
// Stats.FaultsInjected counts them.
func WithFaultPlan(p *driver.FaultPlan) Option {
	return func(e *Engine) { e.cfg.Faults = p }
}

// WithQueueDepth bounds in-flight submissions; Submit blocks (or fails
// on context cancellation) once the queue is full.
func WithQueueDepth(n int) Option { return func(e *Engine) { e.queueDepth = n } }

// WithExecutors sets the host-side executor pool width (0 → GOMAXPROCS).
// Executor count changes throughput only, never results or reports.
func WithExecutors(n int) Option { return func(e *Engine) { e.executors = n } }

// New starts an engine and its executor pool. Close releases it.
func New(opts ...Option) *Engine {
	e := &Engine{queueDepth: DefaultQueueDepth}
	for _, o := range opts {
		o(e)
	}
	e.normalize()
	if e.cacheEntries > 0 {
		// Keys carry the driver's kernel-config fingerprint, so even a
		// cache handed to differently-configured runs stays sound.
		e.cache = newResultCache(e.cacheEntries)
		e.cfg.Cache = e.cache
	}
	e.cond = sync.NewCond(&e.mu)
	e.closedCh = make(chan struct{})
	e.slots = make(chan struct{}, e.queueDepth)
	for i := 0; i < e.executors; i++ {
		e.wgWorkers.Add(1)
		go e.executor()
	}
	return e
}

func (e *Engine) normalize() {
	e.cfg = e.cfg.Normalized()
	if e.queueDepth <= 0 {
		e.queueDepth = DefaultQueueDepth
	}
	if e.executors <= 0 {
		e.executors = runtime.GOMAXPROCS(0)
	}
	if e.retryMax < 0 {
		e.retryMax = 0
	}
	if e.backoffBase <= 0 {
		e.backoffBase = time.Millisecond
	}
	if e.backoffCap <= 0 {
		e.backoffCap = 250 * time.Millisecond
	}
	if e.backoffCap < e.backoffBase {
		e.backoffCap = e.backoffBase
	}
	if e.deadline > 0 {
		// Hedging opens in the deadline's final fifth: late enough that
		// healthy batches finish undoubled, early enough that a duplicate
		// still has time to win.
		e.hedgeWindow = e.deadline / 5
	}
}

// Config returns the normalized driver configuration the fleet runs.
func (e *Engine) Config() driver.Config { return e.cfg }

// QueueDepth returns the admission bound: how many submissions may be in
// flight before Submit blocks. Together with Stats.JobsLive it gives the
// queue occupancy a service front-end sheds load on.
func (e *Engine) QueueDepth() int { return e.queueDepth }

// Executors returns the host-side executor pool width.
func (e *Engine) Executors() int { return e.executors }

// Stats is a snapshot of engine-lifetime aggregates.
type Stats struct {
	// JobsDone counts completed (not cancelled/failed) submissions.
	JobsDone int64
	// BatchesDone counts executed batches across all jobs.
	BatchesDone int64
	// CellsDone sums computed DP cells across executed batches.
	CellsDone int64
	// JobsLive counts admitted, unfinished submissions. With QueueDepth
	// it yields queue occupancy — the service tier's primary load-shedding
	// and autoscaling signal.
	JobsLive int
	// InflightBatches counts executors currently running a batch — the
	// instantaneous fleet utilisation signal.
	InflightBatches int
	// CacheHits, CacheMisses and CacheEvictions count result-cache
	// activity across all jobs (all zero without WithResultCache).
	CacheHits, CacheMisses, CacheEvictions int64
	// CacheBytes approximates the result cache's resident footprint
	// (per-entry overhead plus stored CIGAR lengths). The cache bound is
	// per entry; with traceback enabled entries carry alignment-length
	// CIGARs, and this is where that growth shows up.
	CacheBytes int64
	// Retries counts batch re-executions scheduled after transient
	// failures (WithRetry).
	Retries int64
	// Hedges counts duplicate executions issued for slow outstanding
	// batches near a job deadline (WithJobDeadline); the losing copy of a
	// hedged pair is dropped on delivery and never double-counts
	// BatchesDone or a stream.
	Hedges int64
	// Quarantined counts batches that exhausted their fault tolerance and
	// completed degraded — re-run on the reference host path
	// (DegradeFallback) or as Failed placeholders (DegradePartial).
	Quarantined int64
	// FaultsInjected counts everything the installed FaultPlan injected
	// across its lifetime: transient and permanent failures plus
	// straggler delays. Zero without WithFaultPlan.
	FaultsInjected int64
	// DeadlineExceeded counts jobs whose WithJobDeadline expired with
	// work outstanding.
	DeadlineExceeded int64
	// Kernel-tier counters over every executed extension (disjoint;
	// cache-served and deduped comparisons execute nothing and count
	// nowhere): NarrowExtensions completed on the int16 tier,
	// PromotedExtensions saturated int16 and re-ran wide,
	// WideExtensions ran int32 outright. All zero until a job opts into
	// WithKernelTier (or a narrow driver/kernel config).
	NarrowExtensions, WideExtensions, PromotedExtensions int64
	// Traceback fast-path counters over every executed extension:
	// TracedExtensions delivered a recorded trace (CIGAR),
	// TraceSkippedExtensions fell below WithTraceMinScore's cutoff and
	// delivered score-only results. Disjoint; both zero without
	// WithTraceback.
	TracedExtensions, TraceSkippedExtensions int64
}

// Stats returns engine-lifetime counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := Stats{
		JobsDone:               e.doneJobs,
		BatchesDone:            e.doneBatches,
		CellsDone:              e.doneCells,
		JobsLive:               e.live,
		InflightBatches:        e.busy,
		NarrowExtensions:       e.stNarrow,
		WideExtensions:         e.stWide,
		PromotedExtensions:     e.stPromoted,
		TracedExtensions:       e.stTraced,
		TraceSkippedExtensions: e.stSkipped,
		Retries:                e.stRetries,
		Hedges:                 e.stHedges,
		Quarantined:            e.stQuarant,
		DeadlineExceeded:       e.stDeadline,
	}
	e.mu.Unlock()
	if f := e.cfg.Faults; f != nil {
		st.FaultsInjected = f.InjectedTotal()
	}
	if e.cache != nil {
		st.CacheHits = e.cache.hits.Load()
		st.CacheMisses = e.cache.misses.Load()
		st.CacheEvictions = e.cache.evictions.Load()
		st.CacheBytes = e.cache.payloadBytes.Load()
	}
	return st
}

// Submit enqueues a dataset for alignment and returns immediately with a
// Job handle. It blocks only for admission when QueueDepth jobs are
// already in flight; ctx cancels both the wait and the job itself
// (planning and any not-yet-issued batches). Arena-backed datasets are
// shared, not copied: any number of concurrent submissions of the same
// dataset reference one immutable slab of Ω, and the batches built for a
// job carry spans into it rather than private sequence slices.
func (e *Engine) Submit(ctx context.Context, d *workload.Dataset) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-e.closedCh:
		return nil, ErrClosed
	default:
	}
	select {
	case e.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.closedCh:
		return nil, ErrClosed
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.slots
		return nil, ErrClosed
	}
	e.seq++
	// The job runs on its own cancellable child of the submission context:
	// the caller's ctx still cancels it, and Job.Cancel gives holders of
	// the handle (a network front-end cancelling on client disconnect) the
	// same clean teardown without owning the submit context.
	jctx, jcancel := context.WithCancel(ctx)
	j := &Job{
		eng:     e,
		ctx:     jctx,
		cancel:  jcancel,
		seq:     e.seq,
		dataset: d,
		built:   make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	if e.deadline > 0 {
		// The clock starts at admission: queue wait was the caller's
		// backpressure, planning and execution are the job's own.
		j.deadline = time.Now().Add(e.deadline)
	}
	e.live++
	e.wgJobs.Add(1)
	e.mu.Unlock()
	go e.runJob(j)
	return j, nil
}

// Close stops admissions, waits for every in-flight job to finish and
// shuts the executor pool down. It is idempotent; Submit afterwards
// returns ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wgJobs.Wait()
		e.wgWorkers.Wait()
		return nil
	}
	e.closed = true
	close(e.closedCh)
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wgJobs.Wait()
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wgWorkers.Wait()
	return nil
}

// runJob builds the job's plan (cancellable), registers it with the
// scheduler, then watches for cancellation until the job finishes.
func (e *Engine) runJob(j *Job) {
	defer e.wgJobs.Done()
	bp, err := driver.BuildBatches(j.ctx, j.dataset, e.cfg)

	// The fan-out index and cached-results view are O(comparisons);
	// build them outside the engine lock, like BuildBatches itself, so a
	// large dedup-heavy submission cannot stall executors or Submits.
	var expand func([]ipukernel.AlignOut) []ipukernel.AlignOut
	var cachedResults []ipukernel.AlignOut
	if err == nil {
		expand = bp.ResultExpander()
		cachedResults = bp.CachedResults()
	}

	// Until the job is registered below, runJob is the only goroutine
	// that can settle it, so no finished re-check is needed here.
	e.mu.Lock()
	if err != nil {
		e.finishLocked(j, nil, err)
		e.mu.Unlock()
		return
	}
	j.bp = bp
	nb := bp.Batches()
	j.outs = make([]*ipukernel.BatchResult, nb)
	j.expand = expand
	j.cachedResults = cachedResults
	j.attempts = make([]int32, nb)
	j.inflight = make([]int32, nb)
	j.hedged = make([]bool, nb)
	j.fallback = make([]bool, nb)
	j.queued = make([]bool, nb)
	j.startNS = make([]int64, nb)
	j.timers = make(map[*time.Timer]struct{})
	close(j.built)
	if nb == 0 {
		e.mu.Unlock()
		e.complete(j, bp)
		return
	}
	e.addActiveLocked(j)
	if !j.deadline.IsZero() {
		// Two alarms per deadlined job: one wakes idle executors when the
		// hedge window opens, one settles (or degrades) the job at the
		// deadline itself. Both are registered in j.timers so settlement
		// stops them; a callback that already fired re-checks under the
		// lock and becomes a no-op.
		wake := time.AfterFunc(time.Until(j.deadline)-e.hedgeWindow, func() {
			e.mu.Lock()
			e.cond.Broadcast()
			e.mu.Unlock()
		})
		expire := time.AfterFunc(time.Until(j.deadline), func() { e.deadlineExpired(j) })
		j.timers[wake] = struct{}{}
		j.timers[expire] = struct{}{}
	}
	e.cond.Broadcast()
	e.mu.Unlock()

	select {
	case <-j.ctx.Done():
		e.mu.Lock()
		if !j.finished {
			e.finishLocked(j, nil, j.ctx.Err())
		}
		e.mu.Unlock()
	case <-j.doneCh:
	}
}

// issuableLocked reports whether the job has work an executor can take:
// a retry ready to re-issue or a batch never issued.
func (j *Job) issuableLocked() bool {
	return !j.finished && (len(j.retryq) > 0 || j.nextIssue < len(j.outs))
}

// addActiveLocked (re-)registers a job with the scheduler. Jobs leave
// the active list when drained (pruneLocked) and re-enter when a retry
// timer fires or degradation re-queues a batch.
func (e *Engine) addActiveLocked(j *Job) {
	if !j.inActive && !j.finished {
		j.inActive = true
		e.active = append(e.active, j)
	}
}

// pickLocked chooses the next execution to issue: among built jobs with
// work left, the one with the fewest issued executions (ties broken by
// submission order) — a per-job fair share that keeps a flood of batches
// from one client from starving the rest. Ready retries re-issue before
// fresh batches. With nothing to issue and a job deadline configured,
// it falls back to hedging: inside a job's hedge window the slowest
// outstanding batch is duplicated once (first result wins), so a single
// straggling device cannot push an otherwise-finished job past its
// deadline. The chosen batch's issue bookkeeping (attempts, inflight,
// start time) is updated here, under the lock, so concurrent executors
// never double-pick.
func (e *Engine) pickLocked() (*Job, int, bool) {
	var best *Job
	for _, j := range e.active {
		if !j.issuableLocked() {
			continue
		}
		if best == nil || j.issued < best.issued ||
			(j.issued == best.issued && j.seq < best.seq) {
			best = j
		}
	}
	if best != nil {
		var bi int
		if n := len(best.retryq); n > 0 {
			bi = best.retryq[n-1]
			best.retryq = best.retryq[:n-1]
			best.queued[bi] = false
		} else {
			bi = best.nextIssue
			best.nextIssue++
		}
		e.issueLocked(best, bi)
		return best, bi, false
	}
	if e.deadline <= 0 {
		return nil, -1, false
	}
	now := time.Now()
	var hj *Job
	hbi := -1
	var earliest int64
	for _, j := range e.active {
		if j.finished || j.deadline.IsZero() ||
			now.Before(j.deadline.Add(-e.hedgeWindow)) {
			continue
		}
		for bi := range j.outs {
			if j.outs[bi] != nil || j.inflight[bi] == 0 || j.hedged[bi] || j.queued[bi] {
				continue
			}
			if hbi == -1 || j.startNS[bi] < earliest {
				hj, hbi, earliest = j, bi, j.startNS[bi]
			}
		}
	}
	if hj == nil {
		return nil, -1, false
	}
	hj.hedged[hbi] = true
	e.stHedges++
	e.issueLocked(hj, hbi)
	return hj, hbi, true
}

// issueLocked records one execution issue of batch bi.
func (e *Engine) issueLocked(j *Job, bi int) {
	j.issued++
	j.attempts[bi]++
	j.inflight[bi]++
	if e.deadline > 0 && j.startNS[bi] == 0 {
		j.startNS[bi] = time.Now().UnixNano()
	}
}

// executor is one device-executor goroutine: it owns a modeled device
// and pulls batches from whichever job the fair-share policy selects —
// the earliest-free-device rule falls out of executors pulling work the
// moment they go idle.
func (e *Engine) executor() {
	defer e.wgWorkers.Done()
	// The engine's configuration is fixed, so one device per executor,
	// created lazily on first work, serves every job.
	var dev *ipu.Device
	for {
		e.mu.Lock()
		var j *Job
		var bi int
		var hedge bool
		for {
			j, bi, hedge = e.pickLocked()
			if j != nil {
				break
			}
			if e.closed && e.live == 0 {
				e.mu.Unlock()
				return
			}
			e.cond.Wait()
		}
		_ = hedge                          // a hedge runs exactly like any other attempt
		attempt := int(j.attempts[bi]) - 1 // issueLocked counted this issue
		fallback := j.fallback[bi]
		e.pruneLocked()
		e.busy++
		// Split the CPU budget between each batch's tile pool and the
		// executors that will plausibly run alongside this one: the busy
		// ones plus however many of the remaining runnable batches the
		// pool can absorb. A lone batch gets the whole machine; a
		// saturated engine gives each batch one thread — and a burst of
		// picks converges immediately instead of letting the first few
		// batches keep full-width pools. Parallelism never affects
		// results, only wall time.
		width := e.busy + e.runnableLocked()
		if width > e.executors {
			width = e.executors
		}
		// Capture the plan while locked: a settled job's bp is released,
		// and this batch may race a cancellation.
		bp := j.bp
		kcfg := bp.KernelConfig(width)
		e.mu.Unlock()
		if dev == nil {
			dev = bp.NewDevice()
		}
		var out *ipukernel.BatchResult
		var err error
		if fallback {
			// Quarantined work runs on the reference host path, outside
			// the fleet and its fault plan.
			out, err = bp.ExecBatchHost(bi, kcfg)
		} else {
			out, err = bp.ExecBatchAttempt(dev, bi, attempt, kcfg)
		}
		e.deliver(j, bi, out, err, fallback)
	}
}

// runnableLocked counts executions not yet handed to an executor.
func (e *Engine) runnableLocked() int {
	n := 0
	for _, j := range e.active {
		if !j.finished {
			n += len(j.outs) - j.nextIssue + len(j.retryq)
		}
	}
	return n
}

// pruneLocked drops jobs with nothing left to issue from the active
// list. Jobs with a deadline stay while any batch is outstanding — they
// are hedge candidates — and a drained job whose retry timer later fires
// re-enters through addActiveLocked.
func (e *Engine) pruneLocked() {
	kept := e.active[:0]
	for _, j := range e.active {
		if j.issuableLocked() ||
			(!j.finished && !j.deadline.IsZero() && j.done < len(j.outs)) {
			kept = append(kept, j)
		} else {
			j.inActive = false
		}
	}
	for i := len(kept); i < len(e.active); i++ {
		e.active[i] = nil
	}
	e.active = kept
}

// deliver records one executed batch: streams it to the job's consumer
// and, on the last batch, assembles the plan and schedules the report.
// Failure classification lives here too — transient faults retry within
// the engine's policy, everything else degrades — and hedged batches
// settle first-result-wins: the losing copy is dropped before it can
// touch stats, the stream or the report. wasFallback says whether the
// execution ran on the reference host path.
func (e *Engine) deliver(j *Job, bi int, out *ipukernel.BatchResult, err error, wasFallback bool) {
	e.mu.Lock()
	e.busy--
	if !j.finished {
		j.inflight[bi]--
	}
	if j.finished { // cancelled or failed while this batch ran
		e.mu.Unlock()
		return
	}
	if j.outs[bi] != nil { // a hedged twin already delivered this batch
		e.mu.Unlock()
		return
	}
	if err != nil {
		if j.inflight[bi] > 0 {
			// A twin of this batch is still running (hedge or stale
			// fleet copy behind a quarantine); let it decide the batch.
			e.mu.Unlock()
			return
		}
		out = e.failedLocked(j, bi, err, wasFallback)
		if out == nil { // retried, re-queued, or job failed: nothing to record
			e.mu.Unlock()
			return
		}
	}
	// Copy the streamed view outside the lock when a consumer is
	// already attached — the O(batch-results) copy must not serialize
	// the scheduler. The stream can still open between the two critical
	// sections; out is not in j.outs yet, so the replay cannot duplicate
	// this batch, and the late copy below covers the send.
	streaming := j.streaming
	e.mu.Unlock()
	var upd Update
	if streaming {
		upd = streamUpdate(j, bi, out)
	}
	e.mu.Lock()
	if j.finished { // cancelled while copying
		e.mu.Unlock()
		return
	}
	if j.outs[bi] != nil { // a hedged twin delivered during the copy
		e.mu.Unlock()
		return
	}
	j.outs[bi] = out
	j.done++
	e.doneBatches++
	e.doneCells += out.Cells
	e.stNarrow += int64(out.NarrowExtensions)
	e.stWide += int64(out.WideExtensions)
	e.stPromoted += int64(out.PromotedExtensions)
	e.stTraced += int64(out.TracedExtensions)
	e.stSkipped += int64(out.TraceSkippedExtensions)
	if j.streaming {
		if !streaming {
			upd = streamUpdate(j, bi, out)
		}
		j.updates <- upd
	}
	last := j.done == len(j.outs)
	bp := j.bp
	e.mu.Unlock()
	if last {
		e.complete(j, bp)
	}
}

// failedLocked classifies one failed execution of batch bi. It returns
// a synthesized result to record (DegradePartial placeholders), or nil
// after scheduling a retry, re-queueing the batch through the host
// path, or failing the job.
func (e *Engine) failedLocked(j *Job, bi int, err error, wasFallback bool) *ipukernel.BatchResult {
	var fe *driver.FaultError
	transient := errors.As(err, &fe) && fe.Transient()
	if transient && !wasFallback && e.retryMax > 0 &&
		int(j.attempts[bi])-1 < e.retryMax &&
		(e.retryBudget <= 0 || j.retriesUsed < e.retryBudget) {
		j.retriesUsed++
		e.stRetries++
		e.scheduleRetryLocked(j, bi)
		return nil
	}
	// Fault tolerance exhausted: degrade per policy.
	switch e.degraded {
	case DegradeFallback:
		if !wasFallback {
			// Quarantine the batch off the fleet; its next execution
			// runs the reference host path and is bit-identical.
			if !j.fallback[bi] {
				j.fallback[bi] = true
				e.stQuarant++
			}
			e.requeueLocked(j, bi)
			return nil
		}
		// The reference path itself failed — deterministic, so no
		// re-run fixes it. Complete the batch with placeholders.
		return j.bp.FailedBatchResult(bi)
	case DegradePartial:
		e.stQuarant++
		return j.bp.FailedBatchResult(bi)
	}
	e.finishLocked(j, nil, err)
	return nil
}

// scheduleRetryLocked arms the backoff timer for batch bi's next
// attempt. The timer is created while the engine lock is held, so its
// callback (which takes the lock) cannot run before it is registered in
// j.timers; a callback whose job settled, whose batch delivered (hedge
// win), or whose batch is already queued becomes a no-op.
func (e *Engine) scheduleRetryLocked(j *Job, bi int) {
	var t *time.Timer
	t = time.AfterFunc(e.backoffFor(j, bi, int(j.attempts[bi])), func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		delete(j.timers, t) // nil-map delete after settlement is a no-op
		if j.finished || j.outs[bi] != nil || j.queued[bi] {
			return
		}
		j.queued[bi] = true
		j.retryq = append(j.retryq, bi)
		e.addActiveLocked(j)
		e.cond.Broadcast()
	})
	j.timers[t] = struct{}{}
}

// requeueLocked puts batch bi back on the job's ready queue (no
// backoff) and wakes executors.
func (e *Engine) requeueLocked(j *Job, bi int) {
	if !j.queued[bi] && j.outs[bi] == nil {
		j.queued[bi] = true
		j.retryq = append(j.retryq, bi)
	}
	e.addActiveLocked(j)
	e.cond.Broadcast()
}

// backoffFor shapes the delay before batch bi's next attempt:
// exponential from the base, capped at the ceiling, plus deterministic
// jitter (up to half the step, hashed from job, batch and attempt) so
// a burst of simultaneous failures does not re-dogpile the fleet in
// lockstep. Deterministic jitter keeps chaos runs reproducible.
func (e *Engine) backoffFor(j *Job, bi, attempt int) time.Duration {
	d := e.backoffBase
	for i := 1; i < attempt && d < e.backoffCap; i++ {
		d *= 2
	}
	if d > e.backoffCap {
		d = e.backoffCap
	}
	h := uint64(j.seq)*0x9e3779b97f4a7c15 ^
		uint64(int64(bi))*0xbf58476d1ce4e5b9 ^
		uint64(int64(attempt))*0x94d049bb133111eb
	h ^= h >> 33
	return d + time.Duration(h%uint64(d/2+1))
}

// deadlineExpired is the deadline timer's callback: a job still
// incomplete when it fires counts in Stats.DeadlineExceeded and settles
// per the engine's DegradedMode — fail with ErrDeadline, quarantine all
// remaining work to the reference host path, or complete immediately
// with Failed placeholders. Timers arm only after the plan is built, so
// j.outs is always populated here.
func (e *Engine) deadlineExpired(j *Job) {
	e.mu.Lock()
	if j.finished || j.done == len(j.outs) {
		e.mu.Unlock()
		return
	}
	e.stDeadline++
	switch e.degraded {
	case DegradeFallback:
		// Stop issuing fresh fleet executions and quarantine everything
		// undelivered to the host path. In-flight fleet copies keep
		// running — whichever execution delivers first wins.
		j.nextIssue = len(j.outs)
		n := 0
		for bi := range j.outs {
			if j.outs[bi] != nil || j.fallback[bi] {
				continue
			}
			j.fallback[bi] = true
			n++
			if !j.queued[bi] {
				j.queued[bi] = true
				j.retryq = append(j.retryq, bi)
			}
		}
		e.stQuarant += int64(n)
		if n > 0 {
			e.addActiveLocked(j)
			e.cond.Broadcast()
		}
		e.mu.Unlock()
	case DegradePartial:
		// Complete every undelivered batch with placeholders right now;
		// late in-flight deliveries find outs[bi] set and drop.
		bp := j.bp
		j.nextIssue = len(j.outs)
		j.retryq = nil
		for bi := range j.outs {
			if j.outs[bi] != nil {
				continue
			}
			out := bp.FailedBatchResult(bi)
			j.outs[bi] = out
			j.done++
			e.doneBatches++
			e.stQuarant++
			if j.streaming {
				j.updates <- streamUpdate(j, bi, out)
			}
		}
		e.mu.Unlock()
		e.complete(j, bp)
	default:
		e.finishLocked(j, nil, ErrDeadline)
		e.mu.Unlock()
	}
}

// complete assembles the finished job's report — bit-identical to
// driver.Run on the same dataset and configuration. The merge is
// O(comparisons), so it runs outside the engine lock: every batch is
// delivered by now (this goroutine delivered the last one), nothing
// else writes j.outs, and a racing cancellation simply wins the
// settlement below. The caller captured bp under the lock, since a
// settled job releases its plan.
func (e *Engine) complete(j *Job, bp *driver.BatchPlan) {
	plan, err := driver.AssemblePlan(bp, j.outs)
	e.mu.Lock()
	defer e.mu.Unlock()
	if j.finished { // cancelled while assembling
		return
	}
	if err != nil {
		e.finishLocked(j, nil, err)
		return
	}
	e.doneJobs++
	e.finishLocked(j, plan.Schedule(e.cfg.IPUs), nil)
}

// streamUpdate builds the streamed view of batch bi. The results are
// copied (and, under dedup, fanned out to per-comparison space so the
// Update contract holds): AssemblePlan reads the raw slice later, and a
// consumer mutating its stream must not corrupt the final report. The
// copy happens only for jobs whose consumer opened the stream — the
// channel's capacity covers the whole schedule, so sends never block an
// executor even if the consumer stops reading.
func streamUpdate(j *Job, bi int, out *ipukernel.BatchResult) Update {
	var results []ipukernel.AlignOut
	if j.expand != nil {
		results = j.expand(out.Out) // fresh slice: fan-out never aliases out.Out
	} else {
		results = append([]ipukernel.AlignOut(nil), out.Out...)
	}
	return Update{
		Batch:   bi,
		Batches: len(j.outs),
		Results: results,
		Seconds: out.Seconds,
	}
}

// openStreamLocked creates the job's update channel on first demand and
// replays already-delivered batches into it, so Results works the same
// no matter when it is called. Results the build served from the result
// cache lead the stream as a Batch == -1 update — they belong to no
// executed batch but the stream must still carry every comparison.
func (j *Job) openStreamLocked() {
	if j.updates != nil {
		return
	}
	depth := len(j.outs)
	if j.cachedResults != nil {
		depth++
	}
	j.updates = make(chan Update, depth)
	if j.cachedResults != nil {
		j.updates <- Update{Batch: -1, Batches: len(j.outs), Results: j.cachedResults}
	}
	for bi, out := range j.outs {
		if out != nil {
			j.updates <- streamUpdate(j, bi, out)
		}
	}
	if j.finished {
		close(j.updates)
	} else {
		j.streaming = true
	}
}

// finishLocked settles a job exactly once: records the outcome, closes
// the stream, drops the job from the scheduler, releases the admission
// slot and wakes everyone.
func (e *Engine) finishLocked(j *Job, rep *driver.Report, err error) {
	j.finished = true
	j.report = rep
	j.err = err
	// Stop pending backoff/deadline timers and drop queued retries; a
	// timer callback that already fired re-checks finished under the
	// lock and no-ops.
	for t := range j.timers {
		t.Stop()
	}
	j.timers = nil
	j.retryq = nil
	if j.cancel != nil {
		j.cancel() // release the job's derived context
	}
	if j.streaming {
		close(j.updates)
		j.streaming = false
	}
	close(j.doneCh)
	// Release the batched sequence payload and the input dataset: a
	// caller-retained Job handle must pin only the report and the
	// replayable outs, not the submission's working set. Executors
	// capture bp into locals under the lock before using it.
	j.bp = nil
	j.dataset = nil
	// Drop the job now rather than at the next pick: an idle engine must
	// not keep a cancelled job's dataset and partial results alive.
	e.pruneLocked()
	e.live--
	<-e.slots
	e.cond.Broadcast()
}

// RunOnce serves a single synchronous submission on a throwaway engine —
// the compatibility path behind RunOnIPU and the nil-engine backends.
// Results and report are bit-identical to driver.Run.
func RunOnce(ctx context.Context, cfg driver.Config, d *workload.Dataset) (*driver.Report, error) {
	e := New(WithDriverConfig(cfg))
	defer e.Close()
	job, err := e.Submit(ctx, d)
	if err != nil {
		return nil, err
	}
	return job.Wait(ctx)
}
