// Package engine exposes the modeled IPU system as a persistent
// asynchronous service, the way the paper's library does on real
// hardware (create_batches → async_submit → blocking_join): a long-lived
// Engine owns the device fleet, many clients Submit datasets
// concurrently, and each submission streams its results back batch by
// batch while the host keeps producing work.
//
// The engine layers on the driver's staged pipeline: Submit builds a
// BatchPlan asynchronously (cancellable via the submission's context),
// then a fixed pool of device executors interleaves batches from every
// active job onto the shared fleet — earliest-free device, per-job fair
// share — so one huge submission cannot starve small ones. A bounded
// admission queue provides backpressure: Submit blocks once QueueDepth
// jobs are in flight.
//
// Reports are bit-identical to driver.Run for the same dataset and
// configuration regardless of submission order, queue depth or executor
// count: batches are independent, per-batch results deterministic, and
// the final report is assembled in batch order from the job's own plan.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipu"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/workload"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// DefaultQueueDepth bounds in-flight submissions when WithQueueDepth is
// not given.
const DefaultQueueDepth = 16

// Engine is a persistent asynchronous alignment service over the modeled
// device fleet.
type Engine struct {
	cfg          driver.Config
	queueDepth   int
	executors    int
	cacheEntries int
	cache        *resultCache

	mu     sync.Mutex
	cond   *sync.Cond
	active []*Job // built, unfinished jobs with batches left to issue
	live   int    // admitted jobs not yet finished
	busy   int    // executors currently running a batch
	closed bool
	seq    int64

	// stats, guarded by mu
	doneJobs    int64
	doneBatches int64
	doneCells   int64

	closedCh  chan struct{}
	slots     chan struct{} // admission tokens, cap queueDepth
	wgJobs    sync.WaitGroup
	wgWorkers sync.WaitGroup
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithDriverConfig replaces the whole driver configuration (fleet,
// kernel, partitioning). Later options still apply on top.
func WithDriverConfig(cfg driver.Config) Option { return func(e *Engine) { e.cfg = cfg } }

// WithModel selects the IPU generation.
func WithModel(m platform.IPUModel) Option { return func(e *Engine) { e.cfg.Model = m } }

// WithIPUs sets the modeled device count (NUMBER_IPUS).
func WithIPUs(n int) Option { return func(e *Engine) { e.cfg.IPUs = n } }

// WithTilesPerIPU restricts tiles per device (0 = all).
func WithTilesPerIPU(n int) Option { return func(e *Engine) { e.cfg.TilesPerIPU = n } }

// WithKernel configures the on-tile X-Drop codelet.
func WithKernel(k ipukernel.Config) Option { return func(e *Engine) { e.cfg.Kernel = k } }

// WithPartition toggles graph-based sequence reuse (§4.3).
func WithPartition(on bool) Option { return func(e *Engine) { e.cfg.Partition = on } }

// WithSeqBudget caps a partition's sequence payload in bytes.
func WithSeqBudget(b int) Option { return func(e *Engine) { e.cfg.SeqBudget = b } }

// WithMaxBatchJobs caps comparisons per batch; finer batches interleave
// concurrent jobs more smoothly.
func WithMaxBatchJobs(n int) Option { return func(e *Engine) { e.cfg.MaxBatchJobs = n } }

// WithBatchOverhead sets the modeled host-side cost per batch.
func WithBatchOverhead(sec float64) Option {
	return func(e *Engine) { e.cfg.BatchOverheadSeconds = sec }
}

// WithDedupExtensions toggles duplicate-extension elimination: every
// submission's byte-identical (pair, seed) extensions are aligned once
// and fanned back out, so reports stay per-comparison while modeled work
// drops. Off by default; per-comparison alignments are identical either
// way.
func WithDedupExtensions(on bool) Option { return func(e *Engine) { e.cfg.DedupExtensions = on } }

// WithResultCache attaches a bounded, sharded LRU result cache shared by
// every job the engine serves, keyed by (extension key, kernel-config
// fingerprint): byte-identical extensions submitted by any client — same
// job or a later one, regardless of pool numbering — are aligned once.
// entries bounds the cache (0 → DefaultResultCacheEntries). Enabling the
// cache also enables duplicate-extension elimination, which the cache
// keys ride on. Hit/miss/evict counters surface in Stats. The bound is
// per entry: under WithTraceback each entry also holds its alignment's
// CIGAR (length-proportional), so size entries accordingly and watch
// Stats.CacheBytes for the resident footprint.
func WithResultCache(entries int) Option {
	return func(e *Engine) {
		if entries <= 0 {
			entries = DefaultResultCacheEntries
		}
		e.cacheEntries = entries
		e.cfg.DedupExtensions = true
	}
}

// WithTraceback enables the two-pass traceback subsystem for every job
// the engine serves: each streamed and reported result carries its CIGAR
// (AlignOut.Cigar) and reports expose peak traceback memory. Composes
// with dedup and the result cache — a cached hit fans the stored CIGAR
// back out to every duplicate comparison, and the cache keys include the
// traceback flag so score-only and traceback runs never share entries.
func WithTraceback(on bool) Option { return func(e *Engine) { e.cfg.Traceback = on } }

// WithQueueDepth bounds in-flight submissions; Submit blocks (or fails
// on context cancellation) once the queue is full.
func WithQueueDepth(n int) Option { return func(e *Engine) { e.queueDepth = n } }

// WithExecutors sets the host-side executor pool width (0 → GOMAXPROCS).
// Executor count changes throughput only, never results or reports.
func WithExecutors(n int) Option { return func(e *Engine) { e.executors = n } }

// New starts an engine and its executor pool. Close releases it.
func New(opts ...Option) *Engine {
	e := &Engine{queueDepth: DefaultQueueDepth}
	for _, o := range opts {
		o(e)
	}
	e.normalize()
	if e.cacheEntries > 0 {
		// Keys carry the driver's kernel-config fingerprint, so even a
		// cache handed to differently-configured runs stays sound.
		e.cache = newResultCache(e.cacheEntries)
		e.cfg.Cache = e.cache
	}
	e.cond = sync.NewCond(&e.mu)
	e.closedCh = make(chan struct{})
	e.slots = make(chan struct{}, e.queueDepth)
	for i := 0; i < e.executors; i++ {
		e.wgWorkers.Add(1)
		go e.executor()
	}
	return e
}

func (e *Engine) normalize() {
	e.cfg = e.cfg.Normalized()
	if e.queueDepth <= 0 {
		e.queueDepth = DefaultQueueDepth
	}
	if e.executors <= 0 {
		e.executors = runtime.GOMAXPROCS(0)
	}
}

// Config returns the normalized driver configuration the fleet runs.
func (e *Engine) Config() driver.Config { return e.cfg }

// Stats is a snapshot of engine-lifetime aggregates.
type Stats struct {
	// JobsDone counts completed (not cancelled/failed) submissions.
	JobsDone int64
	// BatchesDone counts executed batches across all jobs.
	BatchesDone int64
	// CellsDone sums computed DP cells across executed batches.
	CellsDone int64
	// JobsLive counts admitted, unfinished submissions.
	JobsLive int
	// CacheHits, CacheMisses and CacheEvictions count result-cache
	// activity across all jobs (all zero without WithResultCache).
	CacheHits, CacheMisses, CacheEvictions int64
	// CacheBytes approximates the result cache's resident footprint
	// (per-entry overhead plus stored CIGAR lengths). The cache bound is
	// per entry; with traceback enabled entries carry alignment-length
	// CIGARs, and this is where that growth shows up.
	CacheBytes int64
}

// Stats returns engine-lifetime counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := Stats{
		JobsDone:    e.doneJobs,
		BatchesDone: e.doneBatches,
		CellsDone:   e.doneCells,
		JobsLive:    e.live,
	}
	e.mu.Unlock()
	if e.cache != nil {
		st.CacheHits = e.cache.hits.Load()
		st.CacheMisses = e.cache.misses.Load()
		st.CacheEvictions = e.cache.evictions.Load()
		st.CacheBytes = e.cache.payloadBytes.Load()
	}
	return st
}

// Submit enqueues a dataset for alignment and returns immediately with a
// Job handle. It blocks only for admission when QueueDepth jobs are
// already in flight; ctx cancels both the wait and the job itself
// (planning and any not-yet-issued batches). Arena-backed datasets are
// shared, not copied: any number of concurrent submissions of the same
// dataset reference one immutable slab of Ω, and the batches built for a
// job carry spans into it rather than private sequence slices.
func (e *Engine) Submit(ctx context.Context, d *workload.Dataset) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-e.closedCh:
		return nil, ErrClosed
	default:
	}
	select {
	case e.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.closedCh:
		return nil, ErrClosed
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.slots
		return nil, ErrClosed
	}
	e.seq++
	j := &Job{
		eng:     e,
		ctx:     ctx,
		seq:     e.seq,
		dataset: d,
		built:   make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	e.live++
	e.wgJobs.Add(1)
	e.mu.Unlock()
	go e.runJob(j)
	return j, nil
}

// Close stops admissions, waits for every in-flight job to finish and
// shuts the executor pool down. It is idempotent; Submit afterwards
// returns ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wgJobs.Wait()
		e.wgWorkers.Wait()
		return nil
	}
	e.closed = true
	close(e.closedCh)
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wgJobs.Wait()
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wgWorkers.Wait()
	return nil
}

// runJob builds the job's plan (cancellable), registers it with the
// scheduler, then watches for cancellation until the job finishes.
func (e *Engine) runJob(j *Job) {
	defer e.wgJobs.Done()
	bp, err := driver.BuildBatches(j.ctx, j.dataset, e.cfg)

	// The fan-out index and cached-results view are O(comparisons);
	// build them outside the engine lock, like BuildBatches itself, so a
	// large dedup-heavy submission cannot stall executors or Submits.
	var expand func([]ipukernel.AlignOut) []ipukernel.AlignOut
	var cachedResults []ipukernel.AlignOut
	if err == nil {
		expand = bp.ResultExpander()
		cachedResults = bp.CachedResults()
	}

	// Until the job is registered below, runJob is the only goroutine
	// that can settle it, so no finished re-check is needed here.
	e.mu.Lock()
	if err != nil {
		e.finishLocked(j, nil, err)
		e.mu.Unlock()
		return
	}
	j.bp = bp
	j.outs = make([]*ipukernel.BatchResult, bp.Batches())
	j.expand = expand
	j.cachedResults = cachedResults
	close(j.built)
	if bp.Batches() == 0 {
		e.mu.Unlock()
		e.complete(j, bp)
		return
	}
	e.active = append(e.active, j)
	e.cond.Broadcast()
	e.mu.Unlock()

	select {
	case <-j.ctx.Done():
		e.mu.Lock()
		if !j.finished {
			e.finishLocked(j, nil, j.ctx.Err())
		}
		e.mu.Unlock()
	case <-j.doneCh:
	}
}

// pickLocked chooses the next batch to issue: among built jobs with
// batches left, the one with the fewest issued batches (ties broken by
// submission order) — a per-job fair share that keeps a flood of batches
// from one client from starving the rest.
func (e *Engine) pickLocked() (*Job, int) {
	var best *Job
	for _, j := range e.active {
		if j.finished || j.nextIssue >= len(j.outs) {
			continue
		}
		if best == nil || j.nextIssue < best.nextIssue ||
			(j.nextIssue == best.nextIssue && j.seq < best.seq) {
			best = j
		}
	}
	if best == nil {
		return nil, -1
	}
	bi := best.nextIssue
	best.nextIssue++
	return best, bi
}

// executor is one device-executor goroutine: it owns a modeled device
// and pulls batches from whichever job the fair-share policy selects —
// the earliest-free-device rule falls out of executors pulling work the
// moment they go idle.
func (e *Engine) executor() {
	defer e.wgWorkers.Done()
	// The engine's configuration is fixed, so one device per executor,
	// created lazily on first work, serves every job.
	var dev *ipu.Device
	for {
		e.mu.Lock()
		var j *Job
		var bi int
		for {
			j, bi = e.pickLocked()
			if j != nil {
				break
			}
			if e.closed && e.live == 0 {
				e.mu.Unlock()
				return
			}
			e.cond.Wait()
		}
		e.pruneLocked()
		e.busy++
		// Split the CPU budget between each batch's tile pool and the
		// executors that will plausibly run alongside this one: the busy
		// ones plus however many of the remaining runnable batches the
		// pool can absorb. A lone batch gets the whole machine; a
		// saturated engine gives each batch one thread — and a burst of
		// picks converges immediately instead of letting the first few
		// batches keep full-width pools. Parallelism never affects
		// results, only wall time.
		width := e.busy + e.runnableLocked()
		if width > e.executors {
			width = e.executors
		}
		// Capture the plan while locked: a settled job's bp is released,
		// and this batch may race a cancellation.
		bp := j.bp
		kcfg := bp.KernelConfig(width)
		e.mu.Unlock()
		if dev == nil {
			dev = bp.NewDevice()
		}
		out, err := bp.ExecBatch(dev, bi, kcfg)
		e.deliver(j, bi, out, err)
	}
}

// runnableLocked counts batches not yet handed to an executor.
func (e *Engine) runnableLocked() int {
	n := 0
	for _, j := range e.active {
		if !j.finished {
			n += len(j.outs) - j.nextIssue
		}
	}
	return n
}

// pruneLocked drops jobs with nothing left to issue from the active list.
func (e *Engine) pruneLocked() {
	kept := e.active[:0]
	for _, j := range e.active {
		if !j.finished && j.nextIssue < len(j.outs) {
			kept = append(kept, j)
		}
	}
	for i := len(kept); i < len(e.active); i++ {
		e.active[i] = nil
	}
	e.active = kept
}

// deliver records one executed batch: streams it to the job's consumer
// and, on the last batch, assembles the plan and schedules the report.
func (e *Engine) deliver(j *Job, bi int, out *ipukernel.BatchResult, err error) {
	e.mu.Lock()
	e.busy--
	if j.finished { // cancelled or failed while this batch ran
		e.mu.Unlock()
		return
	}
	if err != nil {
		e.finishLocked(j, nil, err)
		e.mu.Unlock()
		return
	}
	// Copy the streamed view outside the lock when a consumer is
	// already attached — the O(batch-results) copy must not serialize
	// the scheduler. The stream can still open between the two critical
	// sections; out is not in j.outs yet, so the replay cannot duplicate
	// this batch, and the late copy below covers the send.
	streaming := j.streaming
	e.mu.Unlock()
	var upd Update
	if streaming {
		upd = streamUpdate(j, bi, out)
	}
	e.mu.Lock()
	if j.finished { // cancelled while copying
		e.mu.Unlock()
		return
	}
	j.outs[bi] = out
	j.done++
	e.doneBatches++
	e.doneCells += out.Cells
	if j.streaming {
		if !streaming {
			upd = streamUpdate(j, bi, out)
		}
		j.updates <- upd
	}
	last := j.done == len(j.outs)
	bp := j.bp
	e.mu.Unlock()
	if last {
		e.complete(j, bp)
	}
}

// complete assembles the finished job's report — bit-identical to
// driver.Run on the same dataset and configuration. The merge is
// O(comparisons), so it runs outside the engine lock: every batch is
// delivered by now (this goroutine delivered the last one), nothing
// else writes j.outs, and a racing cancellation simply wins the
// settlement below. The caller captured bp under the lock, since a
// settled job releases its plan.
func (e *Engine) complete(j *Job, bp *driver.BatchPlan) {
	plan, err := driver.AssemblePlan(bp, j.outs)
	e.mu.Lock()
	defer e.mu.Unlock()
	if j.finished { // cancelled while assembling
		return
	}
	if err != nil {
		e.finishLocked(j, nil, err)
		return
	}
	e.doneJobs++
	e.finishLocked(j, plan.Schedule(e.cfg.IPUs), nil)
}

// streamUpdate builds the streamed view of batch bi. The results are
// copied (and, under dedup, fanned out to per-comparison space so the
// Update contract holds): AssemblePlan reads the raw slice later, and a
// consumer mutating its stream must not corrupt the final report. The
// copy happens only for jobs whose consumer opened the stream — the
// channel's capacity covers the whole schedule, so sends never block an
// executor even if the consumer stops reading.
func streamUpdate(j *Job, bi int, out *ipukernel.BatchResult) Update {
	var results []ipukernel.AlignOut
	if j.expand != nil {
		results = j.expand(out.Out) // fresh slice: fan-out never aliases out.Out
	} else {
		results = append([]ipukernel.AlignOut(nil), out.Out...)
	}
	return Update{
		Batch:   bi,
		Batches: len(j.outs),
		Results: results,
		Seconds: out.Seconds,
	}
}

// openStreamLocked creates the job's update channel on first demand and
// replays already-delivered batches into it, so Results works the same
// no matter when it is called. Results the build served from the result
// cache lead the stream as a Batch == -1 update — they belong to no
// executed batch but the stream must still carry every comparison.
func (j *Job) openStreamLocked() {
	if j.updates != nil {
		return
	}
	depth := len(j.outs)
	if j.cachedResults != nil {
		depth++
	}
	j.updates = make(chan Update, depth)
	if j.cachedResults != nil {
		j.updates <- Update{Batch: -1, Batches: len(j.outs), Results: j.cachedResults}
	}
	for bi, out := range j.outs {
		if out != nil {
			j.updates <- streamUpdate(j, bi, out)
		}
	}
	if j.finished {
		close(j.updates)
	} else {
		j.streaming = true
	}
}

// finishLocked settles a job exactly once: records the outcome, closes
// the stream, drops the job from the scheduler, releases the admission
// slot and wakes everyone.
func (e *Engine) finishLocked(j *Job, rep *driver.Report, err error) {
	j.finished = true
	j.report = rep
	j.err = err
	if j.streaming {
		close(j.updates)
		j.streaming = false
	}
	close(j.doneCh)
	// Release the batched sequence payload and the input dataset: a
	// caller-retained Job handle must pin only the report and the
	// replayable outs, not the submission's working set. Executors
	// capture bp into locals under the lock before using it.
	j.bp = nil
	j.dataset = nil
	// Drop the job now rather than at the next pick: an idle engine must
	// not keep a cancelled job's dataset and partial results alive.
	e.pruneLocked()
	e.live--
	<-e.slots
	e.cond.Broadcast()
}

// RunOnce serves a single synchronous submission on a throwaway engine —
// the compatibility path behind RunOnIPU and the nil-engine backends.
// Results and report are bit-identical to driver.Run.
func RunOnce(ctx context.Context, cfg driver.Config, d *workload.Dataset) (*driver.Report, error) {
	e := New(WithDriverConfig(cfg))
	defer e.Close()
	job, err := e.Submit(ctx, d)
	if err != nil {
		return nil, err
	}
	return job.Wait(ctx)
}
