package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func testCfg(ipus int) driver.Config {
	return driver.Config{
		IPUs:        ipus,
		Model:       platform.GC200,
		TilesPerIPU: 8,
		Partition:   true,
		Kernel: ipukernel.Config{
			Params:           core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 15, DeltaB: 256},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}
}

func readsData(t *testing.T, seed int64, maxCmp int) *workload.Dataset {
	t.Helper()
	d := synth.Reads(synth.ReadsSpec{
		Name: "eng", GenomeLen: 40000, Coverage: 8, MeanReadLen: 1800, MinReadLen: 700,
		Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: 500, Seed: seed, MaxComparisons: maxCmp,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// reportsEqual compares two reports bit for bit.
func reportsEqual(t *testing.T, label string, got, want *driver.Report) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: engine report differs from driver.Run\n got: %+v\nwant: %+v", label, got, want)
	}
}

// TestEngineMatchesDriverRun: for the same dataset and configuration the
// engine's report must be bit-identical to the synchronous driver path,
// at several queue depths and executor widths.
func TestEngineMatchesDriverRun(t *testing.T) {
	d := readsData(t, 3, 36)
	cfg := testCfg(2)
	want, err := driver.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ depth, execs int }{
		{1, 1}, {4, 2}, {16, 8},
	} {
		e := New(WithDriverConfig(cfg), WithQueueDepth(tc.depth), WithExecutors(tc.execs))
		job, err := e.Submit(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "single submit", got, want)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineConcurrentClients: many clients submitting distinct datasets
// concurrently each get exactly the report driver.Run would give them,
// whatever interleaving the fair-share scheduler picks.
func TestEngineConcurrentClients(t *testing.T) {
	cfg := testCfg(2)
	const clients = 6
	datasets := make([]*workload.Dataset, clients)
	wants := make([]*driver.Report, clients)
	for i := range datasets {
		datasets[i] = readsData(t, int64(10+i), 14+2*i)
		var err error
		wants[i], err = driver.Run(datasets[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	e := New(WithDriverConfig(cfg), WithQueueDepth(3), WithExecutors(4))
	defer e.Close()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := e.Submit(context.Background(), datasets[i])
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			got, err := job.Wait(context.Background())
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if !reflect.DeepEqual(got, wants[i]) {
				t.Errorf("client %d: report differs from driver.Run", i)
			}
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.JobsDone != clients || st.JobsLive != 0 {
		t.Errorf("stats after drain: %+v", st)
	}
}

// TestEngineStreaming: batch updates arrive as execution proceeds, cover
// every comparison exactly once, and agree with the final report.
func TestEngineStreaming(t *testing.T) {
	d := readsData(t, 5, 30)
	cfg := testCfg(1)
	cfg.MaxBatchJobs = 4 // force several batches so streaming is visible
	e := New(WithDriverConfig(cfg))
	defer e.Close()
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]ipukernel.AlignOut)
	var batches, total int
	for u := range job.Results() {
		batches++
		if total == 0 {
			total = u.Batches
		} else if u.Batches != total {
			t.Errorf("update Batches changed: %d then %d", total, u.Batches)
		}
		for _, o := range u.Results {
			if _, dup := seen[o.GlobalID]; dup {
				t.Errorf("comparison %d streamed twice", o.GlobalID)
			}
			seen[o.GlobalID] = o
		}
	}
	rep, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if batches != rep.Batches {
		t.Errorf("streamed %d batches, report says %d", batches, rep.Batches)
	}
	if len(seen) != len(d.Comparisons) {
		t.Fatalf("streamed %d comparisons of %d", len(seen), len(d.Comparisons))
	}
	for id, o := range seen {
		if rep.Results[id] != o {
			t.Errorf("comparison %d: streamed result differs from report", id)
		}
	}
}

// TestResultsAfterCompletion: opening the stream after the job settled
// replays every batch, so late consumers see the full run.
func TestResultsAfterCompletion(t *testing.T) {
	d := readsData(t, 6, 24)
	cfg := testCfg(1)
	cfg.MaxBatchJobs = 4
	e := New(WithDriverConfig(cfg))
	defer e.Close()
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	batches := 0
	for u := range job.Results() {
		batches++
		seen += len(u.Results)
		// Mutating the streamed copy must not corrupt the report.
		for k := range u.Results {
			u.Results[k].Score = -999
		}
	}
	if batches != rep.Batches || seen != len(d.Comparisons) {
		t.Fatalf("replayed %d batches/%d results, want %d/%d",
			batches, seen, rep.Batches, len(d.Comparisons))
	}
	rep2, _ := job.Wait(context.Background())
	for _, r := range rep2.Results {
		if r.Score == -999 {
			t.Fatal("stream mutation leaked into the report")
		}
	}
}

// TestSubmitAfterClose: a closed engine refuses new work.
func TestSubmitAfterClose(t *testing.T) {
	e := New(WithDriverConfig(testCfg(1)))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), readsData(t, 1, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestSubmitCancelledContext: a dead context never enqueues.
func TestSubmitCancelledContext(t *testing.T) {
	e := New(WithDriverConfig(testCfg(1)))
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Submit(ctx, readsData(t, 1, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestCancelDoesNotPoisonEngine: cancelling one submission settles that
// job with the context's error (or lets it finish if it already raced to
// completion) and leaves every other client's results untouched.
func TestCancelDoesNotPoisonEngine(t *testing.T) {
	cfg := testCfg(1)
	cfg.MaxBatchJobs = 2
	e := New(WithDriverConfig(cfg), WithExecutors(1))
	defer e.Close()

	big := readsData(t, 7, 40)
	small := readsData(t, 8, 10)
	want, err := driver.Run(small, cfg)
	if err != nil {
		t.Fatal(err)
	}

	jobA, err := e.Submit(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	ctxB, cancelB := context.WithCancel(context.Background())
	jobB, err := e.Submit(ctxB, big)
	if err != nil {
		t.Fatal(err)
	}
	cancelB()
	jobC, err := e.Submit(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := jobA.Wait(context.Background()); err != nil {
		t.Errorf("job A: %v", err)
	}
	if rep, err := jobB.Wait(context.Background()); err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("job B: %v, want context.Canceled", err)
		}
	} else if rep == nil {
		t.Error("job B finished without report or error")
	}
	got, err := jobC.Wait(context.Background())
	if err != nil {
		t.Fatalf("job C: %v", err)
	}
	reportsEqual(t, "post-cancel client", got, want)

	// Settled jobs (cancelled ones included) must leave the scheduler
	// list, or an idle engine pins their datasets forever.
	e.mu.Lock()
	if n := len(e.active); n != 0 {
		t.Errorf("%d jobs still active after all settled", n)
	}
	if e.live != 0 {
		t.Errorf("live = %d after all settled", e.live)
	}
	e.mu.Unlock()
}

// TestQueueBackpressure: with a full queue, Submit blocks and obeys its
// context's deadline.
func TestQueueBackpressure(t *testing.T) {
	cfg := testCfg(1)
	e := New(WithDriverConfig(cfg), WithQueueDepth(1), WithExecutors(1))
	defer e.Close()
	if _, err := e.Submit(context.Background(), readsData(t, 9, 40)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := e.Submit(ctx, readsData(t, 9, 4))
	// Either the first job drained in time (slot free, submit succeeds)
	// or the deadline fired while blocked on admission.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit under backpressure = %v", err)
	}
}

// TestEngineSubmissionOrderIrrelevant: the same dataset submitted amid
// different companion workloads and orders yields the same report.
func TestEngineSubmissionOrderIrrelevant(t *testing.T) {
	cfg := testCfg(2)
	probe := readsData(t, 21, 20)
	other := readsData(t, 22, 24)
	want, err := driver.Run(probe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][2]*workload.Dataset{{probe, other}, {other, probe}} {
		e := New(WithDriverConfig(cfg), WithExecutors(2))
		j0, err := e.Submit(context.Background(), order[0])
		if err != nil {
			t.Fatal(err)
		}
		j1, err := e.Submit(context.Background(), order[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range []*Job{j0, j1} {
			if _, err := j.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		probeJob := j0
		if order[0] != probe {
			probeJob = j1
		}
		got, _ := probeJob.Wait(context.Background())
		reportsEqual(t, "order variant", got, want)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineEmptyDataset: a dataset with no comparisons settles
// immediately with an empty report and a closed stream.
func TestEngineEmptyDataset(t *testing.T) {
	e := New(WithDriverConfig(testCfg(1)))
	defer e.Close()
	job, err := e.Submit(context.Background(), &workload.Dataset{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	for range job.Results() {
		t.Error("empty dataset streamed an update")
	}
	rep, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 || rep.Batches != 0 {
		t.Errorf("empty report: %+v", rep)
	}
}

// TestEngineBuildError: an invalid dataset fails its own job only.
func TestEngineBuildError(t *testing.T) {
	e := New(WithDriverConfig(testCfg(1)))
	defer e.Close()
	bad := &workload.Dataset{
		Sequences:   [][]byte{make([]byte, 50)},
		Comparisons: []workload.Comparison{{H: 0, V: 3, SeedLen: 10}},
	}
	job, err := e.Submit(context.Background(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err == nil {
		t.Fatal("invalid dataset produced a report")
	}
	// The engine keeps serving.
	good := readsData(t, 2, 8)
	job2, err := e.Submit(context.Background(), good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWaitContextBoundsOnlyTheWait: a cancelled Wait leaves the job
// running to completion.
func TestWaitContextBoundsOnlyTheWait(t *testing.T) {
	e := New(WithDriverConfig(testCfg(1)))
	defer e.Close()
	job, err := e.Submit(context.Background(), readsData(t, 4, 12))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with dead ctx = %v", err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatalf("job should still complete: %v", err)
	}
}
