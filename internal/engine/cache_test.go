package engine

import (
	"context"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

func cacheTestConfig() driver.Config {
	return driver.Config{IPUs: 1, Partition: true, Kernel: ipukernel.Config{
		Params: core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 10, DeltaB: 128}}}
}

func cacheTestDataset(seed int64) *workload.Dataset {
	return synth.UniformPairs(synth.UniformPairsSpec{
		Count: 10, Length: 400, ErrorRate: 0.15, SeedLen: 17, Seed: seed})
}

// TestEngineResultCacheCrossJob: the second submission of byte-identical
// work — a different Dataset object with its own pool numbering — must be
// served from the cache without executing a single batch, with results
// bit-identical to an uncached engine.
func TestEngineResultCacheCrossJob(t *testing.T) {
	d1 := cacheTestDataset(11)
	d2 := d1.Clone() // same bytes, fresh slices, fresh spine

	want, err := driver.Run(d1.Clone(), cacheTestConfig())
	if err != nil {
		t.Fatal(err)
	}

	eng := New(WithDriverConfig(cacheTestConfig()), WithResultCache(1<<12))
	defer eng.Close()

	j1, err := eng.Submit(context.Background(), d1)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st1 := eng.Stats()
	if st1.CacheHits != 0 || st1.CacheMisses == 0 {
		t.Fatalf("cold job: hits %d misses %d", st1.CacheHits, st1.CacheMisses)
	}

	j2, err := eng.Submit(context.Background(), d2)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st2 := eng.Stats()

	for i := range want.Results {
		if rep1.Results[i] != want.Results[i] {
			t.Fatalf("cached engine result %d differs from driver.Run: %+v vs %+v", i, rep1.Results[i], want.Results[i])
		}
		if rep2.Results[i] != want.Results[i] {
			t.Fatalf("cache-served result %d differs from driver.Run: %+v vs %+v", i, rep2.Results[i], want.Results[i])
		}
	}
	if rep2.Batches != 0 {
		t.Errorf("warm job executed %d batches, want 0", rep2.Batches)
	}
	if hits := st2.CacheHits - st1.CacheHits; hits != int64(rep2.UniqueExtensions) {
		t.Errorf("warm job scored %d hits, want %d", hits, rep2.UniqueExtensions)
	}
	if st2.BatchesDone != st1.BatchesDone {
		t.Errorf("warm job grew BatchesDone: %d -> %d", st1.BatchesDone, st2.BatchesDone)
	}
}

// TestEngineDedupMatchesPlainEngine: WithDedupExtensions alone (no
// cache) must reproduce plain per-comparison results on duplicate-heavy
// submissions.
func TestEngineDedupMatchesPlainEngine(t *testing.T) {
	base := cacheTestDataset(23)
	dup := &workload.Dataset{Name: base.Name, Sequences: base.Sequences, Protein: base.Protein}
	for i := 0; i < 5; i++ {
		dup.Comparisons = append(dup.Comparisons, base.Comparisons...)
	}

	want, err := driver.Run(dup, cacheTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithDriverConfig(cacheTestConfig()), WithDedupExtensions(true))
	defer eng.Close()
	j, err := eng.Submit(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		if rep.Results[i] != want.Results[i] {
			t.Fatalf("dedup result %d: %+v, want %+v", i, rep.Results[i], want.Results[i])
		}
	}
	if rep.UniqueExtensions != len(base.Comparisons) {
		t.Errorf("UniqueExtensions = %d, want %d", rep.UniqueExtensions, len(base.Comparisons))
	}
}

func testKey(i int) driver.CacheKey {
	return driver.CacheKey{Kernel: 1, Ext: workload.ExtensionKey{
		H:    workload.SeqDigest{Lo: uint64(i) * 7919, Hi: uint64(i) * 104729},
		V:    workload.SeqDigest{Lo: uint64(i) * 13, Hi: uint64(i) * 31},
		HLen: 100, VLen: 100, SeedH: 1, SeedV: 2, SeedLen: 17,
	}}
}

func TestResultCacheLRUEviction(t *testing.T) {
	// Capacity 16 → one entry per shard: inserting many keys per shard
	// must evict and count it, and evicted keys must miss.
	c := newResultCache(cacheShards)
	n := 200
	for i := 0; i < n; i++ {
		c.Put(testKey(i), ipukernel.AlignOut{Score: i})
	}
	if ev := c.evictions.Load(); ev == 0 {
		t.Fatal("no evictions counted past capacity")
	}
	live := 0
	for i := 0; i < n; i++ {
		if out, ok := c.Get(testKey(i)); ok {
			live++
			if out.Score != i {
				t.Fatalf("key %d returned score %d", i, out.Score)
			}
		}
	}
	if live > cacheShards {
		t.Errorf("%d entries live, capacity %d", live, cacheShards)
	}
	if live == 0 {
		t.Error("everything evicted — LRU keeps nothing?")
	}
}

// TestResultCacheCollisionSafety: entries whose keys collide in the
// shard hash (shardOf ignores HLen/VLen, so these land in one shard) must
// still resolve independently — the shard map compares the full key
// struct, so no hash collision can alias two extensions.
func TestResultCacheCollisionSafety(t *testing.T) {
	c := newResultCache(1 << 10)
	k1 := testKey(1)
	k2 := k1
	k2.Ext.HLen = 101 // same shard hash, different extension
	k3 := k1
	k3.Ext.V.Hi++ // digest differing only in the second hash half
	k4 := k1
	k4.Kernel++ // same extension, different kernel configuration

	c.Put(k1, ipukernel.AlignOut{Score: 10})
	if _, ok := c.Get(k2); ok {
		t.Fatal("colliding key served another extension's result")
	}
	if _, ok := c.Get(k3); ok {
		t.Fatal("digest half-collision served another extension's result")
	}
	if _, ok := c.Get(k4); ok {
		t.Fatal("entry served across kernel configurations")
	}
	c.Put(k2, ipukernel.AlignOut{Score: 20})
	c.Put(k3, ipukernel.AlignOut{Score: 30})
	c.Put(k4, ipukernel.AlignOut{Score: 40})
	for i, want := range map[int]driver.CacheKey{10: k1, 20: k2, 30: k3, 40: k4} {
		out, ok := c.Get(want)
		if !ok || out.Score != i {
			t.Errorf("key for score %d: ok=%v out=%+v", i, ok, out)
		}
	}
}

// TestKernelFingerprint: every parameter that can change anything in an
// AlignOut must change the fingerprint — including scheduling knobs like
// work stealing, whose racy re-executions inflate a result's trace
// statistics — while knobs that only affect modeled time (dual issue,
// host parallelism, the cost model) must not.
func TestKernelFingerprint(t *testing.T) {
	base := ipukernel.Config{Params: core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 10, DeltaB: 128}}
	fp := driver.KernelFingerprint(base, platform.GC200)

	mut := base
	mut.Params.X = 20
	if driver.KernelFingerprint(mut, platform.GC200) == fp {
		t.Error("X change kept the fingerprint")
	}
	mut = base
	mut.Params.Scorer = scoring.Blosum62
	if driver.KernelFingerprint(mut, platform.GC200) == fp {
		t.Error("scorer change kept the fingerprint")
	}
	mut = base
	mut.Params.DeltaB = 64
	if driver.KernelFingerprint(mut, platform.GC200) == fp {
		t.Error("δb change kept the fingerprint")
	}
	mut = base
	mut.WorkStealing = true
	if driver.KernelFingerprint(mut, platform.GC200) == fp {
		t.Error("work-stealing change kept the fingerprint (racy steals alter trace stats)")
	}
	mut = base
	mut.LRSplit = true
	if driver.KernelFingerprint(mut, platform.GC200) == fp {
		t.Error("LR-split change kept the fingerprint")
	}
	mut = base
	mut.Threads = 2
	if driver.KernelFingerprint(mut, platform.GC200) == fp {
		t.Error("thread-count change kept the fingerprint")
	}
	// Threads=0 means "the model's hardware threads": it must equal an
	// explicit default on the same model, and differ across models with
	// different thread counts.
	mut = base
	mut.Threads = platform.GC200.ThreadsPerTile
	if driver.KernelFingerprint(mut, platform.GC200) != fp {
		t.Error("explicit default thread count spuriously missed")
	}
	small := platform.GC200
	small.ThreadsPerTile = 2
	if driver.KernelFingerprint(base, small) == fp {
		t.Error("Threads=0 aliased across models with different hardware threads")
	}
	mut = base
	mut.DualIssue, mut.Parallelism = true, 4
	if driver.KernelFingerprint(mut, platform.GC200) != fp {
		t.Error("time-only knobs altered the fingerprint")
	}
}

// TestStreamingPerComparisonUnderDedup: with dedup and the result cache
// on, job.Results() must still deliver exactly one result per submitted
// comparison, with GlobalID in the submitted dataset's index space and
// values bit-identical to the final report — including a warm job served
// entirely from the cache (a single Batch == -1 update).
func TestStreamingPerComparisonUnderDedup(t *testing.T) {
	base := cacheTestDataset(47)
	dup := &workload.Dataset{Name: base.Name, Sequences: base.Sequences, Protein: base.Protein}
	for i := 0; i < 4; i++ {
		dup.Comparisons = append(dup.Comparisons, base.Comparisons...)
	}

	eng := New(WithDriverConfig(cacheTestConfig()), WithResultCache(1<<12))
	defer eng.Close()

	collect := func(warm bool) map[int]ipukernel.AlignOut {
		t.Helper()
		job, err := eng.Submit(context.Background(), dup)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[int]ipukernel.AlignOut)
		for u := range job.Results() {
			if u.Batch == -1 && !warm && len(got) > 0 {
				t.Error("cache-served update did not lead the stream")
			}
			for _, o := range u.Results {
				if o.GlobalID < 0 || o.GlobalID >= len(dup.Comparisons) {
					t.Fatalf("streamed GlobalID %d outside the submitted comparison list", o.GlobalID)
				}
				if _, dupID := got[o.GlobalID]; dupID {
					t.Fatalf("comparison %d streamed twice", o.GlobalID)
				}
				got[o.GlobalID] = o
			}
		}
		rep, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(dup.Comparisons) {
			t.Fatalf("streamed %d comparisons, submitted %d", len(got), len(dup.Comparisons))
		}
		for i, want := range rep.Results {
			if got[i] != want {
				t.Fatalf("streamed result %d %+v != report %+v", i, got[i], want)
			}
		}
		if warm && rep.Batches != 0 {
			t.Errorf("warm job executed %d batches", rep.Batches)
		}
		return got
	}

	cold := collect(false)
	warmGot := collect(true)
	for i := range cold {
		if cold[i] != warmGot[i] {
			t.Fatalf("warm stream result %d differs from cold", i)
		}
	}
}

// benchmarkSubmitDedup measures job throughput on a duplicate-heavy
// workload (each comparison planned 4×) under three engine modes; the
// dedup and cache rows should run ≥ 2× the jobs/s of the off row.
func benchmarkSubmitDedup(b *testing.B, submitters int, opts ...Option) {
	base := synth.UniformPairs(synth.UniformPairsSpec{
		Count: 12, Length: 500, ErrorRate: 0.15, SeedLen: 17, Seed: 77})
	dup := &workload.Dataset{Name: "dup4", Sequences: base.Sequences, Protein: base.Protein}
	for i := 0; i < 4; i++ {
		dup.Comparisons = append(dup.Comparisons, base.Comparisons...)
	}

	cfg := driver.Config{IPUs: 1, Partition: true, Kernel: ipukernel.Config{
		Params: core.Params{Scorer: scoring.DNADefault, Gap: -1, X: 10, DeltaB: 128}}}
	eng := New(append([]Option{WithDriverConfig(cfg),
		WithQueueDepth(max(submitters, DefaultQueueDepth))}, opts...)...)
	defer eng.Close()

	if j, err := eng.Submit(context.Background(), dup); err != nil {
		b.Fatal(err)
	} else if _, err := j.Wait(context.Background()); err != nil {
		b.Fatal(err)
	}

	jobs := make(chan struct{}, submitters)
	done := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		go func() {
			for range jobs {
				j, err := eng.Submit(context.Background(), dup)
				if err == nil {
					_, err = j.Wait(context.Background())
				}
				done <- err
			}
		}()
	}

	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			jobs <- struct{}{}
		}
		close(jobs)
	}()
	for i := 0; i < b.N; i++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubmitDedupOff1(b *testing.B)   { benchmarkSubmitDedup(b, 1) }
func BenchmarkSubmitDedupOn1(b *testing.B)    { benchmarkSubmitDedup(b, 1, WithDedupExtensions(true)) }
func BenchmarkSubmitDedupCache1(b *testing.B) { benchmarkSubmitDedup(b, 1, WithResultCache(1<<14)) }
func BenchmarkSubmitDedupOff4(b *testing.B)   { benchmarkSubmitDedup(b, 4) }
func BenchmarkSubmitDedupOn4(b *testing.B)    { benchmarkSubmitDedup(b, 4, WithDedupExtensions(true)) }
func BenchmarkSubmitDedupCache4(b *testing.B) { benchmarkSubmitDedup(b, 4, WithResultCache(1<<14)) }

// TestSubmitDedupThroughputGain is the non-flaky acceptance proxy for the
// BenchmarkSubmitDedup* rows: on the same 4×-duplicated workload, dedup
// must cut the modeled device work to a quarter and a warm cache must cut
// the executed batches to zero — the structural facts behind the ≥ 2×
// host-throughput win the benchmarks measure.
func TestSubmitDedupThroughputGain(t *testing.T) {
	base := cacheTestDataset(31)
	dup := &workload.Dataset{Name: base.Name, Sequences: base.Sequences, Protein: base.Protein}
	for i := 0; i < 4; i++ {
		dup.Comparisons = append(dup.Comparisons, base.Comparisons...)
	}

	run := func(opts ...Option) *driver.Report {
		eng := New(append([]Option{WithDriverConfig(cacheTestConfig())}, opts...)...)
		defer eng.Close()
		var rep *driver.Report
		for i := 0; i < 2; i++ { // second submission warms the cache mode
			j, err := eng.Submit(context.Background(), dup)
			if err != nil {
				t.Fatal(err)
			}
			if rep, err = j.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		return rep
	}

	off := run()
	on := run(WithDedupExtensions(true))
	cached := run(WithResultCache(1 << 14))

	// Host throughput scales with executed DP cells (each duplicate is a
	// real re-extension on the host); modeled superstep time does not
	// shrink here because duplicates ran on parallel tiles.
	if on.Cells*4 != off.Cells {
		t.Errorf("dedup executed %d cells, want a quarter of %d", on.Cells, off.Cells)
	}
	if on.TheoreticalCells*4 != off.TheoreticalCells {
		t.Errorf("dedup theoretical %d, want a quarter of %d", on.TheoreticalCells, off.TheoreticalCells)
	}
	if cached.Batches != 0 || cached.Cells != 0 {
		t.Errorf("warm cached job executed %d batches, %d cells", cached.Batches, cached.Cells)
	}
	for i := range off.Results {
		if on.Results[i] != off.Results[i] || cached.Results[i] != off.Results[i] {
			t.Fatalf("result %d differs across modes", i)
		}
	}
}
