// The cross-job result cache: a bounded, sharded LRU over finished
// extensions, shared by every submission an engine serves. Keys are the
// driver's CacheKey — the extension's content-addressed identity
// (sequence digests, lengths, seed geometry) plus a fingerprint of the
// kernel configuration — so two clients submitting byte-identical work
// under the same scoring regime hit each other's results regardless of
// pool numbering, the way LOGAN-class batch aligners avoid ever
// re-extending identical seed pairs.

package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
)

// DefaultResultCacheEntries is the capacity WithResultCache(0) selects.
const DefaultResultCacheEntries = 1 << 16

// cacheShards fixes the shard count; per-shard locks keep concurrent
// builders and assemblers from serialising on one mutex.
const cacheShards = 16

type cacheEntry struct {
	key driver.CacheKey
	out ipukernel.AlignOut
}

type cacheShard struct {
	mu  sync.Mutex
	m   map[driver.CacheKey]*list.Element
	lru list.List // front = most recently used
}

// resultCache implements driver.ResultCache: a sharded LRU bounded at
// construction, with hit/miss/evict counters surfaced through
// Engine.Stats. Shard maps are keyed by the full CacheKey struct, so
// entries that collide in the shard hash still compare by every field —
// a shard-hash collision can never alias two extensions.
type resultCache struct {
	perShard int
	shards   [cacheShards]cacheShard

	hits, misses, evictions atomic.Int64
	// payloadBytes approximates the cache's resident footprint: a fixed
	// per-entry overhead plus each entry's CIGAR length. The LRU bound is
	// per entry, and with traceback enabled entries carry alignment-length
	// strings — this counter is what makes that growth observable
	// (Stats.CacheBytes) instead of silent.
	payloadBytes atomic.Int64
}

// cacheEntryFixedBytes approximates the per-entry overhead outside the
// CIGAR: the AlignOut value, key, list element and map slot.
const cacheEntryFixedBytes = 192

func entryBytes(out ipukernel.AlignOut) int64 {
	return cacheEntryFixedBytes + int64(len(out.Cigar))
}

func newResultCache(entries int) *resultCache {
	if entries <= 0 {
		entries = DefaultResultCacheEntries
	}
	perShard := (entries + cacheShards - 1) / cacheShards
	c := &resultCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].m = make(map[driver.CacheKey]*list.Element, perShard)
	}
	return c
}

// shardOf mixes the key's digests, seed geometry and kernel fingerprint
// into a shard index.
func (c *resultCache) shardOf(k driver.CacheKey) *cacheShard {
	h := k.Ext.H.Lo ^ k.Ext.V.Hi ^ k.Kernel ^
		uint64(uint32(k.Ext.SeedH))<<32 ^ uint64(uint32(k.Ext.SeedV))<<1 ^
		uint64(uint32(k.Ext.SeedLen))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return &c.shards[h%cacheShards]
}

// Get implements driver.ResultCache.
func (c *resultCache) Get(k driver.CacheKey) (ipukernel.AlignOut, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	el, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return ipukernel.AlignOut{}, false
	}
	s.lru.MoveToFront(el)
	out := el.Value.(*cacheEntry).out
	s.mu.Unlock()
	c.hits.Add(1)
	return out, true
}

// Put implements driver.ResultCache.
func (c *resultCache) Put(k driver.CacheKey, out ipukernel.AlignOut) {
	s := c.shardOf(k)
	bytesDelta := entryBytes(out)
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		// Results are deterministic per key, so overwrite == refresh.
		e := el.Value.(*cacheEntry)
		bytesDelta -= entryBytes(e.out)
		e.out = out
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		c.payloadBytes.Add(bytesDelta)
		return
	}
	s.m[k] = s.lru.PushFront(&cacheEntry{key: k, out: out})
	var evicted int64
	for s.lru.Len() > c.perShard {
		back := s.lru.Back()
		s.lru.Remove(back)
		e := back.Value.(*cacheEntry)
		bytesDelta -= entryBytes(e.out)
		delete(s.m, e.key)
		evicted++
	}
	s.mu.Unlock()
	c.payloadBytes.Add(bytesDelta)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}
