package engine

import (
	"context"
	"testing"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
)

// TestWithTraceMinScoreOptionFingerprint: with traceback on, the score
// gate must split the kernel fingerprint (gated and ungated runs record
// different payloads, so their cache entries must never alias); with
// traceback off the knob is inert and must not split score-only caches.
func TestWithTraceMinScoreOptionFingerprint(t *testing.T) {
	on := testCfg(1)
	on.Traceback = true
	onN := on.Normalized()
	gated := on
	gated.TraceMinScore = 80
	gatedN := gated.Normalized()
	if driver.KernelFingerprint(onN.Kernel, onN.Model) == driver.KernelFingerprint(gatedN.Kernel, gatedN.Model) {
		t.Fatal("trace score gate does not change the traceback kernel fingerprint")
	}

	off := testCfg(1).Normalized()
	gatedOff := testCfg(1)
	gatedOff.TraceMinScore = 80
	gatedOffN := gatedOff.Normalized()
	if driver.KernelFingerprint(off.Kernel, off.Model) != driver.KernelFingerprint(gatedOffN.Kernel, gatedOffN.Model) {
		t.Fatal("trace score gate split the score-only fingerprint; score-only runs should share entries")
	}

	e := New(WithDriverConfig(testCfg(1)), WithTraceback(true), WithTraceMinScore(80))
	defer e.Close()
	if e.Config().Kernel.TraceMinScore != 80 {
		t.Fatal("WithTraceMinScore did not reach the kernel config")
	}
}

// TestWithTraceModeOptionFingerprint: replay and fused recordings are
// bit-identical, but the mode still keys the fingerprint under traceback
// (execution traces and SRAM charges differ); score-only runs ignore it.
func TestWithTraceModeOptionFingerprint(t *testing.T) {
	on := testCfg(1)
	on.Traceback = true
	replay := on
	replay.TraceMode = core.TraceModeReplay
	replayN := replay.Normalized()
	fused := on
	fused.TraceMode = core.TraceModeFused
	fusedN := fused.Normalized()
	if driver.KernelFingerprint(replayN.Kernel, replayN.Model) == driver.KernelFingerprint(fusedN.Kernel, fusedN.Model) {
		t.Fatal("trace mode does not change the traceback kernel fingerprint")
	}

	off := testCfg(1).Normalized()
	fusedOff := testCfg(1)
	fusedOff.TraceMode = core.TraceModeFused
	fusedOffN := fusedOff.Normalized()
	if driver.KernelFingerprint(off.Kernel, off.Model) != driver.KernelFingerprint(fusedOffN.Kernel, fusedOffN.Model) {
		t.Fatal("trace mode split the score-only fingerprint; score-only runs should share entries")
	}

	e := New(WithDriverConfig(testCfg(1)), WithTraceback(true), WithTraceMode(core.TraceModeFused))
	defer e.Close()
	if e.Config().Kernel.TraceMode != core.TraceModeFused {
		t.Fatal("WithTraceMode did not reach the kernel config")
	}
}

// TestEngineTraceCounters: the traced/skipped extension counters must
// aggregate through Engine.Stats — every extension traced on an ungated
// traceback engine, every extension skipped under an unreachable gate.
func TestEngineTraceCounters(t *testing.T) {
	d := readsData(t, 31, 16)

	e := New(WithDriverConfig(testCfg(1)), WithTraceback(true))
	job, err := e.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	collectStream(t, job, len(d.Comparisons))
	st := e.Stats()
	e.Close()
	if st.TracedExtensions != int64(2*len(d.Comparisons)) || st.TraceSkippedExtensions != 0 {
		t.Fatalf("ungated engine: traced=%d skipped=%d, want %d/0",
			st.TracedExtensions, st.TraceSkippedExtensions, 2*len(d.Comparisons))
	}

	g := New(WithDriverConfig(testCfg(1)), WithTraceback(true), WithTraceMinScore(1<<30))
	job, err = g.Submit(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(t, job, len(d.Comparisons))
	st = g.Stats()
	g.Close()
	if st.TraceSkippedExtensions != int64(2*len(d.Comparisons)) || st.TracedExtensions != 0 {
		t.Fatalf("gated engine: traced=%d skipped=%d, want 0/%d",
			st.TracedExtensions, st.TraceSkippedExtensions, 2*len(d.Comparisons))
	}
	for i, r := range got {
		if r.Cigar != "" || r.TraceBytes != 0 {
			t.Fatalf("comparison %d under an unreachable gate carries trace payload: %+v", i, r)
		}
	}
}
