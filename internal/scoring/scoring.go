// Package scoring provides symbol-pair similarity functions for sequence
// alignment: simple match/mismatch schemes for DNA and substitution matrices
// (BLOSUM62) for proteins, as used by PASTIS (§2.4, §5.3.1 of the paper).
//
// All scorers expose a dense 256×256 lookup table so the dynamic-programming
// inner loops pay a single array access per cell instead of an interface
// call.
package scoring

import "fmt"

// PairTable is a dense similarity lookup over raw sequence bytes.
type PairTable [256][256]int8

// Scorer quantifies the similarity of two sequence symbols, the Sim(v,h)
// function of the paper's recurrence (§2.2).
type Scorer interface {
	// Score returns the similarity of symbols a and b.
	Score(a, b byte) int
	// Table returns the dense lookup table backing Score.
	Table() *PairTable
	// MaxScore returns the largest value Score can return; band-size
	// heuristics use it to bound score slopes.
	MaxScore() int
	// String names the scheme for reports.
	String() string
}

// Simple is a match/mismatch scorer for nucleotide alignment. The paper's
// DNA experiments use +1/−1 (the LOGAN/ELBA convention).
type Simple struct {
	match, mismatch int
	tab             PairTable
}

// NewSimple builds a match/mismatch scorer. match must be positive and
// mismatch negative; the symbol 'N' mismatches everything including itself.
func NewSimple(match, mismatch int) *Simple {
	if match <= 0 || mismatch >= 0 {
		panic(fmt.Sprintf("scoring: invalid simple scheme match=%d mismatch=%d", match, mismatch))
	}
	s := &Simple{match: match, mismatch: mismatch}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			v := mismatch
			if a == b && a != 'N' {
				v = match
			}
			s.tab[a][b] = int8(v)
		}
	}
	return s
}

// Score returns match for equal non-N symbols and mismatch otherwise.
func (s *Simple) Score(a, b byte) int { return int(s.tab[a][b]) }

// Table returns the dense lookup table.
func (s *Simple) Table() *PairTable { return &s.tab }

// MaxScore returns the match reward.
func (s *Simple) MaxScore() int { return s.match }

// String names the scheme.
func (s *Simple) String() string {
	return fmt.Sprintf("simple(%+d/%+d)", s.match, s.mismatch)
}

// DNADefault is the +1/−1 scheme used throughout the paper's DNA
// experiments.
var DNADefault = NewSimple(1, -1)

// Matrix is a substitution-matrix scorer over a fixed symbol order.
type Matrix struct {
	name    string
	symbols string
	tab     PairTable
	max     int
}

// Score returns the matrix entry for the symbol pair; unknown symbols score
// like the ambiguity code 'X'.
func (m *Matrix) Score(a, b byte) int { return int(m.tab[a][b]) }

// Table returns the dense lookup table.
func (m *Matrix) Table() *PairTable { return &m.tab }

// MaxScore returns the largest matrix entry.
func (m *Matrix) MaxScore() int { return m.max }

// String names the matrix.
func (m *Matrix) String() string { return m.name }

// Symbols returns the matrix's symbol order.
func (m *Matrix) Symbols() string { return m.symbols }

// newMatrix builds a Matrix from a row-major half-space-separated literal.
func newMatrix(name, symbols string, rows [][]int8) *Matrix {
	if len(rows) != len(symbols) {
		panic("scoring: matrix row count mismatch")
	}
	m := &Matrix{name: name, symbols: symbols}
	// Unknown symbols behave like 'X' so Score is total over bytes.
	xi := -1
	for i := range symbols {
		if symbols[i] == 'X' {
			xi = i
		}
	}
	fallback := int8(-1)
	if xi >= 0 {
		fallback = rows[xi][xi]
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			m.tab[a][b] = fallback
		}
	}
	m.max = int(rows[0][0])
	for i := range symbols {
		if len(rows[i]) != len(symbols) {
			panic("scoring: matrix column count mismatch")
		}
		for j := range symbols {
			v := rows[i][j]
			m.tab[symbols[i]][symbols[j]] = v
			if int(v) > m.max {
				m.max = int(v)
			}
		}
	}
	return m
}
