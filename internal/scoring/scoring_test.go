package scoring

import (
	"testing"
	"testing/quick"
)

func TestSimpleScores(t *testing.T) {
	s := NewSimple(1, -1)
	tests := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 1},
		{'A', 'C', -1},
		{'N', 'N', -1}, // N never matches
		{'G', 'G', 1},
		{'T', 'A', -1},
	}
	for _, tc := range tests {
		if got := s.Score(tc.a, tc.b); got != tc.want {
			t.Errorf("Score(%c,%c) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if s.MaxScore() != 1 {
		t.Errorf("MaxScore = %d, want 1", s.MaxScore())
	}
}

func TestSimplePanicsOnBadScheme(t *testing.T) {
	for _, mm := range [][2]int{{0, -1}, {1, 0}, {-1, -1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSimple(%d,%d) did not panic", mm[0], mm[1])
				}
			}()
			NewSimple(mm[0], mm[1])
		}()
	}
}

func TestSimpleTableAgrees(t *testing.T) {
	s := NewSimple(2, -3)
	tab := s.Table()
	f := func(a, b byte) bool {
		return int(tab[a][b]) == s.Score(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlosum62KnownEntries(t *testing.T) {
	tests := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4},
		{'W', 'W', 11},
		{'C', 'C', 9},
		{'A', 'R', -1},
		{'R', 'A', -1},
		{'W', 'C', -2},
		{'*', '*', 1},
		{'B', 'D', 4},
		{'X', 'X', -1},
		{'L', 'I', 2},
		{'E', 'Z', 4},
	}
	for _, tc := range tests {
		if got := Blosum62.Score(tc.a, tc.b); got != tc.want {
			t.Errorf("BLOSUM62(%c,%c) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestBlosum62Symmetric(t *testing.T) {
	syms := []byte(Blosum62.Symbols())
	for _, a := range syms {
		for _, b := range syms {
			if Blosum62.Score(a, b) != Blosum62.Score(b, a) {
				t.Fatalf("BLOSUM62 not symmetric at (%c,%c)", a, b)
			}
		}
	}
}

func TestBlosum62UnknownSymbolFallsBackToX(t *testing.T) {
	if Blosum62.Score('J', 'A') != Blosum62.Score('X', 'X') {
		t.Errorf("unknown symbol should score like X/X")
	}
}

func TestBlosum62Max(t *testing.T) {
	if Blosum62.MaxScore() != 11 {
		t.Errorf("MaxScore = %d, want 11 (W/W)", Blosum62.MaxScore())
	}
}

func TestDNADefault(t *testing.T) {
	if DNADefault.Score('A', 'A') != 1 || DNADefault.Score('A', 'G') != -1 {
		t.Error("DNADefault is not +1/-1")
	}
	if DNADefault.String() != "simple(+1/-1)" {
		t.Errorf("String = %q", DNADefault.String())
	}
	if Blosum62.String() != "BLOSUM62" {
		t.Errorf("String = %q", Blosum62.String())
	}
}
