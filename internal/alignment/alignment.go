// Package alignment defines the edit-operation representation of a
// pairwise alignment: CIGAR strings over the {=, X, I, D} operation set,
// plus the spans and identity derived from them and an independent
// score-reconstruction oracle.
//
// The package is the reporting half of the traceback subsystem: the DP
// kernels (internal/core) emit operations, everything above — tiles,
// driver, engine, pipelines — carries them around as opaque values. A
// Cigar is deliberately a string, not a slice of runs: it is immutable,
// comparable with ==, shareable across result fan-out and the cross-job
// result cache without aliasing concerns, and zero when traceback is off.
//
// Conventions: H is the query-side sequence and V the target-side one
// (matching the kernels' naming). '=' and 'X' consume one symbol of each;
// 'I' consumes H only (a gap in V); 'D' consumes V only (a gap in H).
package alignment

import (
	"fmt"
	"strconv"

	"github.com/sram-align/xdropipu/internal/scoring"
)

// Op is one CIGAR edit operation.
type Op byte

// The operation set. Only the exact-match/mismatch pair is emitted (never
// the ambiguous 'M'), so identity falls out of the CIGAR alone.
const (
	// OpMatch ('=') aligns two equal symbols.
	OpMatch Op = '='
	// OpMismatch ('X') aligns two differing symbols.
	OpMismatch Op = 'X'
	// OpIns ('I') consumes one H symbol against a gap in V.
	OpIns Op = 'I'
	// OpDel ('D') consumes one V symbol against a gap in H.
	OpDel Op = 'D'
)

// Valid reports whether the operation is in the emitted set.
func (o Op) Valid() bool {
	return o == OpMatch || o == OpMismatch || o == OpIns || o == OpDel
}

// ConsumesH reports whether the operation advances the H (query) cursor.
func (o Op) ConsumesH() bool { return o == OpMatch || o == OpMismatch || o == OpIns }

// ConsumesV reports whether the operation advances the V (target) cursor.
func (o Op) ConsumesV() bool { return o == OpMatch || o == OpMismatch || o == OpDel }

// Run is one maximal run of a single operation.
type Run struct {
	// Op is the operation.
	Op Op
	// Len is the run length (> 0 in a valid Cigar).
	Len int
}

// Cigar is the compact textual encoding of an alignment's edit operations,
// e.g. "12=1X3D2=". The empty Cigar is valid and denotes an empty
// alignment (a zero-length extension, or traceback disabled).
//
// A valid Cigar is canonical: every run length is positive and adjacent
// runs use different operations, so String/Parse round-trip exactly and
// two equal alignments have equal (==) Cigars.
type Cigar string

// String returns the encoding itself.
func (c Cigar) String() string { return string(c) }

// scan walks the runs, calling fn for each; it reports malformed input
// (bad syntax, zero lengths, unknown ops, non-canonical adjacency).
func (c Cigar) scan(fn func(Run) error) error {
	prev := Op(0)
	for i := 0; i < len(c); {
		start := i
		for i < len(c) && c[i] >= '0' && c[i] <= '9' {
			i++
		}
		if i == start {
			return fmt.Errorf("alignment: cigar %q: missing length at offset %d", c, start)
		}
		if c[start] == '0' {
			// Leading zeros would let two encodings of one alignment
			// compare unequal ("01=" vs "1="), breaking == comparability.
			return fmt.Errorf("alignment: cigar %q: non-canonical length at offset %d", c, start)
		}
		if i >= len(c) {
			return fmt.Errorf("alignment: cigar %q: truncated run at offset %d", c, start)
		}
		n, err := strconv.Atoi(string(c[start:i]))
		if err != nil {
			return fmt.Errorf("alignment: cigar %q: bad length at offset %d: %v", c, start, err)
		}
		op := Op(c[i])
		i++
		if !op.Valid() {
			return fmt.Errorf("alignment: cigar %q: unknown op %q", c, op)
		}
		if n <= 0 {
			return fmt.Errorf("alignment: cigar %q: zero-length %q run", c, op)
		}
		if op == prev {
			return fmt.Errorf("alignment: cigar %q: adjacent %q runs (not canonical)", c, op)
		}
		prev = op
		if err := fn(Run{Op: op, Len: n}); err != nil {
			return err
		}
	}
	return nil
}

// Validate reports whether the Cigar is well-formed and canonical.
func (c Cigar) Validate() error {
	return c.scan(func(Run) error { return nil })
}

// Runs decodes the Cigar into its run list.
func (c Cigar) Runs() ([]Run, error) {
	var runs []Run
	if err := c.scan(func(r Run) error { runs = append(runs, r); return nil }); err != nil {
		return nil, err
	}
	return runs, nil
}

// Parse validates s and returns it as a Cigar.
func Parse(s string) (Cigar, error) {
	c := Cigar(s)
	if err := c.Validate(); err != nil {
		return "", err
	}
	return c, nil
}

// Stats are the aggregate properties of a Cigar.
type Stats struct {
	// SpanH and SpanV are the consumed query/target lengths.
	SpanH, SpanV int
	// Columns is the total operation count (alignment length).
	Columns int
	// Matches counts '=' columns.
	Matches int
	// Runs counts maximal runs — the wire size of the encoded CIGAR is
	// 4 bytes per run (BAM-style packed <len,op> words).
	Runs int
}

// Stats aggregates the Cigar's spans, column and match counts.
func (c Cigar) Stats() (Stats, error) {
	var st Stats
	err := c.scan(func(r Run) error {
		st.Columns += r.Len
		st.Runs++
		if r.Op.ConsumesH() {
			st.SpanH += r.Len
		}
		if r.Op.ConsumesV() {
			st.SpanV += r.Len
		}
		if r.Op == OpMatch {
			st.Matches += r.Len
		}
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Identity returns the fraction of '=' columns over all columns, in
// [0, 1]. An empty or malformed Cigar yields 0.
func (c Cigar) Identity() float64 {
	st, err := c.Stats()
	if err != nil || st.Columns == 0 {
		return 0
	}
	return float64(st.Matches) / float64(st.Columns)
}

// WireBytes returns the encoded transfer size of the Cigar: 4 bytes per
// run (a BAM-style packed length+op word), 0 when empty.
func (c Cigar) WireBytes() int {
	st, err := c.Stats()
	if err != nil {
		return 0
	}
	return 4 * st.Runs
}

// Reverse returns the Cigar read back-to-front (runs reversed; each run
// is symmetric). Reversing maps an alignment of (h, v) onto the reversed
// sequences, which is how left seed extensions compose.
func (c Cigar) Reverse() (Cigar, error) {
	runs, err := c.Runs()
	if err != nil {
		return "", err
	}
	var b Builder
	for i := len(runs) - 1; i >= 0; i-- {
		b.Append(runs[i].Op, runs[i].Len)
	}
	return b.Cigar(), nil
}

// Builder assembles a canonical Cigar incrementally, merging adjacent
// runs of the same operation. The zero value is ready to use.
type Builder struct {
	buf     []byte
	lastOp  Op
	lastLen int
}

// Append adds n columns of op. Appending n <= 0 is a no-op; an invalid
// op panics (builder misuse, not data error).
func (b *Builder) Append(op Op, n int) {
	if n <= 0 {
		return
	}
	if !op.Valid() {
		panic(fmt.Sprintf("alignment: Builder.Append of invalid op %q", byte(op)))
	}
	if op == b.lastOp {
		b.lastLen += n
		return
	}
	b.flush()
	b.lastOp, b.lastLen = op, n
}

// AppendCigar appends every run of c, merging at the boundary.
func (b *Builder) AppendCigar(c Cigar) error {
	return c.scan(func(r Run) error { b.Append(r.Op, r.Len); return nil })
}

func (b *Builder) flush() {
	if b.lastLen > 0 {
		b.buf = strconv.AppendInt(b.buf, int64(b.lastLen), 10)
		b.buf = append(b.buf, byte(b.lastOp))
		b.lastLen = 0
	}
}

// Cigar returns the accumulated encoding and resets the builder.
func (b *Builder) Cigar() Cigar {
	b.flush()
	c := Cigar(b.buf)
	b.buf = nil
	b.lastOp, b.lastLen = 0, 0
	return c
}

// FromRuns encodes a run list canonically (merging adjacent same-op
// runs, skipping empty ones); invalid ops or negative lengths error.
func FromRuns(runs []Run) (Cigar, error) {
	var b Builder
	for _, r := range runs {
		if r.Len < 0 {
			return "", fmt.Errorf("alignment: negative run length %d", r.Len)
		}
		if r.Len == 0 {
			continue
		}
		if !r.Op.Valid() {
			return "", fmt.Errorf("alignment: unknown op %q", byte(r.Op))
		}
		b.Append(r.Op, r.Len)
	}
	return b.Cigar(), nil
}

// Concat joins Cigars in order, merging runs at the junctions.
func Concat(parts ...Cigar) (Cigar, error) {
	var b Builder
	for _, p := range parts {
		if err := b.AppendCigar(p); err != nil {
			return "", err
		}
	}
	return b.Cigar(), nil
}

// ScoreOf recomputes the alignment score a Cigar implies over the two
// concrete aligned fragments: similarity over '='/'X' columns plus
// gapOpen + len·gap per maximal gap run (gapOpen = 0 reproduces the
// linear scheme). It is the independent oracle of the traceback
// subsystem: for a correct traceback the reconstructed score bit-matches
// the score-only kernel.
//
// h and v must be exactly the aligned fragments — the Cigar has to
// consume both completely — and every '='/'X' column must agree with the
// bytes, so a coordinate or operation error surfaces here rather than as
// a silently wrong score.
func ScoreOf(h, v []byte, c Cigar, sc scoring.Scorer, gap, gapOpen int) (int, error) {
	if sc == nil {
		return 0, fmt.Errorf("alignment: ScoreOf requires a scorer")
	}
	tab := sc.Table()
	score, hi, vi := 0, 0, 0
	err := c.scan(func(r Run) error {
		switch r.Op {
		case OpMatch, OpMismatch:
			if hi+r.Len > len(h) || vi+r.Len > len(v) {
				return fmt.Errorf("alignment: cigar %q overruns the aligned fragments (|h|=%d |v|=%d)", c, len(h), len(v))
			}
			for k := 0; k < r.Len; k++ {
				eq := h[hi+k] == v[vi+k]
				if eq != (r.Op == OpMatch) {
					return fmt.Errorf("alignment: cigar %q: %q column %d disagrees with symbols %q/%q",
						c, r.Op, hi+k, h[hi+k], v[vi+k])
				}
				score += int(tab[h[hi+k]][v[vi+k]])
			}
			hi += r.Len
			vi += r.Len
		case OpIns:
			if hi+r.Len > len(h) {
				return fmt.Errorf("alignment: cigar %q overruns the aligned fragments (|h|=%d |v|=%d)", c, len(h), len(v))
			}
			score += gapOpen + r.Len*gap
			hi += r.Len
		case OpDel:
			if vi+r.Len > len(v) {
				return fmt.Errorf("alignment: cigar %q overruns the aligned fragments (|h|=%d |v|=%d)", c, len(h), len(v))
			}
			score += gapOpen + r.Len*gap
			vi += r.Len
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if hi != len(h) || vi != len(v) {
		return 0, fmt.Errorf("alignment: cigar %q consumes %d/%d symbols of fragments sized %d/%d",
			c, hi, vi, len(h), len(v))
	}
	return score, nil
}

// Alignment is one comparison's full traceback outcome in sequence
// coordinates: the aligned region [BegH,EndH)×[BegV,EndV) and the edit
// operations over it.
type Alignment struct {
	// Score is the total alignment score (left + seed + right).
	Score int
	// BegH/BegV are inclusive starts; EndH/EndV exclusive ends.
	BegH, BegV, EndH, EndV int
	// Cigar covers exactly the aligned region.
	Cigar Cigar
}

// Identity is the fraction of '=' columns (0 for an empty alignment).
func (a Alignment) Identity() float64 { return a.Cigar.Identity() }

// Validate checks the structural invariants: well-formed canonical
// Cigar, ordered non-negative coordinates, and operation spans that
// consume exactly the reported query/target spans.
func (a Alignment) Validate() error {
	st, err := a.Cigar.Stats()
	if err != nil {
		return err
	}
	if a.BegH < 0 || a.BegV < 0 || a.BegH > a.EndH || a.BegV > a.EndV {
		return fmt.Errorf("alignment: bad span [%d,%d)x[%d,%d)", a.BegH, a.EndH, a.BegV, a.EndV)
	}
	if st.SpanH != a.EndH-a.BegH || st.SpanV != a.EndV-a.BegV {
		return fmt.Errorf("alignment: cigar %q spans %dx%d, alignment reports %dx%d",
			a.Cigar, st.SpanH, st.SpanV, a.EndH-a.BegH, a.EndV-a.BegV)
	}
	return nil
}
