package alignment

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/sram-align/xdropipu/internal/scoring"
)

// randCigarRuns generates a random valid (canonical) run list together
// with fragments h, v that the runs consume exactly, so every property
// can be checked against ground truth assembled alongside.
func randCigarRuns(rng *rand.Rand) (runs []Run, h, v []byte, matches, columns int) {
	alpha := []byte("ACGT")
	nRuns := rng.Intn(8)
	prev := Op(0)
	for r := 0; r < nRuns; r++ {
		ops := []Op{OpMatch, OpMismatch, OpIns, OpDel}
		op := ops[rng.Intn(len(ops))]
		if op == prev {
			continue
		}
		prev = op
		n := 1 + rng.Intn(5)
		runs = append(runs, Run{Op: op, Len: n})
		columns += n
		for k := 0; k < n; k++ {
			switch op {
			case OpMatch:
				c := alpha[rng.Intn(4)]
				h = append(h, c)
				v = append(v, c)
				matches++
			case OpMismatch:
				c := rng.Intn(4)
				h = append(h, alpha[c])
				v = append(v, alpha[(c+1+rng.Intn(3))%4])
			case OpIns:
				h = append(h, alpha[rng.Intn(4)])
			case OpDel:
				v = append(v, alpha[rng.Intn(4)])
			}
		}
	}
	return runs, h, v, matches, columns
}

// TestCigarProperties drives the package's core invariants over random
// canonical CIGARs: round-trip String/Parse, exact span consumption,
// identity in [0,1], reversal self-inverse, wire size accounting.
func TestCigarProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 500; it++ {
		runs, h, v, matches, columns := randCigarRuns(rng)
		c, err := FromRuns(runs)
		if err != nil {
			t.Fatalf("FromRuns(%v): %v", runs, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("generated cigar %q invalid: %v", c, err)
		}

		// Round trip: Parse(String) reproduces the same Cigar and runs.
		rt, err := Parse(c.String())
		if err != nil || rt != c {
			t.Fatalf("round trip of %q: got %q, err %v", c, rt, err)
		}
		back, err := c.Runs()
		if err != nil {
			t.Fatalf("Runs(%q): %v", c, err)
		}
		again, err := FromRuns(back)
		if err != nil || again != c {
			t.Fatalf("FromRuns(Runs(%q)) = %q, err %v", c, again, err)
		}

		// Ops consume exactly the fragments they were generated from.
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("Stats(%q): %v", c, err)
		}
		if st.SpanH != len(h) || st.SpanV != len(v) {
			t.Fatalf("cigar %q spans %dx%d, fragments %dx%d", c, st.SpanH, st.SpanV, len(h), len(v))
		}
		if st.Columns != columns || st.Matches != matches {
			t.Fatalf("cigar %q columns/matches %d/%d, want %d/%d", c, st.Columns, st.Matches, columns, matches)
		}
		if st.Runs != len(back) {
			t.Fatalf("cigar %q run count %d, want %d", c, st.Runs, len(back))
		}
		if c.WireBytes() != 4*len(back) {
			t.Fatalf("cigar %q wire bytes %d, want %d", c, c.WireBytes(), 4*len(back))
		}

		// Identity ∈ [0,1] and equals matches/columns.
		id := c.Identity()
		if id < 0 || id > 1 {
			t.Fatalf("cigar %q identity %v out of range", c, id)
		}
		if columns > 0 && id != float64(matches)/float64(columns) {
			t.Fatalf("cigar %q identity %v, want %v", c, id, float64(matches)/float64(columns))
		}
		if columns == 0 && id != 0 {
			t.Fatalf("empty cigar identity %v", id)
		}

		// Reverse is an involution and preserves stats.
		rev, err := c.Reverse()
		if err != nil {
			t.Fatalf("Reverse(%q): %v", c, err)
		}
		rst, err := rev.Stats()
		if err != nil || rst.SpanH != st.SpanH || rst.SpanV != st.SpanV || rst.Matches != st.Matches {
			t.Fatalf("Reverse(%q) = %q changed stats: %+v vs %+v (err %v)", c, rev, rst, st, err)
		}
		rr, err := rev.Reverse()
		if err != nil || rr != c {
			t.Fatalf("double reverse of %q = %q, err %v", c, rr, err)
		}

		// The score oracle accepts the generated fragments and matches a
		// direct recomputation.
		sc := scoring.DNADefault
		got, err := ScoreOf(h, v, c, sc, -2, -3)
		if err != nil {
			t.Fatalf("ScoreOf(%q): %v", c, err)
		}
		want := 0
		hi, vi := 0, 0
		for _, r := range back {
			switch r.Op {
			case OpMatch, OpMismatch:
				for k := 0; k < r.Len; k++ {
					want += sc.Score(h[hi+k], v[vi+k])
				}
				hi, vi = hi+r.Len, vi+r.Len
			case OpIns:
				want += -3 + r.Len*-2
				hi += r.Len
			case OpDel:
				want += -3 + r.Len*-2
				vi += r.Len
			}
		}
		if got != want {
			t.Fatalf("ScoreOf(%q) = %d, want %d", c, got, want)
		}

		// Alignment validation over the same spans.
		a := Alignment{Score: got, BegH: 3, BegV: 5, EndH: 3 + len(h), EndV: 5 + len(v), Cigar: c}
		if err := a.Validate(); err != nil {
			t.Fatalf("alignment of %q invalid: %v", c, err)
		}
		if a.Identity() != id {
			t.Fatalf("alignment identity %v != cigar identity %v", a.Identity(), id)
		}
	}
}

// TestCigarRejectsMalformed enumerates the invalidity classes: zero
// lengths, unknown ops, missing lengths, truncation, non-canonical
// adjacency.
func TestCigarRejectsMalformed(t *testing.T) {
	bad := []string{
		"0=",                       // zero-length op
		"3=0X",                     // embedded zero-length op
		"01=",                      // leading zero: non-canonical encoding
		"2X007D",                   // ditto, longer run
		"3M",                       // 'M' is deliberately not in the op set
		"=",                        // missing length
		"3",                        // truncated (length without op)
		"3=2",                      // trailing truncated run
		"-1=",                      // negative length (syntax)
		"2=3=",                     // adjacent same-op runs: not canonical
		"1=2X2X",                   // ditto, later position
		"12345678901234567890123=", // length overflow
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", s)
		}
		if Cigar(s).Identity() != 0 {
			t.Errorf("Identity(%q) nonzero on malformed input", s)
		}
		if Cigar(s).WireBytes() != 0 {
			t.Errorf("WireBytes(%q) nonzero on malformed input", s)
		}
		if _, err := Cigar(s).Runs(); err == nil {
			t.Errorf("Runs(%q) accepted malformed input", s)
		}
		if _, err := Cigar(s).Reverse(); err == nil {
			t.Errorf("Reverse(%q) accepted malformed input", s)
		}
	}
	if _, err := FromRuns([]Run{{Op: OpMatch, Len: -1}}); err == nil {
		t.Error("FromRuns accepted a negative run length")
	}
	if _, err := FromRuns([]Run{{Op: 'Q', Len: 2}}); err == nil {
		t.Error("FromRuns accepted an unknown op")
	}
	if _, err := Concat("2=", "1Q"); err == nil {
		t.Error("Concat accepted a malformed part")
	}
}

// TestEmptyCigar pins the zero-value semantics traceback-off paths rely
// on: valid, empty stats, identity 0.
func TestEmptyCigar(t *testing.T) {
	var c Cigar
	if err := c.Validate(); err != nil {
		t.Fatalf("empty cigar invalid: %v", err)
	}
	st, err := c.Stats()
	if err != nil || st != (Stats{}) {
		t.Fatalf("empty cigar stats %+v, err %v", st, err)
	}
	runs, err := c.Runs()
	if err != nil || len(runs) != 0 {
		t.Fatalf("empty cigar runs %v, err %v", runs, err)
	}
	if s, err := ScoreOf(nil, nil, c, scoring.DNADefault, -1, 0); err != nil || s != 0 {
		t.Fatalf("empty cigar score %d, err %v", s, err)
	}
	if a := (Alignment{BegH: 4, EndH: 4, BegV: 9, EndV: 9}); a.Validate() != nil {
		t.Fatalf("empty alignment invalid: %v", a.Validate())
	}
}

// TestBuilderMergesRuns checks boundary merging in Builder, Concat and
// FromRuns — junction runs of the same op must coalesce into canonical
// form.
func TestBuilderMergesRuns(t *testing.T) {
	var b Builder
	b.Append(OpMatch, 3)
	b.Append(OpMatch, 2)
	b.Append(OpIns, 0) // no-op
	b.Append(OpDel, 1)
	if err := b.AppendCigar("2D3="); err != nil {
		t.Fatal(err)
	}
	if got := b.Cigar(); got != "5=3D3=" {
		t.Fatalf("builder produced %q, want 5=3D3=", got)
	}
	// The builder resets after Cigar().
	if got := b.Cigar(); got != "" {
		t.Fatalf("reused builder produced %q", got)
	}

	c, err := Concat("4=", "2=1X", "", "1X3I")
	if err != nil {
		t.Fatal(err)
	}
	if c != "6=2X3I" {
		t.Fatalf("Concat = %q, want 6=2X3I", c)
	}

	merged, err := FromRuns([]Run{{OpMatch, 1}, {OpMatch, 4}, {OpDel, 0}, {OpMismatch, 2}})
	if err != nil || merged != "5=2X" {
		t.Fatalf("FromRuns merged to %q, err %v", merged, err)
	}
}

// TestScoreOfRejectsDisagreement: the oracle must fail loudly on
// coordinate drift or op/symbol disagreement rather than return a wrong
// score.
func TestScoreOfRejectsDisagreement(t *testing.T) {
	sc := scoring.DNADefault
	cases := []struct {
		name string
		h, v string
		c    Cigar
	}{
		{"match-on-mismatch", "AC", "AG", "2="},
		{"mismatch-on-match", "AC", "AC", "2X"},
		{"underrun-h", "ACG", "AC", "2="},
		{"underrun-v", "AC", "ACG", "2="},
		{"overrun-h", "A", "AC", "2="},
		{"overrun-v", "AC", "A", "2="},
		{"overrun-ins", "A", "", "2I"},
		{"overrun-del", "", "A", "2D"},
	}
	for _, tc := range cases {
		if _, err := ScoreOf([]byte(tc.h), []byte(tc.v), tc.c, sc, -1, 0); err == nil {
			t.Errorf("%s: ScoreOf accepted cigar %q over %q/%q", tc.name, tc.c, tc.h, tc.v)
		}
	}
	if _, err := ScoreOf(nil, nil, "", nil, -1, 0); err == nil {
		t.Error("ScoreOf accepted a nil scorer")
	}
}

// TestAlignmentValidateRejects covers the Alignment-level invariants.
func TestAlignmentValidateRejects(t *testing.T) {
	cases := []Alignment{
		{BegH: -1, EndH: 0, Cigar: ""},                    // negative start
		{BegH: 2, EndH: 1, Cigar: ""},                     // inverted span
		{BegH: 0, EndH: 3, BegV: 0, EndV: 3, Cigar: "2="}, // span mismatch
		{BegH: 0, EndH: 1, BegV: 0, EndV: 1, Cigar: "1M"}, // malformed cigar
	}
	for i, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, a)
		}
	}
}

// TestOpPredicates pins the consumption table the walkers rely on.
func TestOpPredicates(t *testing.T) {
	type row struct {
		op   Op
		h, v bool
	}
	for _, r := range []row{{OpMatch, true, true}, {OpMismatch, true, true}, {OpIns, true, false}, {OpDel, false, true}} {
		if r.op.ConsumesH() != r.h || r.op.ConsumesV() != r.v {
			t.Errorf("op %q consumption (%v,%v), want (%v,%v)", r.op, r.op.ConsumesH(), r.op.ConsumesV(), r.h, r.v)
		}
		if !r.op.Valid() {
			t.Errorf("op %q reported invalid", r.op)
		}
	}
	if Op('M').Valid() || Op(0).Valid() {
		t.Error("invalid ops reported valid")
	}
	if !strings.Contains(string(OpMatch), "=") {
		t.Error("OpMatch is not '='")
	}
}

// FuzzParse: Parse must never accept a string whose re-encoding differs,
// and accepted CIGARs must satisfy the structural invariants.
func FuzzParse(f *testing.F) {
	f.Add("12=1X3D")
	f.Add("")
	f.Add("3I2D")
	f.Add("0=")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Parse(s)
		if err != nil {
			return
		}
		runs, err := c.Runs()
		if err != nil {
			t.Fatalf("accepted cigar %q failed Runs: %v", c, err)
		}
		back, err := FromRuns(runs)
		if err != nil || back != c {
			t.Fatalf("accepted cigar %q re-encodes to %q (err %v)", c, back, err)
		}
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("accepted cigar %q failed Stats: %v", c, err)
		}
		if st.SpanH < 0 || st.SpanV < 0 || st.Matches > st.Columns {
			t.Fatalf("accepted cigar %q has impossible stats %+v", c, st)
		}
		if id := c.Identity(); id < 0 || id > 1 {
			t.Fatalf("accepted cigar %q identity %v", c, id)
		}
	})
}
