package bench

import (
	"math/rand"

	"github.com/sram-align/xdropipu/internal/baselines"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Memory reproduces the §6.1 measurement: the working band δw on
// realistic E. coli-like data for X ∈ {10, 15, 30}, the memory saving
// from choosing δb ≥ δw (the paper reports 98.2 % at X=15), and the 55×
// footprint headline for 25 kb sequences.
func Memory(opt Options) error {
	opt = opt.withDefaults()
	// The generator's dataset is arena-backed (sequences are spans of one
	// immutable, content-interned slab), and this experiment plants false
	// seeds in place — so work on a private deep copy of the pool.
	d := opt.Ecoli().Clone()
	if len(d.Comparisons) > opt.n(400) {
		d.Comparisons = d.Comparisons[:opt.n(400)]
	}
	// Real overlap-detection output contains false candidates (repeat-
	// induced pairs that share seeds but are otherwise dissimilar); they
	// dominate δw because highly mismatched sequences spread the live
	// window the most (Fig. 6). Mix some in, as ELBA data would have.
	rng := rand.New(rand.NewSource(opt.Seed + 41))
	falseN := len(d.Comparisons) / 6
	for i := 0; i < falseN; i++ {
		h := rng.Intn(len(d.Sequences))
		v := rng.Intn(len(d.Sequences))
		if h == v {
			continue
		}
		hs, vs := d.Sequences[h], d.Sequences[v]
		k := 17
		if len(hs) < 4*k || len(vs) < 4*k {
			continue
		}
		sh := k + rng.Intn(len(hs)-2*k)
		sv := k + rng.Intn(len(vs)-2*k)
		synth.PlantSeed(hs, vs, sh, sv, k)
		d.Comparisons = append(d.Comparisons, workload.Comparison{
			H: h, V: v, SeedH: sh, SeedV: sv, SeedLen: k,
		})
	}

	// δ is governed by the longest extension in the dataset.
	maxDelta := 0
	for _, c := range d.Comparisons {
		lh, lv, rh, rv := d.ExtensionLens(c)
		if m := min(lh, lv); m > maxDelta {
			maxDelta = m
		}
		if m := min(rh, rv); m > maxDelta {
			maxDelta = m
		}
	}

	tab := metrics.NewTable("§6.1 — δw on realistic data and memory savings",
		"X", "δw", "δb chosen", "standard 3δ B", "restricted 2δb B", "saving", "verified exact")
	for _, x := range []int{10, 15, 30} {
		dw := maxBandOver(d, x)
		deltaB := roundUp(dw+dw/4, 32)
		std := 3 * (maxDelta + 1) * 4
		rst := 2 * deltaB * 4
		// Verify exactness: restricted at δb must reproduce the
		// unrestricted scores on a sample.
		exact := verifyRestricted(d, x, deltaB, 40)
		tab.AddRow(x, dw, deltaB, std, rst,
			metrics.Percent(100*(1-float64(rst)/float64(std))), exact)
	}
	tab.AddNote("paper: δw = {176, 339, 656} for X = {10, 15, 30} on E. coli; 98.2%% saving at X=15")

	// The 25 kb headline (§1, §3): footprint ratio for the longest reads
	// the paper targets, using the most conservative δb measured (X=30,
	// as the paper's 656 → δb≈680 does).
	dw30 := maxBandOver(d, 30)
	deltaB := roundUp(dw30+dw30/4, 32)
	ratio := float64(3*25001*4) / float64(2*deltaB*4)
	tab.AddNote("25 kb extension footprint at δb=%d: 3δ/2δb = %.1f× (paper: up to 55×)", deltaB, ratio)
	tab.Render(opt.W)
	return nil
}

// maxBandOver measures δw = max live-band width across the dataset.
func maxBandOver(d *workload.Dataset, x int) int {
	dw := 0
	var ws core.Workspace
	p := baselines.SeqAnParams(x)
	for _, c := range d.Comparisons {
		r, err := ws.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V],
			core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}, p)
		if err != nil {
			continue
		}
		if r.Stats.MaxLiveBand > dw {
			dw = r.Stats.MaxLiveBand
		}
	}
	return dw
}

func verifyRestricted(d *workload.Dataset, x, deltaB, sample int) bool {
	var ws core.Workspace
	std := baselines.SeqAnParams(x)
	rst := std
	rst.Algo = core.AlgoRestricted2
	rst.DeltaB = deltaB
	for i, c := range d.Comparisons {
		if i >= sample {
			break
		}
		seed := core.Seed{H: c.SeedH, V: c.SeedV, Len: c.SeedLen}
		a, err := ws.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V], seed, std)
		if err != nil {
			return false
		}
		b, err := ws.ExtendSeed(d.Sequences[c.H], d.Sequences[c.V], seed, rst)
		if err != nil {
			return false
		}
		if a.Score != b.Score {
			return false
		}
	}
	return true
}
