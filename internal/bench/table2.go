package bench

import (
	"github.com/sram-align/xdropipu/internal/metrics"
)

// Table2 reproduces the dataset-statistics table: comparison count,
// average sequence length, the P10/avg/P90 of the left and right
// extension lengths and the average complexity (|H|·|V|) per comparison.
func Table2(opt Options) error {
	opt = opt.withDefaults()
	tab := metrics.NewTable("Table 2 — datasets",
		"name", "cmp count", "seqlen avg",
		"L P10", "L avg", "L P90",
		"R P10", "R avg", "R P90",
		"complexity avg")
	for _, d := range opt.StandaloneDatasets() {
		if err := d.Validate(); err != nil {
			return err
		}
		var seqLens []int
		for _, s := range d.Sequences {
			seqLens = append(seqLens, len(s))
		}
		var lExt, rExt []int
		var complexity float64
		for _, c := range d.Comparisons {
			lh, lv, rh, rv := d.ExtensionLens(c)
			lExt = append(lExt, lh, lv)
			rExt = append(rExt, rh, rv)
			complexity += float64(d.Complexity(c))
		}
		if len(d.Comparisons) > 0 {
			complexity /= float64(len(d.Comparisons))
		}
		tab.AddRow(d.Name, len(d.Comparisons), metrics.MeanInts(seqLens),
			metrics.PercentileInts(lExt, 10), metrics.MeanInts(lExt), metrics.PercentileInts(lExt, 90),
			metrics.PercentileInts(rExt, 10), metrics.MeanInts(rExt), metrics.PercentileInts(rExt, 90),
			complexity)
	}
	tab.AddNote("lengths ≈ paper/2.5, comparison counts sized to saturate the 1/%d-scale device", opt.Scale)
	tab.Render(opt.W)
	return nil
}
