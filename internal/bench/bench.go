// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§5, §6), each regenerating the same
// rows/series the paper reports on the simulated platforms.
//
// Two scale knobs keep a full run within a test budget while preserving
// the comparative shapes the paper's conclusions rest on:
//
//   - Options.Scale divides every platform's parallel resources (IPU
//     tiles, CPU cores, GPU SMs) by the same factor, so cross-platform
//     ratios survive;
//   - Options.SizeFactor scales dataset sizes; defaults saturate the
//     scaled devices the way the paper's datasets saturate real ones.
//
// EXPERIMENTS.md records paper-vs-measured values per experiment.
package bench

import (
	"fmt"
	"io"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
)

// Options configures a harness run.
type Options struct {
	// W receives the rendered tables.
	W io.Writer
	// Scale divides platform parallelism (default 8; 1 = full machines).
	Scale int
	// SizeFactor scales dataset sizes (default 1.0).
	SizeFactor float64
	// Seed drives all dataset generation.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.W == nil {
		o.W = io.Discard
	}
	if o.Scale <= 0 {
		o.Scale = 8
	}
	if o.SizeFactor <= 0 {
		o.SizeFactor = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 20230417 // the paper's arXiv date
	}
	return o
}

// n scales an integer dataset dimension.
func (o Options) n(base int) int {
	v := int(float64(base) * o.SizeFactor)
	if v < 1 {
		return 1
	}
	return v
}

// ipuModel returns the scaled IPU.
func (o Options) ipuModel() platform.IPUModel { return platform.GC200.Scaled(o.Scale) }

// bowModel returns the scaled BOW IPU.
func (o Options) bowModel() platform.IPUModel { return platform.BOW.Scaled(o.Scale) }

// cpuModel returns the scaled CPU node.
func (o Options) cpuModel() platform.CPUModel { return platform.EPYC7763.Scaled(o.Scale) }

// gpuModel returns the scaled GPU.
func (o Options) gpuModel() platform.GPUModel { return platform.A100.Scaled(o.Scale) }

// kernelConfig returns the fully optimised kernel configuration the
// paper's headline numbers use (all Table 1 optimisations on).
func kernelConfig(x, deltaB int) ipukernel.Config {
	return ipukernel.Config{
		Params:           core.Params{Scorer: scoring.DNADefault, Gap: -1, X: x, DeltaB: deltaB},
		LRSplit:          true,
		WorkStealing:     true,
		BusyWaitVariance: true,
		DualIssue:        true,
	}
}

// driverConfig returns a single-IPU driver setup on the scaled machine.
// The per-batch host overhead scales with the platform so it amortises
// the way full-size runs amortise it.
func (o Options) driverConfig(x, deltaB, ipus int) driver.Config {
	return driver.Config{
		IPUs:                 ipus,
		Model:                o.ipuModel(),
		Partition:            true,
		Kernel:               kernelConfig(x, deltaB),
		BatchOverheadSeconds: driver.DefaultBatchOverheadSeconds / float64(o.Scale),
	}
}

// Runner is one experiment entry point.
type Runner struct {
	// Name is the CLI key (e.g. "table1").
	Name string
	// Artifact names the paper artifact it regenerates.
	Artifact string
	// Run executes the experiment.
	Run func(Options) error
}

// Experiments lists every runner in presentation order.
func Experiments() []Runner {
	return []Runner{
		{"table1", "Table 1 — optimisation ablation", Table1},
		{"table2", "Table 2 — dataset statistics", Table2},
		{"fig1", "Fig. 1 — banded vs X-Drop search", Fig1},
		{"fig2", "Fig. 2 — search space vs X", Fig2},
		{"fig3", "Fig. 3 — memory footprint of the variants", Fig3},
		{"fig5", "Fig. 5 — GCUPS vs CPU and GPU", Fig5},
		{"fig6", "Fig. 6 — working band δw vs error rate", Fig6},
		{"fig7", "Fig. 7 — strong scaling over IPU count", Fig7},
		{"memory", "§6.1 — δw selection and memory savings", Memory},
		{"races", "§4.1.3 — eventual work stealing races", Races},
		{"partition", "§6.2 — batch reduction from partitioning", Partition},
		{"elba", "§6.3.1 — ELBA alignment phase", ELBA},
		{"pastis", "§6.3.2 — PASTIS alignment phase", PASTIS},
		{"engine", "engine service throughput (host-measured)", EngineExp},
	}
}

// RunAll executes every experiment in order.
func RunAll(opt Options) error {
	opt = opt.withDefaults()
	for _, r := range Experiments() {
		fmt.Fprintf(opt.W, "=== %s: %s ===\n\n", r.Name, r.Artifact)
		if err := r.Run(opt); err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
	}
	return nil
}

// ByName returns the runner with the given name.
func ByName(name string) (Runner, bool) {
	for _, r := range Experiments() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}
