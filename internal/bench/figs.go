package bench

import (
	"fmt"
	"math/rand"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
)

// Fig1 reproduces the Fig. 1 concept: a static band misses an optimal
// alignment displaced by a long indel, while the X-Drop dynamic band
// finds it.
func Fig1(opt Options) error {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 11))
	h := synth.RandDNA(rng, 1200)
	// A 150 bp insertion shifts the tail of the optimal path off any
	// narrow static band.
	v := append(append(append([]byte{}, h[:500]...), synth.RandDNA(rng, 150)...), h[500:]...)

	full := core.SemiGlobalFull(core.NewView(h), core.NewView(v), scoring.DNADefault, -1)
	tab := metrics.NewTable("Fig. 1 — static band vs X-Drop on a long indel",
		"method", "score", "optimal", "cells")
	for _, hw := range []int{20, 60} {
		r := core.Banded(core.NewView(h), core.NewView(v), hw, scoring.DNADefault, -1)
		tab.AddRow(fmt.Sprintf("banded ±%d", hw), r.Score, r.Score == full.Score, r.Stats.Cells)
	}
	xd := core.Standard3(core.NewView(h), core.NewView(v), core.Params{
		Scorer: scoring.DNADefault, Gap: -1, X: 160,
	})
	tab.AddRow("x-drop X=160", xd.Score, xd.Score == full.Score, xd.Stats.Cells)
	tab.AddRow("full DP", full.Score, true, full.Stats.Cells)
	tab.Render(opt.W)
	return nil
}

// Fig2 reproduces the search-space figure: the computed region of the
// scoring matrix for X = 10, 20 and ∞, rendered as a density map.
func Fig2(opt Options) error {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 12))
	h := synth.RandDNA(rng, 480)
	v := synth.UniformDNA(0.15).Apply(rng, h)

	for _, x := range []int{10, 20, 1 << 20} {
		label := fmt.Sprintf("X=%d", x)
		if x >= 1<<20 {
			label = "X=∞"
		}
		mx, res := core.ReferenceMatrix(core.NewView(h), core.NewView(v), core.Params{
			Scorer: scoring.DNADefault, Gap: -1, X: x,
		})
		frac := float64(mx.ComputedCells()) / float64((mx.M+1)*(mx.N+1))
		fmt.Fprintf(opt.W, "Fig. 2 (%s): score=%d cells=%d (%.1f%% of matrix), δw=%d\n",
			label, res.Score, res.Stats.Cells, 100*frac, res.Stats.MaxLiveBand)
		renderMask(opt, mx)
	}
	fmt.Fprintln(opt.W)
	return nil
}

// renderMask draws the computed-cell mask downsampled to a character
// grid (the gray area of Fig. 2).
func renderMask(opt Options, mx *core.Matrix) {
	const grid = 48
	stepI := (mx.M + grid) / grid
	stepJ := (mx.N + grid) / grid
	if stepI < 1 {
		stepI = 1
	}
	if stepJ < 1 {
		stepJ = 1
	}
	for i := 0; i <= mx.M; i += stepI {
		line := make([]byte, 0, grid+2)
		for j := 0; j <= mx.N; j += stepJ {
			hit := false
			for di := 0; di < stepI && i+di <= mx.M && !hit; di++ {
				for dj := 0; dj < stepJ && j+dj <= mx.N; dj++ {
					if mx.Computed(i+di, j+dj) {
						hit = true
						break
					}
				}
			}
			if hit {
				line = append(line, '#')
			} else {
				line = append(line, '.')
			}
		}
		fmt.Fprintf(opt.W, "  %s\n", line)
	}
}

// Fig3 reproduces the memory-footprint comparison of Fig. 3: the standard
// three-antidiagonal algorithm (3δ) versus the memory-restricted variant
// (2δb) across sequence lengths, per thread and per six-thread tile.
func Fig3(opt Options) error {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 13))
	tab := metrics.NewTable("Fig. 3 — working memory per alignment (X=15)",
		"length", "δw measured", "standard 3δ", "restricted 2δb", "ratio", "6-thread tile 3δ", "fits 624KB?")
	for _, n := range []int{1000, 5000, 10000, 25000} {
		h := synth.RandDNA(rng, n)
		v := synth.UniformDNA(0.1).Apply(rng, h)
		r := core.Standard3(core.NewView(h), core.NewView(v), core.Params{
			Scorer: scoring.DNADefault, Gap: -1, X: 15,
		})
		dw := r.Stats.MaxLiveBand
		deltaB := roundUp(dw+dw/4, 32) // δb chosen ≥ δw with headroom
		std := 3 * (n + 1) * 4
		restricted := 2 * deltaB * 4
		tileStd := 6 * std
		tab.AddRow(n, dw, std, restricted,
			metrics.Ratio(float64(std)/float64(restricted)),
			tileStd, tileStd <= 624*1024)
	}
	tab.AddNote("the paper's 55× headline is the 25 kb row; 6 threads of 3δ exceed tile SRAM from ~9 kb")
	tab.Render(opt.W)
	return nil
}

func roundUp(v, to int) int {
	return (v + to - 1) / to * to
}

// Fig6 reproduces the band-width sweep of Fig. 6: the maximum spread δw
// of the live antidiagonal window for error rates 0–100 % across X
// values.
func Fig6(opt Options) error {
	opt = opt.withDefaults()
	xs := []int{5, 10, 15, 20, 30, 50, 100}
	header := []string{"error %"}
	for _, x := range xs {
		header = append(header, fmt.Sprintf("X=%d", x))
	}
	tab := metrics.NewTable("Fig. 6 — max working band δw vs symbol mismatch rate", header...)

	length := opt.n(4000)
	rng := rand.New(rand.NewSource(opt.Seed + 16))
	for e := 0; e <= 100; e += 10 {
		row := []any{e}
		for _, x := range xs {
			// Two pairs per point; report the larger δw, matching the
			// paper's "find the maximum spread".
			dw := 0
			for rep := 0; rep < 2; rep++ {
				h := synth.RandDNA(rng, length)
				v := synth.SubOnlyDNA(float64(e)/100).Apply(rng, h)
				r := core.Standard3(core.NewView(h), core.NewView(v), core.Params{
					Scorer: scoring.DNADefault, Gap: -1, X: x,
				})
				if r.Stats.MaxLiveBand > dw {
					dw = r.Stats.MaxLiveBand
				}
			}
			row = append(row, dw)
		}
		tab.AddRow(row...)
	}
	tab.AddNote("paper sweeps 20 kb pairs; here %d bp (δw is length-insensitive once the band fits)", length)
	tab.Render(opt.W)
	return nil
}
