package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/workload"
)

// EngineBenchSchema versions the BENCH_engine.json layout.
const EngineBenchSchema = "xdropipu-bench-engine/v1"

// VariantThroughput is one kernel variant's host-measured throughput.
type VariantThroughput struct {
	// Name is the core algorithm ("restricted2", "standard3", "affine").
	Name string `json:"name"`
	// McellsPerSec is computed DP cells over host wall time.
	McellsPerSec float64 `json:"mcells_per_sec"`
	// Cells is the computed cell count behind the measurement.
	Cells int64 `json:"cells"`
}

// EngineThroughput is the engine's host-measured throughput at one
// concurrency level.
type EngineThroughput struct {
	// Submitters is the concurrent client count.
	Submitters int `json:"submitters"`
	// Jobs is the total submissions across all clients.
	Jobs int `json:"jobs"`
	// JobsPerSec is completed submissions over host wall time.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// McellsPerSec is computed DP cells over host wall time.
	McellsPerSec float64 `json:"mcells_per_sec"`
	// WallSeconds is the host wall time for the whole burst.
	WallSeconds float64 `json:"wall_seconds"`
}

// EngineBenchResult is the machine-readable BENCH_engine.json payload:
// the per-variant kernel throughput plus engine throughput under
// concurrent submitters, tracked across PRs.
type EngineBenchResult struct {
	Schema     string              `json:"schema"`
	Scale      int                 `json:"scale"`
	SizeFactor float64             `json:"size_factor"`
	Variants   []VariantThroughput `json:"variants"`
	Engine     []EngineThroughput  `json:"engine"`
}

// engineBenchDataset is the common workload: dense enough to produce
// several batches per job so concurrent jobs really interleave.
func (o Options) engineBenchDataset(seedOff int64) *workload.Dataset {
	return o.fig7Dataset(fmt.Sprintf("engine-%d", seedOff), 120_000, 900, 90+seedOff)
}

// EngineBench measures kernel-variant and engine throughput on the host
// clock. Unlike the modeled-time experiments, these numbers track the
// repository's real execution speed across PRs.
func EngineBench(opt Options) (*EngineBenchResult, error) {
	opt = opt.withDefaults()
	res := &EngineBenchResult{
		Schema:     EngineBenchSchema,
		Scale:      opt.Scale,
		SizeFactor: opt.SizeFactor,
	}

	// Kernel variants, one plan each, timed end to end on the host.
	d := opt.engineBenchDataset(0)
	for _, algo := range []core.Algo{core.AlgoRestricted2, core.AlgoStandard3, core.AlgoAffine} {
		cfg := opt.driverConfig(15, 256, 1)
		cfg.Kernel.Params.Algo = algo
		if algo == core.AlgoAffine {
			cfg.Kernel.Params.GapOpen = -2
		}
		start := time.Now()
		rep, err := driver.Run(d, cfg)
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", algo, err)
		}
		el := time.Since(start).Seconds()
		res.Variants = append(res.Variants, VariantThroughput{
			Name:         algo.String(),
			McellsPerSec: float64(rep.Cells) / 1e6 / el,
			Cells:        rep.Cells,
		})
	}

	// Engine throughput: bursts of concurrent submitters against one
	// persistent engine. Jobs per level are fixed at full size so levels
	// compare queueing behaviour, but scale down with SizeFactor so the
	// smoke suite (and its -race rerun) stays cheap.
	jobsPerLevel := opt.n(16)
	if jobsPerLevel > 16 {
		jobsPerLevel = 16
	}
	unique := make([]*workload.Dataset, min(4, jobsPerLevel))
	for i := range unique {
		unique[i] = opt.engineBenchDataset(int64(1 + i))
	}
	datasets := make([]*workload.Dataset, jobsPerLevel)
	for i := range datasets {
		datasets[i] = unique[i%len(unique)]
	}
	for _, submitters := range []int{1, 4, 16} {
		cfg := opt.driverConfig(15, 256, 1)
		cfg.MaxBatchJobs = 64 // several batches per job → real interleaving
		eng := engine.New(engine.WithDriverConfig(cfg), engine.WithQueueDepth(submitters))
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			cells    int64
			firstErr error
		)
		start := time.Now()
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := s; i < jobsPerLevel; i += submitters {
					job, err := eng.Submit(context.Background(), datasets[i])
					if err == nil {
						var rep *driver.Report
						rep, err = job.Wait(context.Background())
						if err == nil {
							mu.Lock()
							cells += rep.Cells
							mu.Unlock()
							continue
						}
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("submitter %d: %w", s, err)
					}
					mu.Unlock()
					return
				}
			}(s)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		if err := eng.Close(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		res.Engine = append(res.Engine, EngineThroughput{
			Submitters:   submitters,
			Jobs:         jobsPerLevel,
			JobsPerSec:   float64(jobsPerLevel) / el,
			McellsPerSec: float64(cells) / 1e6 / el,
			WallSeconds:  el,
		})
	}
	return res, nil
}

// WriteEngineJSON runs EngineBench and writes the payload as indented
// JSON (the BENCH_engine.json artifact).
func WriteEngineJSON(opt Options, w io.Writer) error {
	res, err := EngineBench(opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// EngineExp renders the engine benchmark as text tables (the "engine"
// experiment of the harness).
func EngineExp(opt Options) error {
	opt = opt.withDefaults()
	res, err := EngineBench(opt)
	if err != nil {
		return err
	}
	vt := metrics.NewTable("Engine — kernel variant throughput (host-measured)",
		"variant", "Mcells/s")
	for _, v := range res.Variants {
		vt.AddRow(v.Name, v.McellsPerSec)
	}
	vt.Render(opt.W)
	et := metrics.NewTable("Engine — concurrent submitter throughput (host-measured)",
		"submitters", "jobs", "jobs/s", "Mcells/s", "wall s")
	for _, e := range res.Engine {
		et.AddRow(e.Submitters, e.Jobs, e.JobsPerSec, e.McellsPerSec, e.WallSeconds)
	}
	et.AddNote("host throughput, not modeled time; tracked across PRs via BENCH_engine.json")
	et.Render(opt.W)
	return nil
}
